package laermoe

import (
	"context"
	"log"
	"time"

	"laermoe/internal/serve"
)

// ServeOptions configures the laer-serve planning daemon: a long-running
// HTTP/JSON service where clients open planning sessions, POST per-epoch
// expert-load observations and receive re-layout decisions (see the
// README's Serving section for the API walkthrough).
type ServeOptions struct {
	// Addr is the listen address (default "127.0.0.1:8080"; ":0" picks an
	// ephemeral port, reported through OnReady).
	Addr string

	// Parallelism bounds the worker pool shared by every session's
	// per-layer solves (0 = all CPUs): concurrent sessions draw helper
	// goroutines from this one budget, so a busy daemon never
	// oversubscribes the machine.
	Parallelism int

	// MaxSessions caps concurrently open sessions (0 = 64).
	MaxSessions int

	// SessionTTL evicts sessions idle longer than this — no observation,
	// topology update or lookup — freeing their per-layer solver state so
	// an abandoned-client fleet can't pin memory forever. Evicted sessions
	// return 404; evictions are counted on /metrics. 0 (the default)
	// disables eviction.
	SessionTTL time.Duration

	// JournalDir enables durable sessions: every session's observations
	// and decisions are event-sourced to an append-only journal there, and
	// a restarted daemon replays each journal back to byte-identical
	// planner state before accepting requests. Empty (the default)
	// disables journaling. FsyncInterval is the journal's group-commit
	// cadence (0 = 2ms batching, negative = fsync every append).
	JournalDir    string
	FsyncInterval time.Duration

	// DrainTimeout bounds the graceful shutdown: in-flight solves and
	// requests get this long to complete once ctx is cancelled (0 = 10s).
	DrainTimeout time.Duration

	// Log receives operational messages (nil disables logging).
	Log *log.Logger

	// OnReady, when non-nil, is called with the bound listen address once
	// the daemon accepts connections.
	OnReady func(addr string)
}

// Serve runs the planning daemon until ctx is cancelled, then drains it
// gracefully: new sessions and observations are refused while in-flight
// solves complete, bounded by DrainTimeout. Each session owns its
// per-layer warm-start solvers and load forecasters, and a session fed the
// observation stream of an online run returns decisions byte-identical to
// SimulateOnline's report for that run — the daemon and the engine share
// one decision core.
func Serve(ctx context.Context, opts ServeOptions) error {
	return serve.ListenAndServe(ctx, serve.Options{
		Addr:          opts.Addr,
		Parallelism:   opts.Parallelism,
		MaxSessions:   opts.MaxSessions,
		SessionTTL:    opts.SessionTTL,
		JournalDir:    opts.JournalDir,
		FsyncInterval: opts.FsyncInterval,
		Log:           opts.Log,
	}, opts.DrainTimeout, opts.OnReady)
}
