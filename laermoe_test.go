package laermoe

import (
	"bytes"
	"reflect"
	"testing"
)

func TestClusterConstruction(t *testing.T) {
	c, err := NewCluster(ClusterSpec{Nodes: 2, GPUsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.GPUs() != 8 {
		t.Errorf("GPUs = %d, want 8", c.GPUs())
	}
	if _, err := NewCluster(ClusterSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if err := c.SetStraggler(3, 1.5); err != nil {
		t.Errorf("SetStraggler: %v", err)
	}
	if err := c.SetStraggler(99, 1.5); err == nil {
		t.Error("out-of-range straggler accepted")
	}
	if DefaultCluster().GPUs() != 32 {
		t.Error("default cluster is not 32 GPUs")
	}
	if c.String() == "" {
		t.Error("empty cluster string")
	}
}

func TestModelsAndSystems(t *testing.T) {
	// 6 paper configurations plus the 4 synthetic large-E scale models.
	if len(Models()) != 10 {
		t.Errorf("Models() has %d entries, want 10", len(Models()))
	}
	if len(Systems()) < 6 {
		t.Errorf("Systems() has %d entries", len(Systems()))
	}
	if len(ExperimentIDs()) != 17 {
		t.Errorf("ExperimentIDs() has %d entries, want 17", len(ExperimentIDs()))
	}
}

func TestSimulateLAERBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	laer, err := Simulate(SimOptions{
		System: SystemLAER, Model: "mixtral-8x7b-e8k2",
		Iterations: 6, Warmup: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fsdp, err := Simulate(SimOptions{
		System: SystemFSDPEP, Model: "mixtral-8x7b-e8k2",
		Iterations: 6, Warmup: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if laer.Throughput <= fsdp.Throughput {
		t.Errorf("LAER throughput %.0f <= FSDP+EP %.0f", laer.Throughput, fsdp.Throughput)
	}
	if laer.A2AShare >= fsdp.A2AShare {
		t.Errorf("LAER a2a share %.3f >= FSDP+EP %.3f", laer.A2AShare, fsdp.A2AShare)
	}
	if laer.MeanImbalance >= fsdp.MeanImbalance {
		t.Errorf("LAER imbalance %.2f >= FSDP+EP %.2f", laer.MeanImbalance, fsdp.MeanImbalance)
	}
	if laer.PlannerTime <= 0 {
		t.Error("LAER planner time missing")
	}
	if laer.Breakdown["expert"] <= 0 || laer.Breakdown["a2a"] <= 0 {
		t.Error("breakdown missing components")
	}
}

func TestSimulateRejectsUnknowns(t *testing.T) {
	if _, err := Simulate(SimOptions{System: SystemLAER, Model: "nope"}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := Simulate(SimOptions{System: "warp-drive", Model: "mixtral-8x7b-e8k2"}); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestPlanLayoutImproves(t *testing.T) {
	cluster := DefaultCluster()
	routing, err := GenerateRouting(cluster, 8, 4096, 2, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlanLayout(PlanRequest{Cluster: cluster, Routing: routing, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.ImbalanceAfter >= res.ImbalanceBefore {
		t.Errorf("planning did not improve balance: %.3f -> %.3f", res.ImbalanceBefore, res.ImbalanceAfter)
	}
	total := 0
	for _, r := range res.Replicas {
		if r < 1 {
			t.Error("expert with no replicas")
		}
		total += r
	}
	if total != cluster.GPUs()*2 {
		t.Errorf("replica slots %d, want %d", total, cluster.GPUs()*2)
	}
	if len(res.DeviceLoads) != cluster.GPUs() {
		t.Errorf("device loads for %d devices", len(res.DeviceLoads))
	}
}

func TestPlanLayoutValidation(t *testing.T) {
	if _, err := PlanLayout(PlanRequest{Routing: nil, Capacity: 2}); err == nil {
		t.Error("empty routing accepted")
	}
	if _, err := PlanLayout(PlanRequest{Routing: [][]int{{1}}, Capacity: 2}); err == nil {
		t.Error("wrong device count accepted")
	}
	bad := make([][]int, 32)
	for i := range bad {
		bad[i] = []int{1, 2}
	}
	if _, err := PlanLayout(PlanRequest{Routing: bad, Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestLossCurveAPI(t *testing.T) {
	xs, ys := LossCurve(1000, 250, 1e-4)
	if len(xs) != 5 || len(ys) != 5 {
		t.Fatalf("curve has %d points, want 5", len(xs))
	}
	if ys[4] >= ys[0] {
		t.Error("loss curve not decreasing")
	}
}

func TestRunExperimentAPI(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("tab2", true, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no experiment output")
	}
	if err := RunExperiment("nope", true, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestSimulateOnlineAcceptance is the online engine's public acceptance
// criterion: over >= 3 epochs of a drifting trace, warm-start replanning
// reports strictly lower cumulative step time than the static-layout
// baseline, and the report is pinned across runs and across Parallelism
// settings.
func TestSimulateOnlineAcceptance(t *testing.T) {
	base := OnlineOptions{
		Spec: OnlineSessionSpec{
			Model:              "mixtral-8x7b-e8k2",
			IterationsPerEpoch: 4,
			Seed:               7,
		},
		Epochs: 3,
		Drift:  DriftMigration,
	}

	warmOpts := base
	warmOpts.Policy = PolicyWarm
	warm, err := SimulateOnline(warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	staticOpts := base
	staticOpts.Policy = PolicyStatic
	static, err := SimulateOnline(staticOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Epochs) != 3 {
		t.Fatalf("got %d epochs, want 3", len(warm.Epochs))
	}
	if warm.TotalStepTime >= static.TotalStepTime {
		t.Fatalf("warm cumulative step time %.1fs not strictly below static %.1fs",
			warm.TotalStepTime, static.TotalStepTime)
	}
	if warm.TotalMigrations == 0 {
		t.Fatal("warm policy reported no migrations")
	}

	// Determinism: identical options (at any parallelism) pin the output.
	for _, par := range []int{0, 1, 5} {
		opts := warmOpts
		opts.Parallelism = par
		again, err := SimulateOnline(opts)
		if err != nil {
			t.Fatal(err)
		}
		if again.TotalStepTime != warm.TotalStepTime ||
			again.TotalMigrations != warm.TotalMigrations ||
			again.MeanThroughput != warm.MeanThroughput {
			t.Fatalf("parallelism %d: online report not deterministic", par)
		}
		for i := range again.Epochs {
			a, b := again.Epochs[i], warm.Epochs[i]
			a.PlannerTime, b.PlannerTime = 0, 0 // wall clock, not simulated
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("parallelism %d: epoch %d differs: %+v vs %+v", par, i, a, b)
			}
		}
	}
}

// TestSimulateOnlineElastic exercises the fault-injection surface end to
// end through the public API: schedule helpers, the FaultSchedule option,
// per-epoch fault reporting and the derived recovery records.
func TestSimulateOnlineElastic(t *testing.T) {
	if err := ValidateFaultSchedule("1:fail:1,2:join:1", nil, 3, 4); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	for _, bad := range []string{"nonsense", "9:fail:1", "1.9:fail:1", "1:fail:99"} {
		if err := ValidateFaultSchedule(bad, nil, 3, 4); err == nil {
			t.Errorf("schedule %q accepted", bad)
		}
	}
	synth, err := SynthesizeFaultSchedule(nil, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	again, err := SynthesizeFaultSchedule(nil, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if synth != again {
		t.Errorf("synthesis not deterministic: %q vs %q", synth, again)
	}
	if c, err := CheckpointRestoreCost("", nil); err != nil || c <= 0 {
		t.Errorf("CheckpointRestoreCost = %v, %v", c, err)
	}

	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	rep, err := SimulateOnline(OnlineOptions{
		Spec: OnlineSessionSpec{
			Policy: PolicyWarm, IterationsPerEpoch: 4,
			FaultSchedule: "1:fail:2", Seed: 7,
		},
		Epochs: 3, Drift: DriftStabilizing,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep := rep.Epochs[1]
	if len(ep.FaultEvents) != 1 || ep.FaultEvents[0] != "1:fail:2" {
		t.Fatalf("fault epoch events = %v", ep.FaultEvents)
	}
	if len(ep.FaultDecisions) == 0 {
		t.Fatal("fault epoch carries no recovery decisions")
	}
	if len(rep.Recoveries) != 1 || rep.Recoveries[0].Epoch != 1 {
		t.Fatalf("recoveries = %+v", rep.Recoveries)
	}
	if _, err := SimulateOnline(OnlineOptions{Spec: OnlineSessionSpec{Policy: PolicyWarm, FaultSchedule: "bogus"}}); err == nil {
		t.Fatal("unparseable fault schedule accepted")
	}
}

func TestSimulateOnlineRejectsUnknowns(t *testing.T) {
	if _, err := SimulateOnline(OnlineOptions{Spec: OnlineSessionSpec{Policy: "oracle"}}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := SimulateOnline(OnlineOptions{Drift: "sideways"}); err == nil {
		t.Fatal("unknown drift model accepted")
	}
	if _, err := SimulateOnline(OnlineOptions{Spec: OnlineSessionSpec{Model: "nope"}}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := SimulateOnline(OnlineOptions{Spec: OnlineSessionSpec{Policy: PolicyPredictive, Predictor: "oracle"}}); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

// TestSimulateOnlinePredictive exercises the forecast-driven policy via
// the public API: the report must carry the predictor name, per-epoch
// forecast diagnostics and per-iteration times, and the first epochs must
// stay reactive while the predictor earns trust.
func TestSimulateOnlinePredictive(t *testing.T) {
	rep, err := SimulateOnline(OnlineOptions{
		Spec: OnlineSessionSpec{
			Policy: PolicyPredictive, Model: "mixtral-8x7b-e8k2",
			IterationsPerEpoch: 4, Predictor: PredictorTrend,
			Seed: 7,
		},
		Epochs: 4, Drift: DriftStabilizing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Policy != PolicyPredictive || rep.Predictor != PredictorTrend {
		t.Fatalf("report policy/predictor = %s/%s", rep.Policy, rep.Predictor)
	}
	for i, e := range rep.Epochs {
		if len(e.IterationTimes) != 4 {
			t.Fatalf("epoch %d has %d iteration times, want 4", i, len(e.IterationTimes))
		}
		if i < 2 && e.PredictedLayers != 0 {
			t.Fatalf("epoch %d acted on a forecast before trust could be earned", i)
		}
	}
	if rep.Epochs[1].ForecastError <= 0 {
		t.Fatal("no shadow forecast error measured at epoch 1")
	}
	if rep.MeanForecastError <= 0 {
		t.Fatal("no mean forecast error reported")
	}
	// The warm policy's report must not carry predictor fields.
	warm, err := SimulateOnline(OnlineOptions{
		Spec: OnlineSessionSpec{
			Policy: PolicyWarm, Model: "mixtral-8x7b-e8k2",
			IterationsPerEpoch: 4, Seed: 7,
		},
		Epochs: 2, Drift: DriftStabilizing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Predictor != "" || warm.MeanForecastError != 0 {
		t.Fatalf("warm report carries predictor state: %q/%g", warm.Predictor, warm.MeanForecastError)
	}
}

func TestRelocationCostAPI(t *testing.T) {
	cost, err := RelocationCost("", nil)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatalf("relocation cost %.3f not positive", cost)
	}
	if _, err := RelocationCost("nope", nil); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestPoliciesAndDriftModels(t *testing.T) {
	pols := Policies()
	if len(pols) != 6 {
		t.Fatalf("Policies() = %v", pols)
	}
	have := map[string]bool{}
	for _, p := range pols {
		have[p] = true
	}
	for _, want := range []string{"llep", "score-balance"} {
		if !have[want] {
			t.Fatalf("Policies() = %v missing %q", pols, want)
		}
	}
	if len(DriftModels()) != 4 {
		t.Fatalf("DriftModels() = %v", DriftModels())
	}
	if len(Predictors()) != 3 {
		t.Fatalf("Predictors() = %v", Predictors())
	}
}
