package laermoe

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each benchmark runs one experiment end-to-end, reports its
// headline metrics via b.ReportMetric, and prints the full artifact table
// (the same output cmd/laer-exp produces) so a bench run doubles as a
// reproduction record:
//
//	go test -bench=. -benchmem
//
// Shape assertions live in internal/experiments tests; benches only
// measure and report.

import (
	"fmt"
	"os"
	"testing"

	"laermoe/internal/executor"
	"laermoe/internal/experiments"
	"laermoe/internal/model"
	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/training"
)

func benchOpts() experiments.Options {
	return experiments.Options{Iterations: 10, Warmup: 2, Seed: 1}
}

// printTables emits the artifact once per benchmark run.
func printTables(b *testing.B, tables ...*experiments.Table) {
	b.Helper()
	for _, t := range tables {
		if t != nil {
			t.Write(os.Stdout)
		}
	}
}

// BenchmarkTable2ModelConfigs regenerates Table 2.
func BenchmarkTable2ModelConfigs(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.Table2(benchOpts())
	}
	printTables(b, t)
}

// BenchmarkFig1aTokenDistribution regenerates Fig. 1(a).
func BenchmarkFig1aTokenDistribution(b *testing.B) {
	var r *experiments.Fig1aResult
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig1a(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Mean(r.Imbalance), "mean_imbalance")
	printTables(b, r.Table)
}

// BenchmarkFig1bBreakdown regenerates Fig. 1(b).
func BenchmarkFig1bBreakdown(b *testing.B) {
	var r *experiments.Fig1bResult
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig1b(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.DefaultShare, "default_a2a_%")
	b.ReportMetric(100*r.BalancedShare, "balanced_a2a_%")
	printTables(b, r.Table)
}

// BenchmarkFig2AuxLossCurves regenerates Fig. 2.
func BenchmarkFig2AuxLossCurves(b *testing.B) {
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig2(benchOpts())
	}
	b.ReportMetric(float64(r.StepsToTarget[1e-2])/float64(r.StepsToTarget[1e-4]), "steps_ratio_1e2_vs_1e4")
	printTables(b, r.Table)
}

// BenchmarkFig8EndToEnd regenerates Fig. 8 (the full grid: 6 models x 2
// datasets x 2 aux weights x 4 systems).
func BenchmarkFig8EndToEnd(b *testing.B) {
	var r *experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig8(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(experiments.MaxSpeedup(r.SpeedupVsMegatron), "max_speedup_vs_megatron")
	b.ReportMetric(experiments.MaxSpeedup(r.SpeedupVsFSDP), "max_speedup_vs_fsdp")
	b.ReportMetric(experiments.MeanSpeedup(r.SpeedupVsFlex), "mean_speedup_vs_flexmoe")
	printTables(b, r.Table)
}

// BenchmarkFig9Convergence regenerates Fig. 9.
func BenchmarkFig9Convergence(b *testing.B) {
	var r *experiments.Fig9Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig9(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxRelError, "max_rel_loss_error")
	printTables(b, r.Table, r.ErrorTable)
}

// BenchmarkFig10aBreakdown regenerates Fig. 10(a).
func BenchmarkFig10aBreakdown(b *testing.B) {
	var r *experiments.Fig10aResult
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig10a(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.A2AShare["laer/mixtral-8x7b-e8k2"], "laer_a2a_%")
	b.ReportMetric(r.A2ASpeedupVsFSDP["mixtral-8x7b-e8k2"], "a2a_speedup_vs_fsdp")
	printTables(b, r.Table)
}

// BenchmarkFig10bMaxTokens regenerates Fig. 10(b).
func BenchmarkFig10bMaxTokens(b *testing.B) {
	var r *experiments.Fig10bResult
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig10b(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MeanImbalance["laer/mixtral-8x7b-e8k2"], "laer_rel_max_tokens")
	b.ReportMetric(r.MeanImbalance["fsdp+ep/mixtral-8x7b-e8k2"], "fsdp_rel_max_tokens")
	printTables(b, r.Table)
}

// BenchmarkTable3LiteRouting regenerates Table 3 (measured Go wall time).
func BenchmarkTable3LiteRouting(b *testing.B) {
	var r *experiments.Table3Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Table3(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RoutingMillis["mixtral-8x7b-e8k2"], "lite_routing_ms_per_iter")
	printTables(b, r.Table)
}

// BenchmarkFig11PlannerScaling regenerates Fig. 11 (measured solver time
// up to 1024 GPUs).
func BenchmarkFig11PlannerScaling(b *testing.B) {
	var r *experiments.Fig11Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig11(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SolveMillis[[2]int{1024, 8}], "solve_ms_n1024_c8")
	b.ReportMetric(r.BaselineMillis, "per_layer_budget_ms")
	printTables(b, r.Table)
}

// BenchmarkFig12Ablation regenerates Fig. 12.
func BenchmarkFig12Ablation(b *testing.B) {
	var r *experiments.Fig12Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig12(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Throughput["laer"]/r.Throughput["fsdp+ep"], "laer_vs_fsdp")
	b.ReportMetric(r.Throughput["laer"]/r.Throughput["no_comm_opt"], "laer_vs_no_comm_opt")
	printTables(b, r.Table)
}

// BenchmarkTable4Scalability regenerates Appendix D's Table 4.
func BenchmarkTable4Scalability(b *testing.B) {
	var r *experiments.Table4Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Table4(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Speedup[8], "mlp_speedup_n8")
	b.ReportMetric(r.Speedup[128], "mlp_speedup_n128")
	printTables(b, r.Table)
}

// BenchmarkScaleOnline regenerates the production-scale online re-layout
// artifact (quick shape: the full 512/1024-GPU sweep is a multi-minute
// run meant for `laer-exp scale`).
func BenchmarkScaleOnline(b *testing.B) {
	var r *experiments.ScaleResult
	var err error
	opts := benchOpts()
	opts.Quick = true
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Scale(opts); err != nil {
			b.Fatal(err)
		}
	}
	if n := len(r.Cells); n >= 2 {
		b.ReportMetric(r.Cells[1].Throughput/r.Cells[0].Throughput, "warm_vs_static_tput")
	}
	printTables(b, r.Table)
}

// BenchmarkEq1OverlapThreshold regenerates the Eq. 1 analysis.
func BenchmarkEq1OverlapThreshold(b *testing.B) {
	var r *experiments.Eq1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Eq1(benchOpts())
	}
	b.ReportMetric(r.ThresholdTokens, "threshold_tokens")
	printTables(b, r.Table)
}

// BenchmarkCommSchedulingModes is the DESIGN.md ablation of the Fig. 5
// scheduling ladder: default, relaxed, +scheduled, +delayed grad sync.
func BenchmarkCommSchedulingModes(b *testing.B) {
	modes := []struct {
		name string
		comm executor.CommOpts
	}{
		{"default", executor.CommOpts{}},
		{"relaxed", executor.CommOpts{RelaxedPrefetch: true}},
		{"scheduled", executor.CommOpts{RelaxedPrefetch: true, ScheduledPrefetch: true}},
		{"delayed", executor.AllCommOpts()},
	}
	rows := [][]string{{"mode", "iter (s)"}}
	for i := 0; i < b.N; i++ {
		rows = rows[:1]
		for _, m := range modes {
			run, err := training.Run(training.RunConfig{
				System: training.SystemLAER, Arch: model.Mixtral8x7B,
				Topo: topology.Default(), Comm: m.comm, CommSet: true,
				Iterations: 8, Warmup: 2, Seed: 77, TraceSkew: 1.15,
			})
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, []string{m.name, fmt.Sprintf("%.2f", run.MeanIterationTime())})
		}
	}
	fmt.Println("== ablation: Fig. 5 communication scheduling ladder ==")
	for _, row := range rows {
		fmt.Printf("%-12s %s\n", row[0], row[1])
	}
	fmt.Println()
}

// BenchmarkHistoryEstimator is the DESIGN.md ablation of the asynchronous
// planner's history smoothing: plan from the last iteration only vs an
// EMA over the routing history.
func BenchmarkHistoryEstimator(b *testing.B) {
	alphas := []struct {
		name  string
		alpha float64
	}{
		{"last-iteration (α=1.0)", 1.0},
		{"ema (α=0.6)", 0.6},
		{"slow ema (α=0.2)", 0.2},
	}
	fmt.Println("== ablation: planner history estimator ==")
	for i := 0; i < b.N; i++ {
		for _, a := range alphas {
			run, err := training.Run(training.RunConfig{
				System: training.SystemLAER, Arch: model.Mixtral8x7B,
				Topo: topology.Default(), HistoryAlpha: a.alpha,
				Iterations: 8, Warmup: 2, Seed: 78, TraceSkew: 1.15,
			})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				fmt.Printf("%-24s iter %.2fs  imbalance %.3f\n", a.name,
					run.MeanIterationTime(), stats.Mean(run.MeanPerLayerImbalance()))
			}
		}
	}
	fmt.Println()
}
