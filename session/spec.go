// Package session declares the shared online-session specification: the
// policy/predictor/workload knobs one long-lived planning session runs
// with. Exactly one struct — embedded by laermoe.OnlineOptions, by the
// serve daemon's SessionSpec (whose JSON wire names it carries) and by
// laer-bench's session builder — replaces the three hand-kept copies
// those surfaces used to maintain.
//
// Zero values always mean "use the engine default", so the zero Spec is
// valid and selects a warm-start training session on the default model.
// Name validation (policy, predictor, workload, arrival) happens in the
// consuming layer via the typed registry (laermoe.LookupPolicy and
// friends), not here: this package holds data, not the catalog.
package session

// Spec is the online-session configuration shared by the library, the
// serving daemon and the load harness. The JSON tags are the serve wire
// format; embedding Spec untagged in a request struct promotes them
// unchanged.
type Spec struct {
	// Model is a model-catalog name (default "mixtral-8x7b-e8k2").
	Model string `json:"model,omitempty"`

	// Policy is the replan policy name (default "warm"); see
	// laermoe.PolicySpecs for the registry.
	Policy string `json:"policy,omitempty"`

	// Workload selects what the session plans for: "training" (default,
	// step-time objective) or "inference" (request-level decode traffic,
	// latency objective). Arrival picks the inference traffic shape
	// ("diurnal" or "bursty"); it is ignored for training workloads.
	Workload string `json:"workload,omitempty"`
	Arrival  string `json:"arrival,omitempty"`

	// Predictor and ConfidenceThreshold configure the predictive policy
	// (defaults: "trend", 0.25; a negative threshold trusts forecasts
	// unconditionally).
	Predictor           string  `json:"predictor,omitempty"`
	ConfidenceThreshold float64 `json:"confidence_threshold,omitempty"`

	// IterationsPerEpoch is the planning horizon migration charges are
	// amortized over (default 6, minimum 2).
	IterationsPerEpoch int `json:"iterations_per_epoch,omitempty"`

	// MigrationThreshold is the relative per-expert load change past which
	// the warm policy re-places an expert (0 = default 0.2, negative =
	// re-place on any change); MigrationCostPerReplica the wall time
	// charged per relocated replica in seconds (0 = free FSEP re-layout).
	MigrationThreshold      float64 `json:"migration_threshold,omitempty"`
	MigrationCostPerReplica float64 `json:"migration_cost_per_replica,omitempty"`

	// FaultSchedule is a faults.Parse schedule ("epoch[.iter]:kind:arg,...")
	// injected into offline runs. The serve daemon rejects it — live
	// sessions take topology changes via POST /topology instead.
	FaultSchedule string `json:"fault_schedule,omitempty"`

	// AuxLossWeight and DatasetSkew shape the routing distribution;
	// ForceTokensPerDevice bypasses the memory fitter and
	// GlobalBatchTokens overrides the per-iteration batch.
	AuxLossWeight        float64 `json:"aux_loss_weight,omitempty"`
	DatasetSkew          float64 `json:"dataset_skew,omitempty"`
	ForceTokensPerDevice int     `json:"force_tokens_per_device,omitempty"`
	GlobalBatchTokens    int     `json:"global_batch_tokens,omitempty"`

	Seed int64 `json:"seed,omitempty"`
}
