GO ?= go

.PHONY: all build vet test race bench bench-hot

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The worker-pool runner and the solver's concurrent candidate evaluation
# make the race detector load-bearing.
race:
	$(GO) test -race ./...

# Headline experiment benchmarks (each regenerates a paper artifact).
bench:
	$(GO) test -run=NONE -bench='BenchmarkFig8EndToEnd|BenchmarkFig11PlannerScaling|BenchmarkTable4Scalability' -benchtime=1x -benchmem .

# Hot-path micro benchmarks with allocation reporting.
bench-hot:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/fsep/ ./internal/sim/ ./internal/planner/ ./internal/trace/
