GO ?= go

.PHONY: all build vet test race fuzz cover bench bench-hot

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The worker-pool runner, the solver's concurrent candidate evaluation and
# the online engine's boundary replanning make the race detector
# load-bearing.
race:
	$(GO) test -race ./...

# Short fuzz smoke over the trace wire format (same budget as CI).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzTraceRoundTrip -fuzztime=10s ./internal/trace

# Coverage for the gated packages (CI enforces >= 85% on each).
cover:
	$(GO) test -cover ./internal/planner ./internal/trace ./internal/forecast

# Headline experiment benchmarks (each regenerates a paper artifact).
bench:
	$(GO) test -run=NONE -bench='BenchmarkFig8EndToEnd|BenchmarkFig11PlannerScaling|BenchmarkTable4Scalability' -benchtime=1x -benchmem .

# Hot-path micro benchmarks with allocation reporting (the predictor
# update path must stay at 0 allocs/op).
bench-hot:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/fsep/ ./internal/sim/ ./internal/planner/ ./internal/trace/ ./internal/forecast/
