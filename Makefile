GO ?= go

.PHONY: all build lint vet test race fuzz cover examples-smoke bench bench-hot bench-smoke bench-scale-smoke bench-serve bench-diff bench-baseline profile

all: build vet test

# Formatting + vet, the blocking half of the CI lint job (staticcheck and
# govulncheck run there best-effort; install them locally to match).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The worker-pool runner, the solver's concurrent candidate evaluation and
# the online engine's boundary replanning make the race detector
# load-bearing.
race:
	$(GO) test -race ./...

# Short fuzz smoke over the trace wire format (same budget as CI).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzTraceRoundTrip -fuzztime=10s ./internal/trace

# Coverage for the gated packages (CI enforces >= 85% on each).
cover:
	$(GO) test -cover ./internal/planner ./internal/trace ./internal/forecast ./internal/serve ./internal/journal

# Run every example end to end in quick mode (the CI examples-smoke step):
# example drift must not land silently. examples/serve self-hosts a daemon
# and asserts its decisions match training.RunOnline byte for byte.
examples-smoke:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/rebalance
	$(GO) run ./examples/straggler
	$(GO) run ./examples/convergence
	$(GO) run ./examples/scaling
	$(GO) run ./examples/online -quick
	$(GO) run ./examples/forecast -quick
	$(GO) run ./examples/serve -quick

# Headline experiment benchmarks (each regenerates a paper artifact).
bench:
	$(GO) test -run=NONE -bench='BenchmarkFig8EndToEnd|BenchmarkFig11PlannerScaling|BenchmarkTable4Scalability' -benchtime=1x -benchmem .

# Hot-path micro benchmarks with allocation reporting (the predictor
# update path must stay at 0 allocs/op; the serve observe path must keep
# reusing its retained routing matrices).
bench-hot:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/fsep/ ./internal/sim/ ./internal/planner/ ./internal/trace/ ./internal/forecast/ ./internal/serve/

# The CI allocation-regression smoke: same packages as bench-hot at a
# fixed small iteration budget, so the alloc columns are stable enough to
# diff against benchmarks/baseline.txt. Ends with the frontier-scale
# smoke so the baseline carries the large-shape row too.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=100x -benchmem \
		./internal/fsep/ ./internal/sim/ ./internal/planner/ ./internal/trace/ ./internal/forecast/ ./internal/serve/
	@$(MAKE) --no-print-directory bench-scale-smoke

# One incremental epoch of the N=4096-GPU x E=16384-expert frontier cell
# on a warmed planner (the shape the drift-delta path exists for). Kept
# out of the package sweep above because even a single op is seconds;
# -benchtime=1x bounds it.
bench-scale-smoke:
	$(GO) test -run=NONE -bench=BenchmarkScaleSmoke -benchtime=1x ./internal/experiments/

# Serving load harness: 500 paced drifting sessions against a self-hosted
# journaled daemon, ending with a timed journal-replay restart. The same
# run (plus an SLO gate) closes the CI daemon-smoke job; the report lands
# next to the micro-benchmark baselines.
bench-serve:
	@mkdir -p benchmarks
	$(GO) run ./cmd/laer-bench -quick -journal-dir benchmarks/serve-bench-jnl -report benchmarks/serve-bench.json
	@rm -rf benchmarks/serve-bench-jnl

# Compare the current hot-path benchmarks against the checked-in
# baseline (benchmarks/baseline.txt). The warm-solve and generator
# benchmarks ($(BENCH_GATE)) are a blocking gate: a >15% ns/op or
# allocs/op regression fails the build. Everything else stays
# informational — single-shot samples on the remaining benchmarks are
# too noisy to gate on. benchstat output is printed additionally when
# installed. After an intentional perf change, refresh with
# `make bench-baseline` and commit the result.
BENCH_GATE = BenchmarkSolveWarm|BenchmarkGenerator|BenchmarkObserve|BenchmarkRequestDispatch
bench-diff:
	@mkdir -p benchmarks
	$(MAKE) --no-print-directory bench-smoke > benchmarks/current.txt || (cat benchmarks/current.txt; exit 1)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat benchmarks/baseline.txt benchmarks/current.txt; \
	fi
	$(GO) run ./cmd/benchdiff -gate -threshold 0.15 -match '$(BENCH_GATE)' \
		benchmarks/baseline.txt benchmarks/current.txt

# Refresh the checked-in benchmark baseline (run on the reference machine
# after an intentional perf change, and commit the result).
bench-baseline:
	@mkdir -p benchmarks
	$(MAKE) --no-print-directory bench-smoke > benchmarks/baseline.txt
	@tail -n +1 benchmarks/baseline.txt | head -5

# CPU+heap profiles of the planner-heavy experiments, the standard entry
# point for perf work (pprof files land in ./profiles).
profile: build
	@mkdir -p profiles
	$(GO) run ./cmd/laer-exp -quick -cpuprofile profiles/fig11.cpu.pprof -memprofile profiles/fig11.heap.pprof fig11
	$(GO) run ./cmd/laer-exp -quick -cpuprofile profiles/scale.cpu.pprof -memprofile profiles/scale.heap.pprof scale
	@echo "profiles written to ./profiles; inspect with: go tool pprof -top profiles/fig11.cpu.pprof"
