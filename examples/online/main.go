// Online re-layout: simulate multi-epoch training where the routing
// distribution drifts between epochs (here: the hot experts migrate across
// the expert space), and compare three replanning policies on the same
// trace — never replanning (static EP), re-solving every epoch from
// scratch, and warm-starting from the previous layout so only the experts
// whose load actually moved are re-placed.
//
// The run is repeated twice: first on the FSEP data plane, where changing
// the layout is free (the paper's core claim), then charging each migrated
// replica the optimizer-state relocation cost a traditional scheme pays.
//
//	go run ./examples/online            # full walkthrough
//	go run ./examples/online -quick     # CI-sized run
package main

import (
	"flag"
	"fmt"
	"log"

	"laermoe"
)

func main() {
	quick := flag.Bool("quick", false, "CI-sized run (fewer, shorter epochs)")
	flag.Parse()
	epochs, epochIters := 5, 6
	if *quick {
		epochs, epochIters = 3, 4
	}

	cluster := laermoe.DefaultCluster()
	fmt.Printf("cluster: %s\n", cluster)

	relocation, err := laermoe.RelocationCost("mixtral-8x7b-e8k2", cluster)
	if err != nil {
		log.Fatal(err)
	}
	scenarios := []struct {
		label   string
		migCost float64
	}{
		{"FSEP substrate (re-layout is free)", 0},
		{fmt.Sprintf("relocation substrate (%.2f s per moved replica)", relocation), relocation},
	}

	for _, sc := range scenarios {
		fmt.Printf("\n== %s ==\n", sc.label)
		fmt.Printf("%-8s  %14s  %10s  %10s  %12s\n",
			"policy", "total step (s)", "tokens/s", "migrations", "mig time (s)")
		for _, policy := range []string{laermoe.PolicyStatic, laermoe.PolicyScratch, laermoe.PolicyWarm} {
			rep, err := laermoe.SimulateOnline(laermoe.OnlineOptions{
				Spec: laermoe.OnlineSessionSpec{
					Policy:                  policy,
					Model:                   "mixtral-8x7b-e8k2",
					IterationsPerEpoch:      epochIters,
					MigrationCostPerReplica: sc.migCost,
					Seed:                    42,
				},
				Epochs: epochs,
				Drift:  laermoe.DriftMigration,
			})
			if err != nil {
				log.Fatal(err)
			}
			var migTime float64
			for _, e := range rep.Epochs {
				migTime += e.MigrationTime
			}
			fmt.Printf("%-8s  %14.1f  %10.0f  %10d  %12.1f\n",
				policy, rep.TotalStepTime, rep.MeanThroughput, rep.TotalMigrations, migTime)
		}
	}

	fmt.Println("\nWith free FSEP re-layout both adaptive policies beat the static")
	fmt.Println("baseline. Once relocation moves optimizer state over the wire,")
	fmt.Println("replanning from scratch pays for its churn — only the warm start,")
	fmt.Println("which re-places just the drifted experts and charges every move")
	fmt.Println("against its benefit, still comes out ahead.")
}
