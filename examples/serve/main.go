// Serving: drive the laer-serve planning daemon with a drifting workload
// and verify it agrees with the offline engine, byte for byte.
//
// The client opens a planning session, then replays a drifting
// trace.Generator stream — the exact routing process the online engine
// simulates — posting each epoch's first-iteration routing (the
// observation) to the daemon and holding the returned decisions against
// the decisions training.RunOnline reports for the same seed. Because the
// daemon and the engine share one decision core, every epoch must match
// byte for byte; the example exits non-zero the moment one does not.
//
// A second client subscribes to the session's SSE decision stream
// (GET /v1/sessions/{id}/stream) for the whole run: every decision the
// polling client receives must also arrive as a pushed event, in
// planning order, ending with the daemon's "closed" frame.
//
//	go run ./examples/serve                  # self-hosts a daemon in-process
//	go run ./examples/serve -addr HOST:PORT  # drives an already-running laer-serve
//	go run ./examples/serve -quick           # CI-sized run
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"laermoe"
	"laermoe/internal/faults"
	"laermoe/internal/model"
	"laermoe/internal/serve"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
	"laermoe/internal/training"
	"laermoe/session"
)

func main() {
	var (
		addr      = flag.String("addr", "", "daemon address (empty = self-host an in-process daemon)")
		modelName = flag.String("model", "mixtral-8x7b-e8k2", "model configuration")
		policy    = flag.String("policy", "predictive", "replan policy the session runs")
		drift     = flag.String("drift", "migration", "epoch-boundary drift model")
		epochs    = flag.Int("epochs", 5, "epochs to replay")
		iters     = flag.Int("epoch-iters", 4, "iterations per epoch (the first is the observation)")
		seed      = flag.Int64("seed", 42, "random seed (shared by daemon session and reference run)")
		quick     = flag.Bool("quick", false, "CI-sized run (3 epochs)")

		// Elastic leg: before faultEpoch's observation, one node fails. The
		// daemon learns it through POST .../topology; the reference engine
		// through an identical fault schedule — their recovery decisions
		// must also match byte for byte.
		faultEpoch = flag.Int("fault-epoch", 2, "epoch at whose boundary a node fails (-1 = fixed cluster)")
		failNode   = flag.Int("fail-node", 1, "node index the fault removes")
	)
	flag.Parse()
	if *quick {
		*epochs = 3
	}
	if *faultEpoch >= *epochs {
		log.Fatalf("-fault-epoch %d is outside the %d-epoch run", *faultEpoch, *epochs)
	}

	// Self-host a daemon on an ephemeral port when none was given: the
	// example is then fully self-contained (and doubles as the smoke test
	// of laermoe.Serve's ready/drain lifecycle).
	var (
		cancelDaemon context.CancelFunc
		daemonDone   chan error
	)
	if *addr == "" {
		ready := make(chan string, 1)
		daemonDone = make(chan error, 1)
		var ctx context.Context
		ctx, cancelDaemon = context.WithCancel(context.Background())
		go func() {
			daemonDone <- laermoe.Serve(ctx, laermoe.ServeOptions{
				Addr:    "127.0.0.1:0",
				OnReady: func(a string) { ready <- a },
			})
		}()
		// A daemon that dies before reporting ready (port exhaustion, a
		// sandbox denying listen) must fail the run, not deadlock it.
		select {
		case *addr = <-ready:
		case err := <-daemonDone:
			log.Fatalf("daemon failed to start: %v", err)
		}
		fmt.Printf("self-hosted daemon on %s\n", *addr)
	}
	base := "http://" + *addr

	// Reference: the offline online-re-layout engine on the identical
	// configuration. Its per-epoch decisions are the ground truth.
	arch, err := model.ByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	refCfg := training.OnlineConfig{
		Policy: training.ReplanPolicy(*policy),
		Arch:   arch,
		Topo:   topology.Default(),
		Epochs: *epochs, IterationsPerEpoch: *iters,
		Drift:             trace.DriftConfig{Model: trace.DriftModel(*drift)},
		GlobalBatchTokens: 1 << 19,
		Seed:              *seed,
	}
	if *faultEpoch >= 0 {
		refCfg.Faults = faults.Schedule{{Epoch: *faultEpoch, Kind: faults.NodeFail, Node: *failNode}}
	}
	ref, err := training.RunOnline(refCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Open the session with the same configuration.
	var info serve.SessionInfo
	postJSON(base+"/v1/sessions", serve.SessionSpec{Spec: session.Spec{
		Model: *modelName, Policy: *policy,
		IterationsPerEpoch: *iters,
		GlobalBatchTokens:  1 << 19,
		Seed:               *seed,
	}}, http.StatusCreated, &info)
	fmt.Printf("session %s: %s on %d GPUs, %d layers x %d experts, policy %s\n\n",
		info.ID, info.Model, info.Devices, info.Layers, info.Experts, info.Policy)

	// Subscribe to the session's SSE decision stream in parallel with the
	// polling loop below: every decision the POSTs receive must also
	// arrive as a pushed event, in planning order. The loop waits for the
	// subscription's hello frame so no decision precedes the subscriber.
	streamed := make(chan streamResult, 1)
	streamReady := make(chan struct{})
	go func() { streamed <- collectStream(base, info.ID, streamReady) }()
	select {
	case <-streamReady:
	case sr := <-streamed:
		log.Fatalf("decision stream: %v", sr.err)
	}

	// Replay the drifting trace stream — the engine's own observation
	// process (training.ObservationGenerator owns the within-epoch
	// constants) — posting each epoch's first-iteration routing as the
	// observation.
	gen, err := training.ObservationGenerator(trace.GeneratorConfig{
		Devices: info.Devices, Experts: info.Experts, Layers: info.Layers,
		TokensPerDevice: info.TokensPerDevice, TopK: info.TopK,
		Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %7s %10s %12s %10s %12s %8s\n", "epoch", "wire", "replans", "migrations", "imbalance", "solve (ms)", "match")
	mismatches := 0
	// clientTopo mirrors the cluster as the client believes it to be; after
	// the fault its observations come from survivors only (the data loader
	// reshards its stream), exactly as the engine folds them internally.
	clientTopo := topology.Default()
	var prevObs [][][]int
	responses := make([]serve.ObserveResponse, 0, *epochs)
	var topoResponses []serve.TopologyUpdateResponse
	for e := 0; e < *epochs; e++ {
		if e > 0 {
			if err := gen.ApplyDrift(trace.DriftConfig{Model: trace.DriftModel(*drift)}); err != nil {
				log.Fatal(err)
			}
		}
		if e == *faultEpoch {
			var tresp serve.TopologyUpdateResponse
			postJSON(base+"/v1/sessions/"+info.ID+"/topology", serve.TopologyUpdateRequest{
				Events: []faults.Event{{Kind: faults.NodeFail, Node: *failNode}},
			}, http.StatusOK, &tresp)
			if !sameJSON(tresp.Decisions, ref.Epochs[e].FaultDecisions) {
				mismatches++
			}
			restored := 0
			for _, d := range tresp.Decisions {
				restored += d.Restored
			}
			fmt.Printf("  -> node %d failed: %d devices remain, %d replicas restored, %.2fs recovery charge (match %v)\n",
				*failNode, tresp.AvailableDevices, restored, tresp.RecoveryChargeSeconds,
				sameJSON(tresp.Decisions, ref.Epochs[e].FaultDecisions))
			if err := clientTopo.RemoveNode(*failNode); err != nil {
				log.Fatal(err)
			}
			topoResponses = append(topoResponses, tresp)
		}
		var observation [][][]int
		for it := 0; it < *iters; it++ {
			routing := gen.Step()
			if it == 0 {
				observation = make([][][]int, len(routing))
				for l, m := range routing {
					observation[l] = m.R
				}
			}
		}
		if clientTopo.NumAvailable() != clientTopo.N() {
			observation = foldObservation(observation, clientTopo)
		}
		// Epochs after the first go over the sparse wire as routing_delta
		// against the daemon's retained matrix — except the fault epoch,
		// where the topology update invalidated that base and the contract
		// requires a dense repost. The decisions must be identical either
		// way: the delta reconstructs the same observation server-side.
		obsReq := serve.ObserveRequest{Routing: observation}
		wire := "dense"
		if e > 0 && e != *faultEpoch {
			obsReq = serve.ObserveRequest{Epoch: e, RoutingDelta: wireDeltas(prevObs, observation)}
			wire = "delta"
		}
		var resp serve.ObserveResponse
		postJSON(base+"/v1/sessions/"+info.ID+"/observe", obsReq, http.StatusOK, &resp)
		prevObs = copyObservation(observation)

		match := sameJSON(resp.Boundary, ref.Epochs[e].BoundaryDecisions) &&
			sameJSON(resp.Observation, ref.Epochs[e].ObservationDecisions) &&
			resp.Summary.Migrations == ref.Epochs[e].Migrations
		if !match {
			mismatches++
		}
		replans := 0
		for _, d := range append(append([]training.LayerDecision(nil), resp.Boundary...), resp.Observation...) {
			if d.Action != training.ActionKeep {
				replans++
			}
		}
		fmt.Printf("%-6d %7s %10d %12d %10.2f %12.1f %8v\n",
			resp.Epoch, wire, replans, resp.Summary.Migrations,
			resp.Summary.MeanPredictedImbalance, 1e3*resp.SolveSeconds, match)
		responses = append(responses, resp)
	}

	// Close the session; the daemon ends the SSE stream with a "closed"
	// frame, so the collector terminates and reports what it saw. Each
	// pushed decision must match the POST response for the same epoch
	// (compared decoded — the two paths escape JSON differently on the
	// wire but must agree on every value).
	req, _ := http.NewRequest("DELETE", base+"/v1/sessions/"+info.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		log.Fatal(err)
	} else {
		resp.Body.Close()
	}
	sr := <-streamed
	if sr.err != nil {
		log.Fatalf("decision stream: %v", sr.err)
	}
	streamOK := len(sr.decisions) == len(responses) && len(sr.topology) == len(topoResponses)
	if streamOK {
		for e := range responses {
			if sr.decisions[e].Epoch != responses[e].Epoch || !sameJSON(sr.decisions[e], responses[e]) {
				streamOK = false
			}
		}
		for i := range topoResponses {
			if !sameJSON(sr.topology[i], topoResponses[i]) {
				streamOK = false
			}
		}
	}
	if !streamOK {
		mismatches++
	}
	fmt.Printf("\nstream: %d decision events, %d topology events pushed (match %v)\n",
		len(sr.decisions), len(sr.topology), streamOK)
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	fmt.Println("\n/metrics excerpt:")
	for _, line := range strings.Split(string(mbody), "\n") {
		if strings.HasPrefix(line, "laer_serve_") &&
			(strings.Contains(line, "latency") || strings.Contains(line, "replan") ||
				strings.Contains(line, "epochs") || strings.Contains(line, "imbalance ") ||
				strings.Contains(line, "fault") || strings.Contains(line, "topology") ||
				strings.Contains(line, "restored") || strings.Contains(line, "stream") ||
				strings.Contains(line, "observes_") || strings.Contains(line, "payload")) {
			fmt.Println("  " + line)
		}
	}

	if cancelDaemon != nil {
		cancelDaemon()
		if err := <-daemonDone; err != nil {
			log.Fatalf("daemon shutdown: %v", err)
		}
		fmt.Println("\ndaemon drained cleanly")
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %d of %d epochs diverged from training.RunOnline\n", mismatches, *epochs)
		os.Exit(1)
	}
	fmt.Printf("\nOK: %d epochs of daemon decisions byte-identical to training.RunOnline (seed %d)\n", *epochs, *seed)
}

// streamResult is what the SSE collector saw before the stream ended.
type streamResult struct {
	decisions []serve.ObserveResponse
	topology  []serve.TopologyUpdateResponse
	err       error
}

// collectStream subscribes to the session's SSE feed, closes ready once
// the daemon's hello frame confirms the subscription, and gathers every
// pushed decision until the daemon ends the stream ("closed" on session
// close, "shutdown" on drain). Heartbeat comments are skipped.
func collectStream(base, id string, ready chan<- struct{}) streamResult {
	var sr streamResult
	resp, err := http.Get(base + "/v1/sessions/" + id + "/stream")
	if err != nil {
		sr.err = err
		return sr
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		sr.err = fmt.Errorf("stream status %d", resp.StatusCode)
		return sr
	}
	rd := bufio.NewReader(resp.Body)
	var event, data string
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			sr.err = fmt.Errorf("stream ended without a closed frame: %w", err)
			return sr
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "event: "):
			event = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			data = line[len("data: "):]
		case line == "" && event != "":
			switch event {
			case "session":
				close(ready)
			case "decision":
				var d serve.ObserveResponse
				if err := json.Unmarshal([]byte(data), &d); err != nil {
					sr.err = fmt.Errorf("decoding decision event %q: %w", data, err)
					return sr
				}
				sr.decisions = append(sr.decisions, d)
			case "topology":
				var t serve.TopologyUpdateResponse
				if err := json.Unmarshal([]byte(data), &t); err != nil {
					sr.err = fmt.Errorf("decoding topology event %q: %w", data, err)
					return sr
				}
				sr.topology = append(sr.topology, t)
			case "closed", "shutdown":
				return sr
			}
			event, data = "", ""
		}
	}
}

// postJSON posts a JSON body and decodes the JSON response, failing the
// run on any transport error or unexpected status.
func postJSON(url string, body any, wantStatus int, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		log.Fatalf("%s: status %d (want %d): %s", url, resp.StatusCode, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			log.Fatalf("%s: decoding %q: %v", url, data, err)
		}
	}
}

// wireDeltas diffs the previous observation against the current one,
// layer by layer, into the sparse wire form.
func wireDeltas(prev, next [][][]int) []*trace.WireDelta {
	deltas := make([]*trace.WireDelta, len(next))
	for l := range next {
		m := trace.NewRoutingMatrix(len(prev[l]), len(prev[l][0]))
		for d, row := range prev[l] {
			copy(m.R[d], row)
		}
		deltas[l] = trace.WireDiff(m, next[l])
	}
	return deltas
}

// copyObservation deep-copies an observation so the delta base survives
// the generator reusing its matrices on the next step.
func copyObservation(obs [][][]int) [][][]int {
	out := make([][][]int, len(obs))
	for l, rows := range obs {
		out[l] = make([][]int, len(rows))
		for d, row := range rows {
			out[l][d] = append([]int(nil), row...)
		}
	}
	return out
}

// foldObservation re-homes dead devices' routing rows onto the survivors
// (training.FoldLostRows) without touching the generator's own matrices.
func foldObservation(obs [][][]int, topo *topology.Topology) [][][]int {
	out := make([][][]int, len(obs))
	for l, rows := range obs {
		m := trace.NewRoutingMatrix(len(rows), len(rows[0]))
		for d, row := range rows {
			copy(m.R[d], row)
		}
		training.FoldLostRows(m, topo)
		out[l] = m.R
	}
	return out
}

func sameJSON(a, b any) bool {
	ja, err := json.Marshal(a)
	if err != nil {
		return false
	}
	jb, err := json.Marshal(b)
	if err != nil {
		return false
	}
	return bytes.Equal(ja, jb)
}
