// Convergence: the Fig. 9 study as an API walkthrough. Simulates the
// iteration time of LAER-MoE and Megatron under different auxiliary-loss
// weights, combines them with the convergence proxy, and reports which
// configuration reaches the target loss first in wall-clock time.
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"

	"laermoe"
	"laermoe/internal/viz"
)

func main() {
	configs := []struct {
		system string
		aux    float64
	}{
		{laermoe.SystemLAER, 1e-4},
		{laermoe.SystemMegatron, 1e-2},
		{laermoe.SystemMegatron, 1e-4},
	}

	// Target: the loss a long unregularized run reaches.
	_, ref := laermoe.LossCurve(2500, 2500, 0)
	target := ref[len(ref)-1]
	fmt.Printf("target loss: %.3f\n\n", target)

	for _, c := range configs {
		report, err := laermoe.Simulate(laermoe.SimOptions{
			System: c.system, Model: "mixtral-8x7b-e8k2",
			AuxLossWeight: c.aux, Iterations: 8, Warmup: 2, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Walk the loss curve until the target is reached.
		steps, losses := laermoe.LossCurve(20000, 50, c.aux)
		reached := steps[len(steps)-1]
		for i, l := range losses {
			if l <= target {
				reached = steps[i]
				break
			}
		}
		wallHours := float64(reached) * report.IterationTime / 3600
		fmt.Printf("%-9s aux=%.0e  %5.1f s/iter  %6d steps  %7.1f h to target   %s\n",
			c.system, c.aux, report.IterationTime, reached, wallHours,
			viz.Sparkline(losses[:min(len(losses), 60)]))
	}

	fmt.Println("\nHigh aux weights balance routing (fast iterations) but slow learning;")
	fmt.Println("LAER-MoE gets fast iterations at a low weight by balancing in the system.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
