// Quickstart: simulate Mixtral-8x7B training with LAER-MoE and the
// FSDP+EP baseline on the paper's 32-GPU cluster, and compare throughput,
// All-to-All share and load balance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"laermoe"
)

func main() {
	cluster := laermoe.DefaultCluster()
	fmt.Printf("cluster: %s\n\n", cluster)

	for _, system := range []string{laermoe.SystemFSDPEP, laermoe.SystemLAER} {
		report, err := laermoe.Simulate(laermoe.SimOptions{
			System:     system,
			Model:      "mixtral-8x7b-e8k2",
			Cluster:    cluster,
			Iterations: 10,
			Warmup:     2,
			Seed:       42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %.1f s/iter  %8.0f tokens/s  a2a %4.1f%%  imbalance %.2fx\n",
			report.System, report.IterationTime, report.Throughput,
			100*report.A2AShare, report.MeanImbalance)
	}

	fmt.Println("\nLAER-MoE re-plans the expert layout every iteration over FSEP,")
	fmt.Println("so the dynamic routing imbalance never accumulates into tail latency.")
}
