// Straggler: failure injection beyond the paper's evaluation. One GPU
// computes 2x slower; because the planner's cost model (Eq. 2) knows
// per-device compute throughput, LAER-MoE routes fewer tokens to the slow
// device, while static FSDP+EP keeps feeding it and stalls the cluster.
//
//	go run ./examples/straggler
package main

import (
	"fmt"
	"log"

	"laermoe"
)

func main() {
	for _, injected := range []bool{false, true} {
		fmt.Printf("--- straggler injected: %v ---\n", injected)
		for _, system := range []string{laermoe.SystemFSDPEP, laermoe.SystemLAER} {
			cluster := laermoe.DefaultCluster()
			if injected {
				if err := cluster.SetStraggler(5, 2.0); err != nil {
					log.Fatal(err)
				}
			}
			report, err := laermoe.Simulate(laermoe.SimOptions{
				System: system, Model: "mixtral-8x7b-e8k2", Cluster: cluster,
				Iterations: 8, Warmup: 2, Seed: 13,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s  %.1f s/iter  %8.0f tokens/s\n",
				report.System, report.IterationTime, report.Throughput)
		}
		fmt.Println()
	}
	fmt.Println("LAER-MoE absorbs part of the straggler's slowdown by shifting expert")
	fmt.Println("load to healthy devices; the static layout cannot.")
}
