// Scaling: two studies in one walkthrough.
//
// Part 1 is the Appendix-D study as an API walkthrough: scale the cluster
// from 8 to 64 GPUs and measure the MLP-module speedup (token All-to-All +
// expert computation) of LAER-MoE over static FSDP+EP.
//
// Part 2 is the production-scale online study the zero-allocation trace
// and warm-solve paths unlock: a 128-GPU cluster hosting a synthetic
// 512-expert pool (most experts hold exactly one replica — the large-E
// regime of Least-Loaded Expert Parallelism-style deployments), with the
// hot set migrating across epochs. Warm-start replanning follows it;
// static EP cannot. Run `laer-exp scale` for the full 512/1024-GPU sweep.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"os"

	"laermoe"
	"laermoe/internal/viz"
)

func main() {
	rows := [][]string{{"GPUs", "fsdp+ep MLP (s)", "laer MLP (s)", "speedup"}}
	for _, gpus := range []int{8, 16, 32, 64} {
		nodes := gpus / 8
		if nodes == 0 {
			nodes = 1
		}
		cluster, err := laermoe.NewCluster(laermoe.ClusterSpec{Nodes: nodes, GPUsPerNode: gpus / nodes})
		if err != nil {
			log.Fatal(err)
		}
		mlp := map[string]float64{}
		for _, system := range []string{laermoe.SystemFSDPEP, laermoe.SystemLAER} {
			report, err := laermoe.Simulate(laermoe.SimOptions{
				System: system, Model: "mixtral-8x7b-e8k2", Cluster: cluster,
				DatasetSkew: 1.15, Iterations: 8, Warmup: 2, Seed: 9,
				// Appendix D models the MLP module at fixed per-device
				// load, independent of memory feasibility at small N.
				ForceTokensPerDevice: 16384,
			})
			if err != nil {
				log.Fatal(err)
			}
			mlp[system] = report.Breakdown["a2a"] + report.Breakdown["expert"]
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", gpus),
			fmt.Sprintf("%.1f", mlp[laermoe.SystemFSDPEP]),
			fmt.Sprintf("%.1f", mlp[laermoe.SystemLAER]),
			fmt.Sprintf("%.3fx", mlp[laermoe.SystemFSDPEP]/mlp[laermoe.SystemLAER]),
		})
	}
	viz.Table(os.Stdout, rows)
	fmt.Println("\nThe re-layout speedup is stable as the cluster grows (paper Table 4).")

	// Part 2: online re-layout on a large fine-grained expert pool. The
	// synthetic-e512 catalog entry studies routing and re-layout, not
	// dense compute, so the per-device load is fixed explicitly.
	fmt.Println("\nOnline re-layout at scale: 128 GPUs, 512 experts, migrating hot set")
	cluster, err := laermoe.NewCluster(laermoe.ClusterSpec{Nodes: 16, GPUsPerNode: 8})
	if err != nil {
		log.Fatal(err)
	}
	online := [][]string{{"policy", "tokens/s", "migrations", "imbalance (last epoch)"}}
	for _, policy := range []string{laermoe.PolicyStatic, laermoe.PolicyWarm} {
		rep, err := laermoe.SimulateOnline(laermoe.OnlineOptions{
			Spec: laermoe.OnlineSessionSpec{
				Policy: policy, Model: "synthetic-e512",
				IterationsPerEpoch:   3,
				ForceTokensPerDevice: 2048,
				GlobalBatchTokens:    16 * 8 * 2048,
				Seed:                 9,
			},
			Cluster: cluster,
			Epochs:  3,
			Drift:   laermoe.DriftMigration, DriftRate: 0.3,
		})
		if err != nil {
			log.Fatal(err)
		}
		last := rep.Epochs[len(rep.Epochs)-1]
		online = append(online, []string{
			policy,
			fmt.Sprintf("%.0f", rep.MeanThroughput),
			fmt.Sprintf("%d", rep.TotalMigrations),
			fmt.Sprintf("%.2f", last.Imbalance),
		})
	}
	viz.Table(os.Stdout, online)
	fmt.Println("\nWarm-start replanning tracks the rotating hot set; static EP's imbalance compounds.")
}
