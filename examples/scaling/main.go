// Scaling: the Appendix-D study as an API walkthrough. Scales the cluster
// from 8 to 64 GPUs and measures the MLP-module speedup (token All-to-All
// + expert computation) of LAER-MoE over static FSDP+EP.
//
//	go run ./examples/scaling
package main

import (
	"fmt"
	"log"
	"os"

	"laermoe"
	"laermoe/internal/viz"
)

func main() {
	rows := [][]string{{"GPUs", "fsdp+ep MLP (s)", "laer MLP (s)", "speedup"}}
	for _, gpus := range []int{8, 16, 32, 64} {
		nodes := gpus / 8
		if nodes == 0 {
			nodes = 1
		}
		cluster, err := laermoe.NewCluster(laermoe.ClusterSpec{Nodes: nodes, GPUsPerNode: gpus / nodes})
		if err != nil {
			log.Fatal(err)
		}
		mlp := map[string]float64{}
		for _, system := range []string{laermoe.SystemFSDPEP, laermoe.SystemLAER} {
			report, err := laermoe.Simulate(laermoe.SimOptions{
				System: system, Model: "mixtral-8x7b-e8k2", Cluster: cluster,
				DatasetSkew: 1.15, Iterations: 8, Warmup: 2, Seed: 9,
				// Appendix D models the MLP module at fixed per-device
				// load, independent of memory feasibility at small N.
				ForceTokensPerDevice: 16384,
			})
			if err != nil {
				log.Fatal(err)
			}
			mlp[system] = report.Breakdown["a2a"] + report.Breakdown["expert"]
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", gpus),
			fmt.Sprintf("%.1f", mlp[laermoe.SystemFSDPEP]),
			fmt.Sprintf("%.1f", mlp[laermoe.SystemLAER]),
			fmt.Sprintf("%.3fx", mlp[laermoe.SystemFSDPEP]/mlp[laermoe.SystemLAER]),
		})
	}
	viz.Table(os.Stdout, rows)
	fmt.Println("\nThe re-layout speedup is stable as the cluster grows (paper Table 4).")
}
