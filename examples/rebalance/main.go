// Rebalance: a single-layer deep dive into the planner. Generates one
// skewed routing matrix, solves the expert re-layout with the paper's
// Algorithms 1-4, and shows how replica counts and device loads change
// versus static expert parallelism (the Fig. 6 scenario).
//
//	go run ./examples/rebalance
package main

import (
	"fmt"
	"log"
	"os"

	"laermoe"
	"laermoe/internal/viz"
)

func main() {
	cluster := laermoe.DefaultCluster()

	// One iteration of routing for an 8-expert layer with top-2 gating —
	// imbalanced, as real traces are (Fig. 1a).
	routing, err := laermoe.GenerateRouting(cluster, 8, 16384, 2, 0, 7)
	if err != nil {
		log.Fatal(err)
	}

	expertTotals := make([]float64, 8)
	labels := make([]string, 8)
	for j := 0; j < 8; j++ {
		for i := range routing {
			expertTotals[j] += float64(routing[i][j])
		}
		labels[j] = fmt.Sprintf("expert %d", j)
	}
	fmt.Println("observed expert loads (tokens):")
	viz.BarChart(os.Stdout, labels, expertTotals, 40, "")

	plan, err := laermoe.PlanLayout(laermoe.PlanRequest{
		Cluster: cluster, Routing: routing, Capacity: 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreplica allocation (Alg. 4 — hot experts get more replicas):")
	for j, reps := range plan.Replicas {
		fmt.Printf("  expert %d: %2d replicas\n", j, reps)
	}

	fmt.Printf("\ndevice load imbalance: static EP %.2fx  ->  LAER plan %.2fx  (1.0 = perfect)\n",
		plan.ImbalanceBefore, plan.ImbalanceAfter)
	fmt.Println("\nThe planner replicates hot experts across under-loaded devices and the")
	fmt.Println("lite router splits their tokens among intra-node replicas (Alg. 1 + 3).")
}
