// Predictive re-layout: remove the observation lag that every reactive
// replanning policy pays. The warm policy must execute each drift
// window's first iteration on stale layouts — that iteration *is* the
// observation its replan is solved from (the paper's Fig. 7 adaptation
// lag, at epoch scale). The predictive policy forecasts the post-drift
// expert loads from the history and replans at the epoch boundary
// instead, before the first iteration executes.
//
// The walkthrough runs a smooth "stabilizing" drift (expert load
// fluctuates early and converges late, the forecastable regime) and an
// abrupt "bursty" drift (random hot-set replacement, the unforecastable
// one), with relocation charged per moved replica, and compares the warm
// baseline against the predictive policy under each load predictor:
// last-value persistence, an exponential moving average, and a sliding-
// window linear trend.
//
//	go run ./examples/forecast            # full walkthrough
//	go run ./examples/forecast -quick     # CI-sized run
package main

import (
	"flag"
	"fmt"
	"log"

	"laermoe"
)

func main() {
	quick := flag.Bool("quick", false, "CI-sized run (fewer, shorter epochs; trends have less room to shine)")
	flag.Parse()
	epochs, epochIters := 10, 8
	if *quick {
		epochs, epochIters = 5, 4
	}

	cluster := laermoe.DefaultCluster()
	fmt.Printf("cluster: %s\n", cluster)

	run := func(policy, predictor, drift string) *laermoe.OnlineReport {
		rep, err := laermoe.SimulateOnline(laermoe.OnlineOptions{
			Spec: laermoe.OnlineSessionSpec{
				Policy: policy, Predictor: predictor,
				Model:              "mixtral-8x7b-e8k2",
				IterationsPerEpoch: epochIters,
				// Charge relocation per moved replica so churn costs real
				// time (RelocationCost would model full optimizer-state
				// moves; at this epoch length those would suppress all
				// adaptation, so charge a tenth — an NVLink-domain move).
				MigrationCostPerReplica: 0.017,
				Seed:                    1,
			},
			Epochs: epochs,
			Drift:  drift,
		})
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	// OnlineReport.ObservationLag is how much slower the drift windows'
	// first iterations ran than their steady ones (net of migration
	// charges landing there), over the epochs where a predictor can have
	// earned trust.
	for _, drift := range []string{laermoe.DriftStabilizing, laermoe.DriftBursty} {
		fmt.Printf("\n== drift %s ==\n", drift)
		warm := run(laermoe.PolicyWarm, "", drift)
		fmt.Printf("%-18s  %14s  %10s  %12s  %9s  %8s\n",
			"policy", "total step (s)", "tokens/s", "obs lag (s)", "predicted", "fc err")
		fmt.Printf("%-18s  %14.1f  %10.0f  %12.2f  %9d  %8s\n",
			"warm", warm.TotalStepTime, warm.MeanThroughput, warm.ObservationLag, 0, "-")
		for _, predictor := range laermoe.Predictors() {
			rep := run(laermoe.PolicyPredictive, predictor, drift)
			predicted := 0
			for _, e := range rep.Epochs {
				predicted += e.PredictedLayers
			}
			fmt.Printf("%-18s  %14.1f  %10.0f  %12.2f  %9d  %8.3f\n",
				"predictive/"+predictor, rep.TotalStepTime, rep.MeanThroughput,
				rep.ObservationLag, predicted, rep.MeanForecastError)
		}
	}

	fmt.Println("\nOn the smooth drift the trend predictor earns trust after two")
	fmt.Println("accurate shadow windows, replans at the boundary and removes most")
	fmt.Println("of the first-iteration lag; persistence and EMA forecasts carry no")
	fmt.Println("anticipation, so they buy little. On the bursty drift every")
	fmt.Println("forecast misses, the confidence fallback keeps the policy reactive,")
	fmt.Println("and the predictive rows collapse onto the warm baseline.")
}
