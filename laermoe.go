// Package laermoe is the public API of the LAER-MoE reproduction: a
// simulation library for load-adaptive expert re-layout in
// Mixture-of-Experts training (Liu et al., ASPLOS 2026).
//
// The package wraps the internal substrates — cluster/topology model,
// synthetic routing traces, the FSEP data plane, the load-balancing
// planner (Algorithms 1-4), the discrete-event executor and the baseline
// systems — behind plain types:
//
//	cluster, _ := laermoe.NewCluster(laermoe.ClusterSpec{Nodes: 4, GPUsPerNode: 8})
//	report, _ := laermoe.Simulate(laermoe.SimOptions{
//	    System:  laermoe.SystemLAER,
//	    Model:   "mixtral-8x7b-e8k2",
//	    Cluster: cluster,
//	})
//	fmt.Printf("%.0f tokens/s, a2a share %.1f%%\n", report.Throughput, 100*report.A2AShare)
//
// See the examples/ directory for runnable walkthroughs and cmd/ for the
// command line tools.
package laermoe

import (
	"fmt"
	"io"

	"laermoe/internal/costmodel"
	"laermoe/internal/experiments"
	"laermoe/internal/faults"
	"laermoe/internal/forecast"
	"laermoe/internal/model"
	"laermoe/internal/planner"
	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
	"laermoe/internal/training"
	"laermoe/session"
)

// System names accepted by Simulate.
const (
	SystemLAER      = "laer"
	SystemFSDPEP    = "fsdp+ep"
	SystemMegatron  = "megatron"
	SystemFlexMoE   = "flexmoe"
	SystemSmartMoE  = "smartmoe"
	SystemFasterMoE = "fastermoe"
	SystemBalanced  = "balanced"
)

// Systems returns every simulatable system name.
func Systems() []string {
	out := make([]string, 0, len(training.Systems()))
	for _, s := range training.Systems() {
		out = append(out, string(s))
	}
	return out
}

// Models returns the catalog of evaluated model configurations.
func Models() []string { return model.Names() }

// ClusterSpec describes a simulated GPU cluster. Zero-valued bandwidth and
// compute fields default to the paper's A100 constants.
type ClusterSpec struct {
	Nodes       int
	GPUsPerNode int
	// IntraBW and InterBW are unidirectional point-to-point bandwidths in
	// bytes/s (0 → NVLink 300 GB/s and per-GPU InfiniBand 12.5 GB/s).
	IntraBW float64
	InterBW float64
	// EffectiveFLOPS is per-GPU sustained compute (0 → 312 TF x 45% MFU).
	EffectiveFLOPS float64
}

// Cluster is a configured topology handle.
type Cluster struct {
	topo *topology.Topology
}

// NewCluster builds a cluster from a spec.
func NewCluster(spec ClusterSpec) (*Cluster, error) {
	if spec.Nodes <= 0 || spec.GPUsPerNode <= 0 {
		return nil, fmt.Errorf("laermoe: cluster needs positive nodes and GPUs per node")
	}
	t := topology.New(spec.Nodes, spec.GPUsPerNode)
	if spec.IntraBW > 0 {
		t.IntraBW = spec.IntraBW
	}
	if spec.InterBW > 0 {
		t.InterBW = spec.InterBW
	}
	if spec.EffectiveFLOPS > 0 {
		t.FLOPS = spec.EffectiveFLOPS
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &Cluster{topo: t}, nil
}

// DefaultCluster returns the paper's evaluation cluster (4 nodes x 8
// A100-80GB).
func DefaultCluster() *Cluster { return &Cluster{topo: topology.Default()} }

// GPUs returns the total device count.
func (c *Cluster) GPUs() int { return c.topo.N() }

// SetStraggler marks one GPU as computing `factor` times slower than
// nominal (factor >= 1), for failure-injection studies.
func (c *Cluster) SetStraggler(gpu int, factor float64) error {
	return c.topo.SetSlowdown(gpu, factor)
}

// String describes the cluster.
func (c *Cluster) String() string { return c.topo.String() }

// SimOptions configures one simulated training run.
type SimOptions struct {
	// System is one of the System* constants.
	System string
	// Model is a catalog name from Models().
	Model string
	// Cluster is the simulated hardware (nil → DefaultCluster).
	Cluster *Cluster

	// AuxLossWeight is the auxiliary load-balancing loss weight shaping
	// the routing distribution (0 disables it).
	AuxLossWeight float64
	// DatasetSkew overrides the routing concentration (0 → default 1.0).
	DatasetSkew float64

	Iterations int // 0 → 12
	Warmup     int // 0 → 3
	Seed       int64

	// ForceTokensPerDevice bypasses the memory fitter (used by
	// MLP-module-only scaling studies; leave 0 normally).
	ForceTokensPerDevice int
}

// SimReport summarizes a simulated run.
type SimReport struct {
	System string
	Model  string

	IterationTime float64 // mean post-warmup seconds per iteration
	Throughput    float64 // tokens per second
	GlobalBatch   int     // tokens per iteration

	// Breakdown maps activity → mean seconds per iteration across ranks
	// ("a2a", "expert", "attention", "prefetch", "gradsync", "tpcomm",
	// "gate", "dispatcher", "other").
	Breakdown map[string]float64
	// A2AShare is the token All-to-All fraction of attributed time.
	A2AShare float64
	// PerLayerImbalance is the relative max token count per MoE layer
	// (1.0 = perfect balance).
	PerLayerImbalance []float64
	// MeanImbalance averages PerLayerImbalance.
	MeanImbalance float64
	// PlannerTime is the measured CPU seconds per iteration spent solving
	// re-layout strategies (LAER and FlexMoE).
	PlannerTime float64

	// TPDegree and TokensPerDevice are the memory fitter's choices.
	TPDegree        int
	TokensPerDevice int
}

// Simulate runs a multi-iteration training simulation.
func Simulate(opts SimOptions) (*SimReport, error) {
	if opts.Cluster == nil {
		opts.Cluster = DefaultCluster()
	}
	arch, err := model.ByName(opts.Model)
	if err != nil {
		return nil, err
	}
	if opts.Iterations == 0 {
		opts.Iterations = 12
	}
	if opts.Warmup == 0 {
		opts.Warmup = 3
	}
	cfg := training.RunConfig{
		System:               training.System(opts.System),
		Arch:                 arch,
		Topo:                 opts.Cluster.topo,
		AuxLossWeight:        opts.AuxLossWeight,
		TraceSkew:            opts.DatasetSkew,
		Iterations:           opts.Iterations,
		Warmup:               opts.Warmup,
		Seed:                 opts.Seed,
		ForceTokensPerDevice: opts.ForceTokensPerDevice,
	}
	setup, err := training.Prepare(cfg)
	if err != nil {
		return nil, err
	}
	run, err := training.Run(cfg)
	if err != nil {
		return nil, err
	}
	bd := run.MeanBreakdown()
	imb := run.MeanPerLayerImbalance()
	plannerTime := 0.0
	if n := len(run.Iterations); n > 0 {
		plannerTime = run.Iterations[n-1].PlannerTime
	}
	return &SimReport{
		System:        string(cfg.System),
		Model:         arch.Name,
		IterationTime: run.MeanIterationTime(),
		Throughput:    run.Throughput(),
		GlobalBatch:   run.GlobalBatch,
		Breakdown: map[string]float64{
			"attention": bd.Attention, "gate": bd.Gate, "dispatcher": bd.Dispatcher,
			"expert": bd.Expert, "a2a": bd.A2A, "prefetch": bd.Prefetch,
			"gradsync": bd.GradSync, "tpcomm": bd.TPComm, "other": bd.Other,
		},
		A2AShare:          bd.A2AShare(),
		PerLayerImbalance: imb,
		MeanImbalance:     stats.Mean(imb),
		PlannerTime:       plannerTime,
		TPDegree:          setup.TPDegree,
		TokensPerDevice:   setup.TokensPerDev,
	}, nil
}

// Replan policy names accepted by SimulateOnline. The names are aliases
// into the policy registry — LookupPolicy resolves them to their
// PolicySpec entries.
const (
	PolicyStatic  = "static"
	PolicyScratch = "scratch"
	PolicyWarm    = "warm"
	// PolicyPredictive forecasts each epoch's expert loads and replans
	// before the epoch's first iteration executes, removing the
	// observation lag the reactive policies pay; it falls back to warm
	// behaviour whenever the forecast cannot be trusted.
	PolicyPredictive = "predictive"
	// PolicyLLEP never re-lays-out: it routes every token block to the
	// least-loaded replica of its expert at dispatch time (LLEP-style
	// serving baseline).
	PolicyLLEP = "llep"
	// PolicyScoreBalance never re-lays-out: it blends each device's
	// routing distribution toward uniform before apportioning tokens
	// (score-distribution balancing baseline).
	PolicyScoreBalance = "score-balance"
)

// Workload names accepted by OnlineOptions.Workload.
const (
	// WorkloadTraining is the classic multi-epoch training workload
	// (step-time objective, the default).
	WorkloadTraining = "training"
	// WorkloadInference drives request-level decode traffic through the
	// same planning loop and reports p50/p99 decode latency.
	WorkloadInference = "inference"
)

// Arrival shape names accepted by OnlineOptions.Arrival (inference
// workload only).
const (
	// ArrivalDiurnal modulates the request rate sinusoidally (day/night
	// cycle, the default).
	ArrivalDiurnal = "diurnal"
	// ArrivalBursty idles below the mean and spikes during flash-crowd
	// burst episodes.
	ArrivalBursty = "bursty"
)

// PolicySpec describes one registered replan policy. Replans reports that
// the policy plans re-layouts from observations; Tracks that it carries
// incremental drift trackers; Predictive that it forecasts loads at epoch
// boundaries. The dispatch-time baselines (llep, score-balance) have all
// three false.
type PolicySpec struct {
	Name        string
	Description string
	Replans     bool
	Tracks      bool
	Predictive  bool
}

// WorkloadSpec describes one registered workload.
type WorkloadSpec struct {
	Name        string
	Description string
}

// PredictorSpec describes one registered load predictor.
type PredictorSpec struct {
	Name        string
	Description string
}

// DriftSpec describes one registered drift model.
type DriftSpec struct {
	Name        string
	Description string
}

// LookupPolicy resolves a policy name to its registry entry, failing fast
// with the valid set on an unknown name.
func LookupPolicy(name string) (PolicySpec, error) {
	spec, err := training.ResolvePolicy(training.ReplanPolicy(name))
	if err != nil {
		return PolicySpec{}, err
	}
	return PolicySpec{
		Name: string(spec.Name), Description: spec.Description,
		Replans: spec.Replans, Tracks: spec.Tracks, Predictive: spec.Predictive,
	}, nil
}

// LookupWorkload resolves a workload name to its registry entry.
func LookupWorkload(name string) (WorkloadSpec, error) {
	spec, err := training.ResolveWorkload(training.Workload(name))
	if err != nil {
		return WorkloadSpec{}, err
	}
	return WorkloadSpec{Name: string(spec.Name), Description: spec.Description}, nil
}

// LookupPredictor resolves a predictor name to its registry entry.
func LookupPredictor(name string) (PredictorSpec, error) {
	spec, err := training.ResolvePredictor(forecast.Kind(name))
	if err != nil {
		return PredictorSpec{}, err
	}
	return PredictorSpec{Name: string(spec.Name), Description: spec.Description}, nil
}

// LookupDrift resolves a drift-model name to its registry entry.
func LookupDrift(name string) (DriftSpec, error) {
	spec, err := training.ResolveDrift(trace.DriftModel(name))
	if err != nil {
		return DriftSpec{}, err
	}
	return DriftSpec{Name: string(spec.Name), Description: spec.Description}, nil
}

// PolicySpecs returns every registered replan policy, in registration
// order.
func PolicySpecs() []PolicySpec {
	specs := training.PolicySpecs()
	out := make([]PolicySpec, len(specs))
	for i, s := range specs {
		out[i] = PolicySpec{
			Name: string(s.Name), Description: s.Description,
			Replans: s.Replans, Tracks: s.Tracks, Predictive: s.Predictive,
		}
	}
	return out
}

// WorkloadSpecs returns every registered workload.
func WorkloadSpecs() []WorkloadSpec {
	specs := training.WorkloadSpecs()
	out := make([]WorkloadSpec, len(specs))
	for i, s := range specs {
		out[i] = WorkloadSpec{Name: string(s.Name), Description: s.Description}
	}
	return out
}

// PredictorSpecs returns every registered load predictor.
func PredictorSpecs() []PredictorSpec {
	specs := training.PredictorSpecs()
	out := make([]PredictorSpec, len(specs))
	for i, s := range specs {
		out[i] = PredictorSpec{Name: string(s.Name), Description: s.Description}
	}
	return out
}

// DriftSpecs returns every registered drift model.
func DriftSpecs() []DriftSpec {
	specs := training.DriftSpecs()
	out := make([]DriftSpec, len(specs))
	for i, s := range specs {
		out[i] = DriftSpec{Name: string(s.Name), Description: s.Description}
	}
	return out
}

// Policies returns every online replanning policy name.
func Policies() []string {
	out := make([]string, 0, len(training.ReplanPolicies()))
	for _, p := range training.ReplanPolicies() {
		out = append(out, string(p))
	}
	return out
}

// Workloads returns every online workload name.
func Workloads() []string {
	specs := training.WorkloadSpecs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = string(s.Name)
	}
	return out
}

// Arrivals returns every inference arrival-shape name.
func Arrivals() []string {
	shapes := trace.ArrivalShapes()
	out := make([]string, len(shapes))
	for i, s := range shapes {
		out[i] = string(s)
	}
	return out
}

// Predictor names accepted by OnlineOptions.Predictor.
const (
	// PredictorLast forecasts that the next window repeats the current
	// one (persistence).
	PredictorLast = "last"
	// PredictorEMA forecasts the exponential moving average of the
	// history — noise-robust, deliberately lagging sustained drift.
	PredictorEMA = "ema"
	// PredictorTrend fits a per-expert least-squares line over a sliding
	// window and extrapolates one step ahead — the only predictor that
	// anticipates sustained drift instead of chasing it (the default).
	PredictorTrend = "trend"
)

// Predictors returns every load-predictor name.
func Predictors() []string {
	out := make([]string, 0, len(forecast.Kinds()))
	for _, k := range forecast.Kinds() {
		out = append(out, string(k))
	}
	return out
}

// Drift model names accepted by SimulateOnline.
const (
	DriftNone        = "none"
	DriftStabilizing = "stabilizing"
	DriftBursty      = "bursty"
	DriftMigration   = "migration"
)

// DriftModels returns every drift model name.
func DriftModels() []string {
	out := make([]string, 0, len(trace.DriftModels()))
	for _, m := range trace.DriftModels() {
		out = append(out, string(m))
	}
	return out
}

// OnlineSessionSpec is the shared online-session specification — policy,
// workload, predictor, thresholds, batch shape — embedded by
// OnlineOptions, by the laer-serve SessionSpec and by the laer-bench
// session builder, so the three surfaces can never drift apart. See
// package laermoe/session for the field documentation.
type OnlineSessionSpec = session.Spec

// OnlineOptions configures one multi-epoch online re-layout simulation:
// the routing distribution drifts at every epoch boundary and the chosen
// policy replans the expert layouts as the run progresses. The embedded
// Spec carries everything an online session shares with the laer-serve
// wire format (policy, workload, predictor, thresholds, batch shape);
// the fields below are simulation-only knobs the service has no use for.
type OnlineOptions struct {
	// Spec is the shared session specification. Its fields are promoted:
	// read opts.Policy as before, but composite literals now set
	// Spec: laermoe.OnlineSessionSpec{Policy: ...}.
	session.Spec

	// Cluster is the simulated hardware (nil → DefaultCluster).
	Cluster *Cluster

	// Epochs is the number of drift windows (0 → 4).
	Epochs int

	// Drift is one of the Drift* constants (default DriftStabilizing) and
	// DriftRate its strength in (0,1] (0 → 0.5). Training workload only.
	Drift     string
	DriftRate float64

	// RestoreCostPerReplica is the wall time charged per expert replica
	// re-read from the sharded optimizer checkpoint during fault recovery
	// (seconds). 0 selects the modeled default (CheckpointRestoreCost),
	// negative makes restores free.
	RestoreCostPerReplica float64

	// Parallelism bounds the goroutines solving per-layer layouts (and
	// synthesizing per-layer routing) at an epoch boundary (0 → all CPUs).
	// The report is identical at any setting.
	Parallelism int
}

// LayerDecision is one planning step's re-layout decision for one MoE
// layer — what happened ("keep", "warm-replan", "scratch-replan",
// "predictive-replan"), the replica moves it cost, and the balance the
// planner predicts for the layout left in force. The laer-serve daemon
// returns the same decisions (as the same JSON) for the same observations.
type LayerDecision struct {
	Layer  int    `json:"layer"`
	Action string `json:"action"`

	Moves         int     `json:"moves"`
	MigrationTime float64 `json:"migration_time_s"`

	// Restored counts expert replicas re-read from checkpoint by a fault
	// recovery decision, and RestoreTime the wall time charged for them
	// (both zero outside fault recovery).
	Restored    int     `json:"restored,omitempty"`
	RestoreTime float64 `json:"restore_time_s,omitempty"`

	// PredictedImbalance is the relative max per-device token load the
	// planner expects from the layout left in force, under the routing
	// that drove the decision (1.0 = perfect balance).
	PredictedImbalance float64 `json:"predicted_imbalance"`
	// ForecastError is the realized-vs-predicted relative load error
	// attached to the decision (0 for non-predictive runs).
	ForecastError float64 `json:"forecast_error"`
}

// OnlineEpochReport summarizes one epoch of an online run.
type OnlineEpochReport struct {
	Epoch int

	StepTime      float64 // summed simulated wall time of the epoch
	IterationTime float64 // mean seconds per iteration
	Throughput    float64 // tokens per second

	// IterationTimes is each iteration's simulated wall time in order,
	// migration charges included where they land (the first iteration for
	// forecast-driven boundary replans, the second for observation
	// replans). The first-vs-rest gap is the observation-lag penalty the
	// predictive policy removes.
	IterationTimes []float64

	Migrations    int     // expert replicas relocated entering this epoch
	MigrationTime float64 // seconds charged for those relocations
	// BoundaryMigrationTime is the portion of MigrationTime charged on
	// the epoch's first iteration by predictive boundary replans.
	BoundaryMigrationTime float64
	Imbalance             float64 // mean relative max device load (1.0 = perfect)
	PlannerTime           float64 // measured CPU seconds of the epoch's solves

	// Requests counts the decode requests served this epoch, and
	// DecodeP50/DecodeP99 their decode-latency percentiles in seconds
	// (inference workload only; all zero for training).
	Requests  int
	DecodeP50 float64
	DecodeP99 float64

	// PredictedLayers counts layers whose boundary replan acted on a
	// forecast, CorrectedLayers those where the post-observation
	// refinement overrode the forecast layout, and ForecastError the mean
	// realized-vs-predicted relative load error across forecasting layers
	// (all zero for non-predictive policies).
	PredictedLayers int
	CorrectedLayers int
	ForecastError   float64

	// BoundaryDecisions are the per-layer forecast-driven decisions taken
	// at the epoch boundary (predictive policy only; nil otherwise), and
	// ObservationDecisions the per-layer decisions of the post-observation
	// replan (nil for the static policy).
	BoundaryDecisions    []LayerDecision
	ObservationDecisions []LayerDecision

	// FaultEvents lists the fault-schedule events that fired during this
	// epoch (wire syntax), FaultDecisions the per-layer recovery decisions
	// they forced, and Restored/RestoreTime the checkpoint re-read volume
	// and charge they cost. All empty on fault-free epochs.
	FaultEvents    []string
	FaultDecisions []LayerDecision
	Restored       int
	RestoreTime    float64
}

// FaultRecovery summarizes how one fault epoch was absorbed: what fired,
// what the recovery re-read from checkpoint, the step-time it added over
// the previous epoch, and how many epochs the policy needed to return to
// within 10% of the pre-fault imbalance (-1 = never within the run).
type FaultRecovery struct {
	Epoch           int      `json:"epoch"`
	Events          []string `json:"events"`
	Restored        int      `json:"restored"`
	RestoreTime     float64  `json:"restore_time_s"`
	AddedStepTime   float64  `json:"added_step_time_s"`
	EpochsToRecover int      `json:"epochs_to_recover"`
}

// OnlineReport summarizes a multi-epoch online run.
type OnlineReport struct {
	Policy string
	// Workload names what the run planned for ("training" or
	// "inference") and Arrival the traffic shape of an inference run
	// (empty for training).
	Workload string
	Arrival  string
	Drift    string
	Model    string
	// Predictor is the forecaster PolicyPredictive ran with (empty for
	// other policies).
	Predictor string

	Epochs      []OnlineEpochReport
	GlobalBatch int // tokens per iteration across the cluster

	// Recoveries derives one record per fault epoch (empty without a
	// FaultSchedule).
	Recoveries []FaultRecovery

	// TotalStepTime is the cumulative simulated step time — the headline
	// number replanning policies compete on — and TotalMigrations the
	// total relocation volume in expert replicas.
	TotalStepTime   float64
	TotalMigrations int
	// MeanThroughput is tokens/s over the whole run.
	MeanThroughput float64
	// MeanForecastError averages the per-epoch realized-vs-predicted
	// relative load error over forecasting epochs (0 for non-predictive
	// policies).
	MeanForecastError float64
	// DecodeP50/DecodeP99 are the run's request decode-latency
	// percentiles in seconds (inference workload only; 0 for training).
	DecodeP50 float64
	DecodeP99 float64
	// ObservationLag sums, over the epochs where a predictor can have
	// earned trust (>= 3), the gap between each epoch's first iteration —
	// net of boundary migration charges — and its steady iterations: the
	// Fig. 7 adaptation-lag penalty the predictive policy removes,
	// measured identically for every policy.
	ObservationLag float64
}

// SimulateOnline runs a multi-epoch training simulation whose routing
// trace drifts between epochs, replanning expert layouts per the chosen
// policy and replaying every epoch against the evolving layout. Compare
// PolicyWarm against PolicyStatic and PolicyScratch on the same options to
// measure what load-adaptive re-layout buys end to end.
func SimulateOnline(opts OnlineOptions) (*OnlineReport, error) {
	if opts.Cluster == nil {
		opts.Cluster = DefaultCluster()
	}
	if opts.Model == "" {
		opts.Model = "mixtral-8x7b-e8k2"
	}
	if opts.Policy == "" {
		opts.Policy = PolicyWarm
	}
	arch, err := model.ByName(opts.Model)
	if err != nil {
		return nil, err
	}
	sched, err := faults.Parse(opts.FaultSchedule)
	if err != nil {
		return nil, err
	}
	rep, err := training.RunOnline(training.OnlineConfig{
		Policy:   training.ReplanPolicy(opts.Policy),
		Workload: training.Workload(opts.Workload),
		Arrival:  trace.ArrivalShape(opts.Arrival),
		Arch:     arch,
		Topo:     opts.Cluster.topo,
		Epochs:   opts.Epochs, IterationsPerEpoch: opts.IterationsPerEpoch,
		Drift:                   trace.DriftConfig{Model: trace.DriftModel(opts.Drift), Rate: opts.DriftRate},
		MigrationThreshold:      opts.MigrationThreshold,
		MigrationCostPerReplica: opts.MigrationCostPerReplica,
		Faults:                  sched,
		RestoreCostPerReplica:   opts.RestoreCostPerReplica,
		Predictor:               forecast.Kind(opts.Predictor),
		ConfidenceThreshold:     opts.ConfidenceThreshold,
		AuxLossWeight:           opts.AuxLossWeight,
		TraceSkew:               opts.DatasetSkew,
		ForceTokensPerDevice:    opts.ForceTokensPerDevice,
		GlobalBatchTokens:       opts.GlobalBatchTokens,
		Parallelism:             opts.Parallelism,
		Seed:                    opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &OnlineReport{
		Policy:            string(rep.Policy),
		Workload:          string(rep.Workload),
		Arrival:           string(rep.Arrival),
		Drift:             string(rep.Drift),
		Model:             rep.Model,
		Predictor:         string(rep.Predictor),
		GlobalBatch:       rep.GlobalBatch,
		TotalStepTime:     rep.TotalStepTime,
		TotalMigrations:   rep.TotalMigrations,
		MeanThroughput:    rep.MeanThroughput(),
		MeanForecastError: rep.MeanForecastError(),
		ObservationLag:    rep.ObservationLag(),
		DecodeP50:         rep.DecodeP50,
		DecodeP99:         rep.DecodeP99,
	}
	for _, e := range rep.Epochs {
		out.Epochs = append(out.Epochs, OnlineEpochReport{
			Epoch:                 e.Epoch,
			StepTime:              e.StepTime,
			IterationTime:         e.IterationTime,
			Throughput:            e.Throughput,
			IterationTimes:        append([]float64(nil), e.IterationTimes...),
			Migrations:            e.Migrations,
			MigrationTime:         e.MigrationTime,
			BoundaryMigrationTime: e.BoundaryMigrationTime,
			Imbalance:             e.Imbalance,
			PlannerTime:           e.PlannerTime,
			Requests:              e.Requests,
			DecodeP50:             e.DecodeP50,
			DecodeP99:             e.DecodeP99,
			PredictedLayers:       e.PredictedLayers,
			CorrectedLayers:       e.CorrectedLayers,
			ForecastError:         e.ForecastError,
			BoundaryDecisions:     publicDecisions(e.BoundaryDecisions),
			ObservationDecisions:  publicDecisions(e.ObservationDecisions),
			FaultEvents:           append([]string(nil), e.FaultEvents...),
			FaultDecisions:        publicDecisions(e.FaultDecisions),
			Restored:              e.Restored,
			RestoreTime:           e.RestoreTime,
		})
	}
	for _, r := range rep.Recoveries {
		out.Recoveries = append(out.Recoveries, FaultRecovery{
			Epoch:           r.Epoch,
			Events:          append([]string(nil), r.Events...),
			Restored:        r.Restored,
			RestoreTime:     r.RestoreTime,
			AddedStepTime:   r.AddedStepTime,
			EpochsToRecover: r.EpochsToRecover,
		})
	}
	return out, nil
}

func publicDecisions(ds []training.LayerDecision) []LayerDecision {
	if ds == nil {
		return nil
	}
	out := make([]LayerDecision, len(ds))
	for i, d := range ds {
		out[i] = LayerDecision{
			Layer: d.Layer, Action: string(d.Action),
			Moves: d.Moves, MigrationTime: d.MigrationTime,
			Restored: d.Restored, RestoreTime: d.RestoreTime,
			PredictedImbalance: d.PredictedImbalance,
			ForecastError:      d.ForecastError,
		}
	}
	return out
}

// RelocationCost returns the wall time (seconds) of relocating one expert
// replica — parameters plus optimizer state over the inter-node fabric —
// for use as OnlineOptions.MigrationCostPerReplica when modelling
// relocation-style substrates instead of FSEP.
func RelocationCost(modelName string, cluster *Cluster) (float64, error) {
	if cluster == nil {
		cluster = DefaultCluster()
	}
	if modelName == "" {
		modelName = "mixtral-8x7b-e8k2"
	}
	arch, err := model.ByName(modelName)
	if err != nil {
		return 0, err
	}
	return training.RelocationCostPerReplica(arch, cluster.topo), nil
}

// CheckpointRestoreCost returns the wall time (seconds) of re-reading one
// expert replica from the sharded optimizer checkpoint — the charge fault
// recovery pays for expert state no surviving device holds, and the
// default behind OnlineOptions.RestoreCostPerReplica. Checkpoint traffic
// crosses the storage fabric, so a restore is several times slower than
// the inter-node replica move RelocationCost models.
func CheckpointRestoreCost(modelName string, cluster *Cluster) (float64, error) {
	if cluster == nil {
		cluster = DefaultCluster()
	}
	if modelName == "" {
		modelName = "mixtral-8x7b-e8k2"
	}
	arch, err := model.ByName(modelName)
	if err != nil {
		return 0, err
	}
	return training.CheckpointRestoreCostPerReplica(arch, cluster.topo), nil
}

// ValidateFaultSchedule parses an OnlineOptions.FaultSchedule string and
// checks every event against the cluster shape and the run horizon —
// node/device indices in range, membership transitions consistent (no
// failing a failed node, no killing the whole cluster), every firing point
// inside epochs x itersPerEpoch. Use it to fail fast before a run.
func ValidateFaultSchedule(schedule string, cluster *Cluster, epochs, itersPerEpoch int) error {
	if cluster == nil {
		cluster = DefaultCluster()
	}
	sched, err := faults.Parse(schedule)
	if err != nil {
		return err
	}
	if err := sched.Validate(cluster.topo); err != nil {
		return err
	}
	if m := sched.MaxEpoch(); m >= epochs {
		return fmt.Errorf("laermoe: fault schedule reaches epoch %d but the run has %d epochs", m, epochs)
	}
	for _, ev := range sched {
		if ev.Iter >= itersPerEpoch {
			return fmt.Errorf("laermoe: fault event %q fires at iteration %d but epochs have %d iterations", ev, ev.Iter, itersPerEpoch)
		}
	}
	return nil
}

// SynthesizeFaultSchedule draws a deterministic random fail/rejoin
// schedule over the run horizon — the same cluster, epochs and seed always
// yield the same schedule (node 0 is never failed, and a failed node
// rejoins two epochs later when the horizon allows). The result is in
// OnlineOptions.FaultSchedule syntax; it may be empty when the draw
// produces no failure.
func SynthesizeFaultSchedule(cluster *Cluster, epochs int, seed int64) (string, error) {
	if cluster == nil {
		cluster = DefaultCluster()
	}
	sched, err := faults.Synthesize(faults.SynthConfig{
		Epochs: epochs,
		Nodes:  cluster.topo.NumNodes,
		Seed:   seed,
	})
	if err != nil {
		return "", err
	}
	return sched.String(), nil
}

// PlanRequest is a one-shot planning problem: route the given token
// counts (Routing[device][expert]) on a cluster with the given per-device
// expert capacity.
type PlanRequest struct {
	Cluster  *Cluster
	Routing  [][]int
	Capacity int
	// Model provides the cost-model constants (default
	// "mixtral-8x7b-e8k2").
	Model string
	// Epsilon is the solver's candidate-set size (0 → 2, as evaluated).
	Epsilon int
	// Parallelism bounds the goroutines evaluating independent candidate
	// schemes (values below 2 solve serially). The solved strategy is
	// identical at any setting.
	Parallelism int
	Seed        int64
}

// PlanResult is the solved re-layout strategy.
type PlanResult struct {
	// Replicas[j] is the replica count of expert j (Alg. 4).
	Replicas []int
	// Layout[j][d] is the number of replicas of expert j on device d
	// (Alg. 1).
	Layout [][]int
	// DeviceLoads[d] is the token count device d computes under lite
	// routing (Alg. 3).
	DeviceLoads []int
	// ImbalanceBefore/After are max/mean device loads under static EP
	// routing and under the solved strategy.
	ImbalanceBefore float64
	ImbalanceAfter  float64
	// Cost is the Eq. 2 objective of the solution.
	Cost float64
}

// PlanLayout solves one expert re-layout problem with the paper's
// Algorithms 1-4.
func PlanLayout(req PlanRequest) (*PlanResult, error) {
	if req.Cluster == nil {
		req.Cluster = DefaultCluster()
	}
	if len(req.Routing) == 0 || len(req.Routing[0]) == 0 {
		return nil, fmt.Errorf("laermoe: empty routing matrix")
	}
	if req.Capacity <= 0 {
		return nil, fmt.Errorf("laermoe: capacity must be positive")
	}
	if req.Model == "" {
		req.Model = "mixtral-8x7b-e8k2"
	}
	arch, err := model.ByName(req.Model)
	if err != nil {
		return nil, err
	}
	topo := req.Cluster.topo
	n, e := len(req.Routing), len(req.Routing[0])
	if n != topo.N() {
		return nil, fmt.Errorf("laermoe: routing matrix has %d devices, cluster has %d", n, topo.N())
	}
	r := trace.NewRoutingMatrix(n, e)
	for i := range req.Routing {
		if len(req.Routing[i]) != e {
			return nil, fmt.Errorf("laermoe: ragged routing matrix at row %d", i)
		}
		copy(r.R[i], req.Routing[i])
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	cm := costmodel.New(arch, topo, 8192)
	params := planner.CostParams{
		TokenBytes:          cm.TokenCommBytes(),
		ExpertFLOPsPerToken: cm.TokenExpertFLOPs(),
		FLOPS:               topo.FLOPS,
	}
	solver := planner.NewSolver(topo, req.Capacity, params,
		planner.SolverOptions{Epsilon: req.Epsilon, Parallelism: req.Parallelism, Seed: req.Seed})
	sol, err := solver.Solve(r)
	if err != nil {
		return nil, err
	}

	res := &PlanResult{
		Replicas:    sol.Layout.ReplicaVector(),
		Layout:      sol.Layout.Clone().A,
		DeviceLoads: sol.Dispatch().ReceivedLoads(),
		Cost:        sol.Cost,
	}
	res.ImbalanceAfter = stats.Imbalance(intsToFloats(res.DeviceLoads))
	if static, serr := planner.EPRouting(r, req.Capacity); serr == nil {
		res.ImbalanceBefore = stats.Imbalance(intsToFloats(static.ReceivedLoads()))
	} else {
		res.ImbalanceBefore = res.ImbalanceAfter
	}
	return res, nil
}

// GenerateRouting produces one iteration of synthetic routing
// (Routing[device][expert]) with the library's calibrated dynamics.
func GenerateRouting(cluster *Cluster, experts, tokensPerDevice, topK int, auxWeight float64, seed int64) ([][]int, error) {
	if cluster == nil {
		cluster = DefaultCluster()
	}
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices:         cluster.GPUs(),
		Experts:         experts,
		Layers:          1,
		TokensPerDevice: tokensPerDevice,
		TopK:            topK,
		AuxLossWeight:   auxWeight,
		Seed:            seed,
	})
	if err != nil {
		return nil, err
	}
	return gen.Step()[0].R, nil
}

// LossCurve returns the convergence proxy's (steps, loss) samples for an
// auxiliary-loss weight (Fig. 2 / Fig. 9).
func LossCurve(steps, every int, auxWeight float64) ([]int, []float64) {
	m := training.DefaultConvergenceModel()
	return m.LossCurve(steps, every, auxWeight, 0)
}

// ExperimentOptions configures RunExperimentOpts.
type ExperimentOptions struct {
	// Quick trims sweep dimensions for fast smoke runs.
	Quick bool
	// Parallelism bounds the worker pool fanning independent sweep cells
	// across CPUs: 0 uses GOMAXPROCS, 1 forces serial execution, n > 1
	// uses n workers. The rendered artifact is byte-identical at any
	// setting; only wall-clock time changes.
	Parallelism int
	Seed        int64
}

// RunExperiment regenerates one of the paper's tables/figures by id (see
// ExperimentIDs) and writes the artifact to w, using every available CPU.
func RunExperiment(id string, quick bool, w io.Writer) error {
	return RunExperimentOpts(id, ExperimentOptions{Quick: quick}, w)
}

// RunExperimentOpts is RunExperiment with explicit execution options.
func RunExperimentOpts(id string, opts ExperimentOptions, w io.Writer) error {
	tables, err := experiments.Run(id, experiments.Options{
		Quick:       opts.Quick,
		Parallelism: opts.Parallelism,
		Seed:        opts.Seed,
	})
	if err != nil {
		return err
	}
	for _, t := range tables {
		t.Write(w)
	}
	return nil
}

// ExperimentIDs lists the reproducible paper artifacts.
func ExperimentIDs() []string { return experiments.IDs() }

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}
