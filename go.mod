module laermoe

go 1.24
