module laermoe

go 1.23
