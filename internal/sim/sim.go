// Package sim is a discrete-event simulator for multi-GPU execution
// timelines. Each device owns a set of in-order streams (mirroring CUDA
// streams: work on one stream executes in enqueue order; work on different
// streams overlaps). Tasks can depend on tasks anywhere (mirroring CUDA
// events), and collectives synchronize a group of devices: every member
// starts at the latest member's ready time and all members finish together.
//
// That last property is what converts expert-load imbalance into the
// "All-to-All" tail latency the paper measures (Fig. 1b, Fig. 10a): a rank
// that finished its expert GEMMs early is measured as spending the waiting
// time inside the collective.
package sim

import (
	"errors"
	"fmt"
	"sort"
)

// Stream identifies one of the per-device in-order queues, matching the
// four streams of the paper's Fig. 5.
type Stream int

const (
	// StreamCompute (S1) runs forward/backward computation.
	StreamCompute Stream = iota
	// StreamPrefetch (S2) runs parameter prefetch communication (P).
	StreamPrefetch
	// StreamA2A (S3) runs token dispatch/combine All-to-All (A2A).
	StreamA2A
	// StreamGrad (S4) runs gradient reshard/synchronization (Sy).
	StreamGrad

	// NumStreams is the number of per-device streams.
	NumStreams
)

func (s Stream) String() string {
	switch s {
	case StreamCompute:
		return "S1/compute"
	case StreamPrefetch:
		return "S2/prefetch"
	case StreamA2A:
		return "S3/a2a"
	case StreamGrad:
		return "S4/grad"
	}
	return fmt.Sprintf("stream(%d)", int(s))
}

// Category labels tasks for time-breakdown reporting.
type Category int

const (
	CatAttention Category = iota
	CatGate
	CatDispatcher // token-dispatch decision (lite routing kernel)
	CatExpert     // expert MLP computation
	CatA2A        // token All-to-All (dispatch and combine)
	CatPrefetch   // parameter prefetch (FSEP unshard / FSDP all-gather)
	CatGradSync   // gradient reshard + reduction
	CatTPComm     // tensor-parallel all-reduce
	CatOther      // memory ops, optimizer, misc

	NumCategories
)

func (c Category) String() string {
	switch c {
	case CatAttention:
		return "attention"
	case CatGate:
		return "gate"
	case CatDispatcher:
		return "dispatcher"
	case CatExpert:
		return "expert"
	case CatA2A:
		return "a2a"
	case CatPrefetch:
		return "prefetch"
	case CatGradSync:
		return "gradsync"
	case CatTPComm:
		return "tpcomm"
	case CatOther:
		return "other"
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// TaskID identifies a task within one Engine.
type TaskID int

// NoTask is the zero value sentinel for "no dependency".
const NoTask TaskID = -1

type task struct {
	id       TaskID
	name     string
	device   int
	stream   Stream
	category Category
	duration float64
	// Dependencies live in the engine's shared arena at
	// depArena[depOff : depOff+depCnt], so enqueueing a task performs no
	// per-task slice allocation.
	depOff, depCnt int
	collective     int // -1 for plain tasks

	// Filled in by Run.
	ready     float64 // max(stream cursor, dep finish) at schedule time
	start     float64
	end       float64
	scheduled bool
}

type collective struct {
	members  []TaskID
	duration float64
}

// Engine accumulates a task graph and computes its schedule. An Engine can
// be reused across iterations via Reset, which keeps every internal buffer
// (task arena, per-stream queues, scheduling scratch) at capacity so
// steady-state graph construction allocates nothing.
type Engine struct {
	devices     int
	tasks       []task
	depArena    []TaskID
	collectives []collective
	queues      [][]TaskID // per device*stream, enqueue order

	// Scheduling scratch, reused across Run calls.
	heads     []int
	cursor    []float64
	collReady []int
	collMax   []float64
	marked    []bool
}

// resizeZero returns *s resized to n elements, all zero, reusing capacity.
func resizeZero[T int | float64 | bool](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
		return *s
	}
	*s = (*s)[:n]
	var zero T
	for i := range *s {
		(*s)[i] = zero
	}
	return *s
}

// NewEngine returns an engine for the given device count.
func NewEngine(devices int) *Engine {
	if devices <= 0 {
		panic("sim: device count must be positive")
	}
	return &Engine{
		devices: devices,
		queues:  make([][]TaskID, devices*int(NumStreams)),
	}
}

// Reset clears the engine for a fresh task graph over the given device
// count, retaining the capacity of every internal buffer. Results returned
// by earlier Run calls share storage with the engine and are invalidated.
func (e *Engine) Reset(devices int) {
	if devices <= 0 {
		panic("sim: device count must be positive")
	}
	e.devices = devices
	e.tasks = e.tasks[:0]
	e.depArena = e.depArena[:0]
	e.collectives = e.collectives[:0]
	nq := devices * int(NumStreams)
	if cap(e.queues) < nq {
		e.queues = append(e.queues[:cap(e.queues)], make([][]TaskID, nq-cap(e.queues))...)
	}
	e.queues = e.queues[:nq]
	for i := range e.queues {
		e.queues[i] = e.queues[i][:0]
	}
}

// Devices returns the configured device count.
func (e *Engine) Devices() int { return e.devices }

func (e *Engine) queueIndex(device int, stream Stream) int {
	return device*int(NumStreams) + int(stream)
}

func (e *Engine) addTask(name string, device int, stream Stream, cat Category, dur float64, coll int, deps []TaskID) TaskID {
	if device < 0 || device >= e.devices {
		panic(fmt.Sprintf("sim: device %d out of range", device))
	}
	if dur < 0 {
		panic(fmt.Sprintf("sim: negative duration %g for %s", dur, name))
	}
	id := TaskID(len(e.tasks))
	off := len(e.depArena)
	for _, d := range deps {
		if d == NoTask {
			continue
		}
		if int(d) < 0 || int(d) >= len(e.tasks) {
			panic(fmt.Sprintf("sim: dependency %d of %s does not exist", d, name))
		}
		e.depArena = append(e.depArena, d)
	}
	e.tasks = append(e.tasks, task{
		id: id, name: name, device: device, stream: stream, category: cat,
		duration: dur, depOff: off, depCnt: len(e.depArena) - off, collective: coll,
	})
	qi := e.queueIndex(device, stream)
	e.queues[qi] = append(e.queues[qi], id)
	return id
}

// Compute enqueues a plain task on one device's stream and returns its ID.
func (e *Engine) Compute(name string, device int, stream Stream, cat Category, dur float64, deps ...TaskID) TaskID {
	return e.addTask(name, device, stream, cat, dur, -1, deps)
}

// Collective enqueues one synchronized operation across the given devices
// on the given stream. deps[i] lists the dependencies of member i (may be
// nil). All members start at the latest member's ready time and end
// together after dur. The returned slice holds one member TaskID per
// device, in the order of the devices argument.
func (e *Engine) Collective(name string, devices []int, stream Stream, cat Category, dur float64, deps [][]TaskID) []TaskID {
	if len(devices) == 0 {
		panic("sim: collective with no members")
	}
	if deps != nil && len(deps) != len(devices) {
		panic(fmt.Sprintf("sim: collective %s has %d dep lists for %d members", name, len(deps), len(devices)))
	}
	ci := len(e.collectives)
	e.collectives = append(e.collectives, collective{duration: dur})
	ids := make([]TaskID, len(devices))
	for i, dev := range devices {
		var d []TaskID
		if deps != nil {
			d = deps[i]
		}
		ids[i] = e.addTask(name, dev, stream, cat, dur, ci, d)
	}
	e.collectives[ci].members = ids
	return ids
}

// Collective1 is Collective for the common case of at most one dependency
// per member: deps[i] (which may be NoTask) gates member i. It avoids the
// per-call [][]TaskID dependency-list allocation of the general form.
func (e *Engine) Collective1(name string, devices []int, stream Stream, cat Category, dur float64, deps []TaskID) []TaskID {
	if len(devices) == 0 {
		panic("sim: collective with no members")
	}
	if deps != nil && len(deps) != len(devices) {
		panic(fmt.Sprintf("sim: collective %s has %d deps for %d members", name, len(deps), len(devices)))
	}
	ci := len(e.collectives)
	e.collectives = append(e.collectives, collective{duration: dur})
	ids := make([]TaskID, len(devices))
	var one [1]TaskID
	for i, dev := range devices {
		var d []TaskID
		if deps != nil && deps[i] != NoTask {
			one[0] = deps[i]
			d = one[:]
		}
		ids[i] = e.addTask(name, dev, stream, cat, dur, ci, d)
	}
	e.collectives[ci].members = ids
	return ids
}

// Run schedules every task and returns the timing result. It fails if the
// graph deadlocks (a dependency cycle, or collectives whose member order
// conflicts across streams).
func (e *Engine) Run() (*Result, error) {
	heads := resizeZero(&e.heads, len(e.queues))   // next unscheduled index per queue
	cursor := resizeZero(&e.cursor, len(e.queues)) // stream available time
	remaining := len(e.tasks)

	// collReady[c] counts members whose predecessors are satisfied.
	collReady := resizeZero(&e.collReady, len(e.collectives))
	collMax := resizeZero(&e.collMax, len(e.collectives))

	marked := resizeZero(&e.marked, len(e.tasks)) // member counted into collReady

	depsDone := func(t *task) (float64, bool) {
		latest := 0.0
		for _, d := range e.depArena[t.depOff : t.depOff+t.depCnt] {
			dt := &e.tasks[d]
			if !dt.scheduled {
				return 0, false
			}
			if dt.end > latest {
				latest = dt.end
			}
		}
		return latest, true
	}

	for remaining > 0 {
		progress := false
		for qi := range e.queues {
			for heads[qi] < len(e.queues[qi]) {
				t := &e.tasks[e.queues[qi][heads[qi]]]
				depEnd, ok := depsDone(t)
				if !ok {
					break
				}
				ready := cursor[qi]
				if depEnd > ready {
					ready = depEnd
				}
				if t.collective < 0 {
					t.ready = ready
					t.start = ready
					t.end = ready + t.duration
					t.scheduled = true
					cursor[qi] = t.end
					heads[qi]++
					remaining--
					progress = true
					continue
				}
				// Collective member: record readiness, schedule the whole
				// group only once every member is at the head of its
				// stream with dependencies satisfied.
				c := t.collective
				if !marked[t.id] {
					marked[t.id] = true
					t.ready = ready
					collReady[c]++
					if ready > collMax[c] {
						collMax[c] = ready
					}
				}
				if collReady[c] < len(e.collectives[c].members) {
					break // head blocked until peers are ready
				}
				start := collMax[c]
				for _, mid := range e.collectives[c].members {
					mt := &e.tasks[mid]
					mt.start = start
					mt.end = start + e.collectives[c].duration
					mt.scheduled = true
					mqi := e.queueIndex(mt.device, mt.stream)
					cursor[mqi] = mt.end
					heads[mqi]++
					remaining--
				}
				progress = true
				// This queue's head advanced (possibly along with others);
				// re-examine it from the top.
			}
		}
		if !progress {
			return nil, errors.New("sim: deadlock — dependency cycle or conflicting collective ordering")
		}
	}

	return e.buildResult(), nil
}

// Result exposes the computed schedule. A Result returned by a reused
// engine shares task storage with it and is invalidated by the next Reset.
type Result struct {
	devices  int
	makespan float64
	tasks    []task
	// exposed[dev*NumCategories+cat]: measured wall time attributed to the
	// category on the device, where collective members are charged
	// end-ready (their transfer plus any waiting for stragglers), matching
	// how profilers attribute time to communication ops.
	exposed []float64
}

func (e *Engine) buildResult() *Result {
	r := &Result{
		devices: e.devices,
		tasks:   e.tasks,
		exposed: make([]float64, e.devices*int(NumCategories)),
	}
	for i := range e.tasks {
		t := &e.tasks[i]
		if t.end > r.makespan {
			r.makespan = t.end
		}
		span := t.end - t.ready
		if t.collective < 0 {
			span = t.duration
		}
		r.exposed[t.device*int(NumCategories)+int(t.category)] += span
	}
	return r
}

// Makespan returns the finish time of the last task.
func (r *Result) Makespan() float64 { return r.makespan }

// CategoryTime returns the measured time attributed to cat on device dev.
func (r *Result) CategoryTime(dev int, cat Category) float64 {
	return r.exposed[dev*int(NumCategories)+int(cat)]
}

// MeanCategoryTime returns the category time averaged across devices, the
// quantity reported in the paper's breakdowns ("averaged across all ranks").
func (r *Result) MeanCategoryTime(cat Category) float64 {
	s := 0.0
	for d := 0; d < r.devices; d++ {
		s += r.exposed[d*int(NumCategories)+int(cat)]
	}
	return s / float64(r.devices)
}

// TaskWindow returns the scheduled [start, end] of a task.
func (r *Result) TaskWindow(id TaskID) (start, end float64) {
	t := r.tasks[id]
	return t.start, t.end
}

// TaskSpan describes one scheduled task for inspection/visualisation.
type TaskSpan struct {
	ID       TaskID
	Name     string
	Device   int
	Stream   Stream
	Category Category
	Start    float64
	End      float64
}

// Spans returns all scheduled tasks on a device, ordered by start time.
func (r *Result) Spans(dev int) []TaskSpan {
	var out []TaskSpan
	for i := range r.tasks {
		t := &r.tasks[i]
		if t.device != dev {
			continue
		}
		out = append(out, TaskSpan{
			ID: t.id, Name: t.name, Device: t.device, Stream: t.stream,
			Category: t.category, Start: t.start, End: t.end,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// DeviceFinish returns the completion time of the last task on a device.
func (r *Result) DeviceFinish(dev int) float64 {
	latest := 0.0
	for i := range r.tasks {
		t := &r.tasks[i]
		if t.device == dev && t.end > latest {
			latest = t.end
		}
	}
	return latest
}
