package sim

import "testing"

// BenchmarkEngineRun measures the discrete-event engine on a graph shaped
// like one training iteration: 32 devices, 32 layers of compute +
// collective alternation across four streams.
func BenchmarkEngineRun(b *testing.B) {
	build := func() *Engine {
		const devices, layers = 32, 32
		e := NewEngine(devices)
		all := make([]int, devices)
		for i := range all {
			all[i] = i
		}
		prev := make([]TaskID, devices)
		for i := range prev {
			prev[i] = NoTask
		}
		for l := 0; l < layers; l++ {
			attn := make([][]TaskID, devices)
			for d := 0; d < devices; d++ {
				id := e.Compute("attn", d, StreamCompute, CatAttention, 1e-3, prev[d])
				attn[d] = []TaskID{id}
			}
			a2a := e.Collective("a2a", all, StreamA2A, CatA2A, 5e-4, attn)
			for d := 0; d < devices; d++ {
				ex := e.Compute("expert", d, StreamCompute, CatExpert, 2e-3, a2a[d])
				e.Compute("prefetch", d, StreamPrefetch, CatPrefetch, 1e-3, a2a[d])
				prev[d] = ex
			}
		}
		return e
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := build()
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineReuse measures the same iteration graph rebuilt on one
// reset engine — the executor's steady state, where the task arena, dep
// arena, queues and scheduling scratch all retain capacity.
func BenchmarkEngineReuse(b *testing.B) {
	const devices, layers = 32, 32
	e := NewEngine(devices)
	all := make([]int, devices)
	for i := range all {
		all[i] = i
	}
	prev := make([]TaskID, devices)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset(devices)
		for d := range prev {
			prev[d] = NoTask
		}
		for l := 0; l < layers; l++ {
			for d := 0; d < devices; d++ {
				prev[d] = e.Compute("attn", d, StreamCompute, CatAttention, 1e-3, prev[d])
			}
			a2a := e.Collective1("a2a", all, StreamA2A, CatA2A, 5e-4, prev)
			for d := 0; d < devices; d++ {
				ex := e.Compute("expert", d, StreamCompute, CatExpert, 2e-3, a2a[d])
				e.Compute("prefetch", d, StreamPrefetch, CatPrefetch, 1e-3, a2a[d])
				prev[d] = ex
			}
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
