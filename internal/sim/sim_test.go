package sim

import (
	"math"
	"testing"
)

func run(t *testing.T, e *Engine) *Result {
	t.Helper()
	r, err := e.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return r
}

func TestStreamsAreInOrder(t *testing.T) {
	e := NewEngine(1)
	a := e.Compute("a", 0, StreamCompute, CatOther, 1.0)
	b := e.Compute("b", 0, StreamCompute, CatOther, 2.0)
	r := run(t, e)
	as, ae := r.TaskWindow(a)
	bs, be := r.TaskWindow(b)
	if as != 0 || ae != 1 || bs != 1 || be != 3 {
		t.Errorf("in-order stream violated: a=[%g,%g] b=[%g,%g]", as, ae, bs, be)
	}
}

func TestStreamsOverlap(t *testing.T) {
	e := NewEngine(1)
	e.Compute("compute", 0, StreamCompute, CatExpert, 5.0)
	e.Compute("prefetch", 0, StreamPrefetch, CatPrefetch, 3.0)
	r := run(t, e)
	if r.Makespan() != 5.0 {
		t.Errorf("makespan = %g, want 5 (streams overlap)", r.Makespan())
	}
}

func TestDependenciesAcrossStreams(t *testing.T) {
	e := NewEngine(1)
	a := e.Compute("a", 0, StreamCompute, CatOther, 2.0)
	b := e.Compute("b", 0, StreamPrefetch, CatPrefetch, 1.0, a)
	r := run(t, e)
	bs, be := r.TaskWindow(b)
	if bs != 2.0 || be != 3.0 {
		t.Errorf("dependent task ran at [%g,%g], want [2,3]", bs, be)
	}
}

func TestCollectiveSynchronizesMembers(t *testing.T) {
	e := NewEngine(2)
	// Device 0 is busy until t=4, device 1 until t=1.
	a0 := e.Compute("w0", 0, StreamCompute, CatExpert, 4.0)
	a1 := e.Compute("w1", 1, StreamCompute, CatExpert, 1.0)
	ids := e.Collective("a2a", []int{0, 1}, StreamA2A, CatA2A, 2.0,
		[][]TaskID{{a0}, {a1}})
	r := run(t, e)
	s0, e0 := r.TaskWindow(ids[0])
	s1, e1 := r.TaskWindow(ids[1])
	if s0 != 4 || s1 != 4 || e0 != 6 || e1 != 6 {
		t.Errorf("collective not synchronized: [%g,%g] and [%g,%g]", s0, e0, s1, e1)
	}
	// The early device is measured as waiting inside the collective:
	// exposed time on device 1 = end - ready = 6 - 1 = 5.
	if got := r.CategoryTime(1, CatA2A); math.Abs(got-5) > 1e-12 {
		t.Errorf("device 1 a2a exposure = %g, want 5 (wait + transfer)", got)
	}
	if got := r.CategoryTime(0, CatA2A); math.Abs(got-2) > 1e-12 {
		t.Errorf("device 0 a2a exposure = %g, want 2", got)
	}
	if got := r.MeanCategoryTime(CatA2A); math.Abs(got-3.5) > 1e-12 {
		t.Errorf("mean a2a exposure = %g, want 3.5", got)
	}
}

// TestImbalanceBecomesA2AWait is the Fig. 1b mechanism in miniature:
// overloaded expert computation on one rank shows up as All-to-All time on
// every other rank.
func TestImbalanceBecomesA2AWait(t *testing.T) {
	build := func(loads []float64) float64 {
		e := NewEngine(len(loads))
		deps := make([][]TaskID, len(loads))
		devs := make([]int, len(loads))
		for d, l := range loads {
			id := e.Compute("expert", d, StreamCompute, CatExpert, l)
			deps[d] = []TaskID{id}
			devs[d] = d
		}
		e.Collective("combine", devs, StreamA2A, CatA2A, 0.1, deps)
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.MeanCategoryTime(CatA2A)
	}
	balanced := build([]float64{1, 1, 1, 1})
	imbalanced := build([]float64{2.5, 0.5, 0.5, 0.5})
	if imbalanced <= balanced*2 {
		t.Errorf("imbalance should inflate measured a2a time: %g vs %g", imbalanced, balanced)
	}
}

// TestDeadlockDetection: a task at the head of its stream that depends on
// a task enqueued behind it on the same stream can never run; Run must
// report the deadlock instead of hanging.
func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	p := e.addTask("p", 0, StreamCompute, CatOther, 1, -1, nil)
	// Forward reference: patch a dependency on the not-yet-enqueued q into
	// the arena.
	e.depArena = append(e.depArena, TaskID(1))
	e.tasks[p].depOff = len(e.depArena) - 1
	e.tasks[p].depCnt = 1
	e.addTask("q", 0, StreamCompute, CatOther, 1, -1, nil)
	if _, err := e.Run(); err == nil {
		t.Error("deadlocked graph completed successfully")
	}
}

// TestCrossCollectiveDeadlock: two collectives enqueued in opposite order
// on two devices' streams block each other and must be reported.
func TestCrossCollectiveDeadlock(t *testing.T) {
	e := NewEngine(2)
	// Device 0 stream order: A then B. Device 1 stream order: B then A.
	ci := len(e.collectives)
	e.collectives = append(e.collectives, collective{duration: 1})
	a0 := e.addTask("A", 0, StreamA2A, CatA2A, 1, ci, nil)
	cj := len(e.collectives)
	e.collectives = append(e.collectives, collective{duration: 1})
	b1 := e.addTask("B", 1, StreamA2A, CatA2A, 1, cj, nil)
	b0 := e.addTask("B", 0, StreamA2A, CatA2A, 1, cj, nil)
	a1 := e.addTask("A", 1, StreamA2A, CatA2A, 1, ci, nil)
	e.collectives[ci].members = []TaskID{a0, a1}
	e.collectives[cj].members = []TaskID{b0, b1}
	if _, err := e.Run(); err == nil {
		t.Error("conflicting collective order completed successfully")
	}
}

func TestCollectiveSubsetLeavesOthersFree(t *testing.T) {
	e := NewEngine(3)
	e.Collective("pair", []int{0, 1}, StreamA2A, CatA2A, 2.0, nil)
	free := e.Compute("free", 2, StreamCompute, CatExpert, 1.0)
	r := run(t, e)
	if _, end := r.TaskWindow(free); end != 1.0 {
		t.Errorf("non-member device blocked by collective: end=%g", end)
	}
}

func TestSpansSortedAndComplete(t *testing.T) {
	e := NewEngine(1)
	e.Compute("a", 0, StreamCompute, CatAttention, 1)
	e.Compute("b", 0, StreamPrefetch, CatPrefetch, 0.5)
	e.Compute("c", 0, StreamCompute, CatExpert, 2)
	r := run(t, e)
	spans := r.Spans(0)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Error("spans not sorted by start time")
		}
	}
	if r.DeviceFinish(0) != 3 {
		t.Errorf("DeviceFinish = %g, want 3", r.DeviceFinish(0))
	}
}

func TestZeroDurationTasks(t *testing.T) {
	e := NewEngine(1)
	a := e.Compute("a", 0, StreamCompute, CatOther, 0)
	b := e.Compute("b", 0, StreamCompute, CatOther, 1, a)
	r := run(t, e)
	if _, end := r.TaskWindow(b); end != 1 {
		t.Errorf("end = %g, want 1", end)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	cases := []func(){
		func() { NewEngine(0) },
		func() { NewEngine(1).Compute("x", 5, StreamCompute, CatOther, 1) },
		func() { NewEngine(1).Compute("x", 0, StreamCompute, CatOther, -1) },
		func() { NewEngine(1).Compute("x", 0, StreamCompute, CatOther, 1, TaskID(42)) },
		func() { NewEngine(1).Collective("x", nil, StreamA2A, CatA2A, 1, nil) },
		func() {
			e := NewEngine(2)
			e.Collective("x", []int{0, 1}, StreamA2A, CatA2A, 1, [][]TaskID{nil})
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCategoryAndStreamStrings(t *testing.T) {
	for c := Category(0); c < NumCategories; c++ {
		if c.String() == "" {
			t.Errorf("category %d has empty name", c)
		}
	}
	for s := Stream(0); s < NumStreams; s++ {
		if s.String() == "" {
			t.Errorf("stream %d has empty name", s)
		}
	}
}
