package sim

import "testing"

// buildIterationGraph enqueues a training-iteration-shaped graph (the same
// shape the benchmark uses) onto a fresh or reset engine.
func buildIterationGraph(e *Engine, devices, layers int) {
	all := make([]int, devices)
	for i := range all {
		all[i] = i
	}
	prev := make([]TaskID, devices)
	for i := range prev {
		prev[i] = NoTask
	}
	for l := 0; l < layers; l++ {
		attn := make([]TaskID, devices)
		for d := 0; d < devices; d++ {
			attn[d] = e.Compute("attn", d, StreamCompute, CatAttention, 1e-3, prev[d])
		}
		a2a := e.Collective1("a2a", all, StreamA2A, CatA2A, 5e-4, attn)
		for d := 0; d < devices; d++ {
			ex := e.Compute("expert", d, StreamCompute, CatExpert, 2e-3, a2a[d])
			e.Compute("prefetch", d, StreamPrefetch, CatPrefetch, 1e-3, a2a[d])
			prev[d] = ex
		}
	}
}

// TestResetReproducesFreshEngine: a reused engine must schedule the same
// graph to exactly the same timeline as a fresh one, repeatedly.
func TestResetReproducesFreshEngine(t *testing.T) {
	fresh := NewEngine(8)
	buildIterationGraph(fresh, 8, 6)
	want, err := fresh.Run()
	if err != nil {
		t.Fatal(err)
	}

	reused := NewEngine(8)
	for round := 0; round < 3; round++ {
		reused.Reset(8)
		buildIterationGraph(reused, 8, 6)
		got, err := reused.Run()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got.Makespan() != want.Makespan() {
			t.Fatalf("round %d: makespan %g, want %g", round, got.Makespan(), want.Makespan())
		}
		for c := Category(0); c < NumCategories; c++ {
			if got.MeanCategoryTime(c) != want.MeanCategoryTime(c) {
				t.Fatalf("round %d: category %v time %g, want %g",
					round, c, got.MeanCategoryTime(c), want.MeanCategoryTime(c))
			}
		}
	}
}

// TestResetChangesDeviceCount: reuse across different cluster sizes.
func TestResetChangesDeviceCount(t *testing.T) {
	e := NewEngine(4)
	buildIterationGraph(e, 4, 3)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{2, 16, 8} {
		e.Reset(n)
		buildIterationGraph(e, n, 3)
		got, err := e.Run()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		fresh := NewEngine(n)
		buildIterationGraph(fresh, n, 3)
		want, err := fresh.Run()
		if err != nil {
			t.Fatalf("n=%d fresh: %v", n, err)
		}
		if got.Makespan() != want.Makespan() {
			t.Fatalf("n=%d: makespan %g, want %g", n, got.Makespan(), want.Makespan())
		}
	}
}

// TestCollective1MatchesCollective: the single-dep fast path must schedule
// identically to the general dependency-list form.
func TestCollective1MatchesCollective(t *testing.T) {
	build := func(single bool) *Result {
		e := NewEngine(4)
		all := []int{0, 1, 2, 3}
		pre := make([]TaskID, 4)
		for d := 0; d < 4; d++ {
			pre[d] = e.Compute("pre", d, StreamCompute, CatOther, float64(d+1)*1e-3)
		}
		if single {
			e.Collective1("c", all, StreamA2A, CatA2A, 2e-3, pre)
		} else {
			deps := make([][]TaskID, 4)
			for i := range deps {
				deps[i] = []TaskID{pre[i]}
			}
			e.Collective("c", all, StreamA2A, CatA2A, 2e-3, deps)
		}
		r, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := build(true), build(false)
	if a.Makespan() != b.Makespan() {
		t.Errorf("Collective1 makespan %g, Collective %g", a.Makespan(), b.Makespan())
	}
}
