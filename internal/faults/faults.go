// Package faults models fault injection for elastic-cluster simulations: a
// deterministic, seedable stream of membership and degradation events the
// online engine applies to its topology at epoch boundaries (or mid-epoch).
//
// Events come in three kinds: a node fails (its devices leave the
// placement/capacity universe), a node joins (a previously failed or
// reserve node comes back online), and a device degrades to a named
// heterogeneity class (reduced FLOPS and/or link bandwidth). The schedule
// is plain data — the same schedule drives training.RunOnline, the
// resilience experiment, laer-sim -elastic and a laer-serve topology
// update, which is what lets their decisions be compared byte for byte.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"laermoe/internal/topology"
)

// Kind names one fault-event type.
type Kind string

const (
	// NodeFail removes a node: its devices stop being placement targets
	// and capacity, and every expert replica they hosted is lost.
	NodeFail Kind = "fail"
	// NodeJoin brings a previously removed (or reserve) node back online.
	NodeJoin Kind = "join"
	// Degrade assigns one device a named heterogeneity class
	// (topology.ClassByName) — reduced compute and/or link bandwidth.
	Degrade Kind = "degrade"
)

// Event is one scheduled fault. Epoch is the drift window it fires in;
// Iter the iteration within that window (0 = the epoch boundary, before
// any planning; k > 0 = mid-epoch, before iteration k executes). Node
// addresses fail/join events, Device and Class degrade events.
type Event struct {
	Epoch int  `json:"epoch"`
	Iter  int  `json:"iter,omitempty"`
	Kind  Kind `json:"kind"`

	Node int `json:"node,omitempty"`

	Device int    `json:"device,omitempty"`
	Class  string `json:"class,omitempty"`
}

// String renders the event in the schedule's wire syntax.
func (e Event) String() string {
	when := strconv.Itoa(e.Epoch)
	if e.Iter > 0 {
		when += "." + strconv.Itoa(e.Iter)
	}
	if e.Kind == Degrade {
		return fmt.Sprintf("%s:%s:%d:%s", when, e.Kind, e.Device, e.Class)
	}
	return fmt.Sprintf("%s:%s:%d", when, e.Kind, e.Node)
}

// Apply executes the event against a topology.
func (e Event) Apply(topo *topology.Topology) error {
	switch e.Kind {
	case NodeFail:
		return topo.RemoveNode(e.Node)
	case NodeJoin:
		return topo.AddNode(e.Node)
	case Degrade:
		return topo.SetDeviceClassByName(e.Device, e.Class)
	}
	return fmt.Errorf("faults: unknown event kind %q", e.Kind)
}

// Schedule is a fault-event stream, kept sorted by (Epoch, Iter) with the
// original order preserved within one firing point.
type Schedule []Event

// Parse decodes the compact schedule syntax: comma-separated events of the
// form epoch[.iter]:kind:arg, e.g.
//
//	"2:fail:1,4:join:1,3:degrade:9:degraded,2.3:fail:0"
//
// fail/join take a node index, degrade a device index plus a class name
// from topology.DeviceClasses. An empty string is the empty schedule.
func Parse(s string) (Schedule, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out Schedule
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		parts := strings.Split(tok, ":")
		if len(parts) < 3 {
			return nil, fmt.Errorf("faults: event %q is not epoch[.iter]:kind:arg", tok)
		}
		var ev Event
		when := parts[0]
		if at, iter, ok := strings.Cut(when, "."); ok {
			it, err := strconv.Atoi(iter)
			if err != nil || it < 0 {
				return nil, fmt.Errorf("faults: event %q has bad iteration %q", tok, iter)
			}
			ev.Iter = it
			when = at
		}
		ep, err := strconv.Atoi(when)
		if err != nil || ep < 0 {
			return nil, fmt.Errorf("faults: event %q has bad epoch %q", tok, parts[0])
		}
		ev.Epoch = ep
		ev.Kind = Kind(parts[1])
		switch ev.Kind {
		case NodeFail, NodeJoin:
			if len(parts) != 3 {
				return nil, fmt.Errorf("faults: event %q wants epoch[.iter]:%s:node", tok, ev.Kind)
			}
			node, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("faults: event %q has bad node %q", tok, parts[2])
			}
			ev.Node = node
		case Degrade:
			if len(parts) != 4 {
				return nil, fmt.Errorf("faults: event %q wants epoch[.iter]:degrade:device:class", tok)
			}
			dev, err := strconv.Atoi(parts[2])
			if err != nil {
				return nil, fmt.Errorf("faults: event %q has bad device %q", tok, parts[2])
			}
			ev.Device = dev
			ev.Class = parts[3]
		default:
			return nil, fmt.Errorf("faults: event %q has unknown kind %q (want fail, join or degrade)", tok, parts[1])
		}
		out = append(out, ev)
	}
	out.sort()
	return out, nil
}

// String renders the schedule in Parse's syntax.
func (s Schedule) String() string {
	toks := make([]string, len(s))
	for i, ev := range s {
		toks[i] = ev.String()
	}
	return strings.Join(toks, ",")
}

// sort orders events by firing point, stably.
func (s Schedule) sort() {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Epoch != s[j].Epoch {
			return s[i].Epoch < s[j].Epoch
		}
		return s[i].Iter < s[j].Iter
	})
}

// Validate checks every event against the cluster shape and the class
// catalog, and dry-runs the membership transitions so a fail of an
// already-failed node (or a join of an alive one) is caught before a run
// starts instead of mid-simulation.
func (s Schedule) Validate(topo *topology.Topology) error {
	if len(s) == 0 {
		return nil
	}
	dry := topo.Clone()
	for i := 1; i < len(s); i++ {
		a, b := s[i-1], s[i]
		if b.Epoch < a.Epoch || (b.Epoch == a.Epoch && b.Iter < a.Iter) {
			return fmt.Errorf("faults: schedule not sorted at event %d (%s after %s)", i, b, a)
		}
	}
	for i, ev := range s {
		switch ev.Kind {
		case NodeFail, NodeJoin, Degrade:
		default:
			return fmt.Errorf("faults: event %d has unknown kind %q", i, ev.Kind)
		}
		if ev.Kind == Degrade {
			if _, err := topology.ClassByName(ev.Class); err != nil {
				return fmt.Errorf("faults: event %d: %v", i, err)
			}
		}
		if err := ev.Apply(dry); err != nil {
			return fmt.Errorf("faults: event %d (%s): %v", i, ev, err)
		}
	}
	return nil
}

// At returns the events firing at the given (epoch, iteration) point, in
// schedule order. Iteration 0 is the epoch boundary.
func (s Schedule) At(epoch, iter int) []Event {
	var out []Event
	for _, ev := range s {
		if ev.Epoch == epoch && ev.Iter == iter {
			out = append(out, ev)
		}
	}
	return out
}

// MaxEpoch returns the last epoch with a scheduled event (-1 when empty).
func (s Schedule) MaxEpoch() int {
	m := -1
	for _, ev := range s {
		if ev.Epoch > m {
			m = ev.Epoch
		}
	}
	return m
}

// SynthConfig parameterizes Synthesize.
type SynthConfig struct {
	// Epochs is the horizon events are drawn over; Nodes the cluster's
	// node count (node 0 is never failed, so the cluster always keeps
	// compute).
	Epochs int
	Nodes  int

	// FailProb is the per-epoch probability of a node failure (default
	// 0.25). A failed node rejoins two epochs later when the horizon
	// allows, modelling a preemption/repair cycle.
	FailProb float64

	Seed int64
}

// Synthesize draws a deterministic random fail/rejoin schedule: the same
// config always yields the same schedule, so synthetic fault sweeps are
// reproducible end to end.
func Synthesize(cfg SynthConfig) (Schedule, error) {
	if cfg.Epochs < 1 || cfg.Nodes < 2 {
		return nil, fmt.Errorf("faults: synthesis needs at least 1 epoch and 2 nodes")
	}
	p := cfg.FailProb
	if p == 0 {
		p = 0.25
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out Schedule
	down := make(map[int]bool)
	rejoins := make(map[int][]int)
	for e := 1; e < cfg.Epochs; e++ {
		for _, node := range rejoins[e] {
			down[node] = false
		}
		if rng.Float64() >= p {
			continue
		}
		node := 1 + rng.Intn(cfg.Nodes-1)
		if down[node] {
			continue
		}
		out = append(out, Event{Epoch: e, Kind: NodeFail, Node: node})
		down[node] = true
		if rejoin := e + 2; rejoin < cfg.Epochs {
			out = append(out, Event{Epoch: rejoin, Kind: NodeJoin, Node: node})
			rejoins[rejoin] = append(rejoins[rejoin], node)
		}
	}
	out.sort()
	return out, nil
}
