package faults

import (
	"testing"

	"laermoe/internal/topology"
)

func TestParseRoundTrip(t *testing.T) {
	in := "2:fail:1,3:degrade:17:degraded,4:join:1,4.2:fail:2"
	sched, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 4 {
		t.Fatalf("Parse yielded %d events, want 4", len(sched))
	}
	want := Schedule{
		{Epoch: 2, Kind: NodeFail, Node: 1},
		{Epoch: 3, Kind: Degrade, Device: 17, Class: "degraded"},
		{Epoch: 4, Kind: NodeJoin, Node: 1},
		{Epoch: 4, Iter: 2, Kind: NodeFail, Node: 2},
	}
	for i, ev := range sched {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
	back, err := Parse(sched.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != sched.String() {
		t.Errorf("String round trip: %q != %q", back.String(), sched.String())
	}
	if err := sched.Validate(topology.Default()); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestParseSortsByFiringPoint(t *testing.T) {
	sched, err := Parse("4:join:1,2:fail:1")
	if err != nil {
		t.Fatal(err)
	}
	if sched[0].Epoch != 2 || sched[1].Epoch != 4 {
		t.Errorf("schedule not sorted: %v", sched)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"nonsense",
		"2:fail",           // missing arg
		"x:fail:1",         // bad epoch
		"-1:fail:1",        // negative epoch
		"2.x:fail:1",       // bad iteration
		"2:explode:1",      // unknown kind
		"2:fail:x",         // bad node
		"2:degrade:1",      // degrade missing class
		"2:degrade:x:slow", // bad device
		"2:fail:1:extra",   // fail with too many fields
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
	if sched, err := Parse("  "); err != nil || sched != nil {
		t.Errorf("Parse(blank) = %v, %v; want empty schedule", sched, err)
	}
}

func TestValidateDryRuns(t *testing.T) {
	topo := topology.New(4, 8)
	cases := []struct {
		name string
		in   string
	}{
		{"double fail", "1:fail:1,2:fail:1"},
		{"join alive node", "1:join:2"},
		{"node out of range", "1:fail:9"},
		{"unknown class", "1:degrade:3:warp-speed"},
		{"degrade failed device", "1:fail:1,2:degrade:8:degraded"},
	}
	for _, tc := range cases {
		sched, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if err := sched.Validate(topo); err == nil {
			t.Errorf("%s: Validate accepted %q", tc.name, tc.in)
		}
	}
	// Validate must not mutate the topology it dry-runs against.
	sched, _ := Parse("1:fail:1")
	if err := sched.Validate(topo); err != nil {
		t.Fatal(err)
	}
	if topo.NumAvailable() != 32 {
		t.Error("Validate mutated the topology")
	}
}

func TestAt(t *testing.T) {
	sched, err := Parse("2:fail:1,2:degrade:0:degraded,2.3:fail:2,4:join:1")
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.At(2, 0); len(got) != 2 {
		t.Errorf("At(2,0) = %v, want 2 events", got)
	}
	if got := sched.At(2, 3); len(got) != 1 || got[0].Node != 2 {
		t.Errorf("At(2,3) = %v, want the mid-epoch fail", got)
	}
	if got := sched.At(3, 0); got != nil {
		t.Errorf("At(3,0) = %v, want none", got)
	}
	if got := sched.MaxEpoch(); got != 4 {
		t.Errorf("MaxEpoch() = %d, want 4", got)
	}
	if got := (Schedule{}).MaxEpoch(); got != -1 {
		t.Errorf("empty MaxEpoch() = %d, want -1", got)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	cfg := SynthConfig{Epochs: 12, Nodes: 4, FailProb: 0.5, Seed: 7}
	a, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthesize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed diverged: %q vs %q", a, b)
	}
	if len(a) == 0 {
		t.Fatal("FailProb 0.5 over 12 epochs produced no events")
	}
	// A synthesized schedule is always applicable to its cluster.
	if err := a.Validate(topology.New(4, 8)); err != nil {
		t.Errorf("synthesized schedule invalid: %v", err)
	}
	if _, err := Synthesize(SynthConfig{Epochs: 0, Nodes: 4}); err == nil {
		t.Error("Synthesize accepted 0 epochs")
	}
}
