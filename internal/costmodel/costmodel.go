// Package costmodel converts model shapes and token counts into time: the
// per-token computation and communication volumes of Table 1 (V_comp,
// V_comm), the per-device compute latencies used by the executor, and the
// computation/communication overlap condition of Eq. 1.
package costmodel

import (
	"laermoe/internal/model"
	"laermoe/internal/topology"
)

// Model bundles an architecture and a cluster into a cost oracle.
type Model struct {
	Arch *model.Config
	Topo *topology.Topology

	// ContextLen is the sequence length used for attention FLOPs.
	ContextLen int
}

// New returns a cost model for the given architecture on the topology.
func New(arch *model.Config, topo *topology.Topology, contextLen int) *Model {
	return &Model{Arch: arch, Topo: topo, ContextLen: contextLen}
}

// TokenCommBytes is V_comm: the All-to-All payload of one token for one
// hop (dispatch or combine) in bytes.
func (m *Model) TokenCommBytes() float64 {
	return float64(m.Arch.TokenBytes())
}

// TokenExpertFLOPs is V_comp: the forward FLOPs of one expert applied to
// one token.
func (m *Model) TokenExpertFLOPs() float64 {
	return m.Arch.ExpertFLOPsPerToken()
}

// ExpertComputeTime returns the forward computation time on one device that
// processes `assignments` token-to-expert assignments (each assignment is
// one token through one expert).
func (m *Model) ExpertComputeTime(dev int, assignments int) float64 {
	if assignments <= 0 {
		return 0
	}
	return float64(assignments) * m.TokenExpertFLOPs() / m.Topo.FLOPS * m.Topo.ComputeFactor(dev)
}

// AttentionComputeTime returns the forward attention time for `tokens`
// tokens on one device, divided across tpDegree tensor-parallel ranks.
// TP efficiency losses are modelled separately as AllReduce communication.
func (m *Model) AttentionComputeTime(dev, tokens, tpDegree int) float64 {
	if tokens <= 0 {
		return 0
	}
	flops := float64(tokens) * m.Arch.AttentionFLOPsPerToken(m.ContextLen)
	if tpDegree > 1 {
		flops /= float64(tpDegree)
	}
	return flops / m.Topo.FLOPS * m.Topo.ComputeFactor(dev)
}

// GateComputeTime returns the router GEMM + top-k time for `tokens` tokens.
func (m *Model) GateComputeTime(dev, tokens int) float64 {
	if tokens <= 0 {
		return 0
	}
	flops := float64(tokens) * 2 * float64(m.Arch.RouterParams())
	return flops/m.Topo.FLOPS*m.Topo.ComputeFactor(dev) + 2e-5 // top-k kernel floor
}

// BackwardFactor is the usual backward/forward compute ratio.
const BackwardFactor = 2.0

// PrefetchBytesPerDevice returns the per-device send volume of one FSEP
// expert prefetch (unshard): C experts, each device contributing
// (N-1)/N of its chunks — Sec. 3.1, V_fsep = C * (P-1)/P * Ψ_expert.
func (m *Model) PrefetchBytesPerDevice() float64 {
	n := float64(m.Topo.N())
	return float64(m.Arch.ExpertCapacity) * (n - 1) / n * float64(m.Arch.ExpertBytes())
}

// FSDPAllGatherBytes returns the per-device receive volume of a
// traditional FSDP unshard of C experts over a group of size pFSDP:
// V_fsdp = (P_fsdp - 1)/P_fsdp * C * Ψ_expert (Sec. 3.1).
func (m *Model) FSDPAllGatherBytes(pFSDP int) float64 {
	p := float64(pFSDP)
	if p <= 1 {
		return 0
	}
	return (p - 1) / p * float64(m.Arch.ExpertCapacity) * float64(m.Arch.ExpertBytes())
}

// OverlapThresholdTokens returns the Eq. 1 threshold: the minimum per-device
// token count S such that balanced expert computation hides the FSEP
// parameter prefetch. Comparing compute time S*K*6*H*H'/B_comp against
// prefetch time 3*C*H*H'*sizeof(bf16)/B_comm gives
// S > C * B_comp * sizeof(bf16) / (2 * K * B_comm)
// with B_comm the per-device inter-node bandwidth (the bottleneck link).
func (m *Model) OverlapThresholdTokens() float64 {
	bComm := m.Topo.InterBW
	return float64(m.Arch.ExpertCapacity) * m.Topo.FLOPS * model.BytesPerParam /
		(2 * float64(m.Arch.TopK) * bComm)
}

// OverlapSatisfied reports whether per-device token count s satisfies the
// Eq. 1 overlap condition under balanced load.
func (m *Model) OverlapSatisfied(s int) bool {
	return float64(s) > m.OverlapThresholdTokens()
}

// ExpertMigrationBytes returns the communication volume of relocating one
// expert between devices in a traditional relocation scheme: parameters
// plus optimizer states, typically 6x the bf16 parameter size (fp32 master
// weights + two Adam moments; Sec. 1).
func (m *Model) ExpertMigrationBytes() float64 {
	return 6 * float64(m.Arch.ExpertBytes())
}
