package costmodel

import (
	"math"
	"testing"

	"laermoe/internal/model"
	"laermoe/internal/topology"
)

func defaultModel() *Model {
	return New(model.Mixtral8x7B, topology.Default(), 8192)
}

func TestVolumes(t *testing.T) {
	cm := defaultModel()
	if got := cm.TokenCommBytes(); got != 8192 {
		t.Errorf("V_comm = %g bytes, want 8192 (H=4096 bf16)", got)
	}
	if got := cm.TokenExpertFLOPs(); got != 6*4096*14336 {
		t.Errorf("V_comp = %g, want 6*H*H'", got)
	}
}

func TestComputeTimesScaleLinearly(t *testing.T) {
	cm := defaultModel()
	one := cm.ExpertComputeTime(0, 1000)
	two := cm.ExpertComputeTime(0, 2000)
	if math.Abs(two-2*one)/two > 1e-9 {
		t.Errorf("expert compute not linear: %g vs 2*%g", two, one)
	}
	if cm.ExpertComputeTime(0, 0) != 0 {
		t.Error("zero assignments should cost zero")
	}
}

func TestStragglerSlowdownAppliesToCompute(t *testing.T) {
	topo := topology.Default()
	if err := topo.SetSlowdown(5, 2.0); err != nil {
		t.Fatal(err)
	}
	cm := New(model.Mixtral8x7B, topo, 8192)
	fast := cm.ExpertComputeTime(0, 1000)
	slow := cm.ExpertComputeTime(5, 1000)
	if math.Abs(slow-2*fast)/slow > 1e-9 {
		t.Errorf("straggler compute %g, want 2x %g", slow, fast)
	}
}

func TestAttentionTPDividesFLOPs(t *testing.T) {
	cm := defaultModel()
	full := cm.AttentionComputeTime(0, 4096, 1)
	tp4 := cm.AttentionComputeTime(0, 4096, 4)
	if math.Abs(full-4*tp4)/full > 1e-9 {
		t.Errorf("TP=4 attention %g, want quarter of %g", tp4, full)
	}
}

// TestOverlapThreshold reproduces the Eq. 1 analysis: on the paper's
// cluster the threshold is in the same regime the paper reports (S ~ 17K
// theoretically, 16K empirically sufficient) — i.e. between 8K and 24K for
// e8k2 — and a 16K micro-batch satisfies the empirical condition while 4K
// does not.
func TestOverlapThreshold(t *testing.T) {
	cm := defaultModel()
	th := cm.OverlapThresholdTokens()
	if th < 8192 || th > 24576 {
		t.Errorf("overlap threshold = %.0f tokens, want within [8192, 24576]", th)
	}
	if !cm.OverlapSatisfied(16384) {
		t.Errorf("S=16K should satisfy the overlap condition (threshold %.0f)", th)
	}
	if cm.OverlapSatisfied(4096) {
		t.Errorf("S=4K should not satisfy the overlap condition (threshold %.0f)", th)
	}
}

// TestOverlapThresholdScalesWithCapacityAndTopK checks Eq. 1's structure:
// the threshold is proportional to C and inversely proportional to K, so
// e16k4 (C=4, K=4) matches e8k2 (C=2, K=2).
func TestOverlapThresholdScalesWithCapacityAndTopK(t *testing.T) {
	topo := topology.Default()
	e8 := New(model.Mixtral8x7B, topo, 8192).OverlapThresholdTokens()
	e16 := New(model.Mixtral8x7BE16, topo, 8192).OverlapThresholdTokens()
	if math.Abs(e8-e16)/e8 > 1e-9 {
		t.Errorf("e8k2 threshold %.0f != e16k4 threshold %.0f (C/K ratio equal)", e8, e16)
	}
}

// TestFSEPvsFSDPCommRatio reproduces the paper's Sec. 3.1 example: with
// P_fsep=32, P_ep=4, P_fsdp=8 the communication-volume ratio
// V_fsep/V_fsdp = (P_fsep-1)*P_fsdp / (P_fsep*(P_fsdp-1)) ≈ 1.107.
func TestFSEPvsFSDPCommRatio(t *testing.T) {
	cm := defaultModel()
	vFSEP := cm.PrefetchBytesPerDevice()
	vFSDP := cm.FSDPAllGatherBytes(8)
	ratio := vFSEP / vFSDP
	want := (32.0 - 1) * 8 / (32 * (8 - 1))
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("V_fsep/V_fsdp = %.4f, want %.4f", ratio, want)
	}
	if want > 1.2 {
		t.Errorf("paper example ratio should be ~1.1, computed %g", want)
	}
}

func TestPrefetchBytesFormula(t *testing.T) {
	cm := defaultModel()
	n := 32.0
	want := 2 * (n - 1) / n * float64(model.Mixtral8x7B.ExpertBytes())
	if got := cm.PrefetchBytesPerDevice(); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("V_fsep = %g, want C*(N-1)/N*Ψ = %g", got, want)
	}
	if cm.FSDPAllGatherBytes(1) != 0 {
		t.Error("FSDP group of 1 moves no bytes")
	}
}

func TestExpertMigrationBytes(t *testing.T) {
	cm := defaultModel()
	if got, want := cm.ExpertMigrationBytes(), 6*float64(model.Mixtral8x7B.ExpertBytes()); got != want {
		t.Errorf("migration bytes = %g, want 6x expert size %g", got, want)
	}
}

func TestGateComputeHasKernelFloor(t *testing.T) {
	cm := defaultModel()
	if cm.GateComputeTime(0, 1) <= 0 {
		t.Error("gate time should include a kernel floor")
	}
	if cm.GateComputeTime(0, 0) != 0 {
		t.Error("zero tokens should cost zero")
	}
}
