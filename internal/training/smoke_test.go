package training

import (
	"testing"

	"laermoe/internal/model"
	"laermoe/internal/topology"
)

// TestSmokeEndToEnd runs a short simulation of every system on the default
// cluster and checks the headline relationships the paper reports: LAER is
// the fastest real system and its All-to-All share is far below the static
// baseline's.
func TestSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	topo := topology.Default()
	times := map[System]float64{}
	for _, sys := range []System{SystemLAER, SystemFSDPEP, SystemMegatron, SystemFlexMoE} {
		run, err := Run(RunConfig{
			System:     sys,
			Arch:       model.Mixtral8x7B,
			Topo:       topo,
			Iterations: 6,
			Warmup:     2,
			Seed:       7,
		})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		times[sys] = run.MeanIterationTime()
		bd := run.MeanBreakdown()
		t.Logf("%-10s iter=%.2fs tput=%.0f tok/s breakdown: %v imb=%.2f",
			sys, run.MeanIterationTime(), run.Throughput(), bd,
			meanOf(run.MeanPerLayerImbalance()))
	}
	if times[SystemLAER] >= times[SystemFSDPEP] {
		t.Errorf("LAER (%.2fs) not faster than FSDP+EP (%.2fs)", times[SystemLAER], times[SystemFSDPEP])
	}
	if times[SystemLAER] >= times[SystemFlexMoE] {
		t.Errorf("LAER (%.2fs) not faster than FlexMoE (%.2fs)", times[SystemLAER], times[SystemFlexMoE])
	}
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
