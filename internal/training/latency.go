package training

import (
	"laermoe/internal/costmodel"
	"laermoe/internal/executor"
	"laermoe/internal/model"
	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// latencyMeter turns one iteration's dispatch plans plus the request
// batch that produced them into per-request decode latencies — the
// inference workload's objective.
//
// The queueing/service model: each device drains the expert tokens
// dispatched to it this iteration at its modeled expert-compute rate
// (costmodel.ExpertComputeTime over the dispatch's received loads), so a
// (source, expert) token block completes when the slowest device it was
// dispatched to finishes draining. A request clears a layer when the
// slowest of its k chosen experts' blocks completes, and its decode
// latency is the sum of those per-layer completion times. Balanced
// dispatches drain everywhere at once; a hot device queues every request
// routed through it — exactly the tail the p99 column surfaces.
type latencyMeter struct {
	cm *costmodel.Model

	drain  []float64 // per device: this layer's queue-drain time
	edelay []float64 // per (src, expert): slowest destination drain
	loads  []int     // received-loads scratch

	epoch []float64 // request latencies of the current epoch
	all   []float64 // request latencies of the whole run
}

func newLatencyMeter(arch *model.Config, topo *topology.Topology, contextLen int) *latencyMeter {
	return &latencyMeter{cm: costmodel.New(arch, topo, contextLen)}
}

// record accumulates one iteration's request latencies. Serial and
// deterministic: batch and plans are already fixed, so the result is
// independent of the run's Parallelism.
func (m *latencyMeter) record(batch *trace.RequestBatch, plans []executor.LayerPlan) {
	total := batch.Requests()
	if total == 0 {
		return
	}
	base := len(m.epoch)
	for i := 0; i < total; i++ {
		m.epoch = append(m.epoch, 0)
	}
	// acc[r] is request r's accumulated decode latency this iteration,
	// indexed by the batch's global request index.
	acc := m.epoch[base:]

	n := len(batch.PerDevice)
	for l := range plans {
		d := plans[l].Dispatch
		if d == nil {
			continue
		}
		if cap(m.drain) < n {
			m.drain = make([]float64, n)
		}
		m.drain = m.drain[:n]
		m.loads = d.AppendReceivedLoads(m.loads[:0])
		for dev, load := range m.loads {
			m.drain[dev] = m.cm.ExpertComputeTime(dev, load)
		}
		if need := n * d.E; cap(m.edelay) < need {
			m.edelay = make([]float64, need)
		}
		m.edelay = m.edelay[:n*d.E]
		for i := range m.edelay {
			m.edelay[i] = 0
		}
		// A block's completion is the slowest destination it spans. With
		// reshaping policies (score-balance) the dispatch may not cover a
		// request's original expert choice; those cells keep the device's
		// own drain as a floor below.
		for _, a := range d.Assignments {
			if t := m.drain[a.Dst]; t > m.edelay[a.Src*d.E+a.Expert] {
				m.edelay[a.Src*d.E+a.Expert] = t
			}
		}
		K := batch.TopK
		choices := batch.Choices[l]
		for dev := 0; dev < n; dev++ {
			// Unset cells (expert dispatched elsewhere by a reshaping
			// policy) floor at the source device's own drain time: the
			// request still waits out its device's queue.
			floor := m.drain[dev]
			lo, hi := batch.Offsets[dev], batch.Offsets[dev+1]
			for r := lo; r < hi; r++ {
				worst := 0.0
				cbase := r * K
				for k := 0; k < K; k++ {
					t := m.edelay[dev*d.E+int(choices[cbase+k])]
					if t == 0 {
						t = floor
					}
					if t > worst {
						worst = t
					}
				}
				acc[r] += worst
			}
		}
	}
}

// epochPercentiles returns the p50/p99 decode latency of the requests
// recorded since the last call, folds them into the run totals and resets
// the epoch window.
func (m *latencyMeter) epochPercentiles() (p50, p99 float64) {
	if len(m.epoch) == 0 {
		return 0, 0
	}
	p50 = stats.Percentile(m.epoch, 50)
	p99 = stats.Percentile(m.epoch, 99)
	m.all = append(m.all, m.epoch...)
	m.epoch = m.epoch[:0]
	return p50, p99
}

// runPercentiles returns the p50/p99 decode latency over every request of
// the run.
func (m *latencyMeter) runPercentiles() (p50, p99 float64) {
	if len(m.all) == 0 {
		return 0, 0
	}
	return stats.Percentile(m.all, 50), stats.Percentile(m.all, 99)
}
