package training

import (
	"reflect"
	"testing"

	"laermoe/internal/faults"
	"laermoe/internal/model"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// inferenceCfg is a fast inference-workload configuration: per-request
// sampling costs O(requests x layers), so the fixture caps the mean
// arrivals per device and trims the layer count.
func inferenceCfg(policy ReplanPolicy, arrival trace.ArrivalShape) OnlineConfig {
	arch := *model.Mixtral8x7B
	arch.Layers = 8
	return OnlineConfig{
		Policy:   policy,
		Workload: WorkloadInference,
		Arrival:  arrival,
		Arch:     &arch,
		Topo:     topology.Default(),
		Epochs:   3, IterationsPerEpoch: 4,
		GlobalBatchTokens:    1 << 19,
		ForceTokensPerDevice: 256,
		Seed:                 1,
	}
}

// TestOnlineInferenceAllPolicies: every registered policy must run the
// inference workload unchanged and report request latencies.
func TestOnlineInferenceAllPolicies(t *testing.T) {
	for _, spec := range PolicySpecs() {
		for _, arrival := range trace.ArrivalShapes() {
			rep, err := RunOnline(inferenceCfg(spec.Name, arrival))
			if err != nil {
				t.Fatalf("%s/%s: %v", spec.Name, arrival, err)
			}
			if rep.Workload != WorkloadInference || rep.Arrival != arrival {
				t.Fatalf("%s/%s: report labeled %s/%s", spec.Name, arrival, rep.Workload, rep.Arrival)
			}
			if rep.DecodeP50 <= 0 || rep.DecodeP99 < rep.DecodeP50 {
				t.Errorf("%s/%s: implausible run latencies p50=%g p99=%g",
					spec.Name, arrival, rep.DecodeP50, rep.DecodeP99)
			}
			for _, ep := range rep.Epochs {
				if ep.Requests <= 0 {
					t.Errorf("%s/%s: epoch %d served no requests", spec.Name, arrival, ep.Epoch)
				}
				if ep.DecodeP50 <= 0 || ep.DecodeP99 < ep.DecodeP50 {
					t.Errorf("%s/%s: epoch %d implausible latencies p50=%g p99=%g",
						spec.Name, arrival, ep.Epoch, ep.DecodeP50, ep.DecodeP99)
				}
			}
		}
	}
}

// TestOnlineInferenceDeterminism: the inference workload must be
// byte-identical at any Parallelism, like the training workload.
func TestOnlineInferenceDeterminism(t *testing.T) {
	for _, arrival := range trace.ArrivalShapes() {
		cfg := inferenceCfg(ReplanWarm, arrival)
		cfg.Parallelism = 1
		serial, err := RunOnline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Parallelism = 8
		parallel, err := RunOnline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripWallClock(serial), stripWallClock(parallel)) {
			t.Errorf("%s: inference run differs between Parallelism 1 and 8", arrival)
		}
	}
}

// TestOnlineInferenceRejectsFaults: fault schedules are a training-run
// feature; the inference workload must refuse them up front.
func TestOnlineInferenceRejectsFaults(t *testing.T) {
	cfg := inferenceCfg(ReplanWarm, trace.ArrivalDiurnal)
	cfg.Faults = faults.Schedule{{Epoch: 1, Iter: 0, Kind: faults.NodeFail, Node: 1}}
	if _, err := RunOnline(cfg); err == nil {
		t.Fatal("fault schedule accepted for the inference workload")
	}
}

// TestResolveUnknownNames: every registry must fail fast with the valid
// set on an unknown name.
func TestResolveUnknownNames(t *testing.T) {
	if _, err := ResolvePolicy("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := ResolveWorkload("bogus"); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := ResolvePredictor("bogus"); err == nil {
		t.Error("unknown predictor accepted")
	}
	if _, err := ResolveDrift("bogus"); err == nil {
		t.Error("unknown drift model accepted")
	}
	if _, err := RunOnline(inferenceCfg("bogus", trace.ArrivalDiurnal)); err == nil {
		t.Error("unknown policy accepted by RunOnline")
	}
	cfg := inferenceCfg(ReplanWarm, "bogus")
	if _, err := RunOnline(cfg); err == nil {
		t.Error("unknown arrival shape accepted by RunOnline")
	}
	cfg = onlineCfg(ReplanWarm, trace.DriftStabilizing)
	cfg.Workload = "bogus"
	if _, err := RunOnline(cfg); err == nil {
		t.Error("unknown workload accepted by RunOnline")
	}
}
