package training

import (
	"encoding/json"
	"testing"

	"laermoe/internal/faults"
	"laermoe/internal/trace"
)

// epochFingerprint marshals the reproducible outcome of one epoch. The
// solve-path counters and planner wall-clock are telemetry about how the
// decisions were reached, not part of them — a restored planner's drift
// trackers start cold, so it takes full solves where the original went
// incremental, with identical decisions.
func epochFingerprint(t *testing.T, boundary, observation []LayerDecision, sum EpochSummary) string {
	t.Helper()
	sum.IncrementalSolves, sum.FullSolves = 0, 0
	b, err := json.Marshal(struct {
		B, O []LayerDecision
		S    EpochSummary
	}{boundary, observation, sum})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPlannerStateRoundTrip is the compaction acceptance property: a
// planner rebuilt from the same config and restored from an exported
// snapshot (through JSON, as the journal carries it) has the same state
// digest and continues the decision sequence byte-identically — across
// every policy, with a fault baked into the snapshotted state.
func TestPlannerStateRoundTrip(t *testing.T) {
	for _, policy := range ReplanPolicies() {
		cfg := onlineCfg(policy, trace.DriftMigration)
		orig, err := NewOnlinePlanner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		genCfg := trace.GeneratorConfig{
			Devices: orig.Devices(), Experts: orig.Experts(), Layers: orig.Layers(),
			TokensPerDevice: orig.Setup().TokensPerDev, TopK: 2, Seed: 29,
		}
		genA, err := ObservationGenerator(genCfg)
		if err != nil {
			t.Fatal(err)
		}
		var ra []*trace.RoutingMatrix
		for epoch := 0; epoch < 3; epoch++ {
			ra = genA.StepInto(ra)
			if _, _, err := orig.PlanEpoch(ra); err != nil {
				t.Fatal(err)
			}
		}
		// A node failure makes the snapshotted topology and fault
		// accounting non-trivial.
		if _, err := orig.ApplyFaults([]faults.Event{{Kind: faults.NodeFail, Node: 1}}); err != nil {
			t.Fatal(err)
		}
		for l := 0; l < orig.Layers(); l++ {
			orig.TakeFaultCharge(l)
		}

		st, err := orig.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		decoded := &PlannerState{}
		if err := json.Unmarshal(raw, decoded); err != nil {
			t.Fatal(err)
		}
		restored, err := NewOnlinePlanner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.RestoreState(decoded); err != nil {
			t.Fatalf("%s: restore: %v", policy, err)
		}
		if got, want := restored.StateDigest(), orig.StateDigest(); got != want {
			t.Fatalf("%s: restored digest %016x, want %016x", policy, got, want)
		}

		// Both planners now see the same continued stream (two generators in
		// lockstep, as the planners fold dead rows into their inputs).
		genB, err := ObservationGenerator(genCfg)
		if err != nil {
			t.Fatal(err)
		}
		var rb []*trace.RoutingMatrix
		for epoch := 0; epoch < 3; epoch++ {
			rb = genB.StepInto(rb)
		}
		for epoch := 3; epoch < 6; epoch++ {
			ra = genA.StepInto(ra)
			rb = genB.StepInto(rb)
			for l := range ra {
				FoldLostRows(ra[l], orig.Topo())
				FoldLostRows(rb[l], restored.Topo())
			}
			ob, oo, err := orig.PlanEpoch(ra)
			if err != nil {
				t.Fatal(err)
			}
			nb, no, err := restored.PlanEpoch(rb)
			if err != nil {
				t.Fatal(err)
			}
			want := epochFingerprint(t, ob, oo, orig.Summarize())
			got := epochFingerprint(t, nb, no, restored.Summarize())
			if got != want {
				t.Fatalf("%s epoch %d: restored planner diverges\nrestored: %s\noriginal: %s", policy, epoch, got, want)
			}
			if gd, wd := restored.StateDigest(), orig.StateDigest(); gd != wd {
				t.Fatalf("%s epoch %d: digest %016x diverges from %016x", policy, epoch, gd, wd)
			}
		}
	}
}

// TestPlannerStateRestoreRejectsMismatch: a snapshot from a different
// cluster or model shape is rejected before anything mutates.
func TestPlannerStateRestoreRejectsMismatch(t *testing.T) {
	p, err := NewOnlinePlanner(onlineCfg(ReplanWarm, trace.DriftNone))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RestoreState(nil); err == nil {
		t.Error("nil state not rejected")
	}
	st, err := p.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	before := p.StateDigest()
	bad := *st
	bad.Devices++
	if err := p.RestoreState(&bad); err == nil {
		t.Error("device-count mismatch not rejected")
	}
	bad = *st
	bad.Layouts = st.Layouts[:1]
	if err := p.RestoreState(&bad); err == nil {
		t.Error("truncated layouts not rejected")
	}
	if p.StateDigest() != before {
		t.Error("rejected restore mutated the planner")
	}
}
