package training

import (
	"math"
	"testing"
)

func TestLossMonotonicallyDecreases(t *testing.T) {
	m := DefaultConvergenceModel()
	prev := math.Inf(1)
	for s := 0; s <= 3000; s += 100 {
		l := m.Loss(s, 0)
		if l >= prev {
			t.Fatalf("loss not decreasing at step %d: %g >= %g", s, l, prev)
		}
		if l < m.Lmin {
			t.Fatalf("loss %g below asymptote %g", l, m.Lmin)
		}
		prev = l
	}
}

// TestAuxWeightSlowsConvergence reproduces Fig. 2's relation: at any step,
// a higher auxiliary-loss weight leaves the loss higher, and reaching a
// target loss takes more steps.
func TestAuxWeightSlowsConvergence(t *testing.T) {
	m := DefaultConvergenceModel()
	for _, s := range []int{100, 500, 1500, 3000} {
		l0 := m.Loss(s, 0)
		l4 := m.Loss(s, 1e-4)
		l2 := m.Loss(s, 1e-2)
		if !(l0 <= l4 && l4 < l2) {
			t.Errorf("step %d: loss ordering violated: %g, %g, %g", s, l0, l4, l2)
		}
	}
	target := m.Loss(2000, 1e-4)
	s4 := m.StepsToLoss(target, 1e-4, 100000)
	s2 := m.StepsToLoss(target, 1e-2, 100000)
	if s2 <= s4 {
		t.Errorf("w=1e-2 reached target in %d steps, w=1e-4 in %d; want more", s2, s4)
	}
}

// TestProgressCalibration: g(1e-4) is nearly 1 (Fig. 9a: same-rate
// convergence) while g(1e-2) is visibly below (Fig. 2).
func TestProgressCalibration(t *testing.T) {
	m := DefaultConvergenceModel()
	if g := m.Progress(0); g != 1 {
		t.Errorf("Progress(0) = %g, want 1", g)
	}
	if g := m.Progress(1e-4); g < 0.95 {
		t.Errorf("Progress(1e-4) = %g, want >= 0.95", g)
	}
	if g := m.Progress(1e-2); g > 0.85 || g < 0.6 {
		t.Errorf("Progress(1e-2) = %g, want in [0.6, 0.85]", g)
	}
}

// TestJitterWithinPaperThreshold reproduces Fig. 9b: two systems at the
// same weight differ by less than 1e-3 relative error at every step.
func TestJitterWithinPaperThreshold(t *testing.T) {
	m := DefaultConvergenceModel()
	worst := 0.0
	for s := 1; s <= 3000; s += 7 {
		a := m.LossWithJitter(s, 1e-4, 1) // LAER-MoE
		b := m.LossWithJitter(s, 1e-4, 2) // Megatron
		rel := math.Abs(a-b) / b
		if rel > worst {
			worst = rel
		}
	}
	if worst >= 1e-3 {
		t.Errorf("max relative error %.2e, want < 1e-3", worst)
	}
	if worst == 0 {
		t.Error("jitter produced bit-identical curves; the comparison is vacuous")
	}
}

func TestJitterDeterministic(t *testing.T) {
	m := DefaultConvergenceModel()
	if m.LossWithJitter(123, 1e-4, 7) != m.LossWithJitter(123, 1e-4, 7) {
		t.Error("jitter is not deterministic")
	}
	if m.LossWithJitter(123, 1e-4, 0) != m.Loss(123, 1e-4) {
		t.Error("seed 0 should disable jitter")
	}
}

func TestStepsToLossBounds(t *testing.T) {
	m := DefaultConvergenceModel()
	if got := m.StepsToLoss(m.L0+1, 0, 1000); got != 0 {
		t.Errorf("already-reached target needs %d steps, want 0", got)
	}
	if got := m.StepsToLoss(m.Lmin-1, 0, 1000); got != 1000 {
		t.Errorf("unreachable target = %d steps, want maxSteps", got)
	}
}

func TestLossCurveShape(t *testing.T) {
	m := DefaultConvergenceModel()
	xs, ys := m.LossCurve(1000, 100, 0, 0)
	if len(xs) != 11 || len(ys) != 11 {
		t.Fatalf("curve has %d/%d points, want 11", len(xs), len(ys))
	}
	if xs[0] != 0 || xs[10] != 1000 {
		t.Errorf("curve endpoints %d..%d", xs[0], xs[10])
	}
	if ys[0] != m.Loss(0, 0) {
		t.Error("curve start mismatch")
	}
}
