package training

import (
	"testing"

	"laermoe/internal/model"
	"laermoe/internal/topology"
)

func TestSmokeE16K4(t *testing.T) {
	topo := topology.Default()
	for _, sys := range []System{SystemLAER, SystemFSDPEP, SystemMegatron, SystemFlexMoE} {
		run, err := Run(RunConfig{
			System: sys, Arch: model.Mixtral8x7BE16, Topo: topo,
			Iterations: 6, Warmup: 2, Seed: 7,
		})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		t.Logf("%-10s iter=%.2fs breakdown: %v imb=%.2f", sys, run.MeanIterationTime(),
			run.MeanBreakdown(), meanOf(run.MeanPerLayerImbalance()))
	}
}
