package training

import (
	"bytes"
	"testing"

	"laermoe/internal/model"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// tinyReplayArch keeps the replay integration test fast.
var tinyReplayArch = &model.Config{
	Name: "tiny-replay", Layers: 2, HiddenDim: 1024, Intermediate: 2048,
	Heads: 8, KVHeads: 8, HeadDim: 128, VocabSize: 1000,
	Experts: 4, TopK: 2, ExpertCapacity: 2,
}

// TestTraceReplayDeterminism: recording a trace, serializing it through
// the JSON-lines format and replaying it into a run reproduces the exact
// same iteration times as driving the run from the same recorded matrices
// directly — the workflow the paper's Appendix D simulations use.
func TestTraceReplayDeterminism(t *testing.T) {
	topo := topology.New(2, 4)
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: topo.N(), Experts: tinyReplayArch.Experts, Layers: tinyReplayArch.Layers,
		TokensPerDevice: 16384, TopK: tinyReplayArch.TopK, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Record 5 iterations, round-trip through the serialized format.
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	var recorded [][]*trace.RoutingMatrix
	for it := 0; it < 5; it++ {
		ms := gen.Step()
		recorded = append(recorded, ms)
		for l, m := range ms {
			if err := w.Write(it, l, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}

	runWith := func(iters [][]*trace.RoutingMatrix) []float64 {
		rep, err := trace.NewReplayer(iters)
		if err != nil {
			t.Fatal(err)
		}
		run, err := Run(RunConfig{
			System:               SystemLAER,
			Arch:                 tinyReplayArch,
			Topo:                 topo,
			Iterations:           5,
			Warmup:               1,
			Seed:                 3,
			Replayer:             rep,
			ForceTokensPerDevice: 16384,
		})
		if err != nil {
			t.Fatal(err)
		}
		times := make([]float64, len(run.Iterations))
		for i, it := range run.Iterations {
			times[i] = it.Time
		}
		return times
	}

	direct := runWith(recorded)
	replayed := runWith(loaded)
	if len(direct) != len(replayed) {
		t.Fatalf("iteration counts differ: %d vs %d", len(direct), len(replayed))
	}
	for i := range direct {
		if direct[i] != replayed[i] {
			t.Errorf("iteration %d: direct %.6f vs replayed %.6f", i, direct[i], replayed[i])
		}
	}
}

// TestReplayWrapsAround: a short trace driving a longer run wraps without
// error and keeps producing valid iterations.
func TestReplayWrapsAround(t *testing.T) {
	topo := topology.New(2, 4)
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: topo.N(), Experts: tinyReplayArch.Experts, Layers: tinyReplayArch.Layers,
		TokensPerDevice: 4096, TopK: tinyReplayArch.TopK, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := trace.NewReplayer([][]*trace.RoutingMatrix{gen.Step(), gen.Step()})
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run(RunConfig{
		System:               SystemFSDPEP,
		Arch:                 tinyReplayArch,
		Topo:                 topo,
		Iterations:           5,
		Warmup:               1,
		Replayer:             rep,
		ForceTokensPerDevice: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Iterations) != 5 {
		t.Fatalf("%d iterations, want 5", len(run.Iterations))
	}
	for i, it := range run.Iterations {
		if it.Time <= 0 {
			t.Errorf("iteration %d has non-positive time", i)
		}
	}
}
