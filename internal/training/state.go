package training

import (
	"fmt"

	"laermoe/internal/forecast"
	"laermoe/internal/planner"
	"laermoe/internal/topology"
)

// PlannerState is a serializable snapshot of an OnlinePlanner's decision
// state: everything a planner built from the same OnlineConfig needs to
// continue the decision sequence exactly where the exported one stopped.
// It is the payload behind laer-serve's journal compaction — a compacted
// journal replaces its replayed history with one of these, so restore
// fidelity is what keeps long-lived sessions byte-reproducible.
//
// The snapshot covers the digest-verified state (layouts, planned loads,
// fault accounting, topology mask) plus the predictor history the digest
// deliberately omits. Solver scratch and drift trackers are excluded:
// both are amortizations — the first post-restore solve takes the full
// path and re-anchors them, with decisions unchanged by construction.
type PlannerState struct {
	Layers  int `json:"layers"`
	Devices int `json:"devices"`
	Experts int `json:"experts"`

	// Topo is the planner's private topology state (membership mask,
	// stragglers, heterogeneity classes).
	Topo topology.State `json:"topo"`

	// Layouts holds each layer's layout in force as its raw replica-count
	// cells, Layouts[layer][expert][device].
	Layouts [][][]int `json:"layouts"`

	// PlannedLoads is each layer's reference load vector — the warm-start
	// threshold baseline (empty while a layer has never been replanned).
	PlannedLoads [][]float64 `json:"planned_loads"`

	// Pending fault accounting (see OnlinePlanner.faultTime et al.);
	// normally all drained by the time a serve-layer snapshot runs, but
	// carried for exactness.
	FaultTime      []float64 `json:"fault_time,omitempty"`
	FaultMoves     []int     `json:"fault_moves,omitempty"`
	FaultRestored  []int     `json:"fault_restored,omitempty"`
	FaultEvents    int       `json:"fault_events,omitempty"`
	StaticRestored bool      `json:"static_restored,omitempty"`

	// Predictive-policy state: per-layer trust tracking and predictor
	// history (absent for reactive policies).
	LastErr    []float64        `json:"last_err,omitempty"`
	Streak     []int            `json:"streak,omitempty"`
	Predictors []forecast.State `json:"predictors,omitempty"`
}

// ExportState snapshots the planner's decision state. Export is cheap
// relative to a solve — O(layers·experts·devices) copies, no scoring.
func (p *OnlinePlanner) ExportState() (*PlannerState, error) {
	st := &PlannerState{
		Layers:  p.layers,
		Devices: p.n,
		Experts: p.arch.Experts,
		Topo:    p.topo.ExportState(),

		Layouts:      make([][][]int, p.layers),
		PlannedLoads: make([][]float64, p.layers),

		FaultTime:      append([]float64(nil), p.faultTime...),
		FaultMoves:     append([]int(nil), p.faultMoves...),
		FaultRestored:  append([]int(nil), p.faultRestored...),
		FaultEvents:    p.faultEvents,
		StaticRestored: p.staticRestored,
	}
	for l := 0; l < p.layers; l++ {
		lay := p.layouts[l]
		cells := make([][]int, lay.E)
		for j := range cells {
			cells[j] = append([]int(nil), lay.A[j]...)
		}
		st.Layouts[l] = cells
		st.PlannedLoads[l] = append([]float64(nil), p.plannedLoads[l]...)
	}
	if p.pred {
		st.LastErr = append([]float64(nil), p.lastErr...)
		st.Streak = append([]int(nil), p.streak...)
		st.Predictors = make([]forecast.State, p.layers)
		for l := 0; l < p.layers; l++ {
			ps, err := forecast.ExportState(p.predictors[l])
			if err != nil {
				return nil, err
			}
			st.Predictors[l] = ps
		}
	}
	return st, nil
}

// RestoreState replaces the planner's decision state with an exported
// snapshot. The planner must have been built from the same OnlineConfig
// as the exporter; shape mismatches are rejected before anything mutates.
// Drift trackers are invalidated, not restored — the next solve per layer
// takes the full path and rebases them, which cannot move a decision.
func (p *OnlinePlanner) RestoreState(st *PlannerState) error {
	if st == nil {
		return fmt.Errorf("training: nil planner state")
	}
	if st.Layers != p.layers || st.Devices != p.n || st.Experts != p.arch.Experts {
		return fmt.Errorf("training: planner state is %d layers x %d devices x %d experts, planner is %dx%dx%d",
			st.Layers, st.Devices, st.Experts, p.layers, p.n, p.arch.Experts)
	}
	if len(st.Layouts) != p.layers || len(st.PlannedLoads) != p.layers {
		return fmt.Errorf("training: planner state carries %d layouts and %d load vectors for %d layers",
			len(st.Layouts), len(st.PlannedLoads), p.layers)
	}
	for _, vec := range []int{len(st.FaultTime), len(st.FaultMoves), len(st.FaultRestored)} {
		if vec != 0 && vec != p.layers {
			return fmt.Errorf("training: planner state fault accounting has %d entries for %d layers", vec, p.layers)
		}
	}
	if p.pred {
		if len(st.LastErr) != p.layers || len(st.Streak) != p.layers || len(st.Predictors) != p.layers {
			return fmt.Errorf("training: predictive planner state is incomplete (%d/%d/%d entries for %d layers)",
				len(st.LastErr), len(st.Streak), len(st.Predictors), p.layers)
		}
	}
	// Validate and materialize the layouts before touching planner state,
	// so a corrupt snapshot leaves the planner unchanged.
	layouts := make([]*planner.Layout, p.layers)
	for l, cells := range st.Layouts {
		if len(cells) != p.arch.Experts {
			return fmt.Errorf("training: layer %d layout has %d experts, want %d", l, len(cells), p.arch.Experts)
		}
		lay := planner.NewLayout(p.arch.Experts, p.n)
		for j, row := range cells {
			if len(row) != p.n {
				return fmt.Errorf("training: layer %d expert %d has %d device cells, want %d", l, j, len(row), p.n)
			}
			for d, v := range row {
				if v < 0 {
					return fmt.Errorf("training: layer %d expert %d device %d has negative replica count %d", l, j, d, v)
				}
				lay.A[j][d] = v
			}
		}
		layouts[l] = lay
	}
	preds := make([]forecast.Predictor, 0, p.layers)
	if p.pred {
		for l := 0; l < p.layers; l++ {
			pr, err := forecast.New(p.cfg.Predictor, p.arch.Experts)
			if err != nil {
				return err
			}
			if err := forecast.RestoreState(pr, st.Predictors[l]); err != nil {
				return fmt.Errorf("training: layer %d predictor: %w", l, err)
			}
			preds = append(preds, pr)
		}
	}
	if err := p.topo.RestoreState(st.Topo); err != nil {
		return err
	}

	for l := 0; l < p.layers; l++ {
		if p.owned[l] {
			p.solvers[l].Recycle(p.layouts[l])
		}
		p.layouts[l] = layouts[l]
		p.owned[l] = true
		p.plannedLoads[l] = append(p.plannedLoads[l][:0], st.PlannedLoads[l]...)
		p.faultTime[l], p.faultMoves[l], p.faultRestored[l] = 0, 0, 0
		if len(st.FaultTime) == p.layers {
			p.faultTime[l] = st.FaultTime[l]
		}
		if len(st.FaultMoves) == p.layers {
			p.faultMoves[l] = st.FaultMoves[l]
		}
		if len(st.FaultRestored) == p.layers {
			p.faultRestored[l] = st.FaultRestored[l]
		}
	}
	p.faultEvents = st.FaultEvents
	p.staticRestored = st.StaticRestored
	if p.pred {
		copy(p.lastErr, st.LastErr)
		copy(p.streak, st.Streak)
		copy(p.predictors, preds)
	}
	for _, tr := range p.trackers {
		tr.Invalidate()
	}
	p.resetEpoch()
	return nil
}
