package training

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// StateDigest returns a stable 64-bit FNV-1a digest of the planner's
// decision-relevant state: the per-layer layouts in force, their
// reference (planned) loads, the predictive policy's error/trust state,
// the pending fault accounting and the topology availability mask. Two
// planners built from the same configuration that have absorbed the same
// observation and fault sequence produce identical digests — at any
// Parallelism, on any shared Pool, and across processes (FNV is
// seed-free, unlike hash/maphash).
//
// This is the snapshot hook behind laer-serve's journal checkpoints: a
// restarted daemon replays a session's journal and re-derives the digest
// at each snapshot record, turning silent replay divergence (a corrupted
// journal, a code change that moved a decision) into a loud boot-time
// failure. The digest deliberately does not serialize solver scratch or
// forecaster history — those influence *future* decisions, which the
// journal verifies record by record instead.
func (p *OnlinePlanner) StateDigest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) { binary.LittleEndian.PutUint64(buf[:], v); h.Write(buf[:]) }
	i64 := func(v int) { u64(uint64(int64(v))) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	i64(p.layers)
	i64(p.n)
	for d := 0; d < p.n; d++ {
		if p.topo.Available(d) {
			u64(1)
		} else {
			u64(0)
		}
	}
	for l := 0; l < p.layers; l++ {
		lay := p.layouts[l]
		i64(lay.E)
		i64(lay.N)
		for j := range lay.A {
			for _, v := range lay.A[j] {
				i64(v)
			}
		}
		i64(len(p.plannedLoads[l]))
		for _, v := range p.plannedLoads[l] {
			f64(v)
		}
		i64(p.faultMoves[l])
		i64(p.faultRestored[l])
		f64(p.faultTime[l])
	}
	if p.pred {
		for l := 0; l < p.layers; l++ {
			f64(p.lastErr[l])
			i64(p.streak[l])
		}
	}
	i64(p.faultEvents)
	if p.staticRestored {
		u64(1)
	}
	return h.Sum64()
}
