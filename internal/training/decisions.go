package training

import (
	"fmt"

	"laermoe/internal/faults"
	"laermoe/internal/forecast"
	"laermoe/internal/model"
	"laermoe/internal/par"
	"laermoe/internal/planner"
	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// DecisionAction names what a planning step did to one layer's layout.
type DecisionAction string

const (
	// ActionKeep left the layout in force: the solver's keep-versus-migrate
	// score decided no re-layout was worth its churn.
	ActionKeep DecisionAction = "keep"
	// ActionWarmReplan installed an incremental warm-start re-layout
	// (observation-driven; only drifted experts re-placed).
	ActionWarmReplan DecisionAction = "warm-replan"
	// ActionScratchReplan installed a from-scratch re-layout ignoring the
	// layout previously in force.
	ActionScratchReplan DecisionAction = "scratch-replan"
	// ActionPredictiveReplan installed a forecast-driven re-layout at the
	// epoch boundary, before the observation iteration executed.
	ActionPredictiveReplan DecisionAction = "predictive-replan"
	// ActionElasticRepair installed a forced re-layout after a membership
	// fault: dead replicas stripped, affected experts re-placed into the
	// surviving slots, orphaned experts restored from the checkpoint.
	ActionElasticRepair DecisionAction = "elastic-repair"
	// ActionCheckpointRestore re-read the whole layer from the checkpoint
	// onto the survivors — the static-EP baseline's only recovery move.
	ActionCheckpointRestore DecisionAction = "checkpoint-restore"
)

// LayerDecision is the re-layout decision one planning step took for one
// MoE layer: what happened, what it cost in replica moves, and the balance
// the planner expects the resulting layout to deliver. The JSON encoding is
// the wire format of the laer-serve planning service, and the online
// engine's reports carry the same structs — a service session fed the same
// observations is byte-identical to RunOnline by construction (both run
// this package's OnlinePlanner).
type LayerDecision struct {
	Layer  int            `json:"layer"`
	Action DecisionAction `json:"action"`

	// Moves is the number of expert replicas the decision relocates onto
	// devices that did not previously host them, and MigrationTime the
	// simulated seconds charged for those moves (0 on the FSEP substrate).
	Moves         int     `json:"moves"`
	MigrationTime float64 `json:"migration_time_s"`

	// PredictedImbalance is the relative max per-device token load the
	// planner expects from the layout left in force, evaluated under the
	// routing that drove the decision (the forecast for boundary decisions,
	// the observation otherwise; 1.0 = perfect balance).
	PredictedImbalance float64 `json:"predicted_imbalance"`

	// ForecastError is the realized-vs-predicted relative load error
	// attached to the decision: the previous window's error for boundary
	// decisions (the solver's confidence discount input), this window's
	// measured error for observation decisions. 0 for non-predictive runs.
	ForecastError float64 `json:"forecast_error"`

	// Restored counts the expert replicas this decision re-read from the
	// sharded checkpoint (elastic repairs restore only experts whose every
	// replica died; a static checkpoint-restore re-reads the whole layer),
	// and RestoreTime the simulated seconds charged for those reads. Both
	// are zero — and absent from the wire format — outside fault handling.
	Restored    int     `json:"restored,omitempty"`
	RestoreTime float64 `json:"restore_time_s,omitempty"`
}

// EpochSummary aggregates one epoch's planning outcome across layers,
// identically for RunOnline reports and laer-serve responses.
type EpochSummary struct {
	// Migrations counts replica moves across both planning steps of the
	// epoch and MigrationTime the seconds charged for them;
	// BoundaryMigrationTime is the portion charged by forecast-driven
	// boundary replans.
	Migrations            int     `json:"migrations"`
	MigrationTime         float64 `json:"migration_time_s"`
	BoundaryMigrationTime float64 `json:"boundary_migration_time_s"`

	// PredictedLayers counts layers whose boundary replan acted on a
	// forecast, CorrectedLayers those where the post-observation refinement
	// overrode the forecast layout, and ForecastError the mean
	// realized-vs-predicted relative load error across forecasting layers.
	PredictedLayers int     `json:"predicted_layers"`
	CorrectedLayers int     `json:"corrected_layers"`
	ForecastError   float64 `json:"forecast_error"`

	// MeanPredictedImbalance averages the observation decisions'
	// PredictedImbalance across layers (0 when no observation step ran,
	// i.e. for the static policy).
	MeanPredictedImbalance float64 `json:"mean_predicted_imbalance"`

	// FaultEvents counts the membership/degradation events applied since
	// the previous summary, Restored the expert replicas re-read from the
	// checkpoint to recover from them, and RestoreTime the simulated
	// seconds those reads charged. All zero — and absent from the wire
	// format — when no faults fired.
	FaultEvents int     `json:"fault_events,omitempty"`
	Restored    int     `json:"restored,omitempty"`
	RestoreTime float64 `json:"restore_time_s,omitempty"`

	// IncrementalSolves counts the epoch's planning-step solves that ran
	// through a synchronized drift tracker — amortized O(drifted experts)
	// instead of a full re-score — and FullSolves those that re-scanned the
	// whole layer (cold start, post-replan rebase, faults, or incremental
	// planning disabled). Their sum is the epoch's solve count; both are
	// absent from the wire format when zero.
	IncrementalSolves int `json:"incremental_solves,omitempty"`
	FullSolves        int `json:"full_solves,omitempty"`
}

// OnlinePlanner is the per-epoch re-layout decision core shared by
// RunOnline and the laer-serve planning service: per-layer warm-start
// solvers (each with its scratch arena), the layouts currently in force,
// and the per-layer load forecasters of the predictive policy. An epoch is
// driven as PlanBoundary (forecast-driven boundary replans, a no-op for
// reactive policies) followed by Observe (the post-observation reactive
// replan), after which Summarize reports the epoch's aggregate outcome.
//
// The planner is deterministic: the same construction config and the same
// observation sequence produce byte-identical decisions at any Parallelism
// setting and on any shared Pool. It is not safe for concurrent use; the
// service serializes each session on its own planner.
type OnlinePlanner struct {
	cfg   OnlineConfig
	spec  *PolicySpec
	setup *Setup
	arch  *model.Config
	topo  *topology.Topology

	layers int
	n      int

	solvers      []*planner.Solver
	layouts      []*planner.Layout
	owned        []bool
	plannedLoads [][]float64

	// trackers accumulate each layer's per-expert load drift between
	// solves so steady-state decisions run without re-scoring the layer
	// (nil when the policy never warm-starts or incremental planning is
	// disabled). A tracker is rebased after every solve that it did not
	// carry through, and invalidated whenever faults mutate the topology
	// or the layout it is bound to leaves force.
	trackers []*planner.DriftTracker

	// Predictive state, indexed by layer so boundary solves can fan across
	// the worker pool without racing.
	pred        bool
	confThr     float64
	alwaysTrust bool
	perDevice   int
	predictors  []forecast.Predictor
	fcast       [][]float64 // boundary forecast scratch
	fcastMade   []bool      // forecast produced at this boundary
	acted       []bool      // layout replanned from the forecast
	corrected   []bool      // refinement overrode the forecast layout
	lastErr     []float64   // previous window's realized error
	boundErr    []float64   // lastErr as the boundary step saw it (reporting)
	streak      []int       // consecutive sub-threshold error windows
	layerErr    []float64   // this window's realized error (reporting)

	// scoreMigCost is the per-replica migration charge amortized over the
	// epoch's remaining micro-batches, the keep-versus-migrate score input.
	scoreMigCost float64

	// Elastic recovery state. The planner owns a private clone of the
	// configured topology so fault events mutate nothing the caller holds;
	// restoreCost is the per-replica checkpoint read charge. The fault
	// accounting is indexed by layer: faultTime is the wall-clock charge
	// pending for each layer's critical path (consumed by TakeFaultCharge,
	// deliberately untouched by PlanBoundary — boundary faults are applied
	// before the boundary plan), faultMoves/faultRestored feed the next
	// Summarize. staticRestored records that the static policy abandoned
	// its fixed EP groups for a checkpoint-restored layout.
	restoreCost    float64
	faultTime      []float64
	faultMoves     []int
	faultRestored  []int
	faultEvents    int
	staticRestored bool

	workers int
	pool    *par.Pool

	// Per-epoch planning outcome, reset by PlanBoundary. Slot 0 is the
	// boundary (forecast-driven) step, slot 1 the observation step.
	migTime0, migTime1 []float64
	moves0, moves1     []int
	imb0, imb1         []float64
	changed0, changed1 []bool
	observed           bool // Observe ran this epoch

	// Per-epoch solve accounting: how many planning-step solves ran
	// through a synchronized drift tracker versus a full re-score.
	incSolves, fullSolves []int
}

// NewOnlinePlanner validates the configuration (Epochs and Drift are
// RunOnline concerns and are not checked here) and builds the decision
// core: the memory plan, one warm-start solver per layer seeded exactly as
// the online engine seeds them, and the predictive policy's forecasters.
func NewOnlinePlanner(cfg OnlineConfig) (*OnlinePlanner, error) {
	cfg = cfg.withDefaults()
	spec, err := ResolvePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if _, err := ResolveWorkload(cfg.Workload); err != nil {
		return nil, err
	}
	if _, err := ResolvePredictor(cfg.Predictor); err != nil {
		return nil, err
	}
	if cfg.Workload == WorkloadInference {
		if err := cfg.Arrival.Validate(); err != nil {
			return nil, err
		}
	}
	if spec.Validate != nil {
		if err := spec.Validate(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.IterationsPerEpoch < 2 {
		return nil, fmt.Errorf("training: need at least 1 epoch and 2 iterations per epoch (the first iteration is the planner's observation)")
	}
	if cfg.MigrationCostPerReplica < 0 {
		return nil, fmt.Errorf("training: negative migration cost")
	}

	// The planner plans (and repairs) against its own clone of the
	// topology: fault events applied through ApplyFaults must not reach
	// the caller's Topology, and the caller mutating its copy must not
	// skew in-flight decisions. The clone is exact, so every downstream
	// computation is byte-identical to planning on the original.
	cfg.Topo = cfg.Topo.Clone()

	rc := RunConfig{
		System: SystemLAER, Arch: cfg.Arch, Topo: cfg.Topo,
		AuxLossWeight: cfg.AuxLossWeight, TraceSkew: cfg.TraceSkew,
		GlobalBatchTokens: cfg.GlobalBatchTokens, ForceTokensPerDevice: cfg.ForceTokensPerDevice,
		SolverOpts: cfg.SolverOpts, Seed: cfg.Seed,
	}
	if cfg.Workload == WorkloadInference && rc.GlobalBatchTokens == 0 {
		// A decode step serves whatever arrived — there is no global
		// training batch to accumulate, so an unset batch size must not
		// fall back to the training default and split each iteration
		// into thousands of micro-batches.
		rc.GlobalBatchTokens = 1
	}
	setup, err := Prepare(rc)
	if err != nil {
		return nil, err
	}
	arch, topo := cfg.Arch, cfg.Topo
	n, layers := topo.N(), arch.Layers

	initial, err := planner.StaticEP(arch.Experts, n, arch.ExpertCapacity)
	if err != nil {
		return nil, err
	}
	p := &OnlinePlanner{
		cfg: cfg, spec: spec, setup: setup, arch: arch, topo: topo,
		layers: layers, n: n,
		solvers:       make([]*planner.Solver, layers),
		layouts:       make([]*planner.Layout, layers),
		owned:         make([]bool, layers),
		plannedLoads:  make([][]float64, layers),
		workers:       par.Workers(cfg.Parallelism),
		pool:          cfg.Pool,
		migTime0:      make([]float64, layers),
		migTime1:      make([]float64, layers),
		moves0:        make([]int, layers),
		moves1:        make([]int, layers),
		imb0:          make([]float64, layers),
		imb1:          make([]float64, layers),
		changed0:      make([]bool, layers),
		changed1:      make([]bool, layers),
		faultTime:     make([]float64, layers),
		faultMoves:    make([]int, layers),
		faultRestored: make([]int, layers),
		incSolves:     make([]int, layers),
		fullSolves:    make([]int, layers),
	}
	if spec.Tracks && !cfg.DisableIncremental {
		p.trackers = make([]*planner.DriftTracker, layers)
		for l := range p.trackers {
			p.trackers[l] = planner.NewDriftTracker(topo)
		}
	}
	p.restoreCost = cfg.RestoreCostPerReplica
	if p.restoreCost == 0 {
		p.restoreCost = CheckpointRestoreCostPerReplica(arch, topo)
	} else if p.restoreCost < 0 {
		p.restoreCost = 0
	}
	for l := 0; l < layers; l++ {
		opts := cfg.SolverOpts
		if opts.Epsilon == 0 {
			opts = planner.DefaultSolverOptions()
		}
		opts.Seed = cfg.Seed + int64(l) + 1
		p.solvers[l] = planner.NewSolver(topo, arch.ExpertCapacity, setup.Params, opts)
		p.layouts[l] = initial
	}

	p.pred = spec.Predictive
	p.confThr = cfg.ConfidenceThreshold
	p.alwaysTrust = p.confThr < 0
	if p.confThr == 0 {
		p.confThr = DefaultConfidenceThreshold
	}
	p.perDevice = setup.TokensPerDev * arch.TopK
	if p.pred {
		p.predictors = make([]forecast.Predictor, layers)
		p.fcast = make([][]float64, layers)
		for l := range p.predictors {
			pr, perr := forecast.New(cfg.Predictor, arch.Experts)
			if perr != nil {
				return nil, perr
			}
			p.predictors[l] = pr
			p.fcast[l] = make([]float64, arch.Experts)
		}
		p.fcastMade, p.acted, p.corrected = make([]bool, layers), make([]bool, layers), make([]bool, layers)
		p.lastErr, p.boundErr, p.streak = make([]float64, layers), make([]float64, layers), make([]int, layers)
		p.layerErr = make([]float64, layers)
	}

	// The solver's keep-versus-migrate score compares a one-off migration
	// charge against the per-micro-batch Eq. 2 cost, so the charge is
	// amortized over the migrations' beneficiaries: every micro-batch the
	// new layout will serve this epoch.
	epochWork := float64((cfg.IterationsPerEpoch - 1) * setup.MicroBatches)
	p.scoreMigCost = cfg.MigrationCostPerReplica / epochWork
	return p, nil
}

// Setup returns the resolved execution configuration (memory plan, batch
// shape, cost model) the planner scores layouts with.
func (p *OnlinePlanner) Setup() *Setup { return p.setup }

// Layers returns the number of MoE layers planned per epoch.
func (p *OnlinePlanner) Layers() int { return p.layers }

// Devices returns the cluster's device count and Experts the per-layer
// expert count — the expected shape of Observe's routing matrices.
func (p *OnlinePlanner) Devices() int { return p.n }

// Experts returns the per-layer expert count.
func (p *OnlinePlanner) Experts() int { return p.arch.Experts }

// Layouts returns the per-layer layouts currently in force. The slice and
// the layouts are owned by the planner: callers must treat them as
// read-only and must not retain layouts across planning steps (a replan
// recycles dropped layouts through the solver scratch arenas).
func (p *OnlinePlanner) Layouts() []*planner.Layout { return p.layouts }

// MigrationCharge returns the simulated seconds of migration charged on
// the critical path of iteration it (0 or 1) for layer l this epoch:
// boundary replans land on the epoch's first iteration, observation
// replans on the second.
func (p *OnlinePlanner) MigrationCharge(it, l int) float64 {
	switch it {
	case 0:
		return p.migTime0[l]
	case 1:
		return p.migTime1[l]
	}
	return 0
}

// Topo returns the planner's private topology clone — the membership and
// degradation state fault events act on. Callers may read it freely but
// must mutate it only through ApplyFaults, which keeps the layouts
// consistent with the mask.
func (p *OnlinePlanner) Topo() *topology.Topology { return p.topo }

// StaticRestored reports whether the static policy has abandoned its
// fixed EP-group layout for a checkpoint-restored one — after which its
// tokens must route by replica lookup like every other policy, since the
// EP-group owner of a token may no longer exist.
func (p *OnlinePlanner) StaticRestored() bool { return p.staticRestored }

// TakeFaultCharge drains the pending fault-recovery wall-clock charge for
// layer l — checkpoint restores plus any migration cost of the repair's
// re-placements. The engine calls it when building the first iteration
// that executes after the fault, landing recovery on that iteration's
// critical path exactly once.
func (p *OnlinePlanner) TakeFaultCharge(l int) float64 {
	t := p.faultTime[l]
	p.faultTime[l] = 0
	return t
}

// ApplyFaults applies a batch of membership/degradation events to the
// planner's topology and forces the recovery re-layout the new membership
// demands, returning one decision per layer. The adaptive policies repair
// each layout in place — surviving replicas stay put, lost ones are
// re-placed into the surviving slots, and only experts whose every
// replica died pay a checkpoint read. The static baseline has no
// re-layout move: any replica loss forces it to re-read the whole layer
// from the checkpoint onto a load-oblivious survivor layout. Events that
// cost no replicas (joins, degradations) change only the topology and
// decide "keep" everywhere.
//
// The recovery charges are queued per layer for TakeFaultCharge; the
// decisions are deterministic at any Parallelism and on any shared Pool.
func (p *OnlinePlanner) ApplyFaults(events []faults.Event) ([]LayerDecision, error) {
	if len(events) == 0 {
		return nil, nil
	}
	for _, ev := range events {
		if err := ev.Apply(p.topo); err != nil {
			return nil, err
		}
	}
	p.faultEvents += len(events)
	// Membership and degradation change the token splits (and the live-
	// device mean) behind every tracker's accumulators, and the repairs
	// below may mutate layouts in place: the incremental state is stale
	// either way, so the next solve per layer takes the full path.
	for _, tr := range p.trackers {
		tr.Invalidate()
	}
	if !p.spec.Replans {
		// A policy with no replan move (static, and the dispatch-time
		// baselines) can only recover by checkpoint restore.
		return p.staticRestore()
	}
	moves := make([]int, p.layers)
	restored := make([]int, p.layers)
	changed := make([]bool, p.layers)
	err := p.fanout(func(l int) error {
		loads := p.plannedLoads[l]
		if len(loads) == 0 {
			loads = nil // no plan yet: repair balances for uniform loads
		}
		next, st, rerr := p.solvers[l].Repair(p.layouts[l], loads)
		if rerr != nil {
			return rerr
		}
		moves[l], restored[l] = st.Moves, st.Restored
		if next != p.layouts[l] {
			changed[l] = true
			p.installLayout(l, next)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	decs := make([]LayerDecision, p.layers)
	for l := 0; l < p.layers; l++ {
		action := ActionKeep
		if changed[l] {
			action = ActionElasticRepair
		}
		migTime := float64(moves[l]) * p.cfg.MigrationCostPerReplica
		resTime := float64(restored[l]) * p.restoreCost
		p.faultMoves[l] += moves[l]
		p.faultRestored[l] += restored[l]
		p.faultTime[l] += migTime + resTime
		decs[l] = LayerDecision{
			Layer: l, Action: action,
			Moves: moves[l], MigrationTime: migTime,
			Restored: restored[l], RestoreTime: resTime,
		}
	}
	return decs, nil
}

// staticRestore is the static baseline's only recovery path: when any
// replica of the fixed layout died, the whole layer is re-read from the
// checkpoint onto an even, load-oblivious layout over the survivors. One
// layout is shared by every layer (they are identical by construction)
// and is never recycled into a solver arena.
func (p *OnlinePlanner) staticRestore() ([]LayerDecision, error) {
	lost := 0
	for d := 0; d < p.n; d++ {
		if !p.topo.Available(d) {
			lost += p.layouts[0].DeviceCount(d)
		}
	}
	decs := make([]LayerDecision, p.layers)
	for l := range decs {
		decs[l] = LayerDecision{Layer: l, Action: ActionKeep}
	}
	if lost == 0 {
		return decs, nil
	}
	restore, err := planner.StaticRestoreLayout(p.arch.Experts, p.topo, p.arch.ExpertCapacity)
	if err != nil {
		return nil, err
	}
	total := 0
	for j := 0; j < restore.E; j++ {
		total += restore.Replicas(j)
	}
	resTime := float64(total) * p.restoreCost
	for l := 0; l < p.layers; l++ {
		if p.owned[l] {
			p.solvers[l].Recycle(p.layouts[l])
		}
		p.layouts[l] = restore
		p.owned[l] = false
		p.faultRestored[l] += total
		p.faultTime[l] += resTime
		decs[l] = LayerDecision{
			Layer: l, Action: ActionCheckpointRestore,
			Restored: total, RestoreTime: resTime,
		}
	}
	p.staticRestored = true
	return decs, nil
}

// fanout runs fn over every layer on the shared pool when one is
// configured, else on the planner's own worker budget. Decisions are
// identical either way.
func (p *OnlinePlanner) fanout(fn func(l int) error) error {
	if p.pool != nil {
		return p.pool.ForEach(p.layers, fn)
	}
	return par.ForEach(p.workers, p.layers, fn)
}

// tracker returns layer l's drift tracker, nil when incremental planning
// is off for this run.
func (p *OnlinePlanner) tracker(l int) *planner.DriftTracker {
	if p.trackers == nil {
		return nil
	}
	return p.trackers[l]
}

// installLayout swaps a replan result into force for a layer, recycling
// the dropped layout through the solver's scratch arena. The recycling is
// what keeps steady-state boundary solves allocation-free. A tracker
// still bound to the dropped layout is unbound first: the arena may
// reissue the same buffer later, and a pointer-matched but rewritten
// layout must never pass the tracker's sync check.
func (p *OnlinePlanner) installLayout(l int, next *planner.Layout) {
	if tr := p.tracker(l); tr != nil && tr.Layout() == p.layouts[l] {
		tr.Invalidate()
	}
	if p.owned[l] {
		p.solvers[l].Recycle(p.layouts[l])
	}
	p.layouts[l] = next
	p.owned[l] = true
}

// resetEpoch clears the per-epoch planning outcome.
func (p *OnlinePlanner) resetEpoch() {
	for l := 0; l < p.layers; l++ {
		p.migTime0[l], p.moves0[l] = 0, 0
		p.migTime1[l], p.moves1[l] = 0, 0
		p.imb0[l], p.imb1[l] = 0, 0
		p.changed0[l], p.changed1[l] = false, false
		p.incSolves[l], p.fullSolves[l] = 0, 0
	}
	p.observed = false
}

// rebaseTracker re-anchors layer l's tracker on the routing its current
// layout and planned loads were just decided against. Layers with no
// planned loads yet carry no usable baseline (SolveWarm fully re-scores
// them regardless), so the tracker stays unbound until the first replan.
func (p *OnlinePlanner) rebaseTracker(l int, tr *planner.DriftTracker, r *trace.RoutingMatrix) error {
	if len(p.plannedLoads[l]) == 0 {
		tr.Invalidate()
		return nil
	}
	return tr.Rebase(r, p.layouts[l], p.plannedLoads[l], p.cfg.MigrationThreshold)
}

// planBoundaryLayer is the per-layer body of the predictive boundary
// step: forecast the epoch's loads and, once the predictor has earned
// trust, install a forecast-driven re-layout before the epoch's first
// iteration executes.
func (p *OnlinePlanner) planBoundaryLayer(l int) error {
	p.fcastMade[l], p.acted[l], p.corrected[l] = false, false, false
	if !p.predictors[l].Ready() {
		return nil
	}
	p.predictors[l].ForecastInto(p.fcast[l])
	p.fcastMade[l] = true
	if !p.alwaysTrust && p.streak[l] < trustWindows {
		return nil // shadow forecast: measure, don't act
	}
	r, rerr := forecast.SynthRouting(p.fcast[l], p.n, p.perDevice)
	if rerr != nil {
		return rerr
	}
	ferr := p.lastErr[l]
	// Stash the error the solver was discounted by: PlanEpoch runs the
	// observation step (which overwrites lastErr) before the boundary
	// decisions are assembled.
	p.boundErr[l] = ferr
	tr := p.tracker(l)
	synced := tr != nil && tr.Synced(p.layouts[l], p.plannedLoads[l], p.cfg.MigrationThreshold)
	sol, serr := p.solvers[l].SolveWarm(r, planner.WarmStart{
		Prev:          p.layouts[l],
		PrevLoads:     p.plannedLoads[l],
		Threshold:     p.cfg.MigrationThreshold,
		MigrationCost: p.scoreMigCost,
		ForecastError: ferr,
		Tracker:       tr,
	})
	if serr != nil {
		return serr
	}
	if synced {
		p.incSolves[l]++
	} else {
		p.fullSolves[l]++
	}
	kept := sol.Layout == p.layouts[l]
	p.moves0[l] = planner.MigrationMoves(p.layouts[l], sol.Layout)
	p.migTime0[l] = float64(p.moves0[l]) * p.cfg.MigrationCostPerReplica
	if kept && synced {
		// The tracker folded the forecast in and maintained the lite
		// routing's device loads, so the predicted balance needs no
		// O(N·E) re-route.
		p.imb0[l] = tr.Imbalance()
	} else {
		// The predicted balance streams through the planner's pooled
		// router scratch: no Dispatch is materialized on the solve path.
		p.imb0[l] = planner.LiteImbalance(r, sol.Layout, p.topo)
	}
	if !kept {
		p.changed0[l] = true
		p.installLayout(l, sol.Layout)
		p.plannedLoads[l] = append(p.plannedLoads[l][:0], p.fcast[l]...)
	}
	if tr != nil && (!kept || !synced) {
		if rerr := p.rebaseTracker(l, tr, r); rerr != nil {
			return rerr
		}
	}
	p.acted[l] = true
	return nil
}

// boundaryDecisions assembles the decision list of the boundary step.
func (p *OnlinePlanner) boundaryDecisions() []LayerDecision {
	var decs []LayerDecision
	for l := 0; l < p.layers; l++ {
		if !p.acted[l] {
			continue
		}
		action := ActionKeep
		if p.changed0[l] {
			action = ActionPredictiveReplan
		}
		decs = append(decs, LayerDecision{
			Layer: l, Action: action,
			Moves: p.moves0[l], MigrationTime: p.migTime0[l],
			PredictedImbalance: p.imb0[l],
			ForecastError:      p.boundErr[l],
		})
	}
	return decs
}

// PlanBoundary opens an epoch: it resets the per-epoch planning state and,
// for the predictive policy, forecasts the epoch's loads and installs
// forecast-driven re-layouts for every layer whose predictor has earned
// trust — before the epoch's first iteration executes, which is what
// removes the observation lag. Returns one decision per acted layer (nil
// for reactive policies, and for epochs where no layer acted).
func (p *OnlinePlanner) PlanBoundary() ([]LayerDecision, error) {
	p.resetEpoch()
	if !p.pred {
		return nil, nil
	}
	if err := p.fanout(p.planBoundaryLayer); err != nil {
		return nil, err
	}
	return p.boundaryDecisions(), nil
}

// Observe folds the epoch's observation — the routing realized by the
// epoch's first iteration, one matrix per layer — into the planner: the
// reactive policies replan from it (warm incrementally, scratch from
// nothing), the predictive policy measures its forecast error, updates its
// predictors and refines mispredicted boundary layouts. Returns one
// decision per layer (nil for the static policy, which never replans).
func (p *OnlinePlanner) Observe(routing []*trace.RoutingMatrix) ([]LayerDecision, error) {
	if err := p.checkRouting(routing); err != nil {
		return nil, err
	}
	if !p.spec.Replans {
		return nil, nil
	}
	p.observed = true
	err := p.fanout(func(l int) error {
		return p.observeLayer(l, routing)
	})
	if err != nil {
		return nil, err
	}
	return p.observationDecisions(), nil
}

// checkRouting validates an observation's shape against the planner's.
func (p *OnlinePlanner) checkRouting(routing []*trace.RoutingMatrix) error {
	if len(routing) != p.layers {
		return fmt.Errorf("training: %d routing matrices for %d layers", len(routing), p.layers)
	}
	for l, r := range routing {
		if r == nil || r.N != p.n || r.E != p.arch.Experts {
			return fmt.Errorf("training: layer %d routing matrix is not %dx%d", l, p.n, p.arch.Experts)
		}
	}
	return nil
}

// replanWarmLayer is the warm-start observation replan of one layer: the
// drift tracker, when synchronized with the warm start, folds the
// observation in incrementally and lets the solver skip the full
// re-score; either way the decision is byte-identical to the untracked
// path.
func (p *OnlinePlanner) replanWarmLayer(l int, r *trace.RoutingMatrix, forecastErr float64) error {
	tr := p.tracker(l)
	synced := tr != nil && tr.Synced(p.layouts[l], p.plannedLoads[l], p.cfg.MigrationThreshold)
	sol, serr := p.solvers[l].SolveWarm(r, planner.WarmStart{
		Prev:          p.layouts[l],
		PrevLoads:     p.plannedLoads[l],
		Threshold:     p.cfg.MigrationThreshold,
		MigrationCost: p.scoreMigCost,
		ForecastError: forecastErr,
		Tracker:       tr,
	})
	if serr != nil {
		return serr
	}
	if synced {
		p.incSolves[l]++
	} else {
		p.fullSolves[l]++
	}
	kept := sol.Layout == p.layouts[l]
	p.moves1[l] = planner.MigrationMoves(p.layouts[l], sol.Layout)
	p.migTime1[l] = float64(p.moves1[l]) * p.cfg.MigrationCostPerReplica
	if kept && synced {
		// The tracker maintained the lite routing's per-device loads
		// through the diff: the predicted balance costs O(devices)
		// instead of an O(N·E) re-route, bit-identical by construction.
		p.imb1[l] = tr.Imbalance()
	} else {
		p.imb1[l] = planner.LiteImbalance(r, sol.Layout, p.topo)
	}
	// The threshold baseline advances only when the layout was
	// actually re-planned: while a solve keeps the previous layout,
	// its reference loads stay put, so slow drift accumulates
	// against them instead of ratcheting the baseline forward and
	// never firing.
	if !kept {
		p.changed1[l] = true
		p.installLayout(l, sol.Layout)
		p.plannedLoads[l] = r.ExpertLoadsInto(p.plannedLoads[l])
	}
	if tr != nil && (!kept || !synced) {
		if rerr := p.rebaseTracker(l, tr, r); rerr != nil {
			return rerr
		}
	}
	return nil
}

// observeLayer is the per-layer body of the observation step.
func (p *OnlinePlanner) observeLayer(l int, routing []*trace.RoutingMatrix) error {
	replanWarm := func(forecastErr float64) error {
		return p.replanWarmLayer(l, routing[l], forecastErr)
	}
	switch p.cfg.Policy {
	case ReplanScratch:
		sol, serr := p.solvers[l].Solve(routing[l])
		if serr != nil {
			return serr
		}
		p.fullSolves[l]++
		p.moves1[l] = planner.MigrationMoves(p.layouts[l], sol.Layout)
		p.migTime1[l] = float64(p.moves1[l]) * p.cfg.MigrationCostPerReplica
		p.imb1[l] = planner.LiteImbalance(routing[l], sol.Layout, p.topo)
		if sol.Layout != p.layouts[l] {
			p.changed1[l] = true
			p.installLayout(l, sol.Layout)
			p.plannedLoads[l] = routing[l].ExpertLoadsInto(p.plannedLoads[l])
		}
		return nil
	case ReplanWarm:
		return replanWarm(0)
	case ReplanPredictive:
		realized := routing[l].ExpertLoads()
		p.layerErr[l] = 0
		if p.fcastMade[l] {
			p.layerErr[l] = forecast.RelativeError(p.fcast[l], realized)
			p.lastErr[l] = p.layerErr[l]
			if p.layerErr[l] <= p.confThr {
				p.streak[l]++
			} else {
				p.streak[l] = 0
			}
		}
		p.predictors[l].Observe(realized)
		if p.acted[l] && p.alwaysTrust {
			// Diagnostic mode: never refine. The decision still reports
			// the balance the trusted boundary layout delivers under
			// the realized routing.
			p.imb1[l] = planner.LiteImbalance(routing[l], p.layouts[l], p.topo)
			return nil
		}
		// Refine from the observation exactly like the warm policy.
		// Where the forecast held, the solver's per-expert threshold
		// keeps the boundary layout in force at no cost; where it
		// missed, the keep-versus-migrate score decides whether the
		// correction is worth a second round of migration — so acting
		// on a forecast never costs more than one mispredicted
		// iteration plus redoable moves.
		prev := p.layouts[l]
		if werr := replanWarm(0); werr != nil {
			return werr
		}
		p.corrected[l] = p.acted[l] && p.layouts[l] != prev
		return nil
	}
	return nil
}

// observationDecisions assembles the decision list of the observation
// step.
func (p *OnlinePlanner) observationDecisions() []LayerDecision {
	decs := make([]LayerDecision, p.layers)
	for l := 0; l < p.layers; l++ {
		action := ActionKeep
		if p.changed1[l] {
			action = ActionWarmReplan
			if p.cfg.Policy == ReplanScratch {
				action = ActionScratchReplan
			}
		}
		var ferr float64
		if p.pred {
			ferr = p.layerErr[l]
		}
		decs[l] = LayerDecision{
			Layer: l, Action: action,
			Moves: p.moves1[l], MigrationTime: p.migTime1[l],
			PredictedImbalance: p.imb1[l],
			ForecastError:      ferr,
		}
	}
	return decs
}

// PlanEpoch drives one epoch's boundary and observation steps as a single
// fanout over the worker pool: each layer runs its forecast-driven
// boundary plan and its post-observation replan back to back on one
// worker, instead of paying two pool dispatches (and two rounds of
// cross-layer synchronization) per epoch. The decisions are byte-identical
// to PlanBoundary followed by Observe — every planning input and output is
// indexed per layer, so the two steps of one layer never read another
// layer's state. Callers that execute iterations between the two steps
// (the online engine) keep the split entry points; callers that plan both
// steps from one observation (the laer-serve session loop) use this.
func (p *OnlinePlanner) PlanEpoch(routing []*trace.RoutingMatrix) (boundary, observation []LayerDecision, err error) {
	if err := p.checkRouting(routing); err != nil {
		return nil, nil, err
	}
	p.resetEpoch()
	if !p.spec.Replans {
		return nil, nil, nil
	}
	p.observed = true
	err = p.fanout(func(l int) error {
		if p.pred {
			if berr := p.planBoundaryLayer(l); berr != nil {
				return berr
			}
		}
		return p.observeLayer(l, routing)
	})
	if err != nil {
		return nil, nil, err
	}
	if p.pred {
		boundary = p.boundaryDecisions()
	}
	return boundary, p.observationDecisions(), nil
}

// Summarize aggregates the epoch's planning outcome. Call it after
// Observe (it reflects whatever steps have run this epoch).
func (p *OnlinePlanner) Summarize() EpochSummary {
	var s EpochSummary
	for l := 0; l < p.layers; l++ {
		s.Migrations += p.moves0[l] + p.moves1[l]
		s.MigrationTime += p.migTime0[l] + p.migTime1[l]
		s.BoundaryMigrationTime += p.migTime0[l]
	}
	if p.pred {
		errSum, made := 0.0, 0
		for l := 0; l < p.layers; l++ {
			if p.acted[l] {
				s.PredictedLayers++
			}
			if p.corrected[l] {
				s.CorrectedLayers++
			}
			if p.fcastMade[l] {
				errSum += p.layerErr[l]
				made++
			}
		}
		if made > 0 {
			s.ForecastError = errSum / float64(made)
		}
	}
	if p.observed {
		s.MeanPredictedImbalance = stats.Mean(p.imb1)
	}
	for l := 0; l < p.layers; l++ {
		s.IncrementalSolves += p.incSolves[l]
		s.FullSolves += p.fullSolves[l]
	}
	// Fault recovery is summarized once and the counters drained: fault
	// events are applied before PlanBoundary (the boundary plan must see
	// the post-fault membership), so the boundary reset cannot clear them.
	s.FaultEvents = p.faultEvents
	p.faultEvents = 0
	for l := 0; l < p.layers; l++ {
		s.Migrations += p.faultMoves[l]
		s.MigrationTime += float64(p.faultMoves[l]) * p.cfg.MigrationCostPerReplica
		s.Restored += p.faultRestored[l]
		s.RestoreTime += float64(p.faultRestored[l]) * p.restoreCost
		p.faultMoves[l], p.faultRestored[l] = 0, 0
	}
	return s
}
