package training

import (
	"encoding/json"
	"testing"

	"laermoe/internal/faults"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

func elasticCfg(policy ReplanPolicy, schedule string) OnlineConfig {
	cfg := onlineCfg(policy, trace.DriftStabilizing)
	sched, err := faults.Parse(schedule)
	if err != nil {
		panic(err)
	}
	cfg.Faults = sched
	return cfg
}

// TestElasticRunRecovers: a node loss mid-run must be absorbed — every
// epoch still executes, the fault epoch records its events and a restore
// charge, and a recovery record is derived.
func TestElasticRunRecovers(t *testing.T) {
	rep, err := RunOnline(elasticCfg(ReplanWarm, "2:fail:1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 4 {
		t.Fatalf("got %d epochs, want 4", len(rep.Epochs))
	}
	ep := rep.Epochs[2]
	if len(ep.FaultEvents) != 1 || ep.FaultEvents[0] != "2:fail:1" {
		t.Fatalf("fault epoch events = %v", ep.FaultEvents)
	}
	if len(ep.FaultDecisions) == 0 {
		t.Fatal("fault epoch recorded no recovery decisions")
	}
	repaired := false
	for _, d := range ep.FaultDecisions {
		if d.Action == ActionElasticRepair {
			repaired = true
		}
		if d.Action == ActionCheckpointRestore {
			t.Errorf("adaptive policy took a checkpoint restore on layer %d", d.Layer)
		}
	}
	if !repaired {
		t.Error("losing a quarter of the cluster forced no elastic repair")
	}
	if len(rep.Recoveries) != 1 {
		t.Fatalf("got %d recovery records, want 1", len(rep.Recoveries))
	}
	rec := rep.Recoveries[0]
	if rec.Epoch != 2 {
		t.Errorf("recovery epoch = %d, want 2", rec.Epoch)
	}
	if rec.AddedStepTime <= 0 {
		t.Errorf("node loss added %.3fs step time, want positive", rec.AddedStepTime)
	}
	// Fault-free epochs carry no fault fields (and so none on the wire).
	for _, e := range []OnlineEpoch{rep.Epochs[0], rep.Epochs[1]} {
		if len(e.FaultEvents) != 0 || e.Restored != 0 || e.RestoreTime != 0 {
			t.Errorf("pre-fault epoch %d carries fault state: %+v", e.Epoch, e)
		}
	}
}

// TestElasticRepairBeatsStaticRestore is the PR's acceptance property: on
// the same fault schedule, re-layout recovery must beat the static
// baseline's whole-layer checkpoint restore on both recovery wall-clock
// and post-fault imbalance.
func TestElasticRepairBeatsStaticRestore(t *testing.T) {
	const schedule = "2:fail:1"
	warm, err := RunOnline(elasticCfg(ReplanWarm, schedule))
	if err != nil {
		t.Fatal(err)
	}
	static, err := RunOnline(elasticCfg(ReplanStatic, schedule))
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Recoveries) != 1 || len(static.Recoveries) != 1 {
		t.Fatalf("recovery records: warm %d, static %d, want 1 each", len(warm.Recoveries), len(static.Recoveries))
	}
	w, s := warm.Recoveries[0], static.Recoveries[0]
	if w.RestoreTime >= s.RestoreTime {
		t.Errorf("warm restore charge %.3fs not below static %.3fs", w.RestoreTime, s.RestoreTime)
	}
	if w.Restored >= s.Restored {
		t.Errorf("warm restored %d replicas, static %d — repair must re-read less", w.Restored, s.Restored)
	}
	if w.AddedStepTime >= s.AddedStepTime {
		t.Errorf("warm recovery added %.3fs, static %.3fs — re-layout must recover faster", w.AddedStepTime, s.AddedStepTime)
	}
	if wi, si := warm.Epochs[2].Imbalance, static.Epochs[2].Imbalance; wi >= si {
		t.Errorf("post-fault imbalance: warm %.3f not below static %.3f", wi, si)
	}
}

// TestElasticDeterministicAcrossWorkers: fault handling must preserve the
// engine's bit-identity guarantee at any parallelism.
func TestElasticDeterministicAcrossWorkers(t *testing.T) {
	const schedule = "1:fail:2,2.2:degrade:3:degraded,3:join:2"
	run := func(par int) []byte {
		cfg := elasticCfg(ReplanPredictive, schedule)
		cfg.Parallelism = par
		rep, err := RunOnline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range rep.Epochs {
			rep.Epochs[i].PlannerTime = 0 // wall clock, not simulated
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	for _, par := range []int{2, 0} {
		if got := run(par); string(got) != string(serial) {
			t.Fatalf("parallelism %d report differs from serial", par)
		}
	}
}

// TestElasticJoinExpandsCapacity: after a fail+join cycle the adaptive
// policy must flow replicas back onto the rejoined node at the next
// boundary replan — no restore charge, just ordinary migration.
func TestElasticJoinExpandsCapacity(t *testing.T) {
	rep, err := RunOnline(elasticCfg(ReplanWarm, "1:fail:3,2:join:3"))
	if err != nil {
		t.Fatal(err)
	}
	join := rep.Epochs[2]
	if len(join.FaultEvents) != 1 || join.FaultEvents[0] != "2:join:3" {
		t.Fatalf("join epoch events = %v", join.FaultEvents)
	}
	for _, d := range join.FaultDecisions {
		if d.Action != ActionKeep || d.Restored != 0 {
			t.Errorf("join forced layer %d to %s (restored %d); want keep", d.Layer, d.Action, d.Restored)
		}
	}
	// The epoch after the join replans onto the regrown cluster.
	if rep.Epochs[3].Migrations == 0 {
		t.Error("no replicas migrated back after the node rejoined")
	}
}

// TestElasticValidation: schedules that overrun the run or target invalid
// devices are rejected up front.
func TestElasticValidation(t *testing.T) {
	for _, bad := range []string{
		"9:fail:1",                            // beyond the run's epochs
		"2.7:fail:1",                          // beyond iterations per epoch
		"1:fail:99",                           // no such node
		"1:fail:0,1:fail:1,1:fail:2,1:fail:3", // kills the whole cluster
	} {
		cfg := onlineCfg(ReplanWarm, trace.DriftStabilizing)
		sched, err := faults.Parse(bad)
		if err != nil {
			t.Fatalf("parse %q: %v", bad, err)
		}
		cfg.Faults = sched
		if _, err := RunOnline(cfg); err == nil {
			t.Errorf("schedule %q accepted", bad)
		}
	}
}

// TestApplyFaultsIsolatesCallerTopology: the planner repairs on its own
// clone; the configured topology must never see the mask.
func TestApplyFaultsIsolatesCallerTopology(t *testing.T) {
	cfg := onlineCfg(ReplanWarm, trace.DriftStabilizing)
	p, err := NewOnlinePlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	decs, err := p.ApplyFaults([]faults.Event{{Kind: faults.NodeFail, Node: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(decs) != p.Layers() {
		t.Fatalf("got %d decisions for %d layers", len(decs), p.Layers())
	}
	if cfg.Topo.NumAvailable() != cfg.Topo.N() {
		t.Error("fault leaked into the caller's topology")
	}
	if p.Topo().NumAvailable() != cfg.Topo.N()-cfg.Topo.DevicesPerNode {
		t.Errorf("planner topology has %d available devices", p.Topo().NumAvailable())
	}
}

// TestFoldLostRows: token conservation and dead-row clearing.
func TestFoldLostRows(t *testing.T) {
	topo := topology.New(2, 2)
	r := trace.NewRoutingMatrix(4, 3)
	total := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			r.R[i][j] = i*3 + j + 1
			total += r.R[i][j]
		}
	}
	FoldLostRows(r, topo) // fully available: untouched
	if r.R[3][2] != 12 {
		t.Fatal("fold mutated a fully available matrix")
	}
	if err := topo.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	FoldLostRows(r, topo)
	got := 0
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			if i >= 2 && r.R[i][j] != 0 {
				t.Errorf("dead device %d still emits %d tokens for expert %d", i, r.R[i][j], j)
			}
			got += r.R[i][j]
		}
	}
	if got != total {
		t.Errorf("fold conserved %d of %d tokens", got, total)
	}
}
