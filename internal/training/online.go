package training

import (
	"fmt"
	"time"

	"laermoe/internal/costmodel"
	"laermoe/internal/executor"
	"laermoe/internal/model"
	"laermoe/internal/par"
	"laermoe/internal/planner"
	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// ReplanPolicy selects how the online engine reacts to epoch-scale load
// drift.
type ReplanPolicy string

const (
	// ReplanStatic never replans: the initial static-EP layout stays in
	// force for the whole run and tokens route to their fixed EP-group
	// owner (Fig. 6a) — the no-re-layout system every adaptive policy is
	// measured against, as in the paper's FSDP+EP comparison.
	ReplanStatic ReplanPolicy = "static"
	// ReplanScratch re-solves every layer's layout from scratch at every
	// epoch boundary, ignoring the layout currently in force.
	ReplanScratch ReplanPolicy = "scratch"
	// ReplanWarm warm-starts each boundary solve from the previous
	// layout: only experts whose load drifted past the threshold are
	// re-placed, and migration cost is charged against the improvement.
	ReplanWarm ReplanPolicy = "warm"
)

// ReplanPolicies lists every policy RunOnline accepts.
func ReplanPolicies() []ReplanPolicy {
	return []ReplanPolicy{ReplanStatic, ReplanScratch, ReplanWarm}
}

// OnlineConfig parameterizes one multi-epoch online re-layout simulation.
// The run always executes on the FSEP substrate with the LAER executor
// configuration; policies differ only in how per-layer layouts evolve, so
// the comparison isolates the re-layout decision itself.
type OnlineConfig struct {
	Policy ReplanPolicy
	Arch   *model.Config
	Topo   *topology.Topology

	// Epochs is the number of drift windows simulated (0 → 4);
	// IterationsPerEpoch the training iterations replayed per window
	// (0 → 6, minimum 2). The routing distribution drifts at every epoch
	// boundary; each epoch's first iteration runs on the carried-over
	// layouts and is the observation the replan is solved from, so plans
	// lag the drift by exactly one iteration, as in the paper's
	// asynchronous planner (Fig. 7).
	Epochs             int
	IterationsPerEpoch int

	// Drift is the epoch-boundary drift process.
	Drift trace.DriftConfig

	// MigrationThreshold is the relative per-expert load change past which
	// the warm policy re-places an expert: 0 selects the planner default
	// (0.2), negative re-places any expert whose load changed at all.
	MigrationThreshold float64

	// MigrationCostPerReplica is the wall time charged per replica that
	// lands on a device not previously hosting it (seconds). 0 models the
	// FSEP data plane, where any layout is restored by the same All-to-All
	// and re-layout is free (the paper's core claim); relocation-style
	// substrates pay RelocationCostPerReplica. The charge lands on the
	// epoch's first iteration via the executor's critical path and, for
	// the warm policy, is amortized over the epoch inside the solver's
	// keep-versus-migrate score.
	MigrationCostPerReplica float64

	AuxLossWeight float64
	TraceSkew     float64

	SolverOpts planner.SolverOptions

	// GlobalBatchTokens and ForceTokensPerDevice mirror RunConfig.
	GlobalBatchTokens    int
	ForceTokensPerDevice int

	// Parallelism bounds the goroutines solving independent per-layer
	// layouts at an epoch boundary: 0 uses GOMAXPROCS, 1 forces serial.
	// The layouts — and the whole report — are identical at any setting.
	Parallelism int

	Seed int64
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.Policy == "" {
		c.Policy = ReplanWarm
	}
	if c.Epochs == 0 {
		c.Epochs = 4
	}
	if c.IterationsPerEpoch == 0 {
		c.IterationsPerEpoch = 6
	}
	if c.Drift.Model == "" {
		c.Drift.Model = trace.DriftStabilizing
	}
	return c
}

// OnlineEpoch reports one epoch of an online run.
type OnlineEpoch struct {
	Epoch int

	// StepTime is the summed simulated wall time of the epoch's
	// iterations, including the migration charge on the first one;
	// IterationTime is StepTime per iteration and Throughput the
	// corresponding tokens/s.
	StepTime      float64
	IterationTime float64
	Throughput    float64

	// Migrations is the number of expert replicas relocated entering this
	// epoch and MigrationTime the wall time charged for them.
	Migrations    int
	MigrationTime float64

	// Imbalance is the mean relative max per-device token count across
	// the epoch's iterations and layers (1.0 = perfect balance).
	Imbalance float64

	// PlannerTime is the measured CPU time of this boundary's re-layout
	// solves (informational; wall-clock, not simulated).
	PlannerTime float64
}

// OnlineReport aggregates a multi-epoch online simulation.
type OnlineReport struct {
	Policy ReplanPolicy
	Drift  trace.DriftModel
	Model  string

	Epochs             []OnlineEpoch
	GlobalBatch        int // tokens per iteration across the cluster
	IterationsPerEpoch int

	// TotalStepTime is the cumulative simulated step time across every
	// epoch — the headline the policies compete on.
	TotalStepTime   float64
	TotalMigrations int
}

// MeanThroughput returns tokens/s over the whole run.
func (r *OnlineReport) MeanThroughput() float64 {
	if r.TotalStepTime == 0 {
		return 0
	}
	tokens := float64(r.GlobalBatch) * float64(len(r.Epochs)*r.IterationsPerEpoch)
	return tokens / r.TotalStepTime
}

// RelocationCostPerReplica returns the wall time of moving one expert
// replica (parameters plus optimizer state) over the inter-node fabric —
// the charge traditional relocation schemes pay per migration.
func RelocationCostPerReplica(arch *model.Config, topo *topology.Topology) float64 {
	cm := costmodel.New(arch, topo, 8192)
	return cm.ExpertMigrationBytes() / topo.InterBW
}

// RunOnline simulates Epochs drift windows of IterationsPerEpoch training
// iterations each. The routing trace drifts at every window boundary; each
// window's first iteration executes on the layouts carried over from the
// previous window while serving as the planner's observation of the
// post-drift distribution; the configured policy then replans the
// per-layer layouts (warm-started or from scratch), migration is charged
// on the next iteration's critical path, and the executor replays the rest
// of the window against the new layouts — so the report captures exactly
// what adaptation buys (or costs) end to end.
func RunOnline(cfg OnlineConfig) (*OnlineReport, error) {
	cfg = cfg.withDefaults()
	switch cfg.Policy {
	case ReplanStatic, ReplanScratch, ReplanWarm:
	default:
		return nil, fmt.Errorf("training: unknown replan policy %q (have %v)", cfg.Policy, ReplanPolicies())
	}
	if err := cfg.Drift.Validate(); err != nil {
		return nil, err
	}
	if cfg.Epochs < 1 || cfg.IterationsPerEpoch < 2 {
		return nil, fmt.Errorf("training: need at least 1 epoch and 2 iterations per epoch (the first iteration is the planner's observation)")
	}
	if cfg.MigrationCostPerReplica < 0 {
		return nil, fmt.Errorf("training: negative migration cost")
	}

	rc := RunConfig{
		System: SystemLAER, Arch: cfg.Arch, Topo: cfg.Topo,
		AuxLossWeight: cfg.AuxLossWeight, TraceSkew: cfg.TraceSkew,
		GlobalBatchTokens: cfg.GlobalBatchTokens, ForceTokensPerDevice: cfg.ForceTokensPerDevice,
		SolverOpts: cfg.SolverOpts, Seed: cfg.Seed,
	}
	setup, err := Prepare(rc)
	if err != nil {
		return nil, err
	}
	arch, topo := cfg.Arch, cfg.Topo
	n, layers := topo.N(), arch.Layers

	// Within an epoch the popularity process is held nearly stationary
	// (persistence close to 1, hotspot jumps effectively off): the online
	// scenario concentrates drift at the epoch boundaries, where
	// ApplyDrift moves the distribution, so what the boundary planner can
	// and cannot track is exactly what the run measures.
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: n, Experts: arch.Experts, Layers: layers,
		TokensPerDevice: setup.TokensPerDev, TopK: arch.TopK,
		AuxLossWeight: cfg.AuxLossWeight, Skew: cfg.TraceSkew, Seed: cfg.Seed,
		Persistence: 0.999, JumpProb: -1,
	})
	if err != nil {
		return nil, err
	}

	initial, err := planner.StaticEP(arch.Experts, n, arch.ExpertCapacity)
	if err != nil {
		return nil, err
	}
	solvers := make([]*planner.Solver, layers)
	layouts := make([]*planner.Layout, layers)
	plannedLoads := make([][]float64, layers)
	for l := 0; l < layers; l++ {
		opts := cfg.SolverOpts
		if opts.Epsilon == 0 {
			opts = planner.DefaultSolverOptions()
		}
		opts.Seed = cfg.Seed + int64(l) + 1
		solvers[l] = planner.NewSolver(topo, arch.ExpertCapacity, setup.Params, opts)
		layouts[l] = initial
	}

	// The solver's keep-versus-migrate score compares a one-off migration
	// charge against the per-micro-batch Eq. 2 cost, so the charge is
	// amortized over the migrations' beneficiaries: every micro-batch the
	// new layout will serve this epoch.
	epochWork := float64((cfg.IterationsPerEpoch - 1) * setup.MicroBatches)
	scoreMigCost := cfg.MigrationCostPerReplica / epochWork

	report := &OnlineReport{
		Policy: cfg.Policy, Drift: cfg.Drift.Model,
		Model: arch.Name, GlobalBatch: setup.GlobalBatch,
		IterationsPerEpoch: cfg.IterationsPerEpoch,
	}
	migTime := make([]float64, layers)
	moves := make([]int, layers)

	for e := 0; e < cfg.Epochs; e++ {
		if e > 0 {
			if err := gen.ApplyDrift(cfg.Drift); err != nil {
				return nil, err
			}
		}
		for l := range migTime {
			migTime[l], moves[l] = 0, 0
		}

		ep := OnlineEpoch{Epoch: e}
		plans := make([]executor.LayerPlan, layers)
		for it := 0; it < cfg.IterationsPerEpoch; it++ {
			routing := gen.Step()
			for l := range plans {
				var d *planner.Dispatch
				if cfg.Policy == ReplanStatic {
					// No re-layout system: fixed owners, no replica choice.
					d, err = planner.EPRouting(routing[l], arch.ExpertCapacity)
					if err != nil {
						return nil, err
					}
				} else {
					d = planner.LiteRouting(routing[l], layouts[l], topo)
				}
				plans[l] = executor.LayerPlan{Layout: layouts[l], Dispatch: d}
				if it == 1 {
					plans[l].ExtraRelayoutTime = migTime[l]
				}
			}
			iter, rerr := executor.RunIteration(setup.ExecConfig, plans)
			if rerr != nil {
				return nil, rerr
			}
			ep.StepTime += iter.Time
			ep.Imbalance += stats.Mean(iter.PerLayerImbalance)

			// The epoch's first iteration doubles as its observation: while
			// it executes on the layouts carried over from the previous
			// epoch, the planner solves this epoch's layouts from its
			// routing (the paper's asynchronous planning, Fig. 7, at epoch
			// scale). Migration lands on iteration 1's critical path.
			if it == 0 && cfg.Policy != ReplanStatic {
				start := time.Now()
				err := par.ForEach(par.Workers(cfg.Parallelism), layers, func(l int) error {
					var sol *planner.Solution
					var serr error
					switch cfg.Policy {
					case ReplanScratch:
						sol, serr = solvers[l].Solve(routing[l])
					case ReplanWarm:
						sol, serr = solvers[l].SolveWarm(routing[l], planner.WarmStart{
							Prev:          layouts[l],
							PrevLoads:     plannedLoads[l],
							Threshold:     cfg.MigrationThreshold,
							MigrationCost: scoreMigCost,
						})
					}
					if serr != nil {
						return serr
					}
					moves[l] = planner.MigrationMoves(layouts[l], sol.Layout)
					migTime[l] = float64(moves[l]) * cfg.MigrationCostPerReplica
					// The threshold baseline advances only when the layout
					// was actually re-planned: while a solve keeps the
					// previous layout, its reference loads stay put, so
					// slow drift accumulates against them instead of
					// ratcheting the baseline forward and never firing.
					if sol.Layout != layouts[l] {
						layouts[l] = sol.Layout
						plannedLoads[l] = routing[l].ExpertLoads()
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				ep.PlannerTime = time.Since(start).Seconds()
				for l := range moves {
					ep.Migrations += moves[l]
					ep.MigrationTime += migTime[l]
				}
			}
		}
		ep.IterationTime = ep.StepTime / float64(cfg.IterationsPerEpoch)
		ep.Throughput = float64(setup.GlobalBatch) / ep.IterationTime
		ep.Imbalance /= float64(cfg.IterationsPerEpoch)
		report.Epochs = append(report.Epochs, ep)
		report.TotalStepTime += ep.StepTime
		report.TotalMigrations += ep.Migrations
	}
	return report, nil
}

