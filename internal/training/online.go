package training

import (
	"fmt"
	"time"

	"laermoe/internal/costmodel"
	"laermoe/internal/executor"
	"laermoe/internal/faults"
	"laermoe/internal/forecast"
	"laermoe/internal/model"
	"laermoe/internal/par"
	"laermoe/internal/planner"
	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// ReplanPolicy selects how the online engine reacts to epoch-scale load
// drift.
type ReplanPolicy string

const (
	// ReplanStatic never replans: the initial static-EP layout stays in
	// force for the whole run and tokens route to their fixed EP-group
	// owner (Fig. 6a) — the no-re-layout system every adaptive policy is
	// measured against, as in the paper's FSDP+EP comparison.
	ReplanStatic ReplanPolicy = "static"
	// ReplanScratch re-solves every layer's layout from scratch at every
	// epoch boundary, ignoring the layout currently in force.
	ReplanScratch ReplanPolicy = "scratch"
	// ReplanWarm warm-starts each boundary solve from the previous
	// layout: only experts whose load drifted past the threshold are
	// re-placed, and migration cost is charged against the improvement.
	ReplanWarm ReplanPolicy = "warm"
	// ReplanPredictive forecasts each epoch's loads from the history and
	// replans *before* the epoch's first iteration executes, removing the
	// observation-lag iteration every reactive policy pays (Fig. 7). When
	// the previous window's realized forecast error exceeds the confidence
	// threshold the policy falls back to warm-start semantics for that
	// layer; when a trusted forecast turns out wrong, a post-observation
	// correction replan bounds the damage to one iteration.
	ReplanPredictive ReplanPolicy = "predictive"
	// ReplanLLEP never re-lays out: every (source, expert) token block is
	// dispatched onto the least-loaded replica devices at routing time
	// (water-filling), the LLEP serving baseline ("Least-Loaded Expert
	// Parallelism"). The layout only supplies the replica sets.
	ReplanLLEP ReplanPolicy = "llep"
	// ReplanScoreBalance never re-lays out: each device's routing
	// distribution is blended toward uniform before apportionment and the
	// reshaped traffic routes on the fixed layout — the score-distribution
	// balancing baseline ("From Score Distributions to Balance").
	ReplanScoreBalance ReplanPolicy = "score-balance"
)

// ReplanPolicies lists every registered policy, in registration order
// (see registry.go — the one place policies register).
func ReplanPolicies() []ReplanPolicy {
	out := make([]ReplanPolicy, len(policyRegistry))
	for i := range policyRegistry {
		out[i] = policyRegistry[i].Name
	}
	return out
}

// DefaultConfidenceThreshold is the relative forecast error (previous
// window, realized vs predicted) above which the predictive policy falls
// back to warm-start semantics instead of acting on the forecast. The
// within-epoch noise floor of the synthetic trace sits near 0.06-0.08 and
// bursty hot-set replacements measure 0.6+, so 0.25 trusts any forecast
// with real skill while keeping the unforecastable regimes reactive.
const DefaultConfidenceThreshold = 0.25

// trustWindows is the number of consecutive sub-threshold error windows a
// layer's predictor must accumulate before its forecasts are acted on. A
// single lucky window under a bursty regime must not unlock boundary
// migrations: one quiet epoch is common when the redraw misses a layer's
// hot set, two in a row with the *forecast* also landing is not.
const trustWindows = 2

// OnlineConfig parameterizes one multi-epoch online re-layout simulation.
// The run always executes on the FSEP substrate with the LAER executor
// configuration; policies differ only in how per-layer layouts evolve, so
// the comparison isolates the re-layout decision itself.
type OnlineConfig struct {
	Policy ReplanPolicy
	Arch   *model.Config
	Topo   *topology.Topology

	// Epochs is the number of drift windows simulated (0 → 4);
	// IterationsPerEpoch the training iterations replayed per window
	// (0 → 6, minimum 2). The routing distribution drifts at every epoch
	// boundary; each epoch's first iteration runs on the carried-over
	// layouts and is the observation the reactive policies replan from, so
	// their plans lag the drift by exactly one iteration, as in the
	// paper's asynchronous planner (Fig. 7). The predictive policy instead
	// replans at the boundary from forecast loads, before that iteration
	// executes.
	Epochs             int
	IterationsPerEpoch int

	// Drift is the epoch-boundary drift process.
	Drift trace.DriftConfig

	// Workload selects the traffic the run plans for: WorkloadTraining
	// (default) replays training micro-batches with the step-time
	// objective; WorkloadInference drives request-level decode traffic —
	// Poisson arrivals modulated by Arrival ("diurnal" by default, or
	// "bursty"), per-request top-k routing — through the same planning
	// loop and additionally reports p50/p99 decode latency per epoch.
	Workload Workload
	Arrival  trace.ArrivalShape

	// MigrationThreshold is the relative per-expert load change past which
	// the warm policy re-places an expert: 0 selects the planner default
	// (0.2), negative re-places any expert whose load changed at all.
	MigrationThreshold float64

	// MigrationCostPerReplica is the wall time charged per replica that
	// lands on a device not previously hosting it (seconds). 0 models the
	// FSEP data plane, where any layout is restored by the same All-to-All
	// and re-layout is free (the paper's core claim); relocation-style
	// substrates pay RelocationCostPerReplica. The charge lands on the
	// critical path of the first iteration the new layout serves (the
	// epoch's first iteration for boundary replans, the second for
	// observation replans) and is amortized over the epoch inside the
	// solver's keep-versus-migrate score.
	MigrationCostPerReplica float64

	// Faults is the deterministic fault-injection schedule: membership and
	// degradation events applied at the epoch/iteration boundaries they
	// name, before the affected iteration executes. Events at iteration 0
	// land before the epoch's boundary plan, so the planner always plans
	// on the post-fault membership. Empty runs a fixed cluster.
	Faults faults.Schedule

	// RestoreCostPerReplica is the wall time charged per expert replica
	// re-read from the sharded optimizer checkpoint during fault recovery
	// (seconds). The adaptive policies pay it only for experts whose every
	// replica died; the static baseline pays it for every slot of the
	// layer it re-reads. 0 selects the modeled default
	// (CheckpointRestoreCostPerReplica), negative makes restores free.
	RestoreCostPerReplica float64

	// Predictor selects the per-expert load forecaster driving the
	// predictive policy (ignored otherwise): forecast.KindLast, KindEMA or
	// KindTrend. Empty selects KindTrend, the only one that anticipates
	// sustained drift instead of chasing it.
	Predictor forecast.Kind

	// ConfidenceThreshold is the relative forecast error (previous window,
	// realized vs predicted) above which the predictive policy falls back
	// to warm-start semantics; a layer's forecasts are acted on only after
	// two consecutive sub-threshold windows, so a single lucky window
	// under an unforecastable regime stays reactive. 0 selects
	// DefaultConfidenceThreshold, a negative value trusts every forecast
	// unconditionally (no trust warm-up, no post-observation refinement) —
	// mainly for predictor-quality experiments.
	ConfidenceThreshold float64

	AuxLossWeight float64
	TraceSkew     float64

	SolverOpts planner.SolverOptions

	// GlobalBatchTokens and ForceTokensPerDevice mirror RunConfig.
	GlobalBatchTokens    int
	ForceTokensPerDevice int

	// Parallelism bounds the goroutines solving independent per-layer
	// layouts at an epoch boundary: 0 uses GOMAXPROCS, 1 forces serial.
	// The layouts — and the whole report — are identical at any setting.
	Parallelism int

	// Pool, when non-nil, fans the per-layer boundary solves across a
	// shared worker pool instead of the run's own Parallelism budget — the
	// laer-serve daemon points every session at one pool so concurrent
	// sessions cannot oversubscribe the machine. Decisions are identical
	// either way.
	Pool *par.Pool

	// DisableIncremental turns the per-layer drift trackers off, forcing
	// every warm solve down the full re-scoring path. Decisions are
	// byte-identical either way — the trackers are an amortization, not a
	// policy — so this exists for the equivalence tests and for A/B
	// measurement, not for production tuning.
	DisableIncremental bool

	Seed int64
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.Policy == "" {
		c.Policy = ReplanWarm
	}
	if c.Epochs == 0 {
		c.Epochs = 4
	}
	if c.IterationsPerEpoch == 0 {
		c.IterationsPerEpoch = 6
	}
	if c.Drift.Model == "" {
		c.Drift.Model = trace.DriftStabilizing
	}
	if c.Predictor == "" {
		c.Predictor = forecast.KindTrend
	}
	if c.Workload == "" {
		c.Workload = WorkloadTraining
	}
	if c.Workload == WorkloadInference && c.Arrival == "" {
		c.Arrival = trace.ArrivalDiurnal
	}
	return c
}

// OnlineEpoch reports one epoch of an online run.
type OnlineEpoch struct {
	Epoch int

	// StepTime is the summed simulated wall time of the epoch's
	// iterations, including the migration charges; IterationTime is
	// StepTime per iteration and Throughput the corresponding tokens/s.
	StepTime      float64
	IterationTime float64
	Throughput    float64

	// IterationTimes is the simulated wall time of each iteration in
	// order, migration charges included where they land. The gap between
	// the first iteration and the rest is the observation-lag penalty the
	// predictive policy exists to remove.
	IterationTimes []float64

	// Migrations is the number of expert replicas relocated entering this
	// epoch and MigrationTime the wall time charged for them.
	// BoundaryMigrationTime is the portion charged on the epoch's first
	// iteration by predictive boundary replans (the remainder lands on the
	// second iteration), so IterationTimes[0]-BoundaryMigrationTime is the
	// first iteration's pure execution time at any charge setting.
	Migrations            int
	MigrationTime         float64
	BoundaryMigrationTime float64

	// Imbalance is the mean relative max per-device token count across
	// the epoch's iterations and layers (1.0 = perfect balance).
	Imbalance float64

	// Requests, DecodeP50 and DecodeP99 describe the inference workload's
	// decode traffic this epoch: the requests served and the 50th/99th
	// percentile per-request decode latency in seconds (queueing plus
	// service on the dispatched experts, summed across layers). All zero
	// for training workloads.
	Requests  int     `json:"requests,omitempty"`
	DecodeP50 float64 `json:"decode_p50_s,omitempty"`
	DecodeP99 float64 `json:"decode_p99_s,omitempty"`

	// PredictedLayers counts the layers whose boundary replan acted on a
	// forecast this epoch, and CorrectedLayers those where the
	// post-observation refinement then changed the forecast-planned
	// layout again (both 0 for non-predictive policies).
	PredictedLayers int
	CorrectedLayers int

	// ForecastError is the mean realized-vs-predicted relative load error
	// across the layers that made a forecast this epoch (0 when none did).
	ForecastError float64

	// PlannerTime is the measured CPU time of this epoch's re-layout
	// solves (informational; wall-clock, not simulated).
	PlannerTime float64

	// BoundaryDecisions are the forecast-driven per-layer decisions taken
	// at the epoch boundary (predictive policy only; nil otherwise), and
	// ObservationDecisions the per-layer decisions of the post-observation
	// replan (nil for the static policy). They are exactly what a
	// laer-serve session returns for the same observations — the service
	// and the engine share the OnlinePlanner decision core.
	BoundaryDecisions    []LayerDecision
	ObservationDecisions []LayerDecision

	// FaultEvents lists the fault-injection events applied this epoch in
	// firing order, and FaultDecisions the per-layer recovery decisions
	// they forced (all empty on fault-free epochs). Restored counts the
	// expert replicas re-read from the checkpoint and RestoreTime the
	// simulated seconds charged for them.
	FaultEvents    []string        `json:"fault_events,omitempty"`
	FaultDecisions []LayerDecision `json:"fault_decisions,omitempty"`
	Restored       int             `json:"restored,omitempty"`
	RestoreTime    float64         `json:"restore_time_s,omitempty"`
}

// OnlineReport aggregates a multi-epoch online simulation.
type OnlineReport struct {
	Policy ReplanPolicy
	Drift  trace.DriftModel
	Model  string

	// Workload is the traffic the run planned for; Arrival the inference
	// workload's traffic shape (empty for training runs).
	Workload Workload
	Arrival  trace.ArrivalShape `json:"arrival,omitempty"`

	// Predictor is the forecaster the predictive policy ran with (empty
	// for other policies).
	Predictor forecast.Kind

	Epochs             []OnlineEpoch
	GlobalBatch        int // tokens per iteration across the cluster
	IterationsPerEpoch int

	// TotalStepTime is the cumulative simulated step time across every
	// epoch — the headline the policies compete on.
	TotalStepTime   float64
	TotalMigrations int

	// DecodeP50 and DecodeP99 are the run-level decode-latency
	// percentiles over every request of every epoch — the headline the
	// inference workload's policies compete on (0 for training runs).
	DecodeP50 float64 `json:"decode_p50_s,omitempty"`
	DecodeP99 float64 `json:"decode_p99_s,omitempty"`

	// Recoveries reports, per fault-bearing epoch, how the run absorbed
	// its fault events (empty for fault-free runs).
	Recoveries []FaultRecovery `json:"recoveries,omitempty"`
}

// MeanThroughput returns tokens/s over the whole run.
func (r *OnlineReport) MeanThroughput() float64 {
	if r.TotalStepTime == 0 {
		return 0
	}
	tokens := float64(r.GlobalBatch) * float64(len(r.Epochs)*r.IterationsPerEpoch)
	return tokens / r.TotalStepTime
}

// ObservationLag sums, over the epochs where a predictor can have earned
// trust (index >= trustWindows+1: errors are first measurable at epoch 1,
// and two sub-threshold windows must accumulate), the gap between each
// epoch's first iteration — net of any boundary migration charge — and
// the mean of its steady iterations (the third onward; the second carries
// observation-replan charges). This is the Fig. 7 adaptation-lag penalty
// the predictive policy exists to remove, measured identically for every
// policy so reports are directly comparable. Returns 0 when the run is
// too short to measure it.
func (r *OnlineReport) ObservationLag() float64 {
	lag := 0.0
	for _, e := range r.Epochs {
		if e.Epoch < trustWindows+1 || len(e.IterationTimes) < 3 {
			continue
		}
		lag += e.IterationTimes[0] - e.BoundaryMigrationTime - stats.Mean(e.IterationTimes[2:])
	}
	return lag
}

// MeanForecastError averages the per-epoch forecast errors over the epochs
// that actually made a forecast (0 when none did).
func (r *OnlineReport) MeanForecastError() float64 {
	var sum float64
	n := 0
	for _, e := range r.Epochs {
		if e.ForecastError > 0 {
			sum += e.ForecastError
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RelocationCostPerReplica returns the wall time of moving one expert
// replica (parameters plus optimizer state) over the inter-node fabric —
// the charge traditional relocation schemes pay per migration.
func RelocationCostPerReplica(arch *model.Config, topo *topology.Topology) float64 {
	cm := costmodel.New(arch, topo, 8192)
	return cm.ExpertMigrationBytes() / topo.InterBW
}

// DefaultCheckpointBW is the modeled per-device read bandwidth from the
// sharded checkpoint store (bytes/s). Checkpoint traffic crosses the
// storage fabric, not the training interconnect, so a restore is several
// times slower than an inter-node replica move.
const DefaultCheckpointBW = 2e9

// CheckpointRestoreCostPerReplica returns the wall time of re-reading one
// expert replica (parameters plus optimizer state) from the sharded
// checkpoint — the charge fault recovery pays for state that no surviving
// device holds.
func CheckpointRestoreCostPerReplica(arch *model.Config, topo *topology.Topology) float64 {
	cm := costmodel.New(arch, topo, 8192)
	return cm.ExpertMigrationBytes() / DefaultCheckpointBW
}

// FoldLostRows re-homes the tokens of unavailable devices onto the
// survivors: dead device i's routing row is added into the alive row at
// position i mod (number alive) and zeroed. It models the data loader
// resharding its stream over the surviving data-parallel ranks — token
// counts (and so expert loads) are conserved, only their origin moves.
// A fully available topology is left untouched.
func FoldLostRows(r *trace.RoutingMatrix, topo *topology.Topology) {
	n := topo.N()
	if r.N != n || topo.NumAvailable() == n {
		return
	}
	alive := make([]int, 0, n)
	for d := 0; d < n; d++ {
		if topo.Available(d) {
			alive = append(alive, d)
		}
	}
	for d := 0; d < n; d++ {
		if topo.Available(d) {
			continue
		}
		dst := r.R[alive[d%len(alive)]]
		src := r.R[d]
		for j, v := range src {
			if v != 0 {
				dst[j] += v
				src[j] = 0
			}
		}
	}
}

// FaultRecovery measures how one fault-bearing epoch was absorbed,
// identically for every policy so the adaptive systems and the static
// baseline are directly comparable.
type FaultRecovery struct {
	// Epoch is the epoch the events fired in and Events their rendered
	// forms, in application order.
	Epoch  int      `json:"epoch"`
	Events []string `json:"events"`

	// Restored is the number of expert replicas re-read from the
	// checkpoint to recover, and RestoreTime the simulated seconds those
	// reads put on the critical path.
	Restored    int     `json:"restored"`
	RestoreTime float64 `json:"restore_time_s"`

	// AddedStepTime is the recovery's wall-clock toll: the fault epoch's
	// step time minus the preceding epoch's (0 for a fault in the first
	// epoch, which has no baseline).
	AddedStepTime float64 `json:"added_step_time_s"`

	// EpochsToRecover is how many epochs after the fault the run's mean
	// imbalance first returns to within 10% of the pre-fault epoch's
	// (0 = the fault epoch itself absorbed it; -1 = never recovered
	// within the run).
	EpochsToRecover int `json:"epochs_to_recover"`
}

// ObservationGenerator builds the routing generator behind the online
// engine's observation process: within an epoch the popularity process is
// held nearly stationary (persistence close to 1, hotspot jumps off), so
// drift concentrates at the epoch boundaries where ApplyDrift moves the
// distribution — what the boundary planner can and cannot track is exactly
// what a run measures. The caller supplies only the shape fields
// (dimensions, aux weight, skew, seed, parallelism); the process constants
// live here, in one place, so a laer-serve client replaying a drifting
// stream against a daemon (examples/serve) stays in lockstep with
// RunOnline by construction.
func ObservationGenerator(cfg trace.GeneratorConfig) (*trace.Generator, error) {
	cfg.Persistence = 0.999
	cfg.JumpProb = -1
	return trace.NewGenerator(cfg)
}

// InferenceObservationGenerator builds the request-level trace generator
// behind the inference workload, pinning the same within-epoch process
// constants as ObservationGenerator so the two workloads drift
// identically at epoch boundaries. TokensPerDevice in cfg is the mean
// decode requests per device per iteration.
func InferenceObservationGenerator(cfg trace.GeneratorConfig, arrival trace.ArrivalShape) (*trace.RequestGenerator, error) {
	cfg.Persistence = 0.999
	cfg.JumpProb = -1
	return trace.NewRequestGenerator(trace.RequestConfig{GeneratorConfig: cfg, Arrival: arrival})
}

// RunOnline simulates Epochs drift windows of IterationsPerEpoch training
// iterations each. The routing trace drifts at every window boundary. The
// reactive policies (warm, scratch) execute each window's first iteration
// on the layouts carried over from the previous window — it doubles as the
// planner's observation of the post-drift distribution — then replan, pay
// any migration charge on the second iteration's critical path, and replay
// the rest of the window on the new layouts. The predictive policy instead
// forecasts the post-drift loads from the history and, when the previous
// window's realized forecast error is below the confidence threshold,
// installs the new layouts *before* the first iteration (migration charged
// there), eliminating the observation lag; low-confidence layers fall back
// to the reactive path, and a trusted forecast that misses is corrected
// right after the observation. The report captures exactly what adaptation
// — reactive or anticipatory — buys (or costs) end to end.
func RunOnline(cfg OnlineConfig) (*OnlineReport, error) {
	cfg = cfg.withDefaults()
	// The run-level knobs are checked before NewOnlinePlanner builds the
	// decision core (memory fit plus one solver per layer): a trivially
	// invalid config must fail before that work, not after.
	if err := cfg.Drift.Validate(); err != nil {
		return nil, err
	}
	if cfg.Epochs < 1 {
		return nil, fmt.Errorf("training: need at least 1 epoch and 2 iterations per epoch (the first iteration is the planner's observation)")
	}
	elastic := len(cfg.Faults) > 0
	if cfg.Workload == WorkloadInference && elastic {
		return nil, fmt.Errorf("training: fault schedules are not supported for the inference workload")
	}
	if elastic {
		if err := cfg.Faults.Validate(cfg.Topo); err != nil {
			return nil, err
		}
		if m := cfg.Faults.MaxEpoch(); m >= cfg.Epochs {
			return nil, fmt.Errorf("training: fault schedule reaches epoch %d but the run has %d epochs", m, cfg.Epochs)
		}
		for _, ev := range cfg.Faults {
			if ev.Iter >= cfg.IterationsPerEpoch {
				return nil, fmt.Errorf("training: fault event %q fires at iteration %d but epochs have %d iterations", ev, ev.Iter, cfg.IterationsPerEpoch)
			}
		}
	}
	core, err := NewOnlinePlanner(cfg)
	if err != nil {
		return nil, err
	}
	setup := core.Setup()
	// All membership/degradation state lives on the planner's topology
	// clone; routing and folding must read the same instance the repairs
	// mutate.
	arch, topo := cfg.Arch, core.Topo()
	n, layers := topo.N(), arch.Layers

	shape := trace.GeneratorConfig{
		Devices: n, Experts: arch.Experts, Layers: layers,
		TokensPerDevice: setup.TokensPerDev, TopK: arch.TopK,
		AuxLossWeight: cfg.AuxLossWeight, Skew: cfg.TraceSkew, Seed: cfg.Seed,
		// Layer synthesis fans across the same worker budget as the
		// boundary solves; per-layer streams keep the trace identical at
		// any setting.
		Parallelism: cfg.Parallelism,
	}
	var (
		gen  *trace.Generator
		rgen *trace.RequestGenerator
		lat  *latencyMeter
	)
	if cfg.Workload == WorkloadInference {
		rgen, err = InferenceObservationGenerator(shape, cfg.Arrival)
		if err == nil {
			lat = newLatencyMeter(arch, topo, setup.ExecConfig.ContextLen)
		}
	} else {
		gen, err = ObservationGenerator(shape)
	}
	if err != nil {
		return nil, err
	}

	report := &OnlineReport{
		Policy: cfg.Policy, Drift: cfg.Drift.Model, Workload: cfg.Workload,
		Model: arch.Name, GlobalBatch: setup.GlobalBatch,
		IterationsPerEpoch: cfg.IterationsPerEpoch,
	}
	if rgen != nil {
		report.Arrival = rgen.Arrival()
	}
	if core.pred {
		report.Predictor = cfg.Predictor
	}
	plans := make([]executor.LayerPlan, layers)
	// The per-layer routing matrices are caller-owned and reused across
	// every iteration of the run: nothing downstream retains them (plans
	// hold dispatches, the core copies load values out), so steady-state
	// synthesis allocates nothing.
	var routing []*trace.RoutingMatrix

	// denv persists across layers and iterations so a policy's dispatch
	// scratch (score-balance's reshaped matrix) is reused, not reallocated.
	denv := DispatchEnv{Topo: topo, Capacity: arch.ExpertCapacity}
	spec := core.spec

	for e := 0; e < cfg.Epochs; e++ {
		if e > 0 {
			var derr error
			if rgen != nil {
				derr = rgen.ApplyDrift(cfg.Drift)
			} else {
				derr = gen.ApplyDrift(cfg.Drift)
			}
			if derr != nil {
				return nil, derr
			}
		}
		ep := OnlineEpoch{Epoch: e}

		// Boundary fault events land before the boundary plan: the planner
		// must forecast and place onto the post-fault membership, and the
		// recovery charge queues for the first iteration's critical path.
		if elastic {
			if evs := cfg.Faults.At(e, 0); len(evs) > 0 {
				fdec, ferr := core.ApplyFaults(evs)
				if ferr != nil {
					return nil, ferr
				}
				for _, ev := range evs {
					ep.FaultEvents = append(ep.FaultEvents, ev.String())
				}
				ep.FaultDecisions = append(ep.FaultDecisions, fdec...)
			}
		}

		// Predictive boundary replanning: forecast this epoch's loads and,
		// where the previous window's error earns trust, install the new
		// layout before the first iteration executes. Layers without that
		// track record still forecast (so the error can be measured and
		// trust earned) but fall back to the reactive path below. For the
		// reactive policies PlanBoundary only resets the epoch state.
		start := time.Now()
		bdec, berr := core.PlanBoundary()
		if berr != nil {
			return nil, berr
		}
		if core.pred {
			ep.PlannerTime += time.Since(start).Seconds()
		}
		ep.BoundaryDecisions = bdec

		for it := 0; it < cfg.IterationsPerEpoch; it++ {
			// Mid-epoch fault events fire before the iteration they name
			// executes; their recovery charge lands on that iteration.
			if elastic && it > 0 {
				if evs := cfg.Faults.At(e, it); len(evs) > 0 {
					fdec, ferr := core.ApplyFaults(evs)
					if ferr != nil {
						return nil, ferr
					}
					for _, ev := range evs {
						ep.FaultEvents = append(ep.FaultEvents, ev.String())
					}
					ep.FaultDecisions = append(ep.FaultDecisions, fdec...)
				}
			}
			var batch *trace.RequestBatch
			if rgen != nil {
				routing, batch = rgen.StepInto(routing)
			} else {
				routing = gen.StepInto(routing)
			}
			if elastic {
				// Dead ranks emit no tokens: their stream reshards over the
				// survivors, conserving every expert's load.
				for l := range routing {
					FoldLostRows(routing[l], topo)
				}
			}
			layouts := core.Layouts()
			denv.Restored = core.StaticRestored()
			for l := range plans {
				// The policy's registered dispatch routes the layer: fixed
				// EP owners for static (until a restore forces replica
				// lookup), layout-based Alg. 3 for the replanning policies,
				// least-loaded water-filling for LLEP, reshaped-then-routed
				// for score-balance.
				denv.Routing, denv.Layout = routing[l], layouts[l]
				d, derr := spec.Dispatch(&denv)
				if derr != nil {
					return nil, derr
				}
				plans[l] = executor.LayerPlan{Layout: layouts[l], Dispatch: d}
				// Migration charges land on the critical path of the first
				// iteration the new layout serves: the epoch's first
				// iteration for boundary (predictive) replans, the second
				// for observation replans and corrections. Fault-recovery
				// charges land on the first iteration after their event.
				plans[l].ExtraRelayoutTime = core.MigrationCharge(it, l) + core.TakeFaultCharge(l)
			}
			if batch != nil {
				lat.record(batch, plans)
				ep.Requests += batch.Requests()
			}
			iter, rerr := executor.RunIteration(setup.ExecConfig, plans)
			if rerr != nil {
				return nil, rerr
			}
			ep.StepTime += iter.Time
			ep.IterationTimes = append(ep.IterationTimes, iter.Time)
			ep.Imbalance += stats.Mean(iter.PerLayerImbalance)

			// The epoch's first iteration doubles as its observation: the
			// reactive policies solve this epoch's layouts from its routing
			// (the paper's asynchronous planning, Fig. 7, at epoch scale)
			// with migration landing on iteration 1's critical path; the
			// predictive policy folds the realization into its forecasters
			// and falls back to the same reactive solve for layers that
			// could not (or should not have) trusted their forecast.
			if it == 0 && spec.Replans {
				start := time.Now()
				odec, oerr := core.Observe(routing)
				if oerr != nil {
					return nil, oerr
				}
				ep.PlannerTime += time.Since(start).Seconds()
				ep.ObservationDecisions = odec
			}
		}

		sum := core.Summarize()
		ep.Migrations = sum.Migrations
		ep.MigrationTime = sum.MigrationTime
		ep.BoundaryMigrationTime = sum.BoundaryMigrationTime
		ep.PredictedLayers = sum.PredictedLayers
		ep.CorrectedLayers = sum.CorrectedLayers
		ep.ForecastError = sum.ForecastError
		ep.Restored = sum.Restored
		ep.RestoreTime = sum.RestoreTime
		ep.IterationTime = ep.StepTime / float64(cfg.IterationsPerEpoch)
		ep.Throughput = float64(setup.GlobalBatch) / ep.IterationTime
		ep.Imbalance /= float64(cfg.IterationsPerEpoch)
		if lat != nil {
			ep.DecodeP50, ep.DecodeP99 = lat.epochPercentiles()
		}
		report.Epochs = append(report.Epochs, ep)
		report.TotalStepTime += ep.StepTime
		report.TotalMigrations += ep.Migrations
	}
	if lat != nil {
		report.DecodeP50, report.DecodeP99 = lat.runPercentiles()
	}
	if elastic {
		report.Recoveries = faultRecoveries(report.Epochs)
	}
	return report, nil
}

// faultRecoveries derives the per-fault-epoch recovery record from the
// finished epoch sequence.
func faultRecoveries(epochs []OnlineEpoch) []FaultRecovery {
	var recs []FaultRecovery
	for i, ep := range epochs {
		if len(ep.FaultEvents) == 0 {
			continue
		}
		rec := FaultRecovery{
			Epoch:           ep.Epoch,
			Events:          ep.FaultEvents,
			Restored:        ep.Restored,
			RestoreTime:     ep.RestoreTime,
			EpochsToRecover: -1,
		}
		if i > 0 {
			rec.AddedStepTime = ep.StepTime - epochs[i-1].StepTime
			// Recovered = the mean imbalance is back within 10% of the last
			// pre-fault epoch's.
			target := epochs[i-1].Imbalance * 1.10
			for k := i; k < len(epochs); k++ {
				if epochs[k].Imbalance <= target {
					rec.EpochsToRecover = k - i
					break
				}
			}
		}
		recs = append(recs, rec)
	}
	return recs
}
