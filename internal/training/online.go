package training

import (
	"fmt"
	"time"

	"laermoe/internal/costmodel"
	"laermoe/internal/executor"
	"laermoe/internal/forecast"
	"laermoe/internal/model"
	"laermoe/internal/par"
	"laermoe/internal/planner"
	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// ReplanPolicy selects how the online engine reacts to epoch-scale load
// drift.
type ReplanPolicy string

const (
	// ReplanStatic never replans: the initial static-EP layout stays in
	// force for the whole run and tokens route to their fixed EP-group
	// owner (Fig. 6a) — the no-re-layout system every adaptive policy is
	// measured against, as in the paper's FSDP+EP comparison.
	ReplanStatic ReplanPolicy = "static"
	// ReplanScratch re-solves every layer's layout from scratch at every
	// epoch boundary, ignoring the layout currently in force.
	ReplanScratch ReplanPolicy = "scratch"
	// ReplanWarm warm-starts each boundary solve from the previous
	// layout: only experts whose load drifted past the threshold are
	// re-placed, and migration cost is charged against the improvement.
	ReplanWarm ReplanPolicy = "warm"
	// ReplanPredictive forecasts each epoch's loads from the history and
	// replans *before* the epoch's first iteration executes, removing the
	// observation-lag iteration every reactive policy pays (Fig. 7). When
	// the previous window's realized forecast error exceeds the confidence
	// threshold the policy falls back to warm-start semantics for that
	// layer; when a trusted forecast turns out wrong, a post-observation
	// correction replan bounds the damage to one iteration.
	ReplanPredictive ReplanPolicy = "predictive"
)

// ReplanPolicies lists every policy RunOnline accepts.
func ReplanPolicies() []ReplanPolicy {
	return []ReplanPolicy{ReplanStatic, ReplanScratch, ReplanWarm, ReplanPredictive}
}

// DefaultConfidenceThreshold is the relative forecast error (previous
// window, realized vs predicted) above which the predictive policy falls
// back to warm-start semantics instead of acting on the forecast. The
// within-epoch noise floor of the synthetic trace sits near 0.06-0.08 and
// bursty hot-set replacements measure 0.6+, so 0.25 trusts any forecast
// with real skill while keeping the unforecastable regimes reactive.
const DefaultConfidenceThreshold = 0.25

// trustWindows is the number of consecutive sub-threshold error windows a
// layer's predictor must accumulate before its forecasts are acted on. A
// single lucky window under a bursty regime must not unlock boundary
// migrations: one quiet epoch is common when the redraw misses a layer's
// hot set, two in a row with the *forecast* also landing is not.
const trustWindows = 2

// OnlineConfig parameterizes one multi-epoch online re-layout simulation.
// The run always executes on the FSEP substrate with the LAER executor
// configuration; policies differ only in how per-layer layouts evolve, so
// the comparison isolates the re-layout decision itself.
type OnlineConfig struct {
	Policy ReplanPolicy
	Arch   *model.Config
	Topo   *topology.Topology

	// Epochs is the number of drift windows simulated (0 → 4);
	// IterationsPerEpoch the training iterations replayed per window
	// (0 → 6, minimum 2). The routing distribution drifts at every epoch
	// boundary; each epoch's first iteration runs on the carried-over
	// layouts and is the observation the reactive policies replan from, so
	// their plans lag the drift by exactly one iteration, as in the
	// paper's asynchronous planner (Fig. 7). The predictive policy instead
	// replans at the boundary from forecast loads, before that iteration
	// executes.
	Epochs             int
	IterationsPerEpoch int

	// Drift is the epoch-boundary drift process.
	Drift trace.DriftConfig

	// MigrationThreshold is the relative per-expert load change past which
	// the warm policy re-places an expert: 0 selects the planner default
	// (0.2), negative re-places any expert whose load changed at all.
	MigrationThreshold float64

	// MigrationCostPerReplica is the wall time charged per replica that
	// lands on a device not previously hosting it (seconds). 0 models the
	// FSEP data plane, where any layout is restored by the same All-to-All
	// and re-layout is free (the paper's core claim); relocation-style
	// substrates pay RelocationCostPerReplica. The charge lands on the
	// critical path of the first iteration the new layout serves (the
	// epoch's first iteration for boundary replans, the second for
	// observation replans) and is amortized over the epoch inside the
	// solver's keep-versus-migrate score.
	MigrationCostPerReplica float64

	// Predictor selects the per-expert load forecaster driving the
	// predictive policy (ignored otherwise): forecast.KindLast, KindEMA or
	// KindTrend. Empty selects KindTrend, the only one that anticipates
	// sustained drift instead of chasing it.
	Predictor forecast.Kind

	// ConfidenceThreshold is the relative forecast error (previous window,
	// realized vs predicted) above which the predictive policy falls back
	// to warm-start semantics; a layer's forecasts are acted on only after
	// two consecutive sub-threshold windows, so a single lucky window
	// under an unforecastable regime stays reactive. 0 selects
	// DefaultConfidenceThreshold, a negative value trusts every forecast
	// unconditionally (no trust warm-up, no post-observation refinement) —
	// mainly for predictor-quality experiments.
	ConfidenceThreshold float64

	AuxLossWeight float64
	TraceSkew     float64

	SolverOpts planner.SolverOptions

	// GlobalBatchTokens and ForceTokensPerDevice mirror RunConfig.
	GlobalBatchTokens    int
	ForceTokensPerDevice int

	// Parallelism bounds the goroutines solving independent per-layer
	// layouts at an epoch boundary: 0 uses GOMAXPROCS, 1 forces serial.
	// The layouts — and the whole report — are identical at any setting.
	Parallelism int

	Seed int64
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	if c.Policy == "" {
		c.Policy = ReplanWarm
	}
	if c.Epochs == 0 {
		c.Epochs = 4
	}
	if c.IterationsPerEpoch == 0 {
		c.IterationsPerEpoch = 6
	}
	if c.Drift.Model == "" {
		c.Drift.Model = trace.DriftStabilizing
	}
	if c.Predictor == "" {
		c.Predictor = forecast.KindTrend
	}
	return c
}

// OnlineEpoch reports one epoch of an online run.
type OnlineEpoch struct {
	Epoch int

	// StepTime is the summed simulated wall time of the epoch's
	// iterations, including the migration charges; IterationTime is
	// StepTime per iteration and Throughput the corresponding tokens/s.
	StepTime      float64
	IterationTime float64
	Throughput    float64

	// IterationTimes is the simulated wall time of each iteration in
	// order, migration charges included where they land. The gap between
	// the first iteration and the rest is the observation-lag penalty the
	// predictive policy exists to remove.
	IterationTimes []float64

	// Migrations is the number of expert replicas relocated entering this
	// epoch and MigrationTime the wall time charged for them.
	// BoundaryMigrationTime is the portion charged on the epoch's first
	// iteration by predictive boundary replans (the remainder lands on the
	// second iteration), so IterationTimes[0]-BoundaryMigrationTime is the
	// first iteration's pure execution time at any charge setting.
	Migrations            int
	MigrationTime         float64
	BoundaryMigrationTime float64

	// Imbalance is the mean relative max per-device token count across
	// the epoch's iterations and layers (1.0 = perfect balance).
	Imbalance float64

	// PredictedLayers counts the layers whose boundary replan acted on a
	// forecast this epoch, and CorrectedLayers those where the
	// post-observation refinement then changed the forecast-planned
	// layout again (both 0 for non-predictive policies).
	PredictedLayers int
	CorrectedLayers int

	// ForecastError is the mean realized-vs-predicted relative load error
	// across the layers that made a forecast this epoch (0 when none did).
	ForecastError float64

	// PlannerTime is the measured CPU time of this epoch's re-layout
	// solves (informational; wall-clock, not simulated).
	PlannerTime float64
}

// OnlineReport aggregates a multi-epoch online simulation.
type OnlineReport struct {
	Policy ReplanPolicy
	Drift  trace.DriftModel
	Model  string

	// Predictor is the forecaster the predictive policy ran with (empty
	// for other policies).
	Predictor forecast.Kind

	Epochs             []OnlineEpoch
	GlobalBatch        int // tokens per iteration across the cluster
	IterationsPerEpoch int

	// TotalStepTime is the cumulative simulated step time across every
	// epoch — the headline the policies compete on.
	TotalStepTime   float64
	TotalMigrations int
}

// MeanThroughput returns tokens/s over the whole run.
func (r *OnlineReport) MeanThroughput() float64 {
	if r.TotalStepTime == 0 {
		return 0
	}
	tokens := float64(r.GlobalBatch) * float64(len(r.Epochs)*r.IterationsPerEpoch)
	return tokens / r.TotalStepTime
}

// ObservationLag sums, over the epochs where a predictor can have earned
// trust (index >= trustWindows+1: errors are first measurable at epoch 1,
// and two sub-threshold windows must accumulate), the gap between each
// epoch's first iteration — net of any boundary migration charge — and
// the mean of its steady iterations (the third onward; the second carries
// observation-replan charges). This is the Fig. 7 adaptation-lag penalty
// the predictive policy exists to remove, measured identically for every
// policy so reports are directly comparable. Returns 0 when the run is
// too short to measure it.
func (r *OnlineReport) ObservationLag() float64 {
	lag := 0.0
	for _, e := range r.Epochs {
		if e.Epoch < trustWindows+1 || len(e.IterationTimes) < 3 {
			continue
		}
		lag += e.IterationTimes[0] - e.BoundaryMigrationTime - stats.Mean(e.IterationTimes[2:])
	}
	return lag
}

// MeanForecastError averages the per-epoch forecast errors over the epochs
// that actually made a forecast (0 when none did).
func (r *OnlineReport) MeanForecastError() float64 {
	var sum float64
	n := 0
	for _, e := range r.Epochs {
		if e.ForecastError > 0 {
			sum += e.ForecastError
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RelocationCostPerReplica returns the wall time of moving one expert
// replica (parameters plus optimizer state) over the inter-node fabric —
// the charge traditional relocation schemes pay per migration.
func RelocationCostPerReplica(arch *model.Config, topo *topology.Topology) float64 {
	cm := costmodel.New(arch, topo, 8192)
	return cm.ExpertMigrationBytes() / topo.InterBW
}

// RunOnline simulates Epochs drift windows of IterationsPerEpoch training
// iterations each. The routing trace drifts at every window boundary. The
// reactive policies (warm, scratch) execute each window's first iteration
// on the layouts carried over from the previous window — it doubles as the
// planner's observation of the post-drift distribution — then replan, pay
// any migration charge on the second iteration's critical path, and replay
// the rest of the window on the new layouts. The predictive policy instead
// forecasts the post-drift loads from the history and, when the previous
// window's realized forecast error is below the confidence threshold,
// installs the new layouts *before* the first iteration (migration charged
// there), eliminating the observation lag; low-confidence layers fall back
// to the reactive path, and a trusted forecast that misses is corrected
// right after the observation. The report captures exactly what adaptation
// — reactive or anticipatory — buys (or costs) end to end.
func RunOnline(cfg OnlineConfig) (*OnlineReport, error) {
	cfg = cfg.withDefaults()
	switch cfg.Policy {
	case ReplanStatic, ReplanScratch, ReplanWarm, ReplanPredictive:
	default:
		return nil, fmt.Errorf("training: unknown replan policy %q (have %v)", cfg.Policy, ReplanPolicies())
	}
	if err := cfg.Drift.Validate(); err != nil {
		return nil, err
	}
	if cfg.Epochs < 1 || cfg.IterationsPerEpoch < 2 {
		return nil, fmt.Errorf("training: need at least 1 epoch and 2 iterations per epoch (the first iteration is the planner's observation)")
	}
	if cfg.MigrationCostPerReplica < 0 {
		return nil, fmt.Errorf("training: negative migration cost")
	}

	rc := RunConfig{
		System: SystemLAER, Arch: cfg.Arch, Topo: cfg.Topo,
		AuxLossWeight: cfg.AuxLossWeight, TraceSkew: cfg.TraceSkew,
		GlobalBatchTokens: cfg.GlobalBatchTokens, ForceTokensPerDevice: cfg.ForceTokensPerDevice,
		SolverOpts: cfg.SolverOpts, Seed: cfg.Seed,
	}
	setup, err := Prepare(rc)
	if err != nil {
		return nil, err
	}
	arch, topo := cfg.Arch, cfg.Topo
	n, layers := topo.N(), arch.Layers

	// Within an epoch the popularity process is held nearly stationary
	// (persistence close to 1, hotspot jumps effectively off): the online
	// scenario concentrates drift at the epoch boundaries, where
	// ApplyDrift moves the distribution, so what the boundary planner can
	// and cannot track is exactly what the run measures.
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: n, Experts: arch.Experts, Layers: layers,
		TokensPerDevice: setup.TokensPerDev, TopK: arch.TopK,
		AuxLossWeight: cfg.AuxLossWeight, Skew: cfg.TraceSkew, Seed: cfg.Seed,
		Persistence: 0.999, JumpProb: -1,
		// Layer synthesis fans across the same worker budget as the
		// boundary solves; per-layer streams keep the trace identical at
		// any setting.
		Parallelism: cfg.Parallelism,
	})
	if err != nil {
		return nil, err
	}

	initial, err := planner.StaticEP(arch.Experts, n, arch.ExpertCapacity)
	if err != nil {
		return nil, err
	}
	solvers := make([]*planner.Solver, layers)
	layouts := make([]*planner.Layout, layers)
	// owned[l] marks layouts[l] as produced by layer l's solver (as opposed
	// to the shared initial static-EP layout), i.e. safe to hand back to
	// that solver's free list when a replan drops it. The recycling is what
	// keeps steady-state boundary solves allocation-free.
	owned := make([]bool, layers)
	plannedLoads := make([][]float64, layers)
	for l := 0; l < layers; l++ {
		opts := cfg.SolverOpts
		if opts.Epsilon == 0 {
			opts = planner.DefaultSolverOptions()
		}
		opts.Seed = cfg.Seed + int64(l) + 1
		solvers[l] = planner.NewSolver(topo, arch.ExpertCapacity, setup.Params, opts)
		layouts[l] = initial
	}
	// installLayout swaps a replan result into force for a layer, recycling
	// the dropped layout through the solver's scratch arena.
	installLayout := func(l int, next *planner.Layout) {
		if owned[l] {
			solvers[l].Recycle(layouts[l])
		}
		layouts[l] = next
		owned[l] = true
	}

	// Per-layer predictive state: the forecaster, this epoch's forecast,
	// and the previous window's realized forecast error (the confidence
	// signal). All of it is indexed by layer so the boundary solves can
	// fan across the worker pool without racing.
	pred := cfg.Policy == ReplanPredictive
	confThr := cfg.ConfidenceThreshold
	alwaysTrust := confThr < 0
	if confThr == 0 {
		confThr = DefaultConfidenceThreshold
	}
	perDevice := setup.TokensPerDev * arch.TopK
	var (
		predictors []forecast.Predictor
		fcast      [][]float64 // boundary forecast scratch
		fcastMade  []bool      // forecast produced at this boundary
		acted      []bool      // layout replanned from the forecast
		corrected  []bool      // refinement overrode the forecast layout
		lastErr    []float64   // previous window's realized error
		streak     []int       // consecutive sub-threshold error windows
		layerErr   []float64   // this window's realized error (reporting)
	)
	if pred {
		predictors = make([]forecast.Predictor, layers)
		fcast = make([][]float64, layers)
		for l := range predictors {
			p, perr := forecast.New(cfg.Predictor, arch.Experts)
			if perr != nil {
				return nil, perr
			}
			predictors[l] = p
			fcast[l] = make([]float64, arch.Experts)
		}
		fcastMade, acted, corrected = make([]bool, layers), make([]bool, layers), make([]bool, layers)
		lastErr, streak = make([]float64, layers), make([]int, layers)
		layerErr = make([]float64, layers)
	}

	// The solver's keep-versus-migrate score compares a one-off migration
	// charge against the per-micro-batch Eq. 2 cost, so the charge is
	// amortized over the migrations' beneficiaries: every micro-batch the
	// new layout will serve this epoch.
	epochWork := float64((cfg.IterationsPerEpoch - 1) * setup.MicroBatches)
	scoreMigCost := cfg.MigrationCostPerReplica / epochWork

	report := &OnlineReport{
		Policy: cfg.Policy, Drift: cfg.Drift.Model,
		Model: arch.Name, GlobalBatch: setup.GlobalBatch,
		IterationsPerEpoch: cfg.IterationsPerEpoch,
	}
	if pred {
		report.Predictor = cfg.Predictor
	}
	workers := par.Workers(cfg.Parallelism)
	// Migration charges land on the critical path of the first iteration
	// the new layout serves: slot 0 for boundary (predictive) replans,
	// slot 1 for observation replans and corrections.
	migTime0 := make([]float64, layers)
	migTime1 := make([]float64, layers)
	moves0 := make([]int, layers)
	moves1 := make([]int, layers)
	plans := make([]executor.LayerPlan, layers)
	// The per-layer routing matrices are caller-owned and reused across
	// every iteration of the run: nothing downstream retains them (plans
	// hold dispatches, plannedLoads copies values out), so steady-state
	// synthesis allocates nothing.
	var routing []*trace.RoutingMatrix

	for e := 0; e < cfg.Epochs; e++ {
		if e > 0 {
			if err := gen.ApplyDrift(cfg.Drift); err != nil {
				return nil, err
			}
		}
		for l := 0; l < layers; l++ {
			migTime0[l], moves0[l] = 0, 0
			migTime1[l], moves1[l] = 0, 0
		}
		ep := OnlineEpoch{Epoch: e}

		// Predictive boundary replanning: forecast this epoch's loads and,
		// where the previous window's error earns trust, install the new
		// layout before the first iteration executes. Layers without that
		// track record still forecast (so the error can be measured and
		// trust earned) but fall back to the reactive path below.
		if pred {
			start := time.Now()
			err := par.ForEach(workers, layers, func(l int) error {
				fcastMade[l], acted[l], corrected[l] = false, false, false
				if !predictors[l].Ready() {
					return nil
				}
				predictors[l].ForecastInto(fcast[l])
				fcastMade[l] = true
				if !alwaysTrust && streak[l] < trustWindows {
					return nil // shadow forecast: measure, don't act
				}
				r, rerr := forecast.SynthRouting(fcast[l], n, perDevice)
				if rerr != nil {
					return rerr
				}
				ferr := lastErr[l]
				sol, serr := solvers[l].SolveWarm(r, planner.WarmStart{
					Prev:          layouts[l],
					PrevLoads:     plannedLoads[l],
					Threshold:     cfg.MigrationThreshold,
					MigrationCost: scoreMigCost,
					ForecastError: ferr,
				})
				if serr != nil {
					return serr
				}
				moves0[l] = planner.MigrationMoves(layouts[l], sol.Layout)
				migTime0[l] = float64(moves0[l]) * cfg.MigrationCostPerReplica
				if sol.Layout != layouts[l] {
					installLayout(l, sol.Layout)
					plannedLoads[l] = append(plannedLoads[l][:0], fcast[l]...)
				}
				acted[l] = true
				return nil
			})
			if err != nil {
				return nil, err
			}
			ep.PlannerTime += time.Since(start).Seconds()
		}

		for it := 0; it < cfg.IterationsPerEpoch; it++ {
			routing = gen.StepInto(routing)
			for l := range plans {
				var d *planner.Dispatch
				if cfg.Policy == ReplanStatic {
					// No re-layout system: fixed owners, no replica choice.
					d, err = planner.EPRouting(routing[l], arch.ExpertCapacity)
					if err != nil {
						return nil, err
					}
				} else {
					d = planner.LiteRouting(routing[l], layouts[l], topo)
				}
				plans[l] = executor.LayerPlan{Layout: layouts[l], Dispatch: d}
				switch it {
				case 0:
					plans[l].ExtraRelayoutTime = migTime0[l]
				case 1:
					plans[l].ExtraRelayoutTime = migTime1[l]
				}
			}
			iter, rerr := executor.RunIteration(setup.ExecConfig, plans)
			if rerr != nil {
				return nil, rerr
			}
			ep.StepTime += iter.Time
			ep.IterationTimes = append(ep.IterationTimes, iter.Time)
			ep.Imbalance += stats.Mean(iter.PerLayerImbalance)

			// The epoch's first iteration doubles as its observation: the
			// reactive policies solve this epoch's layouts from its routing
			// (the paper's asynchronous planning, Fig. 7, at epoch scale)
			// with migration landing on iteration 1's critical path; the
			// predictive policy folds the realization into its forecasters
			// and falls back to the same reactive solve for layers that
			// could not (or should not have) trusted their forecast.
			if it == 0 && cfg.Policy != ReplanStatic {
				start := time.Now()
				err := par.ForEach(workers, layers, func(l int) error {
					replanWarm := func(forecastErr float64) error {
						sol, serr := solvers[l].SolveWarm(routing[l], planner.WarmStart{
							Prev:          layouts[l],
							PrevLoads:     plannedLoads[l],
							Threshold:     cfg.MigrationThreshold,
							MigrationCost: scoreMigCost,
							ForecastError: forecastErr,
						})
						if serr != nil {
							return serr
						}
						moves1[l] = planner.MigrationMoves(layouts[l], sol.Layout)
						migTime1[l] = float64(moves1[l]) * cfg.MigrationCostPerReplica
						// The threshold baseline advances only when the
						// layout was actually re-planned: while a solve keeps
						// the previous layout, its reference loads stay put,
						// so slow drift accumulates against them instead of
						// ratcheting the baseline forward and never firing.
						if sol.Layout != layouts[l] {
							installLayout(l, sol.Layout)
							plannedLoads[l] = routing[l].ExpertLoadsInto(plannedLoads[l])
						}
						return nil
					}
					switch cfg.Policy {
					case ReplanScratch:
						sol, serr := solvers[l].Solve(routing[l])
						if serr != nil {
							return serr
						}
						moves1[l] = planner.MigrationMoves(layouts[l], sol.Layout)
						migTime1[l] = float64(moves1[l]) * cfg.MigrationCostPerReplica
						if sol.Layout != layouts[l] {
							installLayout(l, sol.Layout)
							plannedLoads[l] = routing[l].ExpertLoadsInto(plannedLoads[l])
						}
						return nil
					case ReplanWarm:
						return replanWarm(0)
					case ReplanPredictive:
						realized := routing[l].ExpertLoads()
						layerErr[l] = 0
						if fcastMade[l] {
							layerErr[l] = forecast.RelativeError(fcast[l], realized)
							lastErr[l] = layerErr[l]
							if layerErr[l] <= confThr {
								streak[l]++
							} else {
								streak[l] = 0
							}
						}
						predictors[l].Observe(realized)
						if acted[l] && alwaysTrust {
							return nil // diagnostic mode: never refine
						}
						// Refine from the observation exactly like the warm
						// policy. Where the forecast held, the solver's
						// per-expert threshold keeps the boundary layout in
						// force at no cost; where it missed, the
						// keep-versus-migrate score decides whether the
						// correction is worth a second round of migration —
						// so acting on a forecast never costs more than one
						// mispredicted iteration plus redoable moves.
						prev := layouts[l]
						if werr := replanWarm(0); werr != nil {
							return werr
						}
						corrected[l] = acted[l] && layouts[l] != prev
						return nil
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				ep.PlannerTime += time.Since(start).Seconds()
			}
		}

		for l := 0; l < layers; l++ {
			ep.Migrations += moves0[l] + moves1[l]
			ep.MigrationTime += migTime0[l] + migTime1[l]
			ep.BoundaryMigrationTime += migTime0[l]
		}
		if pred {
			errSum, made := 0.0, 0
			for l := 0; l < layers; l++ {
				if acted[l] {
					ep.PredictedLayers++
				}
				if corrected[l] {
					ep.CorrectedLayers++
				}
				if fcastMade[l] {
					errSum += layerErr[l]
					made++
				}
			}
			if made > 0 {
				ep.ForecastError = errSum / float64(made)
			}
		}
		ep.IterationTime = ep.StepTime / float64(cfg.IterationsPerEpoch)
		ep.Throughput = float64(setup.GlobalBatch) / ep.IterationTime
		ep.Imbalance /= float64(cfg.IterationsPerEpoch)
		report.Epochs = append(report.Epochs, ep)
		report.TotalStepTime += ep.StepTime
		report.TotalMigrations += ep.Migrations
	}
	return report, nil
}
