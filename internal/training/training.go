// Package training drives multi-iteration simulations: it fits memory
// plans, instantiates the per-system scheduler and trace generator, runs
// the executor for every iteration and aggregates the results. It also
// hosts the convergence proxy used by the Fig. 2 / Fig. 9 studies.
package training

import (
	"fmt"

	"laermoe/internal/baselines"
	"laermoe/internal/costmodel"
	"laermoe/internal/executor"
	"laermoe/internal/memory"
	"laermoe/internal/metrics"
	"laermoe/internal/model"
	"laermoe/internal/planner"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// System identifies one of the evaluated training systems.
type System string

const (
	SystemLAER      System = "laer"      // FSEP + LAER planner
	SystemFSDPEP    System = "fsdp+ep"   // FSDP+EP baseline, static layout
	SystemMegatron  System = "megatron"  // HEP: TP attention, resident experts
	SystemFlexMoE   System = "flexmoe"   // FSEP + FlexMoE scheduler
	SystemSmartMoE  System = "smartmoe"  // FSDP+EP + SmartMoE relocation
	SystemFasterMoE System = "fastermoe" // FSDP+EP + FasterMoE shadowing
	SystemBalanced  System = "balanced"  // FSDP+EP with oracle-balanced routing
)

// Systems lists every runnable system.
func Systems() []System {
	return []System{SystemLAER, SystemFSDPEP, SystemMegatron, SystemFlexMoE,
		SystemSmartMoE, SystemFasterMoE, SystemBalanced}
}

// RunConfig parameterizes one simulated training run.
type RunConfig struct {
	System System
	Arch   *model.Config
	Topo   *topology.Topology

	// AuxLossWeight shapes the routing distribution (0 disables the
	// auxiliary loss; the paper evaluates 0 and 1e-4, and 1e-2 for the
	// convergence study).
	AuxLossWeight float64

	Iterations int
	Warmup     int

	// GlobalBatchTokens is the tokens processed per iteration across the
	// cluster. 0 selects the default of 2^21 (≈2M tokens), which yields
	// paper-scale iteration times on the 32-GPU default cluster.
	GlobalBatchTokens int

	ContextLen int // 0 → 8192
	Ckpt       bool

	// TraceSkew overrides the routing generator's skew (0 → generator
	// default). The experiment harness uses it to model datasets with
	// different routing concentration (e.g. WikiText vs C4).
	TraceSkew float64

	// ForceTokensPerDevice bypasses the memory fitter and fixes the
	// micro-batch size (TP=1). Used by the Appendix-D style scalability
	// simulations, which model the MLP module rather than a deployable
	// memory configuration.
	ForceTokensPerDevice int

	Comm       executor.CommOpts // zero value → all optimizations on
	CommSet    bool              // set true to honor a zero-valued Comm
	SolverOpts planner.SolverOptions

	// HistoryAlpha is the LAER planner's routing-history EMA factor
	// (0 → 0.6).
	HistoryAlpha float64

	Seed int64

	// Replayer, when non-nil, supplies routing matrices instead of the
	// synthetic generator (trace replay mode).
	Replayer *trace.Replayer
}

func (c RunConfig) withDefaults() RunConfig {
	if c.GlobalBatchTokens == 0 {
		c.GlobalBatchTokens = 1 << 21
	}
	if c.ContextLen == 0 {
		c.ContextLen = 8192
	}
	if !c.CommSet {
		c.Comm = executor.AllCommOpts()
	}
	if c.HistoryAlpha == 0 {
		c.HistoryAlpha = 0.6
	}
	if c.Iterations == 0 {
		c.Iterations = 15
	}
	if c.SolverOpts.Epsilon == 0 {
		c.SolverOpts = planner.DefaultSolverOptions()
	}
	return c
}

// Setup is the resolved execution configuration of a run (memory plan,
// batch shape, scheduler), exposed for inspection and tests.
type Setup struct {
	ExecConfig   executor.Config
	MicroBatches int
	TokensPerDev int // MoE-source tokens per device per micro-batch
	TPDegree     int
	GlobalBatch  int
	Scheduler    baselines.Scheduler
	// Params is the Eq. 2 cost model the run's planner scores layouts
	// with, derived from the same context length and checkpointing flag
	// the executor simulates.
	Params planner.CostParams
}

// paradigmOf maps systems to parameter paradigms.
func paradigmOf(s System) executor.Paradigm {
	switch s {
	case SystemLAER, SystemFlexMoE:
		return executor.ParadigmFSEP
	case SystemMegatron:
		return executor.ParadigmResident
	default:
		return executor.ParadigmFSDPEP
	}
}

// Prepare resolves the memory plan and scheduler for a run configuration.
func Prepare(cfg RunConfig) (*Setup, error) {
	cfg = cfg.withDefaults()
	if cfg.Arch == nil || cfg.Topo == nil {
		return nil, fmt.Errorf("training: nil architecture or topology")
	}
	n := cfg.Topo.N()

	var tp, tokensPerDev int
	switch {
	case cfg.ForceTokensPerDevice > 0:
		tp = 1
		tokensPerDev = cfg.ForceTokensPerDevice
	case cfg.System == SystemMegatron:
		plan, err := memory.FitMegatron(cfg.Arch, cfg.Topo)
		if err != nil {
			return nil, err
		}
		tp = plan.TPDegree
		tokensPerDev = plan.TokensPerDevice / tp // MoE-source tokens per device
	default:
		plan, err := memory.FitFullySharded(cfg.Arch, cfg.Topo)
		if err != nil {
			return nil, err
		}
		tp = 1
		tokensPerDev = plan.TokensPerDevice
	}
	microBatches := cfg.GlobalBatchTokens / (n * tokensPerDev)
	if microBatches < 1 {
		microBatches = 1
	}

	cm := costmodel.New(cfg.Arch, cfg.Topo, cfg.ContextLen)
	params := planner.CostParams{
		TokenBytes:          cm.TokenCommBytes(),
		ExpertFLOPsPerToken: cm.TokenExpertFLOPs(),
		FLOPS:               cfg.Topo.FLOPS,
		Ckpt:                cfg.Ckpt,
	}

	var sched baselines.Scheduler
	var err error
	switch cfg.System {
	case SystemLAER:
		var p *planner.Planner
		opts := cfg.SolverOpts
		opts.Seed = cfg.Seed + 1
		p, err = planner.New(cfg.Topo, cfg.Arch.Layers, cfg.Arch.Experts, cfg.Arch.ExpertCapacity,
			params, opts, cfg.HistoryAlpha)
		if err == nil {
			sched = baselines.NewLAER(p)
		}
	case SystemFSDPEP, SystemMegatron:
		sched, err = baselines.NewStaticEP(cfg.Arch.Experts, n, cfg.Arch.ExpertCapacity)
	case SystemFlexMoE:
		migration := cm.ExpertMigrationBytes() / cfg.Topo.InterBW
		sched, err = baselines.NewFlexMoE(cfg.Topo, cfg.Arch.Layers, cfg.Arch.Experts,
			cfg.Arch.ExpertCapacity, params, migration)
	case SystemSmartMoE:
		migration := cm.ExpertMigrationBytes() / cfg.Topo.InterBW
		sched, err = baselines.NewSmartMoE(cfg.Topo, cfg.Arch.Layers, cfg.Arch.Experts,
			cfg.Arch.ExpertCapacity, 25, migration)
	case SystemFasterMoE:
		sched, err = baselines.NewFasterMoE(cfg.Topo, cfg.Arch, 1.5)
	case SystemBalanced:
		sched = &baselines.BalancedOracle{Topo: cfg.Topo, C: cfg.Arch.ExpertCapacity}
	default:
		err = fmt.Errorf("training: unknown system %q", cfg.System)
	}
	if err != nil {
		return nil, err
	}

	exec := executor.Config{
		Arch:            cfg.Arch,
		Topo:            cfg.Topo,
		Paradigm:        paradigmOf(cfg.System),
		TPDegree:        tp,
		TokensPerDevice: tokensPerDev,
		MicroBatches:    microBatches,
		ContextLen:      cfg.ContextLen,
		Ckpt:            cfg.Ckpt,
		Comm:            cfg.Comm,
	}
	return &Setup{
		ExecConfig:   exec,
		MicroBatches: microBatches,
		TokensPerDev: tokensPerDev,
		TPDegree:     tp,
		GlobalBatch:  n * tokensPerDev * microBatches,
		Scheduler:    sched,
		Params:       params,
	}, nil
}

// Run simulates the configured number of iterations and returns the
// aggregated report.
func Run(cfg RunConfig) (*metrics.Run, error) {
	cfg = cfg.withDefaults()
	setup, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}

	var step func() []*trace.RoutingMatrix
	if cfg.Replayer != nil {
		step = cfg.Replayer.Step
	} else {
		gen, gerr := trace.NewGenerator(trace.GeneratorConfig{
			Devices:         cfg.Topo.N(),
			Experts:         cfg.Arch.Experts,
			Layers:          cfg.Arch.Layers,
			TokensPerDevice: setup.TokensPerDev,
			TopK:            cfg.Arch.TopK,
			AuxLossWeight:   cfg.AuxLossWeight,
			Skew:            cfg.TraceSkew,
			Seed:            cfg.Seed,
			// Serial: classic runs execute as sweep cells that already fan
			// across every CPU (the experiment harness), so a per-cell
			// layer fan-out would only oversubscribe the machine. The
			// online engine threads its own Parallelism knob instead.
			Parallelism: 1,
		})
		if gerr != nil {
			return nil, gerr
		}
		step = gen.Step
	}

	run := &metrics.Run{
		System:      string(cfg.System),
		Model:       cfg.Arch.Name,
		GlobalBatch: setup.GlobalBatch,
		Warmup:      cfg.Warmup,
	}
	for it := 0; it < cfg.Iterations; it++ {
		routing := step()
		plans, perr := setup.Scheduler.Plan(routing)
		if perr != nil {
			return nil, perr
		}
		iter, rerr := executor.RunIteration(setup.ExecConfig, plans)
		if rerr != nil {
			return nil, rerr
		}
		iter.PlannerTime = setup.Scheduler.PlannerTime()
		run.Iterations = append(run.Iterations, *iter)
	}
	return run, nil
}
