package training

import (
	"math"
)

// ConvergenceModel is the loss proxy used for the Fig. 2 / Fig. 9
// convergence studies. The paper's claims there are relational — a larger
// auxiliary-loss weight needs more steps to reach equal loss, identical
// systems at equal weight track each other within 1e-3 relative error, and
// wall-clock convergence follows steps x iteration-time — so the proxy
// models loss as a power-law decay whose per-step progress is degraded by
// the auxiliary loss:
//
//	loss(s, w) = Lmin + (L0-Lmin) * (1 + g(w)*s/Tau)^(-Beta)
//	g(w)       = 1 / (1 + AuxSlowdownCoeff * w^AuxSlowdownExp)
//
// Calibration: g(1e-4) ≈ 0.98 (barely slower, as in Fig. 9a) and
// g(1e-2) ≈ 0.75 (visibly more steps to equal loss, as in Fig. 2).
type ConvergenceModel struct {
	L0   float64 // initial loss
	Lmin float64 // asymptotic loss
	Tau  float64 // step scale
	Beta float64 // decay exponent

	AuxSlowdownCoeff float64
	AuxSlowdownExp   float64
}

// DefaultConvergenceModel returns the calibrated proxy.
func DefaultConvergenceModel() ConvergenceModel {
	return ConvergenceModel{
		L0: 10.0, Lmin: 1.5, Tau: 80, Beta: 0.35,
		AuxSlowdownCoeff: 5.5, AuxSlowdownExp: 0.61,
	}
}

// Progress returns g(w), the per-step progress factor under auxiliary-loss
// weight w.
func (m ConvergenceModel) Progress(auxWeight float64) float64 {
	if auxWeight <= 0 {
		return 1
	}
	return 1 / (1 + m.AuxSlowdownCoeff*math.Pow(auxWeight, m.AuxSlowdownExp))
}

// Loss returns the proxy loss after `step` optimizer steps at the given
// auxiliary-loss weight.
func (m ConvergenceModel) Loss(step int, auxWeight float64) float64 {
	eff := m.Progress(auxWeight) * float64(step)
	return m.Lmin + (m.L0-m.Lmin)*math.Pow(1+eff/m.Tau, -m.Beta)
}

// LossWithJitter adds the small run-to-run numerical wobble two bitwise
// non-identical but numerically equivalent systems exhibit (different
// reduction orders), deterministic in (step, systemSeed). The amplitude is
// 3e-4 relative — inside the paper's 1e-3 equivalence threshold (Fig. 9b).
func (m ConvergenceModel) LossWithJitter(step int, auxWeight float64, systemSeed int64) float64 {
	base := m.Loss(step, auxWeight)
	if systemSeed == 0 {
		return base
	}
	// Cheap deterministic hash noise in [-1, 1].
	h := uint64(step+1) * 0x9E3779B97F4A7C15
	h ^= uint64(systemSeed) * 0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	noise := float64(int64(h%2000001)-1000000) / 1e6
	return base * (1 + 3e-4*noise)
}

// StepsToLoss returns the number of steps needed to reach the target loss
// at the given auxiliary weight (binary search; returns maxSteps if the
// target is not reached).
func (m ConvergenceModel) StepsToLoss(target, auxWeight float64, maxSteps int) int {
	lo, hi := 0, maxSteps
	if m.Loss(maxSteps, auxWeight) > target {
		return maxSteps
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if m.Loss(mid, auxWeight) <= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// LossCurve samples the loss trajectory every `every` steps for `steps`
// steps, returning (step, loss) pairs including step 0.
func (m ConvergenceModel) LossCurve(steps, every int, auxWeight float64, systemSeed int64) ([]int, []float64) {
	var xs []int
	var ys []float64
	for s := 0; s <= steps; s += every {
		xs = append(xs, s)
		ys = append(ys, m.LossWithJitter(s, auxWeight, systemSeed))
	}
	return xs, ys
}
