package training

import (
	"testing"

	"laermoe/internal/faults"
	"laermoe/internal/model"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

func digestConfig(policy ReplanPolicy) OnlineConfig {
	return OnlineConfig{
		Policy: policy,
		Arch:   model.Mixtral8x7B,
		Topo:   topology.Default(),
		Epochs: 2, IterationsPerEpoch: 4,
		GlobalBatchTokens: 1 << 19,
		Seed:              11,
	}
}

// feedEpochs drives a planner through the engine's own observation
// process for n epochs and returns the digest after each epoch.
func feedEpochs(t *testing.T, p *OnlinePlanner, n int, seed int64) []uint64 {
	t.Helper()
	gen, err := ObservationGenerator(trace.GeneratorConfig{
		Devices: p.Devices(), Experts: p.Experts(), Layers: p.Layers(),
		TokensPerDevice: p.Setup().TokensPerDev, TopK: p.arch.TopK,
		Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	digests := make([]uint64, n)
	for e := 0; e < n; e++ {
		if e > 0 {
			if err := gen.ApplyDrift(trace.DriftConfig{Model: trace.DriftMigration}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.PlanBoundary(); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Observe(gen.Step()); err != nil {
			t.Fatal(err)
		}
		p.Summarize()
		digests[e] = p.StateDigest()
	}
	return digests
}

// TestStateDigestDeterministic: two planners built from the same config
// and fed the same observation sequence agree on every per-epoch digest;
// the digest changes as state advances.
func TestStateDigestDeterministic(t *testing.T) {
	for _, policy := range []ReplanPolicy{ReplanWarm, ReplanPredictive} {
		t.Run(string(policy), func(t *testing.T) {
			a, err := NewOnlinePlanner(digestConfig(policy))
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewOnlinePlanner(digestConfig(policy))
			if err != nil {
				t.Fatal(err)
			}
			if a.StateDigest() != b.StateDigest() {
				t.Fatal("fresh planners with identical configs disagree")
			}
			initial := a.StateDigest()
			da := feedEpochs(t, a, 3, 11)
			db := feedEpochs(t, b, 3, 11)
			for e := range da {
				if da[e] != db[e] {
					t.Fatalf("epoch %d digests diverge: %#x vs %#x", e, da[e], db[e])
				}
			}
			// The first epoch replans every layer away from static EP, so
			// the digest must move.
			if da[0] == initial {
				t.Fatal("digest unchanged after the first observed epoch")
			}
		})
	}
}

// TestStateDigestSeparatesStreams: planners fed different observation
// streams end on different digests (the tripwire actually trips).
func TestStateDigestSeparatesStreams(t *testing.T) {
	a, err := NewOnlinePlanner(digestConfig(ReplanWarm))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewOnlinePlanner(digestConfig(ReplanWarm))
	if err != nil {
		t.Fatal(err)
	}
	da := feedEpochs(t, a, 2, 11)
	db := feedEpochs(t, b, 2, 99) // different trace seed
	if da[len(da)-1] == db[len(db)-1] {
		t.Fatal("different observation streams produced identical digests")
	}
}

// TestStateDigestTracksFaults: absorbing a fault event changes the
// digest (availability mask and repair accounting are covered).
func TestStateDigestTracksFaults(t *testing.T) {
	p, err := NewOnlinePlanner(digestConfig(ReplanWarm))
	if err != nil {
		t.Fatal(err)
	}
	feedEpochs(t, p, 1, 11)
	before := p.StateDigest()
	if _, err := p.ApplyFaults([]faults.Event{{Kind: faults.NodeFail, Node: 1}}); err != nil {
		t.Fatal(err)
	}
	if p.StateDigest() == before {
		t.Fatal("digest unchanged after a node failure")
	}
}
