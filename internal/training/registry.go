package training

import (
	"fmt"

	"laermoe/internal/forecast"
	"laermoe/internal/planner"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// This file is the single registration site for online-engine policies,
// workloads, predictors and drift models. Everything that used to be a
// hand-kept switch — NewOnlinePlanner's policy check, RunOnline's
// dispatch branch, the CLIs' flag validation, serve's SessionSpec
// validation — resolves through these registries, so a new policy (LLEP
// and score-balance landed this way) registers in exactly one place.

// DispatchEnv is the per-layer context a policy's dispatch function routes
// one iteration's tokens with. The engine reuses one env across layers;
// Scratch persists across calls for policies that reshape the routing
// (score-balance) so steady-state dispatch stays allocation-free.
type DispatchEnv struct {
	Routing  *trace.RoutingMatrix
	Layout   *planner.Layout
	Topo     *topology.Topology
	Capacity int
	// Restored reports that a static-EP checkpoint restore replaced the
	// initial owner layout, after which even the static policy routes by
	// layout.
	Restored bool
	// Scratch is a policy-owned routing matrix reused across dispatch
	// calls (nil until first use).
	Scratch *trace.RoutingMatrix
}

// DispatchFunc routes one layer's observed routing onto the devices.
type DispatchFunc func(env *DispatchEnv) (*planner.Dispatch, error)

// PolicySpec is one replan policy's registry entry: its traits drive the
// engine (replacing per-policy switches), its Dispatch routes tokens each
// iteration.
type PolicySpec struct {
	Name        ReplanPolicy
	Description string

	// Replans: the policy plans re-layouts from observations (static-like
	// policies keep the initial layout and skip Observe/PlanBoundary
	// work entirely). Tracks: the policy carries per-layer drift trackers
	// for incremental warm solves. Predictive: the policy forecasts loads
	// at epoch boundaries.
	Replans    bool
	Tracks     bool
	Predictive bool

	// Dispatch routes one layer-iteration; nil defaults to layout-based
	// LiteRouting.
	Dispatch DispatchFunc

	// Validate, when non-nil, vets the full config for policy-specific
	// constraints beyond the engine's own checks.
	Validate func(*OnlineConfig) error
}

// Workload names what an online session plans for.
type Workload string

const (
	// WorkloadTraining is the classic multi-epoch training workload
	// (step-time objective).
	WorkloadTraining Workload = "training"
	// WorkloadInference drives request-level decode traffic through the
	// same planning loop (latency objective).
	WorkloadInference Workload = "inference"
)

// WorkloadSpec is one workload's registry entry.
type WorkloadSpec struct {
	Name        Workload
	Description string
}

// PredictorSpec and DriftSpec mirror the forecast and trace catalogs into
// the registry so every name surface resolves the same way.
type PredictorSpec struct {
	Name        forecast.Kind
	Description string
}

type DriftSpec struct {
	Name        trace.DriftModel
	Description string
}

// liteDispatch is the default dispatch: layout-based Alg. 3 routing.
func liteDispatch(env *DispatchEnv) (*planner.Dispatch, error) {
	return planner.LiteRouting(env.Routing, env.Layout, env.Topo), nil
}

// policyRegistry is ordered: ReplanPolicies() and every "have %v" error
// message list names in registration order.
var policyRegistry = []PolicySpec{
	{
		Name:        ReplanStatic,
		Description: "fixed EP owner layout, never replans (checkpoint-restore on faults)",
		Dispatch: func(env *DispatchEnv) (*planner.Dispatch, error) {
			if !env.Restored {
				return planner.EPRouting(env.Routing, env.Capacity)
			}
			return liteDispatch(env)
		},
	},
	{
		Name:        ReplanScratch,
		Description: "re-solves the layout from scratch every epoch",
		Replans:     true,
		Dispatch:    liteDispatch,
	},
	{
		Name:        ReplanWarm,
		Description: "warm-start incremental re-layout from the previous epoch's solution",
		Replans:     true,
		Tracks:      true,
		Dispatch:    liteDispatch,
	},
	{
		Name:        ReplanPredictive,
		Description: "warm re-layout planned from forecast loads at epoch boundaries",
		Replans:     true,
		Tracks:      true,
		Predictive:  true,
		Dispatch:    liteDispatch,
	},
	{
		Name:        ReplanLLEP,
		Description: "least-loaded replica dispatch at routing time, no re-layout (LLEP)",
		Dispatch: func(env *DispatchEnv) (*planner.Dispatch, error) {
			return planner.LeastLoadedRouting(env.Routing, env.Layout, env.Topo), nil
		},
	},
	{
		Name:        ReplanScoreBalance,
		Description: "blends routing distributions toward uniform before dispatch, no re-layout",
		Dispatch: func(env *DispatchEnv) (*planner.Dispatch, error) {
			env.Scratch = trace.ScoreBalanceInto(env.Scratch, env.Routing, trace.ScoreBalanceBlend)
			return planner.LiteRouting(env.Scratch, env.Layout, env.Topo), nil
		},
	},
}

var workloadRegistry = []WorkloadSpec{
	{Name: WorkloadTraining, Description: "multi-epoch training, step-time objective"},
	{Name: WorkloadInference, Description: "request-level decode traffic, p50/p99 latency objective"},
}

var predictorRegistry = []PredictorSpec{
	{Name: forecast.KindLast, Description: "next window repeats the current one"},
	{Name: forecast.KindEMA, Description: "exponential moving average of past windows"},
	{Name: forecast.KindTrend, Description: "per-expert least-squares trend, extrapolated one window"},
}

var driftRegistry = []DriftSpec{
	{Name: trace.DriftNone, Description: "stationary popularity between epochs"},
	{Name: trace.DriftStabilizing, Description: "drift decays as training converges"},
	{Name: trace.DriftBursty, Description: "per-expert popularity redraws"},
	{Name: trace.DriftMigration, Description: "popularity mass migrates cyclically across experts"},
}

// ResolvePolicy returns a policy's registry entry, failing fast with the
// valid set on an unknown name.
func ResolvePolicy(name ReplanPolicy) (*PolicySpec, error) {
	for i := range policyRegistry {
		if policyRegistry[i].Name == name {
			return &policyRegistry[i], nil
		}
	}
	return nil, fmt.Errorf("training: unknown replan policy %q (have %v)", name, ReplanPolicies())
}

// ResolveWorkload returns a workload's registry entry, failing fast with
// the valid set on an unknown name.
func ResolveWorkload(name Workload) (*WorkloadSpec, error) {
	for i := range workloadRegistry {
		if workloadRegistry[i].Name == name {
			return &workloadRegistry[i], nil
		}
	}
	return nil, fmt.Errorf("training: unknown workload %q (have %v)", name, Workloads())
}

// ResolvePredictor returns a predictor's registry entry, failing fast with
// the valid set on an unknown name.
func ResolvePredictor(name forecast.Kind) (*PredictorSpec, error) {
	for i := range predictorRegistry {
		if predictorRegistry[i].Name == name {
			return &predictorRegistry[i], nil
		}
	}
	return nil, fmt.Errorf("training: unknown predictor %q (have %v)", name, forecast.Kinds())
}

// ResolveDrift returns a drift model's registry entry, failing fast with
// the valid set on an unknown name.
func ResolveDrift(name trace.DriftModel) (*DriftSpec, error) {
	for i := range driftRegistry {
		if driftRegistry[i].Name == name {
			return &driftRegistry[i], nil
		}
	}
	return nil, fmt.Errorf("training: unknown drift model %q (have %v)", name, trace.DriftModels())
}

// PolicySpecs returns the registry in registration order (shared slice;
// callers must not mutate).
func PolicySpecs() []PolicySpec { return policyRegistry }

// WorkloadSpecs returns the workload registry in registration order.
func WorkloadSpecs() []WorkloadSpec { return workloadRegistry }

// PredictorSpecs returns the predictor registry in registration order.
func PredictorSpecs() []PredictorSpec { return predictorRegistry }

// DriftSpecs returns the drift-model registry in registration order.
func DriftSpecs() []DriftSpec { return driftRegistry }

// Workloads lists every registered workload name.
func Workloads() []Workload {
	out := make([]Workload, len(workloadRegistry))
	for i, w := range workloadRegistry {
		out[i] = w.Name
	}
	return out
}
