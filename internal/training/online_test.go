package training

import (
	"reflect"
	"testing"

	"laermoe/internal/forecast"
	"laermoe/internal/model"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// onlineCfg is a fast online configuration: one micro-batch per iteration.
func onlineCfg(policy ReplanPolicy, drift trace.DriftModel) OnlineConfig {
	return OnlineConfig{
		Policy: policy,
		Arch:   model.Mixtral8x7B,
		Topo:   topology.Default(),
		Epochs: 4, IterationsPerEpoch: 4,
		Drift:             trace.DriftConfig{Model: drift},
		GlobalBatchTokens: 1 << 19,
		Seed:              1,
	}
}

// TestOnlineWarmBeatsStatic is the engine's acceptance property: over a
// multi-epoch drifting trace, warm-start replanning must finish the same
// work in strictly less cumulative step time than the never-replanned
// static baseline — under every drift model.
func TestOnlineWarmBeatsStatic(t *testing.T) {
	for _, drift := range []trace.DriftModel{trace.DriftStabilizing, trace.DriftBursty, trace.DriftMigration} {
		static, err := RunOnline(onlineCfg(ReplanStatic, drift))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := RunOnline(onlineCfg(ReplanWarm, drift))
		if err != nil {
			t.Fatal(err)
		}
		if warm.TotalStepTime >= static.TotalStepTime {
			t.Errorf("drift %s: warm cumulative %.1fs not below static %.1fs",
				drift, warm.TotalStepTime, static.TotalStepTime)
		}
		if warm.TotalMigrations == 0 {
			t.Errorf("drift %s: warm policy never migrated a replica", drift)
		}
	}
}

// TestOnlineWarmMigratesLessThanScratch: the warm start's point is cheaper
// adaptation — fewer replica moves for comparable layouts.
func TestOnlineWarmMigratesLessThanScratch(t *testing.T) {
	scratch, err := RunOnline(onlineCfg(ReplanScratch, trace.DriftMigration))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunOnline(onlineCfg(ReplanWarm, trace.DriftMigration))
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalMigrations >= scratch.TotalMigrations {
		t.Fatalf("warm moved %d replicas, scratch %d — warm must migrate less",
			warm.TotalMigrations, scratch.TotalMigrations)
	}
	if warm.TotalStepTime > 1.15*scratch.TotalStepTime {
		t.Fatalf("warm step time %.1fs more than 15%% above scratch %.1fs",
			warm.TotalStepTime, scratch.TotalStepTime)
	}
}

// TestOnlineMigrationChargeFavorsWarm: when relocation moves optimizer
// state over the wire, scratch replanning pays for its churn while the
// warm policy's keep-versus-migrate score suppresses unprofitable moves.
func TestOnlineMigrationChargeFavorsWarm(t *testing.T) {
	charge := RelocationCostPerReplica(model.Mixtral8x7B, topology.Default())
	if charge <= 0 {
		t.Fatal("relocation cost must be positive")
	}
	cfgW := onlineCfg(ReplanWarm, trace.DriftMigration)
	cfgW.MigrationCostPerReplica = charge
	cfgS := onlineCfg(ReplanScratch, trace.DriftMigration)
	cfgS.MigrationCostPerReplica = charge
	warm, err := RunOnline(cfgW)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := RunOnline(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalStepTime >= scratch.TotalStepTime {
		t.Fatalf("with migration charged, warm %.1fs must beat scratch %.1fs",
			warm.TotalStepTime, scratch.TotalStepTime)
	}
	var warmMig, scratchMig float64
	for _, e := range warm.Epochs {
		warmMig += e.MigrationTime
	}
	for _, e := range scratch.Epochs {
		scratchMig += e.MigrationTime
	}
	if warmMig >= scratchMig {
		t.Fatalf("warm charged %.1fs of migration, scratch %.1fs", warmMig, scratchMig)
	}
}

// stripWallClock zeroes the only non-simulated (wall-clock) field so
// reports can be compared exactly.
func stripWallClock(r *OnlineReport) *OnlineReport {
	c := *r
	c.Epochs = append([]OnlineEpoch(nil), r.Epochs...)
	for i := range c.Epochs {
		c.Epochs[i].PlannerTime = 0
	}
	return &c
}

// TestOnlineDeterminism pins the online report across repeated runs and
// across Parallelism settings.
func TestOnlineDeterminism(t *testing.T) {
	for _, policy := range ReplanPolicies() {
		base := onlineCfg(policy, trace.DriftMigration)
		first, err := RunOnline(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 3, 16} {
			cfg := base
			cfg.Parallelism = par
			got, err := RunOnline(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stripWallClock(first), stripWallClock(got)) {
				t.Fatalf("policy %s: report differs at parallelism %d", policy, par)
			}
		}
	}
}

// TestOnlineDeterminismAtScale pins the online report at a scale-study
// shape — a synthetic large-E pool where most experts hold exactly one
// replica, the regime the scale experiment runs in — across repeated runs
// and Parallelism settings. This covers both the per-layer trace streams
// (generation fans across workers) and the warm solver's scratch reuse at
// a shape where the fast paths (single-replica routing, scheme dedup)
// actually engage.
func TestOnlineDeterminismAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-shape online run")
	}
	arch := *model.SyntheticE512
	arch.Layers = 4
	base := OnlineConfig{
		Policy: ReplanWarm,
		Arch:   &arch,
		Topo:   topology.New(16, 8),
		Epochs: 3, IterationsPerEpoch: 3,
		Drift:                trace.DriftConfig{Model: trace.DriftMigration, Rate: 0.3},
		ForceTokensPerDevice: 1024,
		GlobalBatchTokens:    16 * 8 * 1024,
		Seed:                 1,
	}
	first, err := RunOnline(base)
	if err != nil {
		t.Fatal(err)
	}
	if first.TotalMigrations == 0 {
		t.Fatal("scale-shape warm run never migrated — fixture lost its point")
	}
	for _, par := range []int{1, 8} {
		cfg := base
		cfg.Parallelism = par
		got, err := RunOnline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripWallClock(first), stripWallClock(got)) {
			t.Fatalf("scale-shape report differs at parallelism %d", par)
		}
	}
}

func TestOnlineReportShape(t *testing.T) {
	rep, err := RunOnline(onlineCfg(ReplanWarm, trace.DriftStabilizing))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 4 {
		t.Fatalf("got %d epoch reports, want 4", len(rep.Epochs))
	}
	if rep.Epochs[0].Migrations == 0 {
		t.Fatal("first epoch must replan away from static EP")
	}
	var total float64
	for i, e := range rep.Epochs {
		if e.Epoch != i {
			t.Fatalf("epoch %d reported index %d", i, e.Epoch)
		}
		if e.StepTime <= 0 || e.IterationTime <= 0 || e.Throughput <= 0 {
			t.Fatalf("epoch %d has non-positive timings: %+v", i, e)
		}
		if e.Imbalance < 1 {
			t.Fatalf("epoch %d imbalance %.3f below 1", i, e.Imbalance)
		}
		total += e.StepTime
	}
	if total != rep.TotalStepTime {
		t.Fatalf("TotalStepTime %.3f != epoch sum %.3f", rep.TotalStepTime, total)
	}
	if rep.MeanThroughput() <= 0 {
		t.Fatal("non-positive mean throughput")
	}

	static, err := RunOnline(onlineCfg(ReplanStatic, trace.DriftStabilizing))
	if err != nil {
		t.Fatal(err)
	}
	if static.TotalMigrations != 0 {
		t.Fatalf("static policy migrated %d replicas", static.TotalMigrations)
	}
	for _, e := range static.Epochs {
		if e.PlannerTime != 0 || e.MigrationTime != 0 {
			t.Fatal("static policy must not plan or migrate")
		}
	}
}

func TestOnlineConfigValidation(t *testing.T) {
	bad := func(mut func(*OnlineConfig)) error {
		cfg := onlineCfg(ReplanWarm, trace.DriftStabilizing)
		mut(&cfg)
		_, err := RunOnline(cfg)
		return err
	}
	if err := bad(func(c *OnlineConfig) { c.Policy = "oracle" }); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := bad(func(c *OnlineConfig) { c.Drift.Model = "sideways" }); err == nil {
		t.Fatal("unknown drift model accepted")
	}
	if err := bad(func(c *OnlineConfig) { c.Epochs = -1 }); err == nil {
		t.Fatal("negative epochs accepted")
	}
	if err := bad(func(c *OnlineConfig) { c.IterationsPerEpoch = 1 }); err == nil {
		t.Fatal("single-iteration epochs accepted (no room to observe)")
	}
	if err := bad(func(c *OnlineConfig) { c.MigrationCostPerReplica = -1 }); err == nil {
		t.Fatal("negative migration cost accepted")
	}
	if err := bad(func(c *OnlineConfig) {
		c.Policy = ReplanPredictive
		c.Predictor = "oracle"
	}); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

// predictiveCfg is the lag-recovery acceptance scenario: long enough for
// the predictor to earn trust (errors measured at epochs 1-2, forecasts
// acted on from epoch 3), with relocation charged at the NVLink-domain
// rate — expensive enough that churn costs real time, cheap enough that
// adapting at all stays profitable at this epoch length.
func predictiveCfg(policy ReplanPolicy, drift trace.DriftModel, rate float64) OnlineConfig {
	topo := topology.Default()
	cfg := OnlineConfig{
		Policy: policy,
		Arch:   model.Mixtral8x7B,
		Topo:   topo,
		Epochs: 10, IterationsPerEpoch: 8,
		Drift:             trace.DriftConfig{Model: drift, Rate: rate},
		GlobalBatchTokens: 1 << 19,
		Seed:              1,
	}
	cfg.MigrationCostPerReplica = RelocationCostPerReplica(model.Mixtral8x7B, topo) * topo.InterBW / topo.IntraBW
	return cfg
}

// TestOnlinePredictiveRecoversLag is the tentpole acceptance property: on
// the forecastable drift models, with relocation charged, the predictive
// policy must remove at least half of the per-epoch observation-lag
// penalty the warm policy pays. On the stabilizing drift that lag removal
// also wins the run outright; on slow migration the boundary replans move
// more replicas (the hot set rotates, so anticipating it relocates
// earlier and occasionally twice), which cancels the lag savings in total
// time — so there the end-to-end requirement is "never materially worse",
// while the lag metric itself must still collapse. (Calibrated against
// the per-layer-stream trace process across seeds; the old shared-stream
// trace happened to hand migration a strict win at this rate.)
func TestOnlinePredictiveRecoversLag(t *testing.T) {
	for _, sc := range []struct {
		drift      trace.DriftModel
		rate       float64
		strictWin  bool
		totalSlack float64 // allowed TotalStepTime ratio vs warm when not strict
	}{
		{trace.DriftStabilizing, 0, true, 0},
		{trace.DriftMigration, 0.15, false, 1.01},
	} {
		warm, err := RunOnline(predictiveCfg(ReplanWarm, sc.drift, sc.rate))
		if err != nil {
			t.Fatal(err)
		}
		pred, err := RunOnline(predictiveCfg(ReplanPredictive, sc.drift, sc.rate))
		if err != nil {
			t.Fatal(err)
		}
		warmLag, predLag := warm.ObservationLag(), pred.ObservationLag()
		if warmLag <= 0 {
			t.Fatalf("drift %s: warm shows no observation lag (%.3fs) — scenario lost its point", sc.drift, warmLag)
		}
		if predLag > 0.5*warmLag {
			t.Errorf("drift %s: predictive lag %.3fs recovers less than half of warm's %.3fs",
				sc.drift, predLag, warmLag)
		}
		if sc.strictWin {
			if pred.TotalStepTime >= warm.TotalStepTime {
				t.Errorf("drift %s: predictive total %.2fs not below warm %.2fs",
					sc.drift, pred.TotalStepTime, warm.TotalStepTime)
			}
		} else if pred.TotalStepTime > sc.totalSlack*warm.TotalStepTime {
			t.Errorf("drift %s: predictive total %.2fs materially worse than warm %.2fs",
				sc.drift, pred.TotalStepTime, warm.TotalStepTime)
		}
		acted := 0
		for _, e := range pred.Epochs {
			acted += e.PredictedLayers
		}
		if acted == 0 {
			t.Errorf("drift %s: predictive never acted on a forecast", sc.drift)
		}
		if pred.MeanForecastError() <= 0 {
			t.Errorf("drift %s: no forecast error reported", sc.drift)
		}
		if pred.Predictor != forecast.KindTrend {
			t.Errorf("drift %s: default predictor %q, want trend", sc.drift, pred.Predictor)
		}
	}
}

// TestOnlinePredictiveNeverWorseOnBursty: bursty hot-set replacement is
// unforecastable, so the confidence fallback must keep the predictive
// policy at warm-start behaviour — never behind it.
func TestOnlinePredictiveNeverWorseOnBursty(t *testing.T) {
	warm, err := RunOnline(predictiveCfg(ReplanWarm, trace.DriftBursty, 0))
	if err != nil {
		t.Fatal(err)
	}
	pred, err := RunOnline(predictiveCfg(ReplanPredictive, trace.DriftBursty, 0))
	if err != nil {
		t.Fatal(err)
	}
	if pred.TotalStepTime > warm.TotalStepTime*(1+1e-9) {
		t.Fatalf("bursty: predictive total %.3fs worse than warm %.3fs",
			pred.TotalStepTime, warm.TotalStepTime)
	}
	// The fallback engages: forecasts are made (and measured) but high
	// errors keep the trust streak broken.
	if pred.MeanForecastError() < DefaultConfidenceThreshold {
		t.Fatalf("bursty forecast error %.3f unexpectedly below the confidence threshold",
			pred.MeanForecastError())
	}
}

// TestOnlinePredictorQualityOrdering: on the smooth stabilizing drift the
// deliberately lagging EMA must trail both one-step forecasters by a wide
// margin, while the trend fit stays competitive with the persistence
// (last-value) forecast — the ordering the predictor-selection guidance
// in the README rests on. With independent per-layer trace streams both
// one-step forecasters sit at the within-epoch noise floor (~0.08), so
// which of the two lands first is seed noise; their gap to the EMA is
// structural (>25% across seeds) and is what the test pins.
func TestOnlinePredictorQualityOrdering(t *testing.T) {
	errs := map[forecast.Kind]float64{}
	for _, kind := range forecast.Kinds() {
		cfg := predictiveCfg(ReplanPredictive, trace.DriftStabilizing, 0)
		cfg.Predictor = kind
		rep, err := RunOnline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		errs[kind] = rep.MeanForecastError()
		if errs[kind] <= 0 {
			t.Fatalf("%s: no forecast error measured", kind)
		}
	}
	trend, last, ema := errs[forecast.KindTrend], errs[forecast.KindLast], errs[forecast.KindEMA]
	worst := trend
	if last > worst {
		worst = last
	}
	if ema <= 1.25*worst {
		t.Fatalf("ema error %.4f not clearly behind one-step forecasters (trend %.4f, last %.4f)",
			ema, trend, last)
	}
	if trend > 1.15*last {
		t.Fatalf("trend error %.4f more than 15%% above persistence %.4f — trend lost its skill", trend, last)
	}
}

// TestOnlineSlowDriftEventuallyReplans guards against the baseline
// ratchet: when per-epoch drift stays below the warm threshold, the
// reference loads must hold still while drift accumulates, so the policy
// still fires once the cumulative movement crosses the threshold — it
// must not silently degrade to the static policy.
func TestOnlineSlowDriftEventuallyReplans(t *testing.T) {
	// At drift rate 0.05 no single epoch moves any expert's load past the
	// 0.5 threshold, so only a held-still baseline lets the cumulative
	// drift fire (a ratcheting baseline replans 0 replicas here).
	cfg := onlineCfg(ReplanWarm, trace.DriftMigration)
	cfg.Epochs = 10
	cfg.Drift.Rate = 0.05
	cfg.MigrationThreshold = 0.5
	rep, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	later := 0
	for _, e := range rep.Epochs[1:] {
		later += e.Migrations
	}
	if later < 50 {
		t.Fatalf("slow drift barely replanned after epoch 0: %d replicas moved (baseline ratchet?)", later)
	}
}
