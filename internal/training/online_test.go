package training

import (
	"reflect"
	"testing"

	"laermoe/internal/model"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// onlineCfg is a fast online configuration: one micro-batch per iteration.
func onlineCfg(policy ReplanPolicy, drift trace.DriftModel) OnlineConfig {
	return OnlineConfig{
		Policy: policy,
		Arch:   model.Mixtral8x7B,
		Topo:   topology.Default(),
		Epochs: 4, IterationsPerEpoch: 4,
		Drift:             trace.DriftConfig{Model: drift},
		GlobalBatchTokens: 1 << 19,
		Seed:              1,
	}
}

// TestOnlineWarmBeatsStatic is the engine's acceptance property: over a
// multi-epoch drifting trace, warm-start replanning must finish the same
// work in strictly less cumulative step time than the never-replanned
// static baseline — under every drift model.
func TestOnlineWarmBeatsStatic(t *testing.T) {
	for _, drift := range []trace.DriftModel{trace.DriftStabilizing, trace.DriftBursty, trace.DriftMigration} {
		static, err := RunOnline(onlineCfg(ReplanStatic, drift))
		if err != nil {
			t.Fatal(err)
		}
		warm, err := RunOnline(onlineCfg(ReplanWarm, drift))
		if err != nil {
			t.Fatal(err)
		}
		if warm.TotalStepTime >= static.TotalStepTime {
			t.Errorf("drift %s: warm cumulative %.1fs not below static %.1fs",
				drift, warm.TotalStepTime, static.TotalStepTime)
		}
		if warm.TotalMigrations == 0 {
			t.Errorf("drift %s: warm policy never migrated a replica", drift)
		}
	}
}

// TestOnlineWarmMigratesLessThanScratch: the warm start's point is cheaper
// adaptation — fewer replica moves for comparable layouts.
func TestOnlineWarmMigratesLessThanScratch(t *testing.T) {
	scratch, err := RunOnline(onlineCfg(ReplanScratch, trace.DriftMigration))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunOnline(onlineCfg(ReplanWarm, trace.DriftMigration))
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalMigrations >= scratch.TotalMigrations {
		t.Fatalf("warm moved %d replicas, scratch %d — warm must migrate less",
			warm.TotalMigrations, scratch.TotalMigrations)
	}
	if warm.TotalStepTime > 1.15*scratch.TotalStepTime {
		t.Fatalf("warm step time %.1fs more than 15%% above scratch %.1fs",
			warm.TotalStepTime, scratch.TotalStepTime)
	}
}

// TestOnlineMigrationChargeFavorsWarm: when relocation moves optimizer
// state over the wire, scratch replanning pays for its churn while the
// warm policy's keep-versus-migrate score suppresses unprofitable moves.
func TestOnlineMigrationChargeFavorsWarm(t *testing.T) {
	charge := RelocationCostPerReplica(model.Mixtral8x7B, topology.Default())
	if charge <= 0 {
		t.Fatal("relocation cost must be positive")
	}
	cfgW := onlineCfg(ReplanWarm, trace.DriftMigration)
	cfgW.MigrationCostPerReplica = charge
	cfgS := onlineCfg(ReplanScratch, trace.DriftMigration)
	cfgS.MigrationCostPerReplica = charge
	warm, err := RunOnline(cfgW)
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := RunOnline(cfgS)
	if err != nil {
		t.Fatal(err)
	}
	if warm.TotalStepTime >= scratch.TotalStepTime {
		t.Fatalf("with migration charged, warm %.1fs must beat scratch %.1fs",
			warm.TotalStepTime, scratch.TotalStepTime)
	}
	var warmMig, scratchMig float64
	for _, e := range warm.Epochs {
		warmMig += e.MigrationTime
	}
	for _, e := range scratch.Epochs {
		scratchMig += e.MigrationTime
	}
	if warmMig >= scratchMig {
		t.Fatalf("warm charged %.1fs of migration, scratch %.1fs", warmMig, scratchMig)
	}
}

// stripWallClock zeroes the only non-simulated (wall-clock) field so
// reports can be compared exactly.
func stripWallClock(r *OnlineReport) *OnlineReport {
	c := *r
	c.Epochs = append([]OnlineEpoch(nil), r.Epochs...)
	for i := range c.Epochs {
		c.Epochs[i].PlannerTime = 0
	}
	return &c
}

// TestOnlineDeterminism pins the online report across repeated runs and
// across Parallelism settings.
func TestOnlineDeterminism(t *testing.T) {
	for _, policy := range ReplanPolicies() {
		base := onlineCfg(policy, trace.DriftMigration)
		first, err := RunOnline(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 3, 16} {
			cfg := base
			cfg.Parallelism = par
			got, err := RunOnline(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(stripWallClock(first), stripWallClock(got)) {
				t.Fatalf("policy %s: report differs at parallelism %d", policy, par)
			}
		}
	}
}

func TestOnlineReportShape(t *testing.T) {
	rep, err := RunOnline(onlineCfg(ReplanWarm, trace.DriftStabilizing))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 4 {
		t.Fatalf("got %d epoch reports, want 4", len(rep.Epochs))
	}
	if rep.Epochs[0].Migrations == 0 {
		t.Fatal("first epoch must replan away from static EP")
	}
	var total float64
	for i, e := range rep.Epochs {
		if e.Epoch != i {
			t.Fatalf("epoch %d reported index %d", i, e.Epoch)
		}
		if e.StepTime <= 0 || e.IterationTime <= 0 || e.Throughput <= 0 {
			t.Fatalf("epoch %d has non-positive timings: %+v", i, e)
		}
		if e.Imbalance < 1 {
			t.Fatalf("epoch %d imbalance %.3f below 1", i, e.Imbalance)
		}
		total += e.StepTime
	}
	if total != rep.TotalStepTime {
		t.Fatalf("TotalStepTime %.3f != epoch sum %.3f", rep.TotalStepTime, total)
	}
	if rep.MeanThroughput() <= 0 {
		t.Fatal("non-positive mean throughput")
	}

	static, err := RunOnline(onlineCfg(ReplanStatic, trace.DriftStabilizing))
	if err != nil {
		t.Fatal(err)
	}
	if static.TotalMigrations != 0 {
		t.Fatalf("static policy migrated %d replicas", static.TotalMigrations)
	}
	for _, e := range static.Epochs {
		if e.PlannerTime != 0 || e.MigrationTime != 0 {
			t.Fatal("static policy must not plan or migrate")
		}
	}
}

func TestOnlineConfigValidation(t *testing.T) {
	bad := func(mut func(*OnlineConfig)) error {
		cfg := onlineCfg(ReplanWarm, trace.DriftStabilizing)
		mut(&cfg)
		_, err := RunOnline(cfg)
		return err
	}
	if err := bad(func(c *OnlineConfig) { c.Policy = "oracle" }); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := bad(func(c *OnlineConfig) { c.Drift.Model = "sideways" }); err == nil {
		t.Fatal("unknown drift model accepted")
	}
	if err := bad(func(c *OnlineConfig) { c.Epochs = -1 }); err == nil {
		t.Fatal("negative epochs accepted")
	}
	if err := bad(func(c *OnlineConfig) { c.IterationsPerEpoch = 1 }); err == nil {
		t.Fatal("single-iteration epochs accepted (no room to observe)")
	}
	if err := bad(func(c *OnlineConfig) { c.MigrationCostPerReplica = -1 }); err == nil {
		t.Fatal("negative migration cost accepted")
	}
}

// TestOnlineSlowDriftEventuallyReplans guards against the baseline
// ratchet: when per-epoch drift stays below the warm threshold, the
// reference loads must hold still while drift accumulates, so the policy
// still fires once the cumulative movement crosses the threshold — it
// must not silently degrade to the static policy.
func TestOnlineSlowDriftEventuallyReplans(t *testing.T) {
	// At drift rate 0.05 no single epoch moves any expert's load past the
	// 0.5 threshold, so only a held-still baseline lets the cumulative
	// drift fire (a ratcheting baseline replans 0 replicas here).
	cfg := onlineCfg(ReplanWarm, trace.DriftMigration)
	cfg.Epochs = 10
	cfg.Drift.Rate = 0.05
	cfg.MigrationThreshold = 0.5
	rep, err := RunOnline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	later := 0
	for _, e := range rep.Epochs[1:] {
		later += e.Migrations
	}
	if later < 50 {
		t.Fatalf("slow drift barely replanned after epoch 0: %d replicas moved (baseline ratchet?)", later)
	}
}
