package training

import (
	"encoding/json"
	"math/rand"
	"testing"

	"laermoe/internal/faults"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// TestIncrementalDecisionsMatchFull is the tentpole's end-to-end pin:
// across every replan policy, every drift model and a fault-injected
// cluster, a run with the drift trackers engaged must produce a report —
// decisions, summaries, timings, everything — byte-identical to the same
// run with incremental planning disabled. The trackers are an
// amortization of the observe→solve path, never a policy change.
func TestIncrementalDecisionsMatchFull(t *testing.T) {
	schedules := map[string]faults.Schedule{
		"steady": nil,
		"faulty": {
			{Epoch: 1, Iter: 0, Kind: faults.NodeFail, Node: 1},
			{Epoch: 2, Iter: 2, Kind: faults.NodeFail, Node: 2},
			{Epoch: 3, Iter: 0, Kind: faults.NodeJoin, Node: 1},
		},
	}
	for _, policy := range ReplanPolicies() {
		for _, drift := range []trace.DriftModel{trace.DriftStabilizing, trace.DriftBursty, trace.DriftMigration} {
			for name, sched := range schedules {
				cfg := onlineCfg(policy, drift)
				cfg.Faults = sched
				incremental, err := RunOnline(cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s incremental: %v", policy, drift, name, err)
				}
				cfg = onlineCfg(policy, drift)
				cfg.Faults = sched
				cfg.DisableIncremental = true
				full, err := RunOnline(cfg)
				if err != nil {
					t.Fatalf("%s/%s/%s full: %v", policy, drift, name, err)
				}
				// PlannerTime is measured wall-clock — the one field that
				// legitimately differs between the two runs (it is what the
				// trackers improve).
				for i := range incremental.Epochs {
					incremental.Epochs[i].PlannerTime = 0
					full.Epochs[i].PlannerTime = 0
				}
				a, err := json.Marshal(incremental)
				if err != nil {
					t.Fatal(err)
				}
				b, err := json.Marshal(full)
				if err != nil {
					t.Fatal(err)
				}
				if string(a) != string(b) {
					t.Errorf("%s/%s/%s: incremental and full runs diverge\nincremental: %s\nfull:        %s",
						policy, drift, name, a, b)
				}
			}
		}
	}
}

// TestIncrementalSolvesEngage checks the counters the laer-bench SLO gate
// asserts on: once a warm-policy run reaches steady state, later epochs
// must report solves that ran through the tracker, and a run with
// incremental planning disabled must report none.
func TestIncrementalSolvesEngage(t *testing.T) {
	p, err := NewOnlinePlanner(onlineCfg(ReplanWarm, trace.DriftStabilizing))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := ObservationGenerator(trace.GeneratorConfig{
		Devices: p.Devices(), Experts: p.Experts(), Layers: p.Layers(),
		TokensPerDevice: p.Setup().TokensPerDev, TopK: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var routing []*trace.RoutingMatrix
	totalInc, totalFull := 0, 0
	for epoch := 0; epoch < 4; epoch++ {
		routing = gen.StepInto(routing)
		if _, _, err := p.PlanEpoch(routing); err != nil {
			t.Fatal(err)
		}
		sum := p.Summarize()
		if got, want := sum.IncrementalSolves+sum.FullSolves, p.Layers(); got != want {
			t.Fatalf("epoch %d: %d solves counted for %d layers", epoch, got, want)
		}
		totalInc += sum.IncrementalSolves
		totalFull += sum.FullSolves
	}
	if totalInc == 0 {
		t.Error("warm run never took the incremental path")
	}
	if totalFull == 0 {
		t.Error("warm run never took the full path (the cold start must)")
	}

	cfg := onlineCfg(ReplanWarm, trace.DriftStabilizing)
	cfg.DisableIncremental = true
	pd, err := NewOnlinePlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := ObservationGenerator(trace.GeneratorConfig{
		Devices: pd.Devices(), Experts: pd.Experts(), Layers: pd.Layers(),
		TokensPerDevice: pd.Setup().TokensPerDev, TopK: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	routing = gen2.StepInto(routing[:0])
	if _, _, err := pd.PlanEpoch(routing); err != nil {
		t.Fatal(err)
	}
	if sum := pd.Summarize(); sum.IncrementalSolves != 0 {
		t.Errorf("disabled run reported %d incremental solves", sum.IncrementalSolves)
	}
}

// TestPlanEpochMatchesSplitSteps pins the single-dispatch epoch driver to
// the split PlanBoundary+Observe sequence: same decisions, same summary,
// for every policy over a drifting stream. The run is long enough for the
// predictive policy's trust streak to mature, so acted boundary decisions
// are compared too — PlanEpoch interleaves the observation step before
// the boundary decisions are assembled, and the reported forecast error
// must still be the boundary-time value the split sequence reports.
func TestPlanEpochMatchesSplitSteps(t *testing.T) {
	for _, policy := range ReplanPolicies() {
		sawBoundary := false
		merged, err := NewOnlinePlanner(onlineCfg(policy, trace.DriftBursty))
		if err != nil {
			t.Fatal(err)
		}
		split, err := NewOnlinePlanner(onlineCfg(policy, trace.DriftBursty))
		if err != nil {
			t.Fatal(err)
		}
		genCfg := trace.GeneratorConfig{
			Devices: merged.Devices(), Experts: merged.Experts(), Layers: merged.Layers(),
			TokensPerDevice: merged.Setup().TokensPerDev, TopK: 2, Seed: 17,
		}
		genA, err := ObservationGenerator(genCfg)
		if err != nil {
			t.Fatal(err)
		}
		genB, err := ObservationGenerator(genCfg)
		if err != nil {
			t.Fatal(err)
		}
		var ra, rb []*trace.RoutingMatrix
		for epoch := 0; epoch < 6; epoch++ {
			if epoch > 0 {
				dc := trace.DriftConfig{Model: trace.DriftMigration, Rate: 0.1}
				if err := genA.ApplyDrift(dc); err != nil {
					t.Fatal(err)
				}
				if err := genB.ApplyDrift(dc); err != nil {
					t.Fatal(err)
				}
			}
			ra = genA.StepInto(ra)
			rb = genB.StepInto(rb)

			mb, mo, err := merged.PlanEpoch(ra)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := split.PlanBoundary()
			if err != nil {
				t.Fatal(err)
			}
			so, err := split.Observe(rb)
			if err != nil {
				t.Fatal(err)
			}
			am, _ := json.Marshal(struct {
				B, O []LayerDecision
				S    EpochSummary
			}{mb, mo, merged.Summarize()})
			as, _ := json.Marshal(struct {
				B, O []LayerDecision
				S    EpochSummary
			}{sb, so, split.Summarize()})
			if string(am) != string(as) {
				t.Fatalf("%s epoch %d: PlanEpoch diverges from split steps\nmerged: %s\nsplit:  %s",
					policy, epoch, am, as)
			}
			if len(mb) > 0 {
				sawBoundary = true
			}
		}
		if policy == ReplanPredictive && !sawBoundary {
			t.Fatalf("%s: no boundary ever acted — the comparison never covered a predictive boundary decision", policy)
		}
	}
}

// TestFoldLostRowsConservesTokens is the property the elastic observation
// path rests on: folding dead devices' rows onto the survivors preserves
// every expert's total load and zeroes the dead rows, under randomized
// matrices and loss patterns.
func TestFoldLostRowsConservesTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		nodes := 2 + rng.Intn(3)
		perNode := 2 + rng.Intn(3)
		topo := topology.New(nodes, perNode)
		n := topo.N()
		e := 4 + rng.Intn(24)
		r := trace.NewRoutingMatrix(n, e)
		for i := 0; i < n; i++ {
			for j := 0; j < e; j++ {
				r.R[i][j] = rng.Intn(64)
			}
		}
		before := r.ExpertLoads()
		total := r.Total()

		// Fail up to nodes-1 nodes so at least one survives.
		for k := rng.Intn(nodes); k > 0; k-- {
			node := rng.Intn(nodes)
			if topo.Node(0) == node && topo.NumAvailable() <= perNode {
				continue
			}
			_ = topo.RemoveNode(node)
		}
		if topo.NumAvailable() == 0 {
			continue
		}
		FoldLostRows(r, topo)

		after := r.ExpertLoads()
		for j := 0; j < e; j++ {
			if before[j] != after[j] {
				t.Fatalf("trial %d expert %d: load %v -> %v across fold", trial, j, before[j], after[j])
			}
		}
		if got := r.Total(); got != total {
			t.Fatalf("trial %d: total %d -> %d across fold", trial, total, got)
		}
		for d := 0; d < n; d++ {
			if topo.Available(d) {
				continue
			}
			for j, v := range r.R[d] {
				if v != 0 {
					t.Fatalf("trial %d: dead device %d still holds %d tokens of expert %d", trial, d, v, j)
				}
			}
		}
	}
}
