package par

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool is a shared bounded worker budget for fan-outs issued by several
// concurrent owners — the laer-serve daemon points every planning session
// at one Pool so the per-layer boundary solves of all sessions together
// never oversubscribe the machine. The zero value is not usable; build one
// with NewPool.
//
// A Pool bounds *extra* goroutines, not progress: every ForEach call runs
// work on the calling goroutine too, so a fan-out always completes even
// when other callers hold the entire budget.
type Pool struct {
	sem chan struct{}
}

// NewPool builds a pool whose calls may use up to Workers(workers) extra
// goroutines in total (0 resolves to GOMAXPROCS, as in Workers).
func NewPool(workers int) *Pool {
	return &Pool{sem: make(chan struct{}, Workers(workers))}
}

// Workers returns the pool's extra-goroutine budget.
func (p *Pool) Workers() int { return cap(p.sem) }

// ForEach runs fn(0..n-1) like the package-level ForEach, drawing helper
// goroutines from the shared budget: helpers are acquired opportunistically
// (never blocking on other callers) and returned when the call finishes,
// and the calling goroutine always participates. Results and error
// reporting are identical at any budget and under any contention — when
// several calls fail, the error of the lowest index wins.
//
// Unlike the package-level ForEach (whose single owner wants a loud crash),
// a panicking fn is recovered and surfaced as that index's error: the pool
// is shared by independent owners — the laer-serve daemon's sessions — and
// a panic on a helper goroutine would otherwise kill the whole process,
// taking every other owner's state with it.
func (p *Pool) ForEach(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	var (
		next   int64
		failed atomic.Bool
		errs   = make([]error, n)
	)
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("par: panic on index %d: %v", i, r)
			}
		}()
		return fn(i)
	}
	work := func() {
		for {
			i := int(atomic.AddInt64(&next, 1) - 1)
			// Like the serial loop, stop launching work once any index has
			// failed; in-flight indices drain naturally.
			if i >= n || failed.Load() {
				return
			}
			if err := call(i); err != nil {
				errs[i] = err
				failed.Store(true)
			}
		}
	}

	var wg sync.WaitGroup
	helpers := 0
	for helpers < n-1 {
		select {
		case p.sem <- struct{}{}:
			helpers++
			wg.Add(1)
			go func() {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				work()
			}()
		default:
			helpers = n // budget exhausted; the caller carries the rest
		}
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
