package par

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if w := Workers(0); w < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", w)
	}
	if w := Workers(-3); w != 1 {
		t.Fatalf("Workers(-3) = %d, want 1", w)
	}
	if w := Workers(7); w != 7 {
		t.Fatalf("Workers(7) = %d, want 7", w)
	}
}

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 16} {
		var sum atomic.Int64
		if err := ForEach(workers, 100, func(i int) error {
			sum.Add(int64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := sum.Load(); got != 4950 {
			t.Fatalf("workers=%d: sum %d, want 4950", workers, got)
		}
	}
	if err := ForEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLowestIndexErrorWins(t *testing.T) {
	want := errors.New("boom-1")
	for _, workers := range []int{1, 8} {
		err := ForEach(workers, 64, func(i int) error {
			switch i {
			case 1:
				return want
			case 3:
				return errors.New("boom-3")
			}
			return nil
		})
		if !errors.Is(err, want) {
			t.Fatalf("workers=%d: got %v, want boom-1", workers, err)
		}
	}
}

func TestPoolCoversEveryIndex(t *testing.T) {
	for _, budget := range []int{1, 2, 16} {
		p := NewPool(budget)
		if p.Workers() != budget {
			t.Fatalf("budget %d: Workers() = %d", budget, p.Workers())
		}
		var sum atomic.Int64
		if err := p.ForEach(100, func(i int) error {
			sum.Add(int64(i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if got := sum.Load(); got != 4950 {
			t.Fatalf("budget=%d: sum %d, want 4950", budget, got)
		}
		if err := p.ForEach(0, func(int) error { t.Fatal("called"); return nil }); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolLowestIndexErrorWins(t *testing.T) {
	p := NewPool(8)
	want := errors.New("boom-1")
	err := p.ForEach(64, func(i int) error {
		switch i {
		case 1:
			return want
		case 3:
			return errors.New("boom-3")
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("got %v, want boom-1", err)
	}
}

// TestPoolRecoversPanics: a panic inside fn — possibly on a shared helper
// goroutine, where nothing else could recover it — must surface as that
// index's error instead of killing the process and every other owner.
func TestPoolRecoversPanics(t *testing.T) {
	for _, budget := range []int{1, 8} {
		p := NewPool(budget)
		err := p.ForEach(32, func(i int) error {
			if i == 5 {
				panic("solver blew up")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "panic on index 5") {
			t.Fatalf("budget %d: got %v, want recovered panic for index 5", budget, err)
		}
	}
}

// TestPoolProgressUnderExhaustion: a ForEach must complete even when other
// callers hold the entire helper budget, because the calling goroutine
// always participates.
func TestPoolProgressUnderExhaustion(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Two slow items so the single helper token stays taken while the
		// caller grinds through; release unblocks them.
		_ = p.ForEach(2, func(i int) error {
			if i == 0 {
				close(started)
			}
			<-release
			return nil
		})
	}()
	<-started
	// The budget may now be fully held by the first call; this one must
	// still finish on the caller's own goroutine.
	var n atomic.Int64
	if err := p.ForEach(50, func(i int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Fatalf("completed %d of 50 items", n.Load())
	}
	close(release)
	wg.Wait()
}

// TestPoolConcurrentOwners drives many fan-outs through one pool at once;
// run under -race this doubles as the data-race check for the shared
// budget path.
func TestPoolConcurrentOwners(t *testing.T) {
	p := NewPool(4)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var sum atomic.Int64
			if err := p.ForEach(200, func(i int) error {
				sum.Add(int64(i))
				return nil
			}); err != nil {
				errs[g] = err
				return
			}
			if sum.Load() != 19900 {
				errs[g] = fmt.Errorf("owner %d: sum %d, want 19900", g, sum.Load())
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
