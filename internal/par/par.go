// Package par is the shared bounded worker pool of the experiment harness
// and the online engine: index-addressed fan-out whose results (and error
// reporting) are identical at any worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob to a concrete worker count: 0 uses
// every available CPU (GOMAXPROCS), values below 1 force serial execution,
// and any larger value bounds the pool at that many workers.
func Workers(p int) int {
	switch {
	case p == 0:
		return runtime.GOMAXPROCS(0)
	case p < 1:
		return 1
	default:
		return p
	}
}

// ForEach runs fn(0..n-1) on up to workers goroutines and blocks until
// every call returns. When several calls fail, the error of the lowest
// index wins, so error reporting is deterministic too. workers <= 1 runs
// inline with no goroutines at all.
func ForEach(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next int
	var failed atomic.Bool
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				// Like the serial loop, stop launching work once any
				// cell has failed; in-flight cells drain naturally.
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
