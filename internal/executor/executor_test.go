package executor

import (
	"testing"

	"laermoe/internal/model"
	"laermoe/internal/planner"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// tinyArch is a small MoE config so executor tests stay fast.
var tinyArch = &model.Config{
	Name: "tiny", Layers: 2, HiddenDim: 1024, Intermediate: 2048,
	Heads: 8, KVHeads: 8, HeadDim: 128, VocabSize: 1000,
	Experts: 4, TopK: 2, ExpertCapacity: 2,
}

func tinyConfig(topo *topology.Topology) Config {
	return Config{
		Arch: tinyArch, Topo: topo, Paradigm: ParadigmFSEP,
		TokensPerDevice: 1024, MicroBatches: 1, ContextLen: 1024,
		Comm: AllCommOpts(),
	}
}

func tinyPlans(t *testing.T, topo *topology.Topology, seed int64) []LayerPlan {
	t.Helper()
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: topo.N(), Experts: tinyArch.Experts, Layers: tinyArch.Layers,
		TokensPerDevice: 1024, TopK: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	layout, err := planner.StaticEP(tinyArch.Experts, topo.N(), tinyArch.ExpertCapacity)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]LayerPlan, tinyArch.Layers)
	for l, r := range gen.Step() {
		d, err := planner.EPRouting(r, tinyArch.ExpertCapacity)
		if err != nil {
			t.Fatal(err)
		}
		plans[l] = LayerPlan{Layout: layout, Dispatch: d}
	}
	return plans
}

func TestRunIterationProducesTimeline(t *testing.T) {
	topo := topology.New(2, 4)
	it, err := RunIteration(tinyConfig(topo), tinyPlans(t, topo, 1))
	if err != nil {
		t.Fatal(err)
	}
	if it.Time <= 0 {
		t.Error("iteration time must be positive")
	}
	if len(it.PerLayerImbalance) != tinyArch.Layers {
		t.Errorf("per-layer imbalance has %d entries, want %d", len(it.PerLayerImbalance), tinyArch.Layers)
	}
	bd := it.Breakdown
	if bd.Expert <= 0 || bd.A2A <= 0 || bd.Attention <= 0 {
		t.Errorf("breakdown missing components: %+v", bd)
	}
}

// TestBalancedFasterThanImbalanced: forcing balanced routing must shorten
// the iteration (the Fig. 1b comparison).
func TestBalancedFasterThanImbalanced(t *testing.T) {
	topo := topology.New(2, 4)
	cfg := tinyConfig(topo)
	cfg.Paradigm = ParadigmFSDPEP
	imbalanced, err := RunIteration(cfg, tinyPlans(t, topo, 2))
	if err != nil {
		t.Fatal(err)
	}
	layout, _ := planner.StaticEP(tinyArch.Experts, topo.N(), tinyArch.ExpertCapacity)
	bal := trace.Balanced(topo.N(), tinyArch.Experts, 1024, 2)
	d, err := planner.EPRouting(bal, tinyArch.ExpertCapacity)
	if err != nil {
		t.Fatal(err)
	}
	plans := make([]LayerPlan, tinyArch.Layers)
	for l := range plans {
		plans[l] = LayerPlan{Layout: layout, Dispatch: d}
	}
	balanced, err := RunIteration(cfg, plans)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.Time >= imbalanced.Time {
		t.Errorf("balanced iteration (%.4f) not faster than imbalanced (%.4f)", balanced.Time, imbalanced.Time)
	}
	if balanced.Breakdown.A2AShare() >= imbalanced.Breakdown.A2AShare() {
		t.Errorf("balanced a2a share (%.3f) not below imbalanced (%.3f)",
			balanced.Breakdown.A2AShare(), imbalanced.Breakdown.A2AShare())
	}
}

// TestCommOptimizationsHelp: the Fig. 5 optimizations must not slow the
// iteration down, and disabling all of them must cost something (Fig. 12
// no_comm_opt).
func TestCommOptimizationsHelp(t *testing.T) {
	topo := topology.New(2, 4)
	plans := tinyPlans(t, topo, 3)
	withOpts := tinyConfig(topo)
	withOpts.TokensPerDevice = 4096
	noOpts := withOpts
	noOpts.Comm = CommOpts{}
	a, err := RunIteration(withOpts, plans)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIteration(noOpts, plans)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time >= b.Time {
		t.Errorf("optimized iteration (%.4f) not faster than unoptimized (%.4f)", a.Time, b.Time)
	}
}

// TestCommOptsAreIndividuallyMonotonic: enabling each optimization on top
// of the previous ones never hurts.
func TestCommOptsAreIndividuallyMonotonic(t *testing.T) {
	topo := topology.New(2, 4)
	plans := tinyPlans(t, topo, 4)
	base := tinyConfig(topo)
	base.TokensPerDevice = 4096
	ladder := []CommOpts{
		{},
		{RelaxedPrefetch: true},
		{RelaxedPrefetch: true, ScheduledPrefetch: true},
		{RelaxedPrefetch: true, ScheduledPrefetch: true, DelayedGradSync: true},
	}
	prev := -1.0
	for i, opts := range ladder {
		cfg := base
		cfg.Comm = opts
		it, err := RunIteration(cfg, plans)
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && it.Time > prev*1.001 {
			t.Errorf("step %d (%+v) slower than previous: %.4f > %.4f", i, opts, it.Time, prev)
		}
		prev = it.Time
	}
}

// TestMegatronParadigmHasNoPrefetch: resident parameters mean zero
// prefetch time and nonzero TP communication when TP > 1.
func TestMegatronParadigmHasNoPrefetch(t *testing.T) {
	topo := topology.New(2, 4)
	cfg := tinyConfig(topo)
	cfg.Paradigm = ParadigmResident
	cfg.TPDegree = 4
	it, err := RunIteration(cfg, tinyPlans(t, topo, 5))
	if err != nil {
		t.Fatal(err)
	}
	if it.Breakdown.Prefetch != 0 {
		t.Errorf("resident paradigm has prefetch time %g", it.Breakdown.Prefetch)
	}
	if it.Breakdown.TPComm <= 0 {
		t.Error("TP=4 should incur TP communication")
	}
}

func TestFSDPEPParadigmPrefetches(t *testing.T) {
	topo := topology.New(2, 4)
	cfg := tinyConfig(topo)
	cfg.Paradigm = ParadigmFSDPEP
	it, err := RunIteration(cfg, tinyPlans(t, topo, 6))
	if err != nil {
		t.Fatal(err)
	}
	if it.Breakdown.Prefetch <= 0 {
		t.Error("FSDP+EP paradigm should show prefetch activity")
	}
	if it.Breakdown.GradSync <= 0 {
		t.Error("FSDP+EP paradigm should show gradient reshard activity")
	}
}

// TestMicroBatchesScaleTime: beyond the first micro-batch (which carries
// the cold-start prefetch), each additional micro-batch adds the same
// marginal time.
func TestMicroBatchesScaleTime(t *testing.T) {
	topo := topology.New(2, 4)
	plans := tinyPlans(t, topo, 7)
	times := make([]float64, 4)
	for mb := 1; mb <= 3; mb++ {
		cfg := tinyConfig(topo)
		cfg.OptimizerStepTime = 1e-6 // keep the per-iteration constant negligible
		cfg.MicroBatches = mb
		it, err := RunIteration(cfg, plans)
		if err != nil {
			t.Fatal(err)
		}
		times[mb] = it.Time
	}
	d12 := times[2] - times[1]
	d23 := times[3] - times[2]
	if d12 <= 0 || d23 <= 0 {
		t.Fatalf("micro-batches did not add time: %v", times[1:])
	}
	ratio := d23 / d12
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("marginal micro-batch costs differ: +%.4f then +%.4f (ratio %.2f)", d12, d23, ratio)
	}
}

// TestExtraRelayoutTimeCharged: explicit migration cost lands on the
// iteration's critical path.
func TestExtraRelayoutTimeCharged(t *testing.T) {
	topo := topology.New(2, 4)
	plans := tinyPlans(t, topo, 8)
	base, err := RunIteration(tinyConfig(topo), plans)
	if err != nil {
		t.Fatal(err)
	}
	plans[0].ExtraRelayoutTime = 0.5
	charged, err := RunIteration(tinyConfig(topo), plans)
	if err != nil {
		t.Fatal(err)
	}
	if charged.Time < base.Time+0.45 {
		t.Errorf("relayout cost not charged: %.4f vs %.4f", charged.Time, base.Time)
	}
}

// TestStragglerInflatesIteration: a slow device stretches the whole
// iteration (collectives wait for it).
func TestStragglerInflatesIteration(t *testing.T) {
	topo := topology.New(2, 4)
	plans := tinyPlans(t, topo, 9)
	base, err := RunIteration(tinyConfig(topo), plans)
	if err != nil {
		t.Fatal(err)
	}
	slow := topology.New(2, 4)
	if err := slow.SetSlowdown(3, 2.0); err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(slow)
	it, err := RunIteration(cfg, plans)
	if err != nil {
		t.Fatal(err)
	}
	if it.Time <= base.Time {
		t.Errorf("straggler did not inflate iteration: %.4f vs %.4f", it.Time, base.Time)
	}
}

func TestConfigValidation(t *testing.T) {
	topo := topology.New(2, 4)
	bad := tinyConfig(topo)
	bad.TPDegree = 3 // does not divide 8
	if _, err := RunIteration(bad, tinyPlans(t, topo, 10)); err == nil {
		t.Error("invalid TP degree accepted")
	}
	short := tinyConfig(topo)
	if _, err := RunIteration(short, tinyPlans(t, topo, 11)[:1]); err == nil {
		t.Error("wrong layer-plan count accepted")
	}
	neg := tinyConfig(topo)
	neg.TokensPerDevice = 0
	if _, err := RunIteration(neg, tinyPlans(t, topo, 12)); err == nil {
		t.Error("zero tokens accepted")
	}
}

func TestParadigmString(t *testing.T) {
	for _, p := range []Paradigm{ParadigmFSEP, ParadigmFSDPEP, ParadigmResident} {
		if p.String() == "" {
			t.Errorf("paradigm %d has empty name", p)
		}
	}
}
