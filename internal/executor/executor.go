// Package executor builds per-iteration execution timelines for the
// simulated cluster: the forward/backward task graph of every transformer
// layer across the four CUDA-style streams of Fig. 5, including parameter
// prefetching, token All-to-All, expert computation, gradient resharding,
// tensor-parallel collectives and the fine-grained communication
// scheduling optimizations of Sec. 3.1 (relaxed prefetching, prefetch
// launch after the dispatcher's All-to-All, delayed gradient
// synchronization).
//
// The same builder serves every evaluated system; they differ only in the
// parameter paradigm (FSEP / FSDP+EP / resident a la Megatron), the
// attention TP degree, and the per-layer expert layout and token dispatch
// supplied by their scheduler.
package executor

import (
	"fmt"
	"math"
	"sync"

	"laermoe/internal/comm"
	"laermoe/internal/costmodel"
	"laermoe/internal/metrics"
	"laermoe/internal/model"
	"laermoe/internal/planner"
	"laermoe/internal/sim"
	"laermoe/internal/topology"
)

// enginePool recycles discrete-event engines across iterations: a multi-
// iteration run re-simulates the same graph shape thousands of times, and
// a reset engine rebuilds it without re-growing its task arena and queues.
var enginePool = sync.Pool{New: func() interface{} { return new(sim.Engine) }}

// Paradigm selects how expert parameters are stored and restored.
type Paradigm int

const (
	// ParadigmFSEP fully shards every expert across all devices and
	// restores arbitrary layouts with regular All-to-All (the paper).
	ParadigmFSEP Paradigm = iota
	// ParadigmFSDPEP shards experts within FSDP groups and restores the
	// fixed EP layout with all-gather (the FSDP+EP baseline).
	ParadigmFSDPEP
	// ParadigmResident keeps expert parameters resident (Megatron): no
	// prefetch, gradients all-reduced across expert-data-parallel ranks.
	ParadigmResident
)

func (p Paradigm) String() string {
	switch p {
	case ParadigmFSEP:
		return "fsep"
	case ParadigmFSDPEP:
		return "fsdp+ep"
	case ParadigmResident:
		return "resident"
	}
	return fmt.Sprintf("paradigm(%d)", int(p))
}

// CommOpts are the Fig. 5 communication-scheduling switches.
type CommOpts struct {
	// RelaxedPrefetch prefetches layer L+1's experts during layer L's
	// expert computation instead of during attention (Fig. 5b).
	RelaxedPrefetch bool
	// ScheduledPrefetch launches the prefetch only after the token
	// dispatcher's All-to-All has concluded, avoiding channel contention
	// (Fig. 5c).
	ScheduledPrefetch bool
	// DelayedGradSync defers gradient reshard/synchronization to the next
	// expert layer's backward computation (Fig. 5e).
	DelayedGradSync bool
}

// AllCommOpts enables every optimization (the shipped configuration).
func AllCommOpts() CommOpts {
	return CommOpts{RelaxedPrefetch: true, ScheduledPrefetch: true, DelayedGradSync: true}
}

// Config describes one system's execution parameters.
type Config struct {
	Arch *model.Config
	Topo *topology.Topology

	Paradigm Paradigm
	TPDegree int // attention tensor-parallel degree (1 for fully sharded systems)

	// TokensPerDevice is the MoE-source tokens per device per micro-batch
	// (S in the paper's notation).
	TokensPerDevice int
	MicroBatches    int
	ContextLen      int
	Ckpt            bool // recompute expert forward during backward

	Comm CommOpts

	// Fixed overheads (seconds), modelling kernel launches, token
	// rearrangement and host interactions.
	DispatcherOverhead float64 // TD decision per layer per micro-batch
	LayerFixedOverhead float64 // memory ops per layer per micro-batch
	OptimizerStepTime  float64 // once per iteration

	// ContentionFactor inflates communication that shares the wire with a
	// concurrent All-to-All (the "A2A slowdown" of Fig. 5a/b/d); 1.0
	// disables contention modelling.
	ContentionFactor float64

	// TPEfficiencyLoss is the attention GEMM efficiency penalty per
	// doubling of TP (smaller per-device matrices reduce MFU).
	TPEfficiencyLoss float64
}

// Defaults fills unset tunables with calibrated values.
func (c Config) Defaults() Config {
	if c.TPDegree == 0 {
		c.TPDegree = 1
	}
	if c.MicroBatches == 0 {
		c.MicroBatches = 1
	}
	if c.ContextLen == 0 {
		c.ContextLen = 8192
	}
	if c.DispatcherOverhead == 0 {
		c.DispatcherOverhead = 0.25e-3
	}
	if c.LayerFixedOverhead == 0 {
		c.LayerFixedOverhead = 0.4e-3
	}
	if c.OptimizerStepTime == 0 {
		c.OptimizerStepTime = 30e-3
	}
	if c.ContentionFactor == 0 {
		c.ContentionFactor = 1.5
	}
	if c.TPEfficiencyLoss == 0 {
		c.TPEfficiencyLoss = 0.25
	}
	return c
}

// Validate checks structural consistency.
func (c Config) Validate() error {
	if c.Arch == nil || c.Topo == nil {
		return fmt.Errorf("executor: nil architecture or topology")
	}
	n := c.Topo.N()
	if c.TPDegree < 1 || n%c.TPDegree != 0 {
		return fmt.Errorf("executor: TP degree %d does not divide %d devices", c.TPDegree, n)
	}
	if c.Paradigm == ParadigmFSDPEP || c.Paradigm == ParadigmResident {
		pep := c.Arch.Experts / c.Arch.ExpertCapacity
		if n%pep != 0 {
			return fmt.Errorf("executor: EP size %d does not divide %d devices", pep, n)
		}
	}
	if c.TokensPerDevice <= 0 || c.MicroBatches <= 0 {
		return fmt.Errorf("executor: non-positive batch shape")
	}
	return nil
}

// LayerPlan is the per-layer strategy in force for one iteration: the
// expert layout and the token dispatch for one micro-batch.
type LayerPlan struct {
	Layout   *planner.Layout
	Dispatch *planner.Dispatch
	// ExtraRelayoutTime charges explicit migration cost (non-FSEP
	// re-layout schemes such as SmartMoE move optimizer state over the
	// wire); exposed once on the iteration's critical path.
	ExtraRelayoutTime float64
}

// RunIteration builds and simulates one training iteration under the given
// per-layer plans and returns its metrics.
func RunIteration(cfg Config, layers []LayerPlan) (*metrics.Iteration, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(layers) != cfg.Arch.Layers {
		return nil, fmt.Errorf("executor: %d layer plans for %d layers", len(layers), cfg.Arch.Layers)
	}
	b := newBuilder(cfg)
	for mb := 0; mb < cfg.MicroBatches; mb++ {
		b.forward(layers)
		b.backward(layers, mb == cfg.MicroBatches-1)
	}
	b.finish(layers)
	res, err := b.eng.Run()
	if err != nil {
		return nil, err
	}
	it := &metrics.Iteration{
		Time:              res.Makespan(),
		Breakdown:         metrics.FromResult(res),
		PerLayerImbalance: perLayerImbalance(layers, cfg.Topo.NumAvailable()),
	}
	// The metrics are fully extracted; the engine (and the Result viewing
	// its task arena) can be recycled.
	enginePool.Put(b.eng)
	return it, nil
}

// perLayerImbalance computes the Fig. 10b series: per layer, the maximum
// per-device received token count relative to the perfectly balanced
// count. n is the number of live devices — under an elastic topology the
// balanced reference spreads the tokens over the surviving cluster only.
func perLayerImbalance(layers []LayerPlan, n int) []float64 {
	out := make([]float64, len(layers))
	var buf []int
	for l, lp := range layers {
		buf = lp.Dispatch.AppendReceivedLoads(buf[:0])
		loads := buf
		total, maxLoad := 0, 0
		for _, v := range loads {
			total += v
			if v > maxLoad {
				maxLoad = v
			}
		}
		if total == 0 {
			out[l] = 1
			continue
		}
		out[l] = float64(maxLoad) / (float64(total) / float64(n))
	}
	return out
}

// builder incrementally constructs the iteration task graph.
type builder struct {
	cfg  Config
	eng  *sim.Engine
	cm   *costmodel.Model
	comm *comm.Model
	n    int
	all  []int

	// lastS1 tracks each device's most recent compute-stream task, used
	// as the data dependency for the next layer.
	lastS1 []sim.TaskID

	// Per-layer ID scratch, reused across layers and micro-batches.
	attn, td, experts []sim.TaskID
	peReady, paReady  []sim.TaskID
	nextPE            []sim.TaskID
	groupDeps         [][]sim.TaskID
	groupDepArena     []sim.TaskID
	times             []float64
	loads             []int
}

func newBuilder(cfg Config) *builder {
	n := cfg.Topo.N()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	eng := enginePool.Get().(*sim.Engine)
	eng.Reset(n)
	b := &builder{
		cfg:     cfg,
		eng:     eng,
		cm:      costmodel.New(cfg.Arch, cfg.Topo, cfg.ContextLen),
		comm:    comm.New(cfg.Topo),
		n:       n,
		all:     all,
		lastS1:  make([]sim.TaskID, n),
		attn:    make([]sim.TaskID, n),
		td:      make([]sim.TaskID, n),
		experts: make([]sim.TaskID, n),
		peReady: make([]sim.TaskID, n),
		paReady: make([]sim.TaskID, n),
		nextPE:  make([]sim.TaskID, n),
	}
	for i := range b.lastS1 {
		b.lastS1[i] = sim.NoTask
	}
	return b
}

// tpGroupDeps packs one dependency per group member into reusable
// dependency lists for a TP collective.
func (b *builder) tpGroupDeps(g []int, ids []sim.TaskID) [][]sim.TaskID {
	if cap(b.groupDeps) < len(g) {
		b.groupDeps = make([][]sim.TaskID, len(g))
		b.groupDepArena = make([]sim.TaskID, len(g))
	}
	deps := b.groupDeps[:len(g)]
	arena := b.groupDepArena[:len(g)]
	for i, dev := range g {
		arena[i] = ids[dev]
		deps[i] = arena[i : i+1]
	}
	return deps
}

// contended reports whether prefetch traffic shares the wire with token
// All-to-All under the configured scheduling.
func (b *builder) prefetchContended() bool {
	return b.cfg.Paradigm != ParadigmResident && !b.cfg.Comm.ScheduledPrefetch
}

func (b *builder) gradSyncContended() bool {
	return b.cfg.Paradigm != ParadigmResident && !b.cfg.Comm.DelayedGradSync
}

// a2aFactor is the contention multiplier applied to token All-to-All.
func (b *builder) a2aFactor(backward bool) float64 {
	f := 1.0
	if b.prefetchContended() {
		f = b.cfg.ContentionFactor
	}
	if backward && b.gradSyncContended() {
		f = math.Max(f, b.cfg.ContentionFactor)
	}
	return f
}

// attnTime returns the per-device attention compute time including the TP
// efficiency penalty.
func (b *builder) attnTime(dev int, backward bool) float64 {
	tp := b.cfg.TPDegree
	tokens := b.cfg.TokensPerDevice * tp // tokens per TP group micro-batch
	t := b.cm.AttentionComputeTime(dev, tokens, tp)
	if tp > 1 {
		t *= 1 + b.cfg.TPEfficiencyLoss*math.Log2(float64(tp))
	}
	if backward {
		t *= costmodel.BackwardFactor
	}
	return t
}

// tpAllReduceTime returns the duration of one TP all-reduce of the layer
// activation within a TP group (intra-node ring).
func (b *builder) tpAllReduceTime(group []int) float64 {
	bytes := float64(b.cfg.TokensPerDevice*b.cfg.TPDegree) * float64(b.cfg.Arch.TokenBytes())
	return b.comm.AllReduce(group, bytes)
}

// tpGroups returns the consecutive TP groups.
func (b *builder) tpGroups() [][]int {
	tp := b.cfg.TPDegree
	var out [][]int
	for start := 0; start < b.n; start += tp {
		g := make([]int, tp)
		for i := range g {
			g[i] = start + i
		}
		out = append(out, g)
	}
	return out
}

// fsdpGroups returns the FSDP sharding groups of the FSDP+EP paradigm:
// devices with the same EP rank across EP groups.
func (b *builder) fsdpGroups() [][]int {
	pep := b.cfg.Arch.Experts / b.cfg.Arch.ExpertCapacity
	out := make([][]int, pep)
	for d := 0; d < b.n; d++ {
		r := d % pep
		out[r] = append(out[r], d)
	}
	return out
}

// expertPrefetchTime returns the duration of restoring C experts per
// device under the configured paradigm (0 for resident parameters).
func (b *builder) expertPrefetchTime() float64 {
	c := float64(b.cfg.Arch.ExpertCapacity)
	bytes := float64(b.cfg.Arch.ExpertBytes())
	switch b.cfg.Paradigm {
	case ParadigmFSEP:
		// Regular All-to-All: every pair exchanges C chunks of 1/N.
		return b.comm.UniformAllToAll(b.all, c*bytes/float64(b.n))
	case ParadigmFSDPEP:
		groups := b.fsdpGroups()
		worst := 0.0
		for _, g := range groups {
			t := b.comm.AllGather(g, c*bytes/float64(len(g)))
			if t > worst {
				worst = t
			}
		}
		return worst
	default:
		return 0
	}
}

// attnPrefetchTime returns the all-gather time of the next layer's
// non-expert parameters (fully sharded paradigms only).
func (b *builder) attnPrefetchTime() float64 {
	if b.cfg.Paradigm == ParadigmResident {
		return 0
	}
	bytes := float64(b.cfg.Arch.NonExpertLayerParams() * model.BytesPerParam)
	return b.comm.AllGather(b.all, bytes/float64(b.n))
}

// gradSyncTime returns the per-layer expert gradient reshard/reduction
// time under the paradigm.
func (b *builder) gradSyncTime() float64 {
	c := float64(b.cfg.Arch.ExpertCapacity)
	bytes := float64(b.cfg.Arch.ExpertBytes()) // bf16 grads match param size
	switch b.cfg.Paradigm {
	case ParadigmFSEP:
		return b.comm.UniformAllToAll(b.all, c*bytes/float64(b.n))
	case ParadigmFSDPEP:
		groups := b.fsdpGroups()
		worst := 0.0
		for _, g := range groups {
			t := b.comm.ReduceScatter(g, c*bytes)
			if t > worst {
				worst = t
			}
		}
		return worst
	case ParadigmResident:
		// Ring reduce-scatter across the expert replicas (ZeRO-1 style),
		// bucketed per layer on the last micro-batch.
		pep := b.cfg.Arch.Experts / b.cfg.Arch.ExpertCapacity
		replicas := b.n / pep
		if replicas < 2 {
			return 0
		}
		group := make([]int, replicas)
		for i := range group {
			group[i] = i * pep // one member per EP group; same link classes
		}
		return b.comm.ReduceScatter(group, c*bytes)
	}
	return 0
}

// nonExpertGradSyncTime returns the per-layer non-expert gradient
// reduction time.
func (b *builder) nonExpertGradSyncTime() float64 {
	bytes := float64(b.cfg.Arch.NonExpertLayerParams() * model.BytesPerParam)
	switch b.cfg.Paradigm {
	case ParadigmResident:
		dp := b.n / b.cfg.TPDegree
		if dp < 2 {
			return 0
		}
		group := make([]int, dp)
		for i := range group {
			group[i] = i * b.cfg.TPDegree
		}
		return b.comm.ReduceScatter(group, bytes/float64(b.cfg.TPDegree))
	default:
		return b.comm.ReduceScatter(b.all, bytes)
	}
}

// dispatchDuration returns the token All-to-All time of one layer's
// dispatch (or combine — volumes are symmetric in size).
func (b *builder) dispatchDuration(lp LayerPlan, backward bool) float64 {
	vol := lp.Dispatch.VolumeMatrix(b.cm.TokenCommBytes())
	return b.comm.AllToAll(vol) * b.a2aFactor(backward)
}

// expertTime returns per-device expert compute durations for one layer,
// in a buffer reused across calls.
func (b *builder) expertTimes(lp LayerPlan, backward bool) []float64 {
	b.loads = lp.Dispatch.AppendReceivedLoads(b.loads[:0])
	loads := b.loads
	if b.times == nil {
		b.times = make([]float64, b.n)
	}
	out := b.times
	factor := 1.0
	if backward {
		factor = costmodel.BackwardFactor
		if b.cfg.Ckpt {
			factor += 1 // recompute forward
		}
	}
	for dev, l := range loads {
		out[dev] = b.cm.ExpertComputeTime(dev, l) * factor
	}
	return out
}

// collectiveAll adds an all-device collective with per-device deps.
func (b *builder) collectiveAll(name string, stream sim.Stream, cat sim.Category, dur float64, deps []sim.TaskID) []sim.TaskID {
	return b.eng.Collective1(name, b.all, stream, cat, dur, deps)
}

// forward appends one micro-batch's forward pass.
func (b *builder) forward(layers []LayerPlan) {
	cfg := b.cfg
	prefetchTimeE := b.expertPrefetchTime()
	prefetchTimeA := b.attnPrefetchTime()
	if b.prefetchContended() {
		prefetchTimeE *= cfg.ContentionFactor
	}
	tpGroups := b.tpGroups()

	// peReady[dev] is the prefetch task that must complete before the
	// layer's expert computation on dev; paReady likewise for attention.
	peReady, paReady := b.peReady, b.paReady
	for i := range peReady {
		peReady[i], paReady[i] = sim.NoTask, sim.NoTask
	}

	// Initial prefetch of layer 0 (enqueued first on S2; depends only on
	// previous stream work).
	if cfg.Paradigm != ParadigmResident {
		pa := b.collectiveAll("PA0", sim.StreamPrefetch, sim.CatPrefetch, prefetchTimeA, nil)
		pe := b.collectiveAll("PE0", sim.StreamPrefetch, sim.CatPrefetch, prefetchTimeE, nil)
		copy(paReady, pa)
		copy(peReady, pe)
	}

	for l, lp := range layers {
		// Attention (S1) after previous layer's output and PA_l.
		attn := b.attn
		for dev := 0; dev < b.n; dev++ {
			attn[dev] = b.eng.Compute(fmt.Sprintf("F_A%d", l), dev, sim.StreamCompute, sim.CatAttention,
				b.attnTime(dev, false), b.lastS1[dev], paReady[dev])
		}
		if cfg.TPDegree > 1 {
			for _, g := range tpGroups {
				// One all-reduce after attention plus the TP->EP activation
				// re-sharding of heterogeneous parallel folding.
				ids := b.eng.Collective(fmt.Sprintf("AR_A%d", l), g, sim.StreamCompute, sim.CatTPComm,
					2*b.tpAllReduceTime(g), b.tpGroupDeps(g, attn))
				for i, dev := range g {
					attn[dev] = ids[i]
				}
			}
		}

		// Gate, dispatcher decision, and fixed memory ops (S1).
		td := b.td
		for dev := 0; dev < b.n; dev++ {
			gate := b.eng.Compute(fmt.Sprintf("G%d", l), dev, sim.StreamCompute, sim.CatGate,
				b.cm.GateComputeTime(dev, cfg.TokensPerDevice), attn[dev])
			fixed := b.eng.Compute(fmt.Sprintf("mem%d", l), dev, sim.StreamCompute, sim.CatOther,
				cfg.LayerFixedOverhead, gate)
			td[dev] = b.eng.Compute(fmt.Sprintf("TD%d", l), dev, sim.StreamCompute, sim.CatDispatcher,
				cfg.DispatcherOverhead, fixed)
		}

		// Token dispatch All-to-All (S3).
		dispatch := b.collectiveAll(fmt.Sprintf("A2Ad%d", l), sim.StreamA2A, sim.CatA2A,
			b.dispatchDuration(lp, false), td)

		// Prefetch of the next layer (S2) per the scheduling mode.
		if cfg.Paradigm != ParadigmResident && l+1 < len(layers) {
			var peDeps, paDeps []sim.TaskID
			switch {
			case !cfg.Comm.RelaxedPrefetch:
				// Default FSDP: prefetch the next unit while computing the
				// current one — experts of l+1 load during attention of
				// l+1, i.e. after layer l completes. Modelled by making
				// the prefetch depend on this layer's dispatch decision
				// completing its combine (set below after combine).
				peDeps, paDeps = nil, nil // filled after combine
			case cfg.Comm.ScheduledPrefetch:
				peDeps, paDeps = dispatch, dispatch
			default:
				peDeps, paDeps = td, td
			}
			if cfg.Comm.RelaxedPrefetch {
				pe := b.collectiveAll(fmt.Sprintf("PE%d", l+1), sim.StreamPrefetch, sim.CatPrefetch, prefetchTimeE, peDeps)
				pa := b.collectiveAll(fmt.Sprintf("PA%d", l+1), sim.StreamPrefetch, sim.CatPrefetch, prefetchTimeA, paDeps)
				copy(peReady, pe)
				copy(paReady, pa)
			}
		}

		// Expert computation (S1): needs dispatched tokens and expert
		// parameters.
		times := b.expertTimes(lp, false)
		experts := b.experts
		for dev := 0; dev < b.n; dev++ {
			experts[dev] = b.eng.Compute(fmt.Sprintf("F_M%d", l), dev, sim.StreamCompute, sim.CatExpert,
				times[dev], dispatch[dev], peReady[dev])
		}

		// Combine All-to-All (S3).
		combine := b.collectiveAll(fmt.Sprintf("A2Ac%d", l), sim.StreamA2A, sim.CatA2A,
			b.dispatchDuration(lp, false), experts)
		copy(b.lastS1, combine)

		// Default (non-relaxed) prefetch: issue now, to be consumed by
		// layer l+1 — it overlaps only layer l+1's attention (Fig. 5a).
		if cfg.Paradigm != ParadigmResident && !cfg.Comm.RelaxedPrefetch && l+1 < len(layers) {
			pe := b.collectiveAll(fmt.Sprintf("PE%d", l+1), sim.StreamPrefetch, sim.CatPrefetch, prefetchTimeE, combine)
			pa := b.collectiveAll(fmt.Sprintf("PA%d", l+1), sim.StreamPrefetch, sim.CatPrefetch, prefetchTimeA, combine)
			copy(peReady, pe)
			copy(paReady, pa)
		}
		if cfg.Paradigm == ParadigmResident {
			// Parameters resident: nothing to prefetch.
			for i := range peReady {
				peReady[i], paReady[i] = sim.NoTask, sim.NoTask
			}
		}
	}
}

// backward appends one micro-batch's backward pass. syncGrads controls
// whether gradient synchronization runs (the resident paradigm only syncs
// on the last micro-batch; fully sharded paradigms reshard every time).
func (b *builder) backward(layers []LayerPlan, lastMicroBatch bool) {
	cfg := b.cfg
	prefetchTimeE := b.expertPrefetchTime()
	if b.prefetchContended() {
		prefetchTimeE *= cfg.ContentionFactor
	}
	syncTime := b.gradSyncTime()
	nonExpertSync := b.nonExpertGradSyncTime()
	if b.gradSyncContended() {
		syncTime *= cfg.ContentionFactor
	}
	tpGroups := b.tpGroups()

	syncEveryMB := cfg.Paradigm != ParadigmResident
	doSync := syncEveryMB || lastMicroBatch

	// Pending gradient syncs deferred to the next layer's backward
	// (Fig. 5e): pendingSync[dev] holds the dependency gate.
	type pending struct {
		name string
		time float64
		cat  sim.Category
	}
	var pendingSyncs []pending

	peReady := b.peReady
	for i := range peReady {
		peReady[i] = sim.NoTask
	}
	if cfg.Paradigm != ParadigmResident {
		// Re-unshard the last layer's experts for backward.
		pe := b.collectiveAll(fmt.Sprintf("PEb%d", len(layers)-1), sim.StreamPrefetch, sim.CatPrefetch,
			prefetchTimeE, b.lastS1)
		copy(peReady, pe)
	}

	flushPending := func(deps []sim.TaskID) {
		for _, p := range pendingSyncs {
			b.collectiveAll(p.name, sim.StreamGrad, p.cat, p.time, deps)
		}
		pendingSyncs = nil
	}

	for l := len(layers) - 1; l >= 0; l-- {
		lp := layers[l]

		// Gradient All-to-All reversing the combine (S3).
		gradIn := b.collectiveAll(fmt.Sprintf("B_A2Ac%d", l), sim.StreamA2A, sim.CatA2A,
			b.dispatchDuration(lp, true), b.lastS1)

		// Deferred gradient syncs from layer l+1 launch alongside this
		// layer's expert backward (Fig. 5e).
		if cfg.Comm.DelayedGradSync {
			flushPending(gradIn)
		}

		// Prefetch experts of layer l-1 for its upcoming backward (S2).
		nextPE := b.nextPE
		for i := range nextPE {
			nextPE[i] = sim.NoTask
		}
		if cfg.Paradigm != ParadigmResident && l > 0 {
			var deps []sim.TaskID
			if cfg.Comm.ScheduledPrefetch {
				deps = gradIn
			} else {
				deps = b.lastS1
			}
			pe := b.collectiveAll(fmt.Sprintf("PEb%d", l-1), sim.StreamPrefetch, sim.CatPrefetch, prefetchTimeE, deps)
			copy(nextPE, pe)
		}

		// Expert backward (S1).
		times := b.expertTimes(lp, true)
		experts := b.experts
		for dev := 0; dev < b.n; dev++ {
			experts[dev] = b.eng.Compute(fmt.Sprintf("B_M%d", l), dev, sim.StreamCompute, sim.CatExpert,
				times[dev], gradIn[dev], peReady[dev])
		}

		// Expert gradient reshard/synchronization (S4).
		if doSync {
			if cfg.Comm.DelayedGradSync {
				pendingSyncs = append(pendingSyncs, pending{fmt.Sprintf("Sy_M%d", l), syncTime, sim.CatGradSync})
			} else {
				b.collectiveAll(fmt.Sprintf("Sy_M%d", l), sim.StreamGrad, sim.CatGradSync, syncTime, experts)
			}
		}

		// Gradient All-to-All reversing the dispatch (S3).
		gradOut := b.collectiveAll(fmt.Sprintf("B_A2Ad%d", l), sim.StreamA2A, sim.CatA2A,
			b.dispatchDuration(lp, true), experts)

		// Gate and attention backward (S1).
		attn := b.attn
		for dev := 0; dev < b.n; dev++ {
			gate := b.eng.Compute(fmt.Sprintf("B_G%d", l), dev, sim.StreamCompute, sim.CatGate,
				b.cm.GateComputeTime(dev, cfg.TokensPerDevice), gradOut[dev])
			attn[dev] = b.eng.Compute(fmt.Sprintf("B_A%d", l), dev, sim.StreamCompute, sim.CatAttention,
				b.attnTime(dev, true), gate)
		}
		if cfg.TPDegree > 1 {
			for _, g := range tpGroups {
				// Two all-reduces in backward (input and weight grads) plus
				// the EP->TP activation-gradient re-sharding.
				ids := b.eng.Collective(fmt.Sprintf("B_AR_A%d", l), g, sim.StreamCompute, sim.CatTPComm,
					3*b.tpAllReduceTime(g), b.tpGroupDeps(g, attn))
				for i, dev := range g {
					attn[dev] = ids[i]
				}
			}
		}
		copy(b.lastS1, attn)

		// Non-expert gradient sync for this layer (S4, small).
		if doSync {
			if cfg.Comm.DelayedGradSync {
				pendingSyncs = append(pendingSyncs, pending{fmt.Sprintf("Sy_A%d", l), nonExpertSync, sim.CatGradSync})
			} else {
				b.collectiveAll(fmt.Sprintf("Sy_A%d", l), sim.StreamGrad, sim.CatGradSync, nonExpertSync, attn)
			}
		}

		copy(peReady, nextPE)
	}
	// Remaining deferred syncs run after the first layer's backward.
	flushPending(b.lastS1)
}

// finish appends the optimizer step and any explicit re-layout cost.
func (b *builder) finish(layers []LayerPlan) {
	extra := 0.0
	for _, lp := range layers {
		extra += lp.ExtraRelayoutTime
	}
	for dev := 0; dev < b.n; dev++ {
		id := b.eng.Compute("optimizer", dev, sim.StreamCompute, sim.CatOther,
			b.cfg.OptimizerStepTime+extra, b.lastS1[dev])
		b.lastS1[dev] = id
	}
}
