// Package topology models the physical training cluster: devices grouped
// into nodes, with distinct intra-node (NVLink) and inter-node (InfiniBand)
// bandwidths and per-device compute throughput.
//
// It provides the bw(i,j) and node(i) primitives used throughout the paper
// (Table 1) by the cost model, the planner and the simulator.
package topology

import (
	"errors"
	"fmt"
)

// Default hardware constants matching the paper's evaluation cluster
// (Sec. 5.1): 4 nodes x 8 A100-80GB, NVLink 300 GB/s unidirectional
// intra-node, InfiniBand 800 Gbps per node inter-node.
const (
	// DefaultIntraBW is the peak unidirectional NVLink bandwidth between
	// two GPUs in the same node, in bytes per second.
	DefaultIntraBW = 300e9

	// DefaultInterBW is the effective unidirectional inter-node bandwidth
	// available to a single GPU, in bytes per second. The cluster has
	// 800 Gbps (=100 GB/s) of InfiniBand per node shared by 8 GPUs.
	DefaultInterBW = 100e9 / 8

	// DefaultPeakFLOPS is the bf16 peak throughput of one A100, FLOP/s.
	DefaultPeakFLOPS = 312e12

	// DefaultMFU is the model FLOPs utilization assumed for dense GEMMs.
	DefaultMFU = 0.45

	// DefaultLatency is the base latency of launching one communication
	// operation (software + wire), in seconds.
	DefaultLatency = 12e-6

	// DefaultDeviceMemory is the HBM capacity of one device, in bytes.
	DefaultDeviceMemory = 80 << 30
)

// Topology describes a homogeneous cluster of NumNodes nodes with
// DevicesPerNode devices each. Devices are numbered 0..N()-1 in node-major
// order: device i lives on node i/DevicesPerNode.
type Topology struct {
	NumNodes       int
	DevicesPerNode int

	// IntraBW and InterBW are unidirectional point-to-point bandwidths in
	// bytes/s between devices on the same node and on different nodes.
	IntraBW float64
	InterBW float64

	// FLOPS is the effective per-device compute throughput in FLOP/s
	// (peak x utilization); the cost model's B_comp.
	FLOPS float64

	// Latency is the fixed startup cost of one communication operation.
	Latency float64

	// DeviceMemory is the per-device memory capacity in bytes.
	DeviceMemory int64

	// slowdown[i], if non-nil, scales the compute time of device i
	// (1.0 = nominal, 2.0 = twice as slow). Used for straggler injection.
	slowdown []float64
}

// New returns a topology with the default A100-cluster constants.
func New(numNodes, devicesPerNode int) *Topology {
	return &Topology{
		NumNodes:       numNodes,
		DevicesPerNode: devicesPerNode,
		IntraBW:        DefaultIntraBW,
		InterBW:        DefaultInterBW,
		FLOPS:          DefaultPeakFLOPS * DefaultMFU,
		Latency:        DefaultLatency,
		DeviceMemory:   DefaultDeviceMemory,
	}
}

// Default returns the paper's evaluation cluster: 4 nodes x 8 GPUs.
func Default() *Topology { return New(4, 8) }

// Validate reports whether the topology is well formed.
func (t *Topology) Validate() error {
	switch {
	case t.NumNodes <= 0:
		return errors.New("topology: NumNodes must be positive")
	case t.DevicesPerNode <= 0:
		return errors.New("topology: DevicesPerNode must be positive")
	case t.IntraBW <= 0 || t.InterBW <= 0:
		return errors.New("topology: bandwidths must be positive")
	case t.FLOPS <= 0:
		return errors.New("topology: FLOPS must be positive")
	case t.slowdown != nil && len(t.slowdown) != t.N():
		return fmt.Errorf("topology: slowdown vector has %d entries, want %d", len(t.slowdown), t.N())
	}
	return nil
}

// N returns the total number of devices in the cluster.
func (t *Topology) N() int { return t.NumNodes * t.DevicesPerNode }

// Node returns the node index hosting device dev.
func (t *Topology) Node(dev int) int { return dev / t.DevicesPerNode }

// SameNode reports whether devices i and j share a node.
func (t *Topology) SameNode(i, j int) bool { return t.Node(i) == t.Node(j) }

// Bandwidth returns the unidirectional point-to-point bandwidth bw(i,j) in
// bytes/s between devices i and j. Bandwidth from a device to itself is
// modelled as infinite (local copy), returned as +Inf-free large constant.
func (t *Topology) Bandwidth(i, j int) float64 {
	if i == j {
		// Local memory move: effectively free relative to network links.
		return t.IntraBW * 100
	}
	if t.SameNode(i, j) {
		return t.IntraBW
	}
	return t.InterBW
}

// MinBandwidth returns the smallest pairwise bandwidth among the given
// devices; the bottleneck link class for a ring collective over them.
func (t *Topology) MinBandwidth(devices []int) float64 {
	if len(devices) < 2 {
		return t.IntraBW
	}
	minBW := t.IntraBW
	for _, a := range devices {
		for _, b := range devices {
			if a == b {
				continue
			}
			if bw := t.Bandwidth(a, b); bw < minBW {
				minBW = bw
			}
		}
	}
	return minBW
}

// NodeDevices returns the device indices on the given node.
func (t *Topology) NodeDevices(node int) []int {
	out := make([]int, t.DevicesPerNode)
	for i := range out {
		out[i] = node*t.DevicesPerNode + i
	}
	return out
}

// Slowdown returns the compute slowdown factor of device dev (>= 1.0 means
// slower than nominal; 1.0 when no straggler injection is configured).
func (t *Topology) Slowdown(dev int) float64 {
	if t.slowdown == nil {
		return 1.0
	}
	return t.slowdown[dev]
}

// SetSlowdown marks device dev as a straggler with the given compute
// slowdown factor. Factors below 1 are rejected.
func (t *Topology) SetSlowdown(dev int, factor float64) error {
	if dev < 0 || dev >= t.N() {
		return fmt.Errorf("topology: device %d out of range [0,%d)", dev, t.N())
	}
	if factor < 1 {
		return fmt.Errorf("topology: slowdown factor %g < 1", factor)
	}
	if t.slowdown == nil {
		t.slowdown = make([]float64, t.N())
		for i := range t.slowdown {
			t.slowdown[i] = 1.0
		}
	}
	t.slowdown[dev] = factor
	return nil
}

// Clone returns a deep copy of the topology.
func (t *Topology) Clone() *Topology {
	cp := *t
	if t.slowdown != nil {
		cp.slowdown = append([]float64(nil), t.slowdown...)
	}
	return &cp
}

// String summarizes the cluster.
func (t *Topology) String() string {
	return fmt.Sprintf("%d nodes x %d GPUs (intra %.0f GB/s, inter %.1f GB/s, %.0f TFLOPS eff.)",
		t.NumNodes, t.DevicesPerNode, t.IntraBW/1e9, t.InterBW/1e9, t.FLOPS/1e12)
}
