// Package topology models the physical training cluster: devices grouped
// into nodes, with distinct intra-node (NVLink) and inter-node (InfiniBand)
// bandwidths and per-device compute throughput.
//
// It provides the bw(i,j) and node(i) primitives used throughout the paper
// (Table 1) by the cost model, the planner and the simulator.
package topology

import (
	"errors"
	"fmt"
)

// Default hardware constants matching the paper's evaluation cluster
// (Sec. 5.1): 4 nodes x 8 A100-80GB, NVLink 300 GB/s unidirectional
// intra-node, InfiniBand 800 Gbps per node inter-node.
const (
	// DefaultIntraBW is the peak unidirectional NVLink bandwidth between
	// two GPUs in the same node, in bytes per second.
	DefaultIntraBW = 300e9

	// DefaultInterBW is the effective unidirectional inter-node bandwidth
	// available to a single GPU, in bytes per second. The cluster has
	// 800 Gbps (=100 GB/s) of InfiniBand per node shared by 8 GPUs.
	DefaultInterBW = 100e9 / 8

	// DefaultPeakFLOPS is the bf16 peak throughput of one A100, FLOP/s.
	DefaultPeakFLOPS = 312e12

	// DefaultMFU is the model FLOPs utilization assumed for dense GEMMs.
	DefaultMFU = 0.45

	// DefaultLatency is the base latency of launching one communication
	// operation (software + wire), in seconds.
	DefaultLatency = 12e-6

	// DefaultDeviceMemory is the HBM capacity of one device, in bytes.
	DefaultDeviceMemory = 80 << 30
)

// Topology describes a homogeneous cluster of NumNodes nodes with
// DevicesPerNode devices each. Devices are numbered 0..N()-1 in node-major
// order: device i lives on node i/DevicesPerNode.
type Topology struct {
	NumNodes       int
	DevicesPerNode int

	// IntraBW and InterBW are unidirectional point-to-point bandwidths in
	// bytes/s between devices on the same node and on different nodes.
	IntraBW float64
	InterBW float64

	// FLOPS is the effective per-device compute throughput in FLOP/s
	// (peak x utilization); the cost model's B_comp.
	FLOPS float64

	// Latency is the fixed startup cost of one communication operation.
	Latency float64

	// DeviceMemory is the per-device memory capacity in bytes.
	DeviceMemory int64

	// slowdown[i], if non-nil, scales the compute time of device i
	// (1.0 = nominal, 2.0 = twice as slow). Used for straggler injection.
	slowdown []float64

	// available[i], if non-nil, marks whether device i is a live cluster
	// member. The device universe is fixed — N() never changes, so layout
	// and routing shapes stay valid across membership transitions — and
	// elasticity is expressed as masking: RemoveNode marks a node's
	// devices unavailable, AddNode re-activates them (a join is modelled
	// as bringing a masked/reserve node back online). nil means every
	// device is available.
	available []bool

	// flopsScale[i] and linkScale[i], if non-nil, are the heterogeneity
	// classes of device i: flopsScale scales its effective compute
	// throughput (1.0 = nominal, 0.5 = half speed) and linkScale its
	// point-to-point link bandwidth on both directions of every link it
	// terminates. nil means a homogeneous cluster.
	flopsScale []float64
	linkScale  []float64
}

// DeviceClass is a named heterogeneity class: the compute and link scaling
// a device degrades (or upgrades) to. FLOPSScale scales effective FLOP/s,
// LinkScale scales the bandwidth of every link the device terminates; both
// must be positive, 1.0 = nominal.
type DeviceClass struct {
	Name       string
	FLOPSScale float64
	LinkScale  float64
}

// DeviceClasses is the catalog of named classes the fault injector's
// degrade events (and SetDeviceClassByName) resolve against.
var DeviceClasses = []DeviceClass{
	{Name: "nominal", FLOPSScale: 1.0, LinkScale: 1.0},
	{Name: "degraded", FLOPSScale: 0.5, LinkScale: 1.0},
	{Name: "throttled", FLOPSScale: 0.25, LinkScale: 1.0},
	{Name: "slowlink", FLOPSScale: 1.0, LinkScale: 0.25},
	{Name: "crippled", FLOPSScale: 0.5, LinkScale: 0.5},
}

// ClassByName resolves a catalog class by name.
func ClassByName(name string) (DeviceClass, error) {
	for _, c := range DeviceClasses {
		if c.Name == name {
			return c, nil
		}
	}
	return DeviceClass{}, fmt.Errorf("topology: unknown device class %q", name)
}

// New returns a topology with the default A100-cluster constants.
func New(numNodes, devicesPerNode int) *Topology {
	return &Topology{
		NumNodes:       numNodes,
		DevicesPerNode: devicesPerNode,
		IntraBW:        DefaultIntraBW,
		InterBW:        DefaultInterBW,
		FLOPS:          DefaultPeakFLOPS * DefaultMFU,
		Latency:        DefaultLatency,
		DeviceMemory:   DefaultDeviceMemory,
	}
}

// Default returns the paper's evaluation cluster: 4 nodes x 8 GPUs.
func Default() *Topology { return New(4, 8) }

// Validate reports whether the topology is well formed.
func (t *Topology) Validate() error {
	switch {
	case t.NumNodes <= 0:
		return errors.New("topology: NumNodes must be positive")
	case t.DevicesPerNode <= 0:
		return errors.New("topology: DevicesPerNode must be positive")
	case t.IntraBW <= 0 || t.InterBW <= 0:
		return errors.New("topology: bandwidths must be positive")
	case t.FLOPS <= 0:
		return errors.New("topology: FLOPS must be positive")
	case t.slowdown != nil && len(t.slowdown) != t.N():
		return fmt.Errorf("topology: slowdown vector has %d entries, want %d", len(t.slowdown), t.N())
	case t.available != nil && len(t.available) != t.N():
		return fmt.Errorf("topology: availability mask has %d entries, want %d", len(t.available), t.N())
	case t.flopsScale != nil && len(t.flopsScale) != t.N():
		return fmt.Errorf("topology: FLOPS-scale vector has %d entries, want %d", len(t.flopsScale), t.N())
	case t.linkScale != nil && len(t.linkScale) != t.N():
		return fmt.Errorf("topology: link-scale vector has %d entries, want %d", len(t.linkScale), t.N())
	}
	for i, s := range t.flopsScale {
		if s <= 0 {
			return fmt.Errorf("topology: device %d has non-positive FLOPS scale %g", i, s)
		}
	}
	for i, s := range t.linkScale {
		if s <= 0 {
			return fmt.Errorf("topology: device %d has non-positive link scale %g", i, s)
		}
	}
	if t.available != nil && t.NumAvailable() == 0 {
		return errors.New("topology: no available devices")
	}
	return nil
}

// N returns the total number of devices in the cluster.
func (t *Topology) N() int { return t.NumNodes * t.DevicesPerNode }

// Node returns the node index hosting device dev.
func (t *Topology) Node(dev int) int { return dev / t.DevicesPerNode }

// SameNode reports whether devices i and j share a node.
func (t *Topology) SameNode(i, j int) bool { return t.Node(i) == t.Node(j) }

// Bandwidth returns the unidirectional point-to-point bandwidth bw(i,j) in
// bytes/s between devices i and j. Bandwidth from a device to itself is
// modelled as infinite (local copy), returned as +Inf-free large constant.
func (t *Topology) Bandwidth(i, j int) float64 {
	if i == j {
		// Local memory move: effectively free relative to network links.
		return t.IntraBW * 100
	}
	bw := t.InterBW
	if t.SameNode(i, j) {
		bw = t.IntraBW
	}
	if t.linkScale != nil {
		// A link runs at the slower endpoint's class, in both directions,
		// so bw(i,j) stays symmetric under heterogeneous link classes.
		s := t.linkScale[i]
		if t.linkScale[j] < s {
			s = t.linkScale[j]
		}
		bw *= s
	}
	return bw
}

// HasLinkClasses reports whether any device carries a non-nominal link
// class — the cost evaluators' cue to route bandwidth lookups through
// Bandwidth instead of the homogeneous Intra/Inter constants.
func (t *Topology) HasLinkClasses() bool { return t.linkScale != nil }

// MinBandwidth returns the smallest pairwise bandwidth among the given
// devices; the bottleneck link class for a ring collective over them.
func (t *Topology) MinBandwidth(devices []int) float64 {
	if len(devices) < 2 {
		return t.IntraBW
	}
	minBW := t.IntraBW
	for _, a := range devices {
		for _, b := range devices {
			if a == b {
				continue
			}
			if bw := t.Bandwidth(a, b); bw < minBW {
				minBW = bw
			}
		}
	}
	return minBW
}

// NodeDevices returns the device indices on the given node.
func (t *Topology) NodeDevices(node int) []int {
	out := make([]int, t.DevicesPerNode)
	for i := range out {
		out[i] = node*t.DevicesPerNode + i
	}
	return out
}

// Available reports whether device dev is a live cluster member (true
// when no membership transitions have been applied).
func (t *Topology) Available(dev int) bool {
	return t.available == nil || t.available[dev]
}

// NumAvailable returns the number of live devices — the planner's slot
// budget denominator under a degraded cluster.
func (t *Topology) NumAvailable() int {
	if t.available == nil {
		return t.N()
	}
	n := 0
	for _, ok := range t.available {
		if ok {
			n++
		}
	}
	return n
}

// NodeAlive reports whether node has at least one available device —
// Alg. 1's min-replica node restriction only considers alive nodes.
func (t *Topology) NodeAlive(node int) bool {
	if t.available == nil {
		return true
	}
	base := node * t.DevicesPerNode
	for d := base; d < base+t.DevicesPerNode; d++ {
		if t.available[d] {
			return true
		}
	}
	return false
}

// ensureAvailable lazily materializes the availability mask.
func (t *Topology) ensureAvailable() {
	if t.available == nil {
		t.available = make([]bool, t.N())
		for i := range t.available {
			t.available[i] = true
		}
	}
}

// RemoveNode masks every device of the given node as failed. The device
// universe (and therefore N(), Node(i) and every layout shape) is
// unchanged; the node's devices simply stop being placement targets and
// capacity. Removing the last alive node is rejected — a cluster with no
// compute cannot host any layout.
func (t *Topology) RemoveNode(node int) error {
	if node < 0 || node >= t.NumNodes {
		return fmt.Errorf("topology: node %d out of range [0,%d)", node, t.NumNodes)
	}
	if !t.NodeAlive(node) {
		return fmt.Errorf("topology: node %d is already removed", node)
	}
	alive := 0
	for nd := 0; nd < t.NumNodes; nd++ {
		if t.NodeAlive(nd) {
			alive++
		}
	}
	if alive == 1 {
		return fmt.Errorf("topology: cannot remove node %d, it is the last alive node", node)
	}
	t.ensureAvailable()
	base := node * t.DevicesPerNode
	for d := base; d < base+t.DevicesPerNode; d++ {
		t.available[d] = false
	}
	return nil
}

// AddNode re-activates every device of the given node — a node join. A
// join is modelled as bringing a masked (failed or reserve) node back
// online, so the node must currently be removed; its devices rejoin at
// their configured classes.
func (t *Topology) AddNode(node int) error {
	if node < 0 || node >= t.NumNodes {
		return fmt.Errorf("topology: node %d out of range [0,%d)", node, t.NumNodes)
	}
	if t.NodeAlive(node) {
		return fmt.Errorf("topology: node %d is already alive", node)
	}
	base := node * t.DevicesPerNode
	for d := base; d < base+t.DevicesPerNode; d++ {
		t.available[d] = true
	}
	return nil
}

// SetDeviceClass assigns device dev a heterogeneity class (compute and
// link scaling). Classing a removed device is rejected: degrade events
// target live hardware.
func (t *Topology) SetDeviceClass(dev int, class DeviceClass) error {
	if dev < 0 || dev >= t.N() {
		return fmt.Errorf("topology: device %d out of range [0,%d)", dev, t.N())
	}
	if !t.Available(dev) {
		return fmt.Errorf("topology: device %d is not available", dev)
	}
	if class.FLOPSScale <= 0 || class.LinkScale <= 0 {
		return fmt.Errorf("topology: device class %q has non-positive scales (%g, %g)", class.Name, class.FLOPSScale, class.LinkScale)
	}
	if t.flopsScale == nil {
		t.flopsScale = make([]float64, t.N())
		t.linkScale = make([]float64, t.N())
		for i := range t.flopsScale {
			t.flopsScale[i] = 1.0
			t.linkScale[i] = 1.0
		}
	}
	t.flopsScale[dev] = class.FLOPSScale
	t.linkScale[dev] = class.LinkScale
	return nil
}

// SetDeviceClassByName is SetDeviceClass resolved through the catalog.
func (t *Topology) SetDeviceClassByName(dev int, name string) error {
	class, err := ClassByName(name)
	if err != nil {
		return err
	}
	return t.SetDeviceClass(dev, class)
}

// ComputeFactor returns the combined compute-time multiplier of device
// dev: the straggler slowdown divided by the FLOPS class scale (a device
// at half FLOPS takes twice as long). The cost model and the executor
// multiply per-device compute time by this. An unavailable device reports
// 1.0: it carries no expert tokens, and its residual (shape-keeping)
// tasks in the simulated graph must not drag a stale degradation class
// onto the critical path.
func (t *Topology) ComputeFactor(dev int) float64 {
	if !t.Available(dev) {
		return 1.0
	}
	f := t.Slowdown(dev)
	if t.flopsScale != nil {
		f /= t.flopsScale[dev]
	}
	return f
}

// Slowdown returns the compute slowdown factor of device dev (>= 1.0 means
// slower than nominal; 1.0 when no straggler injection is configured).
func (t *Topology) Slowdown(dev int) float64 {
	if t.slowdown == nil {
		return 1.0
	}
	return t.slowdown[dev]
}

// SetSlowdown marks device dev as a straggler with the given compute
// slowdown factor. Factors below 1 are rejected.
func (t *Topology) SetSlowdown(dev int, factor float64) error {
	if dev < 0 || dev >= t.N() {
		return fmt.Errorf("topology: device %d out of range [0,%d)", dev, t.N())
	}
	if !t.Available(dev) {
		return fmt.Errorf("topology: device %d is not available", dev)
	}
	if factor < 1 {
		return fmt.Errorf("topology: slowdown factor %g < 1", factor)
	}
	if t.slowdown == nil {
		t.slowdown = make([]float64, t.N())
		for i := range t.slowdown {
			t.slowdown[i] = 1.0
		}
	}
	t.slowdown[dev] = factor
	return nil
}

// State is the mutable runtime state of a topology — the availability
// mask and the straggler/heterogeneity vectors fault events accumulate.
// The static shape (node counts, bandwidths) is configuration, not state:
// a restored topology is rebuilt from the same configuration and then
// handed its exported State. nil slices mean "never touched", exactly as
// in the live struct, so export→restore is an identity.
type State struct {
	Available  []bool    `json:"available,omitempty"`
	Slowdown   []float64 `json:"slowdown,omitempty"`
	FLOPSScale []float64 `json:"flops_scale,omitempty"`
	LinkScale  []float64 `json:"link_scale,omitempty"`
}

// ExportState snapshots the topology's mutable state.
func (t *Topology) ExportState() State {
	var s State
	if t.available != nil {
		s.Available = append([]bool(nil), t.available...)
	}
	if t.slowdown != nil {
		s.Slowdown = append([]float64(nil), t.slowdown...)
	}
	if t.flopsScale != nil {
		s.FLOPSScale = append([]float64(nil), t.flopsScale...)
	}
	if t.linkScale != nil {
		s.LinkScale = append([]float64(nil), t.linkScale...)
	}
	return s
}

// RestoreState replaces the topology's mutable state with an exported
// snapshot and re-validates the result, so a corrupt snapshot cannot
// smuggle in an impossible cluster (zero live devices, non-positive
// scales).
func (t *Topology) RestoreState(s State) error {
	cp := t.Clone()
	cp.available, cp.slowdown, cp.flopsScale, cp.linkScale = nil, nil, nil, nil
	if s.Available != nil {
		cp.available = append([]bool(nil), s.Available...)
	}
	if s.Slowdown != nil {
		cp.slowdown = append([]float64(nil), s.Slowdown...)
	}
	if s.FLOPSScale != nil {
		cp.flopsScale = append([]float64(nil), s.FLOPSScale...)
	}
	if s.LinkScale != nil {
		cp.linkScale = append([]float64(nil), s.LinkScale...)
	}
	if (cp.flopsScale == nil) != (cp.linkScale == nil) {
		return errors.New("topology: state has only one of the heterogeneity vectors")
	}
	if err := cp.Validate(); err != nil {
		return err
	}
	t.available, t.slowdown, t.flopsScale, t.linkScale = cp.available, cp.slowdown, cp.flopsScale, cp.linkScale
	return nil
}

// Clone returns a deep copy of the topology.
func (t *Topology) Clone() *Topology {
	cp := *t
	if t.slowdown != nil {
		cp.slowdown = append([]float64(nil), t.slowdown...)
	}
	if t.available != nil {
		cp.available = append([]bool(nil), t.available...)
	}
	if t.flopsScale != nil {
		cp.flopsScale = append([]float64(nil), t.flopsScale...)
	}
	if t.linkScale != nil {
		cp.linkScale = append([]float64(nil), t.linkScale...)
	}
	return &cp
}

// String summarizes the cluster.
func (t *Topology) String() string {
	s := fmt.Sprintf("%d nodes x %d GPUs (intra %.0f GB/s, inter %.1f GB/s, %.0f TFLOPS eff.)",
		t.NumNodes, t.DevicesPerNode, t.IntraBW/1e9, t.InterBW/1e9, t.FLOPS/1e12)
	if avail := t.NumAvailable(); avail < t.N() {
		s += fmt.Sprintf(", %d/%d GPUs available", avail, t.N())
	}
	return s
}
