package topology

import (
	"strings"
	"testing"
)

func TestRemoveAddNode(t *testing.T) {
	topo := New(4, 8)
	if got := topo.NumAvailable(); got != 32 {
		t.Fatalf("NumAvailable() = %d, want 32", got)
	}
	if err := topo.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if got := topo.NumAvailable(); got != 24 {
		t.Errorf("NumAvailable() after RemoveNode = %d, want 24", got)
	}
	for d := 8; d < 16; d++ {
		if topo.Available(d) {
			t.Errorf("device %d still available after its node was removed", d)
		}
	}
	if topo.NodeAlive(1) {
		t.Error("NodeAlive(1) after RemoveNode(1)")
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("degraded topology fails Validate: %v", err)
	}
	// The device universe is fixed: shapes must not change.
	if topo.N() != 32 || topo.Node(12) != 1 {
		t.Error("RemoveNode changed the device universe")
	}

	// Remove-then-re-add round-trips to a fully available cluster.
	if err := topo.AddNode(1); err != nil {
		t.Fatal(err)
	}
	if got := topo.NumAvailable(); got != 32 {
		t.Errorf("NumAvailable() after AddNode = %d, want 32", got)
	}
	if !topo.NodeAlive(1) || !topo.Available(12) {
		t.Error("AddNode did not restore availability")
	}
}

func TestRemoveNodeErrors(t *testing.T) {
	topo := New(2, 4)
	if err := topo.RemoveNode(-1); err == nil {
		t.Error("RemoveNode(-1) accepted")
	}
	if err := topo.RemoveNode(2); err == nil {
		t.Error("RemoveNode past range accepted")
	}
	if err := topo.RemoveNode(0); err != nil {
		t.Fatal(err)
	}
	if err := topo.RemoveNode(0); err == nil {
		t.Error("double RemoveNode(0) accepted")
	}
	// Removing the last alive node must fail: a cluster with no compute
	// cannot host any layout.
	if err := topo.RemoveNode(1); err == nil {
		t.Error("removing the last alive node accepted")
	}
	if err := topo.AddNode(1); err == nil {
		t.Error("AddNode on an alive node accepted")
	}
	if err := topo.AddNode(0); err != nil {
		t.Fatal(err)
	}
}

func TestSlowdownOnRemovedDevice(t *testing.T) {
	topo := New(2, 4)
	if err := topo.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if err := topo.SetSlowdown(5, 2); err == nil {
		t.Error("SetSlowdown on a removed device accepted")
	}
	if err := topo.SetDeviceClass(5, DeviceClasses[1]); err == nil {
		t.Error("SetDeviceClass on a removed device accepted")
	}
	if err := topo.SetSlowdown(1, 2); err != nil {
		t.Errorf("SetSlowdown on a surviving device rejected: %v", err)
	}
}

func TestDeviceClasses(t *testing.T) {
	topo := New(2, 4)
	if got := topo.ComputeFactor(3); got != 1.0 {
		t.Errorf("nominal ComputeFactor = %g, want 1", got)
	}
	if err := topo.SetDeviceClassByName(3, "degraded"); err != nil {
		t.Fatal(err)
	}
	if got := topo.ComputeFactor(3); got != 2.0 {
		t.Errorf("degraded (0.5 FLOPS) ComputeFactor = %g, want 2", got)
	}
	// Straggler slowdown composes with the FLOPS class.
	if err := topo.SetSlowdown(3, 2); err != nil {
		t.Fatal(err)
	}
	if got := topo.ComputeFactor(3); got != 4.0 {
		t.Errorf("composed ComputeFactor = %g, want 4", got)
	}
	if _, err := ClassByName("no-such-class"); err == nil {
		t.Error("ClassByName accepted an unknown class")
	}
	if err := topo.SetDeviceClass(0, DeviceClass{Name: "bad", FLOPSScale: 0}); err == nil {
		t.Error("SetDeviceClass accepted a non-positive FLOPS scale")
	}
}

func TestBandwidthLinkClasses(t *testing.T) {
	topo := New(2, 4)
	intra, inter := topo.Bandwidth(0, 1), topo.Bandwidth(0, 4)
	if topo.HasLinkClasses() {
		t.Error("HasLinkClasses() on a homogeneous cluster")
	}
	if err := topo.SetDeviceClassByName(1, "slowlink"); err != nil {
		t.Fatal(err)
	}
	if !topo.HasLinkClasses() {
		t.Error("HasLinkClasses() false after slowlink class")
	}
	// The link runs at the slower endpoint's class, symmetrically.
	if got, want := topo.Bandwidth(0, 1), intra*0.25; got != want {
		t.Errorf("Bandwidth(0,1) = %g, want %g", got, want)
	}
	if topo.Bandwidth(0, 1) != topo.Bandwidth(1, 0) {
		t.Error("bandwidth asymmetric under link classes")
	}
	if got, want := topo.Bandwidth(1, 4), inter*0.25; got != want {
		t.Errorf("Bandwidth(1,4) = %g, want %g", got, want)
	}
	if topo.Bandwidth(1, 4) != topo.Bandwidth(4, 1) {
		t.Error("inter-node bandwidth asymmetric under link classes")
	}
	// Links not touching the classed device are unchanged.
	if got := topo.Bandwidth(2, 3); got != intra {
		t.Errorf("Bandwidth(2,3) = %g, want %g", got, intra)
	}
	// Restoring the nominal class round-trips the bandwidth.
	if err := topo.SetDeviceClassByName(1, "nominal"); err != nil {
		t.Fatal(err)
	}
	if got := topo.Bandwidth(0, 1); got != intra {
		t.Errorf("Bandwidth(0,1) after nominal restore = %g, want %g", got, intra)
	}
}

func TestCloneDeepCopiesElasticState(t *testing.T) {
	topo := New(2, 4)
	if err := topo.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if err := topo.SetDeviceClassByName(0, "degraded"); err != nil {
		t.Fatal(err)
	}
	cp := topo.Clone()
	if err := cp.AddNode(1); err != nil {
		t.Fatal(err)
	}
	if err := cp.SetDeviceClassByName(1, "throttled"); err != nil {
		t.Fatal(err)
	}
	if topo.Available(4) {
		t.Error("Clone shares availability state with original")
	}
	if topo.ComputeFactor(1) != 1.0 {
		t.Error("Clone shares class state with original")
	}
	if !strings.Contains(topo.String(), "4/8 GPUs available") {
		t.Errorf("String() = %q, missing availability", topo.String())
	}
}

func TestValidateElasticVectors(t *testing.T) {
	topo := New(2, 4)
	topo.available = make([]bool, 3)
	if err := topo.Validate(); err == nil {
		t.Error("Validate accepted a short availability mask")
	}
	topo.available = make([]bool, 8) // all false: no compute left
	if err := topo.Validate(); err == nil {
		t.Error("Validate accepted a cluster with no available devices")
	}
	topo = New(2, 4)
	topo.flopsScale = []float64{1, 1, 1, 1, 1, 1, 1, -1}
	if err := topo.Validate(); err == nil {
		t.Error("Validate accepted a negative FLOPS scale")
	}
}
