package topology

import (
	"encoding/json"
	"testing"
)

// TestStateRoundTrip: a fresh topology built from the same configuration
// and handed an exported State must be behaviorally identical to the
// original — availability, stragglers, heterogeneity, and the bandwidths
// they scale — including through a JSON round trip, which is how the
// journal's compaction checkpoint carries it.
func TestStateRoundTrip(t *testing.T) {
	orig := New(4, 4)
	if err := orig.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	if err := orig.SetSlowdown(1, 1.8); err != nil {
		t.Fatal(err)
	}
	if err := orig.SetDeviceClassByName(5, "crippled"); err != nil {
		t.Fatal(err)
	}

	b, err := json.Marshal(orig.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	restored := New(4, 4)
	if err := restored.RestoreState(st); err != nil {
		t.Fatal(err)
	}

	if got, want := restored.NumAvailable(), orig.NumAvailable(); got != want {
		t.Fatalf("restored NumAvailable = %d, want %d", got, want)
	}
	for d := 0; d < orig.N(); d++ {
		if restored.Available(d) != orig.Available(d) {
			t.Errorf("device %d: available %v, want %v", d, restored.Available(d), orig.Available(d))
		}
		if restored.Slowdown(d) != orig.Slowdown(d) {
			t.Errorf("device %d: slowdown %v, want %v", d, restored.Slowdown(d), orig.Slowdown(d))
		}
		if restored.ComputeFactor(d) != orig.ComputeFactor(d) {
			t.Errorf("device %d: compute factor %v, want %v", d, restored.ComputeFactor(d), orig.ComputeFactor(d))
		}
		for e := 0; e < orig.N(); e++ {
			if restored.Bandwidth(d, e) != orig.Bandwidth(d, e) {
				t.Errorf("link %d-%d: bandwidth %v, want %v", d, e, restored.Bandwidth(d, e), orig.Bandwidth(d, e))
			}
		}
	}

	// An untouched topology exports all-nil state, and restoring it onto a
	// mutated one clears the mutations.
	if err := restored.RestoreState(New(4, 4).ExportState()); err != nil {
		t.Fatal(err)
	}
	if restored.NumAvailable() != restored.N() || restored.HasLinkClasses() {
		t.Error("restoring a pristine state did not clear the mutations")
	}
}

// TestStateRestoreRejectsCorrupt: a snapshot that encodes an impossible
// cluster is rejected and leaves the topology untouched.
func TestStateRestoreRejectsCorrupt(t *testing.T) {
	topo := New(2, 2)
	if err := topo.SetSlowdown(0, 2.0); err != nil {
		t.Fatal(err)
	}
	cases := map[string]State{
		"wrong-length mask":        {Available: []bool{true}},
		"all devices dead":         {Available: make([]bool, 4)},
		"non-positive flops scale": {FLOPSScale: []float64{1, 1, 0, 1}, LinkScale: []float64{1, 1, 1, 1}},
		"one-sided heterogeneity":  {FLOPSScale: []float64{1, 1, 1, 1}},
	}
	for name, st := range cases {
		if err := topo.RestoreState(st); err == nil {
			t.Errorf("%s: not rejected", name)
		}
	}
	if topo.Slowdown(0) != 2.0 || topo.NumAvailable() != 4 {
		t.Error("rejected restore mutated the topology")
	}
}
