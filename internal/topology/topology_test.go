package topology

import (
	"strings"
	"testing"
)

func TestDefaultShape(t *testing.T) {
	topo := Default()
	if got := topo.N(); got != 32 {
		t.Fatalf("N() = %d, want 32", got)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if topo.NumNodes != 4 || topo.DevicesPerNode != 8 {
		t.Fatalf("default cluster is %dx%d, want 4x8", topo.NumNodes, topo.DevicesPerNode)
	}
}

func TestNodeMapping(t *testing.T) {
	topo := New(4, 8)
	cases := []struct{ dev, node int }{
		{0, 0}, {7, 0}, {8, 1}, {15, 1}, {16, 2}, {31, 3},
	}
	for _, c := range cases {
		if got := topo.Node(c.dev); got != c.node {
			t.Errorf("Node(%d) = %d, want %d", c.dev, got, c.node)
		}
	}
	if !topo.SameNode(0, 7) {
		t.Error("devices 0 and 7 should share node 0")
	}
	if topo.SameNode(7, 8) {
		t.Error("devices 7 and 8 should not share a node")
	}
}

func TestBandwidthClasses(t *testing.T) {
	topo := Default()
	intra := topo.Bandwidth(0, 1)
	inter := topo.Bandwidth(0, 8)
	if intra != DefaultIntraBW {
		t.Errorf("intra bandwidth = %g, want %g", intra, DefaultIntraBW)
	}
	if inter != DefaultInterBW {
		t.Errorf("inter bandwidth = %g, want %g", inter, DefaultInterBW)
	}
	if intra <= inter {
		t.Error("intra-node bandwidth must exceed inter-node bandwidth")
	}
	if self := topo.Bandwidth(3, 3); self <= intra {
		t.Error("self bandwidth should dwarf the network")
	}
}

func TestMinBandwidth(t *testing.T) {
	topo := Default()
	if got := topo.MinBandwidth([]int{0, 1, 2}); got != DefaultIntraBW {
		t.Errorf("intra-node group min bandwidth = %g, want %g", got, DefaultIntraBW)
	}
	if got := topo.MinBandwidth([]int{0, 8, 16}); got != DefaultInterBW {
		t.Errorf("cross-node group min bandwidth = %g, want %g", got, DefaultInterBW)
	}
	if got := topo.MinBandwidth([]int{5}); got != DefaultIntraBW {
		t.Errorf("singleton group min bandwidth = %g, want intra default", got)
	}
}

func TestNodeDevices(t *testing.T) {
	topo := New(2, 4)
	got := topo.NodeDevices(1)
	want := []int{4, 5, 6, 7}
	if len(got) != len(want) {
		t.Fatalf("NodeDevices(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("NodeDevices(1) = %v, want %v", got, want)
		}
	}
}

func TestSlowdown(t *testing.T) {
	topo := New(1, 4)
	if topo.Slowdown(2) != 1.0 {
		t.Error("default slowdown should be 1.0")
	}
	if err := topo.SetSlowdown(2, 1.5); err != nil {
		t.Fatalf("SetSlowdown: %v", err)
	}
	if topo.Slowdown(2) != 1.5 {
		t.Errorf("Slowdown(2) = %g, want 1.5", topo.Slowdown(2))
	}
	if topo.Slowdown(0) != 1.0 {
		t.Error("unaffected device slowdown changed")
	}
	if err := topo.SetSlowdown(9, 2); err == nil {
		t.Error("SetSlowdown on out-of-range device should fail")
	}
	if err := topo.SetSlowdown(1, 0.5); err == nil {
		t.Error("SetSlowdown below 1 should fail")
	}
	if err := topo.Validate(); err != nil {
		t.Errorf("Validate after slowdown: %v", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	topo := New(1, 4)
	if err := topo.SetSlowdown(1, 2); err != nil {
		t.Fatal(err)
	}
	cp := topo.Clone()
	if err := cp.SetSlowdown(1, 3); err != nil {
		t.Fatal(err)
	}
	if topo.Slowdown(1) != 2 {
		t.Error("Clone shares slowdown state with original")
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Topology{
		{NumNodes: 0, DevicesPerNode: 8, IntraBW: 1, InterBW: 1, FLOPS: 1},
		{NumNodes: 4, DevicesPerNode: 0, IntraBW: 1, InterBW: 1, FLOPS: 1},
		{NumNodes: 4, DevicesPerNode: 8, IntraBW: 0, InterBW: 1, FLOPS: 1},
		{NumNodes: 4, DevicesPerNode: 8, IntraBW: 1, InterBW: 1, FLOPS: 0},
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("case %d: Validate() accepted invalid topology", i)
		}
	}
}

func TestString(t *testing.T) {
	s := Default().String()
	if !strings.Contains(s, "4 nodes") || !strings.Contains(s, "8 GPUs") {
		t.Errorf("String() = %q, missing cluster shape", s)
	}
}
