package planner

import (
	"fmt"
	"math/rand"
	"sync"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// SolverOptions configures the expert layout tuner (Alg. 2).
type SolverOptions struct {
	// Epsilon is |ε|: the size of the candidate replica-scheme set. The
	// first two candidates are the priority-queue proportional allocation
	// and the even allocation; further candidates are random perturbations
	// of set members. The paper fixes |ε|=2 in its evaluation (Sec. 5.4).
	Epsilon int

	// DisablePQ and DisableEven drop the corresponding base scheme from
	// the candidate set — the incomplete solvers of the Fig. 12 ablation
	// ('no_pq' and 'no_even').
	DisablePQ   bool
	DisableEven bool

	// Parallelism bounds the goroutines evaluating independent candidate
	// schemes: values below 2 evaluate serially. The solved strategy is
	// identical at any setting — candidates are scored independently and
	// the winner is picked by (cost, candidate index).
	Parallelism int

	Seed int64
}

// DefaultSolverOptions matches the evaluated configuration: |ε| = 2.
func DefaultSolverOptions() SolverOptions { return SolverOptions{Epsilon: 2} }

// Solution is the outcome of one Alg. 2 run.
type Solution struct {
	Layout   *Layout
	Dispatch *Dispatch
	Cost     float64
	// Candidates is the number of replica schemes evaluated.
	Candidates int
}

// Solver runs the expert layout tuner.
type Solver struct {
	Topo   *topology.Topology
	C      int
	Params CostParams
	Opts   SolverOptions
	rng    *rand.Rand
	donors []int // perturb scratch
}

// NewSolver builds a solver for the topology and capacity.
func NewSolver(topo *topology.Topology, c int, params CostParams, opts SolverOptions) *Solver {
	if opts.Epsilon <= 0 {
		opts.Epsilon = 2
	}
	return &Solver{Topo: topo, C: c, Params: params, Opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Solve implements Alg. 2: build the candidate replica-scheme set, run
// expert relocation (Alg. 1) on each, score with the Eq. 2 cost model, and
// return the best strategy.
//
// Scoring is incremental: each candidate layout is evaluated by streaming
// the lite-routing assignments through the cost accumulators
// (evalLayoutCost), so only the winning candidate ever materializes a full
// Dispatch. Distinct candidates are independent and evaluate concurrently
// when Opts.Parallelism allows; duplicate replica schemes (perturbation is
// not guaranteed to produce fresh ones) are scored once.
func (s *Solver) Solve(r *trace.RoutingMatrix) (*Solution, error) {
	n := s.Topo.N()
	if r.N != n {
		return nil, fmt.Errorf("planner: routing matrix for %d devices, topology has %d", r.N, n)
	}
	expertLoad := r.ExpertLoads()

	var set [][]int
	if !s.Opts.DisablePQ {
		pq, err := ReplicaAllocation(expertLoad, n, s.C)
		if err != nil {
			return nil, err
		}
		set = append(set, pq)
	}
	if !s.Opts.DisableEven {
		even, err := EvenAllocation(expertLoad, n, s.C)
		if err != nil {
			return nil, err
		}
		set = append(set, even)
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("planner: both base replica schemes disabled")
	}
	for len(set) < s.Opts.Epsilon {
		base := set[s.rng.Intn(len(set))]
		set = append(set, s.perturb(base))
	}

	// Duplicate schemes inherit the score of their first occurrence.
	dup := make([]int, len(set))
	seen := make(map[string]int, len(set))
	var keyBuf []byte
	for i, reps := range set {
		keyBuf = keyBuf[:0]
		for _, v := range reps {
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		if first, ok := seen[string(keyBuf)]; ok {
			dup[i] = first
		} else {
			seen[string(keyBuf)] = i
			dup[i] = -1
		}
	}

	layouts := make([]*Layout, len(set))
	costs := make([]float64, len(set))
	errs := make([]error, len(set))
	eval := func(i int) {
		if dup[i] >= 0 {
			return
		}
		layout, err := ExpertRelocation(set[i], expertLoad, s.Topo, s.C)
		if err != nil {
			errs[i] = err
			return
		}
		sc := routePool.Get().(*routeScratch)
		costs[i] = evalLayoutCost(r, layout, s.Topo, s.Params, sc)
		routePool.Put(sc)
		layouts[i] = layout
	}
	if s.Opts.Parallelism > 1 && len(seen) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, s.Opts.Parallelism)
		for i := range set {
			if dup[i] >= 0 {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				eval(i)
				<-sem
			}(i)
		}
		wg.Wait()
	} else {
		for i := range set {
			eval(i)
		}
	}
	for i := range set {
		if dup[i] >= 0 {
			layouts[i], costs[i], errs[i] = layouts[dup[i]], costs[dup[i]], errs[dup[i]]
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
	}

	bi := 0
	for i := 1; i < len(set); i++ {
		if costs[i] < costs[bi] {
			bi = i
		}
	}
	return &Solution{
		Layout:     layouts[bi],
		Dispatch:   LiteRouting(r, layouts[bi], s.Topo),
		Cost:       costs[bi],
		Candidates: len(set),
	}, nil
}

// perturb moves one replica from a random multi-replica expert to a random
// other expert, preserving the total slot count and the one-replica
// minimum (Alg. 2 lines 5-7).
func (s *Solver) perturb(reps []int) []int {
	out := append([]int(nil), reps...)
	donors := s.donors[:0]
	for j, v := range out {
		if v > 1 {
			donors = append(donors, j)
		}
	}
	s.donors = donors
	if len(donors) == 0 {
		return out
	}
	from := donors[s.rng.Intn(len(donors))]
	to := s.rng.Intn(len(out))
	for to == from && len(out) > 1 {
		to = s.rng.Intn(len(out))
	}
	out[from]--
	out[to]++
	return out
}
