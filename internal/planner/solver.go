package planner

import (
	"fmt"
	"math/rand"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// SolverOptions configures the expert layout tuner (Alg. 2).
type SolverOptions struct {
	// Epsilon is |ε|: the size of the candidate replica-scheme set. The
	// first two candidates are the priority-queue proportional allocation
	// and the even allocation; further candidates are random perturbations
	// of set members. The paper fixes |ε|=2 in its evaluation (Sec. 5.4).
	Epsilon int

	// DisablePQ and DisableEven drop the corresponding base scheme from
	// the candidate set — the incomplete solvers of the Fig. 12 ablation
	// ('no_pq' and 'no_even').
	DisablePQ   bool
	DisableEven bool

	Seed int64
}

// DefaultSolverOptions matches the evaluated configuration: |ε| = 2.
func DefaultSolverOptions() SolverOptions { return SolverOptions{Epsilon: 2} }

// Solution is the outcome of one Alg. 2 run.
type Solution struct {
	Layout   *Layout
	Dispatch *Dispatch
	Cost     float64
	// Candidates is the number of replica schemes evaluated.
	Candidates int
}

// Solver runs the expert layout tuner.
type Solver struct {
	Topo   *topology.Topology
	C      int
	Params CostParams
	Opts   SolverOptions
	rng    *rand.Rand
}

// NewSolver builds a solver for the topology and capacity.
func NewSolver(topo *topology.Topology, c int, params CostParams, opts SolverOptions) *Solver {
	if opts.Epsilon <= 0 {
		opts.Epsilon = 2
	}
	return &Solver{Topo: topo, C: c, Params: params, Opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Solve implements Alg. 2: build the candidate replica-scheme set, run
// expert relocation (Alg. 1) and lite routing (Alg. 3) on each, score with
// the Eq. 2 cost model, and return the best strategy.
func (s *Solver) Solve(r *trace.RoutingMatrix) (*Solution, error) {
	n := s.Topo.N()
	if r.N != n {
		return nil, fmt.Errorf("planner: routing matrix for %d devices, topology has %d", r.N, n)
	}
	expertLoad := r.ExpertLoads()

	var set [][]int
	if !s.Opts.DisablePQ {
		pq, err := ReplicaAllocation(expertLoad, n, s.C)
		if err != nil {
			return nil, err
		}
		set = append(set, pq)
	}
	if !s.Opts.DisableEven {
		even, err := EvenAllocation(expertLoad, n, s.C)
		if err != nil {
			return nil, err
		}
		set = append(set, even)
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("planner: both base replica schemes disabled")
	}
	for len(set) < s.Opts.Epsilon {
		base := set[s.rng.Intn(len(set))]
		set = append(set, s.perturb(base))
	}

	best := &Solution{Cost: -1, Candidates: len(set)}
	for _, reps := range set {
		layout, err := ExpertRelocation(reps, expertLoad, s.Topo, s.C)
		if err != nil {
			return nil, err
		}
		dispatch := LiteRouting(r, layout, s.Topo)
		cost := TimeCost(dispatch, s.Topo, s.Params)
		if best.Cost < 0 || cost < best.Cost {
			best.Layout = layout
			best.Dispatch = dispatch
			best.Cost = cost
		}
	}
	return best, nil
}

// perturb moves one replica from a random multi-replica expert to a random
// other expert, preserving the total slot count and the one-replica
// minimum (Alg. 2 lines 5-7).
func (s *Solver) perturb(reps []int) []int {
	out := append([]int(nil), reps...)
	var donors []int
	for j, v := range out {
		if v > 1 {
			donors = append(donors, j)
		}
	}
	if len(donors) == 0 {
		return out
	}
	from := donors[s.rng.Intn(len(donors))]
	to := s.rng.Intn(len(out))
	for to == from && len(out) > 1 {
		to = s.rng.Intn(len(out))
	}
	out[from]--
	out[to]++
	return out
}
