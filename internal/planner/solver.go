package planner

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sync"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// SolverOptions configures the expert layout tuner (Alg. 2).
type SolverOptions struct {
	// Epsilon is |ε|: the size of the candidate replica-scheme set. The
	// first two candidates are the priority-queue proportional allocation
	// and the even allocation; further candidates are random perturbations
	// of set members. The paper fixes |ε|=2 in its evaluation (Sec. 5.4).
	Epsilon int

	// DisablePQ and DisableEven drop the corresponding base scheme from
	// the candidate set — the incomplete solvers of the Fig. 12 ablation
	// ('no_pq' and 'no_even').
	DisablePQ   bool
	DisableEven bool

	// Parallelism bounds the goroutines evaluating independent candidate
	// schemes: values below 2 evaluate serially. The solved strategy is
	// identical at any setting — candidates are scored independently and
	// the winner is picked by (cost, candidate index).
	Parallelism int

	Seed int64
}

// DefaultSolverOptions matches the evaluated configuration: |ε| = 2.
func DefaultSolverOptions() SolverOptions { return SolverOptions{Epsilon: 2} }

// Solution is the outcome of one Alg. 2 run.
type Solution struct {
	Layout *Layout
	Cost   float64
	// Candidates is the number of replica schemes evaluated.
	Candidates int

	// Migrations counts the replicas the chosen layout restores onto
	// devices that did not host them in the warm start's previous layout,
	// and MigrationTime the seconds charged for moving them (both 0 for
	// cold solves).
	Migrations    int
	MigrationTime float64

	// The token dispatch is materialized lazily: the online engine only
	// consumes the layout (lite routing runs per micro-batch against the
	// live routing), so building the full strategy S inside the solve
	// would be pure overhead on its hot path.
	r        *trace.RoutingMatrix
	topo     *topology.Topology
	dispatch *Dispatch
}

// Dispatch returns the Alg. 3 lite-routing token dispatch of the solved
// layout against the routing matrix the solve scored, building it on first
// use. Not safe for concurrent first calls, and the routing matrix must
// still hold the contents the solve scored: callers that reuse matrices in
// place (Generator.StepInto) must take the dispatch before overwriting
// them, or the lazily-built dispatch will describe the new routing while
// Cost describes the old.
func (s *Solution) Dispatch() *Dispatch {
	if s.dispatch == nil && s.r != nil {
		s.dispatch = LiteRouting(s.r, s.Layout, s.topo)
	}
	return s.dispatch
}

// AttachDispatch primes the lazily-built dispatch cache; reference solvers
// that refine their own token routing (internal/exact) use it to return
// the refined strategy through the same Solution shape.
func (s *Solution) AttachDispatch(d *Dispatch) { s.dispatch = d }

// Solver runs the expert layout tuner.
type Solver struct {
	Topo   *topology.Topology
	C      int
	Params CostParams
	Opts   SolverOptions
	rng    *rand.Rand
	donors []int // perturb scratch
	warm   warmScratch
}

// warmScratch is the reusable working set of SolveWarm: every
// intermediate the incremental re-solve needs, sized once per shape, so
// steady-state warm solves stop allocating. Candidate layouts rotate
// through a small free list (see Recycle).
type warmScratch struct {
	loads       []float64
	moved       []bool
	movedIdx    []int
	movedLoads  []float64
	deviceLoads []float64
	deviceCount []int
	dl          []float64 // per-candidate working copies
	dc          []int
	place       []int
	scheme      []int
	schemeAlt   []int
	heap        loadHeap
	order       []int
	ps          placeScratch
	route       routeScratch // replica lists of `built` (the keep-path cache)
	routeCand   routeScratch // replica lists of the candidate being scored
	built       *Layout      // layout route currently describes
	base        *Layout      // kept-expert placements
	cands       []*Layout    // candidate views handed to scoring
	spare       []*Layout    // recycled layout buffers
}

func (w *warmScratch) resize(e, n int) {
	if cap(w.loads) < e {
		w.loads = make([]float64, e)
		w.moved = make([]bool, e)
		w.movedIdx = make([]int, 0, e)
		w.movedLoads = make([]float64, 0, e)
		w.place = make([]int, e)
		w.scheme = make([]int, e)
		w.schemeAlt = make([]int, e)
		w.heap = make(loadHeap, e)
		w.order = make([]int, e)
	}
	w.loads = w.loads[:e]
	w.moved = w.moved[:e]
	w.place = w.place[:e]
	if cap(w.deviceLoads) < n {
		w.deviceLoads = make([]float64, n)
		w.deviceCount = make([]int, n)
		w.dl = make([]float64, n)
		w.dc = make([]int, n)
	}
	w.deviceLoads = w.deviceLoads[:n]
	w.deviceCount = w.deviceCount[:n]
	w.dl = w.dl[:n]
	w.dc = w.dc[:n]
	if w.base == nil || w.base.E != e || w.base.N != n {
		w.base = NewLayout(e, n)
	}
}

// getLayout hands out a recycled layout buffer of the right shape, or a
// fresh one when none is available. A reissued buffer is about to be
// rewritten, so any replica-list cache keyed on its pointer is dropped.
func (s *Solver) getLayout(e, n int) *Layout {
	for i := len(s.warm.spare) - 1; i >= 0; i-- {
		l := s.warm.spare[i]
		if l.E == e && l.N == n {
			s.warm.spare = append(s.warm.spare[:i], s.warm.spare[i+1:]...)
			if s.warm.built == l {
				s.warm.built = nil
			}
			return l
		}
	}
	return NewLayout(e, n)
}

// Recycle returns a layout buffer to the solver for reuse by future warm
// solves. Callers that retain a Solution's layout across epochs call this
// when they drop it (installing a successor); the solver then reaches
// steady-state warm solving without allocating candidate layouts. The
// layout must no longer be referenced anywhere — in particular it must not
// be (or alias) the Prev of a future SolveWarm call. nil is ignored.
func (s *Solver) Recycle(l *Layout) {
	if l == nil || len(s.warm.spare) >= 4 {
		return
	}
	s.warm.spare = append(s.warm.spare, l)
}

// NewSolver builds a solver for the topology and capacity.
func NewSolver(topo *topology.Topology, c int, params CostParams, opts SolverOptions) *Solver {
	if opts.Epsilon <= 0 {
		opts.Epsilon = 2
	}
	return &Solver{Topo: topo, C: c, Params: params, Opts: opts, rng: rand.New(rand.NewSource(opts.Seed))}
}

// Solve implements Alg. 2: build the candidate replica-scheme set, run
// expert relocation (Alg. 1) on each, score with the Eq. 2 cost model, and
// return the best strategy.
//
// Scoring is incremental: each candidate layout is evaluated by streaming
// the lite-routing assignments through the cost accumulators
// (evalLayoutCost), so no candidate ever materializes a full Dispatch
// (the winner's is built lazily on Solution.Dispatch). Distinct candidates
// are independent and evaluate concurrently when Opts.Parallelism allows;
// duplicate replica schemes (perturbation is not guaranteed to produce
// fresh ones) are scored once.
func (s *Solver) Solve(r *trace.RoutingMatrix) (*Solution, error) {
	n := s.Topo.N()
	if r.N != n {
		return nil, fmt.Errorf("planner: routing matrix for %d devices, topology has %d", r.N, n)
	}
	expertLoad := r.ExpertLoads()

	// The replica-slot budget counts live devices only; on a fully
	// available cluster this is exactly the N*C of Alg. 4.
	slots := s.Topo.NumAvailable() * s.C
	var set [][]int
	if !s.Opts.DisablePQ {
		pq, err := allocateReplicas(expertLoad, slots)
		if err != nil {
			return nil, err
		}
		set = append(set, pq)
	}
	if !s.Opts.DisableEven {
		even, err := allocateEven(expertLoad, slots)
		if err != nil {
			return nil, err
		}
		set = append(set, even)
	}
	if len(set) == 0 {
		return nil, fmt.Errorf("planner: both base replica schemes disabled")
	}
	for len(set) < s.Opts.Epsilon {
		base := set[s.rng.Intn(len(set))]
		set = append(set, s.perturb(base))
	}

	// Duplicate schemes inherit the score of their first occurrence.
	dup := make([]int, len(set))
	seen := make(map[string]int, len(set))
	var keyBuf []byte
	for i, reps := range set {
		keyBuf = keyBuf[:0]
		for _, v := range reps {
			keyBuf = append(keyBuf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		if first, ok := seen[string(keyBuf)]; ok {
			dup[i] = first
		} else {
			seen[string(keyBuf)] = i
			dup[i] = -1
		}
	}

	layouts := make([]*Layout, len(set))
	costs := make([]float64, len(set))
	errs := make([]error, len(set))
	eval := func(i int) {
		if dup[i] >= 0 {
			return
		}
		layout, err := ExpertRelocation(set[i], expertLoad, s.Topo, s.C)
		if err != nil {
			errs[i] = err
			return
		}
		sc := routePool.Get().(*routeScratch)
		costs[i] = evalLayoutCost(r, layout, s.Topo, s.Params, sc)
		routePool.Put(sc)
		layouts[i] = layout
	}
	if s.Opts.Parallelism > 1 && len(seen) > 1 {
		var wg sync.WaitGroup
		sem := make(chan struct{}, s.Opts.Parallelism)
		for i := range set {
			if dup[i] >= 0 {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				eval(i)
				<-sem
			}(i)
		}
		wg.Wait()
	} else {
		for i := range set {
			eval(i)
		}
	}
	for i := range set {
		if dup[i] >= 0 {
			layouts[i], costs[i], errs[i] = layouts[dup[i]], costs[dup[i]], errs[dup[i]]
		}
		if errs[i] != nil {
			return nil, errs[i]
		}
	}

	bi := 0
	for i := 1; i < len(set); i++ {
		if costs[i] < costs[bi] {
			bi = i
		}
	}
	return &Solution{
		Layout:     layouts[bi],
		Cost:       costs[bi],
		Candidates: len(set),
		r:          r,
		topo:       s.Topo,
	}, nil
}

// DefaultWarmThreshold is the relative per-expert load change above which
// a warm-started solve re-places an expert.
const DefaultWarmThreshold = 0.2

// WarmStart configures SolveWarm's incremental re-solve.
type WarmStart struct {
	// Prev is the layout currently in force.
	Prev *Layout
	// PrevLoads are the per-expert loads Prev was planned for. nil marks
	// every expert as moved, i.e. a full incremental re-place.
	PrevLoads []float64
	// Threshold is the relative load change past which an expert is
	// re-placed. 0 selects DefaultWarmThreshold; a negative value
	// re-places every expert whose load changed at all (the zero value
	// means "default", so an exact 0 threshold cannot).
	Threshold float64
	// MigrationCost is the time charged per replica restored onto a device
	// that did not host it in Prev (seconds). 0 models FSEP's free
	// re-layout; relocation schemes that move optimizer state pay
	// costmodel.ExpertMigrationBytes()/interBW per move.
	MigrationCost float64
	// ForecastError marks the routing matrix as a *forecast* with the
	// given relative error (the predictor's realized-vs-predicted L1 error
	// on the previous window). The keep-versus-migrate score discounts the
	// predicted improvement by 1/(1+ForecastError) before weighing it
	// against the migration charge, so a shaky forecast must promise
	// proportionally more to justify moving replicas. 0 (an observed
	// matrix, or a perfect forecast) reproduces the undiscounted score;
	// negative values are clamped to 0.
	ForecastError float64

	// Tracker, when non-nil and synchronized with this warm start (bound
	// to Prev, rebased with the identical PrevLoads slice and the same
	// threshold), supplies the drift state incrementally: the solve folds
	// the routing in as a delta, skips the full load re-scan and moved-set
	// sweep, and — when nothing crossed the threshold — returns the keep
	// verdict with a cached cost instead of re-scoring the layer. The
	// result is bit-identical to the untracked path (see DriftTracker); a
	// desynchronized tracker is ignored.
	Tracker *DriftTracker
}

// SolveWarm incrementally re-solves a layout from a previous epoch's
// solution: experts whose load moved past the threshold are re-placed
// (their freed slots re-allocated by the Alg. 4 priority queue and by the
// even scheme — the cold solve's candidate set restricted to the moved
// experts — then placed with the Alg. 1 greedy starting from the kept
// placements); every other expert keeps its devices. The incremental
// candidates compete against keeping Prev unchanged, scored by Eq. 2 cost
// plus MigrationCost per moved replica, so a marginal improvement never
// pays for a large migration.
//
// A nil Prev falls back to the cold Solve. Unlike Solve, SolveWarm draws
// no randomness, so it is deterministic for any Epsilon setting. Every
// intermediate lives in a per-solver scratch arena (see Recycle for the
// candidate-layout free list), so steady-state warm solves allocate only
// the returned Solution; consequently a Solver must not run concurrent
// SolveWarm calls.
func (s *Solver) SolveWarm(r *trace.RoutingMatrix, warm WarmStart) (*Solution, error) {
	if warm.Prev == nil {
		return s.Solve(r)
	}
	n := s.Topo.N()
	if r.N != n {
		return nil, fmt.Errorf("planner: routing matrix for %d devices, topology has %d", r.N, n)
	}
	if warm.Prev.E != r.E || warm.Prev.N != n {
		return nil, fmt.Errorf("planner: warm-start layout %dx%d does not match routing %dx%d", warm.Prev.E, warm.Prev.N, r.E, n)
	}
	thr := warm.Threshold
	if thr == 0 {
		thr = DefaultWarmThreshold
	} else if thr < 0 {
		thr = 0
	}
	w := &s.warm
	w.resize(r.E, n)

	// With a synchronized drift tracker the load re-scan and the moved-set
	// sweep collapse into one delta fold — amortized O(changed cells) —
	// and a below-threshold epoch returns the keep verdict with a cached
	// cost, never touching the O(N·E) cost evaluation at all.
	var loads []float64
	moved := w.moved
	anyMoved := false
	if tr := warm.Tracker; tr != nil && tr.synced(warm.Prev, warm.PrevLoads, thr) {
		if _, err := tr.Update(r); err != nil {
			return nil, err
		}
		loads = tr.Loads()
		if tr.CanKeep() {
			keepCost, clean := tr.cachedKeepCost()
			if !clean {
				if w.built != warm.Prev {
					w.route.buildReplicas(warm.Prev, s.Topo)
					w.built = warm.Prev
				}
				keepCost = evalBuiltLayoutCost(r, warm.Prev, s.Topo, s.Params, &w.route)
				tr.cacheKeepCost(keepCost)
			}
			return &Solution{
				Layout:     warm.Prev,
				Cost:       keepCost,
				Candidates: 1,
				r:          r,
				topo:       s.Topo,
			}, nil
		}
		tr.copyOver(moved)
		anyMoved = true
	} else {
		loads = r.ExpertLoadsInto(w.loads)
		switch {
		case warm.PrevLoads == nil:
			for j := range moved {
				moved[j] = true
			}
			anyMoved = true
		case len(warm.PrevLoads) != r.E:
			return nil, fmt.Errorf("planner: %d previous loads for %d experts", len(warm.PrevLoads), r.E)
		default:
			for j := range moved {
				prev := warm.PrevLoads[j]
				denom := prev
				if denom < 1 {
					denom = 1
				}
				moved[j] = math.Abs(loads[j]-prev)/denom > thr
				anyMoved = anyMoved || moved[j]
			}
		}
	}

	// Score keeping Prev. Its replica lists persist in the scratch across
	// solves: at steady state (the layout held for several epochs) the
	// O(E*N) rebuild is skipped entirely. The cache is keyed on the
	// layout pointer and dropped whenever that buffer is reissued for
	// rewriting, so it can never describe stale contents — provided
	// callers treat returned layouts as immutable (they must anyway).
	if w.built != warm.Prev {
		w.route.buildReplicas(warm.Prev, s.Topo)
		w.built = warm.Prev
	}
	keepCost := evalBuiltLayoutCost(r, warm.Prev, s.Topo, s.Params, &w.route)
	if warm.Tracker != nil && warm.Tracker.synced(warm.Prev, warm.PrevLoads, thr) {
		warm.Tracker.cacheKeepCost(keepCost)
	}
	if !anyMoved {
		return &Solution{
			Layout:     warm.Prev,
			Cost:       keepCost,
			Candidates: 1,
			r:          r,
			topo:       s.Topo,
		}, nil
	}

	cands, err := s.incrementalLayouts(warm.Prev, loads, moved)
	if err != nil {
		return nil, err
	}
	if cands == nil {
		// The kept experts leave too few slots for the moved ones (their
		// replica mass collapsed onto the keep set); re-place everything.
		for j := range moved {
			moved[j] = true
		}
		if cands, err = s.incrementalLayouts(warm.Prev, loads, moved); err != nil {
			return nil, err
		}
	}

	// Keep wins ties (a re-layout that buys nothing should not churn),
	// then candidate order. A candidate's score is its cost with the
	// improvement over keeping discounted by forecast confidence, plus the
	// migration charge: with a perfectly trusted matrix (ForecastError 0)
	// this is exactly cost + MigrationCost*moves.
	discount := 1.0
	if warm.ForecastError > 0 {
		discount = 1 / (1 + warm.ForecastError)
	}
	best, bestCost, bestMoves, bestScore := warm.Prev, keepCost, 0, keepCost
	for _, cand := range cands {
		cost := evalLayoutCost(r, cand, s.Topo, s.Params, &w.routeCand)
		// Candidates differ from Prev only on the re-placed experts (kept
		// rows are copied verbatim), so counting moves there suffices.
		moves := migrationMovesRows(warm.Prev, cand, w.movedIdx)
		score := keepCost - (keepCost-cost)*discount + warm.MigrationCost*float64(moves)
		if score < bestScore {
			best, bestCost, bestMoves, bestScore = cand, cost, moves, score
		}
	}
	// Losing candidate buffers go straight back to the free list; the
	// winner (when it is not Prev itself) transfers to the caller.
	for _, cand := range cands {
		if cand != best {
			s.Recycle(cand)
		}
	}
	return &Solution{
		Layout:        best,
		Cost:          bestCost,
		Candidates:    1 + len(cands),
		Migrations:    bestMoves,
		MigrationTime: warm.MigrationCost * float64(bestMoves),
		r:             r,
		topo:          s.Topo,
	}, nil
}

// incrementalLayouts keeps the placements of unmoved experts and re-places
// the moved ones into the freed slots, once per base replica scheme (the
// priority-queue and even allocations of Alg. 2, restricted to the moved
// experts — mirroring the cold solve's candidate set). Returns (nil, nil)
// when the kept replicas leave fewer slots than moved experts, which the
// caller resolves by widening the moved set. SolverOptions.DisablePQ and
// DisableEven drop the corresponding scheme here too. Candidate layouts
// come from the solver's free list; the caller owns handing them back.
func (s *Solver) incrementalLayouts(prev *Layout, loads []float64, moved []bool) ([]*Layout, error) {
	e, n := prev.E, prev.N
	w := &s.warm
	base := w.base
	base.Zero()
	deviceLoads := w.deviceLoads
	deviceCount := w.deviceCount
	for d := 0; d < n; d++ {
		deviceLoads[d] = 0
		deviceCount[d] = 0
	}
	kept := 0
	movedIdx := w.movedIdx[:0]
	for j := 0; j < e; j++ {
		if moved[j] {
			movedIdx = append(movedIdx, j)
			continue
		}
		reps := 0
		for d, v := range prev.A[j] {
			if v == 0 {
				continue
			}
			base.A[j][d] = v
			deviceCount[d] += v
			reps += v
		}
		kept += reps
		if reps > 0 {
			avg := loads[j] / float64(reps)
			for d, v := range prev.A[j] {
				deviceLoads[d] += avg * float64(v)
			}
		}
	}
	w.movedIdx = movedIdx
	slots := s.Topo.NumAvailable()*s.C - kept
	if slots < len(movedIdx) {
		return nil, nil
	}
	movedLoads := w.movedLoads[:0]
	for _, j := range movedIdx {
		movedLoads = append(movedLoads, loads[j])
	}
	w.movedLoads = movedLoads

	if s.Opts.DisablePQ && s.Opts.DisableEven {
		return nil, fmt.Errorf("planner: both base replica schemes disabled")
	}

	const (
		schemePQ = iota
		schemeEven
	)
	out := w.cands[:0]
	place := w.place
	var firstReps []int
	for scheme := schemePQ; scheme <= schemeEven; scheme++ {
		if (scheme == schemePQ && s.Opts.DisablePQ) || (scheme == schemeEven && s.Opts.DisableEven) {
			continue
		}
		reps := w.scheme[:len(movedIdx)]
		if firstReps != nil {
			reps = w.schemeAlt[:len(movedIdx)]
		}
		var err error
		if scheme == schemePQ {
			err = allocateReplicasInto(reps, movedLoads, slots, w.heap)
		} else {
			err = allocateEvenInto(reps, movedLoads, slots, w.order)
		}
		if err != nil {
			return nil, err
		}
		// The two base schemes frequently coincide at large E (every moved
		// expert gets exactly one slot); placing and scoring the duplicate
		// would change nothing — the first occurrence already wins ties.
		if firstReps != nil && slices.Equal(firstReps, reps) {
			continue
		}
		for j := range place {
			place[j] = 0
		}
		for k, j := range movedIdx {
			place[j] = reps[k]
		}
		cand := s.getLayout(e, n)
		cand.CopyFrom(base)
		copy(w.dl, deviceLoads)
		copy(w.dc, deviceCount)
		if err := placeReplicasScratch(cand, place, loads, w.dl, w.dc, s.Topo, s.C, &w.ps); err != nil {
			return nil, err
		}
		out = append(out, cand)
		firstReps = reps
	}
	w.cands = out
	return out, nil
}

// perturb moves one replica from a random multi-replica expert to a random
// other expert, preserving the total slot count and the one-replica
// minimum (Alg. 2 lines 5-7).
func (s *Solver) perturb(reps []int) []int {
	out := append([]int(nil), reps...)
	donors := s.donors[:0]
	for j, v := range out {
		if v > 1 {
			donors = append(donors, j)
		}
	}
	s.donors = donors
	if len(donors) == 0 {
		return out
	}
	from := donors[s.rng.Intn(len(donors))]
	to := s.rng.Intn(len(out))
	for to == from && len(out) > 1 {
		to = s.rng.Intn(len(out))
	}
	out[from]--
	out[to]++
	return out
}
