package planner

import (
	"testing"

	"laermoe/internal/topology"
)

// checkElasticInvariants asserts the planner's layout invariants under a
// (possibly shrunken) topology: coverage (every expert has at least one
// replica), capacity (no device over C, nothing on a masked device) and
// slot conservation (total replicas within the surviving budget).
func checkElasticInvariants(t *testing.T, l *Layout, topo *topology.Topology, c int) {
	t.Helper()
	total := 0
	for j := 0; j < l.E; j++ {
		if l.Replicas(j) < 1 {
			t.Errorf("expert %d has no replica", j)
		}
	}
	for d := 0; d < l.N; d++ {
		cnt := l.DeviceCount(d)
		total += cnt
		if cnt > c {
			t.Errorf("device %d holds %d replicas, capacity %d", d, cnt, c)
		}
		if cnt > 0 && !topo.Available(d) {
			t.Errorf("device %d is masked but holds %d replicas", d, cnt)
		}
	}
	if budget := topo.NumAvailable() * c; total > budget {
		t.Errorf("%d replicas exceed the %d surviving slots", total, budget)
	}
}

func repairSolver(topo *topology.Topology, c int) *Solver {
	return NewSolver(topo, c, testParams(), DefaultSolverOptions())
}

func TestRepairNoopOnIntactLayout(t *testing.T) {
	topo := topology.Default()
	s := repairSolver(topo, 2)
	r := skewedMatrix(32, 8, 4096, 1)
	sol, err := s.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := s.Repair(sol.Layout, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != sol.Layout || st.Changed() {
		t.Errorf("Repair on a fully available cluster changed the layout (stats %+v)", st)
	}
	// Degradation without membership loss never forces a repair either.
	if err := topo.SetDeviceClassByName(3, "degraded"); err != nil {
		t.Fatal(err)
	}
	got, st, err = s.Repair(sol.Layout, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != sol.Layout || st.Changed() {
		t.Errorf("Repair after a degrade event changed the layout (stats %+v)", st)
	}
}

func TestRepairAfterNodeLoss(t *testing.T) {
	topo := topology.Default()
	s := repairSolver(topo, 2)
	r := skewedMatrix(32, 8, 4096, 2)
	sol, err := s.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	prev := sol.Layout.Clone()
	lost := 0
	for d := 8; d < 16; d++ {
		lost += prev.DeviceCount(d)
	}
	if err := topo.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	loads := r.ExpertLoads()
	next, st, err := s.Repair(sol.Layout, loads)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Changed() {
		t.Fatal("node loss did not change the layout")
	}
	if st.LostReplicas != lost {
		t.Errorf("LostReplicas = %d, want %d", st.LostReplicas, lost)
	}
	checkElasticInvariants(t, next, topo, 2)
	// Experts untouched by the failure keep their placements.
	for j := 0; j < prev.E; j++ {
		touched := false
		for d := 8; d < 16; d++ {
			if prev.A[j][d] > 0 {
				touched = true
			}
		}
		if touched {
			continue
		}
		for d := 0; d < prev.N; d++ {
			if next.A[j][d] != prev.A[j][d] {
				t.Errorf("intact expert %d moved on device %d (%d -> %d)", j, d, prev.A[j][d], next.A[j][d])
			}
		}
	}
	if st.Moves+st.Restored < 1 {
		t.Errorf("lost %d replicas but recorded no moves/restores: %+v", st.LostReplicas, st)
	}
	// Determinism: the same repair from the same inputs is identical.
	s2 := repairSolver(topo, 2)
	next2, st2, err := s2.Repair(prev, loads)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st || !next.Equal(next2) {
		t.Error("Repair is not deterministic across solvers")
	}
}

func TestRepairRestoresOrphanedExpert(t *testing.T) {
	topo := topology.New(2, 2)
	s := repairSolver(topo, 3)
	// Expert 0's only replica lives on node 1; experts 1..3 live on node 0.
	prev := NewLayout(4, 4)
	prev.A[0][2] = 1
	prev.A[1][0] = 1
	prev.A[2][0] = 1
	prev.A[3][1] = 1
	if err := topo.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	next, st, err := s.Repair(prev, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Restored != 1 {
		t.Errorf("Restored = %d, want 1 (expert 0's only replica died)", st.Restored)
	}
	checkElasticInvariants(t, next, topo, 3)
	if next.Replicas(0) < 1 {
		t.Error("orphaned expert 0 not restored")
	}
}

func TestRepairSpillsByReplicaReduction(t *testing.T) {
	// 2 nodes x 2 devices, C=2: 8 slots, 4 experts with 2 replicas each.
	// Losing a node leaves 4 slots, all occupied by the kept replicas of
	// experts 0/1 — no free slot for the lost experts' fresh replicas, so
	// repair must spill: re-place everything at reduced replica counts
	// (one each) instead of failing.
	topo := topology.New(2, 2)
	s := repairSolver(topo, 2)
	prev := NewLayout(4, 4)
	prev.A[0][0], prev.A[0][1] = 1, 1
	prev.A[1][0], prev.A[1][1] = 1, 1
	prev.A[2][2], prev.A[2][3] = 1, 1
	prev.A[3][2], prev.A[3][3] = 1, 1
	if err := topo.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	next, st, err := s.Repair(prev, []float64{4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	checkElasticInvariants(t, next, topo, 2)
	if st.LostReplicas != 4 {
		t.Errorf("LostReplicas = %d, want 4", st.LostReplicas)
	}
	if st.Restored != 2 {
		t.Errorf("Restored = %d, want 2 (experts 2 and 3 fully lost)", st.Restored)
	}
	total := 0
	for j := 0; j < next.E; j++ {
		total += next.Replicas(j)
	}
	if total != 4 {
		t.Errorf("spilled layout uses %d slots, want exactly 4 (one per expert)", total)
	}
}

func TestRepairFailsWhenExpertsExceedSlots(t *testing.T) {
	// Losing a node leaves 2 slots for 3 experts: graceful error.
	topo := topology.New(2, 1)
	s := repairSolver(topo, 2)
	prev := NewLayout(3, 2)
	prev.A[0][0] = 1
	prev.A[1][1] = 1
	prev.A[2][1] = 1
	if err := topo.RemoveNode(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Repair(prev, nil); err == nil {
		t.Error("Repair accepted a cluster whose surviving slots cannot cover the experts")
	}
}

func TestSolveWarmUnderShrunkenTopology(t *testing.T) {
	// The warm solver's incremental path must respect the surviving slot
	// budget and never place onto masked devices.
	topo := topology.Default()
	s := repairSolver(topo, 2)
	r := skewedMatrix(32, 16, 4096, 3)
	sol, err := s.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	loads := r.ExpertLoads()
	if err := topo.RemoveNode(2); err != nil {
		t.Fatal(err)
	}
	repaired, _, err := s.Repair(sol.Layout, loads)
	if err != nil {
		t.Fatal(err)
	}
	r2 := skewedMatrix(32, 16, 4096, 4)
	warm, err := s.SolveWarm(r2, WarmStart{Prev: repaired, PrevLoads: loads, Threshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	checkElasticInvariants(t, warm.Layout, topo, 2)
}

func TestStaticRestoreLayout(t *testing.T) {
	topo := topology.Default()
	if err := topo.RemoveNode(3); err != nil {
		t.Fatal(err)
	}
	l, err := StaticRestoreLayout(8, topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkElasticInvariants(t, l, topo, 2)
	// Load-oblivious even spread: 48 surviving slots over 8 experts = 6
	// replicas each.
	for j := 0; j < 8; j++ {
		if l.Replicas(j) != 6 {
			t.Errorf("expert %d has %d replicas, want 6", j, l.Replicas(j))
		}
	}
	if _, err := StaticRestoreLayout(64, topology.New(2, 1), 2); err == nil {
		t.Error("StaticRestoreLayout accepted more experts than slots")
	}
}
