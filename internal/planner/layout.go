// Package planner implements the paper's load-balancing planner
// (Sec. 3.2): the lite routing token dispatcher (Alg. 3), the
// priority-queue replica allocation (Alg. 4), the topology-aware greedy
// expert relocation (Alg. 1), the expert layout tuner that combines them
// under the Eq. 2 cost model (Alg. 2), and the asynchronous per-layer
// planner wrapper of Fig. 7.
package planner

import (
	"fmt"

	"laermoe/internal/topology"
)

// Layout is the expert re-layout strategy A (Table 1): A[j][d] is the
// number of replicas of expert j restored on device d. The paper's binary
// formulation is the common case; Alg. 1 can in principle stack replicas,
// which a count representation handles uniformly.
type Layout struct {
	E, N int
	A    [][]int
}

// NewLayout returns an empty layout for E experts on N devices. One slab
// backs every row, so construction costs two allocations regardless of E.
func NewLayout(e, n int) *Layout {
	slab := make([]int, e*n)
	a := make([][]int, e)
	for j := range a {
		a[j] = slab[j*n : (j+1)*n : (j+1)*n]
	}
	return &Layout{E: e, N: n, A: a}
}

// Replicas returns the total replica count of expert j.
func (l *Layout) Replicas(j int) int {
	c := 0
	for _, v := range l.A[j] {
		c += v
	}
	return c
}

// ReplicaVector returns the per-expert replica counts.
func (l *Layout) ReplicaVector() []int {
	out := make([]int, l.E)
	for j := range out {
		out[j] = l.Replicas(j)
	}
	return out
}

// DeviceExperts returns the experts restored on device d, with
// multiplicity, in ascending expert order.
func (l *Layout) DeviceExperts(d int) []int {
	var out []int
	for j := 0; j < l.E; j++ {
		for r := 0; r < l.A[j][d]; r++ {
			out = append(out, j)
		}
	}
	return out
}

// DeviceCount returns the number of expert replicas on device d.
func (l *Layout) DeviceCount(d int) int {
	c := 0
	for j := 0; j < l.E; j++ {
		c += l.A[j][d]
	}
	return c
}

// ReplicaDevices returns the devices hosting expert j (with multiplicity).
func (l *Layout) ReplicaDevices(j int) []int {
	var out []int
	for d, v := range l.A[j] {
		for r := 0; r < v; r++ {
			out = append(out, d)
		}
	}
	return out
}

// Clone deep-copies the layout.
func (l *Layout) Clone() *Layout {
	c := NewLayout(l.E, l.N)
	c.CopyFrom(l)
	return c
}

// CopyFrom overwrites the layout with o's contents. Panics on shape
// mismatch, matching LiteRouting's contract.
func (l *Layout) CopyFrom(o *Layout) {
	if l.E != o.E || l.N != o.N {
		panic(fmt.Sprintf("planner: copy between %dx%d and %dx%d layouts", o.E, o.N, l.E, l.N))
	}
	for j := range l.A {
		copy(l.A[j], o.A[j])
	}
}

// Zero clears every replica count in place.
func (l *Layout) Zero() {
	for j := range l.A {
		row := l.A[j]
		for d := range row {
			row[d] = 0
		}
	}
}

// Validate checks the layout against a per-device capacity C and the
// constraint that every expert has at least one replica. When strict is
// true it additionally enforces the paper's Eq. 3 equality: every device
// hosts exactly C replicas.
func (l *Layout) Validate(c int, strict bool) error {
	for j := 0; j < l.E; j++ {
		if l.Replicas(j) == 0 {
			return fmt.Errorf("planner: expert %d has no replica", j)
		}
	}
	for d := 0; d < l.N; d++ {
		cnt := l.DeviceCount(d)
		if cnt > c {
			return fmt.Errorf("planner: device %d hosts %d replicas, capacity %d", d, cnt, c)
		}
		if strict && cnt != c {
			return fmt.Errorf("planner: device %d hosts %d replicas, want exactly %d", d, cnt, c)
		}
	}
	return nil
}

// Equal reports whether two layouts are identical.
func (l *Layout) Equal(o *Layout) bool {
	if l.E != o.E || l.N != o.N {
		return false
	}
	for j := range l.A {
		for d := range l.A[j] {
			if l.A[j][d] != o.A[j][d] {
				return false
			}
		}
	}
	return true
}

// StaticEP returns the fixed layout of a traditional FSDP+EP or Megatron
// deployment: devices are partitioned into consecutive EP groups of size
// P_ep = E/C, group member g hosts experts [g*C, (g+1)*C), and the layout
// never changes. Every expert therefore has exactly N/P_ep fixed replicas,
// one per EP group (Fig. 6a).
func StaticEP(e, n, c int) (*Layout, error) {
	if c <= 0 || e%c != 0 {
		return nil, fmt.Errorf("planner: expert count %d not divisible by capacity %d", e, c)
	}
	pep := e / c
	if n%pep != 0 {
		return nil, fmt.Errorf("planner: device count %d not divisible by EP size %d", n, pep)
	}
	l := NewLayout(e, n)
	for d := 0; d < n; d++ {
		member := d % pep
		for k := 0; k < c; k++ {
			l.A[member*c+k][d] = 1
		}
	}
	return l, nil
}

// nodeReplicaCounts returns, for expert j, the replica count per node.
func nodeReplicaCounts(l *Layout, topo *topology.Topology, j int) []int {
	counts := make([]int, topo.NumNodes)
	for d, v := range l.A[j] {
		counts[topo.Node(d)] += v
	}
	return counts
}
