package planner

import (
	"testing"

	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

func testParams() CostParams {
	return CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12}
}

func skewedMatrix(n, e, tokens int, seed int64) *trace.RoutingMatrix {
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: n, Experts: e, Layers: 1, TokensPerDevice: tokens, TopK: 2, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return gen.Step()[0]
}

func loadsOf(d *Dispatch) []float64 {
	ints := d.ReceivedLoads()
	out := make([]float64, len(ints))
	for i, v := range ints {
		out[i] = float64(v)
	}
	return out
}

// TestSolverBeatsStaticEP: on skewed routing the tuner's layout must have
// materially lower cost and imbalance than the static baseline.
func TestSolverBeatsStaticEP(t *testing.T) {
	topo := topology.Default()
	s := NewSolver(topo, 2, testParams(), DefaultSolverOptions())
	for seed := int64(0); seed < 5; seed++ {
		r := skewedMatrix(32, 8, 16384, seed)
		sol, err := s.Solve(r)
		if err != nil {
			t.Fatal(err)
		}
		staticDispatch, err := EPRouting(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		staticCost := TimeCost(staticDispatch, topo, testParams())
		if sol.Cost >= staticCost {
			t.Errorf("seed %d: solver cost %.4f >= static %.4f", seed, sol.Cost, staticCost)
		}
		solverImb := stats.Imbalance(loadsOf(sol.Dispatch()))
		staticImb := stats.Imbalance(loadsOf(staticDispatch))
		if solverImb >= staticImb {
			t.Errorf("seed %d: solver imbalance %.3f >= static %.3f", seed, solverImb, staticImb)
		}
		if solverImb > 1.45 {
			t.Errorf("seed %d: solver imbalance %.3f too high", seed, solverImb)
		}
	}
}

// TestSolverSatisfiesConstraints: Eq. 3 (capacity) and Eq. 4 (conservation)
// hold for every solution.
func TestSolverSatisfiesConstraints(t *testing.T) {
	topo := topology.Default()
	s := NewSolver(topo, 2, testParams(), DefaultSolverOptions())
	r := skewedMatrix(32, 8, 16384, 42)
	sol, err := s.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Layout.Validate(2, false); err != nil {
		t.Errorf("layout constraint violated: %v", err)
	}
	if err := sol.Dispatch().Validate(r, sol.Layout); err != nil {
		t.Errorf("dispatch constraint violated: %v", err)
	}
}

// TestSolverDeterministic: same seed, same solution.
func TestSolverDeterministic(t *testing.T) {
	topo := topology.Default()
	r := skewedMatrix(32, 8, 16384, 1)
	a := NewSolver(topo, 2, testParams(), SolverOptions{Epsilon: 6, Seed: 5})
	b := NewSolver(topo, 2, testParams(), SolverOptions{Epsilon: 6, Seed: 5})
	sa, err := a.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	if !sa.Layout.Equal(sb.Layout) {
		t.Error("same-seed solver runs produced different layouts")
	}
}

// TestSolverAblationOptions: the Fig. 12 ablations — with only one base
// scheme the solver still works but candidate diversity shrinks; disabling
// both fails.
func TestSolverAblationOptions(t *testing.T) {
	topo := topology.Default()
	r := skewedMatrix(32, 8, 16384, 9)
	pqOnly := NewSolver(topo, 2, testParams(), SolverOptions{Epsilon: 1, DisableEven: true})
	evenOnly := NewSolver(topo, 2, testParams(), SolverOptions{Epsilon: 1, DisablePQ: true})
	both := NewSolver(topo, 2, testParams(), DefaultSolverOptions())
	sPQ, err := pqOnly.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	sEven, err := evenOnly.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	sBoth, err := both.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	if sBoth.Cost > sPQ.Cost+1e-12 || sBoth.Cost > sEven.Cost+1e-12 {
		t.Errorf("combined scheme (%.4f) worse than single schemes (pq %.4f, even %.4f)",
			sBoth.Cost, sPQ.Cost, sEven.Cost)
	}
	neither := NewSolver(topo, 2, testParams(), SolverOptions{Epsilon: 2, DisablePQ: true, DisableEven: true})
	if _, err := neither.Solve(r); err == nil {
		t.Error("solver with no base schemes should fail")
	}
}

// TestSolverEpsilonExpandsCandidates: requesting more candidates evaluates
// more and never hurts the best cost.
func TestSolverEpsilonExpandsCandidates(t *testing.T) {
	topo := topology.Default()
	r := skewedMatrix(32, 8, 16384, 2)
	small := NewSolver(topo, 2, testParams(), SolverOptions{Epsilon: 2, Seed: 3})
	big := NewSolver(topo, 2, testParams(), SolverOptions{Epsilon: 10, Seed: 3})
	sSmall, err := small.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	sBig, err := big.Solve(r)
	if err != nil {
		t.Fatal(err)
	}
	if sBig.Candidates != 10 || sSmall.Candidates != 2 {
		t.Errorf("candidate counts = %d/%d, want 10/2", sBig.Candidates, sSmall.Candidates)
	}
	if sBig.Cost > sSmall.Cost+1e-12 {
		t.Errorf("more candidates worsened cost: %.4f vs %.4f", sBig.Cost, sSmall.Cost)
	}
}

// TestCostModelComponents: comm cost charges only cross-device traffic and
// scales with bandwidth class; compute cost tracks the max-loaded device
// and the checkpoint factor.
func TestCostModelComponents(t *testing.T) {
	topo := topology.Default()
	p := testParams()
	local := &Dispatch{N: 32, E: 1, Assignments: []Assignment{{Src: 0, Expert: 0, Dst: 0, Tokens: 100}}}
	if got := CommCost(local, topo, p); got != 0 {
		t.Errorf("local dispatch comm cost = %g, want 0", got)
	}
	intra := &Dispatch{N: 32, E: 1, Assignments: []Assignment{{Src: 0, Expert: 0, Dst: 1, Tokens: 100}}}
	inter := &Dispatch{N: 32, E: 1, Assignments: []Assignment{{Src: 0, Expert: 0, Dst: 8, Tokens: 100}}}
	if CommCost(intra, topo, p) >= CommCost(inter, topo, p) {
		t.Error("intra-node traffic should cost less than inter-node")
	}
	comp := CompCost(intra, topo, p)
	want := 3 * 100 * p.ExpertFLOPsPerToken / p.FLOPS
	if comp != want {
		t.Errorf("comp cost = %g, want %g", comp, want)
	}
	p.Ckpt = true
	if got := CompCost(intra, topo, p); got != want/3*4 {
		t.Errorf("ckpt comp cost = %g, want %g", got, want/3*4)
	}
	if total := TimeCost(inter, topo, p); total != CommCost(inter, topo, p)+CompCost(inter, topo, p) {
		t.Error("TimeCost != CommCost + CompCost")
	}
}

// TestPlannerAsyncWrapper: the layout in force lags observations by one
// iteration, and dispatches stay valid throughout.
func TestPlannerAsyncWrapper(t *testing.T) {
	topo := topology.Default()
	p, err := New(topo, 2, 8, 2, testParams(), DefaultSolverOptions(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	static, err := StaticEP(8, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Layout(0).Equal(static) {
		t.Error("initial layout should be static EP")
	}
	r := skewedMatrix(32, 8, 16384, 5)
	d := p.Dispatch(0, r)
	if err := d.Validate(r, static); err != nil {
		t.Fatalf("initial dispatch invalid: %v", err)
	}
	sol, err := p.Observe(0, r)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Layout(0).Equal(sol.Layout) {
		t.Error("Observe did not install the solved layout")
	}
	if p.Layout(1).Equal(sol.Layout) && !sol.Layout.Equal(static) {
		t.Error("layer 1 layout changed by layer 0 observation")
	}
	// Layer bounds.
	if _, err := p.Observe(5, r); err == nil {
		t.Error("out-of-range layer accepted")
	}
	if _, err := New(topo, 0, 8, 2, testParams(), DefaultSolverOptions(), 0.6); err == nil {
		t.Error("zero layers accepted")
	}
	if _, err := New(topo, 2, 8, 2, testParams(), DefaultSolverOptions(), 1.5); err == nil {
		t.Error("alpha > 1 accepted")
	}
}

// TestPlannerAdaptsToShiftedLoad: after observing a persistent shift, the
// planned layout gives the hot expert more replicas.
func TestPlannerAdaptsToShiftedLoad(t *testing.T) {
	topo := topology.Default()
	p, err := New(topo, 1, 8, 2, testParams(), DefaultSolverOptions(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	r := trace.NewRoutingMatrix(32, 8)
	for i := 0; i < 32; i++ {
		r.R[i][0] = 700 // expert 0 very hot
		for j := 1; j < 8; j++ {
			r.R[i][j] = 100
		}
	}
	for it := 0; it < 3; it++ {
		if _, err := p.Observe(0, r); err != nil {
			t.Fatal(err)
		}
	}
	layout := p.Layout(0)
	if layout.Replicas(0) <= layout.Replicas(1) {
		t.Errorf("hot expert replicas %d not above cold %d", layout.Replicas(0), layout.Replicas(1))
	}
	d := p.Dispatch(0, r)
	imb := stats.Imbalance(loadsOf(d))
	if imb > 1.3 {
		t.Errorf("post-adaptation imbalance %.3f, want <= 1.3", imb)
	}
}
