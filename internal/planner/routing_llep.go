package planner

import (
	"fmt"
	"sync"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// llepScratch is the reusable working set of LeastLoadedRouting: the
// candidate-device list of the current (src, expert) block and its
// per-device grant. The final per-device loads are not pooled — they are
// handed to the Dispatch as its cached load vector.
type llepScratch struct {
	cand []int
	give []int
}

var llepPool = sync.Pool{New: func() interface{} { return new(llepScratch) }}

// LeastLoadedRouting implements LLEP-style least-loaded dispatch: every
// (source, expert) token block is water-filled across the devices hosting
// a replica of that expert, always raising the currently least-loaded
// replica first ("Least-Loaded Expert Parallelism"). Unlike LiteRouting's
// locality-first even split, the router is load-first and stateful within
// the iteration — block t sees the loads blocks 0..t-1 created — which is
// exactly the dispatch-time view a serving router has. No layout change
// is involved; the layout only supplies the replica sets.
//
// Iteration order is source-ascending then expert-ascending, ties on
// equal load break toward the lower device index, so the dispatch is
// deterministic. Token conservation is exact per block: the water-fill
// distributes precisely r.R[src][expert] tokens.
func LeastLoadedRouting(r *trace.RoutingMatrix, l *Layout, topo *topology.Topology) *Dispatch {
	if r.E != l.E || r.N != l.N {
		panic(fmt.Sprintf("planner: routing matrix %dx%d does not match layout %dx%d", r.N, r.E, l.N, l.E))
	}
	d := &Dispatch{N: r.N, E: r.E}
	loads := make([]int, r.N)
	sc := llepPool.Get().(*llepScratch)
	if cap(sc.cand) < r.N {
		sc.cand = make([]int, r.N)
		sc.give = make([]int, r.N)
	}

	// Capacity guess: one assignment per nonzero routing cell. Blocks that
	// spread across several replicas append past this, which is rare
	// enough (the water-fill usually lands on one or two devices) that the
	// occasional growth beats a full counting pre-pass.
	nonzero := 0
	for i := 0; i < r.N; i++ {
		for _, v := range r.R[i] {
			if v > 0 {
				nonzero++
			}
		}
	}
	d.Assignments = make([]Assignment, 0, nonzero)

	for src := 0; src < r.N; src++ {
		row := r.R[src]
		for j := 0; j < r.E; j++ {
			tokens := row[j]
			if tokens == 0 {
				continue
			}
			cand := sc.cand[:0]
			for dev, v := range l.A[j] {
				if v > 0 {
					cand = append(cand, dev)
				}
			}
			if len(cand) == 0 {
				// A layout never leaves an expert unhosted; mirror
				// forEachAssignment, which would emit nothing here.
				continue
			}
			// Sort candidates by (current load, device index) ascending.
			// Replica sets are small; insertion sort keeps this
			// allocation-free and deterministic.
			for a := 1; a < len(cand); a++ {
				for b := a; b > 0; b-- {
					x, y := cand[b], cand[b-1]
					if loads[x] < loads[y] || (loads[x] == loads[y] && x < y) {
						cand[b], cand[b-1] = y, x
					} else {
						break
					}
				}
			}
			// Water-fill: find how many of the least-loaded devices
			// participate, then level them. prefix tracks the sum of the
			// first k sorted loads, so the cost of raising all k to the
			// next level is k*level - prefix.
			k := 1
			prefix := loads[cand[0]]
			for k < len(cand) {
				if k*loads[cand[k]]-prefix > tokens {
					break
				}
				prefix += loads[cand[k]]
				k++
			}
			total := tokens + prefix
			per, extra := total/k, total%k
			give := sc.give[:k]
			for idx := 0; idx < k; idx++ {
				target := per
				if idx < extra {
					target++
				}
				give[idx] = target - loads[cand[idx]]
			}
			for idx := 0; idx < k; idx++ {
				if give[idx] <= 0 {
					continue
				}
				dev := cand[idx]
				d.Assignments = append(d.Assignments, Assignment{Src: src, Expert: j, Dst: dev, Tokens: give[idx]})
				loads[dev] += give[idx]
			}
		}
	}
	llepPool.Put(sc)
	d.loads = loads
	return d
}
