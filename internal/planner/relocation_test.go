package planner

import (
	"testing"

	"laermoe/internal/topology"
)

func TestRelocationPlacesEveryReplica(t *testing.T) {
	topo := topology.New(2, 4) // 8 devices
	reps := []int{3, 2, 2, 1}  // 8 replicas for capacity 1
	loads := []float64{90, 40, 30, 5}
	layout, err := ExpertRelocation(reps, loads, topo, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.Validate(1, true); err != nil {
		t.Fatalf("layout invalid: %v", err)
	}
	for j, want := range reps {
		if got := layout.Replicas(j); got != want {
			t.Errorf("expert %d: %d replicas placed, want %d", j, got, want)
		}
	}
}

// TestRelocationBalancesAcrossNodes: per expert, node replica counts must
// differ by at most one — the property lite routing's intra-node splits
// rely on (Alg. 1 lines 7-9).
func TestRelocationBalancesAcrossNodes(t *testing.T) {
	topo := topology.New(4, 8)
	loads := []float64{500, 300, 200, 100, 80, 60, 40, 20}
	reps, err := ReplicaAllocation(loads, topo.N(), 2)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := ExpertRelocation(reps, loads, topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < layout.E; j++ {
		counts := nodeReplicaCounts(layout, topo, j)
		minC, maxC := counts[0], counts[0]
		for _, v := range counts[1:] {
			if v < minC {
				minC = v
			}
			if v > maxC {
				maxC = v
			}
		}
		if maxC-minC > 1 {
			t.Errorf("expert %d node counts %v spread more than 1", j, counts)
		}
	}
}

// TestRelocationBalancesDeviceLoads: estimated per-device load (sum of
// per-replica averages) should be close to the mean.
func TestRelocationBalancesDeviceLoads(t *testing.T) {
	topo := topology.New(4, 8)
	loads := []float64{500, 300, 200, 100, 80, 60, 40, 20}
	reps, err := ReplicaAllocation(loads, topo.N(), 2)
	if err != nil {
		t.Fatal(err)
	}
	layout, err := ExpertRelocation(reps, loads, topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	devLoads := make([]float64, topo.N())
	for j := 0; j < layout.E; j++ {
		per := loads[j] / float64(layout.Replicas(j))
		for d, v := range layout.A[j] {
			devLoads[d] += per * float64(v)
		}
	}
	mean := 0.0
	for _, v := range devLoads {
		mean += v
	}
	mean /= float64(len(devLoads))
	for d, v := range devLoads {
		if v > mean*1.5 {
			t.Errorf("device %d estimated load %.1f vs mean %.1f", d, v, mean)
		}
	}
}

func TestRelocationAvoidsDuplicatesWhenPossible(t *testing.T) {
	topo := topology.New(1, 4)
	// 4 experts, capacity 1: each device one expert, no duplicates
	// possible anyway; now capacity 2 with 4 experts x 2 replicas.
	layout, err := ExpertRelocation([]int{2, 2, 2, 2}, []float64{4, 3, 2, 1}, topo, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		for d := 0; d < 4; d++ {
			if layout.A[j][d] > 1 {
				t.Errorf("expert %d stacked %d times on device %d", j, layout.A[j][d], d)
			}
		}
	}
}

func TestRelocationErrors(t *testing.T) {
	topo := topology.New(1, 2)
	if _, err := ExpertRelocation([]int{1}, []float64{1, 2}, topo, 1); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := ExpertRelocation([]int{0, 1}, []float64{1, 2}, topo, 1); err == nil {
		t.Error("zero-replica expert accepted")
	}
	if _, err := ExpertRelocation([]int{3, 3}, []float64{1, 2}, topo, 1); err == nil {
		t.Error("over-capacity replica set accepted")
	}
}

func TestStaticEPLayout(t *testing.T) {
	l, err := StaticEP(8, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(2, true); err != nil {
		t.Fatal(err)
	}
	// Every expert has one replica per EP group of 4 devices.
	for j := 0; j < 8; j++ {
		if got := l.Replicas(j); got != 8 {
			t.Errorf("expert %d: %d replicas, want 8", j, got)
		}
	}
	// Device 0 hosts experts 0,1; device 1 hosts 2,3 (Fig. 6a layout).
	if l.A[0][0] != 1 || l.A[1][0] != 1 || l.A[2][1] != 1 || l.A[3][1] != 1 {
		t.Error("static EP block assignment wrong")
	}
	if _, err := StaticEP(8, 30, 2); err == nil {
		t.Error("non-divisible device count accepted")
	}
	if _, err := StaticEP(7, 32, 2); err == nil {
		t.Error("non-divisible expert count accepted")
	}
}

func TestLayoutHelpers(t *testing.T) {
	l := NewLayout(3, 2)
	l.A[0][0] = 1
	l.A[1][0] = 1
	l.A[2][1] = 2
	if got := l.DeviceCount(0); got != 2 {
		t.Errorf("DeviceCount(0) = %d, want 2", got)
	}
	devs := l.ReplicaDevices(2)
	if len(devs) != 2 || devs[0] != 1 || devs[1] != 1 {
		t.Errorf("ReplicaDevices(2) = %v, want [1 1]", devs)
	}
	ex := l.DeviceExperts(0)
	if len(ex) != 2 || ex[0] != 0 || ex[1] != 1 {
		t.Errorf("DeviceExperts(0) = %v", ex)
	}
	c := l.Clone()
	c.A[0][0] = 9
	if l.A[0][0] != 1 {
		t.Error("Clone aliases original")
	}
	if !l.Equal(l) || l.Equal(c) {
		t.Error("Equal misbehaves")
	}
	rv := l.ReplicaVector()
	if rv[0] != 1 || rv[1] != 1 || rv[2] != 2 {
		t.Errorf("ReplicaVector = %v", rv)
	}
}
