package planner

import (
	"testing"

	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// TestProbeSolverBalance measures how close the solver gets to perfect
// balance on freshly generated matrices (no asynchrony), to separate
// solver quality from planning staleness.
func TestProbeSolverBalance(t *testing.T) {
	topo := topology.Default()
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: 32, Experts: 8, Layers: 1, TokensPerDevice: 16384, TopK: 2,
		Skew: 1.0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(topo, 2, CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12}, DefaultSolverOptions())
	for i := 0; i < 5; i++ {
		r := gen.Step()[0]
		sol, err := s.Solve(r)
		if err != nil {
			t.Fatal(err)
		}
		loads := sol.Dispatch().ReceivedLoads()
		f := make([]float64, len(loads))
		for k, v := range loads {
			f[k] = float64(v)
		}
		static, _ := EPRouting(r, 2)
		sloads := static.ReceivedLoads()
		sf := make([]float64, len(sloads))
		for k, v := range sloads {
			sf[k] = float64(v)
		}
		reps := sol.Layout.ReplicaVector()
		t.Logf("iter %d: solver imbalance %.3f (static %.3f), reps=%v, cross-node %.1f%%",
			i, stats.Imbalance(f), stats.Imbalance(sf), reps,
			100*float64(sol.Dispatch().CrossNodeTokens(topo))/float64(r.Total()))
	}
}
