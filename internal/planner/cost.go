package planner

import (
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// CostParams parameterizes the Eq. 2 cost model.
type CostParams struct {
	// TokenBytes is V_comm: bytes moved per token assignment per hop.
	TokenBytes float64
	// ExpertFLOPsPerToken is V_comp: forward FLOPs of one assignment.
	ExpertFLOPsPerToken float64
	// FLOPS is B_comp: effective per-device compute throughput.
	FLOPS float64
	// Ckpt is F_ckpt: whether expert activation checkpointing adds a
	// third forward pass to the backward.
	Ckpt bool
}

// CommCost returns T_comm: the point-to-point All-to-All costs summed over
// all pairs (Eq. 2) with the multiplier 4 for the dispatch and combine of
// both forward and backward passes — normalized by the device count.
//
// The normalization is a deliberate deviation from the paper's literal
// formula: the per-pair transfers execute in parallel across devices, so
// the raw sum grows linearly with N and, at cluster scale, swamps the
// max-based T_comp term, driving the tuner toward all-intra-node layouts
// regardless of compute balance. Dividing by N makes T_comm the average
// per-device serialized cost, preserving the topology-awareness the term
// exists for at every scale.
func CommCost(d *Dispatch, topo *topology.Topology, p CostParams) float64 {
	t := 0.0
	for _, a := range d.Assignments {
		if a.Src == a.Dst {
			continue
		}
		t += float64(a.Tokens) * p.TokenBytes / topo.Bandwidth(a.Src, a.Dst)
	}
	return 4 * t / float64(d.N)
}

// CompCost returns T_comp (Eq. 2): (3 + F_ckpt) times the forward compute
// time of the most loaded device.
func CompCost(d *Dispatch, topo *topology.Topology, p CostParams) float64 {
	loads := d.ReceivedLoads()
	worst := 0.0
	for dev, l := range loads {
		t := float64(l) * p.ExpertFLOPsPerToken / p.FLOPS * topo.ComputeFactor(dev)
		if t > worst {
			worst = t
		}
	}
	factor := 3.0
	if p.Ckpt {
		factor = 4.0
	}
	return factor * worst
}

// TimeCost returns T = T_comm + T_comp, the objective minimized by the
// expert layout tuner.
func TimeCost(d *Dispatch, topo *topology.Topology, p CostParams) float64 {
	return CommCost(d, topo, p) + CompCost(d, topo, p)
}

// evalLayoutCost returns TimeCost(LiteRouting(r, l, topo), topo, p)
// without materializing the Dispatch: the lite-routing assignments stream
// straight through the Eq. 2 accumulators (comm time per assignment,
// received load per device). Assignments arrive in the same order
// LiteRouting appends them, so the floating-point sum — and therefore the
// solver's candidate ranking — is bit-identical to the materialized path.
func evalLayoutCost(r *trace.RoutingMatrix, l *Layout, topo *topology.Topology, p CostParams, sc *routeScratch) float64 {
	sc.buildReplicas(l, topo)
	return evalBuiltLayoutCost(r, l, topo, p, sc)
}

// evalBuiltLayoutCost is evalLayoutCost over a scratch already prepared
// with buildReplicas for l — the warm solver uses it to amortize the
// replica-list build of a layout it re-scores across epochs.
func evalBuiltLayoutCost(r *trace.RoutingMatrix, l *Layout, topo *topology.Topology, p CostParams, sc *routeScratch) float64 {
	if cap(sc.loads) < l.N {
		sc.loads = make([]int, l.N)
	}
	loads := sc.loads[:l.N]
	for i := range loads {
		loads[i] = 0
	}
	commT := 0.0
	hetero := topo.HasLinkClasses()
	forEachAssignment(r, l, topo, sc, func(src, expert, dst, tokens int, sameNode bool) {
		loads[dst] += tokens
		if src != dst {
			// The node relation arrives with the assignment, but the
			// arithmetic stays term-for-term identical to dividing by
			// topo.Bandwidth(src, dst). Heterogeneous link classes fall
			// back to the full lookup, which applies the same per-pair
			// scaling CommCost sees.
			var bw float64
			if hetero {
				bw = topo.Bandwidth(src, dst)
			} else if sameNode {
				bw = topo.IntraBW
			} else {
				bw = topo.InterBW
			}
			commT += float64(tokens) * p.TokenBytes / bw
		}
	})
	comm := 4 * commT / float64(l.N)

	worst := 0.0
	for dev, ld := range loads {
		t := float64(ld) * p.ExpertFLOPsPerToken / p.FLOPS * topo.ComputeFactor(dev)
		if t > worst {
			worst = t
		}
	}
	factor := 3.0
	if p.Ckpt {
		factor = 4.0
	}
	return comm + factor*worst
}
