package planner

import (
	"fmt"
	"sort"
	"sync"

	"laermoe/internal/comm"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// Assignment is one entry of the token routing strategy S (Table 1):
// Tokens token-to-expert assignments originating on device Src, destined
// for expert Expert, computed on device Dst.
type Assignment struct {
	Src    int
	Expert int
	Dst    int
	Tokens int
}

// Dispatch is a sparse representation of S[i][j][k].
type Dispatch struct {
	N, E        int
	Assignments []Assignment

	// loads caches the per-device received token counts when the dispatch
	// was produced by one of the package's routers, saving the
	// O(assignments) recomputation on the executor's per-layer queries.
	loads []int
}

// ReceivedLoads returns, per device, the number of assignments it computes
// (Σ_{k,j} S[k][j][i] — the per-device expert workload).
func (d *Dispatch) ReceivedLoads() []int {
	out := make([]int, d.N)
	if d.loads != nil {
		copy(out, d.loads)
		return out
	}
	for _, a := range d.Assignments {
		out[a.Dst] += a.Tokens
	}
	return out
}

// AppendReceivedLoads appends the per-device received token counts to
// dst (which may be nil, or a truncated buffer whose capacity is reused)
// and returns it — the non-allocating variant of ReceivedLoads for
// per-layer hot paths.
func (d *Dispatch) AppendReceivedLoads(dst []int) []int {
	if d.loads != nil {
		return append(dst, d.loads...)
	}
	start := len(dst)
	for i := 0; i < d.N; i++ {
		dst = append(dst, 0)
	}
	out := dst[start:]
	for _, a := range d.Assignments {
		out[a.Dst] += a.Tokens
	}
	return dst
}

// cacheLoads computes and stores the received-load cache.
func (d *Dispatch) cacheLoads() {
	loads := make([]int, d.N)
	for _, a := range d.Assignments {
		loads[a.Dst] += a.Tokens
	}
	d.loads = loads
}

// SentLoads returns, per device, the number of assignments it originates.
func (d *Dispatch) SentLoads() []int {
	out := make([]int, d.N)
	for _, a := range d.Assignments {
		out[a.Src] += a.Tokens
	}
	return out
}

// VolumeMatrix converts the dispatch into All-to-All byte volumes at
// tokenBytes per assignment. Local assignments (Src==Dst) move no bytes.
func (d *Dispatch) VolumeMatrix(tokenBytes float64) *comm.VolumeMatrix {
	vol := comm.NewVolumeMatrix(d.N)
	for _, a := range d.Assignments {
		if a.Src != a.Dst {
			vol.Add(a.Src, a.Dst, float64(a.Tokens)*tokenBytes)
		}
	}
	return vol
}

// CrossNodeTokens returns the number of assignments that cross a node
// boundary — the quantity lite routing minimizes.
func (d *Dispatch) CrossNodeTokens(topo *topology.Topology) int {
	n := 0
	for _, a := range d.Assignments {
		if !topo.SameNode(a.Src, a.Dst) {
			n += a.Tokens
		}
	}
	return n
}

// Validate checks conservation against the routing matrix: for every
// (device, expert), dispatched tokens must equal R[i][j], and every
// destination must host a replica of the expert.
func (d *Dispatch) Validate(r *trace.RoutingMatrix, l *Layout) error {
	sent := make(map[[2]int]int)
	for _, a := range d.Assignments {
		if a.Tokens < 0 {
			return fmt.Errorf("planner: negative assignment %+v", a)
		}
		if l.A[a.Expert][a.Dst] == 0 {
			return fmt.Errorf("planner: assignment %+v targets device without replica", a)
		}
		sent[[2]int{a.Src, a.Expert}] += a.Tokens
	}
	for i := 0; i < r.N; i++ {
		for j := 0; j < r.E; j++ {
			if got := sent[[2]int{i, j}]; got != r.R[i][j] {
				return fmt.Errorf("planner: device %d expert %d dispatches %d tokens, want %d", i, j, got, r.R[i][j])
			}
		}
	}
	return nil
}

// routeScratch holds the working set of the lite router: the replica
// device lists (an arena plus per-expert offsets) and, because devices are
// numbered node-major, the per-(expert, node) boundaries within each
// expert's list — so a rank's intra-node targets are a precomputed
// subrange instead of a scan. Instances recycle through routePool so that
// steady-state routing and layout evaluation allocate nothing.
type routeScratch struct {
	repArena []int
	repOff   []int // len E+1; replicas of expert j are repArena[repOff[j]:repOff[j+1]]
	nodeOff  []int // len E*(nn+1); expert j's node-k replicas are repArena[nodeOff[j*(nn+1)+k]:nodeOff[j*(nn+1)+k+1]]
	loads    []int
}

var routePool = sync.Pool{New: func() interface{} { return new(routeScratch) }}

// buildReplicas fills the scratch's replica lists from a layout. Each
// expert's devices are appended in ascending order, which is node-major,
// so the per-node boundaries are a prefix sum of per-node counts.
func (sc *routeScratch) buildReplicas(l *Layout, topo *topology.Topology) {
	nn := topo.NumNodes
	if cap(sc.repOff) < l.E+1 {
		sc.repOff = make([]int, l.E+1)
	}
	sc.repOff = sc.repOff[:l.E+1]
	if need := l.E * (nn + 1); cap(sc.nodeOff) < need {
		sc.nodeOff = make([]int, need)
	}
	sc.nodeOff = sc.nodeOff[:l.E*(nn+1)]
	sc.repArena = sc.repArena[:0]
	for j := 0; j < l.E; j++ {
		sc.repOff[j] = len(sc.repArena)
		base := j * (nn + 1)
		for k := 0; k <= nn; k++ {
			sc.nodeOff[base+k] = 0
		}
		for d, v := range l.A[j] {
			if v == 0 {
				continue
			}
			for k := 0; k < v; k++ {
				sc.repArena = append(sc.repArena, d)
			}
			sc.nodeOff[base+1+topo.Node(d)] += v
		}
		sc.nodeOff[base] = sc.repOff[j]
		for k := 1; k <= nn; k++ {
			sc.nodeOff[base+k] += sc.nodeOff[base+k-1]
		}
	}
	sc.repOff[l.E] = len(sc.repArena)
}

// forEachAssignment streams the Alg. 3 token assignments of (r, l) in
// deterministic (rank, expert, target) order without materializing a
// Dispatch: for each expert, if replicas exist within the rank's node its
// tokens split evenly among those intra-node replicas, otherwise among all
// replicas globally. Even splits of indivisible counts hand the remainder
// out starting at offset (rank+expert) mod len(targets), so no replica is
// systematically favoured. The callback additionally receives whether src
// and dst share a node — known for free from the node-major replica
// segments, so cost accumulation does not re-derive it per assignment.
// The scratch must have been prepared with buildReplicas for this layout.
// Both LiteRouting and the solver's incremental candidate evaluation
// consume this single implementation, which is what keeps their costs
// bit-identical.
func forEachAssignment(r *trace.RoutingMatrix, l *Layout, topo *topology.Topology, sc *routeScratch, fn func(src, expert, dst, tokens int, sameNode bool)) {
	nn := topo.NumNodes
	for rank := 0; rank < r.N; rank++ {
		node := topo.Node(rank)
		row := r.R[rank]
		for j := 0; j < r.E; j++ {
			tokens := row[j]
			if tokens == 0 {
				continue
			}
			base := j * (nn + 1)
			if lo, hi := sc.nodeOff[base+node], sc.nodeOff[base+node+1]; lo < hi {
				// Intra-node split: every target shares the rank's node.
				if hi-lo == 1 {
					fn(rank, j, sc.repArena[lo], tokens, true)
					continue
				}
				targets := sc.repArena[lo:hi]
				n := len(targets)
				bs, rem := tokens/n, tokens%n
				for idx, dev := range targets {
					t := bs
					if (idx+rank+j)%n < rem {
						t++
					}
					if t > 0 {
						fn(rank, j, dev, t, true)
					}
				}
				continue
			}
			// Global split — which only runs when the rank's node holds no
			// replica of this expert, so no target can share its node and
			// the relation is the constant false. A single replica (the
			// common case at large E, where most experts get exactly one
			// slot) additionally skips the split arithmetic.
			start, end := sc.repOff[j], sc.repOff[j+1]
			if end-start == 1 {
				fn(rank, j, sc.repArena[start], tokens, false)
				continue
			}
			targets := sc.repArena[start:end]
			n := len(targets)
			bs, rem := tokens/n, tokens%n
			for idx, dev := range targets {
				t := bs
				if (idx+rank+j)%n < rem {
					t++
				}
				if t > 0 {
					fn(rank, j, dev, t, false)
				}
			}
		}
	}
}

// LiteRouting implements Alg. 3, run from the perspective of every source
// rank. The algorithm needs only the global expert layout, no global
// routing information, so it can run synchronously on every rank without
// coordination (Sec. 3.2).
func LiteRouting(r *trace.RoutingMatrix, l *Layout, topo *topology.Topology) *Dispatch {
	if r.E != l.E || r.N != l.N {
		panic(fmt.Sprintf("planner: routing matrix %dx%d does not match layout %dx%d", r.N, r.E, l.N, l.E))
	}
	d := &Dispatch{N: r.N, E: r.E}
	sc := routePool.Get().(*routeScratch)
	sc.buildReplicas(l, topo)
	// Counting pre-pass: tokens routed to a replica-less node split across
	// every replica globally, so the assignment count can far exceed N*E;
	// sizing exactly avoids the append-growth copies that otherwise
	// dominate the router's allocation profile.
	count := 0
	forEachAssignment(r, l, topo, sc, func(src, expert, dst, tokens int, _ bool) { count++ })
	d.Assignments = make([]Assignment, 0, count)
	loads := make([]int, d.N)
	forEachAssignment(r, l, topo, sc, func(src, expert, dst, tokens int, _ bool) {
		d.Assignments = append(d.Assignments, Assignment{Src: src, Expert: expert, Dst: dst, Tokens: tokens})
		loads[dst] += tokens
	})
	routePool.Put(sc)
	d.loads = loads
	return d
}

// LiteImbalance returns the max/mean per-device received token load of
// the Alg. 3 lite routing of (r, l) — the balance a planner predicts for
// a layout under a routing matrix (1.0 = perfect; 1 when no tokens flow)
// — without materializing the Dispatch: assignments stream through a
// pooled scratch straight into per-device accumulators, so the per-layer
// decision reporting of the online engine and the laer-serve daemon does
// not resurrect the allocation profile LiteRouting was carved out of the
// solve path to avoid.
func LiteImbalance(r *trace.RoutingMatrix, l *Layout, topo *topology.Topology) float64 {
	if r.E != l.E || r.N != l.N {
		panic(fmt.Sprintf("planner: routing matrix %dx%d does not match layout %dx%d", r.N, r.E, l.N, l.E))
	}
	sc := routePool.Get().(*routeScratch)
	sc.buildReplicas(l, topo)
	if cap(sc.loads) < r.N {
		sc.loads = make([]int, r.N)
	}
	loads := sc.loads[:r.N]
	for i := range loads {
		loads[i] = 0
	}
	forEachAssignment(r, l, topo, sc, func(_, _, dst, tokens int, _ bool) {
		loads[dst] += tokens
	})
	sum := 0.0
	maxLoad := loads[0]
	for _, v := range loads {
		sum += float64(v)
		if v > maxLoad {
			maxLoad = v
		}
	}
	routePool.Put(sc)
	// The balanced reference load spreads over live devices only: masked
	// devices host no replicas and receive no tokens, so counting them in
	// the mean would report a degraded cluster as spuriously imbalanced.
	mean := sum / float64(topo.NumAvailable())
	if mean == 0 {
		return 1
	}
	return float64(maxLoad) / mean
}

// EPRouting is the routing of traditional expert parallelism under the
// StaticEP layout: tokens on device i for expert j go to the owner of j
// within i's own EP group — no choice, no balancing (Fig. 6a).
func EPRouting(r *trace.RoutingMatrix, c int) (*Dispatch, error) {
	if c <= 0 || r.E%c != 0 {
		return nil, fmt.Errorf("planner: expert count %d not divisible by capacity %d", r.E, c)
	}
	pep := r.E / c
	if r.N%pep != 0 {
		return nil, fmt.Errorf("planner: device count %d not divisible by EP size %d", r.N, pep)
	}
	d := &Dispatch{N: r.N, E: r.E}
	for i := 0; i < r.N; i++ {
		groupStart := (i / pep) * pep
		for j := 0; j < r.E; j++ {
			if r.R[i][j] == 0 {
				continue
			}
			owner := groupStart + j/c
			d.Assignments = append(d.Assignments, Assignment{Src: i, Expert: j, Dst: owner, Tokens: r.R[i][j]})
		}
	}
	d.cacheLoads()
	return d, nil
}

// NaiveReplicaRouting routes every token to the first replica of its
// expert (lowest device index) — the strawman the lite router is compared
// against in tests and benches.
func NaiveReplicaRouting(r *trace.RoutingMatrix, l *Layout) *Dispatch {
	d := &Dispatch{N: r.N, E: r.E}
	for i := 0; i < r.N; i++ {
		for j := 0; j < r.E; j++ {
			if r.R[i][j] == 0 {
				continue
			}
			devs := l.ReplicaDevices(j)
			sort.Ints(devs)
			d.Assignments = append(d.Assignments, Assignment{Src: i, Expert: j, Dst: devs[0], Tokens: r.R[i][j]})
		}
	}
	d.cacheLoads()
	return d
}
