package planner

import (
	"fmt"
	"sort"

	"laermoe/internal/comm"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// Assignment is one entry of the token routing strategy S (Table 1):
// Tokens token-to-expert assignments originating on device Src, destined
// for expert Expert, computed on device Dst.
type Assignment struct {
	Src    int
	Expert int
	Dst    int
	Tokens int
}

// Dispatch is a sparse representation of S[i][j][k].
type Dispatch struct {
	N, E        int
	Assignments []Assignment
}

// ReceivedLoads returns, per device, the number of assignments it computes
// (Σ_{k,j} S[k][j][i] — the per-device expert workload).
func (d *Dispatch) ReceivedLoads() []int {
	out := make([]int, d.N)
	for _, a := range d.Assignments {
		out[a.Dst] += a.Tokens
	}
	return out
}

// SentLoads returns, per device, the number of assignments it originates.
func (d *Dispatch) SentLoads() []int {
	out := make([]int, d.N)
	for _, a := range d.Assignments {
		out[a.Src] += a.Tokens
	}
	return out
}

// VolumeMatrix converts the dispatch into All-to-All byte volumes at
// tokenBytes per assignment. Local assignments (Src==Dst) move no bytes.
func (d *Dispatch) VolumeMatrix(tokenBytes float64) *comm.VolumeMatrix {
	vol := comm.NewVolumeMatrix(d.N)
	for _, a := range d.Assignments {
		if a.Src != a.Dst {
			vol.Add(a.Src, a.Dst, float64(a.Tokens)*tokenBytes)
		}
	}
	return vol
}

// CrossNodeTokens returns the number of assignments that cross a node
// boundary — the quantity lite routing minimizes.
func (d *Dispatch) CrossNodeTokens(topo *topology.Topology) int {
	n := 0
	for _, a := range d.Assignments {
		if !topo.SameNode(a.Src, a.Dst) {
			n += a.Tokens
		}
	}
	return n
}

// Validate checks conservation against the routing matrix: for every
// (device, expert), dispatched tokens must equal R[i][j], and every
// destination must host a replica of the expert.
func (d *Dispatch) Validate(r *trace.RoutingMatrix, l *Layout) error {
	sent := make(map[[2]int]int)
	for _, a := range d.Assignments {
		if a.Tokens < 0 {
			return fmt.Errorf("planner: negative assignment %+v", a)
		}
		if l.A[a.Expert][a.Dst] == 0 {
			return fmt.Errorf("planner: assignment %+v targets device without replica", a)
		}
		sent[[2]int{a.Src, a.Expert}] += a.Tokens
	}
	for i := 0; i < r.N; i++ {
		for j := 0; j < r.E; j++ {
			if got := sent[[2]int{i, j}]; got != r.R[i][j] {
				return fmt.Errorf("planner: device %d expert %d dispatches %d tokens, want %d", i, j, got, r.R[i][j])
			}
		}
	}
	return nil
}

// LiteRouting implements Alg. 3, run from the perspective of every source
// rank: for each expert, if replicas exist within the rank's node, its
// tokens are split evenly among those intra-node replicas; otherwise they
// are split evenly among all replicas globally. The algorithm needs only
// the global expert layout, no global routing information, so it can run
// synchronously on every rank without coordination (Sec. 3.2).
//
// Even splits of indivisible token counts hand the remainder out starting
// at offset (rank+expert) mod len(replicas), so no replica is
// systematically favoured.
func LiteRouting(r *trace.RoutingMatrix, l *Layout, topo *topology.Topology) *Dispatch {
	if r.E != l.E || r.N != l.N {
		panic(fmt.Sprintf("planner: routing matrix %dx%d does not match layout %dx%d", r.N, r.E, l.N, l.E))
	}
	d := &Dispatch{N: r.N, E: r.E}
	// Precompute replica device lists once per expert.
	replicas := make([][]int, l.E)
	for j := 0; j < l.E; j++ {
		replicas[j] = l.ReplicaDevices(j)
	}
	for rank := 0; rank < r.N; rank++ {
		node := topo.Node(rank)
		for j := 0; j < r.E; j++ {
			tokens := r.R[rank][j]
			if tokens == 0 {
				continue
			}
			var targets []int
			for _, dev := range replicas[j] {
				if topo.Node(dev) == node {
					targets = append(targets, dev)
				}
			}
			if len(targets) == 0 {
				targets = replicas[j]
			}
			d.Assignments = append(d.Assignments, splitEvenly(rank, j, tokens, targets)...)
		}
	}
	return d
}

// splitEvenly distributes tokens across targets as evenly as possible.
func splitEvenly(src, expert, tokens int, targets []int) []Assignment {
	n := len(targets)
	base := tokens / n
	rem := tokens % n
	out := make([]Assignment, 0, n)
	for idx, dev := range targets {
		t := base
		if (idx+src+expert)%n < rem {
			t++
		}
		if t > 0 {
			out = append(out, Assignment{Src: src, Expert: expert, Dst: dev, Tokens: t})
		}
	}
	return out
}

// EPRouting is the routing of traditional expert parallelism under the
// StaticEP layout: tokens on device i for expert j go to the owner of j
// within i's own EP group — no choice, no balancing (Fig. 6a).
func EPRouting(r *trace.RoutingMatrix, c int) (*Dispatch, error) {
	if c <= 0 || r.E%c != 0 {
		return nil, fmt.Errorf("planner: expert count %d not divisible by capacity %d", r.E, c)
	}
	pep := r.E / c
	if r.N%pep != 0 {
		return nil, fmt.Errorf("planner: device count %d not divisible by EP size %d", r.N, pep)
	}
	d := &Dispatch{N: r.N, E: r.E}
	for i := 0; i < r.N; i++ {
		groupStart := (i / pep) * pep
		for j := 0; j < r.E; j++ {
			if r.R[i][j] == 0 {
				continue
			}
			owner := groupStart + j/c
			d.Assignments = append(d.Assignments, Assignment{Src: i, Expert: j, Dst: owner, Tokens: r.R[i][j]})
		}
	}
	return d, nil
}

// NaiveReplicaRouting routes every token to the first replica of its
// expert (lowest device index) — the strawman the lite router is compared
// against in tests and benches.
func NaiveReplicaRouting(r *trace.RoutingMatrix, l *Layout) *Dispatch {
	d := &Dispatch{N: r.N, E: r.E}
	for i := 0; i < r.N; i++ {
		for j := 0; j < r.E; j++ {
			if r.R[i][j] == 0 {
				continue
			}
			devs := l.ReplicaDevices(j)
			sort.Ints(devs)
			d.Assignments = append(d.Assignments, Assignment{Src: i, Expert: j, Dst: devs[0], Tokens: r.R[i][j]})
		}
	}
	return d
}
