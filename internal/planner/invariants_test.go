package planner

import (
	"math/rand"
	"testing"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// Property-based invariant tests: for randomized clusters, capacities and
// routing traces, every artifact the planner produces must satisfy the
// paper's structural constraints —
//
//   - replica-count bounds: every expert keeps at least one replica and
//     the layout uses exactly the N*C replica slots (Eq. 3 equality);
//   - per-GPU capacity: no device hosts more than C replicas;
//   - full coverage: every expert is restored somewhere, and the token
//     dispatch conserves the routing matrix exactly;
//   - cost consistency: the solver's incremental (streamed) cost equals a
//     from-scratch evaluation of the same layout, bit for bit, for both
//     the cold and the warm-started paths.

// randomCase draws a random cluster/trace planning problem. Dimensions are
// constrained only by feasibility (N*C >= E so every expert fits).
type randomCase struct {
	topo *topology.Topology
	c    int
	gen  *trace.Generator
}

func drawCase(t *testing.T, rng *rand.Rand) randomCase {
	t.Helper()
	for {
		nodes := 1 + rng.Intn(4)
		gpus := 1 + rng.Intn(8)
		n := nodes * gpus
		c := 1 + rng.Intn(4)
		e := 2 + rng.Intn(15)
		if n*c < e {
			continue
		}
		topk := 1 + rng.Intn(4)
		if topk > e {
			topk = e
		}
		gen, err := trace.NewGenerator(trace.GeneratorConfig{
			Devices: n, Experts: e, Layers: 1,
			TokensPerDevice: 64 << rng.Intn(6), // 64..2048
			TopK:            topk,
			Skew:            0.25 + 2*rng.Float64(),
			Seed:            rng.Int63(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return randomCase{topo: topology.New(nodes, gpus), c: c, gen: gen}
	}
}

func (rc randomCase) solver(seed int64) *Solver {
	return NewSolver(rc.topo, rc.c, testParams(), SolverOptions{Epsilon: 2, Seed: seed})
}

// checkSolution enforces every structural invariant on one solution.
func checkSolution(t *testing.T, rc randomCase, r *trace.RoutingMatrix, sol *Solution, label string) {
	t.Helper()
	// Replica-count bounds, capacity and coverage (strict: Eq. 3 holds
	// with equality because allocation always uses every slot).
	if err := sol.Layout.Validate(rc.c, true); err != nil {
		t.Fatalf("%s: layout invariant violated: %v", label, err)
	}
	slots := 0
	for j := 0; j < sol.Layout.E; j++ {
		reps := sol.Layout.Replicas(j)
		if reps < 1 {
			t.Fatalf("%s: expert %d lost all replicas", label, j)
		}
		slots += reps
	}
	if want := rc.topo.N() * rc.c; slots != want {
		t.Fatalf("%s: layout uses %d slots, want %d", label, slots, want)
	}
	// Token conservation: the dispatch moves exactly the routed tokens to
	// devices that host the target expert.
	if err := sol.Dispatch().Validate(r, sol.Layout); err != nil {
		t.Fatalf("%s: dispatch invariant violated: %v", label, err)
	}
	// Cost consistency: incremental streaming evaluation == from-scratch
	// evaluation of the same layout, bit for bit.
	if got := TimeCost(sol.Dispatch(), rc.topo, testParams()); got != sol.Cost {
		t.Fatalf("%s: streamed cost %g != from-scratch cost %g", label, sol.Cost, got)
	}
}

func TestInvariantsColdSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		rc := drawCase(t, rng)
		r := rc.gen.Step()[0]
		sol, err := rc.solver(int64(i)).Solve(r)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		checkSolution(t, rc, r, sol, "cold")
	}
}

func TestInvariantsWarmSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	drifts := []trace.DriftModel{trace.DriftStabilizing, trace.DriftBursty, trace.DriftMigration}
	for i := 0; i < 40; i++ {
		rc := drawCase(t, rng)
		s := rc.solver(int64(i))
		r0 := rc.gen.Step()[0]
		sol, err := s.Solve(r0)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		prevLoads := r0.ExpertLoads()
		// Chain three drifted warm re-solves, checking every hop.
		for hop := 0; hop < 3; hop++ {
			if err := rc.gen.ApplyDrift(trace.DriftConfig{
				Model: drifts[rng.Intn(len(drifts))],
				Rate:  0.1 + 0.9*rng.Float64(),
			}); err != nil {
				t.Fatal(err)
			}
			r := rc.gen.Step()[0]
			warm, err := s.SolveWarm(r, WarmStart{
				Prev:          sol.Layout,
				PrevLoads:     prevLoads,
				Threshold:     0.05 + rng.Float64(),
				MigrationCost: rng.Float64() * 1e-3,
			})
			if err != nil {
				t.Fatalf("case %d hop %d: %v", i, hop, err)
			}
			checkSolution(t, rc, r, warm, "warm")
			if warm.Migrations != MigrationMoves(sol.Layout, warm.Layout) {
				t.Fatalf("case %d hop %d: migration count %d != recount %d",
					i, hop, warm.Migrations, MigrationMoves(sol.Layout, warm.Layout))
			}
			sol, prevLoads = warm, r.ExpertLoads()
		}
	}
}

// TestInvariantsAllocationSchemes: both replica allocators fill exactly
// the slot budget with at least one replica per expert.
func TestInvariantsAllocationSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		rc := drawCase(t, rng)
		loads := rc.gen.Step()[0].ExpertLoads()
		n := rc.topo.N()
		for name, alloc := range map[string]func([]float64, int, int) ([]int, error){
			"pq": ReplicaAllocation, "even": EvenAllocation,
		} {
			reps, err := alloc(loads, n, rc.c)
			if err != nil {
				t.Fatalf("case %d %s: %v", i, name, err)
			}
			total := 0
			for j, v := range reps {
				if v < 1 {
					t.Fatalf("case %d %s: expert %d got %d replicas", i, name, j, v)
				}
				total += v
			}
			if total != n*rc.c {
				t.Fatalf("case %d %s: allocated %d slots, want %d", i, name, total, n*rc.c)
			}
		}
	}
}

// TestInvariantsWarmEqualsColdOnIdenticalLayout: evaluating the same
// layout through the warm path's keep candidate must reproduce the cold
// evaluation exactly (same routing, same layout, same accumulators).
func TestInvariantsWarmEqualsColdOnIdenticalLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		rc := drawCase(t, rng)
		r := rc.gen.Step()[0]
		cold, err := rc.solver(int64(i)).Solve(r)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// Same loads, huge threshold: nothing moves, the previous layout
		// is kept and re-scored against the same routing.
		warm, err := rc.solver(int64(i)).SolveWarm(r, WarmStart{
			Prev:      cold.Layout,
			PrevLoads: r.ExpertLoads(),
			Threshold: 1e9,
		})
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if warm.Layout != cold.Layout {
			t.Fatalf("case %d: keep path rebuilt the layout", i)
		}
		if warm.Cost != cold.Cost {
			t.Fatalf("case %d: warm keep cost %g != cold cost %g", i, warm.Cost, cold.Cost)
		}
	}
}
