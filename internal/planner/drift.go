package planner

import (
	"fmt"
	"math"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// DriftTracker maintains, incrementally, everything the warm solver's
// keep-versus-replan gate needs about one layer: the last observed routing
// matrix, the per-expert load totals, which experts have drifted past the
// replan threshold relative to the loads the current layout was planned
// for, and the per-device received loads of the lite routing under that
// layout. Each observation is folded in by diffing against the previous
// one — O(N·E) comparisons but O(changed cells) arithmetic — so at steady
// state (loads mostly stationary, the regime the paper and *Prediction Is
// All MoE Needs* document) the epoch decision runs without re-scoring the
// layer: when no expert is over threshold, the full SolveWarm is
// guaranteed to return "keep", and the tracker can report that verdict,
// the cached keep cost and the exact LiteImbalance directly.
//
// Exactness contract (what makes the incremental path byte-identical to
// the full re-score):
//
//   - the over-threshold predicate is SolveWarm's moved[] formula verbatim
//     (|load−base| / max(base,1) > threshold, same zero/negative threshold
//     normalization);
//   - per-expert loads are integer-valued float64 sums, and folding exact
//     integer deltas into them is exact, so they equal ExpertLoadsInto
//     bit for bit;
//   - per-device received loads are maintained by replaying, per changed
//     cell, the exact token split forEachAssignment performs (same
//     intra-node/global segment choice, same remainder rotation), so
//     Imbalance reproduces LiteImbalance's integer accumulators and its
//     float division exactly.
//
// A tracker is bound to one (layout, planned loads, threshold) epoch by
// Rebase and must be Invalidated whenever the layout or the topology
// changes behind its back (fault repair, forced re-layout). It is not safe
// for concurrent use.
type DriftTracker struct {
	topo *topology.Topology
	e, n int

	prev     *trace.RoutingMatrix // retained copy of the last observed matrix
	loads    []float64            // per-expert totals of prev (integer-valued)
	base     []float64            // planned loads the threshold measures against
	baseSrc  []float64            // the caller's slice Rebase was handed (identity check)
	over     []bool               // per-expert over-threshold flags
	overIdx  []int                // scratch: experts touched by the last Update
	touch    []int32              // scratch: 1+position in overIdx during an Update
	devLoads []int                // per-device received loads under layout
	sc       routeScratch         // replica lists of layout
	layout   *Layout
	thr      float64

	valid     bool
	keepCost  float64
	costClean bool // keepCost describes prev's current contents

	// lifetime counters, exposed for reporting
	updates   int
	cellsSeen int
}

// NewDriftTracker builds a tracker for the given cluster. It starts
// invalid; Rebase binds it to a layout.
func NewDriftTracker(topo *topology.Topology) *DriftTracker {
	return &DriftTracker{topo: topo}
}

// normalizeWarmThreshold is SolveWarm's threshold defaulting: 0 selects
// DefaultWarmThreshold, negative means "any change at all".
func normalizeWarmThreshold(thr float64) float64 {
	if thr == 0 {
		return DefaultWarmThreshold
	}
	if thr < 0 {
		return 0
	}
	return thr
}

// Valid reports whether the tracker is bound to a layout.
func (t *DriftTracker) Valid() bool { return t.valid }

// Invalidate unbinds the tracker; the next decision must take the full
// path and Rebase. Call it whenever the layout, the planned loads or the
// topology change outside the tracker's view.
func (t *DriftTracker) Invalidate() { t.valid = false; t.costClean = false }

// Layout returns the layout the tracker is bound to (nil when invalid).
func (t *DriftTracker) Layout() *Layout {
	if !t.valid {
		return nil
	}
	return t.layout
}

// Loads returns the per-expert load totals of the last folded observation.
// The slice aliases tracker state: read-only, valid until the next
// Update/Rebase.
func (t *DriftTracker) Loads() []float64 { return t.loads }

// Updates returns how many observations have been folded in since the
// last Rebase, and CellsChanged the total changed cells they carried.
func (t *DriftTracker) Updates() int      { return t.updates }
func (t *DriftTracker) CellsChanged() int { return t.cellsSeen }

// synced reports whether the tracker describes exactly the warm start
// (prev layout, planned-loads slice identity, normalized threshold) a
// SolveWarm call is about to score — the precondition for substituting
// tracker state for the full re-scan.
func (t *DriftTracker) synced(prev *Layout, prevLoads []float64, thr float64) bool {
	if !t.valid || t.layout != prev || t.thr != thr {
		return false
	}
	if len(prevLoads) != len(t.baseSrc) {
		return false
	}
	// A nil/empty baseline means "no planned loads yet": SolveWarm treats
	// every expert as moved and must take the full path, so the tracker
	// never engages for it.
	return len(prevLoads) > 0 && &prevLoads[0] == &t.baseSrc[0]
}

// Synced reports whether the tracker currently describes exactly the warm
// start (layout pointer, planned-loads slice identity, raw threshold) a
// SolveWarm call would be handed — i.e. whether WarmStart.Tracker will
// engage for that call.
func (t *DriftTracker) Synced(prev *Layout, prevLoads []float64, threshold float64) bool {
	return t.synced(prev, prevLoads, normalizeWarmThreshold(threshold))
}

// Rebase rebinds the tracker: layout is the layout now in force, base the
// per-expert loads it was planned for (SolveWarm's PrevLoads; the slice is
// copied, but its identity is remembered so synced() can cheaply verify a
// later warm start refers to the same baseline), threshold the raw
// WarmStart.Threshold, and r the observation the layout was installed
// against. Everything is recomputed from scratch — Rebase runs right after
// a full solve, whose cost it amortizes.
func (t *DriftTracker) Rebase(r *trace.RoutingMatrix, layout *Layout, base []float64, threshold float64) error {
	if layout == nil {
		return fmt.Errorf("planner: drift tracker rebased onto nil layout")
	}
	if r.E != layout.E || r.N != layout.N {
		return fmt.Errorf("planner: drift tracker routing %dx%d does not match layout %dx%d", r.N, r.E, layout.N, layout.E)
	}
	if base != nil && len(base) != r.E {
		return fmt.Errorf("planner: drift tracker has %d base loads for %d experts", len(base), r.E)
	}
	t.e, t.n = r.E, r.N
	t.layout = layout
	t.thr = normalizeWarmThreshold(threshold)
	t.baseSrc = base

	if t.prev == nil || t.prev.N != r.N || t.prev.E != r.E {
		t.prev = trace.NewRoutingMatrix(r.N, r.E)
	}
	for i := 0; i < r.N; i++ {
		copy(t.prev.R[i], r.R[i])
	}
	if cap(t.loads) < t.e {
		t.loads = make([]float64, t.e)
		t.base = make([]float64, t.e)
		t.over = make([]bool, t.e)
		t.touch = make([]int32, t.e)
		t.overIdx = make([]int, 0, t.e)
	}
	t.loads = t.prev.ExpertLoadsInto(t.loads[:0])
	t.base = t.base[:t.e]
	t.over = t.over[:t.e]
	t.touch = t.touch[:t.e]
	if base == nil {
		copy(t.base, t.loads)
	} else {
		copy(t.base, base)
	}
	for j := 0; j < t.e; j++ {
		t.over[j] = t.overThreshold(j)
		t.touch[j] = 0
	}

	t.sc.buildReplicas(layout, t.topo)
	if cap(t.devLoads) < t.n {
		t.devLoads = make([]int, t.n)
	}
	t.devLoads = t.devLoads[:t.n]
	for d := range t.devLoads {
		t.devLoads[d] = 0
	}
	forEachAssignment(t.prev, layout, t.topo, &t.sc, func(_, _, dst, tokens int, _ bool) {
		t.devLoads[dst] += tokens
	})

	t.valid = true
	t.costClean = false
	t.updates = 0
	t.cellsSeen = 0
	return nil
}

// overThreshold is SolveWarm's per-expert moved[] predicate, verbatim.
func (t *DriftTracker) overThreshold(j int) bool {
	prev := t.base[j]
	denom := prev
	if denom < 1 {
		denom = 1
	}
	return math.Abs(t.loads[j]-prev)/denom > t.thr
}

// Update folds one observation in: it diffs r against the retained
// previous matrix, replays each changed cell's token split into the
// per-device loads, adjusts the per-expert totals and re-evaluates the
// threshold flags of the touched experts. Returns the number of changed
// cells. The tracker must be valid and r must match its shape.
func (t *DriftTracker) Update(r *trace.RoutingMatrix) (int, error) {
	if !t.valid {
		return 0, fmt.Errorf("planner: drift tracker update before rebase")
	}
	if r.N != t.n || r.E != t.e {
		return 0, fmt.Errorf("planner: drift tracker update %dx%d, tracking %dx%d", r.N, r.E, t.n, t.e)
	}
	changed := 0
	t.overIdx = t.overIdx[:0]
	for i := 0; i < t.n; i++ {
		prow, nrow := t.prev.R[i], r.R[i]
		for j, nv := range nrow {
			pv := prow[j]
			if nv == pv {
				continue
			}
			changed++
			t.splitCell(i, j, pv, -1)
			t.splitCell(i, j, nv, +1)
			t.loads[j] += float64(nv - pv)
			prow[j] = nv
			if t.touch[j] == 0 {
				t.overIdx = append(t.overIdx, j)
				t.touch[j] = 1
			}
		}
	}
	for _, j := range t.overIdx {
		t.touch[j] = 0
		t.over[j] = t.overThreshold(j)
	}
	if changed > 0 {
		t.costClean = false
	}
	t.updates++
	t.cellsSeen += changed
	return changed, nil
}

// splitCell replays forEachAssignment's token split of one (rank, expert,
// tokens) cell into the per-device accumulators with the given sign: the
// same intra-node-else-global segment choice and the same
// (idx+rank+expert) mod n remainder rotation, so adding a cell and later
// subtracting it cancels exactly.
func (t *DriftTracker) splitCell(rank, j, tokens, sign int) {
	if tokens == 0 {
		return
	}
	nn := t.topo.NumNodes
	base := j * (nn + 1)
	node := t.topo.Node(rank)
	lo, hi := t.sc.nodeOff[base+node], t.sc.nodeOff[base+node+1]
	if lo >= hi {
		lo, hi = t.sc.repOff[j], t.sc.repOff[j+1]
	}
	if hi-lo == 1 {
		t.devLoads[t.sc.repArena[lo]] += sign * tokens
		return
	}
	targets := t.sc.repArena[lo:hi]
	n := len(targets)
	bs, rem := tokens/n, tokens%n
	for idx, dev := range targets {
		tt := bs
		if (idx+rank+j)%n < rem {
			tt++
		}
		t.devLoads[dev] += sign * tt
	}
}

// AnyOver reports whether any expert's accumulated drift crossed the
// threshold — exactly SolveWarm's anyMoved for the tracked warm start.
func (t *DriftTracker) AnyOver() bool {
	if !t.valid {
		return true
	}
	for _, o := range t.over {
		if o {
			return true
		}
	}
	return false
}

// CanKeep reports that the full warm solve is guaranteed to keep the
// bound layout for the current observation: the tracker is valid and no
// expert drifted past the threshold.
func (t *DriftTracker) CanKeep() bool { return t.valid && !t.AnyOver() }

// copyOver writes the per-expert over-threshold flags into dst (len E) —
// SolveWarm's moved[] without the re-scan.
func (t *DriftTracker) copyOver(dst []bool) { copy(dst, t.over) }

// Imbalance returns LiteImbalance(r, layout, topo) for the tracked state,
// from the incrementally maintained integer device loads: same
// accumulation order, same live-device mean, bit-identical result.
func (t *DriftTracker) Imbalance() float64 {
	sum := 0.0
	maxLoad := t.devLoads[0]
	for _, v := range t.devLoads {
		sum += float64(v)
		if v > maxLoad {
			maxLoad = v
		}
	}
	mean := sum / float64(t.topo.NumAvailable())
	if mean == 0 {
		return 1
	}
	return float64(maxLoad) / mean
}

// cacheKeepCost stores the keep-path Eq. 2 cost of the current contents.
func (t *DriftTracker) cacheKeepCost(cost float64) {
	t.keepCost = cost
	t.costClean = true
}

// cachedKeepCost returns the cached keep cost and whether it still
// describes the tracked matrix (no cells changed since it was computed).
func (t *DriftTracker) cachedKeepCost() (float64, bool) {
	return t.keepCost, t.costClean
}
