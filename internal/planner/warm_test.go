package planner

import (
	"testing"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// warmPair returns a solved first-epoch layout plus a drifted second-epoch
// matrix from the same generator.
func warmPair(t *testing.T, seed int64) (*Solver, *trace.RoutingMatrix, *trace.RoutingMatrix, *Solution) {
	t.Helper()
	topo := topology.Default()
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: topo.N(), Experts: 8, Layers: 1, TokensPerDevice: 8192, TopK: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	r0 := gen.Step()[0]
	if err := gen.ApplyDrift(trace.DriftConfig{Model: trace.DriftMigration, Rate: 0.6}); err != nil {
		t.Fatal(err)
	}
	r1 := gen.Step()[0]
	s := NewSolver(topo, 2, testParams(), DefaultSolverOptions())
	sol0, err := s.Solve(r0)
	if err != nil {
		t.Fatal(err)
	}
	return s, r0, r1, sol0
}

func TestSolveWarmNilPrevIsColdSolve(t *testing.T) {
	s, r0, _, sol0 := warmPair(t, 1)
	warm, err := s.SolveWarm(r0, WarmStart{})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh solver replays the cold path deterministically.
	s2 := NewSolver(s.Topo, s.C, s.Params, s.Opts)
	cold, err := s2.Solve(r0)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Layout.Equal(cold.Layout) || warm.Cost != sol0.Cost {
		t.Fatal("SolveWarm without a previous layout must match the cold solve")
	}
	if warm.Migrations != 0 || warm.MigrationTime != 0 {
		t.Fatalf("cold solve charged %d migrations", warm.Migrations)
	}
}

func TestSolveWarmKeepsLayoutWhenNothingMoved(t *testing.T) {
	s, r0, _, sol0 := warmPair(t, 2)
	warm, err := s.SolveWarm(r0, WarmStart{Prev: sol0.Layout, PrevLoads: r0.ExpertLoads()})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Layout != sol0.Layout {
		t.Fatal("identical loads must keep the previous layout in force")
	}
	if warm.Migrations != 0 {
		t.Fatalf("keeping the layout migrated %d replicas", warm.Migrations)
	}
}

func TestSolveWarmLayoutIsValidAndCostConsistent(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		s, r0, r1, sol0 := warmPair(t, 10+seed)
		warm, err := s.SolveWarm(r1, WarmStart{Prev: sol0.Layout, PrevLoads: r0.ExpertLoads()})
		if err != nil {
			t.Fatal(err)
		}
		if err := warm.Layout.Validate(s.C, true); err != nil {
			t.Fatalf("seed %d: warm layout invalid: %v", seed, err)
		}
		if err := warm.Dispatch().Validate(r1, warm.Layout); err != nil {
			t.Fatalf("seed %d: warm dispatch invalid: %v", seed, err)
		}
		// The incremental score must be bit-identical to evaluating the
		// materialized dispatch from scratch.
		if got := TimeCost(warm.Dispatch(), s.Topo, s.Params); got != warm.Cost {
			t.Fatalf("seed %d: incremental cost %g != materialized cost %g", seed, warm.Cost, got)
		}
		if warm.Migrations != MigrationMoves(sol0.Layout, warm.Layout) {
			t.Fatalf("seed %d: reported %d migrations, counted %d",
				seed, warm.Migrations, MigrationMoves(sol0.Layout, warm.Layout))
		}
	}
}

// TestSolveWarmMigratesLessThanScratch: across drifted epochs the warm
// start must move fewer replicas than re-solving from scratch, while
// staying within a modest cost factor of the scratch solution.
func TestSolveWarmMigratesLessThanScratch(t *testing.T) {
	warmMoves, scratchMoves := 0, 0
	var warmCost, scratchCost float64
	for seed := int64(0); seed < 8; seed++ {
		s, r0, r1, sol0 := warmPair(t, 30+seed)
		warm, err := s.SolveWarm(r1, WarmStart{Prev: sol0.Layout, PrevLoads: r0.ExpertLoads()})
		if err != nil {
			t.Fatal(err)
		}
		scratch, err := NewSolver(s.Topo, s.C, s.Params, s.Opts).Solve(r1)
		if err != nil {
			t.Fatal(err)
		}
		warmMoves += warm.Migrations
		scratchMoves += MigrationMoves(sol0.Layout, scratch.Layout)
		warmCost += warm.Cost
		scratchCost += scratch.Cost
	}
	if warmMoves >= scratchMoves {
		t.Fatalf("warm start moved %d replicas, scratch %d — warm must migrate less", warmMoves, scratchMoves)
	}
	if warmCost > 1.25*scratchCost {
		t.Fatalf("warm cost %.4g more than 25%% above scratch cost %.4g", warmCost, scratchCost)
	}
}

// TestSolveWarmMigrationChargeBlocksChurn: with a prohibitive migration
// cost the solver must keep the previous layout rather than pay for moves.
func TestSolveWarmMigrationChargeBlocksChurn(t *testing.T) {
	s, r0, r1, sol0 := warmPair(t, 50)
	warm, err := s.SolveWarm(r1, WarmStart{
		Prev: sol0.Layout, PrevLoads: r0.ExpertLoads(), MigrationCost: 1e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Layout != sol0.Layout || warm.Migrations != 0 {
		t.Fatal("prohibitive migration cost must keep the previous layout")
	}
}

// TestSolveWarmForecastErrorDiscount: the forecast-error discount shrinks
// the believed improvement, so with a migration charge a shaky forecast
// must keep the previous layout where a trusted one migrates — and a zero
// error must reproduce the undiscounted score exactly.
func TestSolveWarmForecastErrorDiscount(t *testing.T) {
	s, r0, r1, sol0 := warmPair(t, 80)
	base := WarmStart{Prev: sol0.Layout, PrevLoads: r0.ExpertLoads()}

	trusted, err := s.SolveWarm(r1, base)
	if err != nil {
		t.Fatal(err)
	}
	zeroErr := base
	zeroErr.ForecastError = 0
	same, err := s.SolveWarm(r1, zeroErr)
	if err != nil {
		t.Fatal(err)
	}
	if !same.Layout.Equal(trusted.Layout) || same.Cost != trusted.Cost {
		t.Fatal("ForecastError 0 must reproduce the undiscounted solve")
	}
	neg := base
	neg.ForecastError = -3
	clamped, err := s.SolveWarm(r1, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !clamped.Layout.Equal(trusted.Layout) {
		t.Fatal("negative ForecastError must clamp to the undiscounted solve")
	}
	if trusted.Migrations == 0 {
		t.Fatal("fixture needs a drift that actually migrates")
	}

	// Charge migration at just under the trusted improvement per move: the
	// trusted solve still migrates, but any sizable forecast error
	// discounts the improvement below the charge and keeps Prev.
	sc := routePool.Get().(*routeScratch)
	keepCost := evalLayoutCost(r1, sol0.Layout, s.Topo, s.Params, sc)
	routePool.Put(sc)
	improvement := keepCost - trusted.Cost
	if improvement <= 0 {
		t.Fatal("fixture needs a strictly improving migration")
	}
	charge := 0.9 * improvement / float64(trusted.Migrations)
	charged := base
	charged.MigrationCost = charge
	still, err := s.SolveWarm(r1, charged)
	if err != nil {
		t.Fatal(err)
	}
	if still.Migrations == 0 {
		t.Fatal("charge below the improvement must still migrate")
	}
	shaky := charged
	shaky.ForecastError = 50 // discount ~1/51: believed improvement falls far below the charge
	kept, err := s.SolveWarm(r1, shaky)
	if err != nil {
		t.Fatal(err)
	}
	if kept.Layout != sol0.Layout || kept.Migrations != 0 {
		t.Fatal("a shaky forecast must not pay the migration charge")
	}
}

func TestSolveWarmShapeErrors(t *testing.T) {
	s, r0, _, sol0 := warmPair(t, 60)
	small := trace.NewRoutingMatrix(r0.N, r0.E-1)
	if _, err := s.SolveWarm(small, WarmStart{Prev: sol0.Layout}); err == nil {
		t.Fatal("mismatched expert count accepted")
	}
	if _, err := s.SolveWarm(r0, WarmStart{Prev: sol0.Layout, PrevLoads: []float64{1}}); err == nil {
		t.Fatal("mismatched previous loads accepted")
	}
}

func TestMigrationMoves(t *testing.T) {
	prev := NewLayout(2, 2)
	prev.A[0][0], prev.A[1][1] = 1, 1
	next := NewLayout(2, 2)
	next.A[0][1], next.A[1][1] = 1, 1
	if got := MigrationMoves(prev, next); got != 1 {
		t.Fatalf("MigrationMoves = %d, want 1", got)
	}
	if got := MigrationMoves(prev, prev); got != 0 {
		t.Fatalf("MigrationMoves(self) = %d, want 0", got)
	}
}

// TestSolveWarmNegativeThresholdMovesEverything: a negative threshold
// re-places every expert whose load changed at all (the documented escape
// from the zero-means-default trap).
func TestSolveWarmNegativeThresholdMovesEverything(t *testing.T) {
	s, r0, r1, sol0 := warmPair(t, 70)
	strict, err := s.SolveWarm(r1, WarmStart{Prev: sol0.Layout, PrevLoads: r0.ExpertLoads(), Threshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	// With every expert movable the incremental solve mirrors the cold
	// candidate set, so its cost can only improve on a loose threshold's.
	loose, err := s.SolveWarm(r1, WarmStart{Prev: sol0.Layout, PrevLoads: r0.ExpertLoads(), Threshold: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Cost > loose.Cost {
		t.Fatalf("negative threshold cost %g worse than keep-everything cost %g", strict.Cost, loose.Cost)
	}
	if err := strict.Layout.Validate(s.C, true); err != nil {
		t.Fatal(err)
	}
}
