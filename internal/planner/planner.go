package planner

import (
	"fmt"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// Planner is the asynchronous per-layer planning loop of Fig. 7: while
// layer L of iteration t executes, the CPU-side tuner combines the freshly
// observed routing of layer L with an exponential moving average of its
// history and solves the expert re-layout strategy that layer L will use
// in iteration t+1. The synchronous token dispatcher (lite routing) then
// maps each iteration's actual routing onto whatever layout is current.
type Planner struct {
	Layers int
	solver *Solver

	// HistoryAlpha is the EMA smoothing factor applied to observed routing
	// matrices before solving; 1.0 plans purely from the last iteration.
	HistoryAlpha float64

	history []*trace.RoutingMatrix // EMA state per layer (scaled floats kept as rounded ints)
	ema     [][][]float64          // raw EMA values per layer [n][e]
	layouts []*Layout              // layout in force per layer
}

// New builds a planner with an initial static-EP layout per layer, the
// state a training run starts from before any routing has been observed.
func New(topo *topology.Topology, layers, e, c int, params CostParams, opts SolverOptions, historyAlpha float64) (*Planner, error) {
	if layers <= 0 {
		return nil, fmt.Errorf("planner: layer count %d must be positive", layers)
	}
	if historyAlpha <= 0 || historyAlpha > 1 {
		return nil, fmt.Errorf("planner: history alpha %g out of (0,1]", historyAlpha)
	}
	initial, err := StaticEP(e, topo.N(), c)
	if err != nil {
		return nil, err
	}
	p := &Planner{
		Layers:       layers,
		solver:       NewSolver(topo, c, params, opts),
		HistoryAlpha: historyAlpha,
		layouts:      make([]*Layout, layers),
		ema:          make([][][]float64, layers),
	}
	for l := range p.layouts {
		p.layouts[l] = initial
	}
	return p, nil
}

// Layout returns the layout currently in force for a layer.
func (p *Planner) Layout(layer int) *Layout { return p.layouts[layer] }

// Dispatch runs the synchronous token dispatcher for a layer's observed
// routing against the layout currently in force.
func (p *Planner) Dispatch(layer int, r *trace.RoutingMatrix) *Dispatch {
	return LiteRouting(r, p.layouts[layer], p.solver.Topo)
}

// Observe folds the observed routing of one layer into its history and
// solves the re-layout strategy for the next iteration of that layer. The
// returned solution is informational; the planner installs its layout.
func (p *Planner) Observe(layer int, r *trace.RoutingMatrix) (*Solution, error) {
	if layer < 0 || layer >= p.Layers {
		return nil, fmt.Errorf("planner: layer %d out of range [0,%d)", layer, p.Layers)
	}
	if p.ema[layer] == nil {
		p.ema[layer] = make([][]float64, r.N)
		for i := range p.ema[layer] {
			p.ema[layer][i] = make([]float64, r.E)
			for j := range p.ema[layer][i] {
				p.ema[layer][i][j] = float64(r.R[i][j])
			}
		}
	} else {
		a := p.HistoryAlpha
		for i := 0; i < r.N; i++ {
			for j := 0; j < r.E; j++ {
				p.ema[layer][i][j] = a*float64(r.R[i][j]) + (1-a)*p.ema[layer][i][j]
			}
		}
	}
	predicted := trace.NewRoutingMatrix(r.N, r.E)
	for i := 0; i < r.N; i++ {
		for j := 0; j < r.E; j++ {
			predicted.R[i][j] = int(p.ema[layer][i][j] + 0.5)
		}
	}
	sol, err := p.solver.Solve(predicted)
	if err != nil {
		return nil, err
	}
	p.layouts[layer] = sol.Layout
	return sol, nil
}
