package planner

import (
	"fmt"
	"sort"

	"laermoe/internal/topology"
)

// ExpertRelocation implements Alg. 1: given the replica count and total
// load of each expert, place every replica on a device. Replicas are
// processed in descending order of per-replica load; each replica first
// restricts itself to the nodes currently holding the fewest replicas of
// its expert (so lite routing's intra-node splits stay balanced), then
// picks the least-loaded device with spare capacity among them. Devices
// already hosting the expert are avoided when possible — a duplicate
// replica on one device adds no routing flexibility.
func ExpertRelocation(expertRep []int, expertLoads []float64, topo *topology.Topology, c int) (*Layout, error) {
	e := len(expertRep)
	n := topo.N()
	if len(expertLoads) != e {
		return nil, fmt.Errorf("planner: %d replica counts but %d loads", e, len(expertLoads))
	}
	total := 0
	for j, r := range expertRep {
		if r < 1 {
			return nil, fmt.Errorf("planner: expert %d has %d replicas, need at least 1", j, r)
		}
		total += r
	}
	if total > n*c {
		return nil, fmt.Errorf("planner: %d replicas exceed %d capacity slots", total, n*c)
	}

	// Lines 3-5: one entry per replica carrying the expert's average load,
	// sorted by descending load (stable on expert index).
	type entry struct {
		expert int
		load   float64
	}
	list := make([]entry, 0, total)
	for j := 0; j < e; j++ {
		avg := expertLoads[j] / float64(expertRep[j])
		for r := 0; r < expertRep[j]; r++ {
			list = append(list, entry{expert: j, load: avg})
		}
	}
	sort.SliceStable(list, func(a, b int) bool {
		if list[a].load != list[b].load {
			return list[a].load > list[b].load
		}
		return list[a].expert < list[b].expert
	})

	layout := NewLayout(e, n)
	deviceLoads := make([]float64, n)
	deviceCount := make([]int, n)
	// nodeCnts[j*numNodes+node] tracks expert j's replicas per node,
	// maintained incrementally as replicas place (replacing a per-replica
	// recount over the whole layout).
	nn := topo.NumNodes
	nodeCnts := make([]int, e*nn)

	for _, it := range list {
		// Lines 7-9: nodes with the fewest replicas of this expert.
		nodeCnt := nodeCnts[it.expert*nn : (it.expert+1)*nn]
		minCnt := nodeCnt[0]
		for _, v := range nodeCnt[1:] {
			if v < minCnt {
				minCnt = v
			}
		}
		// Line 10: least-loaded device with capacity in a min node,
		// preferring devices not yet hosting this expert.
		pick := func(allowDup bool) int {
			best := -1
			for d := 0; d < n; d++ {
				if deviceCount[d] >= c || nodeCnt[topo.Node(d)] != minCnt {
					continue
				}
				if !allowDup && layout.A[it.expert][d] > 0 {
					continue
				}
				if best == -1 || deviceLoads[d] < deviceLoads[best] {
					best = d
				}
			}
			return best
		}
		dev := pick(false)
		if dev == -1 {
			dev = pick(true)
		}
		if dev == -1 {
			// Min-count nodes are full; fall back to any device with
			// spare capacity (least loaded).
			for d := 0; d < n; d++ {
				if deviceCount[d] >= c {
					continue
				}
				if dev == -1 || deviceLoads[d] < deviceLoads[dev] {
					dev = d
				}
			}
		}
		if dev == -1 {
			return nil, fmt.Errorf("planner: no device with spare capacity for expert %d", it.expert)
		}
		// Lines 11-13.
		layout.A[it.expert][dev]++
		nodeCnts[it.expert*nn+topo.Node(dev)]++
		deviceLoads[dev] += it.load
		deviceCount[dev]++
	}
	return layout, nil
}
