package planner

import (
	"fmt"
	"slices"

	"laermoe/internal/topology"
)

// ExpertRelocation implements Alg. 1: given the replica count and total
// load of each expert, place every replica on a device. Replicas are
// processed in descending order of per-replica load; each replica first
// restricts itself to the nodes currently holding the fewest replicas of
// its expert (so lite routing's intra-node splits stay balanced), then
// picks the least-loaded device with spare capacity among them. Devices
// already hosting the expert are avoided when possible — a duplicate
// replica on one device adds no routing flexibility.
func ExpertRelocation(expertRep []int, expertLoads []float64, topo *topology.Topology, c int) (*Layout, error) {
	e := len(expertRep)
	n := topo.N()
	if len(expertLoads) != e {
		return nil, fmt.Errorf("planner: %d replica counts but %d loads", e, len(expertLoads))
	}
	for j, r := range expertRep {
		if r < 1 {
			return nil, fmt.Errorf("planner: expert %d has %d replicas, need at least 1", j, r)
		}
	}
	layout := NewLayout(e, n)
	if err := placeReplicas(layout, expertRep, expertLoads, make([]float64, n), make([]int, n), topo, c); err != nil {
		return nil, err
	}
	return layout, nil
}

// placeEntry is one replica awaiting placement, carrying its expert's
// average load (Alg. 1 lines 3-5).
type placeEntry struct {
	expert int
	load   float64
}

// placeScratch holds the reusable working set of placeReplicas: the sorted
// replica list and the per-(expert,node) replica counters. A nil scratch
// allocates fresh buffers (the cold path).
type placeScratch struct {
	list     []placeEntry
	nodeCnts []int
}

// placeReplicas is the greedy core of Alg. 1, generalized to start from a
// partially filled layout: it places expertRep[j] additional replicas of
// each expert j (0 places nothing) onto layout, whose existing replicas
// must already be accounted in deviceLoads and deviceCount. The warm-start
// solver uses it to re-place only the experts whose load drifted while
// every other expert keeps its previous devices.
func placeReplicas(layout *Layout, expertRep []int, expertLoads []float64, deviceLoads []float64, deviceCount []int, topo *topology.Topology, c int) error {
	return placeReplicasScratch(layout, expertRep, expertLoads, deviceLoads, deviceCount, topo, c, nil)
}

// placeReplicasScratch is placeReplicas with an optional reusable working
// set, for steady-state allocation-free warm solves.
func placeReplicasScratch(layout *Layout, expertRep []int, expertLoads []float64, deviceLoads []float64, deviceCount []int, topo *topology.Topology, c int, ps *placeScratch) error {
	e, n := layout.E, layout.N
	if len(expertRep) != e || len(expertLoads) != e {
		return fmt.Errorf("planner: %d replica counts / %d loads for %d experts", len(expertRep), len(expertLoads), e)
	}
	total := 0
	for j, r := range expertRep {
		if r < 0 {
			return fmt.Errorf("planner: expert %d has negative replica count %d", j, r)
		}
		total += r
	}
	existing := 0
	for _, cnt := range deviceCount {
		existing += cnt
	}
	// The slot budget counts available devices only: a masked (failed)
	// device contributes no capacity and is never a placement target.
	if slots := topo.NumAvailable() * c; existing+total > slots {
		return fmt.Errorf("planner: %d replicas exceed %d capacity slots", existing+total, slots)
	}
	if ps == nil {
		ps = &placeScratch{}
	}

	// Lines 3-5: one entry per replica carrying the expert's average load,
	// sorted by descending load (stable on expert index).
	list := ps.list[:0]
	if cap(list) < total {
		list = make([]placeEntry, 0, total)
	}
	for j := 0; j < e; j++ {
		if expertRep[j] == 0 {
			continue
		}
		avg := expertLoads[j] / float64(expertRep[j])
		for r := 0; r < expertRep[j]; r++ {
			list = append(list, placeEntry{expert: j, load: avg})
		}
	}
	ps.list = list
	slices.SortStableFunc(list, func(a, b placeEntry) int {
		switch {
		case a.load > b.load:
			return -1
		case a.load < b.load:
			return 1
		default:
			return a.expert - b.expert
		}
	})

	// nodeCnts[j*numNodes+node] tracks expert j's replicas per node,
	// maintained incrementally as replicas place (replacing a per-replica
	// recount over the whole layout). Seeded from the base layout so a
	// warm start's kept replicas keep counting toward intra-node balance.
	nn := topo.NumNodes
	if cap(ps.nodeCnts) < e*nn {
		ps.nodeCnts = make([]int, e*nn)
	}
	nodeCnts := ps.nodeCnts[:e*nn]
	for i := range nodeCnts {
		nodeCnts[i] = 0
	}
	for j := 0; j < e; j++ {
		for d, v := range layout.A[j] {
			if v > 0 {
				nodeCnts[j*nn+topo.Node(d)] += v
			}
		}
	}

	for _, it := range list {
		// Lines 7-9: nodes with the fewest replicas of this expert. Only
		// alive nodes count — a failed node has zero replicas of every
		// expert and would otherwise pin minCnt at 0 forever, emptying the
		// candidate device set.
		nodeCnt := nodeCnts[it.expert*nn : (it.expert+1)*nn]
		minCnt := -1
		for nd, v := range nodeCnt {
			if !topo.NodeAlive(nd) {
				continue
			}
			if minCnt == -1 || v < minCnt {
				minCnt = v
			}
		}
		// Line 10: least-loaded available device with capacity in a min
		// node, preferring devices not yet hosting this expert.
		pick := func(allowDup bool) int {
			best := -1
			for d := 0; d < n; d++ {
				if deviceCount[d] >= c || nodeCnt[topo.Node(d)] != minCnt || !topo.Available(d) {
					continue
				}
				if !allowDup && layout.A[it.expert][d] > 0 {
					continue
				}
				if best == -1 || deviceLoads[d] < deviceLoads[best] {
					best = d
				}
			}
			return best
		}
		dev := pick(false)
		if dev == -1 {
			dev = pick(true)
		}
		if dev == -1 {
			// Min-count nodes are full; fall back to any available device
			// with spare capacity (least loaded).
			for d := 0; d < n; d++ {
				if deviceCount[d] >= c || !topo.Available(d) {
					continue
				}
				if dev == -1 || deviceLoads[d] < deviceLoads[dev] {
					dev = d
				}
			}
		}
		if dev == -1 {
			return fmt.Errorf("planner: no device with spare capacity for expert %d", it.expert)
		}
		// Lines 11-13.
		layout.A[it.expert][dev]++
		nodeCnts[it.expert*nn+topo.Node(dev)]++
		deviceLoads[dev] += it.load
		deviceCount[dev]++
	}
	return nil
}

// migrationMovesRows is MigrationMoves restricted to the given expert
// rows: when two layouts are known to agree outside those rows (the warm
// solver's incremental candidates), counting the rest is wasted work.
func migrationMovesRows(prev, next *Layout, rows []int) int {
	moves := 0
	for _, j := range rows {
		prow, nrow := prev.A[j], next.A[j]
		for d := range nrow {
			if delta := nrow[d] - prow[d]; delta > 0 {
				moves += delta
			}
		}
	}
	return moves
}

// MigrationMoves returns the number of expert replicas that must be
// restored onto a device that did not host them before — the relocation
// volume of switching from prev to next:
//
//	Σ_j Σ_d max(0, next.A[j][d] − prev.A[j][d])
//
// Under FSEP the move is free (parameters are re-gathered every layer
// anyway); traditional relocation schemes pay parameters plus optimizer
// state per move (costmodel.ExpertMigrationBytes). Panics on shape
// mismatch, matching LiteRouting's contract.
func MigrationMoves(prev, next *Layout) int {
	if prev.E != next.E || prev.N != next.N {
		panic(fmt.Sprintf("planner: migration between %dx%d and %dx%d layouts", prev.E, prev.N, next.E, next.N))
	}
	moves := 0
	for j := 0; j < next.E; j++ {
		for d := 0; d < next.N; d++ {
			if delta := next.A[j][d] - prev.A[j][d]; delta > 0 {
				moves += delta
			}
		}
	}
	return moves
}
