package planner

import (
	"testing"
	"testing/quick"
)

func TestReplicaAllocationBasics(t *testing.T) {
	loads := []float64{100, 10, 10, 10}
	reps, err := ReplicaAllocation(loads, 4, 2) // 8 slots
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for j, r := range reps {
		if r < 1 {
			t.Errorf("expert %d has %d replicas, want >= 1", j, r)
		}
		total += r
	}
	if total != 8 {
		t.Errorf("total replicas %d, want 8", total)
	}
	if reps[0] < reps[1] || reps[0] < reps[2] || reps[0] < reps[3] {
		t.Errorf("hot expert under-replicated: %v", reps)
	}
	// With a 10:1 load ratio and 8 slots, the hot expert should take the
	// lion's share: 100/5 = 20 still beats 10/1 = 10, so it gets 5.
	if reps[0] != 5 {
		t.Errorf("hot expert replicas = %d, want 5", reps[0])
	}
}

// TestReplicaAllocationMinimizesMaxAverage checks the priority-queue
// property: no single replica reassignment can reduce the maximum
// per-replica average load (the greedy is locally optimal).
func TestReplicaAllocationMinimizesMaxAverage(t *testing.T) {
	loads := []float64{73, 19, 42, 8, 55, 31, 27, 12}
	reps, err := ReplicaAllocation(loads, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	maxAvg := func(rs []int) float64 {
		worst := 0.0
		for j, r := range rs {
			if avg := loads[j] / float64(r); avg > worst {
				worst = avg
			}
		}
		return worst
	}
	base := maxAvg(reps)
	for from := range reps {
		if reps[from] <= 1 {
			continue
		}
		for to := range reps {
			if to == from {
				continue
			}
			trial := append([]int(nil), reps...)
			trial[from]--
			trial[to]++
			if maxAvg(trial) < base-1e-9 {
				t.Errorf("moving a replica %d->%d improves max average (%v)", from, to, reps)
			}
		}
	}
}

// TestReplicaAllocationInvariants: property-based — all slots used, every
// expert covered, deterministic.
func TestReplicaAllocationInvariants(t *testing.T) {
	f := func(raw []uint16, nRaw, cRaw uint8) bool {
		e := len(raw)
		if e == 0 || e > 64 {
			return true
		}
		n := int(nRaw%32) + 1
		c := int(cRaw%4) + 1
		if n*c < e {
			return true
		}
		loads := make([]float64, e)
		for i, v := range raw {
			loads[i] = float64(v)
		}
		a, err := ReplicaAllocation(loads, n, c)
		if err != nil {
			return false
		}
		b, err := ReplicaAllocation(loads, n, c)
		if err != nil {
			return false
		}
		total := 0
		for j := range a {
			if a[j] < 1 || a[j] != b[j] {
				return false
			}
			total += a[j]
		}
		return total == n*c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestEvenAllocation(t *testing.T) {
	loads := []float64{5, 50, 20, 1}
	reps, err := EvenAllocation(loads, 4, 2) // 8 slots over 4 experts
	if err != nil {
		t.Fatal(err)
	}
	for j, r := range reps {
		if r != 2 {
			t.Errorf("expert %d: %d replicas, want 2", j, r)
		}
	}
	// Indivisible: 3 devices x 2 slots = 6 slots over 4 experts -> the two
	// hottest experts get the remainder.
	reps, err = EvenAllocation(loads, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reps[1] != 2 || reps[2] != 2 || reps[0] != 1 || reps[3] != 1 {
		t.Errorf("remainder not given to hottest experts: %v", reps)
	}
}

func TestAllocationErrors(t *testing.T) {
	if _, err := ReplicaAllocation(nil, 4, 2); err == nil {
		t.Error("empty loads accepted")
	}
	if _, err := ReplicaAllocation(make([]float64, 10), 2, 2); err == nil {
		t.Error("insufficient slots accepted")
	}
	if _, err := EvenAllocation(nil, 4, 2); err == nil {
		t.Error("empty loads accepted by even allocation")
	}
	if _, err := EvenAllocation(make([]float64, 10), 2, 2); err == nil {
		t.Error("insufficient slots accepted by even allocation")
	}
}

func TestArgsortDesc(t *testing.T) {
	got := argsortDesc([]float64{3, 9, 1, 9})
	// Ties break on the lower index.
	want := []int{1, 3, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("argsortDesc = %v, want %v", got, want)
		}
	}
}
