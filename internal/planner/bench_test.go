package planner

import (
	"testing"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

func benchMatrix(b *testing.B, n, e, tokens int) *trace.RoutingMatrix {
	b.Helper()
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: n, Experts: e, Layers: 1, TokensPerDevice: tokens, TopK: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return gen.Step()[0]
}

// BenchmarkLiteRouting32 measures the synchronous token dispatcher at the
// paper's evaluation scale (Table 3's subject).
func BenchmarkLiteRouting32(b *testing.B) {
	topo := topology.Default()
	r := benchMatrix(b, 32, 8, 16384)
	s := NewSolver(topo, 2, CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12}, DefaultSolverOptions())
	sol, err := s.Solve(r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LiteRouting(r, sol.Layout, topo)
	}
}

// BenchmarkSolve scales the full Alg. 2 layout tuner (Fig. 11's subject).
func BenchmarkSolve(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		b.Run(benchName(n), func(b *testing.B) {
			topo := topology.New(n/8, 8)
			r := benchMatrix(b, n, 8, 16384)
			s := NewSolver(topo, 2, CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12},
				SolverOptions{Epsilon: 2})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplicaAllocation measures Alg. 4 alone.
func BenchmarkReplicaAllocation(b *testing.B) {
	r := benchMatrix(b, 128, 16, 16384)
	loads := r.ExpertLoads()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplicaAllocation(loads, 128, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpertRelocation measures Alg. 1 alone.
func BenchmarkExpertRelocation(b *testing.B) {
	topo := topology.New(16, 8)
	r := benchMatrix(b, 128, 8, 16384)
	loads := r.ExpertLoads()
	reps, err := ReplicaAllocation(loads, 128, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExpertRelocation(reps, loads, topo, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveWarm measures the warm-start re-solve at the scale
// experiment's production shape (512 devices, 2048 experts, C=4): the
// keep path (loads unchanged, the common steady-state outcome) and the
// replan path (drifted loads re-place part of the expert set).
func BenchmarkSolveWarm(b *testing.B) {
	topo := topology.New(64, 8)
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: 512, Experts: 2048, Layers: 1, TokensPerDevice: 2048, TopK: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	r0 := gen.Step()[0]
	if err := gen.ApplyDrift(trace.DriftConfig{Model: trace.DriftMigration, Rate: 0.4}); err != nil {
		b.Fatal(err)
	}
	r1 := gen.Step()[0]
	s := NewSolver(topo, 4, CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12},
		SolverOptions{Epsilon: 2})
	sol0, err := s.Solve(r0)
	if err != nil {
		b.Fatal(err)
	}
	prevLoads := r0.ExpertLoads()

	// The production keep path: a drift tracker rides along (as the online
	// planner's warm starts do), so a stationary observation folds in as a
	// matrix diff plus a cached keep cost instead of a full re-score.
	tr := NewDriftTracker(topo)
	if err := tr.Rebase(r0, sol0.Layout, prevLoads, 0); err != nil {
		b.Fatal(err)
	}
	b.Run("keep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.SolveWarm(r0, WarmStart{Prev: sol0.Layout, PrevLoads: prevLoads, Tracker: tr}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The same warm start without a tracker — the full per-expert re-scan
	// and layout cost evaluation the incremental path amortizes away.
	b.Run("keep-full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := s.SolveWarm(r0, WarmStart{Prev: sol0.Layout, PrevLoads: prevLoads}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := s.SolveWarm(r1, WarmStart{Prev: sol0.Layout, PrevLoads: prevLoads})
			if err != nil {
				b.Fatal(err)
			}
			// Steady-state protocol: the caller returns the layout it drops
			// to the solver's free list (here the fresh winner, since the
			// benchmark re-solves from the same previous epoch each time).
			if sol.Layout != sol0.Layout {
				s.Recycle(sol.Layout)
			}
		}
	})
}

func benchName(n int) string {
	switch n {
	case 32:
		return "N=32"
	case 128:
		return "N=128"
	default:
		return "N=512"
	}
}
