package planner

import (
	"testing"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

func benchMatrix(b *testing.B, n, e, tokens int) *trace.RoutingMatrix {
	b.Helper()
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: n, Experts: e, Layers: 1, TokensPerDevice: tokens, TopK: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return gen.Step()[0]
}

// BenchmarkLiteRouting32 measures the synchronous token dispatcher at the
// paper's evaluation scale (Table 3's subject).
func BenchmarkLiteRouting32(b *testing.B) {
	topo := topology.Default()
	r := benchMatrix(b, 32, 8, 16384)
	s := NewSolver(topo, 2, CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12}, DefaultSolverOptions())
	sol, err := s.Solve(r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LiteRouting(r, sol.Layout, topo)
	}
}

// BenchmarkSolve scales the full Alg. 2 layout tuner (Fig. 11's subject).
func BenchmarkSolve(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		b.Run(benchName(n), func(b *testing.B) {
			topo := topology.New(n/8, 8)
			r := benchMatrix(b, n, 8, 16384)
			s := NewSolver(topo, 2, CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12},
				SolverOptions{Epsilon: 2})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplicaAllocation measures Alg. 4 alone.
func BenchmarkReplicaAllocation(b *testing.B) {
	r := benchMatrix(b, 128, 16, 16384)
	loads := r.ExpertLoads()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReplicaAllocation(loads, 128, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExpertRelocation measures Alg. 1 alone.
func BenchmarkExpertRelocation(b *testing.B) {
	topo := topology.New(16, 8)
	r := benchMatrix(b, 128, 8, 16384)
	loads := r.ExpertLoads()
	reps, err := ReplicaAllocation(loads, 128, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExpertRelocation(reps, loads, topo, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func benchName(n int) string {
	switch n {
	case 32:
		return "N=32"
	case 128:
		return "N=128"
	default:
		return "N=512"
	}
}
