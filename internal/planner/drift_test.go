package planner

import (
	"math"
	"testing"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// driftFixture builds a solved layout plus a generator mid-stream, the
// state a tracker is born into.
func driftFixture(t *testing.T, n, e, tokens int) (*topology.Topology, *Solver, *trace.Generator, *trace.RoutingMatrix, *Solution) {
	t.Helper()
	topo := topology.New(n/4, 4)
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: n, Experts: e, Layers: 1, TokensPerDevice: tokens, TopK: 2, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(topo, 2*e/n, CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12},
		SolverOptions{Epsilon: 2})
	r0 := gen.Step()[0].Clone()
	sol0, err := s.Solve(r0)
	if err != nil {
		t.Fatal(err)
	}
	return topo, s, gen, r0, sol0
}

// TestDriftTrackerMatchesFullRecompute drives a tracker through a drift
// sequence and checks, at every step, that its incremental state equals
// the from-scratch recomputation: per-expert loads bit for bit, the
// over-threshold flags against SolveWarm's moved[] formula, and the
// device-load imbalance against LiteImbalance.
func TestDriftTrackerMatchesFullRecompute(t *testing.T) {
	topo, _, gen, r0, sol0 := driftFixture(t, 16, 64, 256)
	base := r0.ExpertLoads()
	thr := 0.1

	tr := NewDriftTracker(topo)
	if err := tr.Rebase(r0, sol0.Layout, base, thr); err != nil {
		t.Fatal(err)
	}
	if !tr.Synced(sol0.Layout, base, thr) {
		t.Fatal("freshly rebased tracker is not synced with its own warm start")
	}

	for step := 0; step < 6; step++ {
		if err := gen.ApplyDrift(trace.DriftConfig{Model: trace.DriftMigration, Rate: 0.3}); err != nil {
			t.Fatal(err)
		}
		r := gen.Step()[0]
		if _, err := tr.Update(r); err != nil {
			t.Fatal(err)
		}

		wantLoads := r.ExpertLoads()
		gotLoads := tr.Loads()
		for j := range wantLoads {
			if gotLoads[j] != wantLoads[j] {
				t.Fatalf("step %d expert %d: tracked load %v, want %v", step, j, gotLoads[j], wantLoads[j])
			}
		}

		// SolveWarm's moved[] predicate, recomputed densely.
		anyOver := false
		moved := make([]bool, len(base))
		tr.copyOver(moved)
		for j := range base {
			denom := base[j]
			if denom < 1 {
				denom = 1
			}
			want := math.Abs(wantLoads[j]-base[j])/denom > thr
			if moved[j] != want {
				t.Fatalf("step %d expert %d: over-threshold %v, want %v", step, j, moved[j], want)
			}
			anyOver = anyOver || want
		}
		if tr.AnyOver() != anyOver {
			t.Fatalf("step %d: AnyOver %v, want %v", step, tr.AnyOver(), anyOver)
		}

		if got, want := tr.Imbalance(), LiteImbalance(r, sol0.Layout, topo); got != want {
			t.Fatalf("step %d: tracked imbalance %v, want %v (must be bit-identical)", step, got, want)
		}
	}
}

// TestDriftTrackerUpdateEqualsRebase checks that a tracker that reached a
// state through N incremental updates is indistinguishable from one
// rebased directly onto the final observation.
func TestDriftTrackerUpdateEqualsRebase(t *testing.T) {
	topo, _, gen, r0, sol0 := driftFixture(t, 12, 48, 192)
	base := r0.ExpertLoads()

	inc := NewDriftTracker(topo)
	if err := inc.Rebase(r0, sol0.Layout, base, 0.15); err != nil {
		t.Fatal(err)
	}
	var last *trace.RoutingMatrix
	for step := 0; step < 5; step++ {
		if err := gen.ApplyDrift(trace.DriftConfig{Model: trace.DriftBursty, Rate: 0.25}); err != nil {
			t.Fatal(err)
		}
		last = gen.Step()[0]
		if _, err := inc.Update(last); err != nil {
			t.Fatal(err)
		}
	}

	fresh := NewDriftTracker(topo)
	if err := fresh.Rebase(last, sol0.Layout, base, 0.15); err != nil {
		t.Fatal(err)
	}
	il, fl := inc.Loads(), fresh.Loads()
	for j := range fl {
		if il[j] != fl[j] {
			t.Fatalf("expert %d: incremental load %v, rebased %v", j, il[j], fl[j])
		}
	}
	im, fm := make([]bool, len(il)), make([]bool, len(fl))
	inc.copyOver(im)
	fresh.copyOver(fm)
	for j := range fm {
		if im[j] != fm[j] {
			t.Fatalf("expert %d: incremental over %v, rebased %v", j, im[j], fm[j])
		}
	}
	if inc.Imbalance() != fresh.Imbalance() {
		t.Fatalf("imbalance: incremental %v, rebased %v", inc.Imbalance(), fresh.Imbalance())
	}
	if inc.CanKeep() != fresh.CanKeep() {
		t.Fatalf("CanKeep: incremental %v, rebased %v", inc.CanKeep(), fresh.CanKeep())
	}
}

// TestSolveWarmTrackedMatchesUntracked pins the tentpole contract at the
// solver level: across a drift sequence spanning keep and replan
// outcomes, a SolveWarm fed a synchronized tracker returns exactly the
// solution of an untracked SolveWarm on an identically seeded solver —
// same layout cells, same cost bits, same candidate count.
func TestSolveWarmTrackedMatchesUntracked(t *testing.T) {
	topo, sTracked, gen, r0, solT := driftFixture(t, 16, 64, 256)
	sPlain := NewSolver(topo, 2*64/16, CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12},
		SolverOptions{Epsilon: 2})
	solP, err := sPlain.Solve(r0)
	if err != nil {
		t.Fatal(err)
	}
	if !solT.Layout.Equal(solP.Layout) {
		t.Fatal("identically seeded solvers disagree before any warm start")
	}

	prevT, prevP := solT.Layout, solP.Layout
	loadsT := r0.ExpertLoads()
	loadsP := append([]float64(nil), loadsT...)
	thr := 0.1

	tr := NewDriftTracker(topo)
	if err := tr.Rebase(r0, prevT, loadsT, thr); err != nil {
		t.Fatal(err)
	}

	keeps, replans := 0, 0
	var r *trace.RoutingMatrix
	for step := 0; step < 8; step++ {
		// Alternate drifted and repeated observations: a fresh post-drift
		// sample exercises the incremental re-score, re-submitting the
		// same matrix exercises the guaranteed-keep fast path.
		if step%2 == 0 {
			if err := gen.ApplyDrift(trace.DriftConfig{Model: trace.DriftMigration, Rate: 0.35}); err != nil {
				t.Fatal(err)
			}
			r = gen.Step()[0]
		}

		wsT := WarmStart{Prev: prevT, PrevLoads: loadsT, Threshold: thr, MigrationCost: 1e-6, Tracker: tr}
		if !tr.Synced(prevT, loadsT, thr) {
			t.Fatalf("step %d: tracker lost sync", step)
		}
		a, err := sTracked.SolveWarm(r, wsT)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sPlain.SolveWarm(r, WarmStart{Prev: prevP, PrevLoads: loadsP, Threshold: thr, MigrationCost: 1e-6})
		if err != nil {
			t.Fatal(err)
		}

		if (a.Layout == prevT) != (b.Layout == prevP) {
			t.Fatalf("step %d: tracked kept=%v, untracked kept=%v", step, a.Layout == prevT, b.Layout == prevP)
		}
		if !a.Layout.Equal(b.Layout) {
			t.Fatalf("step %d: tracked and untracked layouts diverge", step)
		}
		if a.Cost != b.Cost {
			t.Fatalf("step %d: tracked cost %v, untracked %v (must be bit-identical)", step, a.Cost, b.Cost)
		}
		if a.Candidates != b.Candidates {
			t.Fatalf("step %d: tracked candidates %d, untracked %d", step, a.Candidates, b.Candidates)
		}

		if a.Layout != prevT {
			replans++
			// Mirror the online planner's lifecycle: install, advance the
			// baseline, rebase the tracker on the new epoch.
			if prevT != solT.Layout {
				sTracked.Recycle(prevT)
			}
			prevT = a.Layout
			loadsT = r.ExpertLoadsInto(loadsT)
			if err := tr.Rebase(r, prevT, loadsT, thr); err != nil {
				t.Fatal(err)
			}
			if prevP != solP.Layout {
				sPlain.Recycle(prevP)
			}
			prevP = b.Layout
			loadsP = r.ExpertLoadsInto(loadsP)
		} else {
			keeps++
		}
	}
	if keeps == 0 || replans == 0 {
		t.Fatalf("drift sequence exercised keeps=%d replans=%d; want both paths", keeps, replans)
	}
}

// TestDriftTrackerDesyncIsIgnored checks the safety valve: a tracker
// bound to a different layout, baseline slice or threshold than the warm
// start must not engage, and SolveWarm must fall back to the full path.
func TestDriftTrackerDesyncIsIgnored(t *testing.T) {
	topo, s, gen, r0, sol0 := driftFixture(t, 8, 32, 128)
	base := r0.ExpertLoads()
	tr := NewDriftTracker(topo)
	if err := tr.Rebase(r0, sol0.Layout, base, 0.2); err != nil {
		t.Fatal(err)
	}

	other := append([]float64(nil), base...)
	if tr.Synced(sol0.Layout, other, 0.2) {
		t.Fatal("tracker claims sync with a different baseline slice")
	}
	if tr.Synced(sol0.Layout, base, 0.3) {
		t.Fatal("tracker claims sync with a different threshold")
	}
	if tr.Synced(nil, base, 0.2) {
		t.Fatal("tracker claims sync with a different layout")
	}
	// A nil baseline means SolveWarm re-scores everything; the tracker
	// must never engage for it.
	if err := tr.Rebase(r0, sol0.Layout, nil, 0.2); err != nil {
		t.Fatal(err)
	}
	if tr.Synced(sol0.Layout, nil, 0.2) {
		t.Fatal("tracker claims sync with a nil baseline")
	}

	// A desynchronized tracker passed to SolveWarm is ignored: the result
	// matches an untracked call bit for bit.
	r1 := gen.Step()[0]
	a, err := s.SolveWarm(r1, WarmStart{Prev: sol0.Layout, PrevLoads: other, Threshold: 0.2, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.SolveWarm(r1, WarmStart{Prev: sol0.Layout, PrevLoads: other, Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Layout.Equal(b.Layout) || a.Cost != b.Cost {
		t.Fatal("desynchronized tracker changed the solve result")
	}

	tr.Invalidate()
	if tr.Valid() || tr.Layout() != nil || tr.CanKeep() {
		t.Fatal("invalidated tracker still reports usable state")
	}
}
