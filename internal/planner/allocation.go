package planner

import (
	"fmt"
)

// ReplicaAllocation implements Alg. 4: starting from one replica per
// expert, repeatedly give one more replica to the expert with the highest
// average load (load divided by current replica count) until all N*C
// replica slots are used. Ties break on the lower expert index so the
// result is deterministic.
//
// The priority queue is a typed binary heap rather than container/heap:
// the N*C-E pop/push rounds would otherwise box one loadItem per
// operation through the interface{} API.
func ReplicaAllocation(expertLoads []float64, n, c int) ([]int, error) {
	return allocateReplicas(expertLoads, n*c)
}

// allocateReplicas is ReplicaAllocation over an explicit slot budget; the
// warm-start solver uses it to re-allocate only the slots freed by the
// experts being re-placed.
func allocateReplicas(expertLoads []float64, slots int) ([]int, error) {
	e := len(expertLoads)
	if e == 0 {
		return nil, fmt.Errorf("planner: no experts")
	}
	if slots < e {
		return nil, fmt.Errorf("planner: %d replica slots cannot cover %d experts", slots, e)
	}
	reps := make([]int, e)
	pq := make(loadHeap, e)
	for j := 0; j < e; j++ {
		reps[j] = 1
		pq[j] = loadItem{expert: j, avgLoad: expertLoads[j]}
	}
	for j := len(pq)/2 - 1; j >= 0; j-- {
		pq.siftDown(j)
	}
	for used := e; used < slots; used++ {
		j := pq[0].expert
		reps[j]++
		// Replace the root in place with the expert's new average load.
		pq[0].avgLoad = expertLoads[j] / float64(reps[j])
		pq.siftDown(0)
	}
	return reps, nil
}

// EvenAllocation implements the uniform scheme of Alg. 2 line 3: every
// expert receives floor(N*C/E) replicas, and the remainder (when E does
// not divide N*C) is assigned to the highest-load experts so all slots are
// used and Eq. 3 can hold with equality.
func EvenAllocation(expertLoads []float64, n, c int) ([]int, error) {
	return allocateEven(expertLoads, n*c)
}

// allocateEven is EvenAllocation over an explicit slot budget.
func allocateEven(expertLoads []float64, slots int) ([]int, error) {
	e := len(expertLoads)
	if e == 0 {
		return nil, fmt.Errorf("planner: no experts")
	}
	if slots < e {
		return nil, fmt.Errorf("planner: %d replica slots cannot cover %d experts", slots, e)
	}
	reps := make([]int, e)
	base := slots / e
	for j := range reps {
		reps[j] = base
	}
	rem := slots - base*e
	if rem > 0 {
		order := argsortDesc(expertLoads)
		for k := 0; k < rem; k++ {
			reps[order[k%e]]++
		}
	}
	return reps, nil
}

// loadItem orders experts by average load, highest first.
type loadItem struct {
	expert  int
	avgLoad float64
}

type loadHeap []loadItem

func (h loadHeap) less(i, j int) bool {
	if h[i].avgLoad != h[j].avgLoad {
		return h[i].avgLoad > h[j].avgLoad
	}
	return h[i].expert < h[j].expert
}

// siftDown restores the heap property below index i.
func (h loadHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && h.less(l, best) {
			best = l
		}
		if r < len(h) && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// argsortDesc returns indices of xs sorted by descending value with stable
// index tie-break.
func argsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort keeps this dependency-free and deterministic; the
	// slices involved are expert counts (tiny).
	for i := 1; i < len(idx); i++ {
		for k := i; k > 0; k-- {
			a, b := idx[k-1], idx[k]
			if xs[b] > xs[a] || (xs[b] == xs[a] && b < a) {
				idx[k-1], idx[k] = b, a
			} else {
				break
			}
		}
	}
	return idx
}
