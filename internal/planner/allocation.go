package planner

import (
	"fmt"
	"slices"
)

// ReplicaAllocation implements Alg. 4: starting from one replica per
// expert, repeatedly give one more replica to the expert with the highest
// average load (load divided by current replica count) until all N*C
// replica slots are used. Ties break on the lower expert index so the
// result is deterministic.
//
// The priority queue is a typed binary heap rather than container/heap:
// the N*C-E pop/push rounds would otherwise box one loadItem per
// operation through the interface{} API.
func ReplicaAllocation(expertLoads []float64, n, c int) ([]int, error) {
	return allocateReplicas(expertLoads, n*c)
}

// allocateReplicas is ReplicaAllocation over an explicit slot budget; the
// warm-start solver uses it to re-allocate only the slots freed by the
// experts being re-placed.
func allocateReplicas(expertLoads []float64, slots int) ([]int, error) {
	reps := make([]int, len(expertLoads))
	if err := allocateReplicasInto(reps, expertLoads, slots, nil); err != nil {
		return nil, err
	}
	return reps, nil
}

// allocateReplicasInto is allocateReplicas writing into reps
// (len(expertLoads)) with an optional reusable heap buffer, for
// steady-state allocation-free warm solves.
func allocateReplicasInto(reps []int, expertLoads []float64, slots int, pq loadHeap) error {
	e := len(expertLoads)
	if e == 0 {
		return fmt.Errorf("planner: no experts")
	}
	if slots < e {
		return fmt.Errorf("planner: %d replica slots cannot cover %d experts", slots, e)
	}
	if cap(pq) < e {
		pq = make(loadHeap, e)
	}
	pq = pq[:e]
	for j := 0; j < e; j++ {
		reps[j] = 1
		pq[j] = loadItem{expert: j, avgLoad: expertLoads[j]}
	}
	for j := len(pq)/2 - 1; j >= 0; j-- {
		pq.siftDown(j)
	}
	for used := e; used < slots; used++ {
		j := pq[0].expert
		reps[j]++
		// Replace the root in place with the expert's new average load.
		pq[0].avgLoad = expertLoads[j] / float64(reps[j])
		pq.siftDown(0)
	}
	return nil
}

// EvenAllocation implements the uniform scheme of Alg. 2 line 3: every
// expert receives floor(N*C/E) replicas, and the remainder (when E does
// not divide N*C) is assigned to the highest-load experts so all slots are
// used and Eq. 3 can hold with equality.
func EvenAllocation(expertLoads []float64, n, c int) ([]int, error) {
	return allocateEven(expertLoads, n*c)
}

// allocateEven is EvenAllocation over an explicit slot budget.
func allocateEven(expertLoads []float64, slots int) ([]int, error) {
	reps := make([]int, len(expertLoads))
	if err := allocateEvenInto(reps, expertLoads, slots, nil); err != nil {
		return nil, err
	}
	return reps, nil
}

// allocateEvenInto is allocateEven writing into reps (len(expertLoads))
// with an optional reusable index buffer.
func allocateEvenInto(reps []int, expertLoads []float64, slots int, order []int) error {
	e := len(expertLoads)
	if e == 0 {
		return fmt.Errorf("planner: no experts")
	}
	if slots < e {
		return fmt.Errorf("planner: %d replica slots cannot cover %d experts", slots, e)
	}
	base := slots / e
	for j := range reps {
		reps[j] = base
	}
	rem := slots - base*e
	if rem > 0 {
		order = argsortDescInto(order, expertLoads)
		for k := 0; k < rem; k++ {
			reps[order[k%e]]++
		}
	}
	return nil
}

// loadItem orders experts by average load, highest first.
type loadItem struct {
	expert  int
	avgLoad float64
}

type loadHeap []loadItem

func (h loadHeap) less(i, j int) bool {
	if h[i].avgLoad != h[j].avgLoad {
		return h[i].avgLoad > h[j].avgLoad
	}
	return h[i].expert < h[j].expert
}

// siftDown restores the heap property below index i.
func (h loadHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(h) && h.less(l, best) {
			best = l
		}
		if r < len(h) && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// argsortDesc returns indices of xs sorted by descending value with stable
// index tie-break.
func argsortDesc(xs []float64) []int {
	return argsortDescInto(nil, xs)
}

// argsortDescInto is argsortDesc reusing idx's capacity. The (value desc,
// index asc) key is a total order, so a plain sort is deterministic; the
// previous insertion sort went quadratic at production expert counts.
func argsortDescInto(idx []int, xs []float64) []int {
	if cap(idx) < len(xs) {
		idx = make([]int, len(xs))
	}
	idx = idx[:len(xs)]
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		switch {
		case xs[a] > xs[b]:
			return -1
		case xs[a] < xs[b]:
			return 1
		default:
			return a - b
		}
	})
	return idx
}
