package planner

import (
	"container/heap"
	"fmt"
)

// ReplicaAllocation implements Alg. 4: starting from one replica per
// expert, repeatedly give one more replica to the expert with the highest
// average load (load divided by current replica count) until all N*C
// replica slots are used. Ties break on the lower expert index so the
// result is deterministic.
func ReplicaAllocation(expertLoads []float64, n, c int) ([]int, error) {
	e := len(expertLoads)
	if e == 0 {
		return nil, fmt.Errorf("planner: no experts")
	}
	slots := n * c
	if slots < e {
		return nil, fmt.Errorf("planner: %d replica slots cannot cover %d experts", slots, e)
	}
	reps := make([]int, e)
	pq := &loadHeap{}
	for j := 0; j < e; j++ {
		reps[j] = 1
		heap.Push(pq, loadItem{expert: j, avgLoad: expertLoads[j]})
	}
	for used := e; used < slots; used++ {
		item := heap.Pop(pq).(loadItem)
		j := item.expert
		reps[j]++
		heap.Push(pq, loadItem{expert: j, avgLoad: expertLoads[j] / float64(reps[j])})
	}
	return reps, nil
}

// EvenAllocation implements the uniform scheme of Alg. 2 line 3: every
// expert receives floor(N*C/E) replicas, and the remainder (when E does
// not divide N*C) is assigned to the highest-load experts so all slots are
// used and Eq. 3 can hold with equality.
func EvenAllocation(expertLoads []float64, n, c int) ([]int, error) {
	e := len(expertLoads)
	if e == 0 {
		return nil, fmt.Errorf("planner: no experts")
	}
	slots := n * c
	if slots < e {
		return nil, fmt.Errorf("planner: %d replica slots cannot cover %d experts", slots, e)
	}
	reps := make([]int, e)
	base := slots / e
	for j := range reps {
		reps[j] = base
	}
	rem := slots - base*e
	if rem > 0 {
		order := argsortDesc(expertLoads)
		for k := 0; k < rem; k++ {
			reps[order[k%e]]++
		}
	}
	return reps, nil
}

// loadItem orders experts by average load, highest first.
type loadItem struct {
	expert  int
	avgLoad float64
}

type loadHeap []loadItem

func (h loadHeap) Len() int { return len(h) }
func (h loadHeap) Less(i, j int) bool {
	if h[i].avgLoad != h[j].avgLoad {
		return h[i].avgLoad > h[j].avgLoad
	}
	return h[i].expert < h[j].expert
}
func (h loadHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *loadHeap) Push(x interface{}) { *h = append(*h, x.(loadItem)) }
func (h *loadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// argsortDesc returns indices of xs sorted by descending value with stable
// index tie-break.
func argsortDesc(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort keeps this dependency-free and deterministic; the
	// slices involved are expert counts (tiny).
	for i := 1; i < len(idx); i++ {
		for k := i; k > 0; k-- {
			a, b := idx[k-1], idx[k]
			if xs[b] > xs[a] || (xs[b] == xs[a] && b < a) {
				idx[k-1], idx[k] = b, a
			} else {
				break
			}
		}
	}
	return idx
}
