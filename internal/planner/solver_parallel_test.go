package planner

import (
	"testing"

	"laermoe/internal/topology"
)

// TestParallelSolveMatchesSerial: candidate evaluation fanned across
// goroutines must pick exactly the strategy the serial solver picks —
// same cost, same layout, same dispatch.
func TestParallelSolveMatchesSerial(t *testing.T) {
	topo := topology.Default()
	for seed := int64(0); seed < 4; seed++ {
		r := skewedMatrix(32, 8, 16384, seed)
		serial := NewSolver(topo, 2, testParams(), SolverOptions{Epsilon: 6, Seed: seed})
		parallel := NewSolver(topo, 2, testParams(), SolverOptions{Epsilon: 6, Parallelism: 8, Seed: seed})
		ss, err := serial.Solve(r)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := parallel.Solve(r)
		if err != nil {
			t.Fatal(err)
		}
		if ss.Cost != ps.Cost {
			t.Errorf("seed %d: parallel cost %g, serial %g", seed, ps.Cost, ss.Cost)
		}
		if !ss.Layout.Equal(ps.Layout) {
			t.Errorf("seed %d: parallel layout differs from serial", seed)
		}
		if ss.Candidates != ps.Candidates {
			t.Errorf("seed %d: candidates %d vs %d", seed, ps.Candidates, ss.Candidates)
		}
		if len(ss.Dispatch().Assignments) != len(ps.Dispatch().Assignments) {
			t.Fatalf("seed %d: dispatch sizes differ", seed)
		}
		for i := range ss.Dispatch().Assignments {
			if ss.Dispatch().Assignments[i] != ps.Dispatch().Assignments[i] {
				t.Fatalf("seed %d: assignment %d differs", seed, i)
			}
		}
	}
}

// TestIncrementalEvalMatchesMaterialized: the streaming candidate score
// must equal TimeCost over the materialized dispatch bit for bit.
func TestIncrementalEvalMatchesMaterialized(t *testing.T) {
	topo := topology.New(8, 8)
	for seed := int64(0); seed < 4; seed++ {
		r := skewedMatrix(64, 8, 8192, seed)
		reps, err := ReplicaAllocation(r.ExpertLoads(), 64, 2)
		if err != nil {
			t.Fatal(err)
		}
		layout, err := ExpertRelocation(reps, r.ExpertLoads(), topo, 2)
		if err != nil {
			t.Fatal(err)
		}
		sc := routePool.Get().(*routeScratch)
		got := evalLayoutCost(r, layout, topo, testParams(), sc)
		routePool.Put(sc)
		want := TimeCost(LiteRouting(r, layout, topo), topo, testParams())
		if got != want {
			t.Errorf("seed %d: incremental cost %g, materialized %g", seed, got, want)
		}
	}
}
