package planner

import (
	"reflect"
	"testing"
	"testing/quick"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// TestLeastLoadedRoutingConservation: the dispatch must route exactly
// R[i][j] tokens for every (device, expert) and only to replica hosts,
// like every other router.
func TestLeastLoadedRoutingConservation(t *testing.T) {
	topo := topology.New(2, 2)
	layout := NewLayout(3, 4)
	layout.A[0][0], layout.A[0][2] = 1, 1
	layout.A[1][1] = 1
	layout.A[2][3] = 1
	r := matrixFrom([][]int{
		{10, 5, 3},
		{7, 0, 2},
		{4, 9, 1},
		{8, 8, 8},
	})
	d := LeastLoadedRouting(r, layout, topo)
	if err := d.Validate(r, layout); err != nil {
		t.Fatalf("least-loaded routing violates conservation: %v", err)
	}
}

// TestLeastLoadedRoutingBalances: the stateful water-fill sees the loads
// earlier blocks created, so overlapping replica sets end flatter than
// LiteRouting's locality-first per-block split. Expert 0 lives on devices
// {0,1}, expert 1 on {1,2}: Lite piles 100 tokens on the shared device 1;
// the least-loaded router shifts expert 1's tokens toward the idle
// device 2.
func TestLeastLoadedRoutingBalances(t *testing.T) {
	topo := topology.New(1, 4)
	layout := NewLayout(2, 4)
	layout.A[0][0], layout.A[0][1] = 1, 1
	layout.A[1][1], layout.A[1][2] = 1, 1
	r := matrixFrom([][]int{
		{100, 100},
		{0, 0},
		{0, 0},
		{0, 0},
	})
	llep := LeastLoadedRouting(r, layout, topo)
	if err := llep.Validate(r, layout); err != nil {
		t.Fatal(err)
	}
	lite := LiteRouting(r, layout, topo)
	maxOf := func(loads []int) int {
		m := 0
		for _, v := range loads {
			if v > m {
				m = v
			}
		}
		return m
	}
	llepMax, liteMax := maxOf(llep.ReceivedLoads()), maxOf(lite.ReceivedLoads())
	if llepMax >= liteMax {
		t.Errorf("least-loaded max load %d not below lite's %d on overlapping replica sets", llepMax, liteMax)
	}
	if got := llep.ReceivedLoads(); got[1] != 75 || got[2] != 75 {
		t.Errorf("water-fill loads = %v, want the shared and idle device leveled at 75", got)
	}
}

// llepTestMatrix draws one generated routing matrix for the randomized
// least-loaded tests.
func llepTestMatrix(t *testing.T, n, e, tokens int) *trace.RoutingMatrix {
	t.Helper()
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: n, Experts: e, Layers: 1, TokensPerDevice: tokens, TopK: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen.Step()[0]
}

// TestLeastLoadedRoutingDeterminism: identical inputs dispatch to the
// identical assignment list (ties break toward the lower device index).
func TestLeastLoadedRoutingDeterminism(t *testing.T) {
	topo := topology.New(2, 4)
	r := llepTestMatrix(t, 8, 4, 512)
	layout := NewLayout(4, 8)
	for j := 0; j < 4; j++ {
		layout.A[j][j], layout.A[j][(j+3)%8] = 1, 1
	}
	a := LeastLoadedRouting(r, layout, topo)
	b := LeastLoadedRouting(r, layout, topo)
	if !reflect.DeepEqual(a.Assignments, b.Assignments) {
		t.Error("least-loaded dispatch is not deterministic")
	}
}

// TestLeastLoadedRoutingLoadsCache: the load vector the water-fill hands
// the Dispatch must equal the loads recomputed from its assignments.
func TestLeastLoadedRoutingLoadsCache(t *testing.T) {
	topo := topology.New(2, 4)
	r := llepTestMatrix(t, 8, 4, 512)
	layout := NewLayout(4, 8)
	for j := 0; j < 4; j++ {
		layout.A[j][2*j], layout.A[j][2*j+1] = 1, 1
	}
	d := LeastLoadedRouting(r, layout, topo)
	manual := make([]int, 8)
	for _, a := range d.Assignments {
		manual[a.Dst] += a.Tokens
	}
	if !reflect.DeepEqual(d.ReceivedLoads(), manual) {
		t.Errorf("cached loads %v != recomputed %v", d.ReceivedLoads(), manual)
	}
}

// TestLeastLoadedRoutingPropertyConservation: conservation over random
// matrices and layouts, mirroring LiteRouting's property test.
func TestLeastLoadedRoutingPropertyConservation(t *testing.T) {
	topo := topology.New(2, 4)
	f := func(cells []uint8, layoutBits uint32) bool {
		const n, e = 8, 4
		r := trace.NewRoutingMatrix(n, e)
		for i := 0; i < n; i++ {
			for j := 0; j < e; j++ {
				idx := i*e + j
				if idx < len(cells) {
					r.R[i][j] = int(cells[idx])
				}
			}
		}
		layout := NewLayout(e, n)
		for j := 0; j < e; j++ {
			any := false
			for d := 0; d < n; d++ {
				if layoutBits>>(uint(j*n+d)%31)&1 == 1 {
					layout.A[j][d] = 1
					any = true
				}
			}
			if !any {
				layout.A[j][j%n] = 1
			}
		}
		d := LeastLoadedRouting(r, layout, topo)
		return d.Validate(r, layout) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// BenchmarkRequestDispatch measures the serving router on the paper's
// evaluation scale: one iteration's decode traffic water-filled across a
// solved layout's replicas (the inference workload's per-layer dispatch).
func BenchmarkRequestDispatch(b *testing.B) {
	topo := topology.Default()
	r := benchMatrix(b, 32, 8, 16384)
	s := NewSolver(topo, 2, CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12}, DefaultSolverOptions())
	sol, err := s.Solve(r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LeastLoadedRouting(r, sol.Layout, topo)
	}
}
