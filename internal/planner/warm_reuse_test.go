package planner

import (
	"testing"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// warmSequence builds a drifting multi-epoch fixture: one generator, one
// routing matrix per epoch.
func warmSequence(t testing.TB, epochs int, n, e, tokens int, seed int64) []*trace.RoutingMatrix {
	t.Helper()
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: n, Experts: e, Layers: 1, TokensPerDevice: tokens, TopK: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*trace.RoutingMatrix, epochs)
	for i := range out {
		if i > 0 {
			if err := gen.ApplyDrift(trace.DriftConfig{Model: trace.DriftMigration, Rate: 0.4}); err != nil {
				t.Fatal(err)
			}
		}
		out[i] = gen.Step()[0]
	}
	return out
}

// TestSolveWarmRecycleMatchesFresh: a solver whose caller recycles dropped
// layouts through the scratch free list must produce exactly the layouts
// and costs of a solver that never recycles, across a multi-epoch warm
// chain — recycled buffers must never leak state into a later solve.
func TestSolveWarmRecycleMatchesFresh(t *testing.T) {
	topo := topology.Default()
	rs := warmSequence(t, 6, topo.N(), 16, 4096, 3)
	mk := func() *Solver { return NewSolver(topo, 4, testParams(), DefaultSolverOptions()) }
	recycler, fresh := mk(), mk()

	var recLayout, freshLayout, snapshot *Layout
	var recLoads, freshLoads []float64
	for i, r := range rs {
		a, err := recycler.SolveWarm(r, WarmStart{Prev: recLayout, PrevLoads: recLoads})
		if err != nil {
			t.Fatal(err)
		}
		// The layout installed after the previous epoch must not have been
		// clobbered by this solve's scratch reuse.
		if snapshot != nil && !recLayout.Equal(snapshot) {
			t.Fatalf("epoch %d: solve mutated the caller's live layout", i)
		}
		b, err := fresh.SolveWarm(r, WarmStart{Prev: freshLayout, PrevLoads: freshLoads})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Layout.Equal(b.Layout) || a.Cost != b.Cost || a.Migrations != b.Migrations {
			t.Fatalf("epoch %d: recycling solver diverged (cost %g vs %g, migrations %d vs %d)",
				i, a.Cost, b.Cost, a.Migrations, b.Migrations)
		}
		if err := a.Layout.Validate(recycler.C, true); err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		// The recycling caller drops its previous layout when replacing it;
		// the fresh caller just forgets it. Epoch 0's Prev is nil.
		if a.Layout != recLayout {
			recycler.Recycle(recLayout)
			recLayout = a.Layout
			recLoads = r.ExpertLoads()
		}
		snapshot = recLayout.Clone()
		if b.Layout != freshLayout {
			freshLayout = b.Layout
			freshLoads = r.ExpertLoads()
		}
	}
}

// TestSolveWarmScratchSteadyStateAllocs is the warm-solve analogue of the
// trace package's zero-allocation guard: once the scratch arena is warm
// and the caller recycles dropped layouts, a SolveWarm call may allocate
// only its Solution — nothing proportional to the problem size.
func TestSolveWarmScratchSteadyStateAllocs(t *testing.T) {
	topo := topology.Default()
	rs := warmSequence(t, 2, topo.N(), 16, 4096, 7)
	s := NewSolver(topo, 4, testParams(), DefaultSolverOptions())
	sol, err := s.Solve(rs[0])
	if err != nil {
		t.Fatal(err)
	}
	prev, prevLoads := sol.Layout, rs[0].ExpertLoads()
	// Warm the arena: one replanning solve sizes every scratch buffer and
	// primes the layout free list.
	for i := 0; i < 3; i++ {
		next, err := s.SolveWarm(rs[1], WarmStart{Prev: prev, PrevLoads: prevLoads})
		if err != nil {
			t.Fatal(err)
		}
		if next.Layout != prev {
			s.Recycle(prev)
			prev = next.Layout
			prevLoads = rs[1].ExpertLoadsInto(prevLoads)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		next, err := s.SolveWarm(rs[1], WarmStart{Prev: prev, PrevLoads: prevLoads})
		if err != nil {
			t.Fatal(err)
		}
		if next.Layout != prev {
			s.Recycle(prev)
			prev = next.Layout
			prevLoads = rs[1].ExpertLoadsInto(prevLoads)
		}
	})
	// The Solution itself is the only permitted allocation.
	if allocs > 1 {
		t.Fatalf("steady-state SolveWarm allocates %.1f objects per call, want <= 1 (the Solution)", allocs)
	}
}
