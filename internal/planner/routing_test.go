package planner

import (
	"testing"
	"testing/quick"

	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

func matrixFrom(rows [][]int) *trace.RoutingMatrix {
	m := trace.NewRoutingMatrix(len(rows), len(rows[0]))
	for i := range rows {
		copy(m.R[i], rows[i])
	}
	return m
}

// TestLiteRoutingConservation: the dispatch must route exactly R[i][j]
// tokens for every (device, expert) and only to replica hosts (Alg. 3).
func TestLiteRoutingConservation(t *testing.T) {
	topo := topology.New(2, 2)
	layout := NewLayout(3, 4)
	layout.A[0][0], layout.A[0][2] = 1, 1 // expert 0 on both nodes
	layout.A[1][1] = 1                    // expert 1 only on node 0
	layout.A[2][3] = 1                    // expert 2 only on node 1
	r := matrixFrom([][]int{
		{10, 5, 3},
		{7, 0, 2},
		{4, 9, 1},
		{8, 8, 8},
	})
	d := LiteRouting(r, layout, topo)
	if err := d.Validate(r, layout); err != nil {
		t.Fatalf("lite routing violates conservation: %v", err)
	}
}

// TestLiteRoutingPrefersIntraNode: with a replica on every node, no token
// crosses a node boundary except where the source device's node lacks one.
func TestLiteRoutingPrefersIntraNode(t *testing.T) {
	topo := topology.New(2, 2)
	layout := NewLayout(2, 4)
	layout.A[0][0], layout.A[0][2] = 1, 1 // expert 0: replica on each node
	layout.A[1][1], layout.A[1][3] = 1, 1 // expert 1: replica on each node
	r := matrixFrom([][]int{
		{10, 10},
		{10, 10},
		{10, 10},
		{10, 10},
	})
	d := LiteRouting(r, layout, topo)
	if got := d.CrossNodeTokens(topo); got != 0 {
		t.Errorf("%d tokens crossed nodes despite intra-node replicas", got)
	}
}

// TestLiteRoutingFallsBackToGlobal: an expert with no intra-node replica
// splits its tokens across all global replicas evenly.
func TestLiteRoutingFallsBackToGlobal(t *testing.T) {
	topo := topology.New(2, 2)
	layout := NewLayout(1, 4)
	layout.A[0][2], layout.A[0][3] = 1, 1 // both replicas on node 1
	r := matrixFrom([][]int{{100}, {0}, {0}, {0}})
	d := LiteRouting(r, layout, topo)
	loads := d.ReceivedLoads()
	if loads[2] != 50 || loads[3] != 50 {
		t.Errorf("global fallback split = %v, want 50/50 on devices 2,3", loads)
	}
}

// TestLiteRoutingEvenSplit: tokens split across intra-node replicas within
// one token of each other.
func TestLiteRoutingEvenSplit(t *testing.T) {
	topo := topology.New(1, 4)
	layout := NewLayout(1, 4)
	layout.A[0][0], layout.A[0][1], layout.A[0][2] = 1, 1, 1
	r := matrixFrom([][]int{{100}, {0}, {0}, {0}})
	d := LiteRouting(r, layout, topo)
	loads := d.ReceivedLoads()
	for dev := 0; dev < 3; dev++ {
		if loads[dev] < 33 || loads[dev] > 34 {
			t.Errorf("device %d load %d, want 33 or 34", dev, loads[dev])
		}
	}
	if loads[3] != 0 {
		t.Errorf("non-replica device received %d tokens", loads[3])
	}
}

// TestLiteRoutingPropertyConservation: property-based conservation over
// random matrices and layouts.
func TestLiteRoutingPropertyConservation(t *testing.T) {
	topo := topology.New(2, 4)
	f := func(cells []uint8, layoutBits uint32) bool {
		const n, e = 8, 4
		r := trace.NewRoutingMatrix(n, e)
		for i := 0; i < n; i++ {
			for j := 0; j < e; j++ {
				idx := i*e + j
				if idx < len(cells) {
					r.R[i][j] = int(cells[idx])
				}
			}
		}
		layout := NewLayout(e, n)
		for j := 0; j < e; j++ {
			any := false
			for d := 0; d < n; d++ {
				if layoutBits>>(uint(j*n+d)%31)&1 == 1 {
					layout.A[j][d] = 1
					any = true
				}
			}
			if !any {
				layout.A[j][j%n] = 1
			}
		}
		d := LiteRouting(r, layout, topo)
		return d.Validate(r, layout) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestLiteImbalanceMatchesDispatch pins the streaming imbalance to the
// materialized reference: max/mean of LiteRouting's received loads, for
// randomized routings and layouts (including all-zero routing, where both
// report the perfect-balance convention 1).
func TestLiteImbalanceMatchesDispatch(t *testing.T) {
	topo := topology.New(2, 4)
	f := func(cells []uint8, layoutBits uint32) bool {
		const n, e = 8, 4
		r := trace.NewRoutingMatrix(n, e)
		for i := 0; i < n; i++ {
			for j := 0; j < e; j++ {
				idx := i*e + j
				if idx < len(cells) {
					r.R[i][j] = int(cells[idx])
				}
			}
		}
		layout := NewLayout(e, n)
		for j := 0; j < e; j++ {
			any := false
			for d := 0; d < n; d++ {
				if layoutBits>>(uint(j*n+d)%31)&1 == 1 {
					layout.A[j][d] = 1
					any = true
				}
			}
			if !any {
				layout.A[j][j%n] = 1
			}
		}
		loads := LiteRouting(r, layout, topo).ReceivedLoads()
		sum, maxLoad := 0.0, loads[0]
		for _, v := range loads {
			sum += float64(v)
			if v > maxLoad {
				maxLoad = v
			}
		}
		want := 1.0
		if mean := sum / float64(len(loads)); mean != 0 {
			want = float64(maxLoad) / mean
		}
		return LiteImbalance(r, layout, topo) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestEPRouting(t *testing.T) {
	r := matrixFrom([][]int{
		{10, 0, 0, 5},
		{0, 8, 0, 0},
		{1, 1, 1, 1},
		{0, 0, 0, 9},
	})
	d, err := EPRouting(r, 2) // E=4, C=2 -> P_ep=2, groups {0,1} {2,3}
	if err != nil {
		t.Fatal(err)
	}
	layout, err := StaticEP(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(r, layout); err != nil {
		t.Fatalf("EP routing invalid: %v", err)
	}
	// Device 0's expert-3 tokens go to device 1 (owner of experts 2,3 in
	// group 0).
	found := false
	for _, a := range d.Assignments {
		if a.Src == 0 && a.Expert == 3 {
			found = true
			if a.Dst != 1 {
				t.Errorf("expert 3 from device 0 routed to %d, want 1", a.Dst)
			}
		}
		if a.Src >= 2 && a.Dst < 2 {
			t.Errorf("assignment %+v escapes its EP group", a)
		}
	}
	if !found {
		t.Error("expected assignment missing")
	}
	if _, err := EPRouting(r, 3); err == nil {
		t.Error("non-divisible capacity accepted")
	}
}

func TestNaiveReplicaRouting(t *testing.T) {
	topo := topology.New(1, 4)
	layout := NewLayout(1, 4)
	layout.A[0][1], layout.A[0][3] = 1, 1
	r := matrixFrom([][]int{{10}, {10}, {10}, {10}})
	d := NaiveReplicaRouting(r, layout)
	loads := d.ReceivedLoads()
	if loads[1] != 40 || loads[3] != 0 {
		t.Errorf("naive routing loads = %v, want all 40 on device 1", loads)
	}
	// Lite routing spreads the same workload.
	lite := LiteRouting(r, layout, topo)
	ll := lite.ReceivedLoads()
	if ll[1] != 20 || ll[3] != 20 {
		t.Errorf("lite routing loads = %v, want 20/20", ll)
	}
}

func TestDispatchHelpers(t *testing.T) {
	d := &Dispatch{N: 2, E: 1, Assignments: []Assignment{
		{Src: 0, Expert: 0, Dst: 1, Tokens: 5},
		{Src: 1, Expert: 0, Dst: 1, Tokens: 3},
	}}
	if got := d.SentLoads(); got[0] != 5 || got[1] != 3 {
		t.Errorf("SentLoads = %v", got)
	}
	if got := d.ReceivedLoads(); got[1] != 8 || got[0] != 0 {
		t.Errorf("ReceivedLoads = %v", got)
	}
	vol := d.VolumeMatrix(100)
	if vol.Bytes[0][1] != 500 || vol.Bytes[1][1] != 0 {
		t.Errorf("VolumeMatrix wrong: %v", vol.Bytes)
	}
}
