package planner

import (
	"fmt"

	"laermoe/internal/topology"
)

// RepairStats reports what a forced re-layout (Repair) did.
type RepairStats struct {
	// LostReplicas counts the replicas stripped off failed devices.
	LostReplicas int
	// Restored counts the experts whose every replica died: each must be
	// restored from the sharded optimizer checkpoint (one read per
	// expert) before any device can serve it again.
	Restored int
	// Moves counts the replicas re-placed onto devices that did not host
	// them, net of the checkpoint restores — on the FSEP substrate these
	// are re-gathered from surviving copies by the next All-to-All and
	// cost nothing extra; relocation substrates pay per move.
	Moves int
}

// Changed reports whether the repair had to alter the layout.
func (s RepairStats) Changed() bool { return s.LostReplicas > 0 }

// Repair is the planner's forced re-layout path for membership loss: given
// a layout whose owners partially vanished (the solver's topology has
// devices masked unavailable that prev still places replicas on), it keeps
// every fully intact expert in place, strips the dead replicas, and
// re-places the affected experts into the surviving slot budget using the
// warm solver's incremental machinery (priority-queue and even replica
// schemes over the freed slots, Alg. 1 greedy placement restricted to
// available devices).
//
// Graceful degradation: when the kept replicas leave too few slots for the
// affected experts, every expert is re-placed — the allocation then spills
// by reducing replica counts (each expert keeps at least one) before
// giving up; only a cluster whose surviving capacity cannot hold even one
// replica per expert is an error.
//
// loads are the per-expert loads the repaired layout is balanced for (the
// planner's last planned loads); nil balances for uniform loads. A layout
// with no replicas on dead devices is returned unchanged (zero stats), so
// joins and degradations never force a replan.
//
// Repair draws no randomness and shares the solver's scratch arenas, so
// it must not run concurrently with SolveWarm on the same solver.
func (s *Solver) Repair(prev *Layout, loads []float64) (*Layout, RepairStats, error) {
	var st RepairStats
	n := s.Topo.N()
	if prev.N != n {
		return nil, st, fmt.Errorf("planner: layout for %d devices, topology has %d", prev.N, n)
	}
	if s.Topo.NumAvailable() == n {
		return prev, st, nil
	}
	e := prev.E
	if avail := s.Topo.NumAvailable() * s.C; avail < e {
		return nil, st, fmt.Errorf("planner: %d experts exceed the %d surviving capacity slots (%d devices x %d)", e, avail, s.Topo.NumAvailable(), s.C)
	}
	w := &s.warm
	w.resize(e, n)
	moved := w.moved
	restored := 0
	for j := 0; j < e; j++ {
		lost, kept := 0, 0
		for d, v := range prev.A[j] {
			if v == 0 {
				continue
			}
			if s.Topo.Available(d) {
				kept += v
			} else {
				lost += v
			}
		}
		moved[j] = lost > 0
		st.LostReplicas += lost
		if lost > 0 && kept == 0 {
			restored++
		}
	}
	if st.LostReplicas == 0 {
		return prev, st, nil
	}
	if loads == nil {
		loads = w.loads
		for j := range loads {
			loads[j] = 1
		}
	} else if len(loads) != e {
		return nil, st, fmt.Errorf("planner: %d loads for %d experts", len(loads), e)
	}

	cands, err := s.incrementalLayouts(prev, loads, moved)
	if err != nil {
		return nil, st, err
	}
	if cands == nil {
		// The surviving slots cannot hold one fresh replica per affected
		// expert on top of the kept placements: spill by re-placing every
		// expert, letting the allocation shrink replica counts cluster-wide
		// (each expert still gets at least one slot — checked above).
		for j := range moved {
			moved[j] = true
		}
		if cands, err = s.incrementalLayouts(prev, loads, moved); err != nil {
			return nil, st, err
		}
	}
	if len(cands) == 0 {
		return nil, st, fmt.Errorf("planner: no repair candidates (both base replica schemes disabled)")
	}

	// Candidates are ranked by the balance they promise — the max
	// per-device planned load, each replica carrying its expert's average
	// — a routing-free proxy for the Eq. 2 compute term (there is no
	// observed routing matrix at a failure; the next epoch's solve
	// re-scores against live loads anyway). First candidate wins ties, so
	// the repair is deterministic.
	best, bestWorst := -1, 0.0
	for i, cand := range cands {
		dl := w.dl
		for d := range dl {
			dl[d] = 0
		}
		for j := 0; j < e; j++ {
			reps := 0
			for _, v := range cand.A[j] {
				reps += v
			}
			if reps == 0 {
				continue
			}
			avg := loads[j] / float64(reps)
			for d, v := range cand.A[j] {
				if v > 0 {
					dl[d] += avg * float64(v)
				}
			}
		}
		worst := 0.0
		for _, v := range dl {
			if v > worst {
				worst = v
			}
		}
		if best == -1 || worst < bestWorst {
			best, bestWorst = i, worst
		}
	}
	next := cands[best]
	for _, cand := range cands {
		if cand != next {
			s.Recycle(cand)
		}
	}

	// Moves are counted against the *surviving* placements: a replica the
	// greedy re-chose onto a device that already held it is not a move,
	// and each fully lost expert's first replica is a checkpoint restore,
	// not a re-gather off a survivor.
	placed := 0
	for j := 0; j < e; j++ {
		if !moved[j] {
			continue
		}
		for d, v := range next.A[j] {
			surv := prev.A[j][d]
			if !s.Topo.Available(d) {
				surv = 0
			}
			if delta := v - surv; delta > 0 {
				placed += delta
			}
		}
	}
	st.Restored = restored
	st.Moves = placed - restored
	if st.Moves < 0 {
		st.Moves = 0
	}
	return next, st, nil
}

// StaticRestoreLayout is the layout a static expert-parallel system ends
// up with after checkpoint-restoring a layer onto the surviving devices:
// replica slots spread evenly and load-obliviously (uniform loads) over
// the available capacity. It models the recovery endpoint of the
// no-re-layout baseline — the whole layer re-read from the checkpoint,
// placed without regard to the routing distribution.
func StaticRestoreLayout(e int, topo *topology.Topology, c int) (*Layout, error) {
	n := topo.N()
	slots := topo.NumAvailable() * c
	if slots < e {
		return nil, fmt.Errorf("planner: %d experts exceed the %d surviving capacity slots", e, slots)
	}
	loads := make([]float64, e)
	for j := range loads {
		loads[j] = 1
	}
	reps, err := allocateEven(loads, slots)
	if err != nil {
		return nil, err
	}
	layout := NewLayout(e, n)
	if err := placeReplicas(layout, reps, loads, make([]float64, n), make([]int, n), topo, c); err != nil {
		return nil, err
	}
	return layout, nil
}
