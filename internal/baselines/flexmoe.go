package baselines

import (
	"time"

	"laermoe/internal/executor"
	"laermoe/internal/planner"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// FlexMoE reproduces the FlexMoE scheduler (Nie et al., SIGMOD 2023) as
// the paper does for its comparison: dynamic expert replication and
// relocation driven by observed load, but with two structural handicaps
// relative to LAER that the original system has by design:
//
//  1. It adjusts the *existing* layout incrementally — at most
//     MaxMovesPerStep replica changes per iteration per layer — rather
//     than re-solving globally.
//  2. It penalizes every adjustment with an estimated re-layout cost
//     (parameter migration over the wire), declining moves whose expected
//     per-iteration benefit does not clear the penalty. On the FSEP
//     substrate the migration is actually free, but the scheduler's
//     conservatism remains, exactly as in the paper's Sec. 5.2 analysis.
type FlexMoE struct {
	Topo *topology.Topology
	C    int
	// MaxMovesPerStep bounds replica adjustments per layer per iteration.
	MaxMovesPerStep int
	// PenaltySeconds is the modelled cost of migrating one expert replica,
	// weighed against the estimated compute-time benefit of a move.
	PenaltySeconds float64
	// AmortizationHorizon is the number of future iterations over which
	// FlexMoE amortizes a move's benefit when weighing it against the
	// penalty (its placement is expected to persist).
	AmortizationHorizon float64
	// Params converts load deltas into time.
	Params planner.CostParams

	layouts     []*planner.Layout
	plannerTime float64
}

// NewFlexMoE builds the scheduler with an initial static layout per layer.
func NewFlexMoE(topo *topology.Topology, layers, e, c int, params planner.CostParams, migrationSeconds float64) (*FlexMoE, error) {
	initial, err := planner.StaticEP(e, topo.N(), c)
	if err != nil {
		return nil, err
	}
	f := &FlexMoE{
		Topo:                topo,
		C:                   c,
		MaxMovesPerStep:     2,
		PenaltySeconds:      migrationSeconds,
		AmortizationHorizon: 50,
		Params:              params,
		layouts:             make([]*planner.Layout, layers),
	}
	for l := range f.layouts {
		f.layouts[l] = initial.Clone()
	}
	return f, nil
}

// Name implements Scheduler.
func (f *FlexMoE) Name() string { return "flexmoe" }

// PlannerTime implements Scheduler.
func (f *FlexMoE) PlannerTime() float64 { return f.plannerTime }

// Plan implements Scheduler: dispatch against the current layout, then
// apply up to MaxMovesPerStep penalized adjustments for the next iteration.
func (f *FlexMoE) Plan(routing []*trace.RoutingMatrix) ([]executor.LayerPlan, error) {
	plans := make([]executor.LayerPlan, len(routing))
	start := time.Now()
	for l, r := range routing {
		plans[l] = executor.LayerPlan{
			Layout:   f.layouts[l],
			Dispatch: planner.LiteRouting(r, f.layouts[l], f.Topo),
		}
		f.layouts[l] = f.adjust(f.layouts[l], r)
	}
	f.plannerTime = time.Since(start).Seconds()
	return plans, nil
}

// adjust performs FlexMoE's incremental replica tuning: move one replica
// slot from the coldest over-replicated expert to the hottest expert, if
// the estimated benefit clears the migration penalty.
func (f *FlexMoE) adjust(cur *planner.Layout, r *trace.RoutingMatrix) *planner.Layout {
	layout := cur.Clone()
	loads := r.ExpertLoads()
	for move := 0; move < f.MaxMovesPerStep; move++ {
		reps := layout.ReplicaVector()
		hot, cold := -1, -1
		var hotAvg, coldAvg float64
		for j := range reps {
			avg := loads[j] / float64(reps[j])
			if hot == -1 || avg > hotAvg {
				hot, hotAvg = j, avg
			}
			if reps[j] > 1 && (cold == -1 || avg < coldAvg) {
				cold, coldAvg = j, avg
			}
		}
		if hot == -1 || cold == -1 || hot == cold {
			return layout
		}
		// Expected steady-state benefit: the hot expert's per-replica load
		// drops by load/(r) - load/(r+1); convert to compute seconds.
		benefitTokens := loads[hot]/float64(reps[hot]) - loads[hot]/float64(reps[hot]+1)
		benefit := benefitTokens * f.Params.ExpertFLOPsPerToken / f.Params.FLOPS
		if benefit*f.AmortizationHorizon <= f.PenaltySeconds {
			return layout // adjustment not worth its (estimated) cost
		}
		// Take the cold expert's replica from the most-loaded device that
		// hosts one but does not already host the hot expert.
		dev := -1
		var devLoad float64
		devLoads := deviceLoads(layout, r)
		for d := 0; d < layout.N; d++ {
			if layout.A[cold][d] == 0 || layout.A[hot][d] > 0 {
				continue
			}
			if dev == -1 || devLoads[d] > devLoad {
				dev, devLoad = d, devLoads[d]
			}
		}
		if dev == -1 {
			return layout
		}
		layout.A[cold][dev]--
		layout.A[hot][dev]++
	}
	return layout
}

// deviceLoads estimates per-device load under the layout's lite routing.
func deviceLoads(l *planner.Layout, r *trace.RoutingMatrix) []float64 {
	d := planner.LiteRouting(r, l, topoForLayout(l))
	loads := d.ReceivedLoads()
	out := make([]float64, len(loads))
	for i, v := range loads {
		out[i] = float64(v)
	}
	return out
}

// topoForLayout builds a flat single-node view for load estimation when no
// topology context is needed (replica placement quality is judged on load
// only here; Plan's dispatch uses the real topology).
func topoForLayout(l *planner.Layout) *topology.Topology {
	return topology.New(1, l.N)
}
