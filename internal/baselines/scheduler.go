// Package baselines implements the expert-layout schedulers the paper
// compares against, plus the LAER planner's scheduler wrapper. A scheduler
// turns each iteration's observed routing into per-layer execution plans
// (expert layout + token dispatch); the executor is shared.
//
//   - Static EP: the fixed layout of vanilla expert parallelism, used by
//     both the Megatron and FSDP+EP baselines (GShard-style).
//   - FlexMoE: replication + relocation with an adjustment-cost penalty and
//     incremental per-iteration moves (Nie et al., reproduced as in
//     Sec. 5.1: its scheduler drives the FSEP substrate).
//   - SmartMoE: relocation-only, re-solved at a low frequency, paying
//     explicit migration cost (Zhai et al.).
//   - FasterMoE: per-iteration shadowing of hot experts onto every device,
//     paying broadcast + gradient all-reduce for shadows (He et al.).
//   - LAER: the paper's asynchronous planner (Alg. 1-4) on FSEP.
package baselines

import (
	"fmt"
	"time"

	"laermoe/internal/executor"
	"laermoe/internal/planner"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// Scheduler produces the per-layer plans for one iteration from the
// iteration's routing matrices. Implementations keep whatever history
// their policy requires; Plan is called once per iteration in order.
type Scheduler interface {
	Name() string
	Plan(routing []*trace.RoutingMatrix) ([]executor.LayerPlan, error)
	// PlannerTime reports the CPU time spent making re-layout decisions
	// during the last Plan call (informational; the paper's planner runs
	// asynchronously on the CPU).
	PlannerTime() float64
}

// StaticEP is the no-balancing baseline: the layout never changes and
// tokens go to the owner within the source device's EP group.
type StaticEP struct {
	C      int
	layout *planner.Layout
}

// NewStaticEP builds the scheduler for E experts on N devices.
func NewStaticEP(e, n, c int) (*StaticEP, error) {
	l, err := planner.StaticEP(e, n, c)
	if err != nil {
		return nil, err
	}
	return &StaticEP{C: c, layout: l}, nil
}

// Name implements Scheduler.
func (s *StaticEP) Name() string { return "static-ep" }

// PlannerTime implements Scheduler; static layouts need no planning.
func (s *StaticEP) PlannerTime() float64 { return 0 }

// Plan implements Scheduler.
func (s *StaticEP) Plan(routing []*trace.RoutingMatrix) ([]executor.LayerPlan, error) {
	plans := make([]executor.LayerPlan, len(routing))
	for l, r := range routing {
		d, err := planner.EPRouting(r, s.C)
		if err != nil {
			return nil, err
		}
		plans[l] = executor.LayerPlan{Layout: s.layout, Dispatch: d}
	}
	return plans, nil
}

// BalancedOracle routes as if expert load were perfectly balanceable: it
// uses the true routing totals per device but spreads received work evenly
// (the "balanced" condition of Fig. 1b — an upper bound, not a system).
type BalancedOracle struct {
	Topo *topology.Topology
	C    int
}

// Name implements Scheduler.
func (s *BalancedOracle) Name() string { return "balanced-oracle" }

// PlannerTime implements Scheduler.
func (s *BalancedOracle) PlannerTime() float64 { return 0 }

// Plan implements Scheduler: each device keeps its own tokens locally and
// the per-device load equals the global mean by construction.
func (s *BalancedOracle) Plan(routing []*trace.RoutingMatrix) ([]executor.LayerPlan, error) {
	plans := make([]executor.LayerPlan, len(routing))
	for li, r := range routing {
		bal := trace.Balanced(r.N, r.E, r.Total()/r.N, 1)
		layout, err := planner.StaticEP(r.E, r.N, s.C)
		if err != nil {
			return nil, err
		}
		d, err := planner.EPRouting(bal, s.C)
		if err != nil {
			return nil, err
		}
		plans[li] = executor.LayerPlan{Layout: layout, Dispatch: d}
	}
	return plans, nil
}

// LAER wraps the paper's asynchronous planner: layouts come from history
// (solved during the previous iteration, Fig. 7), dispatch maps the actual
// routing onto them with lite routing, and the observation feeds the next
// iteration's solve.
type LAER struct {
	P           *planner.Planner
	plannerTime float64
}

// NewLAER builds the scheduler.
func NewLAER(p *planner.Planner) *LAER { return &LAER{P: p} }

// Name implements Scheduler.
func (s *LAER) Name() string { return "laer" }

// PlannerTime implements Scheduler.
func (s *LAER) PlannerTime() float64 { return s.plannerTime }

// Plan implements Scheduler.
func (s *LAER) Plan(routing []*trace.RoutingMatrix) ([]executor.LayerPlan, error) {
	if len(routing) != s.P.Layers {
		return nil, fmt.Errorf("laer: %d routing matrices for %d layers", len(routing), s.P.Layers)
	}
	plans := make([]executor.LayerPlan, len(routing))
	var solveTime time.Duration
	for l, r := range routing {
		// Synchronous dispatch against the layout currently in force.
		plans[l] = executor.LayerPlan{
			Layout:   s.P.Layout(l),
			Dispatch: s.P.Dispatch(l, r),
		}
		// Asynchronous solve for the next iteration of this layer.
		start := time.Now()
		if _, err := s.P.Observe(l, r); err != nil {
			return nil, err
		}
		solveTime += time.Since(start)
	}
	s.plannerTime = solveTime.Seconds()
	return plans, nil
}
