package baselines

import (
	"testing"

	"laermoe/internal/model"
	"laermoe/internal/planner"
	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

const (
	testE = 8
	testC = 2
)

func testTopo() *topology.Topology { return topology.New(2, 4) } // 8 devices

func testParams() planner.CostParams {
	return planner.CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12}
}

func routingStep(t *testing.T, gen *trace.Generator) []*trace.RoutingMatrix {
	t.Helper()
	return gen.Step()
}

func newGen(t *testing.T, layers int, seed int64) *trace.Generator {
	t.Helper()
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: 8, Experts: testE, Layers: layers, TokensPerDevice: 2048, TopK: 2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return gen
}

func imbalanceOf(d *planner.Dispatch) float64 {
	loads := d.ReceivedLoads()
	f := make([]float64, len(loads))
	for i, v := range loads {
		f[i] = float64(v)
	}
	return stats.Imbalance(f)
}

func TestStaticEPPlans(t *testing.T) {
	s, err := NewStaticEP(testE, 8, testC)
	if err != nil {
		t.Fatal(err)
	}
	gen := newGen(t, 2, 1)
	routing := routingStep(t, gen)
	plans, err := s.Plan(routing)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("%d plans, want 2", len(plans))
	}
	for l, p := range plans {
		if err := p.Dispatch.Validate(routing[l], p.Layout); err != nil {
			t.Errorf("layer %d: %v", l, err)
		}
		if p.ExtraRelayoutTime != 0 {
			t.Error("static EP should have no re-layout cost")
		}
	}
	// The layout never changes across iterations.
	plans2, err := s.Plan(routingStep(t, gen))
	if err != nil {
		t.Fatal(err)
	}
	if !plans[0].Layout.Equal(plans2[0].Layout) {
		t.Error("static layout changed between iterations")
	}
	if s.PlannerTime() != 0 {
		t.Error("static EP reports planner time")
	}
}

// TestFlexMoEAdapts: over iterations of a persistent hotspot, FlexMoE's
// imbalance must drop well below static EP's, without ever re-solving
// globally.
func TestFlexMoEAdapts(t *testing.T) {
	topo := testTopo()
	f, err := NewFlexMoE(topo, 1, testE, testC, testParams(), 10e-3)
	if err != nil {
		t.Fatal(err)
	}
	gen := newGen(t, 1, 3)
	var first, last float64
	for it := 0; it < 12; it++ {
		routing := routingStep(t, gen)
		plans, err := f.Plan(routing)
		if err != nil {
			t.Fatal(err)
		}
		imb := imbalanceOf(plans[0].Dispatch)
		if it == 0 {
			first = imb
		}
		last = imb
	}
	if last >= first {
		t.Errorf("FlexMoE did not adapt: imbalance %.3f -> %.3f", first, last)
	}
	if last > 1.6 {
		t.Errorf("FlexMoE end imbalance %.3f too high", last)
	}
}

// TestFlexMoEPenaltyBlocksMoves: with an enormous penalty, FlexMoE keeps
// the static layout forever (the conservatism the paper exploits).
func TestFlexMoEPenaltyBlocksMoves(t *testing.T) {
	topo := testTopo()
	f, err := NewFlexMoE(topo, 1, testE, testC, testParams(), 1e9)
	if err != nil {
		t.Fatal(err)
	}
	gen := newGen(t, 1, 4)
	staticLayout, _ := planner.StaticEP(testE, 8, testC)
	for it := 0; it < 5; it++ {
		plans, err := f.Plan(routingStep(t, gen))
		if err != nil {
			t.Fatal(err)
		}
		if !plans[0].Layout.Equal(staticLayout) {
			t.Fatal("penalized FlexMoE changed the layout")
		}
	}
}

func TestFlexMoELayoutsStayValid(t *testing.T) {
	topo := testTopo()
	f, err := NewFlexMoE(topo, 2, testE, testC, testParams(), 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	gen := newGen(t, 2, 5)
	for it := 0; it < 8; it++ {
		routing := routingStep(t, gen)
		plans, err := f.Plan(routing)
		if err != nil {
			t.Fatal(err)
		}
		for l, p := range plans {
			if err := p.Layout.Validate(testC, false); err != nil {
				t.Fatalf("iter %d layer %d: %v", it, l, err)
			}
			if err := p.Dispatch.Validate(routing[l], p.Layout); err != nil {
				t.Fatalf("iter %d layer %d: %v", it, l, err)
			}
		}
	}
}

// TestSmartMoERelocatesOnInterval: layout changes only at the configured
// interval and pays migration cost when it does.
func TestSmartMoERelocatesOnInterval(t *testing.T) {
	topo := testTopo()
	s, err := NewSmartMoE(topo, 1, testE, testC, 3, 5e-3)
	if err != nil {
		t.Fatal(err)
	}
	gen := newGen(t, 1, 6)
	var layouts []*planner.Layout
	var extras []float64
	for it := 0; it < 7; it++ {
		routing := routingStep(t, gen)
		plans, err := s.Plan(routing)
		if err != nil {
			t.Fatal(err)
		}
		if err := plans[0].Dispatch.Validate(routing[0], plans[0].Layout); err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		layouts = append(layouts, plans[0].Layout)
		extras = append(extras, plans[0].ExtraRelayoutTime)
	}
	// Iterations 1,2 keep iteration 0's layout; iteration 3 may change it.
	if !layouts[1].Equal(layouts[0]) || !layouts[2].Equal(layouts[0]) {
		t.Error("SmartMoE changed layout between intervals")
	}
	for it, extra := range extras {
		if it%3 != 0 && extra != 0 {
			t.Errorf("iteration %d charged migration cost %.4f outside interval", it, extra)
		}
	}
	changed := false
	for it := 3; it < 7 && !changed; it++ {
		changed = !layouts[it].Equal(layouts[0])
	}
	if !changed {
		t.Error("SmartMoE never relocated despite skewed load")
	}
}

// TestFasterMoEShadowsHotExperts: a clearly hot expert becomes local
// everywhere (no cross-device tokens for it) and incurs shadowing cost.
func TestFasterMoEShadowsHotExperts(t *testing.T) {
	topo := testTopo()
	arch := tinyArch()
	f, err := NewFasterMoE(topo, arch, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	r := trace.NewRoutingMatrix(8, testE)
	for i := 0; i < 8; i++ {
		r.R[i][0] = 1000 // expert 0 extremely hot
		for j := 1; j < testE; j++ {
			r.R[i][j] = 10
		}
	}
	plans, err := f.Plan([]*trace.RoutingMatrix{r})
	if err != nil {
		t.Fatal(err)
	}
	p := plans[0]
	if p.ExtraRelayoutTime <= 0 {
		t.Error("shadowing should cost broadcast + all-reduce time")
	}
	for _, a := range p.Dispatch.Assignments {
		if a.Expert == 0 && a.Src != a.Dst {
			t.Errorf("hot expert token left its device: %+v", a)
		}
	}
	for d := 0; d < 8; d++ {
		if p.Layout.A[0][d] == 0 {
			t.Errorf("hot expert not shadowed on device %d", d)
		}
	}
	if err := p.Dispatch.Validate(r, p.Layout); err != nil {
		t.Fatal(err)
	}
}

func TestFasterMoENoShadowsWhenBalanced(t *testing.T) {
	topo := testTopo()
	f, err := NewFasterMoE(topo, tinyArch(), 1.5)
	if err != nil {
		t.Fatal(err)
	}
	bal := trace.Balanced(8, testE, 2048, 2)
	plans, err := f.Plan([]*trace.RoutingMatrix{bal})
	if err != nil {
		t.Fatal(err)
	}
	if plans[0].ExtraRelayoutTime != 0 {
		t.Error("balanced routing should trigger no shadowing cost")
	}
}

// TestLAERSchedulerLagsByOneIteration: dispatch at iteration t uses the
// layout solved from history, not from iteration t's own routing.
func TestLAERSchedulerLagsByOneIteration(t *testing.T) {
	topo := testTopo()
	p, err := planner.New(topo, 1, testE, testC, testParams(), planner.DefaultSolverOptions(), 0.6)
	if err != nil {
		t.Fatal(err)
	}
	s := NewLAER(p)
	gen := newGen(t, 1, 7)
	staticLayout, _ := planner.StaticEP(testE, 8, testC)

	routing := routingStep(t, gen)
	plans, err := s.Plan(routing)
	if err != nil {
		t.Fatal(err)
	}
	if !plans[0].Layout.Equal(staticLayout) {
		t.Error("first iteration should dispatch against the initial static layout")
	}
	if s.PlannerTime() <= 0 {
		t.Error("LAER should report planner time")
	}
	plans2, err := s.Plan(routingStep(t, gen))
	if err != nil {
		t.Fatal(err)
	}
	if plans2[0].Layout.Equal(staticLayout) {
		t.Error("second iteration should use the solved layout")
	}
	if err := plans2[0].Layout.Validate(testC, false); err != nil {
		t.Fatal(err)
	}
	// Mismatched layer count must error.
	if _, err := s.Plan(newGen(t, 3, 8).Step()); err == nil {
		t.Error("layer-count mismatch accepted")
	}
}

// TestBalancedOracle: perfectly balanced loads by construction.
func TestBalancedOracle(t *testing.T) {
	topo := testTopo()
	s := &BalancedOracle{Topo: topo, C: testC}
	gen := newGen(t, 1, 9)
	plans, err := s.Plan(routingStep(t, gen))
	if err != nil {
		t.Fatal(err)
	}
	if imb := imbalanceOf(plans[0].Dispatch); imb > 1.01 {
		t.Errorf("oracle imbalance %.4f, want ~1", imb)
	}
}

// tinyArch returns a model config matching the test expert shape.
func tinyArch() *model.Config {
	return &model.Config{
		Name: "tiny", Layers: 1, HiddenDim: 1024, Intermediate: 2048,
		Heads: 8, KVHeads: 8, HeadDim: 128, VocabSize: 1000,
		Experts: testE, TopK: 2, ExpertCapacity: testC,
	}
}
