package baselines

import (
	"sort"
	"time"

	"laermoe/internal/executor"
	"laermoe/internal/planner"
	"laermoe/internal/stats"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// SmartMoE reproduces the relocation-only online adjustment of SmartMoE
// (Zhai et al., ATC 2023): expert *locations* are re-optimized from
// historical load at a deliberately low frequency (the original regulates
// to hundreds of iterations to bound re-layout overhead), experts are
// never replicated beyond their data-parallel copies, and each relocation
// pays an explicit migration cost of roughly 6x the expert parameter size
// (parameters + optimizer state) on the iteration where it happens.
type SmartMoE struct {
	Topo *topology.Topology
	C    int
	// Interval is the number of iterations between re-layouts.
	Interval int
	// MigrationSeconds is the wire cost of moving one expert (params +
	// optimizer state) between devices.
	MigrationSeconds float64

	history     []*stats.VectorEMA // per layer, per expert load EMA
	assignments [][]int            // per layer: expert -> EP-group slot
	iter        int
	plannerTime float64
}

// NewSmartMoE builds the scheduler with identity placement.
func NewSmartMoE(topo *topology.Topology, layers, e, c, interval int, migrationSeconds float64) (*SmartMoE, error) {
	if _, err := planner.StaticEP(e, topo.N(), c); err != nil {
		return nil, err // validates divisibility
	}
	s := &SmartMoE{
		Topo: topo, C: c, Interval: interval, MigrationSeconds: migrationSeconds,
		history:     make([]*stats.VectorEMA, layers),
		assignments: make([][]int, layers),
	}
	for l := 0; l < layers; l++ {
		ema, err := stats.NewVectorEMA(0.3, e)
		if err != nil {
			return nil, err
		}
		s.history[l] = ema
		s.assignments[l] = make([]int, e)
		for j := 0; j < e; j++ {
			s.assignments[l][j] = j / c // identity: slot = expert block
		}
	}
	return s, nil
}

// Name implements Scheduler.
func (s *SmartMoE) Name() string { return "smartmoe" }

// PlannerTime implements Scheduler.
func (s *SmartMoE) PlannerTime() float64 { return s.plannerTime }

// Plan implements Scheduler.
func (s *SmartMoE) Plan(routing []*trace.RoutingMatrix) ([]executor.LayerPlan, error) {
	plans := make([]executor.LayerPlan, len(routing))
	start := time.Now()
	relayout := s.iter > 0 && s.iter%s.Interval == 0
	for l, r := range routing {
		s.history[l].Observe(r.ExpertLoads())
		extra := 0.0
		if relayout {
			moved := s.resolve(l)
			extra = float64(moved) * s.MigrationSeconds
		}
		layout := s.layoutFor(l, r.E, r.N)
		plans[l] = executor.LayerPlan{
			Layout:            layout,
			Dispatch:          s.groupLocalRouting(r, l),
			ExtraRelayoutTime: extra,
		}
	}
	s.iter++
	s.plannerTime = time.Since(start).Seconds()
	return plans, nil
}

// resolve reassigns experts to EP-group slots so hot and cold experts are
// co-located (greedy longest-processing-time packing), returning the
// number of experts that changed slots.
func (s *SmartMoE) resolve(layer int) int {
	loads := s.history[layer].Values()
	e := len(loads)
	pep := e / s.C
	order := make([]int, e)
	for j := range order {
		order[j] = j
	}
	sort.SliceStable(order, func(a, b int) bool { return loads[order[a]] > loads[order[b]] })
	slotLoad := make([]float64, pep)
	slotCount := make([]int, pep)
	next := make([]int, e)
	for _, j := range order {
		best := -1
		for sl := 0; sl < pep; sl++ {
			if slotCount[sl] >= s.C {
				continue
			}
			if best == -1 || slotLoad[sl] < slotLoad[best] {
				best = sl
			}
		}
		next[j] = best
		slotLoad[best] += loads[j]
		slotCount[best]++
	}
	moved := 0
	for j := 0; j < e; j++ {
		if next[j] != s.assignments[layer][j] {
			moved++
		}
	}
	s.assignments[layer] = next
	return moved
}

// layoutFor materializes the slot assignment as a layout: slot sl of every
// EP group hosts the experts assigned to sl.
func (s *SmartMoE) layoutFor(layer, e, n int) *planner.Layout {
	pep := e / s.C
	l := planner.NewLayout(e, n)
	for j := 0; j < e; j++ {
		slot := s.assignments[layer][j]
		for g := 0; g*pep < n; g++ {
			l.A[j][g*pep+slot] = 1
		}
	}
	return l
}

// groupLocalRouting routes every token to the copy of its expert inside
// the source device's own EP group — SmartMoE relocates experts but keeps
// vanilla EP routing semantics.
func (s *SmartMoE) groupLocalRouting(r *trace.RoutingMatrix, layer int) *planner.Dispatch {
	e := r.E
	pep := e / s.C
	d := &planner.Dispatch{N: r.N, E: e}
	for i := 0; i < r.N; i++ {
		groupStart := (i / pep) * pep
		for j := 0; j < e; j++ {
			if r.R[i][j] == 0 {
				continue
			}
			owner := groupStart + s.assignments[layer][j]
			d.Assignments = append(d.Assignments, planner.Assignment{
				Src: i, Expert: j, Dst: owner, Tokens: r.R[i][j],
			})
		}
	}
	return d
}
