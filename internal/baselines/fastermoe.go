package baselines

import (
	"time"

	"laermoe/internal/comm"
	"laermoe/internal/executor"
	"laermoe/internal/model"
	"laermoe/internal/planner"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// FasterMoE reproduces the "shadowing" policy of FasterMoE (He et al.,
// PPoPP 2022): each iteration, experts whose load exceeds HotThreshold
// times the mean are broadcast to every device, their tokens are then
// computed locally (no token All-to-All for them), and their gradients are
// all-reduced across the cluster. The policy removes hot-expert tail
// latency but pays explicit, skewed parameter traffic proportional to the
// number of shadows — the drawback Sec. 6 highlights.
type FasterMoE struct {
	Topo *topology.Topology
	Arch *model.Config
	// HotThreshold marks expert j hot when load_j > HotThreshold * mean.
	HotThreshold float64

	comm        *comm.Model
	static      *planner.Layout
	plannerTime float64
}

// NewFasterMoE builds the scheduler over the static EP baseline layout.
func NewFasterMoE(topo *topology.Topology, arch *model.Config, hotThreshold float64) (*FasterMoE, error) {
	static, err := planner.StaticEP(arch.Experts, topo.N(), arch.ExpertCapacity)
	if err != nil {
		return nil, err
	}
	return &FasterMoE{
		Topo: topo, Arch: arch, HotThreshold: hotThreshold,
		comm: comm.New(topo), static: static,
	}, nil
}

// Name implements Scheduler.
func (f *FasterMoE) Name() string { return "fastermoe" }

// PlannerTime implements Scheduler.
func (f *FasterMoE) PlannerTime() float64 { return f.plannerTime }

// Plan implements Scheduler.
func (f *FasterMoE) Plan(routing []*trace.RoutingMatrix) ([]executor.LayerPlan, error) {
	plans := make([]executor.LayerPlan, len(routing))
	start := time.Now()
	n := f.Topo.N()
	c := f.Arch.ExpertCapacity
	pep := f.Arch.Experts / c
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	expertBytes := float64(f.Arch.ExpertBytes())

	for li, r := range routing {
		loads := r.ExpertLoads()
		mean := 0.0
		for _, v := range loads {
			mean += v
		}
		mean /= float64(len(loads))
		hot := make(map[int]bool)
		for j, v := range loads {
			if v > f.HotThreshold*mean {
				hot[j] = true
			}
		}

		layout := f.static.Clone()
		d := &planner.Dispatch{N: r.N, E: r.E}
		for i := 0; i < r.N; i++ {
			groupStart := (i / pep) * pep
			for j := 0; j < r.E; j++ {
				if r.R[i][j] == 0 {
					continue
				}
				dst := groupStart + j/c
				if hot[j] {
					dst = i // shadowed: compute locally
					layout.A[j][i] = maxInt(layout.A[j][i], 1)
				}
				d.Assignments = append(d.Assignments, planner.Assignment{
					Src: i, Expert: j, Dst: dst, Tokens: r.R[i][j],
				})
			}
		}

		// Shadowing cost: broadcast each hot expert's parameters to every
		// device and all-reduce its gradients back (forward + backward).
		extra := 0.0
		for range hot {
			extra += f.comm.Broadcast(all, expertBytes) + f.comm.AllReduce(all, expertBytes)
		}
		plans[li] = executor.LayerPlan{Layout: layout, Dispatch: d, ExtraRelayoutTime: extra}
	}
	f.plannerTime = time.Since(start).Seconds()
	return plans, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
