package comm

import (
	"math"
	"testing"

	"laermoe/internal/topology"
)

func modelAndTopo() (*Model, *topology.Topology) {
	topo := topology.Default()
	return New(topo), topo
}

func TestAllToAllZeroVolume(t *testing.T) {
	m, topo := modelAndTopo()
	if got := m.AllToAll(NewVolumeMatrix(topo.N())); got != 0 {
		t.Errorf("empty All-to-All time = %g, want 0", got)
	}
}

func TestAllToAllIgnoresSelfTransfers(t *testing.T) {
	m, topo := modelAndTopo()
	vol := NewVolumeMatrix(topo.N())
	vol.Add(3, 3, 1e12) // local copy, no wire time
	if got := m.AllToAll(vol); got != 0 {
		t.Errorf("self-transfer costed %g, want 0", got)
	}
	if vol.Total() != 0 {
		t.Errorf("Total counts self-transfers: %g", vol.Total())
	}
}

func TestAllToAllLinkClasses(t *testing.T) {
	m, topo := modelAndTopo()
	bytes := 1e9
	intra := NewVolumeMatrix(topo.N())
	intra.Add(0, 1, bytes)
	inter := NewVolumeMatrix(topo.N())
	inter.Add(0, 8, bytes)
	ti, tx := m.AllToAll(intra), m.AllToAll(inter)
	if ti >= tx {
		t.Errorf("intra transfer (%g) not faster than inter (%g)", ti, tx)
	}
	wantIntra := bytes/topology.DefaultIntraBW + topo.Latency
	if math.Abs(ti-wantIntra)/wantIntra > 1e-9 {
		t.Errorf("intra time = %g, want %g", ti, wantIntra)
	}
}

func TestAllToAllSerializesSends(t *testing.T) {
	m, topo := modelAndTopo()
	one := NewVolumeMatrix(topo.N())
	one.Add(0, 8, 1e9)
	two := NewVolumeMatrix(topo.N())
	two.Add(0, 8, 1e9)
	two.Add(0, 16, 1e9)
	t1, t2 := m.AllToAll(one), m.AllToAll(two)
	if t2 < 1.9*t1-topo.Latency*4 {
		t.Errorf("two sends (%g) should take ~2x one send (%g)", t2, t1)
	}
}

func TestAllToAllBottleneckDevice(t *testing.T) {
	m, topo := modelAndTopo()
	// Device 0 receives from everyone: completion is gated by its ingress.
	vol := NewVolumeMatrix(topo.N())
	for src := 1; src < topo.N(); src++ {
		vol.Add(src, 0, 1e9)
	}
	spread := NewVolumeMatrix(topo.N())
	for src := 1; src < topo.N(); src++ {
		spread.Add(src, (src+1)%topo.N(), 1e9)
	}
	if m.AllToAll(vol) <= m.AllToAll(spread) {
		t.Error("incast pattern should be slower than spread pattern")
	}
}

func TestAllGatherReduceScatterRelations(t *testing.T) {
	m, topo := modelAndTopo()
	group := topo.NodeDevices(0)
	shard := 1e8
	ag := m.AllGather(group, shard)
	rs := m.ReduceScatter(group, shard*float64(len(group)))
	if math.Abs(ag-rs)/ag > 1e-9 {
		t.Errorf("ring AG (%g) and RS of the same total (%g) should match", ag, rs)
	}
	ar := m.AllReduce(group, shard*float64(len(group)))
	if math.Abs(ar-(ag+rs))/ar > 1e-9 {
		t.Errorf("AllReduce (%g) should equal RS+AG (%g)", ar, ag+rs)
	}
}

func TestCollectivesDegenerateCases(t *testing.T) {
	m, topo := modelAndTopo()
	single := []int{0}
	if m.AllGather(single, 1e9) != 0 || m.ReduceScatter(single, 1e9) != 0 ||
		m.AllReduce(single, 1e9) != 0 || m.Broadcast(single, 1e9) != 0 {
		t.Error("single-member collectives should be free")
	}
	if m.AllGather(topo.NodeDevices(0), 0) != 0 {
		t.Error("zero-byte all-gather should be free")
	}
	if m.P2P(2, 2, 1e9) != 0 {
		t.Error("self P2P should be free")
	}
}

func TestCrossNodeGroupsAreSlower(t *testing.T) {
	m, topo := modelAndTopo()
	intra := topo.NodeDevices(0)
	cross := []int{0, 8, 16, 24, 1, 9, 17, 25}
	if m.AllGather(intra, 1e8) >= m.AllGather(cross, 1e8) {
		t.Error("cross-node all-gather should be slower than intra-node")
	}
	if m.AllReduce(intra, 1e8) >= m.AllReduce(cross, 1e8) {
		t.Error("cross-node all-reduce should be slower than intra-node")
	}
}

func TestBroadcastRounds(t *testing.T) {
	m, topo := modelAndTopo()
	g2 := []int{0, 1}
	g8 := topo.NodeDevices(0)
	b2, b8 := m.Broadcast(g2, 1e8), m.Broadcast(g8, 1e8)
	if math.Abs(b8/b2-3) > 1e-6 { // log2(8)=3 rounds vs 1 round
		t.Errorf("broadcast rounds ratio = %g, want 3", b8/b2)
	}
}

func TestP2P(t *testing.T) {
	m, topo := modelAndTopo()
	want := 1e9/topo.InterBW + topo.Latency
	if got := m.P2P(0, 8, 1e9); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("P2P = %g, want %g", got, want)
	}
}

func TestUniformAllToAll(t *testing.T) {
	m, topo := modelAndTopo()
	group := make([]int, topo.N())
	for i := range group {
		group[i] = i
	}
	got := m.UniformAllToAll(group, 1e6)
	// Per device: 7 intra peers + 24 inter peers.
	want := 7*1e6/topo.IntraBW + 24*1e6/topo.InterBW + 31*topo.Latency
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("uniform All-to-All = %g, want %g", got, want)
	}
	if m.UniformAllToAll(group[:1], 1e6) != 0 {
		t.Error("single-member uniform All-to-All should be free")
	}
}

func TestAllToAllDimensionMismatchPanics(t *testing.T) {
	m, _ := modelAndTopo()
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	m.AllToAll(NewVolumeMatrix(4))
}
