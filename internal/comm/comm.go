// Package comm models the latency of the collective communication
// operations used by MoE training on a given cluster topology: All-to-All
// (token dispatch/combine and FSEP shard exchange), AllGather and
// ReduceScatter (FSDP parameter/gradient traffic), AllReduce (tensor
// parallelism), broadcast and point-to-point transfers.
//
// The model is alpha-beta per link class: a transfer of b bytes between
// devices i and j costs Latency + b/bw(i,j); a device's sends (and,
// independently, receives) serialize on its NIC. A collective completes
// when its slowest participant finishes — the property that turns expert
// load imbalance into All-to-All tail latency (Fig. 1b).
package comm

import (
	"fmt"

	"laermoe/internal/topology"
)

// VolumeMatrix holds per-pair byte counts for an All-to-All style exchange:
// Bytes[i][j] is sent from device i to device j.
type VolumeMatrix struct {
	N     int
	Bytes [][]float64
}

// NewVolumeMatrix returns a zeroed N x N matrix.
func NewVolumeMatrix(n int) *VolumeMatrix {
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
	}
	return &VolumeMatrix{N: n, Bytes: b}
}

// Add accumulates bytes from src to dst.
func (v *VolumeMatrix) Add(src, dst int, bytes float64) {
	v.Bytes[src][dst] += bytes
}

// Total returns the total bytes in the exchange (excluding self-sends).
func (v *VolumeMatrix) Total() float64 {
	t := 0.0
	for i := 0; i < v.N; i++ {
		for j := 0; j < v.N; j++ {
			if i != j {
				t += v.Bytes[i][j]
			}
		}
	}
	return t
}

// Model computes collective latencies over a topology.
type Model struct {
	Topo *topology.Topology
}

// New returns a communication model over the given topology.
func New(t *topology.Topology) *Model { return &Model{Topo: t} }

// AllToAll returns the completion time of an irregular All-to-All with the
// given per-pair volumes. Per device, send time is the sum over
// destinations of bytes/bw(i,k) (sends serialize on the NIC), and likewise
// for receives; the collective finishes when the slowest device finishes
// either side. Self-transfers (i==j) are local copies and ignored.
func (m *Model) AllToAll(vol *VolumeMatrix) float64 {
	if vol.N != m.Topo.N() {
		panic(fmt.Sprintf("comm: volume matrix for %d devices on %d-device topology", vol.N, m.Topo.N()))
	}
	worst := 0.0
	for i := 0; i < vol.N; i++ {
		var send, recv float64
		msgs := 0
		for k := 0; k < vol.N; k++ {
			if k == i {
				continue
			}
			if vol.Bytes[i][k] > 0 {
				send += vol.Bytes[i][k] / m.Topo.Bandwidth(i, k)
				msgs++
			}
			if vol.Bytes[k][i] > 0 {
				recv += vol.Bytes[k][i] / m.Topo.Bandwidth(k, i)
			}
		}
		t := send
		if recv > t {
			t = recv
		}
		if t > 0 {
			t += m.Topo.Latency * float64(max(1, msgs))
		}
		if t > worst {
			worst = t
		}
	}
	if worst == 0 {
		return 0
	}
	return worst
}

// UniformAllToAll returns the time of a regular All-to-All where every
// device sends bytesPerPair to every other device in the group.
func (m *Model) UniformAllToAll(group []int, bytesPerPair float64) float64 {
	if len(group) < 2 || bytesPerPair <= 0 {
		return 0
	}
	worst := 0.0
	for _, i := range group {
		send := 0.0
		for _, k := range group {
			if k == i {
				continue
			}
			send += bytesPerPair / m.Topo.Bandwidth(i, k)
		}
		send += m.Topo.Latency * float64(len(group)-1)
		if send > worst {
			worst = send
		}
	}
	return worst
}

// AllGather returns the ring all-gather time for a group where each device
// contributes shardBytes and ends with the full group's data: each device
// moves (P-1) shards over the bottleneck link of the ring.
func (m *Model) AllGather(group []int, shardBytes float64) float64 {
	p := len(group)
	if p < 2 || shardBytes <= 0 {
		return 0
	}
	bw := m.Topo.MinBandwidth(group)
	steps := float64(p - 1)
	return steps*(shardBytes/bw) + steps*m.Topo.Latency
}

// ReduceScatter returns the ring reduce-scatter time for a group where the
// full buffer is fullBytes and each device ends with fullBytes/P reduced.
func (m *Model) ReduceScatter(group []int, fullBytes float64) float64 {
	p := len(group)
	if p < 2 || fullBytes <= 0 {
		return 0
	}
	bw := m.Topo.MinBandwidth(group)
	steps := float64(p - 1)
	return steps*(fullBytes/float64(p)/bw) + steps*m.Topo.Latency
}

// AllReduce returns the ring all-reduce time (reduce-scatter + all-gather).
func (m *Model) AllReduce(group []int, fullBytes float64) float64 {
	p := len(group)
	if p < 2 || fullBytes <= 0 {
		return 0
	}
	return m.ReduceScatter(group, fullBytes) + m.AllGather(group, fullBytes/float64(p))
}

// Broadcast returns a tree broadcast time of bytes from one device to the
// group (log2(P) rounds over the bottleneck link).
func (m *Model) Broadcast(group []int, bytes float64) float64 {
	p := len(group)
	if p < 2 || bytes <= 0 {
		return 0
	}
	bw := m.Topo.MinBandwidth(group)
	rounds := 0
	for v := 1; v < p; v <<= 1 {
		rounds++
	}
	return float64(rounds) * (bytes/bw + m.Topo.Latency)
}

// P2P returns the point-to-point transfer time of bytes from i to j.
func (m *Model) P2P(i, j int, bytes float64) float64 {
	if bytes <= 0 || i == j {
		return 0
	}
	return bytes/m.Topo.Bandwidth(i, j) + m.Topo.Latency
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
