package journal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, interval time.Duration) *Store {
	t.Helper()
	st, err := Open(Options{Dir: t.TempDir(), FsyncInterval: interval})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

type payload struct {
	Epoch int    `json:"epoch"`
	Note  string `json:"note,omitempty"`
}

func TestAppendReadRoundTrip(t *testing.T) {
	st := openTest(t, -1) // strict mode: every append durable
	w, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindOpen, payload{Note: "spec"}); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if err := w.Append(KindObserve, payload{Epoch: e}); err != nil {
			t.Fatal(err)
		}
		if err := w.Append(KindDecision, payload{Epoch: e}); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Seq(); got != 7 {
		t.Fatalf("writer seq %d, want 7", got)
	}
	recs, err := st.Read("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 7 {
		t.Fatalf("read %d records, want 7", len(recs))
	}
	if recs[0].Kind != KindOpen || recs[1].Kind != KindObserve || recs[2].Kind != KindDecision {
		t.Fatalf("record kinds %v %v %v", recs[0].Kind, recs[1].Kind, recs[2].Kind)
	}
	var p payload
	if err := recs[5].Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Epoch != 2 {
		t.Fatalf("record 5 decoded epoch %d, want 2", p.Epoch)
	}
	for i, r := range recs {
		if r.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestBatchedSyncAndClose(t *testing.T) {
	st := openTest(t, time.Millisecond)
	w, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(KindObserve, payload{Epoch: i}); err != nil {
			t.Fatal(err)
		}
	}
	// The batched append is visible to readers immediately (page cache),
	// durable within an interval; Close is the shutdown barrier.
	recs, err := st.Read("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("read %d records, want 10", len(recs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindObserve, payload{}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

func TestConcurrentAppendsAcrossSessions(t *testing.T) {
	st := openTest(t, time.Millisecond)
	const sessions, records = 8, 50
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		w, err := st.Create(fmt.Sprintf("s-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, w *Writer) {
			defer wg.Done()
			for r := 0; r < records; r++ {
				if err := w.Append(KindObserve, payload{Epoch: r}); err != nil {
					errs[i] = err
					return
				}
			}
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != sessions {
		t.Fatalf("listed %d journals, want %d", len(ids), sessions)
	}
	for i := 0; i < sessions; i++ {
		recs, err := st.Read(fmt.Sprintf("s-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != records {
			t.Fatalf("session %d has %d records, want %d", i, len(recs), records)
		}
		for r, rec := range recs {
			var p payload
			if err := rec.Decode(&p); err != nil {
				t.Fatal(err)
			}
			if p.Epoch != r {
				t.Fatalf("session %d record %d carries epoch %d (order lost)", i, r, p.Epoch)
			}
		}
	}
}

func TestTornTailIsFencedOffAndTruncated(t *testing.T) {
	st := openTest(t, -1)
	w, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		if err := w.Append(KindObserve, payload{Epoch: e}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash mid-write: a partial final line.
	path := filepath.Join(st.Dir(), "s-1.jnl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"n":5,"k":"observe","p":{"epo`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, err := st.Read("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("torn journal read %d records, want 4", len(recs))
	}

	// OpenAppend truncates the tail and resumes the sequence.
	w2, recs2, err := st.OpenAppend("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != 4 || w2.Seq() != 4 {
		t.Fatalf("reopened with %d records, seq %d", len(recs2), w2.Seq())
	}
	if err := w2.Append(KindObserve, payload{Epoch: 4}); err != nil {
		t.Fatal(err)
	}
	recs3, err := st.Read("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs3) != 5 || recs3[4].Seq != 5 {
		t.Fatalf("after reopen+append: %d records, tail seq %d", len(recs3), recs3[len(recs3)-1].Seq)
	}
}

func TestCorruptMiddleFencesRest(t *testing.T) {
	st := openTest(t, -1)
	path := filepath.Join(st.Dir(), "s-1.jnl")
	lines := []string{
		`{"n":1,"k":"open","p":{"epoch":0}}`,
		`{"n":2,"k":"observe","p":{"epoch":0}}`,
		`garbage line`,
		`{"n":4,"k":"observe","p":{"epoch":1}}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Read("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records past corruption, want 2", len(recs))
	}
}

func TestRemove(t *testing.T) {
	st := openTest(t, -1)
	w, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindOpen, payload{}); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("s-1"); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("removed journal still listed: %v", ids)
	}
	// Removing a session that never journaled is not an error.
	if err := st.Remove("s-2"); err != nil {
		t.Fatal(err)
	}
	// The removed writer is closed.
	if err := w.Append(KindObserve, payload{}); err == nil {
		t.Fatal("append to removed journal succeeded")
	}
}

func TestInvalidIDs(t *testing.T) {
	st := openTest(t, -1)
	for _, id := range []string{"", "../evil", "a/b", `a\b`, "."} {
		if _, err := st.Create(id); err == nil {
			t.Fatalf("Create(%q) accepted", id)
		}
		if _, err := st.Read(id); err == nil {
			t.Fatalf("Read(%q) accepted", id)
		}
		if err := st.Remove(id); err == nil {
			t.Fatalf("Remove(%q) accepted", id)
		}
	}
}

func TestCreateTruncatesLeftover(t *testing.T) {
	st := openTest(t, -1)
	w, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindOpen, payload{Note: "old"}); err != nil {
		t.Fatal(err)
	}
	w2, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(KindOpen, payload{Note: "new"}); err != nil {
		t.Fatal(err)
	}
	recs, err := st.Read("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("recreated journal has %d records, want 1", len(recs))
	}
	var p payload
	if err := recs[0].Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Note != "new" {
		t.Fatalf("recreated journal kept %q", p.Note)
	}
}
