package journal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenRejectsBadDirectories(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("empty directory accepted")
	}
	// A regular file where the directory should be must fail, not wedge.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: blocker}); err == nil {
		t.Fatal("file-as-directory accepted")
	}
}

// TestStrictModeSyncsInline: a negative interval disables the batcher and
// every Append fsyncs before returning.
func TestStrictModeSyncsInline(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir(), FsyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(KindObserve, map[string]int{"i": i}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := st.Read("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	var v int
	if err := (Record{Seq: 1, Kind: KindOpen}).Decode(&v); err == nil {
		t.Fatal("payload-less record decoded")
	}
	rec := Record{Seq: 1, Kind: KindOpen, Payload: []byte(`{"a":1}`)}
	if err := rec.Decode(&v); err == nil {
		t.Fatal("object decoded into int")
	}
	if err := rec.Decode(&map[string]int{}); err != nil {
		t.Fatal(err)
	}
}

func TestOpenAppendMissingSession(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, _, err := st.OpenAppend("ghost"); err == nil {
		t.Fatal("OpenAppend on a missing journal succeeded")
	}
}

// TestReopenDisplacesOldWriter: registering a second writer for the same
// id closes the first; the displaced writer refuses further appends.
func TestReopenDisplacesOldWriter(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	old, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Append(KindOpen, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	if err := old.Sync(); err != nil {
		t.Fatal(err)
	}
	fresh, recs, err := st.OpenAppend("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("reopen read %d records, want 1", len(recs))
	}
	if err := old.Append(KindObserve, nil); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("displaced writer appended (err %v)", err)
	}
	if err := fresh.Append(KindObserve, nil); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Seq(); got != 2 {
		t.Fatalf("fresh writer at seq %d, want 2", got)
	}
}

func TestClosedStoreRefusesWriters(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create("s-2"); err == nil {
		t.Fatal("closed store handed out a writer")
	}
	if err := w.Append(KindObserve, nil); err == nil {
		t.Fatal("append on a closed store's writer succeeded")
	}
}

func TestAppendRejectsUnmarshalablePayload(t *testing.T) {
	st, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	w, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(KindObserve, make(chan int)); err == nil {
		t.Fatal("channel payload marshaled")
	}
	// A marshal failure must not poison the writer.
	if err := w.Append(KindObserve, map[string]int{"ok": 1}); err != nil {
		t.Fatal(err)
	}
}
