package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRewriteReplacesHistory: Rewrite atomically replaces a journal's
// contents with a renumbered record set, the returned writer appends past
// it, and the old writer is dead — compaction's contract.
func TestRewriteReplacesHistory(t *testing.T) {
	st := openTest(t, -1)
	old, err := st.Create("s-1")
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 6; e++ {
		if err := old.Append(KindObserve, payload{Epoch: e}); err != nil {
			t.Fatal(err)
		}
	}

	w, err := st.Rewrite("s-1", []RewriteRecord{
		{Kind: KindOpen, Payload: payload{Note: "spec"}},
		{Kind: KindState, Payload: payload{Epoch: 5, Note: "checkpoint"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Seq(); got != 2 {
		t.Fatalf("rewritten writer seq %d, want 2", got)
	}
	if err := w.Append(KindObserve, payload{Epoch: 6}); err != nil {
		t.Fatal(err)
	}

	recs, err := st.Read("s-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("rewritten journal has %d records, want 3", len(recs))
	}
	wantKinds := []Kind{KindOpen, KindState, KindObserve}
	for i, r := range recs {
		if r.Seq != uint64(i)+1 {
			t.Fatalf("record %d has seq %d, want %d (rewrite must renumber)", i, r.Seq, i+1)
		}
		if r.Kind != wantKinds[i] {
			t.Fatalf("record %d kind %q, want %q", i, r.Kind, wantKinds[i])
		}
	}
	var p payload
	if err := recs[1].Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Epoch != 5 || p.Note != "checkpoint" {
		t.Fatalf("state record decoded %+v", p)
	}

	// The pre-rewrite writer must not be able to corrupt the new file.
	if err := old.Append(KindObserve, payload{Epoch: 99}); err == nil {
		t.Error("append on the replaced writer did not fail")
	}
	if recs, err = st.Read("s-1"); err != nil || len(recs) != 3 {
		t.Fatalf("journal after dead-writer append: %d records, err %v", len(recs), err)
	}
}

// TestRewriteLeavesNoTemp: the temp file is renamed on success and
// removed on failure, and List never reports it as a session.
func TestRewriteLeavesNoTemp(t *testing.T) {
	st := openTest(t, -1)
	if _, err := st.Create("s-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Rewrite("s-1", nil); err == nil {
		t.Fatal("empty rewrite not rejected")
	}
	if _, err := st.Rewrite("s-1", []RewriteRecord{
		{Kind: KindOpen, Payload: payload{Note: "spec"}},
	}); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(st.Dir(), "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
	// A stray temp file from a crashed rewrite is not a session.
	if err := os.WriteFile(filepath.Join(st.Dir(), "s-2.jnl.tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != "s-1" {
		t.Fatalf("List = %v, want [s-1]", ids)
	}
}

// TestRewriteUnknownSession: rewriting a session with no journal creates
// it (compaction may race eviction; the store-level call is just a file
// replace), but an invalid id is still rejected.
func TestRewriteRejectsBadID(t *testing.T) {
	st := openTest(t, -1)
	if _, err := st.Rewrite("../evil", []RewriteRecord{{Kind: KindOpen, Payload: payload{}}}); err == nil {
		t.Fatal("path-traversal id not rejected")
	}
}
