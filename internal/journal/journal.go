// Package journal is the durable, append-only event log behind
// laer-serve's restartable sessions. Each session owns one JSON-Lines
// file under the store directory: the opening spec, every observation and
// topology event the session absorbed, every decision it issued, and
// periodic planner-state snapshots. Because the decision core
// (training.OnlinePlanner) is deterministic, a restarted daemon rebuilds
// each session by re-feeding its journal and lands on byte-identical
// planner state — the journal records decisions too, so the replay can
// *verify* that identity record by record instead of assuming it.
//
// Appends are fsync-batched (group commit): a record is written to the
// file immediately and acknowledged without waiting for fsync; one
// store-wide flusher fsyncs every dirty file at the configured interval,
// so a daemon serving hundreds of sessions pays a bounded number of
// fsyncs per interval instead of one per request. A hard crash can lose
// at most the final interval's records; readers tolerate the torn tail
// such a crash leaves (see Read), and a graceful shutdown syncs
// everything (see Close).
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// Kind names one record type. The vocabulary is owned here so journal
// files are self-describing independent of the serve layer.
type Kind string

const (
	// KindOpen is a session's first record: the client's session spec and
	// the server-assigned sequence number.
	KindOpen Kind = "open"
	// KindObserve is one epoch's posted observation (the per-layer routing
	// matrices), appended before the solve it drives.
	KindObserve Kind = "observe"
	// KindDecision is the re-layout decision an observation produced,
	// appended after the solve. Replay recomputes it and byte-compares.
	KindDecision Kind = "decision"
	// KindTopology is a batch of membership/degradation fault events.
	KindTopology Kind = "topology"
	// KindTopologyDecision is the forced recovery re-layout a topology
	// update produced.
	KindTopologyDecision Kind = "topology-decision"
	// KindSnapshot is a periodic planner-state digest checkpoint; replay
	// re-derives the digest and fails loudly on divergence.
	KindSnapshot Kind = "snapshot"
	// KindState is a full planner-state checkpoint: enough to rebuild the
	// session without the records it replaces. Compaction (Rewrite)
	// truncates a session's replayed history down to its opening record
	// plus one of these.
	KindState Kind = "state"
	// KindObserveDelta is one epoch's observation expressed as sparse
	// per-layer wire deltas against the previous observation. Replay must
	// hold the prior epoch's dense matrices (from a KindObserve, a
	// KindBaseline, or earlier delta application) to act on one.
	KindObserveDelta Kind = "observe-delta"
	// KindBaseline is the retained dense observation written alongside a
	// compaction checkpoint so delta records appended after a Rewrite still
	// have matrices to apply onto.
	KindBaseline Kind = "baseline"
)

// Record is one journal line. Seq is the per-session record sequence,
// monotonically increasing from 1; readers stop at the first gap, which
// is how a torn tail (or any corruption past it) is fenced off.
type Record struct {
	Seq     uint64          `json:"n"`
	Kind    Kind            `json:"k"`
	Payload json.RawMessage `json:"p,omitempty"`
}

// Decode unmarshals the record payload into v.
func (r Record) Decode(v any) error {
	if len(r.Payload) == 0 {
		return fmt.Errorf("journal: record %d (%s) has no payload", r.Seq, r.Kind)
	}
	return json.Unmarshal(r.Payload, v)
}

// DefaultFsyncInterval is the group-commit cadence when Options leaves it
// zero: small enough that a crash loses only a few milliseconds of
// acknowledged work, large enough that a busy daemon batches many
// sessions' appends into each fsync round.
const DefaultFsyncInterval = 2 * time.Millisecond

// Options configures a Store.
type Options struct {
	// Dir is the journal directory (created if absent). One file per
	// session: <id>.jnl.
	Dir string

	// FsyncInterval is the group-commit cadence (0 = DefaultFsyncInterval).
	// A negative interval disables batching: every Append fsyncs before
	// returning — the strict mode tests use for deterministic durability.
	FsyncInterval time.Duration
}

// Store manages the per-session journal files of one directory and runs
// the shared fsync batcher. All methods are safe for concurrent use.
type Store struct {
	dir      string
	interval time.Duration

	mu      sync.Mutex
	writers map[string]*Writer
	dirty   map[*Writer]struct{}
	closed  bool

	stop chan struct{}
	done chan struct{}
}

// Open creates (or reopens) the journal directory and starts the fsync
// batcher.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("journal: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	interval := opts.FsyncInterval
	if interval == 0 {
		interval = DefaultFsyncInterval
	}
	st := &Store{
		dir:      opts.Dir,
		interval: interval,
		writers:  make(map[string]*Writer),
		dirty:    make(map[*Writer]struct{}),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if interval > 0 {
		go st.flushLoop()
	} else {
		close(st.done)
	}
	return st, nil
}

// Dir returns the store's directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) path(id string) string { return filepath.Join(st.dir, id+".jnl") }

// checkID rejects session ids that would escape the journal directory.
func checkID(id string) error {
	if id == "" || id == "." || id == ".." || strings.ContainsAny(id, "/\\") || id != filepath.Base(id) {
		return fmt.Errorf("journal: invalid session id %q", id)
	}
	return nil
}

// Create opens a fresh journal for a session, truncating any leftover
// file of the same id, and durably records the file's existence (the
// directory entry is fsynced).
func (st *Store) Create(id string) (*Writer, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(st.path(id), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := st.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return st.register(id, f, 0)
}

// OpenAppend reopens an existing session journal for appending: it reads
// the valid record prefix, truncates away any torn tail a crash left,
// and positions the writer after the last intact record. The records are
// returned so the caller can replay them without a second read.
func (st *Store) OpenAppend(id string) (*Writer, []Record, error) {
	if err := checkID(id); err != nil {
		return nil, nil, err
	}
	recs, valid, err := readRecords(st.path(id))
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(st.path(id), os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: truncating torn tail of %s: %w", id, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	var last uint64
	if len(recs) > 0 {
		last = recs[len(recs)-1].Seq
	}
	w, err := st.register(id, f, last)
	if err != nil {
		return nil, nil, err
	}
	return w, recs, nil
}

func (st *Store) register(id string, f *os.File, lastSeq uint64) (*Writer, error) {
	w := &Writer{st: st, id: id, f: f, seq: lastSeq}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		f.Close()
		return nil, fmt.Errorf("journal: store closed")
	}
	if old, ok := st.writers[id]; ok {
		old.close()
	}
	st.writers[id] = w
	return w, nil
}

// Remove closes a session's writer (if open) and deletes its journal —
// the close/evict path: a removed session must not resurrect on restart.
func (st *Store) Remove(id string) error {
	if err := checkID(id); err != nil {
		return err
	}
	st.mu.Lock()
	if w, ok := st.writers[id]; ok {
		delete(st.writers, id)
		delete(st.dirty, w)
		w.close()
	}
	st.mu.Unlock()
	if err := os.Remove(st.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("journal: %w", err)
	}
	return st.syncDir()
}

// RewriteRecord is one record of a Rewrite batch: a kind plus its
// payload, sequence numbers assigned fresh from 1.
type RewriteRecord struct {
	Kind    Kind
	Payload any
}

// Rewrite atomically replaces a session's journal with the given records,
// renumbered from sequence 1 — the compaction primitive: a session's
// replayed history collapses to its opening record plus a planner-state
// checkpoint. The replacement is crash-safe (temp file, fsync, rename,
// directory fsync): a crash at any point leaves either the old journal or
// the new one intact, never a mix. The returned writer is positioned
// after the last record and replaces any open writer for the id.
func (st *Store) Rewrite(id string, recs []RewriteRecord) (*Writer, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("journal: rewrite of %s with no records", id)
	}
	tmpPath := st.path(id) + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	fail := func(err error) (*Writer, error) {
		tmp.Close()
		os.Remove(tmpPath)
		return nil, err
	}
	for i, rec := range recs {
		var raw json.RawMessage
		if rec.Payload != nil {
			b, err := json.Marshal(rec.Payload)
			if err != nil {
				return fail(fmt.Errorf("journal: %w", err))
			}
			raw = b
		}
		line, err := json.Marshal(Record{Seq: uint64(i) + 1, Kind: rec.Kind, Payload: raw})
		if err != nil {
			return fail(fmt.Errorf("journal: %w", err))
		}
		if _, err := tmp.Write(append(line, '\n')); err != nil {
			return fail(fmt.Errorf("journal: rewriting %s: %w", id, err))
		}
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("journal: syncing rewrite of %s: %w", id, err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("journal: %w", err))
	}
	if err := os.Rename(tmpPath, st.path(id)); err != nil {
		os.Remove(tmpPath)
		return nil, fmt.Errorf("journal: installing rewrite of %s: %w", id, err)
	}
	if err := st.syncDir(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(st.path(id), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return st.register(id, f, uint64(len(recs)))
}

// List returns the session ids with a journal on disk, in no particular
// order.
func (st *Store) List() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jnl") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(e.Name(), ".jnl"))
	}
	return ids, nil
}

// Read returns a session journal's valid record prefix. A torn tail —
// the partial final line a crash mid-write leaves — is not an error: the
// records before it are returned and the tail is ignored (OpenAppend
// additionally truncates it away).
func (st *Store) Read(id string) ([]Record, error) {
	if err := checkID(id); err != nil {
		return nil, err
	}
	recs, _, err := readRecords(st.path(id))
	return recs, err
}

// readRecords decodes the valid record prefix of one journal file and
// reports the byte offset where validity ends.
func readRecords(path string) ([]Record, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()
	var (
		recs  []Record
		valid int64
		rd    = bufio.NewReaderSize(f, 1<<16)
	)
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			// A final line without its newline is a torn tail by
			// definition, even if it happens to parse: the crash may have
			// cut it anywhere.
			if err == io.EOF {
				return recs, valid, nil
			}
			return recs, valid, fmt.Errorf("journal: reading %s: %w", path, err)
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil || rec.Seq != uint64(len(recs))+1 {
			// Corrupt or out-of-sequence: fence off everything from here.
			return recs, valid, nil
		}
		recs = append(recs, rec)
		valid += int64(len(line))
	}
}

// SyncAll forces every open journal to stable storage — the graceful
// shutdown barrier.
func (st *Store) SyncAll() error {
	st.mu.Lock()
	ws := make([]*Writer, 0, len(st.writers))
	for _, w := range st.writers {
		ws = append(ws, w)
	}
	clear(st.dirty)
	st.mu.Unlock()
	var first error
	for _, w := range ws {
		if err := w.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close syncs every journal, stops the fsync batcher and closes the
// files. The store is unusable afterwards.
func (st *Store) Close() error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return nil
	}
	st.closed = true
	st.mu.Unlock()
	if st.interval > 0 {
		close(st.stop)
		<-st.done
	}
	err := st.SyncAll()
	st.mu.Lock()
	for id, w := range st.writers {
		w.close()
		delete(st.writers, id)
	}
	clear(st.dirty)
	st.mu.Unlock()
	return err
}

// flushLoop is the group-commit batcher: every interval it fsyncs the
// files dirtied since the previous round. When a round's fsyncs take
// longer than the interval the ticker simply drops ticks, so the loop
// self-throttles instead of queueing work.
func (st *Store) flushLoop() {
	defer close(st.done)
	t := time.NewTicker(st.interval)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-t.C:
			st.flushDirty()
		}
	}
}

func (st *Store) flushDirty() {
	st.mu.Lock()
	batch := make([]*Writer, 0, len(st.dirty))
	for w := range st.dirty {
		batch = append(batch, w)
	}
	clear(st.dirty)
	st.mu.Unlock()
	for _, w := range batch {
		w.Sync() // a sync failure is re-surfaced by the writer's next Append
	}
}

func (st *Store) markDirty(w *Writer) {
	st.mu.Lock()
	if !st.closed {
		st.dirty[w] = struct{}{}
	}
	st.mu.Unlock()
}

// syncDir fsyncs the journal directory so file creations/removals are
// durable, not just their contents.
func (st *Store) syncDir() error {
	d, err := os.Open(st.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// Writer appends records to one session's journal. Safe for concurrent
// use; in practice the serve layer serializes appends under the session
// mutex, which is what fixes record order to decision order.
type Writer struct {
	st *Store
	id string

	mu     sync.Mutex
	f      *os.File
	seq    uint64
	err    error // first write/sync failure; poisons the writer
	closed bool
}

// Seq returns the sequence number of the last appended (or replayed)
// record.
func (w *Writer) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Append marshals payload and writes one record. In batched mode it
// returns once the bytes hit the file (the OS page cache) and durability
// follows within one fsync interval; in strict mode (negative interval)
// it fsyncs first. A failed writer stays failed: every later Append
// returns the first error.
func (w *Writer) Append(kind Kind, payload any) error {
	var raw json.RawMessage
	if payload != nil {
		b, err := json.Marshal(payload)
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		raw = b
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("journal: writer for %s is closed", w.id)
	}
	line, err := json.Marshal(Record{Seq: w.seq + 1, Kind: kind, Payload: raw})
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.f.Write(line); err != nil {
		w.err = fmt.Errorf("journal: appending to %s: %w", w.id, err)
		return w.err
	}
	w.seq++
	if w.st.interval < 0 {
		if err := w.f.Sync(); err != nil {
			w.err = fmt.Errorf("journal: syncing %s: %w", w.id, err)
			return w.err
		}
		return nil
	}
	w.st.markDirty(w)
	return nil
}

// Sync forces the journal to stable storage now.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil || w.closed {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("journal: syncing %s: %w", w.id, err)
		return w.err
	}
	return nil
}

func (w *Writer) close() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.closed {
		w.closed = true
		w.f.Close()
	}
}
