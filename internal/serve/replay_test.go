package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"laermoe/internal/faults"
	"laermoe/internal/trace"
)

// decisionJSON is the byte-identity fingerprint of one epoch's decision:
// the reproducible fields of an ObserveResponse, marshaled — exactly what
// the journal stores and replay verifies. The solve-path counters are
// normalized out, like the wall-clock fields: a restarted session's drift
// trackers start cold, so how a decision was reached (incremental vs full
// solve) is not replay-stable — only the decision itself is.
func decisionJSON(t *testing.T, resp *ObserveResponse) string {
	t.Helper()
	b, err := json.Marshal(decisionRecord{
		Epoch:       resp.Epoch,
		Boundary:    resp.Boundary,
		Observation: resp.Observation,
		Summary:     journalSummary(resp.Summary),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestJournalReplayByteIdentity is the durability acceptance property: a
// daemon killed mid-stream (no Shutdown, no fsync barrier) and restarted
// on the same journal directory continues each session exactly where it
// stopped, and the decisions it issues from there are byte-identical to
// an uninterrupted daemon's. The kill point is randomized (seeded) so the
// restart lands on different snapshot/record alignments across policies.
func TestJournalReplayByteIdentity(t *testing.T) {
	const epochs = 5
	drift := trace.DriftConfig{Model: trace.DriftMigration}
	rng := rand.New(rand.NewSource(42))
	for _, policy := range []string{"warm", "predictive"} {
		t.Run(policy, func(t *testing.T) {
			split := 1 + rng.Intn(epochs-1)
			t.Logf("killing the daemon after %d/%d epochs", split, epochs)

			// Reference: one uninterrupted daemon, no journal.
			_, ref := newTestServer(t, Options{})
			var refInfo SessionInfo
			ref.do("POST", "/v1/sessions", quickSpec(policy), http.StatusCreated, &refInfo)
			stream := observationStream(t, refInfo, epochs, 4, drift)
			want := make([]string, epochs)
			for e := 0; e < epochs; e++ {
				var resp ObserveResponse
				ref.do("POST", "/v1/sessions/"+refInfo.ID+"/observe",
					ObserveRequest{Routing: stream[e]}, http.StatusOK, &resp)
				want[e] = decisionJSON(t, &resp)
			}

			// Interrupted daemon: journal on, snapshots every 2 epochs so
			// replay crosses digest checkpoints, abandoned without Shutdown.
			dir := t.TempDir()
			jopts := Options{JournalDir: dir, SnapshotEvery: 2}
			_, ac := newTestServer(t, jopts)
			var info SessionInfo
			ac.do("POST", "/v1/sessions", quickSpec(policy), http.StatusCreated, &info)
			for e := 0; e < split; e++ {
				var resp ObserveResponse
				ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
					ObserveRequest{Routing: stream[e]}, http.StatusOK, &resp)
				if got := decisionJSON(t, &resp); got != want[e] {
					t.Fatalf("pre-kill epoch %d diverges from reference:\n got: %s\nwant: %s", e, got, want[e])
				}
			}

			// Restart on the same journal directory.
			b, bc := newTestServer(t, jopts)
			var restored SessionInfo
			bc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &restored)
			if restored.Epochs != split {
				t.Fatalf("restored session is at epoch %d, want %d", restored.Epochs, split)
			}
			replayed, failures := b.metrics.sessionsReplayed.Load(), b.metrics.replayFailures.Load()
			if replayed != 1 || failures != 0 {
				t.Fatalf("replay metrics: %d restored, %d failed", replayed, failures)
			}
			for e := split; e < epochs; e++ {
				var resp ObserveResponse
				bc.do("POST", "/v1/sessions/"+info.ID+"/observe",
					ObserveRequest{Routing: stream[e]}, http.StatusOK, &resp)
				if got := decisionJSON(t, &resp); got != want[e] {
					t.Fatalf("post-restart epoch %d diverges from reference:\n got: %s\nwant: %s", e, got, want[e])
				}
			}
		})
	}
}

// journalKinds parses a raw journal file into its record-kind sequence.
func journalKinds(t *testing.T, path string) []string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var rec struct {
			Kind string `json:"k"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		kinds = append(kinds, rec.Kind)
	}
	return kinds
}

// TestJournalCompaction: each state checkpoint rewrites the journal down
// to [open, state, tail...], so a long-lived session's journal stays
// bounded by the snapshot interval instead of growing with its history —
// and a restart from the compacted journal continues byte-identically.
func TestJournalCompaction(t *testing.T) {
	const epochs = 7 // snapshots at 2, 4, 6; one uncompacted epoch after
	drift := trace.DriftConfig{Model: trace.DriftMigration}
	dir := t.TempDir()
	jopts := Options{JournalDir: dir, SnapshotEvery: 2}
	_, ac := newTestServer(t, jopts)
	var info SessionInfo
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	stream := observationStream(t, info, epochs+1, 4, drift)
	for e := 0; e < epochs; e++ {
		ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
			ObserveRequest{Routing: stream[e]}, http.StatusOK, nil)
	}

	// After 7 epochs with SnapshotEvery=2 the journal must be the last
	// checkpoint plus the one epoch journaled since: open, state, the
	// dense baseline the checkpoint retains for delta ingest, and a
	// single observe/decision pair — not 1+7*2 records of history.
	kinds := journalKinds(t, filepath.Join(dir, info.ID+".jnl"))
	wantKinds := []string{"open", "state", "baseline", "observe", "decision"}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("compacted journal holds %d records %v, want %v", len(kinds), kinds, wantKinds)
	}
	for i := range kinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("compacted journal kinds %v, want %v", kinds, wantKinds)
		}
	}

	// Restart on the compacted journal: replay restores the checkpoint,
	// re-feeds only the tail, and the next decision is byte-identical to
	// the uninterrupted run's.
	b, bc := newTestServer(t, jopts)
	var restored SessionInfo
	bc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &restored)
	if restored.Epochs != epochs {
		t.Fatalf("restored session at epoch %d, want %d", restored.Epochs, epochs)
	}
	failures := b.metrics.replayFailures.Load()
	if failures != 0 {
		t.Fatalf("%d replay failures on a compacted journal", failures)
	}
	var ref ObserveResponse
	ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Routing: stream[epochs]}, http.StatusOK, &ref)
	var resp ObserveResponse
	bc.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Routing: stream[epochs]}, http.StatusOK, &resp)
	if got, want := decisionJSON(t, &resp), decisionJSON(t, &ref); got != want {
		t.Fatalf("post-compaction restart diverges:\n got: %s\nwant: %s", got, want)
	}
}

// TestJournalReplayWithTopology: fault events and their recovery
// decisions replay too — a restarted session keeps its degraded topology
// and fault accounting.
func TestJournalReplayWithTopology(t *testing.T) {
	drift := trace.DriftConfig{Model: trace.DriftMigration}
	dir := t.TempDir()
	jopts := Options{JournalDir: dir, SnapshotEvery: 2}
	_, ac := newTestServer(t, jopts)
	var info SessionInfo
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	stream := observationStream(t, info, 3, 4, drift)
	var first ObserveResponse
	ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Routing: stream[0]}, http.StatusOK, &first)
	var tresp TopologyUpdateResponse
	ac.do("POST", "/v1/sessions/"+info.ID+"/topology",
		TopologyUpdateRequest{Events: []faults.Event{{Kind: faults.NodeFail, Node: 1}}},
		http.StatusOK, &tresp)
	if tresp.AvailableDevices != 24 {
		t.Fatalf("post-fault available devices = %d, want 24", tresp.AvailableDevices)
	}

	// Kill (abandon) and restart: the degraded topology must survive.
	_, bc := newTestServer(t, jopts)
	var restored SessionInfo
	bc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &restored)
	if restored.Epochs != 1 || restored.AvailableDevices != 24 || restored.FaultEvents != 1 {
		t.Fatalf("restored session lost topology state: %+v", restored)
	}
}

// TestJournalClosedSessionsStayClosed: closing (or evicting) a session
// removes its journal, so it does not resurrect on restart — and the id
// sequence resumes past every replayed session, so a fresh open after
// restart can never collide with a restored id.
func TestJournalClosedSessionsStayClosed(t *testing.T) {
	dir := t.TempDir()
	jopts := Options{JournalDir: dir}
	a, ac := newTestServer(t, jopts)
	var s1, s2 SessionInfo
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &s1)
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &s2)
	ac.do("DELETE", "/v1/sessions/"+s1.ID, nil, http.StatusOK, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	_, bc := newTestServer(t, jopts)
	var list struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	bc.do("GET", "/v1/sessions", nil, http.StatusOK, &list)
	if len(list.Sessions) != 1 || list.Sessions[0].ID != s2.ID {
		t.Fatalf("restart restored %+v, want only %s", list.Sessions, s2.ID)
	}
	var s3 SessionInfo
	bc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &s3)
	if s3.ID == s1.ID || s3.ID == s2.ID {
		t.Fatalf("fresh session reused id %s", s3.ID)
	}
}

// TestJournalCorruptionDropsSession: a journal whose records were
// tampered with (here: the open record's kind) fails replay; the daemon
// still boots, counts the failure, and deletes the bad journal so the
// next boot is clean.
func TestJournalCorruptionDropsSession(t *testing.T) {
	dir := t.TempDir()
	jopts := Options{JournalDir: dir}
	a, ac := newTestServer(t, jopts)
	var info SessionInfo
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	stream := observationStream(t, info, 1, 4, trace.DriftConfig{Model: trace.DriftNone})
	ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Routing: stream[0]}, http.StatusOK, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Same-length byte tamper: the journal layer still parses every line
	// (seqs intact), but the serve layer's replay must reject the stream.
	path := filepath.Join(dir, info.ID+".jnl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(raw, []byte(`"k":"open"`), []byte(`"k":"oper"`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found in journal")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	b, bc := newTestServer(t, jopts)
	bc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusNotFound, nil)
	replayed, failures := b.metrics.sessionsReplayed.Load(), b.metrics.replayFailures.Load()
	if replayed != 0 || failures != 1 {
		t.Fatalf("replay metrics: %d restored, %d failed", replayed, failures)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed journal not removed (stat err %v)", err)
	}
}

// TestJournalDivergenceDropsSession: a journal whose *decision* bytes
// don't match what replay recomputes — a tampered summary field here,
// standing in for any silent divergence — is rejected by the
// record-by-record byte compare.
func TestJournalDivergenceDropsSession(t *testing.T) {
	dir := t.TempDir()
	jopts := Options{JournalDir: dir}
	a, ac := newTestServer(t, jopts)
	var info SessionInfo
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	stream := observationStream(t, info, 1, 4, trace.DriftConfig{Model: trace.DriftNone})
	ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Routing: stream[0]}, http.StatusOK, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, info.ID+".jnl")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(raw, []byte(`"epoch":0`), []byte(`"epoch":9`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatal("tamper target not found in journal")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}

	b, bc := newTestServer(t, jopts)
	bc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusNotFound, nil)
	failures := b.metrics.replayFailures.Load()
	if failures != 1 {
		t.Fatalf("divergent journal not counted as a replay failure (%d)", failures)
	}
}

// TestJournalEvictionRemovesJournal: the TTL janitor's eviction path also
// deletes the journal.
func TestJournalEvictionRemovesJournal(t *testing.T) {
	dir := t.TempDir()
	_, ac := newTestServer(t, Options{JournalDir: dir, SessionTTL: 30 * time.Millisecond})
	var info SessionInfo
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	path := filepath.Join(dir, info.ID+".jnl")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal not created: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(path); os.IsNotExist(err) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("evicted session's journal still on disk")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ac.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusNotFound, nil)
}

// TestJournalTornTailRecovers: a crash mid-append leaves a partial final
// line; the restart replays the intact prefix and keeps serving.
func TestJournalTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	jopts := Options{JournalDir: dir}
	a, ac := newTestServer(t, jopts)
	var info SessionInfo
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	stream := observationStream(t, info, 2, 4, trace.DriftConfig{Model: trace.DriftMigration})
	ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Routing: stream[0]}, http.StatusOK, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: append half an observe record.
	path := filepath.Join(dir, info.ID+".jnl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(f, `{"n":4,"k":"observe","p":{"rout`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, bc := newTestServer(t, jopts)
	var restored SessionInfo
	bc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &restored)
	if restored.Epochs != 1 {
		t.Fatalf("restored session at epoch %d, want 1", restored.Epochs)
	}
	bc.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Routing: stream[1]}, http.StatusOK, nil)
}
