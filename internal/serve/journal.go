// Durable sessions: the serve layer's view of the decision journal.
//
// With Options.JournalDir set, every session appends its lifecycle to an
// internal/journal store — the opening spec, each observation/decision
// pair, each topology event/decision pair, and periodic planner-state
// digest snapshots. On boot the daemon replays every journal it finds:
// it rebuilds the session from the journaled spec and re-feeds the
// observations and topology events through the planning core. Because the
// core is deterministic, the recomputed decisions must be byte-identical
// to the journaled ones — replay verifies that record by record, and
// verifies the state digest at each snapshot, so a corrupted journal or a
// decision-moving code change fails loudly at boot instead of silently
// resurrecting a diverged session. A session that fails verification is
// dropped (journal removed, failure counted); the daemon still boots.
//
// Journaled payloads deliberately exclude wall-clock measurements
// (SolveSeconds, RecoverySeconds): they are not reproducible, and replay
// compares bytes.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"laermoe/internal/faults"
	"laermoe/internal/journal"
	"laermoe/internal/trace"
	"laermoe/internal/training"
)

// openRecord is a KindOpen payload: the server-assigned sequence number
// (so restarts never reissue a replayed session's id) and the spec as the
// client posted it (pre-defaults — replay applies the same defaulting).
type openRecord struct {
	Seq  uint64      `json:"seq"`
	Spec SessionSpec `json:"spec"`
}

// observeRecord is a KindObserve payload: one epoch's posted routing.
type observeRecord struct {
	Routing [][][]int `json:"routing"`
}

// deltaObserveRecord is a KindObserveDelta payload: one epoch's
// observation as sparse per-layer deltas against the previous one —
// either a client's routing_delta verbatim, or the server-computed diff
// of a dense post when that journals smaller. Epoch is the epoch the
// observation is for; replay re-checks it against the rebuilt session so
// a delta can never silently apply onto the wrong base.
type deltaObserveRecord struct {
	Epoch  int                `json:"epoch"`
	Deltas []*trace.WireDelta `json:"deltas"`
}

// baselineRecord is a KindBaseline payload: the dense retained observation
// written alongside a compaction checkpoint, so delta records appended
// after the rewrite still have matrices to apply onto at replay.
type baselineRecord struct {
	Routing [][][]int `json:"routing"`
}

// decisionRecord is a KindDecision payload: the reproducible part of an
// ObserveResponse. Replay recomputes and byte-compares it.
type decisionRecord struct {
	Epoch       int                      `json:"epoch"`
	Boundary    []training.LayerDecision `json:"boundary"`
	Observation []training.LayerDecision `json:"observation"`
	Summary     training.EpochSummary    `json:"summary"`
}

// journalSummary strips the solve-path counters from a summary before it
// is journaled or replay-compared. Like SolveSeconds, they are telemetry
// about how a decision was reached, not part of the decision: a session
// restored from a state checkpoint starts with cold drift trackers and
// takes full solves on its first epoch, so the counters legitimately
// differ between the original run and a replayed one.
func journalSummary(s training.EpochSummary) training.EpochSummary {
	s.IncrementalSolves, s.FullSolves = 0, 0
	return s
}

// topologyRecord is a KindTopology payload: the normalized fault events.
type topologyRecord struct {
	Events []faults.Event `json:"events"`
}

// topologyDecisionRecord is a KindTopologyDecision payload: the
// reproducible part of a TopologyUpdateResponse.
type topologyDecisionRecord struct {
	Decisions             []training.LayerDecision `json:"decisions"`
	AvailableDevices      int                      `json:"available_devices"`
	RecoveryChargeSeconds float64                  `json:"recovery_charge_seconds"`
}

// snapshotRecord is a KindSnapshot payload: a digest-only planner-state
// checkpoint. Journals written before compaction carry these; replay
// verifies the digest but still needs the full record history. New
// checkpoints are stateRecords.
type snapshotRecord struct {
	Epochs           int    `json:"epochs"`
	Digest           string `json:"digest"`
	AvailableDevices int    `json:"available_devices"`
	FaultEvents      int    `json:"fault_events"`
}

// stateRecord is a KindState payload: a full planner-state checkpoint
// standing in for the records compaction truncated away. Replay restores
// the planner from it and verifies the recorded digest against the
// restored state.
type stateRecord struct {
	Epochs           int                    `json:"epochs"`
	Digest           string                 `json:"digest"`
	AvailableDevices int                    `json:"available_devices"`
	FaultEvents      int                    `json:"fault_events"`
	State            *training.PlannerState `json:"state"`
}

// replayJournal restores every journaled session into s.sessions. It runs
// from New, before the server accepts requests or starts the janitor, so
// it touches server state without locking. Only a store-level failure
// (unreadable directory) is an error; a session whose journal is corrupt
// or whose replay diverges is dropped and counted, and the boot proceeds.
func (s *Server) replayJournal() error {
	ids, err := s.store.List()
	if err != nil {
		return err
	}
	if len(ids) == 0 {
		return nil
	}
	sort.Strings(ids)
	start := time.Now()
	var maxSeq uint64
	dropped := 0
	for _, id := range ids {
		sess, err := s.replaySession(id)
		if err != nil {
			s.metrics.replayFailed()
			s.logf("session %s: journal replay failed: %v (dropping journal)", id, err)
			if rerr := s.store.Remove(id); rerr != nil {
				s.logf("session %s: removing failed journal: %v", id, rerr)
			}
			dropped++
			continue
		}
		s.sessions[id] = sess
		s.metrics.sessionReplayed()
		if sess.seq > maxSeq {
			maxSeq = sess.seq
		}
	}
	// Resume id assignment past every replayed session, so a fresh open
	// after restart can never collide with a restored id.
	if s.seq < maxSeq {
		s.seq = maxSeq
	}
	elapsed := time.Since(start)
	s.metrics.replayFinished(elapsed.Seconds())
	s.logf("journal replay: %d sessions restored, %d dropped in %s",
		len(s.sessions), dropped, elapsed.Round(time.Millisecond))
	return nil
}

// replaySession rebuilds one session from its journal and verifies the
// byte-identity contract along the way. On success the session's writer
// is positioned after the last intact record (any torn tail truncated)
// and journaling resumes seamlessly.
func (s *Server) replaySession(id string) (*session, error) {
	w, recs, err := s.store.OpenAppend(id)
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("journal is empty")
	}
	if recs[0].Kind != journal.KindOpen {
		return nil, fmt.Errorf("journal starts with %q, want %q", recs[0].Kind, journal.KindOpen)
	}
	var open openRecord
	if err := recs[0].Decode(&open); err != nil {
		return nil, err
	}
	sess, err := newSession(id, open.Seq, open.Spec, s.pool)
	if err != nil {
		return nil, fmt.Errorf("rebuilding from journaled spec: %w", err)
	}
	sess.attach(s)

	// Re-feed the event stream. An observe/topology record is acted on
	// when its decision record arrives: the writer appends both after a
	// successful solve, so an input record without a decision can only be
	// the torn trace of an append the client never saw acknowledged —
	// skipping it recovers the last acknowledged state. That matters twice
	// for deltas: a torn delta must not mutate the retained matrices
	// (applyDeltaLocked runs only on the decision), or every later epoch
	// would diverge from the state the client last had acknowledged.
	var (
		pendingObs   *observeRecord
		pendingDelta *deltaObserveRecord
		pendingTopo  *topologyRecord
	)
	for _, rec := range recs[1:] {
		switch rec.Kind {
		case journal.KindObserve:
			pendingObs, pendingDelta = &observeRecord{}, nil
			if err := rec.Decode(pendingObs); err != nil {
				return nil, err
			}
		case journal.KindObserveDelta:
			pendingDelta, pendingObs = &deltaObserveRecord{}, nil
			if err := rec.Decode(pendingDelta); err != nil {
				return nil, err
			}
		case journal.KindBaseline:
			var base baselineRecord
			if err := rec.Decode(&base); err != nil {
				return nil, err
			}
			if err := sess.validateObserve(ObserveRequest{Routing: base.Routing}); err != nil {
				return nil, fmt.Errorf("record %d: baseline: %w", rec.Seq, err)
			}
			sess.applyDenseLocked(base.Routing)
			sess.haveBase = true
		case journal.KindDecision:
			switch {
			case pendingObs != nil:
				req := ObserveRequest{Routing: pendingObs.Routing}
				if err := sess.validateObserve(req); err != nil {
					return nil, fmt.Errorf("record %d: %w", rec.Seq, err)
				}
				sess.applyDenseLocked(pendingObs.Routing)
			case pendingDelta != nil:
				req := ObserveRequest{Epoch: pendingDelta.Epoch, RoutingDelta: pendingDelta.Deltas}
				if err := sess.validateObserve(req); err != nil {
					return nil, fmt.Errorf("record %d: %w", rec.Seq, err)
				}
				if err := sess.applyDeltaLocked(pendingDelta.Epoch, pendingDelta.Deltas); err != nil {
					return nil, fmt.Errorf("record %d: %w", rec.Seq, err)
				}
			default:
				return nil, fmt.Errorf("record %d: decision without a preceding observation", rec.Seq)
			}
			resp, err := sess.planLocked(sess.routing)
			if err != nil {
				return nil, fmt.Errorf("record %d: replaying epoch: %w", rec.Seq, err)
			}
			sess.haveBase = true
			got, err := json.Marshal(decisionRecord{
				Epoch:       resp.Epoch,
				Boundary:    resp.Boundary,
				Observation: resp.Observation,
				Summary:     journalSummary(resp.Summary),
			})
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(got, rec.Payload) {
				return nil, fmt.Errorf("record %d: replayed decision diverges from journal (epoch %d)", rec.Seq, resp.Epoch)
			}
			pendingObs, pendingDelta = nil, nil
		case journal.KindTopology:
			pendingTopo = &topologyRecord{}
			if err := rec.Decode(pendingTopo); err != nil {
				return nil, err
			}
		case journal.KindTopologyDecision:
			if pendingTopo == nil {
				return nil, fmt.Errorf("record %d: topology decision without preceding events", rec.Seq)
			}
			resp, err := sess.applyTopologyLocked(pendingTopo.Events)
			if err != nil {
				return nil, fmt.Errorf("record %d: replaying topology update: %w", rec.Seq, err)
			}
			got, err := json.Marshal(topologyDecisionRecord{
				Decisions:             resp.Decisions,
				AvailableDevices:      resp.AvailableDevices,
				RecoveryChargeSeconds: resp.RecoveryChargeSeconds,
			})
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(got, rec.Payload) {
				return nil, fmt.Errorf("record %d: replayed recovery decision diverges from journal", rec.Seq)
			}
			pendingTopo = nil
		case journal.KindSnapshot:
			var snap snapshotRecord
			if err := rec.Decode(&snap); err != nil {
				return nil, err
			}
			if snap.Epochs != sess.info.Epochs {
				return nil, fmt.Errorf("record %d: snapshot at epoch %d but replay is at %d", rec.Seq, snap.Epochs, sess.info.Epochs)
			}
			if digest := fmt.Sprintf("%016x", sess.core.StateDigest()); digest != snap.Digest {
				return nil, fmt.Errorf("record %d: state digest %s diverges from snapshot %s", rec.Seq, digest, snap.Digest)
			}
		case journal.KindState:
			var st stateRecord
			if err := rec.Decode(&st); err != nil {
				return nil, err
			}
			if err := sess.core.RestoreState(st.State); err != nil {
				return nil, fmt.Errorf("record %d: restoring planner state: %w", rec.Seq, err)
			}
			if digest := fmt.Sprintf("%016x", sess.core.StateDigest()); digest != st.Digest {
				return nil, fmt.Errorf("record %d: restored state digest %s diverges from checkpoint %s", rec.Seq, digest, st.Digest)
			}
			sess.info.Epochs = st.Epochs
			sess.info.AvailableDevices = st.AvailableDevices
			sess.info.FaultEvents = st.FaultEvents
			// A state checkpoint alone carries no retained observation; a
			// KindBaseline record restores it when the compaction had one.
			sess.haveBase = false
		default:
			return nil, fmt.Errorf("record %d: unknown kind %q", rec.Seq, rec.Kind)
		}
	}
	// Journaling resumes only now: the replay loop above must never
	// re-append the records it is reading.
	sess.jw = w
	return sess, nil
}
