package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"laermoe/internal/model"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
	"laermoe/internal/training"
	sessionspec "laermoe/session"
)

// testClient wraps an httptest server with JSON helpers.
type testClient struct {
	t    *testing.T
	base string
	c    *http.Client
}

func newTestServer(t *testing.T, opts Options) (*Server, *testClient) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, &testClient{t: t, base: hs.URL, c: hs.Client()}
}

// do sends a JSON request and decodes a JSON response, asserting the
// status code.
func (tc *testClient) do(method, path string, body any, wantStatus int, out any) {
	tc.t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			tc.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, tc.base+path, rd)
	if err != nil {
		tc.t.Fatal(err)
	}
	resp, err := tc.c.Do(req)
	if err != nil {
		tc.t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		tc.t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		tc.t.Fatalf("%s %s: status %d, want %d (body %s)", method, path, resp.StatusCode, wantStatus, buf.String())
	}
	if out != nil {
		if err := json.Unmarshal(buf.Bytes(), out); err != nil {
			tc.t.Fatalf("%s %s: decoding %q: %v", method, path, buf.String(), err)
		}
	}
}

// quickSpec is a fast planning session on the paper's evaluation model:
// one micro-batch per iteration keeps the reference RunOnline cheap.
func quickSpec(policy string) SessionSpec {
	return SessionSpec{Spec: sessionspec.Spec{
		Policy:             policy,
		IterationsPerEpoch: 4,
		GlobalBatchTokens:  1 << 19,
		Seed:               7,
	}}
}

// refConfig is the training.OnlineConfig equivalent of quickSpec — the
// reference run the daemon's decisions must match byte for byte.
func refConfig(policy string, epochs int, drift trace.DriftModel) training.OnlineConfig {
	return training.OnlineConfig{
		Policy: training.ReplanPolicy(policy),
		Arch:   model.Mixtral8x7B,
		Topo:   topology.Default(),
		Epochs: epochs, IterationsPerEpoch: 4,
		Drift:             trace.DriftConfig{Model: drift},
		GlobalBatchTokens: 1 << 19,
		Seed:              7,
	}
}

// observationStream replays the online engine's trace process (via
// training.ObservationGenerator, the single source of its constants) and
// returns each epoch's first iteration's routing (the observation) as
// wire matrices.
func observationStream(t *testing.T, info SessionInfo, epochs, itersPerEpoch int, drift trace.DriftConfig) [][][][]int {
	t.Helper()
	gen, err := training.ObservationGenerator(trace.GeneratorConfig{
		Devices: info.Devices, Experts: info.Experts, Layers: info.Layers,
		TokensPerDevice: info.TokensPerDevice, TopK: info.TopK,
		Seed: info.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][][][]int, epochs)
	for e := 0; e < epochs; e++ {
		if e > 0 {
			if err := gen.ApplyDrift(drift); err != nil {
				t.Fatal(err)
			}
		}
		for it := 0; it < itersPerEpoch; it++ {
			routing := gen.Step()
			if it != 0 {
				continue
			}
			obs := make([][][]int, len(routing))
			for l, m := range routing {
				rows := make([][]int, m.N)
				for d := range rows {
					rows[d] = append([]int(nil), m.R[d]...)
				}
				obs[l] = rows
			}
			out[e] = obs
		}
	}
	return out
}

// TestDecisionsMatchRunOnline is the service's acceptance property: a
// session fed the observation stream of an online run returns, for every
// epoch, decisions byte-identical to the decisions training.RunOnline
// reports for that run — for every policy, including the predictive one
// whose forecasters accumulate state across requests.
func TestDecisionsMatchRunOnline(t *testing.T) {
	const epochs = 4
	drift := trace.DriftConfig{Model: trace.DriftMigration}
	for _, policy := range []string{"static", "scratch", "warm", "predictive"} {
		t.Run(policy, func(t *testing.T) {
			ref, err := training.RunOnline(refConfig(policy, epochs, drift.Model))
			if err != nil {
				t.Fatal(err)
			}
			_, tc := newTestServer(t, Options{})
			var info SessionInfo
			tc.do("POST", "/v1/sessions", quickSpec(policy), http.StatusCreated, &info)
			stream := observationStream(t, info, epochs, 4, drift)
			for e := 0; e < epochs; e++ {
				var resp ObserveResponse
				tc.do("POST", "/v1/sessions/"+info.ID+"/observe",
					ObserveRequest{Routing: stream[e]}, http.StatusOK, &resp)
				if resp.Epoch != e {
					t.Fatalf("epoch %d reported as %d", e, resp.Epoch)
				}
				assertSameJSON(t, fmt.Sprintf("epoch %d boundary", e), resp.Boundary, ref.Epochs[e].BoundaryDecisions)
				assertSameJSON(t, fmt.Sprintf("epoch %d observation", e), resp.Observation, ref.Epochs[e].ObservationDecisions)
				if resp.Summary.Migrations != ref.Epochs[e].Migrations {
					t.Fatalf("epoch %d: %d migrations, reference %d", e, resp.Summary.Migrations, ref.Epochs[e].Migrations)
				}
				if resp.Summary.MigrationTime != ref.Epochs[e].MigrationTime ||
					resp.Summary.BoundaryMigrationTime != ref.Epochs[e].BoundaryMigrationTime {
					t.Fatalf("epoch %d: migration time mismatch", e)
				}
				if resp.Summary.ForecastError != ref.Epochs[e].ForecastError ||
					resp.Summary.PredictedLayers != ref.Epochs[e].PredictedLayers ||
					resp.Summary.CorrectedLayers != ref.Epochs[e].CorrectedLayers {
					t.Fatalf("epoch %d: forecast summary mismatch", e)
				}
			}
			var after SessionInfo
			tc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &after)
			if after.Epochs != epochs {
				t.Fatalf("session served %d epochs, want %d", after.Epochs, epochs)
			}
		})
	}
}

func assertSameJSON(t *testing.T, what string, got, want any) {
	t.Helper()
	g, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	w, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(g, w) {
		t.Fatalf("%s: decisions differ from training.RunOnline\n got: %s\nwant: %s", what, g, w)
	}
}

// TestInferenceWorkloadSession: an inference-workload session resolves
// its workload and arrival shape through the registry, reports them in
// its info, and plans the routing decode-request traffic realizes like
// any other observation.
func TestInferenceWorkloadSession(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	spec := quickSpec("warm")
	spec.Workload = "inference"
	spec.GlobalBatchTokens = 0
	spec.ForceTokensPerDevice = 256
	var info SessionInfo
	tc.do("POST", "/v1/sessions", spec, http.StatusCreated, &info)
	if info.Workload != "inference" || info.Arrival != "diurnal" {
		t.Fatalf("session workload/arrival = %q/%q, want inference/diurnal", info.Workload, info.Arrival)
	}
	gen, err := trace.NewRequestGenerator(trace.RequestConfig{
		GeneratorConfig: trace.GeneratorConfig{
			Devices: info.Devices, Experts: info.Experts, Layers: info.Layers,
			TokensPerDevice: info.TokensPerDevice, TopK: info.TopK, Seed: info.Seed,
		},
		Arrival: trace.ArrivalShape(info.Arrival),
	})
	if err != nil {
		t.Fatal(err)
	}
	routing, batch := gen.Step()
	if batch.Requests() == 0 {
		t.Fatal("request generator produced no traffic")
	}
	obs := make([][][]int, len(routing))
	for l, m := range routing {
		obs[l] = m.R
	}
	var resp ObserveResponse
	tc.do("POST", "/v1/sessions/"+info.ID+"/observe", ObserveRequest{Routing: obs}, http.StatusOK, &resp)
	if len(resp.Observation) != info.Layers {
		t.Fatalf("got %d layer decisions, want %d", len(resp.Observation), info.Layers)
	}
	// A training session's info must not claim an arrival shape.
	var plain SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &plain)
	if plain.Workload != "training" || plain.Arrival != "" {
		t.Fatalf("training session workload/arrival = %q/%q", plain.Workload, plain.Arrival)
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var a, b SessionInfo
	tc.do("POST", "/v1/sessions", SessionSpec{}, http.StatusCreated, &a)
	tc.do("POST", "/v1/sessions", quickSpec("predictive"), http.StatusCreated, &b)
	if a.ID == b.ID {
		t.Fatalf("duplicate session id %s", a.ID)
	}
	if a.Policy != "warm" || a.Model != "mixtral-8x7b-e8k2" || a.Devices != 32 {
		t.Fatalf("default spec resolved to %+v", a)
	}
	if b.Predictor != "trend" {
		t.Fatalf("predictive session predictor %q, want trend", b.Predictor)
	}
	if a.TokensPerDevice <= 0 || a.Layers <= 0 || a.Experts <= 0 {
		t.Fatalf("session shape not reported: %+v", a)
	}

	var list struct {
		Sessions []SessionInfo `json:"sessions"`
	}
	tc.do("GET", "/v1/sessions", nil, http.StatusOK, &list)
	if len(list.Sessions) != 2 || list.Sessions[0].ID != a.ID || list.Sessions[1].ID != b.ID {
		t.Fatalf("listing %+v, want [%s %s] in open order", list.Sessions, a.ID, b.ID)
	}

	var got SessionInfo
	tc.do("GET", "/v1/sessions/"+a.ID, nil, http.StatusOK, &got)
	if got.ID != a.ID {
		t.Fatalf("got session %s, want %s", got.ID, a.ID)
	}
	tc.do("DELETE", "/v1/sessions/"+a.ID, nil, http.StatusOK, nil)
	tc.do("GET", "/v1/sessions/"+a.ID, nil, http.StatusNotFound, nil)
	tc.do("DELETE", "/v1/sessions/"+a.ID, nil, http.StatusNotFound, nil)
}

func TestOpenSessionValidation(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	// Each rejection must name the offending field (second column), so the
	// 400 tells the client what to fix, not just that something is wrong.
	cases := []struct {
		spec SessionSpec
		want string
	}{
		{SessionSpec{Spec: sessionspec.Spec{Model: "no-such-model"}}, "no-such-model"},
		{SessionSpec{Spec: sessionspec.Spec{Policy: "oracle"}}, "oracle"},
		{SessionSpec{Spec: sessionspec.Spec{Workload: "batch"}}, "batch"},
		{SessionSpec{Spec: sessionspec.Spec{Arrival: "tsunami"}}, "tsunami"},
		{SessionSpec{Spec: sessionspec.Spec{FaultSchedule: "1:fail:1"}}, "topology"},
		{SessionSpec{Spec: sessionspec.Spec{IterationsPerEpoch: 1}}, "iterations_per_epoch"},
		{SessionSpec{Spec: sessionspec.Spec{MigrationCostPerReplica: -1}}, "migration_cost_per_replica"},
		{SessionSpec{Spec: sessionspec.Spec{ConfidenceThreshold: -0.1}}, "confidence_threshold"},
		{SessionSpec{Nodes: -4}, "nodes"},
		{SessionSpec{GPUsPerNode: -2}, "gpus_per_node"},
		{SessionSpec{Spec: sessionspec.Spec{Policy: "predictive", Predictor: "crystal-ball"}}, "crystal-ball"},
	}
	for i, c := range cases {
		var eb errorBody
		tc.do("POST", "/v1/sessions", c.spec, http.StatusBadRequest, &eb)
		if !strings.Contains(eb.Error, c.want) {
			t.Fatalf("case %d: error %q does not name %q", i, eb.Error, c.want)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(tc.base+"/v1/sessions", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d, want 400", resp.StatusCode)
	}
}

func TestObserveValidation(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)

	good := observationStream(t, info, 1, 4, trace.DriftConfig{Model: trace.DriftNone})[0]

	tc.do("POST", "/v1/sessions/nope/observe", ObserveRequest{Routing: good}, http.StatusNotFound, nil)

	short := good[:info.Layers-1]
	tc.do("POST", "/v1/sessions/"+info.ID+"/observe", ObserveRequest{Routing: short}, http.StatusBadRequest, nil)

	badDevices := make([][][]int, info.Layers)
	copy(badDevices, good)
	badDevices[0] = good[0][:info.Devices-1]
	tc.do("POST", "/v1/sessions/"+info.ID+"/observe", ObserveRequest{Routing: badDevices}, http.StatusBadRequest, nil)

	badExperts := make([][][]int, info.Layers)
	copy(badExperts, good)
	row := append([]int(nil), good[0][0]...)
	badExperts[0] = append([][]int{row[:info.Experts-1]}, good[0][1:]...)
	tc.do("POST", "/v1/sessions/"+info.ID+"/observe", ObserveRequest{Routing: badExperts}, http.StatusBadRequest, nil)

	negative := make([][][]int, info.Layers)
	copy(negative, good)
	negRow := append([]int(nil), good[0][0]...)
	negRow[0] = -1
	negative[0] = append([][]int{negRow}, good[0][1:]...)
	tc.do("POST", "/v1/sessions/"+info.ID+"/observe", ObserveRequest{Routing: negative}, http.StatusBadRequest, nil)

	resp, err := http.Post(tc.base+"/v1/sessions/"+info.ID+"/observe", "application/json", strings.NewReader("]["))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed observation: status %d, want 400", resp.StatusCode)
	}

	// The failed attempts must not have advanced the session's epoch.
	var after SessionInfo
	tc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &after)
	if after.Epochs != 0 {
		t.Fatalf("failed observations advanced the session to epoch %d", after.Epochs)
	}
}

func TestSessionLimit(t *testing.T) {
	_, tc := newTestServer(t, Options{MaxSessions: 1})
	var info SessionInfo
	tc.do("POST", "/v1/sessions", SessionSpec{}, http.StatusCreated, &info)
	tc.do("POST", "/v1/sessions", SessionSpec{}, http.StatusTooManyRequests, nil)
	tc.do("DELETE", "/v1/sessions/"+info.ID, nil, http.StatusOK, nil)
	tc.do("POST", "/v1/sessions", SessionSpec{}, http.StatusCreated, nil)
}

func TestHealthzAndMetrics(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var health map[string]string
	tc.do("GET", "/healthz", nil, http.StatusOK, &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz %v", health)
	}

	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	stream := observationStream(t, info, 2, 4, trace.DriftConfig{Model: trace.DriftMigration})
	for _, obs := range stream {
		tc.do("POST", "/v1/sessions/"+info.ID+"/observe", ObserveRequest{Routing: obs}, http.StatusOK, nil)
	}

	resp, err := http.Get(tc.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, w := range []string{
		"laer_serve_sessions_active 1",
		"laer_serve_epochs_observed_total 2",
		"laer_serve_solve_latency_seconds{quantile=\"0.5\"}",
		"laer_serve_solve_latency_seconds{quantile=\"0.99\"}",
		"laer_serve_solve_latency_seconds_count 2",
		"laer_serve_replan_rate",
		"laer_serve_predicted_imbalance",
		"laer_serve_migrations_total",
		"laer_serve_layer_decisions_total",
	} {
		if !strings.Contains(text, w) {
			t.Fatalf("metrics missing %q in:\n%s", w, text)
		}
	}
	// The first epoch replans every layer away from static EP, so the
	// counters cannot be zero.
	if strings.Contains(text, "laer_serve_replans_total 0\n") ||
		strings.Contains(text, "laer_serve_migrations_total 0\n") {
		t.Fatalf("replan/migration counters stayed zero:\n%s", text)
	}
}

// TestConcurrentSessions streams several sessions at once through one
// daemon — under -race this is the data-race check for the shared worker
// pool and the metrics recorder — and then verifies that concurrency did
// not leak between sessions: a session planned alongside others returns
// the same decisions as one planned alone.
func TestConcurrentSessions(t *testing.T) {
	const epochs = 2
	drift := trace.DriftConfig{Model: trace.DriftMigration}

	_, ref := newTestServer(t, Options{})
	var refInfo SessionInfo
	ref.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &refInfo)
	stream := observationStream(t, refInfo, epochs, 4, drift)
	want := make([]ObserveResponse, epochs)
	for e := range stream {
		ref.do("POST", "/v1/sessions/"+refInfo.ID+"/observe", ObserveRequest{Routing: stream[e]}, http.StatusOK, &want[e])
	}

	_, tc := newTestServer(t, Options{Parallelism: 4})
	const owners = 4
	infos := make([]SessionInfo, owners)
	for i := range infos {
		tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &infos[i])
	}
	var wg sync.WaitGroup
	failures := make([]error, owners)
	for i := 0; i < owners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for e := 0; e < epochs; e++ {
				body, err := json.Marshal(ObserveRequest{Routing: stream[e]})
				if err != nil {
					failures[i] = err
					return
				}
				resp, err := http.Post(tc.base+"/v1/sessions/"+infos[i].ID+"/observe", "application/json", bytes.NewReader(body))
				if err != nil {
					failures[i] = err
					return
				}
				var got ObserveResponse
				err = json.NewDecoder(resp.Body).Decode(&got)
				resp.Body.Close()
				if err != nil {
					failures[i] = err
					return
				}
				g, _ := json.Marshal(got.Observation)
				w, _ := json.Marshal(want[e].Observation)
				if !bytes.Equal(g, w) {
					failures[i] = fmt.Errorf("session %s epoch %d: decisions differ under concurrency", infos[i].ID, e)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range failures {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestGracefulShutdown runs a real TCP daemon, serves one session, then
// drains it: in-flight work completes, new work is refused, the listener
// closes, and Shutdown returns cleanly.
func TestGracefulShutdown(t *testing.T) {
	s, err := New(Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()
	tc := &testClient{t: t, base: base, c: http.DefaultClient}
	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	obs := observationStream(t, info, 1, 4, trace.DriftConfig{Model: trace.DriftNone})[0]
	tc.do("POST", "/v1/sessions/"+info.ID+"/observe", ObserveRequest{Routing: obs}, http.StatusOK, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestDrainingRefusesNewWork exercises the handler-level draining path
// directly (the real-TCP test above closes the listener before a client
// could observe the 503s).
func TestDrainingRefusesNewWork(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	for _, req := range []*http.Request{
		httptest.NewRequest("GET", "/healthz", nil),
		httptest.NewRequest("POST", "/v1/sessions", strings.NewReader("{}")),
		httptest.NewRequest("POST", "/v1/sessions/s-1/observe", strings.NewReader("{}")),
	} {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s %s while draining: status %d, want 503", req.Method, req.URL.Path, rw.Code)
		}
	}
}

// TestFailedSessionRefusesObservations: a solve error leaves the planner
// state partially advanced, so the session must poison itself rather than
// serve diverging decisions on retry.
func TestFailedSessionRefusesObservations(t *testing.T) {
	sess, err := newSession("s-1", 1, SessionSpec{Spec: sessionspec.Spec{IterationsPerEpoch: 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.failed = errors.New("mid-fanout solve failure")
	if _, err := sess.observe(ObserveRequest{}); err == nil || !strings.Contains(err.Error(), "must be reopened") {
		t.Fatalf("poisoned session served an observation (err %v)", err)
	}
}

func TestRecorderRing(t *testing.T) {
	r := newRing(4)
	for i := 1; i <= 3; i++ {
		r.add(float64(i))
	}
	if got := r.values(); len(got) != 3 {
		t.Fatalf("partial ring has %d values", len(got))
	}
	for i := 4; i <= 9; i++ {
		r.add(float64(i))
	}
	got := r.values()
	if len(got) != 4 {
		t.Fatalf("full ring has %d values", len(got))
	}
	sum := 0.0
	for _, v := range got {
		sum += v
	}
	if sum != 6+7+8+9 {
		t.Fatalf("ring kept %v, want the last four samples", got)
	}
}
