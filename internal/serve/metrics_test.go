package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"laermoe/internal/training"
)

// metricLine finds a family's sample line in the exposition text.
func metricLine(t *testing.T, text, name string) string {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return line
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return ""
}

// TestSummaryCountersAreMonotone pins the Prometheus-semantics fix: a
// summary's _sum/_count are counters, so they must keep growing after the
// quantile window wraps. Before the fix they were computed from the
// 512-sample window and fell back to 512 forever — which breaks rate()
// and violates the exposition contract.
func TestSummaryCountersAreMonotone(t *testing.T) {
	m := newRecorder()
	const total = latencyWindow + 88
	resp := &ObserveResponse{
		Observation:  make([]training.LayerDecision, 1),
		SolveSeconds: 0.001,
	}
	resp.Summary.MeanPredictedImbalance = 1.5
	for i := 0; i < total; i++ {
		m.observeServed(resp, 1000, i%2 == 0)
	}
	var buf bytes.Buffer
	m.write(&buf)
	text := buf.String()

	if got, want := metricLine(t, text, "laer_serve_solve_latency_seconds_count"),
		fmt.Sprintf("laer_serve_solve_latency_seconds_count %d", total); got != want {
		t.Fatalf("solve latency count wrapped with the window: %q, want %q", got, want)
	}
	if got, want := metricLine(t, text, "laer_serve_predicted_imbalance_window_count"),
		fmt.Sprintf("laer_serve_predicted_imbalance_window_count %d", total); got != want {
		t.Fatalf("imbalance count wrapped with the window: %q, want %q", got, want)
	}
	sumLine := metricLine(t, text, "laer_serve_solve_latency_seconds_sum")
	var sum float64
	if _, err := fmt.Sscanf(sumLine, "laer_serve_solve_latency_seconds_sum %g", &sum); err != nil {
		t.Fatal(err)
	}
	if want := 0.001 * total; sum < want*0.999 || sum > want*1.001 {
		t.Fatalf("solve latency sum %g, want ~%g (lifetime, not window)", sum, want)
	}
	// The ingest-form split and the payload accounting add up to the epoch
	// count and the bytes fed in.
	if got, want := metricLine(t, text, "laer_serve_observe_payload_bytes_total"),
		fmt.Sprintf("laer_serve_observe_payload_bytes_total %d", total*1000); got != want {
		t.Fatalf("payload bytes: %q, want %q", got, want)
	}
	if got, want := metricLine(t, text, "laer_serve_observes_delta_total"),
		fmt.Sprintf("laer_serve_observes_delta_total %d", (total+1)/2); got != want {
		t.Fatalf("delta observes: %q, want %q", got, want)
	}
	if got, want := metricLine(t, text, "laer_serve_observes_dense_total"),
		fmt.Sprintf("laer_serve_observes_dense_total %d", total/2); got != want {
		t.Fatalf("dense observes: %q, want %q", got, want)
	}

	// And recovery latency, via the topology path.
	tresp := &TopologyUpdateResponse{RecoverySeconds: 0.002}
	for i := 0; i < total; i++ {
		m.topologyServed(tresp, 1)
	}
	buf.Reset()
	m.write(&buf)
	if got, want := metricLine(t, buf.String(), "laer_serve_recovery_latency_seconds_count"),
		fmt.Sprintf("laer_serve_recovery_latency_seconds_count %d", total); got != want {
		t.Fatalf("recovery latency count wrapped with the window: %q, want %q", got, want)
	}
}

// TestMetricsSchemaStable: every family — including the stream and
// journal ones added with durable sessions — is present from the first
// scrape, so dashboards never see a hole.
func TestMetricsSchemaStable(t *testing.T) {
	m := newRecorder()
	var buf bytes.Buffer
	m.write(&buf)
	text := buf.String()
	for _, name := range []string{
		"laer_serve_sessions_active",
		"laer_serve_sessions_opened_total",
		"laer_serve_streams_active",
		"laer_serve_streams_opened_total",
		"laer_serve_stream_events_total",
		"laer_serve_streams_dropped_total",
		"laer_serve_observe_payload_bytes_total",
		"laer_serve_observes_dense_total",
		"laer_serve_observes_delta_total",
		"laer_serve_observe_delta_resyncs_total",
		"laer_serve_sessions_replayed_total",
		"laer_serve_journal_replay_failures_total",
		"laer_serve_journal_errors_total",
		"laer_serve_journal_replay_seconds",
		"laer_serve_solve_latency_seconds_sum",
		"laer_serve_solve_latency_seconds_count",
		"laer_serve_recovery_latency_seconds_sum",
		"laer_serve_predicted_imbalance_window_sum",
	} {
		metricLine(t, text, name)
	}
	// Quantiles are windowed (and say so), sums are lifetime: the HELP
	// text documents the split so scraper authors don't have to read Go.
	if !strings.Contains(text, "sum/count lifetime-cumulative") {
		t.Fatal("HELP text does not document the windowed-quantile/lifetime-sum split")
	}
}
