// Package serve is the laer-serve planning daemon: a long-running
// HTTP/JSON service wrapping the online re-layout decision core
// (training.OnlinePlanner) behind concurrent client sessions.
//
// A client opens a session (cluster shape, policy, drift-tracking
// configuration), then POSTs one observation per training epoch — the
// per-layer expert-load routing matrices its first iteration realized —
// and receives the re-layout decision: keep, warm replan, scratch replan
// or predictive replan per layer, with the migration cost and the
// predicted imbalance of the layout left in force. Each session owns its
// per-layer warm-start solvers (with their scratch arenas) and load
// forecasters, so steady-state request handling is allocation-free on the
// solve path; sessions fan their per-layer solves across one shared
// par.Pool so concurrent sessions never oversubscribe the machine.
//
// Because sessions run the same decision core as training.RunOnline, a
// session fed the observation stream of an online run returns decisions
// byte-identical to that run's report — examples/serve replays exactly
// that equivalence against a live daemon.
//
// Sessions are elastic: POST /v1/sessions/{id}/topology applies node
// loss/join and degradation events (faults.Event) to a live session and
// returns the forced re-layout decision — byte-identical to what
// training.RunOnline records for the same events, for the same reason.
// With Options.SessionTTL set, sessions idle past the TTL are evicted and
// subsequent requests against them return 404.
//
// Sessions are durable: with Options.JournalDir set, every session is
// event-sourced to an append-only journal (see internal/journal and this
// package's journal.go) and a restarted daemon replays each journal back
// to byte-identical planner state, verifying the journaled decisions as
// it goes. Decisions can also be streamed: GET /v1/sessions/{id}/stream
// is a Server-Sent Events feed of every decision in planning order (see
// stream.go).
//
//	POST   /v1/sessions               open a session (SessionSpec -> SessionInfo)
//	GET    /v1/sessions               list open sessions
//	GET    /v1/sessions/{id}          inspect one session
//	DELETE /v1/sessions/{id}          close a session
//	POST   /v1/sessions/{id}/observe  plan one epoch (ObserveRequest -> ObserveResponse)
//	POST   /v1/sessions/{id}/topology apply fault events (TopologyUpdateRequest -> TopologyUpdateResponse)
//	GET    /v1/sessions/{id}/stream   SSE feed of the session's decisions
//	GET    /healthz                   liveness (503 while draining)
//	GET    /metrics                   Prometheus text metrics
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"laermoe/internal/journal"
	"laermoe/internal/par"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address (default "127.0.0.1:8080"; use port 0
	// for an ephemeral port, reported by Addr after Start).
	Addr string

	// Parallelism bounds the worker pool shared by every session's
	// per-layer solves: 0 uses all CPUs.
	Parallelism int

	// MaxSessions caps concurrently open sessions (default 64); opening
	// beyond the cap returns 429.
	MaxSessions int

	// MaxBodyBytes caps request bodies (default 64 MiB — a 64-layer
	// observation for the large-E synthetic shapes fits comfortably).
	MaxBodyBytes int64

	// SessionTTL evicts sessions idle for longer than this duration —
	// their solver arenas and forecaster state are the daemon's dominant
	// memory, and an abandoned client must not pin them forever. Requests
	// against an evicted session return 404, exactly like a closed one.
	// 0 (the default) disables eviction.
	SessionTTL time.Duration

	// JournalDir enables durable sessions: every session's events and
	// decisions are journaled there and replayed on the next boot (empty
	// disables journaling). FsyncInterval is the journal's group-commit
	// cadence (0 = journal.DefaultFsyncInterval, negative = fsync every
	// append). SnapshotEvery is the planner-state checkpoint cadence in
	// epochs (default 16).
	JournalDir    string
	FsyncInterval time.Duration
	SnapshotEvery int

	// StreamBuffer bounds each SSE subscriber's event queue (default 32);
	// a consumer that falls that far behind is disconnected rather than
	// allowed to slow planning. StreamHeartbeat is the idle-connection
	// keepalive cadence (default 15s).
	StreamBuffer    int
	StreamHeartbeat time.Duration

	// Log receives operational messages (nil logs nothing).
	Log *log.Logger
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:8080"
	}
	if o.MaxSessions == 0 {
		o.MaxSessions = 64
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 64 << 20
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 16
	}
	if o.StreamBuffer == 0 {
		o.StreamBuffer = 32
	}
	if o.StreamHeartbeat == 0 {
		o.StreamHeartbeat = 15 * time.Second
	}
	return o
}

// Server is the planning daemon. Build with New, run with Start (or mount
// Handler in a test server), stop with Shutdown.
type Server struct {
	opts    Options
	pool    *par.Pool
	metrics *recorder
	store   *journal.Store // nil when journaling is off

	mu       sync.Mutex
	sessions map[string]*session
	seq      uint64

	draining atomic.Bool
	solves   sync.WaitGroup // in-flight planning solves, drained on shutdown

	janitorStop chan struct{}
	janitorOnce sync.Once

	// streamStop ends every open SSE stream at shutdown — they would
	// otherwise hold connections open and wedge the HTTP drain.
	streamStop chan struct{}
	streamOnce sync.Once

	hs *http.Server
	ln net.Listener
}

// New builds a server (not yet listening). With JournalDir set it opens
// the journal store and replays every journaled session before returning,
// so the server is consistent the moment it starts accepting requests.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:       opts,
		pool:       par.NewPool(opts.Parallelism),
		metrics:    newRecorder(),
		sessions:   make(map[string]*session),
		streamStop: make(chan struct{}),
	}
	if opts.JournalDir != "" {
		st, err := journal.Open(journal.Options{Dir: opts.JournalDir, FsyncInterval: opts.FsyncInterval})
		if err != nil {
			return nil, err
		}
		s.store = st
		if err := s.replayJournal(); err != nil {
			st.Close()
			return nil, fmt.Errorf("serve: replaying journal: %w", err)
		}
	}
	s.hs = &http.Server{Handler: s.Handler()}
	// The eviction loop starts with the server object, not the listener,
	// so TTLs work for handlers mounted under a test server too; Shutdown
	// stops it.
	s.startJanitor()
	return s, nil
}

// Handler returns the service's HTTP handler (also usable under
// httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/sessions", s.handleOpenSession)
	mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleCloseSession)
	mux.HandleFunc("POST /v1/sessions/{id}/observe", s.handleObserve)
	mux.HandleFunc("POST /v1/sessions/{id}/topology", s.handleTopology)
	mux.HandleFunc("GET /v1/sessions/{id}/stream", s.handleStream)
	return mux
}

// startJanitor launches the idle-session eviction loop (no-op without a
// SessionTTL). It scans at a quarter of the TTL so an idle session is
// evicted within ~1.25 TTLs of its last request.
func (s *Server) startJanitor() {
	if s.opts.SessionTTL <= 0 {
		return
	}
	s.janitorStop = make(chan struct{})
	interval := s.opts.SessionTTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.janitorStop:
				return
			case <-t.C:
				s.evictIdle(time.Now())
			}
		}
	}()
}

func (s *Server) stopJanitor() {
	if s.janitorStop != nil {
		s.janitorOnce.Do(func() { close(s.janitorStop) })
	}
}

// evictIdle removes every session idle past the TTL. The idle check is
// lock-free (an atomic clock on each session), so a slow solve holding a
// session's mutex cannot stall the scan; the delete re-checks membership,
// racing DELETE handlers safely.
func (s *Server) evictIdle(now time.Time) {
	s.mu.Lock()
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	for _, sess := range open {
		idle := sess.idleSince(now)
		if idle <= s.opts.SessionTTL {
			continue
		}
		s.mu.Lock()
		cur, ok := s.sessions[sess.id]
		if ok && cur == sess {
			delete(s.sessions, sess.id)
		} else {
			ok = false
		}
		s.mu.Unlock()
		if ok {
			s.dropSession(sess, "evicted")
			s.metrics.sessionEvicted()
			s.logf("session %s evicted after %s idle", sess.id, idle.Round(time.Millisecond))
		}
	}
}

// dropSession tears down a session removed from the table: its SSE
// subscribers learn why, and its journal is deleted — a closed or evicted
// session must not resurrect on the next boot.
func (s *Server) dropSession(sess *session, reason string) {
	sess.closeSubscribers(reason)
	if s.store != nil {
		if err := s.store.Remove(sess.id); err != nil {
			s.metrics.journalError()
			s.logf("session %s: removing journal: %v", sess.id, err)
		}
	}
}

// Start binds the listen address and serves in a background goroutine.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.logf("listening on %s", ln.Addr())
	go func() {
		if err := s.hs.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.logf("serve error: %v", err)
		}
	}()
	return nil
}

// Addr returns the bound listen address (empty before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains the daemon: new sessions and observations are refused
// (healthz reports draining), open SSE streams are ended, in-flight
// solves and HTTP requests complete, the journal store syncs and closes,
// then the listener closes. The context bounds the drain — a solve that
// outlives it is abandoned rather than hanging the shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.stopJanitor()
	// SSE handlers hold their connections open indefinitely; end them
	// before the HTTP drain or hs.Shutdown would wait on them forever.
	s.streamOnce.Do(func() { close(s.streamStop) })
	err := s.hs.Shutdown(ctx)
	// Belt and braces: hs.Shutdown already waits for in-flight requests,
	// and every solve runs inside one, so this normally returns at once —
	// but it pins the invariant the CI smoke asserts (no solve survives a
	// clean shutdown), bounded by the same deadline as the HTTP drain.
	done := make(chan struct{})
	go func() {
		s.solves.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	if s.store != nil {
		// After the drain no handler appends; Close syncs every journal,
		// making everything acknowledged durable.
		if cerr := s.store.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.logf("drained: %d sessions open at shutdown", s.sessionCount())
	return err
}

func (s *Server) sessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, args...)
	}
}

// --- handlers ---

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.write(w)
}

func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var spec SessionSpec
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding session spec: %v", err)
		return
	}
	s.mu.Lock()
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "session limit reached (%d open)", s.opts.MaxSessions)
		return
	}
	s.seq++
	seq := s.seq
	id := fmt.Sprintf("s-%d", seq)
	s.mu.Unlock()

	// Building the planning core (memory fit, per-layer solvers) runs
	// outside the server lock: a heavyweight spec must not block the
	// other sessions' requests. The cap is re-checked at insert time —
	// the early check is only a fast path, so concurrent opens cannot
	// overshoot MaxSessions, and a drain that started meanwhile wins.
	sess, err := newSession(id, seq, spec, s.pool)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sess.attach(s)
	// The journal opens before the session is visible, so no observe can
	// land ahead of the open record. A journal failure degrades the
	// session to non-durable instead of refusing it.
	if s.store != nil {
		if jw, jerr := s.store.Create(id); jerr != nil {
			s.metrics.journalError()
			s.logf("session %s: creating journal: %v (session will not be durable)", id, jerr)
		} else {
			sess.mu.Lock()
			sess.jw = jw
			sess.journalLocked(journal.KindOpen, openRecord{Seq: seq, Spec: spec})
			sess.mu.Unlock()
		}
	}
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		s.dropSession(sess, "closed")
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		s.dropSession(sess, "closed")
		writeError(w, http.StatusTooManyRequests, "session limit reached (%d open)", s.opts.MaxSessions)
		return
	}
	s.sessions[id] = sess
	s.mu.Unlock()
	s.metrics.sessionOpened()
	s.logf("session %s opened: %s policy=%s %dx%d", id, sess.info.Model, sess.info.Policy, sess.info.Layers, sess.info.Experts)
	writeJSON(w, http.StatusCreated, sess.snapshot())
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()
	sort.Slice(open, func(i, j int) bool { return open[i].seq < open[j].seq })
	infos := make([]SessionInfo, len(open))
	for i, sess := range open {
		infos[i] = sess.snapshot()
	}
	writeJSON(w, http.StatusOK, map[string][]SessionInfo{"sessions": infos})
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return nil, false
	}
	return sess, true
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	sess.touch()
	writeJSON(w, http.StatusOK, sess.snapshot())
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	s.dropSession(sess, "closed")
	s.metrics.sessionClosed()
	s.logf("session %s closed after %d epochs", id, sess.snapshot().Epochs)
	writeJSON(w, http.StatusOK, map[string]string{"closed": id})
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	sess.touch()
	var req ObserveRequest
	// The counting reader sits inside the byte cap so the payload-bytes
	// metric reports what the decoder actually consumed — the wire cost a
	// delta client is saving. Decode and structural validation both run
	// before the session mutex: another request's solve never serializes a
	// herd's JSON parsing behind it.
	body := &countingReader{r: http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)}
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding observation: %v", err)
		return
	}
	if err := sess.validateObserve(req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.solves.Add(1)
	resp, err := func() (*ObserveResponse, error) {
		// Done must run even if the request goroutine panics (net/http
		// recovers handler panics per connection; panics on the shared
		// pool's helpers are recovered by Pool.ForEach and surface as
		// errors here); a leaked Add would wedge every future Shutdown.
		defer s.solves.Done()
		return sess.observe(req)
	}()
	if err != nil {
		switch {
		case errors.Is(err, errDeltaResync):
			// Not a failure: the delta could not be sequenced (first
			// observe, epoch gap, or a topology change invalidated the
			// base). 409 tells the client to repost dense.
			s.metrics.deltaResynced()
			writeError(w, http.StatusConflict, "%v", err)
		case errors.As(err, &clientError{}):
			writeError(w, http.StatusBadRequest, "%v", err)
		default:
			// The observation passed validation, so a solve failure is ours.
			writeError(w, http.StatusInternalServerError, "planning epoch: %v", err)
		}
		return
	}
	s.metrics.observeServed(resp, body.n, req.RoutingDelta != nil)
	writeJSON(w, http.StatusOK, resp)
}

// countingReader counts the bytes a decoder pulls through it, feeding the
// observe payload-bytes metric.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	sess.touch()
	var req TopologyUpdateRequest
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding topology update: %v", err)
		return
	}
	s.solves.Add(1)
	resp, err, clientErr := func() (*TopologyUpdateResponse, error, bool) {
		defer s.solves.Done()
		return sess.applyTopology(req)
	}()
	if err != nil {
		if clientErr {
			writeError(w, http.StatusBadRequest, "%v", err)
		} else {
			writeError(w, http.StatusInternalServerError, "applying topology update: %v", err)
		}
		return
	}
	s.metrics.topologyServed(resp, len(req.Events))
	s.logf("session %s topology update: %d events, %d/%d devices available",
		sess.id, len(req.Events), resp.AvailableDevices, sess.snapshot().Devices)
	writeJSON(w, http.StatusOK, resp)
}

// ListenAndServe runs a server until ctx is cancelled, then drains it
// within drainTimeout. It is the implementation behind laermoe.Serve and
// cmd/laer-serve; onReady (optional) receives the bound address.
func ListenAndServe(ctx context.Context, opts Options, drainTimeout time.Duration, onReady func(addr string)) error {
	s, err := New(opts)
	if err != nil {
		return err
	}
	if err := s.Start(); err != nil {
		return err
	}
	if onReady != nil {
		onReady(s.Addr())
	}
	<-ctx.Done()
	if drainTimeout <= 0 {
		drainTimeout = 10 * time.Second
	}
	shctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return s.Shutdown(shctx)
}
