package serve

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"laermoe/internal/faults"
	"laermoe/internal/model"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
	"laermoe/internal/training"
)

// TestTopologyUpdateMatchesRunOnline is the elastic acceptance property:
// a session hit with the same fault events at the same point in the same
// observation stream returns recovery decisions byte-identical to the
// FaultDecisions training.RunOnline records for that fault schedule.
func TestTopologyUpdateMatchesRunOnline(t *testing.T) {
	const epochs = 4
	const faultEpoch = 2
	drift := trace.DriftConfig{Model: trace.DriftMigration}
	for _, policy := range []string{"warm", "static"} {
		t.Run(policy, func(t *testing.T) {
			refCfg := refConfig(policy, epochs, drift.Model)
			sched, err := faults.Parse(fmt.Sprintf("%d:fail:1", faultEpoch))
			if err != nil {
				t.Fatal(err)
			}
			refCfg.Faults = sched
			ref, err := training.RunOnline(refCfg)
			if err != nil {
				t.Fatal(err)
			}

			_, tc := newTestServer(t, Options{})
			var info SessionInfo
			tc.do("POST", "/v1/sessions", quickSpec(policy), http.StatusCreated, &info)
			stream := observationStream(t, info, epochs, 4, drift)
			// The client mirrors the engine's data-loader resharding: after
			// the fault its observations come from survivors only.
			clientTopo := topology.New(4, 8)
			for e := 0; e < epochs; e++ {
				if e == faultEpoch {
					var tresp TopologyUpdateResponse
					tc.do("POST", "/v1/sessions/"+info.ID+"/topology",
						TopologyUpdateRequest{Events: []faults.Event{{Kind: faults.NodeFail, Node: 1}}},
						http.StatusOK, &tresp)
					assertSameJSON(t, "fault decisions", tresp.Decisions, ref.Epochs[faultEpoch].FaultDecisions)
					if tresp.AvailableDevices != 24 {
						t.Fatalf("post-fault available devices = %d, want 24", tresp.AvailableDevices)
					}
					if tresp.RecoveryChargeSeconds != ref.Epochs[faultEpoch].RestoreTime {
						t.Fatalf("recovery charge %.6f, reference restore time %.6f",
							tresp.RecoveryChargeSeconds, ref.Epochs[faultEpoch].RestoreTime)
					}
					if err := clientTopo.RemoveNode(1); err != nil {
						t.Fatal(err)
					}
				}
				obs := stream[e]
				if clientTopo.NumAvailable() != clientTopo.N() {
					obs = foldObservation(obs, clientTopo)
				}
				var resp ObserveResponse
				tc.do("POST", "/v1/sessions/"+info.ID+"/observe",
					ObserveRequest{Routing: obs}, http.StatusOK, &resp)
				assertSameJSON(t, fmt.Sprintf("epoch %d boundary", e), resp.Boundary, ref.Epochs[e].BoundaryDecisions)
				assertSameJSON(t, fmt.Sprintf("epoch %d observation", e), resp.Observation, ref.Epochs[e].ObservationDecisions)
				if e == faultEpoch {
					if resp.Summary.FaultEvents != 1 {
						t.Fatalf("fault epoch summary reports %d events", resp.Summary.FaultEvents)
					}
					if resp.Summary.Restored != ref.Epochs[e].Restored ||
						resp.Summary.RestoreTime != ref.Epochs[e].RestoreTime {
						t.Fatalf("fault epoch restore accounting mismatch")
					}
				} else if resp.Summary.FaultEvents != 0 || resp.Summary.Restored != 0 {
					t.Fatalf("fault-free epoch %d carries fault accounting", e)
				}
			}
			var after SessionInfo
			tc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &after)
			if after.AvailableDevices != 24 || after.FaultEvents != 1 {
				t.Fatalf("session info after fault: %+v", after)
			}
		})
	}
}

// foldObservation applies training.FoldLostRows to wire-format matrices.
func foldObservation(obs [][][]int, topo *topology.Topology) [][][]int {
	out := make([][][]int, len(obs))
	for l, rows := range obs {
		m := trace.NewRoutingMatrix(len(rows), len(rows[0]))
		for d, row := range rows {
			copy(m.R[d], row)
		}
		training.FoldLostRows(m, topo)
		folded := make([][]int, m.N)
		for d := range folded {
			folded[d] = append([]int(nil), m.R[d]...)
		}
		out[l] = folded
	}
	return out
}

// TestTopologyUpdateValidation: bad updates are 400s and leave the
// session untouched; updates against unknown sessions are 404s.
func TestTopologyUpdateValidation(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)

	var e errorBody
	tc.do("POST", "/v1/sessions/nope/topology",
		TopologyUpdateRequest{Events: []faults.Event{{Kind: faults.NodeFail, Node: 1}}},
		http.StatusNotFound, &e)
	tc.do("POST", "/v1/sessions/"+info.ID+"/topology", TopologyUpdateRequest{}, http.StatusBadRequest, &e)
	for _, bad := range [][]faults.Event{
		{{Kind: "explode", Node: 1}},                       // unknown kind
		{{Kind: faults.NodeFail, Node: 99}},                // out of range
		{{Kind: faults.NodeJoin, Node: 1}},                 // joining an alive node
		{{Kind: faults.Degrade, Device: 3, Class: "warp"}}, // unknown class
		{
			{Kind: faults.NodeFail, Node: 0}, {Kind: faults.NodeFail, Node: 1},
			{Kind: faults.NodeFail, Node: 2}, {Kind: faults.NodeFail, Node: 3},
		}, // would kill the whole cluster
	} {
		tc.do("POST", "/v1/sessions/"+info.ID+"/topology",
			TopologyUpdateRequest{Events: bad}, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Fatalf("bad update %v returned no error body", bad)
		}
	}
	// The failed validations (including the partially valid kill-all
	// batch) must not have mutated the session.
	var after SessionInfo
	tc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &after)
	if after.AvailableDevices != after.Devices || after.FaultEvents != 0 {
		t.Fatalf("failed updates mutated the session: %+v", after)
	}
	// And the session still plans.
	stream := observationStream(t, info, 1, 4, trace.DriftConfig{Model: trace.DriftStabilizing})
	var resp ObserveResponse
	tc.do("POST", "/v1/sessions/"+info.ID+"/observe", ObserveRequest{Routing: stream[0]}, http.StatusOK, &resp)
}

// TestTopologyMetrics: fault handling surfaces on /metrics.
func TestTopologyMetrics(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	var tresp TopologyUpdateResponse
	tc.do("POST", "/v1/sessions/"+info.ID+"/topology",
		TopologyUpdateRequest{Events: []faults.Event{{Kind: faults.NodeFail, Node: 2}}},
		http.StatusOK, &tresp)

	body := fetchMetrics(t, tc)
	for _, want := range []string{
		"laer_serve_topology_updates_total 1",
		"laer_serve_fault_events_total 1",
		"laer_serve_replicas_restored_total",
		"laer_serve_recovery_latency_seconds_count 1",
		"laer_serve_sessions_evicted_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSessionTTLEviction: idle sessions are evicted, return 404, and are
// counted on /metrics; active sessions survive.
func TestSessionTTLEviction(t *testing.T) {
	srv, tc := newTestServer(t, Options{SessionTTL: 80 * time.Millisecond})
	t.Cleanup(srv.stopJanitor)
	var idle, busy SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &idle)
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &busy)

	deadline := time.Now().Add(5 * time.Second)
	evicted := false
	for time.Now().Before(deadline) {
		// Keep the busy session warm at a fraction of the TTL while the
		// idle one ages out untouched (a GET resets the idle clock, so the
		// idle session is probed only once per outer round).
		for i := 0; i < 8; i++ {
			tc.do("GET", "/v1/sessions/"+busy.ID, nil, http.StatusOK, nil)
			time.Sleep(20 * time.Millisecond)
		}
		req, _ := http.NewRequest("GET", tc.base+"/v1/sessions/"+idle.ID, nil)
		resp, err := tc.c.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			evicted = true
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if !evicted {
		t.Fatal("idle session never evicted")
	}
	tc.do("GET", "/v1/sessions/"+busy.ID, nil, http.StatusOK, nil)
	if !strings.Contains(fetchMetrics(t, tc), "laer_serve_sessions_evicted_total 1") {
		t.Error("eviction not counted on /metrics")
	}
}

// fetchMetrics returns the /metrics exposition body.
func fetchMetrics(t *testing.T, tc *testClient) string {
	t.Helper()
	resp, err := tc.c.Get(tc.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestTTLDisabledByDefault: without a SessionTTL no janitor runs and
// sessions live indefinitely.
func TestTTLDisabledByDefault(t *testing.T) {
	srv, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.janitorStop != nil {
		t.Fatal("janitor started without a TTL")
	}
}

// elastic reference sanity: the serve spec and training config agree on
// the model catalog entry used by the byte-identity tests.
func TestQuickSpecMatchesRefModel(t *testing.T) {
	if model.Mixtral8x7B.Name != "mixtral-8x7b-e8k2" {
		t.Fatalf("reference model renamed: %s", model.Mixtral8x7B.Name)
	}
}
