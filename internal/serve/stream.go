// SSE decision streaming: GET /v1/sessions/{id}/stream pushes every
// decision a session issues, in planning order, as Server-Sent Events.
//
// Events are published under the session mutex — the same lock that
// serializes planning — so a subscriber's event order is exactly the
// session's epoch order. Each subscriber owns a bounded channel; a
// consumer that falls behind it is disconnected (with a final "closed"
// event naming the reason) rather than allowed to backpressure the
// planning path, and the drop is counted in /metrics.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Event names pushed on the stream. Every event's data is the same JSON
// the corresponding REST response carries.
const (
	// eventSession is the stream hello: the session's current SessionInfo.
	eventSession = "session"
	// eventDecision carries one epoch's ObserveResponse.
	eventDecision = "decision"
	// eventTopology carries one TopologyUpdateResponse.
	eventTopology = "topology"
	// eventClosed is the stream's last word when the server ends it:
	// {"reason": "overflow" | "closed" | "evicted"}.
	eventClosed = "closed"
	// eventShutdown announces a draining daemon.
	eventShutdown = "shutdown"
)

// streamEvent is one marshaled SSE frame awaiting delivery.
type streamEvent struct {
	name string
	data []byte
}

// subscriber is one SSE consumer's send side. The channel is bounded;
// publishLocked never blocks on it.
type subscriber struct {
	ch       chan streamEvent
	quit     chan struct{}
	quitOnce sync.Once
	reason   string // set before quit closes; read only after <-quit
}

// stop ends the subscription once, recording why. Safe to call from the
// publisher (overflow) and the close/evict paths concurrently.
func (sub *subscriber) stop(reason string) {
	sub.quitOnce.Do(func() {
		sub.reason = reason
		close(sub.quit)
	})
}

// subscribe registers a new SSE consumer on the session.
func (s *session) subscribe(buffer int) *subscriber {
	sub := &subscriber{
		ch:   make(chan streamEvent, buffer),
		quit: make(chan struct{}),
	}
	s.subMu.Lock()
	if s.subs == nil {
		s.subs = make(map[*subscriber]struct{})
	}
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	return sub
}

func (s *session) unsubscribe(sub *subscriber) {
	s.subMu.Lock()
	delete(s.subs, sub)
	s.subMu.Unlock()
}

// publishLocked fans one event out to the session's subscribers. Caller
// holds s.mu, which is what makes delivery order planning order. The
// payload is marshaled once, not per subscriber. A subscriber whose
// buffer is full is dropped on the spot: the planning path never waits
// for a slow consumer.
func (s *session) publishLocked(name string, v any) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if len(s.subs) == 0 {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		if s.logf != nil {
			s.logf("session %s: marshaling %s event: %v", s.id, name, err)
		}
		return
	}
	delivered := 0
	for sub := range s.subs {
		select {
		case sub.ch <- streamEvent{name: name, data: data}:
			delivered++
		default:
			delete(s.subs, sub)
			sub.stop("overflow")
			if s.metrics != nil {
				s.metrics.streamDropped()
			}
			if s.logf != nil {
				s.logf("session %s: SSE subscriber dropped (buffer of %d full)", s.id, cap(sub.ch))
			}
		}
	}
	if delivered > 0 && s.metrics != nil {
		s.metrics.streamDelivered(delivered)
	}
}

// closeSubscribers ends every subscription with the given reason — the
// session close/evict path.
func (s *session) closeSubscribers(reason string) {
	s.subMu.Lock()
	for sub := range s.subs {
		sub.stop(reason)
		delete(s.subs, sub)
	}
	s.subMu.Unlock()
}

// writeSSE emits one SSE frame. Data is compact JSON (no newlines), so a
// single data: line suffices.
func writeSSE(w io.Writer, name string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
}

// handleStream serves GET /v1/sessions/{id}/stream: an SSE feed of the
// session's decisions. The stream opens with a "session" hello carrying
// the current SessionInfo, then one "decision" event per observed epoch
// and one "topology" event per topology update, in planning order.
// Comment-line heartbeats keep idle connections alive. The stream ends
// with a "closed" event when the session goes away (or this consumer
// fell behind), and a "shutdown" event when the daemon drains.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	sess, ok := s.lookup(w, r)
	if !ok {
		return
	}
	sess.touch()
	sub := sess.subscribe(s.opts.StreamBuffer)
	defer sess.unsubscribe(sub)
	s.metrics.streamOpened()
	defer s.metrics.streamClosed()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	hello, _ := json.Marshal(sess.snapshot())
	writeSSE(w, eventSession, hello)
	fl.Flush()

	heartbeat := time.NewTicker(s.opts.StreamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev := <-sub.ch:
			writeSSE(w, ev.name, ev.data)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-sub.quit:
			// Deliver what was already queued before announcing the end,
			// so a dropped-but-draining consumer still sees a prefix of
			// the decision sequence, never a gap.
			for {
				select {
				case ev := <-sub.ch:
					writeSSE(w, ev.name, ev.data)
					continue
				default:
				}
				break
			}
			writeSSE(w, eventClosed, []byte(fmt.Sprintf(`{"reason":%q}`, sub.reason)))
			fl.Flush()
			return
		case <-s.streamStop:
			writeSSE(w, eventShutdown, []byte(`{"reason":"draining"}`))
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}
