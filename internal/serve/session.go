package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"laermoe/internal/faults"
	"laermoe/internal/forecast"
	"laermoe/internal/journal"
	"laermoe/internal/model"
	"laermoe/internal/par"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
	"laermoe/internal/training"
	sessionspec "laermoe/session"
)

// SessionSpec is the body of POST /v1/sessions: the cluster shape, policy
// and drift-tracking configuration one planning session runs with. The
// policy/predictor/workload knobs are the shared session.Spec, embedded
// untagged so its JSON wire names carry over; the daemon adds only the
// cluster shape and the relocation-cost toggle. Zero values select the
// same defaults the online engine uses, so a spec of `{}` opens a
// warm-start training session on the paper's evaluation cluster.
type SessionSpec struct {
	sessionspec.Spec

	// Nodes and GPUsPerNode are the cluster shape (defaults 4 and 8).
	Nodes       int `json:"nodes,omitempty"`
	GPUsPerNode int `json:"gpus_per_node,omitempty"`

	// ChargeRelocation derives the optimizer-state relocation cost from
	// the model and cluster (ignored when MigrationCostPerReplica is set).
	ChargeRelocation bool `json:"charge_relocation,omitempty"`
}

func (s SessionSpec) withDefaults() SessionSpec {
	if s.Model == "" {
		s.Model = "mixtral-8x7b-e8k2"
	}
	if s.Nodes == 0 {
		s.Nodes = 4
	}
	if s.GPUsPerNode == 0 {
		s.GPUsPerNode = 8
	}
	if s.Policy == "" {
		s.Policy = string(training.ReplanWarm)
	}
	if s.Workload == "" {
		s.Workload = string(training.WorkloadTraining)
	}
	if s.Workload == string(training.WorkloadInference) && s.Arrival == "" {
		s.Arrival = string(trace.ArrivalDiurnal)
	}
	if s.IterationsPerEpoch == 0 {
		s.IterationsPerEpoch = 6
	}
	return s
}

// validate rejects specs the planner would misbehave on, naming the JSON
// field so the 400 tells the client what to fix. It runs on the spec as
// posted (before defaults), so a zero field is "use the default", never an
// error.
func (s SessionSpec) validate() error {
	if s.Nodes < 0 || s.GPUsPerNode < 0 {
		return fmt.Errorf("serve: nodes and gpus_per_node must be positive (got %d and %d)", s.Nodes, s.GPUsPerNode)
	}
	// Names resolve through the one policy/predictor/workload registry, so
	// the daemon accepts exactly what the engine accepts — a policy added
	// to the registry is servable with no change here.
	if s.Policy != "" {
		if _, err := training.ResolvePolicy(training.ReplanPolicy(s.Policy)); err != nil {
			return fmt.Errorf("serve: policy: %w", err)
		}
	}
	if s.Predictor != "" {
		if _, err := training.ResolvePredictor(forecast.Kind(s.Predictor)); err != nil {
			return fmt.Errorf("serve: predictor: %w", err)
		}
	}
	if s.Workload != "" {
		if _, err := training.ResolveWorkload(training.Workload(s.Workload)); err != nil {
			return fmt.Errorf("serve: workload: %w", err)
		}
	}
	if s.Arrival != "" {
		if err := trace.ArrivalShape(s.Arrival).Validate(); err != nil {
			return fmt.Errorf("serve: arrival: %w", err)
		}
	}
	if s.FaultSchedule != "" {
		return fmt.Errorf("serve: fault_schedule is an offline-run option; live sessions take topology changes via POST /v1/sessions/{id}/topology")
	}
	if s.IterationsPerEpoch != 0 && s.IterationsPerEpoch < 2 {
		return fmt.Errorf("serve: iterations_per_epoch must be at least 2 to amortize migrations (got %d)", s.IterationsPerEpoch)
	}
	if s.MigrationCostPerReplica < 0 {
		return fmt.Errorf("serve: migration_cost_per_replica must not be negative (got %g)", s.MigrationCostPerReplica)
	}
	if s.ConfidenceThreshold < 0 {
		return fmt.Errorf("serve: confidence_threshold must not be negative (got %g)", s.ConfidenceThreshold)
	}
	return nil
}

// SessionInfo describes an open session: the resolved shape a client needs
// to produce observations (one Devices x Experts matrix per layer) and the
// planning configuration in force.
type SessionInfo struct {
	ID        string `json:"id"`
	Model     string `json:"model"`
	Policy    string `json:"policy"`
	Workload  string `json:"workload"`
	Arrival   string `json:"arrival,omitempty"`
	Predictor string `json:"predictor,omitempty"`

	Devices         int `json:"devices"`
	Experts         int `json:"experts"`
	Layers          int `json:"layers"`
	TopK            int `json:"topk"`
	ExpertCapacity  int `json:"expert_capacity"`
	TokensPerDevice int `json:"tokens_per_device"`

	IterationsPerEpoch      int     `json:"iterations_per_epoch"`
	MigrationCostPerReplica float64 `json:"migration_cost_per_replica"`
	Seed                    int64   `json:"seed"`

	// Epochs counts the observations this session has planned so far.
	Epochs int `json:"epochs"`

	// AvailableDevices is the number of devices currently alive in the
	// session's topology (equals Devices until a topology update masks
	// some out), and FaultEvents the membership/degradation events the
	// session has absorbed.
	AvailableDevices int `json:"available_devices"`
	FaultEvents      int `json:"fault_events,omitempty"`
}

// ObserveRequest is the body of POST /v1/sessions/{id}/observe: one
// epoch's observed expert loads, in exactly one of two forms.
//
// Routing is the dense form: per-layer routing matrices,
// Routing[layer][device][expert] token counts — exactly what the online
// engine's observation iteration realizes.
//
// RoutingDelta is the sparse form: one trace.WireDelta per layer, the
// difference against the observation the session last planned. It is
// epoch-sequenced: Epoch must equal the session's planned-epoch count
// (i.e. the epoch index this observation is for, which is also the Epoch
// the previous ObserveResponse would imply). A gap — wrong Epoch, no
// prior observation, or any topology update since the last observe —
// makes the server refuse with 409 Conflict, and the client must fall
// back to a dense post before resuming deltas. The two forms are
// mutually exclusive; Epoch is ignored on dense posts.
type ObserveRequest struct {
	Routing      [][][]int          `json:"routing,omitempty"`
	Epoch        int                `json:"epoch,omitempty"`
	RoutingDelta []*trace.WireDelta `json:"routing_delta,omitempty"`
}

// ObserveResponse is the re-layout decision for one observed epoch. The
// decision lists are the same structs (and therefore the same JSON bytes)
// training.RunOnline reports for the same observation sequence.
type ObserveResponse struct {
	Session string `json:"session"`
	Epoch   int    `json:"epoch"`

	// Boundary holds the forecast-driven decisions taken before this
	// epoch's first iteration (predictive policy only), Observation the
	// per-layer reactive decisions planned from the posted loads.
	Boundary    []training.LayerDecision `json:"boundary"`
	Observation []training.LayerDecision `json:"observation"`

	// Summary aggregates the epoch across layers.
	Summary training.EpochSummary `json:"summary"`

	// SolveSeconds is the measured wall time of this request's planning
	// solves (informational; excluded from the journal, which must stay
	// byte-reproducible).
	SolveSeconds float64 `json:"solve_seconds"`
}

// TopologyUpdateRequest is the body of POST /v1/sessions/{id}/topology:
// membership/degradation events to apply to the session's cluster, in
// order. Each event is a faults.Event; its epoch/iteration fields are
// ignored — the update is effective immediately.
type TopologyUpdateRequest struct {
	Events []faults.Event `json:"events"`
}

// TopologyUpdateResponse reports the forced re-layout a topology update
// triggered. Decisions are the same structs (and therefore the same JSON
// bytes) training.RunOnline records as FaultDecisions for the same events
// against the same planning state.
type TopologyUpdateResponse struct {
	Session string `json:"session"`

	// Decisions is the per-layer recovery decision (elastic repair,
	// checkpoint restore, or keep).
	Decisions []training.LayerDecision `json:"decisions"`

	// AvailableDevices is the post-update live device count.
	AvailableDevices int `json:"available_devices"`

	// RecoveryChargeSeconds is the simulated wall time the recovery puts
	// on the training job's critical path (checkpoint reads plus any
	// migration charges), summed across layers; RecoverySeconds is the
	// measured latency of planning the recovery (informational; excluded
	// from the journal).
	RecoveryChargeSeconds float64 `json:"recovery_charge_seconds"`
	RecoverySeconds       float64 `json:"recovery_seconds"`
}

// session is one client's long-lived planning state: the decision core
// (per-layer warm-start solvers with their scratch arenas, the layouts in
// force, the forecasters) plus request bookkeeping. Requests against one
// session serialize on its mutex; distinct sessions plan concurrently,
// sharing the server's worker pool.
type session struct {
	// id, seq and spec are immutable after construction, readable without
	// the mutex (the TTL janitor depends on that). spec is the session
	// spec as the client posted it (pre-defaults): journal compaction
	// rewrites the opening record from it.
	id   string
	seq  uint64
	spec SessionSpec

	mu   sync.Mutex
	info SessionInfo
	core *training.OnlinePlanner

	// routing is the session's retained observation: one matrix per layer,
	// allocated on the first observe and reused for every later one —
	// dense posts copy into it, delta posts apply onto it, so the observe
	// path allocates no matrices in steady state. haveBase reports whether
	// it holds the observation the session last planned; topology updates
	// clear it (the cluster changed under the client, so the next
	// observation must be dense), as does a planner-state restore without
	// a journaled baseline. Guarded by mu.
	routing  []*trace.RoutingMatrix
	haveBase bool

	// lastActive is the time of the session's last client request (unix
	// nanoseconds), the idle-TTL eviction clock. It is atomic so the
	// janitor's scan never queues behind an in-flight solve holding mu —
	// with a mutex-guarded clock, one slow session stalls eviction of
	// every session behind it in the scan.
	lastActive atomic.Int64

	// jw is the session's journal writer (nil when journaling is off);
	// jerr latches the first append failure — the session keeps serving
	// but stops journaling, so a half-written journal never masquerades
	// as a complete one. store backs the compaction rewrites (nil when
	// journaling is off).
	jw        *journal.Writer
	jerr      bool
	snapEvery int
	store     *journal.Store

	// subs are the session's live SSE subscribers (see stream.go),
	// guarded by subMu — publishes happen under mu, subscribes don't.
	subMu sync.Mutex
	subs  map[*subscriber]struct{}

	metrics *recorder
	logf    func(format string, args ...any)

	// failed poisons the session after a solve error: a mid-fanout failure
	// leaves the planner state (layouts, predictors) partially advanced,
	// so replaying the observation would silently diverge from the
	// byte-identity contract. Every later observe refuses with this error.
	failed error
}

// newSession validates a spec and builds its planning core on the shared
// pool. The error is a client error (bad spec), suitable for a 400.
func newSession(id string, seq uint64, spec SessionSpec, pool *par.Pool) (*session, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	posted := spec
	spec = spec.withDefaults()
	arch, err := model.ByName(spec.Model)
	if err != nil {
		return nil, err
	}
	topo := topology.New(spec.Nodes, spec.GPUsPerNode)
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	migCost := spec.MigrationCostPerReplica
	if migCost == 0 && spec.ChargeRelocation {
		migCost = training.RelocationCostPerReplica(arch, topo)
	}
	core, err := training.NewOnlinePlanner(training.OnlineConfig{
		Policy:                  training.ReplanPolicy(spec.Policy),
		Workload:                training.Workload(spec.Workload),
		Arrival:                 trace.ArrivalShape(spec.Arrival),
		Arch:                    arch,
		Topo:                    topo,
		IterationsPerEpoch:      spec.IterationsPerEpoch,
		MigrationThreshold:      spec.MigrationThreshold,
		MigrationCostPerReplica: migCost,
		Predictor:               forecast.Kind(spec.Predictor),
		ConfidenceThreshold:     spec.ConfidenceThreshold,
		AuxLossWeight:           spec.AuxLossWeight,
		TraceSkew:               spec.DatasetSkew,
		ForceTokensPerDevice:    spec.ForceTokensPerDevice,
		GlobalBatchTokens:       spec.GlobalBatchTokens,
		Pool:                    pool,
		Seed:                    spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	info := SessionInfo{
		ID: id, Model: arch.Name, Policy: spec.Policy,
		Workload: spec.Workload, Arrival: spec.Arrival,
		Devices: core.Devices(), Experts: core.Experts(), Layers: core.Layers(),
		TopK: arch.TopK, ExpertCapacity: arch.ExpertCapacity,
		TokensPerDevice:         core.Setup().TokensPerDev,
		IterationsPerEpoch:      spec.IterationsPerEpoch,
		MigrationCostPerReplica: migCost,
		Seed:                    spec.Seed,
		AvailableDevices:        core.Devices(),
	}
	if pspec, perr := training.ResolvePolicy(training.ReplanPolicy(spec.Policy)); perr == nil && pspec.Predictive {
		info.Predictor = spec.Predictor
		if info.Predictor == "" {
			info.Predictor = "trend"
		}
	}
	sess := &session{id: id, seq: seq, spec: posted, info: info, core: core}
	sess.touch()
	return sess, nil
}

// attach wires a session to its server's metrics, logging and journal
// cadence. The journal writer itself is set separately — at open time by
// the handler, after replay by replaySession — so the replay loop never
// re-journals the records it is feeding.
func (s *session) attach(srv *Server) {
	s.metrics = srv.metrics
	s.logf = srv.logf
	s.snapEvery = srv.opts.SnapshotEvery
	s.store = srv.store
}

// journalLocked appends one record under the session mutex, so journal
// order is decision order. A failed append disables journaling for the
// rest of the session's life (jerr): the daemon keeps serving — losing
// durability is better than losing availability — but the failure is
// counted and logged, and the stale journal will fail replay verification
// rather than silently resurrect an old state.
func (s *session) journalLocked(kind journal.Kind, payload any) {
	if s.jw == nil || s.jerr {
		return
	}
	if err := s.jw.Append(kind, payload); err != nil {
		s.jerr = true
		if s.metrics != nil {
			s.metrics.journalError()
		}
		if s.logf != nil {
			s.logf("session %s: journal append failed, journaling disabled: %v", s.id, err)
		}
	}
}

// maybeSnapshotLocked compacts the journal every snapEvery epochs: the
// replayed history collapses to the opening record plus one full
// planner-state checkpoint (with its digest), so a long-lived session's
// journal is bounded by snapEvery epochs of records instead of growing
// with its lifetime. Replay restores from the checkpoint, re-derives the
// digest, and verifies it — so corruption, a restore-fidelity bug, or a
// code change that moved a decision trips at boot, loudly. A failed
// rewrite latches jerr: the old writer may point at a replaced file, and
// appending to it would silently drop records.
func (s *session) maybeSnapshotLocked() {
	if s.jw == nil || s.jerr || s.snapEvery <= 0 || s.info.Epochs%s.snapEvery != 0 {
		return
	}
	st, err := s.core.ExportState()
	if err == nil {
		recs := []journal.RewriteRecord{
			{Kind: journal.KindOpen, Payload: openRecord{Seq: s.seq, Spec: s.spec}},
			{Kind: journal.KindState, Payload: stateRecord{
				Epochs:           s.info.Epochs,
				Digest:           fmt.Sprintf("%016x", s.core.StateDigest()),
				AvailableDevices: s.info.AvailableDevices,
				FaultEvents:      s.info.FaultEvents,
				State:            st,
			}},
		}
		if s.haveBase {
			// The dense checkpoint of the retained observation: delta
			// records appended after this rewrite need matrices to apply
			// onto at replay. Rewrite marshals synchronously under s.mu, so
			// referencing the live rows is safe.
			rows := make([][][]int, len(s.routing))
			for l, m := range s.routing {
				rows[l] = m.R
			}
			recs = append(recs, journal.RewriteRecord{Kind: journal.KindBaseline, Payload: baselineRecord{Routing: rows}})
		}
		var jw *journal.Writer
		jw, err = s.store.Rewrite(s.id, recs)
		if err == nil {
			s.jw = jw
			if s.metrics != nil {
				s.metrics.journalCompacted()
			}
			return
		}
	}
	s.jerr = true
	if s.metrics != nil {
		s.metrics.journalError()
	}
	if s.logf != nil {
		s.logf("session %s: journal compaction failed, journaling disabled: %v", s.id, err)
	}
}

// errDeltaResync marks a delta observe the session cannot sequence: no
// retained base observation, a wrong epoch, or a topology change since the
// last observe. The handler maps it to 409 Conflict; the client recovers
// by posting the same observation dense.
var errDeltaResync = errors.New("routing_delta cannot be applied; repost the observation as dense routing")

// clientError wraps an observe failure the client caused (a bad delta
// payload discovered under the lock, against the retained matrices); the
// handler maps it to 400 instead of 500. The session is untouched.
type clientError struct{ err error }

func (e clientError) Error() string { return e.err.Error() }
func (e clientError) Unwrap() error { return e.err }

// validateObserve structurally validates one epoch's posted observation —
// dense shape and non-negativity, or per-layer wire-delta structure —
// against the session's immutable shape. It runs outside the session
// mutex (shape fields never change after construction), so request
// decoding and validation never serialize behind another request's solve.
// The error is a client error.
func (s *session) validateObserve(req ObserveRequest) error {
	dense, delta := req.Routing != nil, req.RoutingDelta != nil
	if dense == delta {
		return fmt.Errorf("serve: exactly one of routing and routing_delta must be set")
	}
	if delta {
		if len(req.RoutingDelta) != s.info.Layers {
			return fmt.Errorf("serve: %d routing deltas for %d layers", len(req.RoutingDelta), s.info.Layers)
		}
		for l, d := range req.RoutingDelta {
			if d == nil {
				return fmt.Errorf("serve: layer %d routing delta is null", l)
			}
			if err := d.Validate(s.info.Devices, s.info.Experts); err != nil {
				return fmt.Errorf("serve: layer %d: %w", l, err)
			}
		}
		return nil
	}
	if len(req.Routing) != s.info.Layers {
		return fmt.Errorf("serve: %d routing matrices for %d layers", len(req.Routing), s.info.Layers)
	}
	for l, rows := range req.Routing {
		if len(rows) != s.info.Devices {
			return fmt.Errorf("serve: layer %d has %d device rows, want %d", l, len(rows), s.info.Devices)
		}
		for d, row := range rows {
			if len(row) != s.info.Experts {
				return fmt.Errorf("serve: layer %d device %d has %d expert columns, want %d", l, d, len(row), s.info.Experts)
			}
			for e, v := range row {
				if v < 0 {
					return fmt.Errorf("serve: layer %d device %d expert %d has negative load %d", l, d, e, v)
				}
			}
		}
	}
	return nil
}

// ensureRoutingLocked lazily allocates the retained per-layer matrices.
// Caller holds s.mu.
func (s *session) ensureRoutingLocked() {
	if s.routing != nil {
		return
	}
	s.routing = make([]*trace.RoutingMatrix, s.info.Layers)
	for l := range s.routing {
		s.routing[l] = trace.NewRoutingMatrix(s.info.Devices, s.info.Experts)
	}
}

// applyDenseLocked copies a validated dense observation into the retained
// matrices. Caller holds s.mu and has run validateObserve.
func (s *session) applyDenseLocked(rows [][][]int) {
	s.ensureRoutingLocked()
	for l, layer := range rows {
		for d, row := range layer {
			copy(s.routing[l].R[d], row)
		}
	}
}

// applyDeltaLocked sequences and applies a validated delta observation
// onto the retained matrices. Every layer is checked before any layer is
// applied, so a rejected delta leaves the retained observation untouched.
// Caller holds s.mu and has run validateObserve.
func (s *session) applyDeltaLocked(epoch int, deltas []*trace.WireDelta) error {
	if !s.haveBase {
		return fmt.Errorf("serve: session %s has no retained observation to apply a delta onto: %w", s.id, errDeltaResync)
	}
	if epoch != s.info.Epochs {
		return fmt.Errorf("serve: delta for epoch %d but session %s is at epoch %d: %w", epoch, s.id, s.info.Epochs, errDeltaResync)
	}
	for l, d := range deltas {
		if err := d.Check(s.routing[l]); err != nil {
			return clientError{fmt.Errorf("serve: layer %d: %w", l, err)}
		}
	}
	for l, d := range deltas {
		d.Apply(s.routing[l])
	}
	return nil
}

// planLocked runs the decision core for one observed epoch. Caller holds
// s.mu. A solve error poisons the session (see session.failed).
func (s *session) planLocked(routing []*trace.RoutingMatrix) (*ObserveResponse, error) {
	if s.failed != nil {
		return nil, fmt.Errorf("session %s failed and must be reopened: %w", s.id, s.failed)
	}
	start := time.Now()
	boundary, observation, err := s.core.PlanEpoch(routing)
	if err != nil {
		s.failed = err
		return nil, err
	}
	resp := &ObserveResponse{
		Session:      s.id,
		Epoch:        s.info.Epochs,
		Boundary:     boundary,
		Observation:  observation,
		Summary:      s.core.Summarize(),
		SolveSeconds: time.Since(start).Seconds(),
	}
	s.info.Epochs++
	return resp, nil
}

// journalDeltaThreshold gates server-side delta journaling of a dense
// post: a sparse cell journals as a (device, diff) pair plus framing where
// a dense cell is one number, so a delta only saves bytes while the
// changed-cell count is well below the matrix size. 3x covers the framing
// overhead with margin; past it the dense record is smaller and replays
// faster.
func journalDeltaThreshold(cells, layers, devices, experts int) bool {
	return 3*cells < layers*devices*experts
}

// observe plans one epoch from the posted observation — dense or delta —
// journals the observation/decision pair, and pushes the decision to SSE
// subscribers. It serializes on the session: a client streaming epochs
// sees them planned in order, and journal/stream order is planning order.
// The journal records are appended only after a successful solve — a
// failed epoch poisons the session and is never replayed, so a restart
// recovers the last good state.
//
// Dense posts are journaled as sparse deltas against the retained
// observation whenever that is smaller (journalDeltaThreshold); the diff
// is computed before the copy overwrites the retained state, and only
// while journaling is live. Client deltas are journaled verbatim. Either
// way the journal reconstructs the same matrices on replay.
func (s *session) observe(req ObserveRequest) (*ObserveResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return nil, fmt.Errorf("session %s failed and must be reopened: %w", s.id, s.failed)
	}
	isDelta := req.RoutingDelta != nil
	var journalDeltas []*trace.WireDelta
	if isDelta {
		if err := s.applyDeltaLocked(req.Epoch, req.RoutingDelta); err != nil {
			return nil, err
		}
		journalDeltas = req.RoutingDelta
	} else {
		if s.jw != nil && !s.jerr && s.haveBase {
			deltas := make([]*trace.WireDelta, len(req.Routing))
			cells := 0
			for l, rows := range req.Routing {
				deltas[l] = trace.WireDiff(s.routing[l], rows)
				cells += deltas[l].Cells()
			}
			if journalDeltaThreshold(cells, s.info.Layers, s.info.Devices, s.info.Experts) {
				journalDeltas = deltas
			}
		}
		s.applyDenseLocked(req.Routing)
	}
	resp, err := s.planLocked(s.routing)
	if err != nil {
		return nil, err
	}
	s.haveBase = true
	if journalDeltas != nil {
		s.journalLocked(journal.KindObserveDelta, deltaObserveRecord{Epoch: resp.Epoch, Deltas: journalDeltas})
	} else {
		s.journalLocked(journal.KindObserve, observeRecord{Routing: req.Routing})
	}
	s.journalLocked(journal.KindDecision, decisionRecord{
		Epoch:       resp.Epoch,
		Boundary:    resp.Boundary,
		Observation: resp.Observation,
		Summary:     journalSummary(resp.Summary),
	})
	s.maybeSnapshotLocked()
	s.publishLocked(eventDecision, resp)
	return resp, nil
}

// applyTopologyLocked applies validated, normalized fault events and the
// forced re-layout they demand. Caller holds s.mu.
func (s *session) applyTopologyLocked(events []faults.Event) (*TopologyUpdateResponse, error) {
	if s.failed != nil {
		return nil, fmt.Errorf("session %s failed and must be reopened: %w", s.id, s.failed)
	}
	start := time.Now()
	decs, err := s.core.ApplyFaults(events)
	if err != nil {
		s.failed = err
		return nil, err
	}
	// The service has no executor to land the recovery charge on; drain it
	// into the response so the client can account for it.
	charge := 0.0
	for l := 0; l < s.info.Layers; l++ {
		charge += s.core.TakeFaultCharge(l)
	}
	s.info.AvailableDevices = s.core.Topo().NumAvailable()
	s.info.FaultEvents += len(events)
	// The cluster changed under the client: whatever observation it was
	// diffing against no longer describes the session's world, so the next
	// observe must be dense (a delta now gets a 409 resync).
	s.haveBase = false
	return &TopologyUpdateResponse{
		Session:               s.id,
		Decisions:             decs,
		AvailableDevices:      s.info.AvailableDevices,
		RecoveryChargeSeconds: charge,
		RecoverySeconds:       time.Since(start).Seconds(),
	}, nil
}

// applyTopology applies a client's membership/degradation events. Events
// are dry-run validated against the session's live topology before
// anything mutates, so a bad request (the bool result reports one) leaves
// the session untouched; a repair failure after validation poisons the
// session like a solve failure. Like observe, the event/decision pair is
// journaled after success and the decision pushed to subscribers.
func (s *session) applyTopology(req TopologyUpdateRequest) (*TopologyUpdateResponse, error, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return nil, fmt.Errorf("session %s failed and must be reopened: %w", s.id, s.failed), false
	}
	if len(req.Events) == 0 {
		return nil, fmt.Errorf("serve: topology update carries no events"), true
	}
	events := make([]faults.Event, len(req.Events))
	for i, ev := range req.Events {
		ev.Epoch, ev.Iter = 0, 0 // effective immediately
		events[i] = ev
	}
	if err := faults.Schedule(events).Validate(s.core.Topo()); err != nil {
		return nil, err, true
	}
	resp, err := s.applyTopologyLocked(events)
	if err != nil {
		return nil, err, false
	}
	s.journalLocked(journal.KindTopology, topologyRecord{Events: events})
	s.journalLocked(journal.KindTopologyDecision, topologyDecisionRecord{
		Decisions:             resp.Decisions,
		AvailableDevices:      resp.AvailableDevices,
		RecoveryChargeSeconds: resp.RecoveryChargeSeconds,
	})
	s.publishLocked(eventTopology, resp)
	return resp, nil, false
}

// touch refreshes the idle-eviction clock.
func (s *session) touch() {
	s.lastActive.Store(time.Now().UnixNano())
}

// idleSince reports how long the session has been idle at now. Lock-free:
// the janitor calls this while the session may be mid-solve.
func (s *session) idleSince(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, s.lastActive.Load()))
}

// snapshot returns the session's info under its lock.
func (s *session) snapshot() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.info
}
