package serve

import (
	"testing"

	"laermoe/internal/trace"
	"laermoe/internal/training"
)

// benchObservations builds the steady-state pair the observe benchmarks
// cycle through: one generated epoch and a successor that differs by two
// token moves per layer — the converged regime the retained-matrix reuse
// and the sparse wire exist for.
func benchObservations(b testing.TB, sess *session) (obsA, obsB [][][]int) {
	b.Helper()
	info := sess.snapshot()
	gen, err := training.ObservationGenerator(trace.GeneratorConfig{
		Devices: info.Devices, Experts: info.Experts, Layers: info.Layers,
		TokensPerDevice: info.TokensPerDevice, TopK: info.TopK,
		Seed: info.Seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	routing := gen.Step()
	obsA = make([][][]int, len(routing))
	obsB = make([][][]int, len(routing))
	for l, m := range routing {
		obsA[l] = make([][]int, len(m.R))
		obsB[l] = make([][]int, len(m.R))
		for d, row := range m.R {
			obsA[l][d] = append([]int(nil), row...)
			obsB[l][d] = append([]int(nil), row...)
		}
		// Two deterministic token moves distinguish B from A.
		n, e := len(m.R), len(m.R[0])
		for k := 0; k < 2; k++ {
			d, x := (l+k)%n, (l+3*k)%e
			if obsB[l][d][x] > 0 {
				obsB[l][d][x]--
				obsB[l][(d+1)%n][x]++
			}
		}
	}
	return obsA, obsB
}

func benchSession(b *testing.B) *session {
	b.Helper()
	sess, err := newSession("bench", 1, quickSpec("warm"), nil)
	if err != nil {
		b.Fatal(err)
	}
	sess.metrics = newRecorder()
	return sess
}

// BenchmarkObserveDense pins the steady-state dense observe path: the
// session reuses its retained routing matrices across observes, so the
// per-request cost must not include L fresh matrix allocations (the
// pre-reuse path allocated one NewRoutingMatrix per layer per request).
// The allocs/op column is the regression gate.
func BenchmarkObserveDense(b *testing.B) {
	sess := benchSession(b)
	obsA, obsB := benchObservations(b, sess)
	if _, err := sess.observe(ObserveRequest{Routing: obsA}); err != nil {
		b.Fatal(err)
	}
	obs := [2][][][]int{obsB, obsA}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.observe(ObserveRequest{Routing: obs[i%2]}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObserveDelta is the same steady state over the sparse wire:
// two token moves per layer arrive as routing_delta and are applied onto
// the retained matrices in place.
func BenchmarkObserveDelta(b *testing.B) {
	sess := benchSession(b)
	obsA, obsB := benchObservations(b, sess)
	if _, err := sess.observe(ObserveRequest{Routing: obsA}); err != nil {
		b.Fatal(err)
	}
	aToB := make([]*trace.WireDelta, len(obsA))
	bToA := make([]*trace.WireDelta, len(obsA))
	for l := range obsA {
		m := trace.NewRoutingMatrix(len(obsA[l]), len(obsA[l][0]))
		for d, row := range obsA[l] {
			copy(m.R[d], row)
		}
		aToB[l] = trace.WireDiff(m, obsB[l])
		for d, row := range obsB[l] {
			copy(m.R[d], row)
		}
		bToA[l] = trace.WireDiff(m, obsA[l])
	}
	deltas := [2][]*trace.WireDelta{aToB, bToA}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.observe(ObserveRequest{Epoch: 1 + i, RoutingDelta: deltas[i%2]}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestObserveReusesRetainedMatrices is the alloc pin in test form: a
// steady-state dense observe must run without per-layer matrix
// allocation churn. The pre-reuse path allocated 3 slices per layer per
// request just to stage the observation (96 allocations at 32 layers)
// before the solver even ran; the bound catches that class of regression
// while leaving room for the decision/response allocations that scale
// with layers.
func TestObserveReusesRetainedMatrices(t *testing.T) {
	sess, err := newSession("alloc-pin", 1, quickSpec("warm"), nil)
	if err != nil {
		t.Fatal(err)
	}
	sess.metrics = newRecorder()
	obsA, obsB := benchObservations(t, sess)
	if _, err := sess.observe(ObserveRequest{Routing: obsA}); err != nil {
		t.Fatal(err)
	}
	obs := [2][][][]int{obsB, obsA}
	i := 0
	perOp := testing.AllocsPerRun(20, func() {
		if _, err := sess.observe(ObserveRequest{Routing: obs[i%2]}); err != nil {
			t.Fatal(err)
		}
		i++
	})
	layers := len(obsA)
	// The old path staged every observation through layers fresh
	// NewRoutingMatrix calls (3 allocations each). Planning itself
	// allocates per-layer decisions and the response; 6 per layer plus
	// slack holds comfortably post-reuse and fails pre-reuse.
	if limit := float64(6*layers + 64); perOp > limit {
		t.Fatalf("steady-state dense observe allocates %.0f/op, want <= %.0f (retained-matrix reuse lost?)", perOp, limit)
	}
}
