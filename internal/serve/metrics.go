package serve

import (
	"fmt"
	"io"
	"sync"

	"laermoe/internal/stats"
	"laermoe/internal/training"
)

// latencyWindow bounds the sliding windows behind the /metrics quantiles:
// large enough that p99 over a busy daemon is meaningful, small enough
// that a quiet daemon's metrics reflect recent traffic, not its lifetime.
const latencyWindow = 512

// ring is a fixed-capacity sliding window of float64 samples.
type ring struct {
	buf  []float64
	next int
	full bool
}

func newRing(n int) *ring { return &ring{buf: make([]float64, n)} }

func (r *ring) add(v float64) {
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// values returns the window's samples (oldest-independent order; the
// quantile computations sort anyway).
func (r *ring) values() []float64 {
	if r.full {
		return append([]float64(nil), r.buf...)
	}
	return append([]float64(nil), r.buf[:r.next]...)
}

// recorder aggregates the daemon's operational metrics: counters over the
// lifetime, sliding windows for solve latency and the predicted-imbalance
// trajectory. All methods are safe for concurrent use.
type recorder struct {
	mu sync.Mutex

	sessionsActive  int
	sessionsOpened  uint64
	sessionsClosed  uint64
	sessionsEvicted uint64

	epochs            uint64
	layerDecisions    uint64
	replans           uint64
	migrations        uint64
	incrementalSolves uint64
	fullSolves        uint64

	topologyUpdates  uint64
	faultEvents      uint64
	replicasRestored uint64

	streamsActive  int
	streamsOpened  uint64
	streamEvents   uint64
	streamsDropped uint64

	sessionsReplayed   uint64
	replayFailures     uint64
	journalErrors      uint64
	journalCompactions uint64
	replaySeconds      float64

	// The latency/imbalance summaries keep two views: a sliding window
	// for the quantiles (recent traffic, not lifetime noise) and
	// lifetime-cumulative sum/count for the Prometheus `_sum`/`_count`
	// series — summary sums and counts are counters and must never
	// decrease, which windowed values do the moment the window wraps
	// (that monotonicity violation silently breaks rate()).
	solveLat         *ring
	solveLatSum      float64
	solveLatCount    uint64
	recoveryLat      *ring
	recoveryLatSum   float64
	recoveryLatCount uint64
	imbalance        *ring
	imbalanceSum     float64
	imbalanceCount   uint64
	lastImbalance    float64
}

func newRecorder() *recorder {
	return &recorder{
		solveLat:    newRing(latencyWindow),
		recoveryLat: newRing(latencyWindow),
		imbalance:   newRing(latencyWindow),
	}
}

func (m *recorder) sessionOpened() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsActive++
	m.sessionsOpened++
}

func (m *recorder) sessionClosed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsActive--
	m.sessionsClosed++
}

func (m *recorder) sessionEvicted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsActive--
	m.sessionsEvicted++
}

func (m *recorder) sessionReplayed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsActive++
	m.sessionsReplayed++
}

func (m *recorder) replayFailed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replayFailures++
}

func (m *recorder) journalError() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalErrors++
}

func (m *recorder) journalCompacted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journalCompactions++
}

func (m *recorder) replayFinished(seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replaySeconds = seconds
}

func (m *recorder) streamOpened() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.streamsActive++
	m.streamsOpened++
}

func (m *recorder) streamClosed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.streamsActive--
}

func (m *recorder) streamDelivered(events int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.streamEvents += uint64(events)
}

func (m *recorder) streamDropped() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.streamsDropped++
}

// topologyServed folds one applied topology update into the metrics.
func (m *recorder) topologyServed(resp *TopologyUpdateResponse, events int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.topologyUpdates++
	m.faultEvents += uint64(events)
	for _, d := range resp.Decisions {
		m.layerDecisions++
		if d.Action != training.ActionKeep {
			m.replans++
		}
		m.migrations += uint64(d.Moves)
		m.replicasRestored += uint64(d.Restored)
	}
	m.recoveryLat.add(resp.RecoverySeconds)
	m.recoveryLatSum += resp.RecoverySeconds
	m.recoveryLatCount++
}

// observeServed folds one planned epoch into the metrics.
func (m *recorder) observeServed(resp *ObserveResponse) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epochs++
	for _, d := range resp.Boundary {
		m.layerDecisions++
		if d.Action != training.ActionKeep {
			m.replans++
		}
	}
	for _, d := range resp.Observation {
		m.layerDecisions++
		if d.Action != training.ActionKeep {
			m.replans++
		}
	}
	m.migrations += uint64(resp.Summary.Migrations)
	m.incrementalSolves += uint64(resp.Summary.IncrementalSolves)
	m.fullSolves += uint64(resp.Summary.FullSolves)
	m.solveLat.add(resp.SolveSeconds)
	m.solveLatSum += resp.SolveSeconds
	m.solveLatCount++
	if len(resp.Observation) > 0 {
		m.imbalance.add(resp.Summary.MeanPredictedImbalance)
		m.imbalanceSum += resp.Summary.MeanPredictedImbalance
		m.imbalanceCount++
		m.lastImbalance = resp.Summary.MeanPredictedImbalance
	}
}

// gauge/counter/quantile emit one Prometheus text-format family each.
func promHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// write renders the Prometheus text exposition. Quantiles come from the
// sliding windows via stats.Percentile; families with no samples yet are
// emitted with zero values so scrapers always see a stable schema.
func (m *recorder) write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	promHeader(w, "laer_serve_sessions_active", "Open planning sessions.", "gauge")
	fmt.Fprintf(w, "laer_serve_sessions_active %d\n", m.sessionsActive)
	promHeader(w, "laer_serve_sessions_opened_total", "Sessions opened since start.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_opened_total %d\n", m.sessionsOpened)
	promHeader(w, "laer_serve_sessions_closed_total", "Sessions closed since start.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_closed_total %d\n", m.sessionsClosed)
	promHeader(w, "laer_serve_sessions_evicted_total", "Sessions evicted after idling past the TTL.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_evicted_total %d\n", m.sessionsEvicted)

	promHeader(w, "laer_serve_epochs_observed_total", "Epoch observations planned.", "counter")
	fmt.Fprintf(w, "laer_serve_epochs_observed_total %d\n", m.epochs)
	promHeader(w, "laer_serve_layer_decisions_total", "Per-layer re-layout decisions issued.", "counter")
	fmt.Fprintf(w, "laer_serve_layer_decisions_total %d\n", m.layerDecisions)
	promHeader(w, "laer_serve_replans_total", "Decisions that installed a new layout.", "counter")
	fmt.Fprintf(w, "laer_serve_replans_total %d\n", m.replans)
	promHeader(w, "laer_serve_replan_rate", "Fraction of decisions that replanned.", "gauge")
	rate := 0.0
	if m.layerDecisions > 0 {
		rate = float64(m.replans) / float64(m.layerDecisions)
	}
	fmt.Fprintf(w, "laer_serve_replan_rate %g\n", rate)
	promHeader(w, "laer_serve_migrations_total", "Expert replicas relocated.", "counter")
	fmt.Fprintf(w, "laer_serve_migrations_total %d\n", m.migrations)
	promHeader(w, "laer_serve_incremental_solves_total", "Planning-step solves served through a synchronized drift tracker (amortized O(drifted experts)).", "counter")
	fmt.Fprintf(w, "laer_serve_incremental_solves_total %d\n", m.incrementalSolves)
	promHeader(w, "laer_serve_full_solves_total", "Planning-step solves that re-scanned the whole layer.", "counter")
	fmt.Fprintf(w, "laer_serve_full_solves_total %d\n", m.fullSolves)

	promHeader(w, "laer_serve_topology_updates_total", "Topology updates applied.", "counter")
	fmt.Fprintf(w, "laer_serve_topology_updates_total %d\n", m.topologyUpdates)
	promHeader(w, "laer_serve_fault_events_total", "Membership/degradation fault events absorbed.", "counter")
	fmt.Fprintf(w, "laer_serve_fault_events_total %d\n", m.faultEvents)
	promHeader(w, "laer_serve_replicas_restored_total", "Expert replicas re-read from checkpoint during recovery.", "counter")
	fmt.Fprintf(w, "laer_serve_replicas_restored_total %d\n", m.replicasRestored)

	promHeader(w, "laer_serve_streams_active", "Open SSE decision streams.", "gauge")
	fmt.Fprintf(w, "laer_serve_streams_active %d\n", m.streamsActive)
	promHeader(w, "laer_serve_streams_opened_total", "SSE decision streams opened since start.", "counter")
	fmt.Fprintf(w, "laer_serve_streams_opened_total %d\n", m.streamsOpened)
	promHeader(w, "laer_serve_stream_events_total", "Decision/topology events delivered to SSE subscribers.", "counter")
	fmt.Fprintf(w, "laer_serve_stream_events_total %d\n", m.streamEvents)
	promHeader(w, "laer_serve_streams_dropped_total", "SSE subscribers disconnected for falling behind the event buffer.", "counter")
	fmt.Fprintf(w, "laer_serve_streams_dropped_total %d\n", m.streamsDropped)

	promHeader(w, "laer_serve_sessions_replayed_total", "Sessions restored from the decision journal at boot.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_replayed_total %d\n", m.sessionsReplayed)
	promHeader(w, "laer_serve_journal_replay_failures_total", "Journaled sessions dropped at boot because replay failed or diverged.", "counter")
	fmt.Fprintf(w, "laer_serve_journal_replay_failures_total %d\n", m.replayFailures)
	promHeader(w, "laer_serve_journal_errors_total", "Journal append failures (the session keeps serving; its journal is abandoned).", "counter")
	fmt.Fprintf(w, "laer_serve_journal_errors_total %d\n", m.journalErrors)
	promHeader(w, "laer_serve_journal_compactions_total", "Journal compactions: replayed history truncated to a planner-state checkpoint.", "counter")
	fmt.Fprintf(w, "laer_serve_journal_compactions_total %d\n", m.journalCompactions)
	promHeader(w, "laer_serve_journal_replay_seconds", "Wall time of the last boot's journal replay.", "gauge")
	fmt.Fprintf(w, "laer_serve_journal_replay_seconds %g\n", m.replaySeconds)

	m.summary(w, "laer_serve_recovery_latency_seconds",
		"Topology-update recovery planning latency (quantiles over a sliding window; sum/count lifetime-cumulative).",
		m.recoveryLat, m.recoveryLatSum, m.recoveryLatCount)

	m.summary(w, "laer_serve_solve_latency_seconds",
		"Per-epoch planning solve latency (quantiles over a sliding window; sum/count lifetime-cumulative).",
		m.solveLat, m.solveLatSum, m.solveLatCount)

	promHeader(w, "laer_serve_predicted_imbalance", "Planner-predicted relative max device load of the latest epoch (1.0 = perfect).", "gauge")
	fmt.Fprintf(w, "laer_serve_predicted_imbalance %g\n", m.lastImbalance)
	m.summary(w, "laer_serve_predicted_imbalance_window",
		"Predicted-imbalance trajectory (quantiles over a sliding window; sum/count lifetime-cumulative).",
		m.imbalance, m.imbalanceSum, m.imbalanceCount)
}

// summary emits one Prometheus summary family: p50/p99 from the sliding
// window, `_sum`/`_count` from the lifetime counters so they stay
// monotone after the window wraps.
func (m *recorder) summary(w io.Writer, name, help string, win *ring, sum float64, count uint64) {
	vals := win.values()
	promHeader(w, name, help, "summary")
	for _, q := range []float64{50, 99} {
		v := 0.0
		if len(vals) > 0 {
			v = stats.Percentile(vals, q)
		}
		fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", name, q/100, v)
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}
