package serve

import (
	"fmt"
	"io"
	"sync"

	"laermoe/internal/stats"
	"laermoe/internal/training"
)

// latencyWindow bounds the sliding windows behind the /metrics quantiles:
// large enough that p99 over a busy daemon is meaningful, small enough
// that a quiet daemon's metrics reflect recent traffic, not its lifetime.
const latencyWindow = 512

// ring is a fixed-capacity sliding window of float64 samples.
type ring struct {
	buf  []float64
	next int
	full bool
}

func newRing(n int) *ring { return &ring{buf: make([]float64, n)} }

func (r *ring) add(v float64) {
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// values returns the window's samples (oldest-independent order; the
// quantile computations sort anyway).
func (r *ring) values() []float64 {
	if r.full {
		return append([]float64(nil), r.buf...)
	}
	return append([]float64(nil), r.buf[:r.next]...)
}

// recorder aggregates the daemon's operational metrics: counters over the
// lifetime, sliding windows for solve latency and the predicted-imbalance
// trajectory. All methods are safe for concurrent use.
type recorder struct {
	mu sync.Mutex

	sessionsActive  int
	sessionsOpened  uint64
	sessionsClosed  uint64
	sessionsEvicted uint64

	epochs         uint64
	layerDecisions uint64
	replans        uint64
	migrations     uint64

	topologyUpdates  uint64
	faultEvents      uint64
	replicasRestored uint64

	solveLat      *ring
	recoveryLat   *ring
	imbalance     *ring
	lastImbalance float64
}

func newRecorder() *recorder {
	return &recorder{
		solveLat:    newRing(latencyWindow),
		recoveryLat: newRing(latencyWindow),
		imbalance:   newRing(latencyWindow),
	}
}

func (m *recorder) sessionOpened() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsActive++
	m.sessionsOpened++
}

func (m *recorder) sessionClosed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsActive--
	m.sessionsClosed++
}

func (m *recorder) sessionEvicted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sessionsActive--
	m.sessionsEvicted++
}

// topologyServed folds one applied topology update into the metrics.
func (m *recorder) topologyServed(resp *TopologyUpdateResponse, events int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.topologyUpdates++
	m.faultEvents += uint64(events)
	for _, d := range resp.Decisions {
		m.layerDecisions++
		if d.Action != training.ActionKeep {
			m.replans++
		}
		m.migrations += uint64(d.Moves)
		m.replicasRestored += uint64(d.Restored)
	}
	m.recoveryLat.add(resp.RecoverySeconds)
}

// observeServed folds one planned epoch into the metrics.
func (m *recorder) observeServed(resp *ObserveResponse) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.epochs++
	for _, d := range resp.Boundary {
		m.layerDecisions++
		if d.Action != training.ActionKeep {
			m.replans++
		}
	}
	for _, d := range resp.Observation {
		m.layerDecisions++
		if d.Action != training.ActionKeep {
			m.replans++
		}
	}
	m.migrations += uint64(resp.Summary.Migrations)
	m.solveLat.add(resp.SolveSeconds)
	if len(resp.Observation) > 0 {
		m.imbalance.add(resp.Summary.MeanPredictedImbalance)
		m.lastImbalance = resp.Summary.MeanPredictedImbalance
	}
}

// gauge/counter/quantile emit one Prometheus text-format family each.
func promHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// write renders the Prometheus text exposition. Quantiles come from the
// sliding windows via stats.Percentile; families with no samples yet are
// emitted with zero values so scrapers always see a stable schema.
func (m *recorder) write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	promHeader(w, "laer_serve_sessions_active", "Open planning sessions.", "gauge")
	fmt.Fprintf(w, "laer_serve_sessions_active %d\n", m.sessionsActive)
	promHeader(w, "laer_serve_sessions_opened_total", "Sessions opened since start.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_opened_total %d\n", m.sessionsOpened)
	promHeader(w, "laer_serve_sessions_closed_total", "Sessions closed since start.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_closed_total %d\n", m.sessionsClosed)
	promHeader(w, "laer_serve_sessions_evicted_total", "Sessions evicted after idling past the TTL.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_evicted_total %d\n", m.sessionsEvicted)

	promHeader(w, "laer_serve_epochs_observed_total", "Epoch observations planned.", "counter")
	fmt.Fprintf(w, "laer_serve_epochs_observed_total %d\n", m.epochs)
	promHeader(w, "laer_serve_layer_decisions_total", "Per-layer re-layout decisions issued.", "counter")
	fmt.Fprintf(w, "laer_serve_layer_decisions_total %d\n", m.layerDecisions)
	promHeader(w, "laer_serve_replans_total", "Decisions that installed a new layout.", "counter")
	fmt.Fprintf(w, "laer_serve_replans_total %d\n", m.replans)
	promHeader(w, "laer_serve_replan_rate", "Fraction of decisions that replanned.", "gauge")
	rate := 0.0
	if m.layerDecisions > 0 {
		rate = float64(m.replans) / float64(m.layerDecisions)
	}
	fmt.Fprintf(w, "laer_serve_replan_rate %g\n", rate)
	promHeader(w, "laer_serve_migrations_total", "Expert replicas relocated.", "counter")
	fmt.Fprintf(w, "laer_serve_migrations_total %d\n", m.migrations)

	promHeader(w, "laer_serve_topology_updates_total", "Topology updates applied.", "counter")
	fmt.Fprintf(w, "laer_serve_topology_updates_total %d\n", m.topologyUpdates)
	promHeader(w, "laer_serve_fault_events_total", "Membership/degradation fault events absorbed.", "counter")
	fmt.Fprintf(w, "laer_serve_fault_events_total %d\n", m.faultEvents)
	promHeader(w, "laer_serve_replicas_restored_total", "Expert replicas re-read from checkpoint during recovery.", "counter")
	fmt.Fprintf(w, "laer_serve_replicas_restored_total %d\n", m.replicasRestored)

	rec := m.recoveryLat.values()
	promHeader(w, "laer_serve_recovery_latency_seconds", "Topology-update recovery planning latency (sliding window).", "summary")
	for _, q := range []float64{50, 99} {
		v := 0.0
		if len(rec) > 0 {
			v = stats.Percentile(rec, q)
		}
		fmt.Fprintf(w, "laer_serve_recovery_latency_seconds{quantile=\"%g\"} %g\n", q/100, v)
	}
	fmt.Fprintf(w, "laer_serve_recovery_latency_seconds_sum %g\n", stats.Sum(rec))
	fmt.Fprintf(w, "laer_serve_recovery_latency_seconds_count %d\n", len(rec))

	lat := m.solveLat.values()
	promHeader(w, "laer_serve_solve_latency_seconds", "Per-epoch planning solve latency (sliding window).", "summary")
	for _, q := range []float64{50, 99} {
		v := 0.0
		if len(lat) > 0 {
			v = stats.Percentile(lat, q)
		}
		fmt.Fprintf(w, "laer_serve_solve_latency_seconds{quantile=\"%g\"} %g\n", q/100, v)
	}
	fmt.Fprintf(w, "laer_serve_solve_latency_seconds_sum %g\n", stats.Sum(lat))
	fmt.Fprintf(w, "laer_serve_solve_latency_seconds_count %d\n", len(lat))

	imb := m.imbalance.values()
	promHeader(w, "laer_serve_predicted_imbalance", "Planner-predicted relative max device load of the latest epoch (1.0 = perfect).", "gauge")
	fmt.Fprintf(w, "laer_serve_predicted_imbalance %g\n", m.lastImbalance)
	promHeader(w, "laer_serve_predicted_imbalance_window", "Predicted-imbalance trajectory quantiles (sliding window).", "summary")
	for _, q := range []float64{50, 99} {
		v := 0.0
		if len(imb) > 0 {
			v = stats.Percentile(imb, q)
		}
		fmt.Fprintf(w, "laer_serve_predicted_imbalance_window{quantile=\"%g\"} %g\n", q/100, v)
	}
	fmt.Fprintf(w, "laer_serve_predicted_imbalance_window_sum %g\n", stats.Sum(imb))
	fmt.Fprintf(w, "laer_serve_predicted_imbalance_window_count %d\n", len(imb))
}
