package serve

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"laermoe/internal/stats"
	"laermoe/internal/training"
)

// latencyWindow bounds the sliding windows behind the /metrics quantiles:
// large enough that p99 over a busy daemon is meaningful, small enough
// that a quiet daemon's metrics reflect recent traffic, not its lifetime.
const latencyWindow = 512

// ring is a fixed-capacity sliding window of float64 samples.
type ring struct {
	buf  []float64
	next int
	full bool
}

func newRing(n int) *ring { return &ring{buf: make([]float64, n)} }

func (r *ring) add(v float64) {
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// values returns the window's samples (oldest-independent order; the
// quantile computations sort anyway).
func (r *ring) values() []float64 {
	if r.full {
		return append([]float64(nil), r.buf...)
	}
	return append([]float64(nil), r.buf[:r.next]...)
}

// summaryWindow is one Prometheus summary's state: a sliding window for
// the quantiles (recent traffic, not lifetime noise) and
// lifetime-cumulative sum/count for the `_sum`/`_count` series — summary
// sums and counts are counters and must never decrease, which windowed
// values do the moment the window wraps (that monotonicity violation
// silently breaks rate()). Each summary owns its own small mutex so a
// /metrics scrape — or another summary's update — never serializes the
// observe hot path the way the recorder's former global lock did.
type summaryWindow struct {
	mu    sync.Mutex
	win   *ring
	sum   float64
	count uint64
}

func newSummaryWindow() *summaryWindow { return &summaryWindow{win: newRing(latencyWindow)} }

func (s *summaryWindow) add(v float64) {
	s.mu.Lock()
	s.win.add(v)
	s.sum += v
	s.count++
	s.mu.Unlock()
}

func (s *summaryWindow) snapshot() (vals []float64, sum float64, count uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.win.values(), s.sum, s.count
}

// atomicFloat is a float64 gauge readable and writable without a lock.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64   { return math.Float64frombits(f.bits.Load()) }

// recorder aggregates the daemon's operational metrics: counters over the
// lifetime, sliding windows for solve latency and the predicted-imbalance
// trajectory. All methods are safe for concurrent use. Counters and
// gauges are atomics and the summaries carry per-summary locks, so the
// hot observe path (a herd of simultaneous sessions) never serializes on
// one recorder-wide mutex, and a /metrics scrape reads concurrently with
// it. Metrics need no cross-counter atomicity — a scrape racing an update
// may see the epoch counted before its latency sample, which Prometheus
// semantics allow.
type recorder struct {
	sessionsActive  atomic.Int64
	sessionsOpened  atomic.Uint64
	sessionsClosed  atomic.Uint64
	sessionsEvicted atomic.Uint64

	epochs            atomic.Uint64
	layerDecisions    atomic.Uint64
	replans           atomic.Uint64
	migrations        atomic.Uint64
	incrementalSolves atomic.Uint64
	fullSolves        atomic.Uint64

	observePayloadBytes atomic.Uint64
	observesDense       atomic.Uint64
	observesDelta       atomic.Uint64
	deltaResyncs        atomic.Uint64

	topologyUpdates  atomic.Uint64
	faultEvents      atomic.Uint64
	replicasRestored atomic.Uint64

	streamsActive  atomic.Int64
	streamsOpened  atomic.Uint64
	streamEvents   atomic.Uint64
	streamsDropped atomic.Uint64

	sessionsReplayed   atomic.Uint64
	replayFailures     atomic.Uint64
	journalErrors      atomic.Uint64
	journalCompactions atomic.Uint64
	replaySeconds      atomicFloat

	solveLat      *summaryWindow
	recoveryLat   *summaryWindow
	imbalance     *summaryWindow
	lastImbalance atomicFloat
}

func newRecorder() *recorder {
	return &recorder{
		solveLat:    newSummaryWindow(),
		recoveryLat: newSummaryWindow(),
		imbalance:   newSummaryWindow(),
	}
}

func (m *recorder) sessionOpened() {
	m.sessionsActive.Add(1)
	m.sessionsOpened.Add(1)
}

func (m *recorder) sessionClosed() {
	m.sessionsActive.Add(-1)
	m.sessionsClosed.Add(1)
}

func (m *recorder) sessionEvicted() {
	m.sessionsActive.Add(-1)
	m.sessionsEvicted.Add(1)
}

func (m *recorder) sessionReplayed() {
	m.sessionsActive.Add(1)
	m.sessionsReplayed.Add(1)
}

func (m *recorder) replayFailed() { m.replayFailures.Add(1) }

func (m *recorder) journalError() { m.journalErrors.Add(1) }

func (m *recorder) journalCompacted() { m.journalCompactions.Add(1) }

func (m *recorder) replayFinished(seconds float64) { m.replaySeconds.store(seconds) }

func (m *recorder) streamOpened() {
	m.streamsActive.Add(1)
	m.streamsOpened.Add(1)
}

func (m *recorder) streamClosed() { m.streamsActive.Add(-1) }

func (m *recorder) streamDelivered(events int) { m.streamEvents.Add(uint64(events)) }

func (m *recorder) streamDropped() { m.streamsDropped.Add(1) }

// deltaResynced counts a delta observe refused with 409 (epoch gap, no
// base, or a topology change): the client falls back to a dense post.
func (m *recorder) deltaResynced() { m.deltaResyncs.Add(1) }

// topologyServed folds one applied topology update into the metrics.
func (m *recorder) topologyServed(resp *TopologyUpdateResponse, events int) {
	m.topologyUpdates.Add(1)
	m.faultEvents.Add(uint64(events))
	for _, d := range resp.Decisions {
		m.layerDecisions.Add(1)
		if d.Action != training.ActionKeep {
			m.replans.Add(1)
		}
		m.migrations.Add(uint64(d.Moves))
		m.replicasRestored.Add(uint64(d.Restored))
	}
	m.recoveryLat.add(resp.RecoverySeconds)
}

// observeServed folds one planned epoch into the metrics: the decision
// counts, the request's wire cost in payload bytes, and which ingest form
// (dense routing or routing_delta) carried it.
func (m *recorder) observeServed(resp *ObserveResponse, payloadBytes int64, delta bool) {
	m.epochs.Add(1)
	m.observePayloadBytes.Add(uint64(payloadBytes))
	if delta {
		m.observesDelta.Add(1)
	} else {
		m.observesDense.Add(1)
	}
	for _, d := range resp.Boundary {
		m.layerDecisions.Add(1)
		if d.Action != training.ActionKeep {
			m.replans.Add(1)
		}
	}
	for _, d := range resp.Observation {
		m.layerDecisions.Add(1)
		if d.Action != training.ActionKeep {
			m.replans.Add(1)
		}
	}
	m.migrations.Add(uint64(resp.Summary.Migrations))
	m.incrementalSolves.Add(uint64(resp.Summary.IncrementalSolves))
	m.fullSolves.Add(uint64(resp.Summary.FullSolves))
	m.solveLat.add(resp.SolveSeconds)
	if len(resp.Observation) > 0 {
		m.imbalance.add(resp.Summary.MeanPredictedImbalance)
		m.lastImbalance.store(resp.Summary.MeanPredictedImbalance)
	}
}

// gauge/counter/quantile emit one Prometheus text-format family each.
func promHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// write renders the Prometheus text exposition. Quantiles come from the
// sliding windows via stats.Percentile; families with no samples yet are
// emitted with zero values so scrapers always see a stable schema.
func (m *recorder) write(w io.Writer) {
	promHeader(w, "laer_serve_sessions_active", "Open planning sessions.", "gauge")
	fmt.Fprintf(w, "laer_serve_sessions_active %d\n", m.sessionsActive.Load())
	promHeader(w, "laer_serve_sessions_opened_total", "Sessions opened since start.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_opened_total %d\n", m.sessionsOpened.Load())
	promHeader(w, "laer_serve_sessions_closed_total", "Sessions closed since start.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_closed_total %d\n", m.sessionsClosed.Load())
	promHeader(w, "laer_serve_sessions_evicted_total", "Sessions evicted after idling past the TTL.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_evicted_total %d\n", m.sessionsEvicted.Load())

	promHeader(w, "laer_serve_epochs_observed_total", "Epoch observations planned.", "counter")
	fmt.Fprintf(w, "laer_serve_epochs_observed_total %d\n", m.epochs.Load())
	promHeader(w, "laer_serve_layer_decisions_total", "Per-layer re-layout decisions issued.", "counter")
	fmt.Fprintf(w, "laer_serve_layer_decisions_total %d\n", m.layerDecisions.Load())
	promHeader(w, "laer_serve_replans_total", "Decisions that installed a new layout.", "counter")
	fmt.Fprintf(w, "laer_serve_replans_total %d\n", m.replans.Load())
	promHeader(w, "laer_serve_replan_rate", "Fraction of decisions that replanned.", "gauge")
	rate := 0.0
	if decs := m.layerDecisions.Load(); decs > 0 {
		rate = float64(m.replans.Load()) / float64(decs)
	}
	fmt.Fprintf(w, "laer_serve_replan_rate %g\n", rate)
	promHeader(w, "laer_serve_migrations_total", "Expert replicas relocated.", "counter")
	fmt.Fprintf(w, "laer_serve_migrations_total %d\n", m.migrations.Load())
	promHeader(w, "laer_serve_incremental_solves_total", "Planning-step solves served through a synchronized drift tracker (amortized O(drifted experts)).", "counter")
	fmt.Fprintf(w, "laer_serve_incremental_solves_total %d\n", m.incrementalSolves.Load())
	promHeader(w, "laer_serve_full_solves_total", "Planning-step solves that re-scanned the whole layer.", "counter")
	fmt.Fprintf(w, "laer_serve_full_solves_total %d\n", m.fullSolves.Load())

	promHeader(w, "laer_serve_observe_payload_bytes_total", "Observation request payload bytes decoded (dense and delta).", "counter")
	fmt.Fprintf(w, "laer_serve_observe_payload_bytes_total %d\n", m.observePayloadBytes.Load())
	promHeader(w, "laer_serve_observes_dense_total", "Epoch observations posted as dense routing matrices.", "counter")
	fmt.Fprintf(w, "laer_serve_observes_dense_total %d\n", m.observesDense.Load())
	promHeader(w, "laer_serve_observes_delta_total", "Epoch observations posted as sparse routing_delta records.", "counter")
	fmt.Fprintf(w, "laer_serve_observes_delta_total %d\n", m.observesDelta.Load())
	promHeader(w, "laer_serve_observe_delta_resyncs_total", "Delta observes refused with 409 (epoch gap, missing base, or topology change); clients fall back to dense.", "counter")
	fmt.Fprintf(w, "laer_serve_observe_delta_resyncs_total %d\n", m.deltaResyncs.Load())

	promHeader(w, "laer_serve_topology_updates_total", "Topology updates applied.", "counter")
	fmt.Fprintf(w, "laer_serve_topology_updates_total %d\n", m.topologyUpdates.Load())
	promHeader(w, "laer_serve_fault_events_total", "Membership/degradation fault events absorbed.", "counter")
	fmt.Fprintf(w, "laer_serve_fault_events_total %d\n", m.faultEvents.Load())
	promHeader(w, "laer_serve_replicas_restored_total", "Expert replicas re-read from checkpoint during recovery.", "counter")
	fmt.Fprintf(w, "laer_serve_replicas_restored_total %d\n", m.replicasRestored.Load())

	promHeader(w, "laer_serve_streams_active", "Open SSE decision streams.", "gauge")
	fmt.Fprintf(w, "laer_serve_streams_active %d\n", m.streamsActive.Load())
	promHeader(w, "laer_serve_streams_opened_total", "SSE decision streams opened since start.", "counter")
	fmt.Fprintf(w, "laer_serve_streams_opened_total %d\n", m.streamsOpened.Load())
	promHeader(w, "laer_serve_stream_events_total", "Decision/topology events delivered to SSE subscribers.", "counter")
	fmt.Fprintf(w, "laer_serve_stream_events_total %d\n", m.streamEvents.Load())
	promHeader(w, "laer_serve_streams_dropped_total", "SSE subscribers disconnected for falling behind the event buffer.", "counter")
	fmt.Fprintf(w, "laer_serve_streams_dropped_total %d\n", m.streamsDropped.Load())

	promHeader(w, "laer_serve_sessions_replayed_total", "Sessions restored from the decision journal at boot.", "counter")
	fmt.Fprintf(w, "laer_serve_sessions_replayed_total %d\n", m.sessionsReplayed.Load())
	promHeader(w, "laer_serve_journal_replay_failures_total", "Journaled sessions dropped at boot because replay failed or diverged.", "counter")
	fmt.Fprintf(w, "laer_serve_journal_replay_failures_total %d\n", m.replayFailures.Load())
	promHeader(w, "laer_serve_journal_errors_total", "Journal append failures (the session keeps serving; its journal is abandoned).", "counter")
	fmt.Fprintf(w, "laer_serve_journal_errors_total %d\n", m.journalErrors.Load())
	promHeader(w, "laer_serve_journal_compactions_total", "Journal compactions: replayed history truncated to a planner-state checkpoint.", "counter")
	fmt.Fprintf(w, "laer_serve_journal_compactions_total %d\n", m.journalCompactions.Load())
	promHeader(w, "laer_serve_journal_replay_seconds", "Wall time of the last boot's journal replay.", "gauge")
	fmt.Fprintf(w, "laer_serve_journal_replay_seconds %g\n", m.replaySeconds.load())

	writeSummary(w, "laer_serve_recovery_latency_seconds",
		"Topology-update recovery planning latency (quantiles over a sliding window; sum/count lifetime-cumulative).",
		m.recoveryLat)

	writeSummary(w, "laer_serve_solve_latency_seconds",
		"Per-epoch planning solve latency (quantiles over a sliding window; sum/count lifetime-cumulative).",
		m.solveLat)

	promHeader(w, "laer_serve_predicted_imbalance", "Planner-predicted relative max device load of the latest epoch (1.0 = perfect).", "gauge")
	fmt.Fprintf(w, "laer_serve_predicted_imbalance %g\n", m.lastImbalance.load())
	writeSummary(w, "laer_serve_predicted_imbalance_window",
		"Predicted-imbalance trajectory (quantiles over a sliding window; sum/count lifetime-cumulative).",
		m.imbalance)
}

// writeSummary emits one Prometheus summary family: p50/p99 from the
// sliding window, `_sum`/`_count` from the lifetime counters so they stay
// monotone after the window wraps.
func writeSummary(w io.Writer, name, help string, s *summaryWindow) {
	vals, sum, count := s.snapshot()
	promHeader(w, name, help, "summary")
	for _, q := range []float64{50, 99} {
		v := 0.0
		if len(vals) > 0 {
			v = stats.Percentile(vals, q)
		}
		fmt.Fprintf(w, "%s{quantile=\"%g\"} %g\n", name, q/100, v)
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}
