package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"laermoe/internal/faults"
	"laermoe/internal/trace"
	sessionspec "laermoe/session"
)

// sseFrame is one parsed SSE frame; comment frames (heartbeats) come back
// with name ":".
type sseFrame struct {
	name string
	data string
}

// readFrame parses the next SSE frame off the stream.
func readFrame(rd *bufio.Reader) (sseFrame, error) {
	var fr sseFrame
	for {
		line, err := rd.ReadString('\n')
		if err != nil {
			return fr, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if fr.name != "" {
				return fr, nil
			}
		case strings.HasPrefix(line, ": "):
			fr.name = ":"
			fr.data = line[2:]
		case strings.HasPrefix(line, "event: "):
			fr.name = line[len("event: "):]
		case strings.HasPrefix(line, "data: "):
			fr.data = line[len("data: "):]
		}
	}
}

// openStream subscribes to a session's SSE feed and consumes the
// "session" hello frame.
func openStream(t *testing.T, tc *testClient, id string) (*bufio.Reader, func()) {
	t.Helper()
	resp, err := tc.c.Get(tc.base + "/v1/sessions/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("stream content type %q", ct)
	}
	rd := bufio.NewReader(resp.Body)
	hello, err := readFrame(rd)
	if err != nil {
		t.Fatal(err)
	}
	if hello.name != eventSession {
		t.Fatalf("first frame is %q, want %q", hello.name, eventSession)
	}
	var info SessionInfo
	if err := json.Unmarshal([]byte(hello.data), &info); err != nil {
		t.Fatalf("decoding hello frame %q: %v", hello.data, err)
	}
	if info.ID != id {
		t.Fatalf("hello frame for session %q, want %q", info.ID, id)
	}
	return rd, func() { resp.Body.Close() }
}

// TestStreamDeliversDecisionsInOrder: concurrent observes against one
// session serialize, and a subscriber sees every decision exactly once,
// in epoch order, with the same decision bytes the POST responses
// carried.
func TestStreamDeliversDecisionsInOrder(t *testing.T) {
	const epochs = 4
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	stream := observationStream(t, info, epochs, 4, trace.DriftConfig{Model: trace.DriftMigration})

	rd, closeStream := openStream(t, tc, info.ID)
	defer closeStream()

	// Fire all epochs concurrently: the session mutex decides their
	// order, and the stream must reflect exactly that order.
	responses := make([]*ObserveResponse, epochs)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for e := 0; e < epochs; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			var resp ObserveResponse
			tc.do("POST", "/v1/sessions/"+info.ID+"/observe",
				ObserveRequest{Routing: stream[e]}, http.StatusOK, &resp)
			mu.Lock()
			responses[resp.Epoch] = &resp
			mu.Unlock()
		}(e)
	}
	wg.Wait()

	for e := 0; e < epochs; e++ {
		fr, err := readFrame(rd)
		if err != nil {
			t.Fatal(err)
		}
		if fr.name != eventDecision {
			t.Fatalf("frame %d is %q, want %q", e, fr.name, eventDecision)
		}
		var got ObserveResponse
		if err := json.Unmarshal([]byte(fr.data), &got); err != nil {
			t.Fatal(err)
		}
		if got.Epoch != e {
			t.Fatalf("frame %d carries epoch %d: stream order is not planning order", e, got.Epoch)
		}
		assertSameJSON(t, fmt.Sprintf("stream epoch %d", e), streamFingerprint(&got), streamFingerprint(responses[e]))
	}
}

// streamFingerprint strips the wall-clock field so stream and POST views
// of one decision compare on the reproducible bytes.
func streamFingerprint(resp *ObserveResponse) decisionRecord {
	return decisionRecord{
		Epoch:       resp.Epoch,
		Boundary:    resp.Boundary,
		Observation: resp.Observation,
		Summary:     resp.Summary,
	}
}

// TestStreamTopologyEvent: topology updates are pushed too.
func TestStreamTopologyEvent(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	rd, closeStream := openStream(t, tc, info.ID)
	defer closeStream()

	var tresp TopologyUpdateResponse
	tc.do("POST", "/v1/sessions/"+info.ID+"/topology",
		TopologyUpdateRequest{Events: []faults.Event{{Kind: faults.NodeFail, Node: 1}}},
		http.StatusOK, &tresp)

	fr, err := readFrame(rd)
	if err != nil {
		t.Fatal(err)
	}
	if fr.name != eventTopology {
		t.Fatalf("frame is %q, want %q", fr.name, eventTopology)
	}
	var got TopologyUpdateResponse
	if err := json.Unmarshal([]byte(fr.data), &got); err != nil {
		t.Fatal(err)
	}
	if got.AvailableDevices != tresp.AvailableDevices {
		t.Fatalf("streamed topology decision reports %d devices, POST reported %d",
			got.AvailableDevices, tresp.AvailableDevices)
	}
}

// TestStreamHeartbeat: an idle stream stays alive via comment frames.
func TestStreamHeartbeat(t *testing.T) {
	_, tc := newTestServer(t, Options{StreamHeartbeat: 20 * time.Millisecond})
	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	rd, closeStream := openStream(t, tc, info.ID)
	defer closeStream()
	fr, err := readFrame(rd)
	if err != nil {
		t.Fatal(err)
	}
	if fr.name != ":" || fr.data != "heartbeat" {
		t.Fatalf("idle stream's next frame is %+v, want a heartbeat comment", fr)
	}
}

// TestStreamClosedOnSessionClose: deleting a streamed session ends the
// stream with a "closed" frame naming the reason.
func TestStreamClosedOnSessionClose(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	rd, closeStream := openStream(t, tc, info.ID)
	defer closeStream()
	tc.do("DELETE", "/v1/sessions/"+info.ID, nil, http.StatusOK, nil)
	fr, err := readFrame(rd)
	if err != nil {
		t.Fatal(err)
	}
	if fr.name != eventClosed || !strings.Contains(fr.data, "closed") {
		t.Fatalf("frame after session close: %+v", fr)
	}
	if _, err := readFrame(rd); err == nil {
		t.Fatal("stream stayed open after the closed frame")
	}
}

// TestStreamShutdown: draining the daemon ends every open stream with a
// "shutdown" frame instead of wedging the HTTP drain.
func TestStreamShutdown(t *testing.T) {
	s, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	rd, closeStream := openStream(t, tc, info.ID)
	defer closeStream()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	fr, err := readFrame(rd)
	if err != nil {
		t.Fatal(err)
	}
	if fr.name != eventShutdown {
		t.Fatalf("frame after shutdown: %+v", fr)
	}
}

// TestStreamUnknownSession: streaming a session that doesn't exist is a
// 404 like every other session route.
func TestStreamUnknownSession(t *testing.T) {
	_, tc := newTestServer(t, Options{})
	tc.do("GET", "/v1/sessions/nope/stream", nil, http.StatusNotFound, nil)
}

// TestSlowSubscriberDropped: a subscriber whose buffer fills is
// disconnected by the publisher — planning never blocks on a consumer —
// and the drop is counted. Exercised at the session level where the
// backpressure point is deterministic.
func TestSlowSubscriberDropped(t *testing.T) {
	sess, err := newSession("s-1", 1, SessionSpec{Spec: sessionspec.Spec{IterationsPerEpoch: 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	metrics := newRecorder()
	sess.metrics = metrics
	sub := sess.subscribe(1)
	sess.mu.Lock()
	sess.publishLocked(eventDecision, map[string]int{"epoch": 0})
	sess.publishLocked(eventDecision, map[string]int{"epoch": 1}) // buffer full: drop
	sess.mu.Unlock()
	select {
	case <-sub.quit:
	default:
		t.Fatal("overflowed subscriber was not stopped")
	}
	if sub.reason != "overflow" {
		t.Fatalf("stop reason %q, want overflow", sub.reason)
	}
	dropped, delivered := metrics.streamsDropped.Load(), metrics.streamEvents.Load()
	if dropped != 1 {
		t.Fatalf("streamsDropped = %d, want 1", dropped)
	}
	if delivered != 1 {
		t.Fatalf("streamEvents = %d, want 1 (the buffered event)", delivered)
	}
	// The dropped subscriber is gone: further publishes don't see it.
	sess.mu.Lock()
	sess.publishLocked(eventDecision, map[string]int{"epoch": 2})
	sess.mu.Unlock()
	if len(sub.ch) != 1 {
		t.Fatalf("dropped subscriber still receiving (%d queued)", len(sub.ch))
	}
}
