package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"laermoe/internal/faults"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// wireDeltas computes the per-layer wire form of next − prev from two
// dense wire observations, exactly what a delta client posts.
func wireDeltas(t *testing.T, prev, next [][][]int) []*trace.WireDelta {
	t.Helper()
	out := make([]*trace.WireDelta, len(prev))
	for l := range prev {
		m := trace.NewRoutingMatrix(len(prev[l]), len(prev[l][0]))
		for d, row := range prev[l] {
			copy(m.R[d], row)
		}
		out[l] = trace.WireDiff(m, next[l])
	}
	return out
}

// TestDeltaDecisionsMatchDense is the delta-ingest acceptance property:
// for every policy, a session fed sparse routing_delta observes returns
// decisions byte-identical to a session fed the same stream dense — across
// a mid-stream fault event, which forces the delta client back to dense
// exactly once (409) before deltas resume.
func TestDeltaDecisionsMatchDense(t *testing.T) {
	const epochs = 5
	const faultEpoch = 2
	drift := trace.DriftConfig{Model: trace.DriftMigration}
	for _, policy := range []string{"static", "scratch", "warm", "predictive"} {
		t.Run(policy, func(t *testing.T) {
			srv, tc := newTestServer(t, Options{})
			var dense, sparse SessionInfo
			tc.do("POST", "/v1/sessions", quickSpec(policy), http.StatusCreated, &dense)
			tc.do("POST", "/v1/sessions", quickSpec(policy), http.StatusCreated, &sparse)
			stream := observationStream(t, dense, epochs, 4, drift)
			// Like the elastic acceptance test, the client resheds its
			// observations onto the survivors after the fault.
			clientTopo := topology.New(4, 8)
			events := []faults.Event{{Kind: faults.NodeFail, Node: 1}}
			resyncs := srv.metrics.deltaResyncs.Load()
			for e := 0; e < epochs; e++ {
				if e == faultEpoch {
					tc.do("POST", "/v1/sessions/"+dense.ID+"/topology",
						TopologyUpdateRequest{Events: events}, http.StatusOK, nil)
					tc.do("POST", "/v1/sessions/"+sparse.ID+"/topology",
						TopologyUpdateRequest{Events: events}, http.StatusOK, nil)
					if err := clientTopo.RemoveNode(1); err != nil {
						t.Fatal(err)
					}
				}
				if clientTopo.NumAvailable() != clientTopo.N() {
					stream[e] = foldObservation(stream[e], clientTopo)
				}
				var want ObserveResponse
				tc.do("POST", "/v1/sessions/"+dense.ID+"/observe",
					ObserveRequest{Routing: stream[e]}, http.StatusOK, &want)
				var got ObserveResponse
				if e == 0 {
					tc.do("POST", "/v1/sessions/"+sparse.ID+"/observe",
						ObserveRequest{Routing: stream[e]}, http.StatusOK, &got)
				} else {
					deltas := wireDeltas(t, stream[e-1], stream[e])
					if e == faultEpoch {
						// The topology change invalidated the retained base:
						// the delta must be refused and the dense repost
						// accepted, after which deltas resume seamlessly.
						tc.do("POST", "/v1/sessions/"+sparse.ID+"/observe",
							ObserveRequest{Epoch: e, RoutingDelta: deltas}, http.StatusConflict, nil)
						tc.do("POST", "/v1/sessions/"+sparse.ID+"/observe",
							ObserveRequest{Routing: stream[e]}, http.StatusOK, &got)
					} else {
						tc.do("POST", "/v1/sessions/"+sparse.ID+"/observe",
							ObserveRequest{Epoch: e, RoutingDelta: deltas}, http.StatusOK, &got)
					}
				}
				if got.Epoch != e || want.Epoch != e {
					t.Fatalf("epoch %d reported as delta=%d dense=%d", e, got.Epoch, want.Epoch)
				}
				assertSameJSON(t, fmt.Sprintf("epoch %d boundary", e), got.Boundary, want.Boundary)
				assertSameJSON(t, fmt.Sprintf("epoch %d observation", e), got.Observation, want.Observation)
				assertSameJSON(t, fmt.Sprintf("epoch %d summary", e), journalSummary(got.Summary), journalSummary(want.Summary))
			}
			if got := srv.metrics.deltaResyncs.Load() - resyncs; got != 1 {
				t.Fatalf("delta resyncs = %d, want exactly the fault-epoch one", got)
			}
			if srv.metrics.observesDelta.Load() == 0 {
				t.Fatal("no delta observes counted")
			}
		})
	}
}

// TestDeltaObserveEdgeCases pins the sequencing and validation contract of
// the routing_delta wire protocol, error class by error class.
func TestDeltaObserveEdgeCases(t *testing.T) {
	srv, tc := newTestServer(t, Options{})
	var info SessionInfo
	tc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	stream := observationStream(t, info, 4, 4, trace.DriftConfig{Model: trace.DriftMigration})
	observe := "/v1/sessions/" + info.ID + "/observe"
	noop := make([]*trace.WireDelta, info.Layers)
	for l := range noop {
		noop[l] = &trace.WireDelta{}
	}

	// Delta before any dense observation: nothing to apply onto.
	tc.do("POST", observe, ObserveRequest{Epoch: 0, RoutingDelta: noop}, http.StatusConflict, nil)

	// Exactly one of routing and routing_delta.
	tc.do("POST", observe, ObserveRequest{Routing: stream[0], RoutingDelta: wireDeltas(t, stream[0], stream[1])}, http.StatusBadRequest, nil)
	tc.do("POST", observe, ObserveRequest{}, http.StatusBadRequest, nil)

	// First dense observe establishes the base.
	tc.do("POST", observe, ObserveRequest{Routing: stream[0]}, http.StatusOK, nil)

	// Epoch gap: the session is at epoch 1, a delta for epoch 2 (or a
	// stale one for epoch 0) must force a resync, not silently apply.
	tc.do("POST", observe, ObserveRequest{Epoch: 2, RoutingDelta: noop}, http.StatusConflict, nil)
	tc.do("POST", observe, ObserveRequest{Epoch: 0, RoutingDelta: noop}, http.StatusConflict, nil)

	// Structural rejections are client errors, not resyncs: wrong layer
	// count, out-of-range expert index, null layer.
	tc.do("POST", observe, ObserveRequest{Epoch: 1, RoutingDelta: noop[:1]}, http.StatusBadRequest, nil)
	bad := make([]*trace.WireDelta, info.Layers)
	for l := range bad {
		bad[l] = &trace.WireDelta{}
	}
	bad[0] = &trace.WireDelta{Experts: []trace.WireExpertDelta{{Expert: info.Experts, Cells: []int{0, 1}}}}
	tc.do("POST", observe, ObserveRequest{Epoch: 1, RoutingDelta: bad}, http.StatusBadRequest, nil)
	bad[0] = nil
	tc.do("POST", observe, ObserveRequest{Epoch: 1, RoutingDelta: bad}, http.StatusBadRequest, nil)

	// A delta that would drive a retained cell negative is rejected under
	// the lock without touching the session...
	under := make([]*trace.WireDelta, info.Layers)
	for l := range under {
		under[l] = &trace.WireDelta{}
	}
	under[0] = &trace.WireDelta{Experts: []trace.WireExpertDelta{{Expert: 0, Cells: []int{0, -(stream[0][0][0][0] + 1)}}}}
	tc.do("POST", observe, ObserveRequest{Epoch: 1, RoutingDelta: under}, http.StatusBadRequest, nil)

	// ...so a well-formed delta for the same epoch still lands.
	tc.do("POST", observe, ObserveRequest{Epoch: 1, RoutingDelta: wireDeltas(t, stream[0], stream[1])}, http.StatusOK, nil)

	// A topology event invalidates the base: delta 409s, dense recovers,
	// deltas resume.
	tc.do("POST", "/v1/sessions/"+info.ID+"/topology",
		TopologyUpdateRequest{Events: []faults.Event{{Kind: faults.Degrade, Device: 1, Class: "degraded"}}},
		http.StatusOK, nil)
	tc.do("POST", observe, ObserveRequest{Epoch: 2, RoutingDelta: wireDeltas(t, stream[1], stream[2])}, http.StatusConflict, nil)
	tc.do("POST", observe, ObserveRequest{Routing: stream[2]}, http.StatusOK, nil)
	tc.do("POST", observe, ObserveRequest{Epoch: 3, RoutingDelta: wireDeltas(t, stream[2], stream[3])}, http.StatusOK, nil)

	if got := srv.metrics.deltaResyncs.Load(); got != 4 {
		t.Fatalf("delta resyncs = %d, want 4 (pre-base, two epoch gaps, post-topology)", got)
	}
	if got := srv.metrics.observesDelta.Load(); got != 2 {
		t.Fatalf("delta observes = %d, want 2", got)
	}
}

// stationaryStream derives a converged-regime observation stream: epoch 0
// is the generator's dense observation, every later epoch moves one token
// between two devices for expert 0 of each layer. This is the regime the
// delta protocol exists for — and what the server-side journal size gate
// must recognize.
func stationaryStream(t *testing.T, base [][][]int, epochs int) [][][][]int {
	t.Helper()
	out := make([][][][]int, epochs)
	out[0] = base
	for e := 1; e < epochs; e++ {
		prev := out[e-1]
		next := make([][][]int, len(prev))
		for l, rows := range prev {
			nrows := make([][]int, len(rows))
			for d, row := range rows {
				nrows[d] = append([]int(nil), row...)
			}
			src, dst := e%len(nrows), (e+1)%len(nrows)
			if src != dst && nrows[src][0] > 0 {
				nrows[src][0]--
				nrows[dst][0]++
			}
			next[l] = nrows
		}
		out[e] = next
	}
	return out
}

// TestJournalDeltaReplay: a session whose epochs arrive as client deltas
// journals them as observe-delta records, and a restart replays those
// records back to byte-identical planner state — the same contract dense
// journals already carry.
func TestJournalDeltaReplay(t *testing.T) {
	const epochs = 4
	drift := trace.DriftConfig{Model: trace.DriftMigration}
	dir := t.TempDir()
	jopts := Options{JournalDir: dir}
	a, ac := newTestServer(t, jopts)
	// The reference session runs dense on a journal-free server.
	_, rc := newTestServer(t, Options{})
	var info, refInfo SessionInfo
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	rc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &refInfo)
	stream := observationStream(t, info, epochs+1, 4, drift)
	want := make([]string, epochs+1)
	for e := 0; e <= epochs; e++ {
		var ref ObserveResponse
		rc.do("POST", "/v1/sessions/"+refInfo.ID+"/observe",
			ObserveRequest{Routing: stream[e]}, http.StatusOK, &ref)
		want[e] = decisionJSON(t, &ref)
	}
	for e := 0; e < epochs; e++ {
		var resp ObserveResponse
		if e == 0 {
			ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
				ObserveRequest{Routing: stream[e]}, http.StatusOK, &resp)
		} else {
			ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
				ObserveRequest{Epoch: e, RoutingDelta: wireDeltas(t, stream[e-1], stream[e])}, http.StatusOK, &resp)
		}
		if got := decisionJSON(t, &resp); got != want[e] {
			t.Fatalf("epoch %d diverges from dense reference before restart", e)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The journal really holds delta records for the delta epochs.
	kinds := journalKinds(t, filepath.Join(dir, info.ID+".jnl"))
	deltaRecs := 0
	for _, k := range kinds {
		if k == string("observe-delta") {
			deltaRecs++
		}
	}
	if deltaRecs != epochs-1 {
		t.Fatalf("journal kinds %v hold %d observe-delta records, want %d", kinds, deltaRecs, epochs-1)
	}

	b, bc := newTestServer(t, jopts)
	var restored SessionInfo
	bc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &restored)
	if restored.Epochs != epochs {
		t.Fatalf("restored session at epoch %d, want %d", restored.Epochs, epochs)
	}
	if failures := b.metrics.replayFailures.Load(); failures != 0 {
		t.Fatalf("%d replay failures on a delta journal", failures)
	}
	// The replayed base is live: the next epoch can continue as a delta
	// and still matches the dense reference byte for byte.
	var resp ObserveResponse
	bc.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Epoch: epochs, RoutingDelta: wireDeltas(t, stream[epochs-1], stream[epochs])}, http.StatusOK, &resp)
	if got := decisionJSON(t, &resp); got != want[epochs] {
		t.Fatalf("post-restart delta epoch diverges:\n got: %s\nwant: %s", got, want[epochs])
	}
}

// TestJournalDeltaTornTailRecovers: a crash tearing an observe-delta
// record off mid-append must not let the half-applied delta corrupt the
// retained base — replay recovers the last acknowledged epoch and deltas
// continue from there.
func TestJournalDeltaTornTailRecovers(t *testing.T) {
	dir := t.TempDir()
	jopts := Options{JournalDir: dir}
	a, ac := newTestServer(t, jopts)
	_, rc := newTestServer(t, Options{})
	var info, refInfo SessionInfo
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	rc.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &refInfo)
	stream := observationStream(t, info, 3, 4, trace.DriftConfig{Model: trace.DriftMigration})
	want := make([]string, 3)
	for e := 0; e < 3; e++ {
		var ref ObserveResponse
		rc.do("POST", "/v1/sessions/"+refInfo.ID+"/observe",
			ObserveRequest{Routing: stream[e]}, http.StatusOK, &ref)
		want[e] = decisionJSON(t, &ref)
	}
	ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Routing: stream[0]}, http.StatusOK, nil)
	ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Epoch: 1, RoutingDelta: wireDeltas(t, stream[0], stream[1])}, http.StatusOK, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The crash: half an observe-delta line with no decision after it.
	path := filepath.Join(dir, info.ID+".jnl")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(f, `{"n":6,"k":"observe-delta","p":{"epoch":2,"del`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, bc := newTestServer(t, jopts)
	var restored SessionInfo
	bc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &restored)
	if restored.Epochs != 2 {
		t.Fatalf("restored session at epoch %d, want 2", restored.Epochs)
	}
	// Epoch 2 as a delta against the last acknowledged observation: if the
	// torn delta had been applied to the retained base this would produce
	// the wrong matrices and diverge (or 409).
	var resp ObserveResponse
	bc.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Epoch: 2, RoutingDelta: wireDeltas(t, stream[1], stream[2])}, http.StatusOK, &resp)
	if got := decisionJSON(t, &resp); got != want[2] {
		t.Fatalf("post-torn-tail delta epoch diverges:\n got: %s\nwant: %s", got, want[2])
	}
}

// TestJournalDenseDeltaCompression: on a stationary fleet the server
// journals dense posts as sparse deltas (size-gated), writes a dense
// baseline at each compaction so post-compaction deltas replay, and the
// restarted session byte-compares clean — the journal-bytes half of the
// delta-ingest tentpole.
func TestJournalDenseDeltaCompression(t *testing.T) {
	const epochs = 5
	dir := t.TempDir()
	jopts := Options{JournalDir: dir, SnapshotEvery: 2}
	a, ac := newTestServer(t, jopts)
	var info SessionInfo
	ac.do("POST", "/v1/sessions", quickSpec("warm"), http.StatusCreated, &info)
	base := observationStream(t, info, 1, 4, trace.DriftConfig{Model: trace.DriftNone})
	stream := stationaryStream(t, base[0], epochs+1)
	for e := 0; e < epochs; e++ {
		ac.do("POST", "/v1/sessions/"+info.ID+"/observe",
			ObserveRequest{Routing: stream[e]}, http.StatusOK, nil)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// SnapshotEvery=2 and 5 epochs: the last compaction ran at epoch 4, so
	// the journal is [open, state, baseline] plus epoch 4's pair — and the
	// epoch-4 observation, a one-token move against the baseline, must
	// have been journaled sparse.
	kinds := journalKinds(t, filepath.Join(dir, info.ID+".jnl"))
	wantKinds := []string{"open", "state", "baseline", "observe-delta", "decision"}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("journal kinds %v, want %v", kinds, wantKinds)
	}
	for i := range kinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("journal kinds %v, want %v", kinds, wantKinds)
		}
	}

	b, bc := newTestServer(t, jopts)
	var restored SessionInfo
	bc.do("GET", "/v1/sessions/"+info.ID, nil, http.StatusOK, &restored)
	if restored.Epochs != epochs {
		t.Fatalf("restored session at epoch %d, want %d", restored.Epochs, epochs)
	}
	if failures := b.metrics.replayFailures.Load(); failures != 0 {
		t.Fatalf("%d replay failures on a delta-compressed journal", failures)
	}
	// The restored base accepts the next epoch as a client delta.
	bc.do("POST", "/v1/sessions/"+info.ID+"/observe",
		ObserveRequest{Epoch: epochs, RoutingDelta: wireDeltas(t, stream[epochs-1], stream[epochs])}, http.StatusOK, nil)
}
