package model

import (
	"math"
	"testing"
)

// TestTable2ParameterCounts checks the catalog against the paper's Table 2
// (params and activated params in billions) within 1% — the residual being
// norms and biases below the cost model's resolution.
func TestTable2ParameterCounts(t *testing.T) {
	cases := []struct {
		cfg             *Config
		params, activs  float64 // billions
		experts, topk   int
		expectedCapacty int
	}{
		{Mixtral8x7B, 46.70, 12.88, 8, 2, 2},
		{Mixtral8x22B, 45.46, 12.86, 8, 2, 2},
		{Qwen8x7B, 46.69, 12.88, 8, 2, 2},
		{Mixtral8x7BE16, 35.09, 9.73, 16, 4, 4},
		{Mixtral8x22BE16, 35.46, 10.09, 16, 4, 4},
		{Qwen8x7BE16, 35.09, 9.73, 16, 4, 4},
	}
	for _, c := range cases {
		gotP := float64(c.cfg.TotalParams()) / 1e9
		if math.Abs(gotP-c.params)/c.params > 0.01 {
			t.Errorf("%s: total params %.2fB, want %.2fB", c.cfg.Name, gotP, c.params)
		}
		gotA := float64(c.cfg.ActivatedParams()) / 1e9
		if math.Abs(gotA-c.activs)/c.activs > 0.01 {
			t.Errorf("%s: activated params %.2fB, want %.2fB", c.cfg.Name, gotA, c.activs)
		}
		if c.cfg.Experts != c.experts || c.cfg.TopK != c.topk {
			t.Errorf("%s: E&K = %d&%d, want %d&%d", c.cfg.Name, c.cfg.Experts, c.cfg.TopK, c.experts, c.topk)
		}
		if c.cfg.ExpertCapacity != c.expectedCapacty {
			t.Errorf("%s: capacity %d, want %d", c.cfg.Name, c.cfg.ExpertCapacity, c.expectedCapacty)
		}
	}
}

// TestE16VariantsPreserveLayerCost checks the paper's construction: the
// e16k4 variants keep per-layer parameters and per-token compute unchanged.
func TestE16VariantsPreserveLayerCost(t *testing.T) {
	pairs := [][2]*Config{
		{Mixtral8x7B, Mixtral8x7BE16},
		{Mixtral8x22B, Mixtral8x22BE16},
		{Qwen8x7B, Qwen8x7BE16},
	}
	for _, p := range pairs {
		base, e16 := p[0], p[1]
		if base.LayerParams() != e16.LayerParams()-e16.RouterParams()+base.RouterParams() {
			// Router grows with E; everything else must match exactly.
			t.Errorf("%s vs %s: per-layer params differ beyond the router", base.Name, e16.Name)
		}
		baseCompute := float64(base.TopK) * base.ExpertFLOPsPerToken()
		e16Compute := float64(e16.TopK) * e16.ExpertFLOPsPerToken()
		if math.Abs(baseCompute-e16Compute)/baseCompute > 1e-9 {
			t.Errorf("%s vs %s: per-token expert FLOPs differ (%.3g vs %.3g)",
				base.Name, e16.Name, baseCompute, e16Compute)
		}
	}
}

func TestExpertAccounting(t *testing.T) {
	c := Mixtral8x7B
	wantExpert := int64(3 * 4096 * 14336)
	if got := c.ExpertParams(); got != wantExpert {
		t.Errorf("ExpertParams = %d, want %d", got, wantExpert)
	}
	if got := c.ExpertBytes(); got != wantExpert*2 {
		t.Errorf("ExpertBytes = %d, want %d", got, wantExpert*2)
	}
	if got := c.ExpertFLOPsPerToken(); got != 6*4096*14336 {
		t.Errorf("ExpertFLOPsPerToken = %g, want %g", got, float64(6*4096*14336))
	}
	if got := c.TokenBytes(); got != 8192 {
		t.Errorf("TokenBytes = %d, want 8192", got)
	}
}

func TestAttentionFLOPsGrowWithContext(t *testing.T) {
	c := Mixtral8x7B
	if c.AttentionFLOPsPerToken(8192) <= c.AttentionFLOPsPerToken(1024) {
		t.Error("attention FLOPs must grow with context length")
	}
	projOnly := 2 * float64(c.AttentionParams())
	if got := c.AttentionFLOPsPerToken(0); got != projOnly {
		t.Errorf("zero-context attention FLOPs = %g, want projections only %g", got, projOnly)
	}
}

func TestByNameAndNames(t *testing.T) {
	c, err := ByName("mixtral-8x7b-e8k2")
	if err != nil || c != Mixtral8x7B {
		t.Fatalf("ByName returned %v, %v", c, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName should fail for unknown model")
	}
	names := Names()
	// 6 paper configurations plus the synthetic large-E scale series.
	if len(names) != 10 {
		t.Fatalf("Names() has %d entries, want 10", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	// All() stays the paper's Figure 8 series: the synthetic scale models
	// must not leak into the paper-artifact sweeps.
	if len(All()) != 6 {
		t.Errorf("All() has %d entries, want 6", len(All()))
	}
	for _, c := range []*Config{SyntheticE512, SyntheticE2048, SyntheticE4096, SyntheticE16384} {
		got, err := ByName(c.Name)
		if err != nil || got != c {
			t.Errorf("ByName(%q) returned %v, %v", c.Name, got, err)
		}
		if c.Experts%c.ExpertCapacity != 0 {
			t.Errorf("%s: expert count %d not divisible by capacity %d", c.Name, c.Experts, c.ExpertCapacity)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "x", Layers: 0, HiddenDim: 1, Intermediate: 1, Heads: 1, KVHeads: 1, Experts: 1, TopK: 1, ExpertCapacity: 1},
		{Name: "x", Layers: 1, HiddenDim: 1, Intermediate: 1, Heads: 1, KVHeads: 1, Experts: 2, TopK: 3, ExpertCapacity: 1},
		{Name: "x", Layers: 1, HiddenDim: 1, Intermediate: 1, Heads: 3, KVHeads: 2, Experts: 2, TopK: 1, ExpertCapacity: 1},
		{Name: "x", Layers: 1, HiddenDim: 1, Intermediate: 1, Heads: 2, KVHeads: 2, Experts: 2, TopK: 1, ExpertCapacity: 0},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid config", i)
		}
	}
	if err := Mixtral8x7B.Validate(); err != nil {
		t.Errorf("preset failed validation: %v", err)
	}
}
