// Package model catalogs the MoE model architectures evaluated in the
// paper (Table 2) and provides parameter-count and FLOPs accounting used by
// the cost model and the memory planner.
//
// All six evaluated configurations are reproduced: Mixtral-8x7B,
// Mixtral-8x22B and Qwen-8x7B, each in the standard e8k2 form (8 experts,
// top-2) and the expanded e16k4 form (16 experts, top-4, same parameter
// count and compute per layer).
package model

import (
	"fmt"
	"sort"
)

// BytesPerParam is the storage size of one bf16 parameter.
const BytesPerParam = 2

// Config describes one MoE transformer architecture.
type Config struct {
	Name string

	// Transformer shape.
	Layers       int // number of transformer layers
	HiddenDim    int // H
	Intermediate int // H' (per-expert SwiGLU intermediate dimension)
	Heads        int // attention query heads
	KVHeads      int // grouped-query KV heads
	HeadDim      int // per-head dimension
	VocabSize    int

	// MoE shape.
	Experts int // E, experts per MoE layer
	TopK    int // K, experts activated per token

	// ExpertCapacity is C: the number of complete experts each device
	// restores under FSEP (Sec. 5.1: C=2 for e8k2, C=4 for e16k4).
	ExpertCapacity int
}

// Validate reports whether the configuration is internally consistent.
func (c *Config) Validate() error {
	switch {
	case c.Layers <= 0 || c.HiddenDim <= 0 || c.Intermediate <= 0:
		return fmt.Errorf("model %s: non-positive transformer dimensions", c.Name)
	case c.Experts <= 0 || c.TopK <= 0:
		return fmt.Errorf("model %s: non-positive MoE dimensions", c.Name)
	case c.TopK > c.Experts:
		return fmt.Errorf("model %s: top-k %d exceeds expert count %d", c.Name, c.TopK, c.Experts)
	case c.Heads <= 0 || c.KVHeads <= 0 || c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %s: heads %d not divisible by kv heads %d", c.Name, c.Heads, c.KVHeads)
	case c.ExpertCapacity <= 0:
		return fmt.Errorf("model %s: non-positive expert capacity", c.Name)
	}
	return nil
}

// ExpertParams returns the parameter count of one expert: a SwiGLU MLP with
// gate, up and down projections (3 * H * H').
func (c *Config) ExpertParams() int64 {
	return 3 * int64(c.HiddenDim) * int64(c.Intermediate)
}

// AttentionParams returns the parameter count of one attention block under
// grouped-query attention: Q and O projections of H x (heads*headDim) plus
// K and V projections of H x (kvHeads*headDim).
func (c *Config) AttentionParams() int64 {
	h := int64(c.HiddenDim)
	qo := 2 * h * int64(c.Heads) * int64(c.HeadDim)
	kv := 2 * h * int64(c.KVHeads) * int64(c.HeadDim)
	return qo + kv
}

// RouterParams returns the gating-network parameter count of one MoE layer.
func (c *Config) RouterParams() int64 {
	return int64(c.HiddenDim) * int64(c.Experts)
}

// LayerParams returns the parameter count of one transformer layer
// (attention + router + all experts; norms are negligible and ignored).
func (c *Config) LayerParams() int64 {
	return c.AttentionParams() + c.RouterParams() + int64(c.Experts)*c.ExpertParams()
}

// NonExpertLayerParams returns Ψ_other: the per-layer parameters excluding
// the experts (Sec. 3.1 memory analysis).
func (c *Config) NonExpertLayerParams() int64 {
	return c.AttentionParams() + c.RouterParams()
}

// EmbeddingParams returns the input + output embedding parameter count.
func (c *Config) EmbeddingParams() int64 {
	return 2 * int64(c.VocabSize) * int64(c.HiddenDim)
}

// TotalParams returns Ψ_all: the full model parameter count.
func (c *Config) TotalParams() int64 {
	return int64(c.Layers)*c.LayerParams() + c.EmbeddingParams()
}

// ActivatedParams returns the parameters touched per token (attention +
// router + top-K experts per layer, plus embeddings).
func (c *Config) ActivatedParams() int64 {
	perLayer := c.AttentionParams() + c.RouterParams() + int64(c.TopK)*c.ExpertParams()
	return int64(c.Layers)*perLayer + c.EmbeddingParams()
}

// ExpertBytes returns Ψ_expert in bytes (bf16).
func (c *Config) ExpertBytes() int64 { return c.ExpertParams() * BytesPerParam }

// ExpertFLOPsPerToken returns the forward FLOPs of one expert on one token:
// 6*H*H' for a SwiGLU MLP (three H x H' GEMMs, 2 FLOPs per MAC), as used in
// the paper's overlap analysis (Sec. 3.1).
func (c *Config) ExpertFLOPsPerToken() float64 {
	return 6 * float64(c.HiddenDim) * float64(c.Intermediate)
}

// AttentionFLOPsPerToken returns the forward FLOPs of the attention block
// on one token at the given context length: 2 FLOPs per parameter for the
// projections plus 4*H*ctx for the score/value contractions.
func (c *Config) AttentionFLOPsPerToken(contextLen int) float64 {
	return 2*float64(c.AttentionParams()) + 4*float64(c.HiddenDim)*float64(contextLen)
}

// TokenBytes returns the size of one token's hidden state in bytes (the
// All-to-All payload per token per hop).
func (c *Config) TokenBytes() int64 { return int64(c.HiddenDim) * BytesPerParam }

// String renders a Table-2 style row.
func (c *Config) String() string {
	return fmt.Sprintf("%s: %d layers, %.2fB params, %.2fB activated, E&K=%d&%d",
		c.Name, c.Layers, float64(c.TotalParams())/1e9, float64(c.ActivatedParams())/1e9,
		c.Experts, c.TopK)
}

// catalog holds the evaluated configurations keyed by canonical name.
var catalog = map[string]*Config{}

func register(c *Config) *Config {
	if err := c.Validate(); err != nil {
		panic(err)
	}
	catalog[c.Name] = c
	return c
}

// Preset configurations (Table 2). The e16k4 variants double the expert
// count and top-k while halving the per-expert intermediate dimension,
// keeping parameters and compute per layer unchanged; layer counts follow
// the paper's memory-constrained reductions.
var (
	Mixtral8x7B = register(&Config{
		Name: "mixtral-8x7b-e8k2", Layers: 32, HiddenDim: 4096, Intermediate: 14336,
		Heads: 32, KVHeads: 8, HeadDim: 128, VocabSize: 32000,
		Experts: 8, TopK: 2, ExpertCapacity: 2,
	})
	Mixtral8x7BE16 = register(&Config{
		Name: "mixtral-8x7b-e16k4", Layers: 24, HiddenDim: 4096, Intermediate: 7168,
		Heads: 32, KVHeads: 8, HeadDim: 128, VocabSize: 32000,
		Experts: 16, TopK: 4, ExpertCapacity: 4,
	})
	Mixtral8x22B = register(&Config{
		Name: "mixtral-8x22b-e8k2", Layers: 18, HiddenDim: 6144, Intermediate: 16384,
		Heads: 48, KVHeads: 8, HeadDim: 128, VocabSize: 32000,
		Experts: 8, TopK: 2, ExpertCapacity: 2,
	})
	Mixtral8x22BE16 = register(&Config{
		Name: "mixtral-8x22b-e16k4", Layers: 14, HiddenDim: 6144, Intermediate: 8192,
		Heads: 48, KVHeads: 8, HeadDim: 128, VocabSize: 32000,
		Experts: 16, TopK: 4, ExpertCapacity: 4,
	})
	// Qwen-8x7B is the paper's transformation of Mixtral-8x7B into the
	// Qwen architecture; dimensions match Mixtral-8x7B (46.69B vs 46.70B
	// in Table 2 — the 0.01B delta comes from attention biases, which are
	// below the resolution of this cost model and ignored).
	Qwen8x7B = register(&Config{
		Name: "qwen-8x7b-e8k2", Layers: 32, HiddenDim: 4096, Intermediate: 14336,
		Heads: 32, KVHeads: 8, HeadDim: 128, VocabSize: 32000,
		Experts: 8, TopK: 2, ExpertCapacity: 2,
	})
	Qwen8x7BE16 = register(&Config{
		Name: "qwen-8x7b-e16k4", Layers: 24, HiddenDim: 4096, Intermediate: 7168,
		Heads: 32, KVHeads: 8, HeadDim: 128, VocabSize: 32000,
		Experts: 16, TopK: 4, ExpertCapacity: 4,
	})

	// Synthetic large-E configurations for the production-scale online
	// re-layout study (the `scale` experiment): fine-grained small experts
	// in the regime of Least-Loaded Expert Parallelism-style deployments,
	// where the expert pool rivals the device count and per-expert state
	// is small enough that re-layout is a placement problem, not a
	// parameter-traffic problem. EP group sizes (E/C) are chosen so static
	// EP tiles the 128-, 512- and 1024-GPU clusters exactly. At these
	// shapes N*C == E, so every expert holds exactly one replica and the
	// planner's lever is placement alone — which is the lever that matters
	// at this granularity: wider experts or more capacity mostly add
	// policy-independent parameter traffic that buries the routing signal.
	SyntheticE512 = register(&Config{
		Name: "synthetic-e512", Layers: 8, HiddenDim: 1024, Intermediate: 2048,
		Heads: 16, KVHeads: 4, HeadDim: 64, VocabSize: 32000,
		Experts: 512, TopK: 2, ExpertCapacity: 4,
	})
	SyntheticE2048 = register(&Config{
		Name: "synthetic-e2048", Layers: 64, HiddenDim: 1024, Intermediate: 2048,
		Heads: 16, KVHeads: 4, HeadDim: 64, VocabSize: 32000,
		Experts: 2048, TopK: 2, ExpertCapacity: 4,
	})
	SyntheticE4096 = register(&Config{
		Name: "synthetic-e4096", Layers: 64, HiddenDim: 1024, Intermediate: 2048,
		Heads: 16, KVHeads: 4, HeadDim: 64, VocabSize: 32000,
		Experts: 4096, TopK: 2, ExpertCapacity: 4,
	})
	// The N=4096/E=16384 frontier cell: a 16k-expert pool on a 4096-GPU
	// cluster (512 nodes x 8). A single dense routing matrix at this shape
	// is 4096x16384 cells, so the layer count is kept minimal — the cell
	// exists to measure the planner's amortized drift-delta path where the
	// full re-score is hundreds of milliseconds per layer, not to model a
	// deep network.
	SyntheticE16384 = register(&Config{
		Name: "synthetic-e16384", Layers: 2, HiddenDim: 1024, Intermediate: 2048,
		Heads: 16, KVHeads: 4, HeadDim: 64, VocabSize: 32000,
		Experts: 16384, TopK: 2, ExpertCapacity: 4,
	})
)

// ByName returns the preset configuration with the given canonical name.
func ByName(name string) (*Config, error) {
	c, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown configuration %q (have %v)", name, Names())
	}
	return c, nil
}

// Names returns the canonical names of all preset configurations, sorted.
func Names() []string {
	names := make([]string, 0, len(catalog))
	for n := range catalog {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns the preset configurations in the order used by the paper's
// Figure 8: the e8k2 series followed by the e16k4 series.
func All() []*Config {
	return []*Config{
		Mixtral8x7B, Mixtral8x22B, Qwen8x7B,
		Mixtral8x7BE16, Mixtral8x22BE16, Qwen8x7BE16,
	}
}
