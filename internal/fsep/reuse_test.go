package fsep

import "testing"

// TestUnshardIntoMatchesUnshard: the pooled zero-allocation path must
// restore exactly the same tensors as the allocating path.
func TestUnshardIntoMatchesUnshard(t *testing.T) {
	experts := makeExperts(5, 7, 9, 11)
	s, err := Shard(experts, 4)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{4, 0, 2}
	want, err := s.Unshard(ids)
	if err != nil {
		t.Fatal(err)
	}
	sc := s.GetScratch()
	got, err := s.UnshardInto(sc, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("restored %d experts, want %d", len(got), len(want))
	}
	for i := range got {
		if !expertsEqual(got[i], want[i]) {
			t.Errorf("expert %d differs between UnshardInto and Unshard", ids[i])
		}
		if !expertsEqual(got[i], experts[ids[i]]) {
			t.Errorf("expert %d differs from the original", ids[i])
		}
	}
	s.PutScratch(sc)
}

// TestUnshardIntoScratchReuse: repeated restores through one scratch must
// stay correct as the restored set changes size and content.
func TestUnshardIntoScratchReuse(t *testing.T) {
	experts := makeExperts(6, 8, 4, 5)
	s, err := Shard(experts, 3)
	if err != nil {
		t.Fatal(err)
	}
	sc := s.GetScratch()
	defer s.PutScratch(sc)
	for _, ids := range [][]int{{0, 1, 2, 3}, {5}, {4, 2}, {1, 1, 1}} {
		got, err := s.UnshardInto(sc, ids)
		if err != nil {
			t.Fatal(err)
		}
		for i, j := range ids {
			if !expertsEqual(got[i], experts[j]) {
				t.Fatalf("ids %v: restored expert %d differs from original", ids, j)
			}
		}
	}
	if _, err := s.UnshardInto(sc, []int{9}); err == nil {
		t.Error("out-of-range expert accepted")
	}
}

// TestReshardIntoReuse: refilling a previous receive buffer must equal a
// fresh Reshard, including the zeroing of stale accumulations.
func TestReshardIntoReuse(t *testing.T) {
	experts := makeExperts(3, 4, 6, 17)
	s, err := Shard(experts, 4)
	if err != nil {
		t.Fatal(err)
	}
	grad := make([]float32, s.Meta.FlatLen)
	for i := range grad {
		grad[i] = float32(i%13) - 6
	}
	contribs := []GradContribution{
		{Device: 0, Expert: 1, Grad: grad},
		{Device: 2, Expert: 1, Grad: grad},
		{Device: 3, Expert: 0, Grad: grad},
	}
	want, err := s.Reshard(contribs)
	if err != nil {
		t.Fatal(err)
	}
	// Pollute then reuse: stale sums must not leak into the refill.
	buf, err := s.Reshard([]GradContribution{{Device: 1, Expert: 2, Grad: grad}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReshardInto(buf, contribs)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0][0][0] != &buf[0][0][0] {
		t.Error("ReshardInto did not reuse the provided buffer")
	}
	for d := range want {
		for j := range want[d] {
			for k := range want[d][j] {
				if got[d][j][k] != want[d][j][k] {
					t.Fatalf("device %d expert %d elem %d: %g, want %g",
						d, j, k, got[d][j][k], want[d][j][k])
				}
			}
		}
	}
}
