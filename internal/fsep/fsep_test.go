package fsep

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// makeExperts builds e experts of identical shape with deterministic
// pseudo-random contents.
func makeExperts(e, rows, cols int, seed int64) []Expert {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Expert, e)
	for i := range out {
		gate := NewTensor(rows, cols)
		up := NewTensor(rows, cols)
		down := NewTensor(cols, rows)
		for _, tns := range []Tensor{gate, up, down} {
			for k := range tns.Data {
				tns.Data[k] = rng.Float32()*2 - 1
			}
		}
		out[i] = Expert{Tensors: []Tensor{gate, up, down}}
	}
	return out
}

func expertsEqual(a, b Expert) bool {
	if len(a.Tensors) != len(b.Tensors) {
		return false
	}
	for i := range a.Tensors {
		ta, tb := a.Tensors[i], b.Tensors[i]
		if ta.Rows != tb.Rows || ta.Cols != tb.Cols || len(ta.Data) != len(tb.Data) {
			return false
		}
		for k := range ta.Data {
			if ta.Data[k] != tb.Data[k] {
				return false
			}
		}
	}
	return true
}

// TestShardUnshardIdentity: restoring any expert after sharding yields the
// original parameters bit-for-bit (Fig. 4a round trip), for every device
// count including non-divisible chunk sizes.
func TestShardUnshardIdentity(t *testing.T) {
	experts := makeExperts(4, 6, 10, 1)
	for _, n := range []int{1, 2, 3, 4, 7, 32} {
		s, err := Shard(experts, n)
		if err != nil {
			t.Fatalf("Shard(n=%d): %v", n, err)
		}
		restored, err := s.Unshard([]int{0, 1, 2, 3})
		if err != nil {
			t.Fatalf("Unshard(n=%d): %v", n, err)
		}
		for j := range experts {
			if !expertsEqual(experts[j], restored[j]) {
				t.Errorf("n=%d: expert %d not restored identically", n, j)
			}
		}
	}
}

// TestShardUnshardProperty: identity holds for arbitrary shapes and device
// counts (property-based).
func TestShardUnshardProperty(t *testing.T) {
	f := func(rowsRaw, colsRaw, nRaw uint8, seed int64) bool {
		rows := int(rowsRaw%7) + 1
		cols := int(colsRaw%9) + 1
		n := int(nRaw%12) + 1
		experts := makeExperts(3, rows, cols, seed)
		s, err := Shard(experts, n)
		if err != nil {
			return false
		}
		restored, err := s.Unshard([]int{2, 0})
		if err != nil {
			return false
		}
		return expertsEqual(restored[0], experts[2]) && expertsEqual(restored[1], experts[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestReshardReducesGradients: chunked, reduced gradients reassemble to the
// element-wise sum of all contributions (Fig. 4b).
func TestReshardReducesGradients(t *testing.T) {
	experts := makeExperts(2, 4, 5, 3)
	n := 4
	s, err := Shard(experts, n)
	if err != nil {
		t.Fatal(err)
	}
	flatLen := s.Meta.FlatLen
	rng := rand.New(rand.NewSource(9))
	grad := func() []float32 {
		g := make([]float32, flatLen)
		for i := range g {
			g[i] = rng.Float32()
		}
		return g
	}
	g0a, g0b, g1a := grad(), grad(), grad()
	contribs := []GradContribution{
		{Device: 0, Expert: 0, Grad: g0a},
		{Device: 2, Expert: 0, Grad: g0b},
		{Device: 3, Expert: 1, Grad: g1a},
	}
	chunks, err := s.Reshard(contribs)
	if err != nil {
		t.Fatal(err)
	}
	// Reassemble expert 0's reduced gradient from the chunks.
	reassemble := func(expert int) []float32 {
		out := make([]float32, 0, n*s.ChunkLen)
		for d := 0; d < n; d++ {
			out = append(out, chunks[d][expert]...)
		}
		return out[:flatLen]
	}
	got0 := reassemble(0)
	for i := range got0 {
		want := g0a[i] + g0b[i]
		if math.Abs(float64(got0[i]-want)) > 1e-5 {
			t.Fatalf("expert 0 grad[%d] = %g, want %g", i, got0[i], want)
		}
	}
	got1 := reassemble(1)
	for i := range got1 {
		if got1[i] != g1a[i] {
			t.Fatalf("expert 1 grad[%d] = %g, want %g", i, got1[i], g1a[i])
		}
	}
}

// TestReshardPropertySumPreserved: the total sum of reduced chunk gradients
// equals the total sum of contributions (conservation, property-based).
func TestReshardPropertySumPreserved(t *testing.T) {
	experts := makeExperts(3, 3, 4, 5)
	s, err := Shard(experts, 5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seeds []int64) bool {
		if len(seeds) > 6 {
			seeds = seeds[:6]
		}
		var contribs []GradContribution
		var want float64
		for i, seed := range seeds {
			rng := rand.New(rand.NewSource(seed))
			g := make([]float32, s.Meta.FlatLen)
			for k := range g {
				g[k] = rng.Float32()
				want += float64(g[k])
			}
			contribs = append(contribs, GradContribution{Device: i % s.N, Expert: i % s.E, Grad: g})
		}
		chunks, err := s.Reshard(contribs)
		if err != nil {
			return false
		}
		var got float64
		for d := range chunks {
			for j := range chunks[d] {
				for _, v := range chunks[d][j] {
					got += float64(v)
				}
			}
		}
		return math.Abs(got-want) < 1e-3*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestUnshardVolumesMatchFormula: the per-device send volume of a balanced
// layout equals C*(N-1)/N*Ψ_expert (Sec. 3.1), and reshard volumes are the
// exact transpose of unshard volumes.
func TestUnshardVolumesMatchFormula(t *testing.T) {
	experts := makeExperts(4, 8, 8, 7)
	n, c := 4, 2
	s, err := Shard(experts, n)
	if err != nil {
		t.Fatal(err)
	}
	layout := Layout{Restored: [][]int{{0, 1}, {2, 3}, {0, 2}, {1, 3}}}
	if err := s.Validate(layout, c); err != nil {
		t.Fatal(err)
	}
	unshard := s.UnshardVolumes(layout, 4)
	reshard := s.ReshardVolumes(layout, 4)
	chunkBytes := float64(s.ChunkLen) * 4
	psi := chunkBytes * float64(n) // padded expert size
	wantSend := float64(c) * float64(n-1) / float64(n) * psi
	for d := 0; d < n; d++ {
		var send float64
		for k := 0; k < n; k++ {
			send += unshard.Bytes[d][k]
		}
		if math.Abs(send-wantSend) > 1e-9 {
			t.Errorf("device %d unshard send %g, want %g", d, send, wantSend)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if unshard.Bytes[i][j] != reshard.Bytes[j][i] {
				t.Errorf("reshard is not the transpose of unshard at (%d,%d)", i, j)
			}
		}
	}
}

func TestLayoutValidation(t *testing.T) {
	experts := makeExperts(3, 2, 2, 1)
	s, err := Shard(experts, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		layout Layout
		ok     bool
	}{
		{Layout{Restored: [][]int{{0, 1}, {2}}}, true},
		{Layout{Restored: [][]int{{0, 1, 2}, {0}}}, false}, // over capacity
		{Layout{Restored: [][]int{{0}, {1}}}, false},       // expert 2 uncovered
		{Layout{Restored: [][]int{{0, 5}, {1, 2}}}, false}, // unknown expert
		{Layout{Restored: [][]int{{0}}}, false},            // wrong device count
	}
	for i, c := range cases {
		err := s.Validate(c.layout, 2)
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestApplyChunkUpdate(t *testing.T) {
	experts := makeExperts(1, 2, 3, 4)
	s, err := Shard(experts, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Gradient of all ones -> update shifts every element by -lr.
	ones := make([]float32, s.Meta.FlatLen)
	for i := range ones {
		ones[i] = 1
	}
	chunks, err := s.Reshard([]GradContribution{{Device: 0, Expert: 0, Grad: ones}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ApplyChunkUpdate(chunks, 0.5); err != nil {
		t.Fatal(err)
	}
	restored, err := s.Unshard([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	orig := experts[0]
	for ti := range orig.Tensors {
		for k := range orig.Tensors[ti].Data {
			want := orig.Tensors[ti].Data[k] - 0.5
			if got := restored[0].Tensors[ti].Data[k]; math.Abs(float64(got-want)) > 1e-6 {
				t.Fatalf("tensor %d elem %d: %g, want %g", ti, k, got, want)
			}
		}
	}
}

func TestShardErrors(t *testing.T) {
	if _, err := Shard(nil, 4); err == nil {
		t.Error("Shard accepted empty expert list")
	}
	if _, err := Shard(makeExperts(1, 2, 2, 1), 0); err == nil {
		t.Error("Shard accepted zero devices")
	}
	mixed := makeExperts(2, 2, 2, 1)
	mixed[1] = makeExperts(1, 3, 3, 1)[0]
	if _, err := Shard(mixed, 2); err == nil {
		t.Error("Shard accepted shape-mismatched experts")
	}
}

func TestReshardErrors(t *testing.T) {
	s, err := Shard(makeExperts(2, 2, 2, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := []GradContribution{
		{Device: 0, Expert: 9, Grad: make([]float32, s.Meta.FlatLen)},
		{Device: 9, Expert: 0, Grad: make([]float32, s.Meta.FlatLen)},
		{Device: 0, Expert: 0, Grad: make([]float32, 1)},
	}
	for i, c := range bad {
		if _, err := s.Reshard([]GradContribution{c}); err == nil {
			t.Errorf("case %d: Reshard accepted invalid contribution", i)
		}
	}
	if _, err := s.Unshard([]int{9}); err == nil {
		t.Error("Unshard accepted unknown expert")
	}
}
