// Package fsep implements Fully Sharded Expert Parallelism — the paper's
// core parallel paradigm (Sec. 3.1, Fig. 4) — as an executable data plane
// over real tensors plus the communication-volume and memory formulas used
// by the simulator.
//
// Every expert's parameters are flattened and divided into N equal chunks;
// device d keeps chunk d of every expert ("total_experts" storage). During
// training each device restores the complete parameters of an arbitrary
// set of C experts through All-to-All (unshard), computes, and re-partitions
// gradients back to chunk owners with a reducing All-to-All (reshard). The
// shape metadata recorded at shard time ("real_experts" meta-information)
// lets restored flat buffers be viewed as the original tensors.
package fsep

import (
	"fmt"
	"sync"

	"laermoe/internal/comm"
)

// Tensor is a dense row-major matrix of float32 values — a stand-in for
// one weight matrix of an expert (gate/up/down projections of a SwiGLU MLP).
type Tensor struct {
	Rows, Cols int
	Data       []float32
}

// NewTensor allocates a zeroed tensor.
func NewTensor(rows, cols int) Tensor {
	return Tensor{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Clone deep-copies the tensor.
func (t Tensor) Clone() Tensor {
	return Tensor{Rows: t.Rows, Cols: t.Cols, Data: append([]float32(nil), t.Data...)}
}

// Expert is the parameter set of one expert: an ordered list of tensors.
type Expert struct {
	Tensors []Tensor
}

// FlatLen returns the total element count of the expert.
func (e Expert) FlatLen() int {
	n := 0
	for _, t := range e.Tensors {
		n += len(t.Data)
	}
	return n
}

// Meta is the "real_experts" shape metadata recorded during shard: the
// tensor shapes needed to view a restored flat buffer as typed parameters.
// FSEP must keep this separate from the flattened storage because unshard
// restores only C of the E experts (Sec. 3.1). UnshardInto applies it to
// reinterpret gathered chunk buffers as tensors.
type Meta struct {
	Shapes  [][2]int
	FlatLen int
}

// Sharded is the "chunked_experts" state: for each device, one chunk of
// every expert. Chunks are zero-padded to equal length so that the shard
// exchange is a perfectly regular All-to-All.
type Sharded struct {
	N, E     int
	ChunkLen int // elements per chunk (padded)
	Meta     Meta
	// chunks[device][expert] has length ChunkLen.
	chunks [][][]float32

	// scratch recycles Unshard receive buffers (see GetScratch).
	scratch sync.Pool
}

// Shard flattens and partitions the experts across n devices (Fig. 4a,
// "Flatten & Divide"). All experts must share the same tensor shapes.
func Shard(experts []Expert, n int) (*Sharded, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fsep: device count %d must be positive", n)
	}
	if len(experts) == 0 {
		return nil, fmt.Errorf("fsep: no experts to shard")
	}
	meta := Meta{FlatLen: experts[0].FlatLen()}
	for _, t := range experts[0].Tensors {
		meta.Shapes = append(meta.Shapes, [2]int{t.Rows, t.Cols})
	}
	for i, e := range experts[1:] {
		if e.FlatLen() != meta.FlatLen || len(e.Tensors) != len(meta.Shapes) {
			return nil, fmt.Errorf("fsep: expert %d shape differs from expert 0", i+1)
		}
	}
	chunkLen := (meta.FlatLen + n - 1) / n
	s := &Sharded{N: n, E: len(experts), ChunkLen: chunkLen, Meta: meta}
	s.chunks = make([][][]float32, n)
	for d := 0; d < n; d++ {
		// One zero-padded slab per device backs all its expert chunks.
		slab := make([]float32, s.E*chunkLen)
		s.chunks[d] = make([][]float32, s.E)
		for j := 0; j < s.E; j++ {
			s.chunks[d][j] = slab[j*chunkLen : (j+1)*chunkLen : (j+1)*chunkLen]
		}
	}
	// Partition each expert's tensors straight into the chunk slabs,
	// without materializing an intermediate flattened copy.
	for j, e := range experts {
		off := 0
		for _, t := range e.Tensors {
			data := t.Data
			for len(data) > 0 {
				d, cOff := off/chunkLen, off%chunkLen
				m := chunkLen - cOff
				if m > len(data) {
					m = len(data)
				}
				copy(s.chunks[d][j][cOff:], data[:m])
				data = data[m:]
				off += m
			}
		}
	}
	return s, nil
}

// ChunkBytes returns the byte size of one chunk (float32 elements; the
// simulator scales volumes by the training dtype separately).
func (s *Sharded) ChunkBytes() int64 { return int64(s.ChunkLen) * 4 }

// Unshard restores the complete parameters of the requested experts
// (Fig. 4a, All-to-All unshard) for one device and returns the typed view.
// In the real system the chunks arrive over All-to-All; here they are
// gathered from the sharded store, which is semantically identical. The
// returned experts own freshly allocated storage; for the steady-state
// zero-allocation path use UnshardInto with a pooled Scratch.
func (s *Sharded) Unshard(expertIDs []int) ([]Expert, error) {
	return s.UnshardInto(new(Scratch), expertIDs)
}

// Scratch holds the receive buffer and tensor views of one in-flight
// unshard. A zero Scratch is ready for use and grows on demand; in steady
// state UnshardInto performs no allocation at all. Obtain pooled instances
// from GetScratch.
type Scratch struct {
	flat    []float32
	experts []Expert
	tensors []Tensor
}

// GetScratch returns a reusable Scratch from the store's pool. Return it
// with PutScratch once the experts restored into it are no longer in use.
func (s *Sharded) GetScratch() *Scratch {
	if sc, ok := s.scratch.Get().(*Scratch); ok {
		return sc
	}
	return new(Scratch)
}

// PutScratch recycles a Scratch. The experts previously restored into it
// must no longer be referenced.
func (s *Sharded) PutScratch(sc *Scratch) { s.scratch.Put(sc) }

// UnshardInto restores the requested experts into the scratch's buffers,
// replacing the N*ChunkLen-float allocation per restored expert of the
// plain Unshard with reuse of the scratch's receive buffer. The returned
// experts view sc's storage and are invalidated by the next UnshardInto on
// the same scratch.
func (s *Sharded) UnshardInto(sc *Scratch, expertIDs []int) ([]Expert, error) {
	stride := s.N * s.ChunkLen
	nt := len(s.Meta.Shapes)
	if need := len(expertIDs) * stride; cap(sc.flat) < need {
		sc.flat = make([]float32, need)
	}
	if need := len(expertIDs); cap(sc.experts) < need {
		sc.experts = make([]Expert, need)
	}
	if need := len(expertIDs) * nt; cap(sc.tensors) < need {
		sc.tensors = make([]Tensor, need)
	}
	out := sc.experts[:len(expertIDs)]
	for i, j := range expertIDs {
		if j < 0 || j >= s.E {
			return nil, fmt.Errorf("fsep: expert %d out of range [0,%d)", j, s.E)
		}
		// Gather: one chunk from every device, as over All-to-All.
		base := sc.flat[i*stride : (i+1)*stride]
		for d := 0; d < s.N; d++ {
			copy(base[d*s.ChunkLen:], s.chunks[d][j])
		}
		// View the restored flat buffer per the shard-time metadata.
		tensors := sc.tensors[i*nt : (i+1)*nt : (i+1)*nt]
		off := 0
		for k, sh := range s.Meta.Shapes {
			n := sh[0] * sh[1]
			tensors[k] = Tensor{Rows: sh[0], Cols: sh[1], Data: base[off : off+n]}
			off += n
		}
		out[i] = Expert{Tensors: tensors}
	}
	return out, nil
}

// Layout is the expert re-layout strategy A (Table 1): Restored[d] lists
// the experts device d restores this iteration. Replicas of the same
// expert on different devices are independent entries.
type Layout struct {
	Restored [][]int
}

// Validate checks the layout against the sharded store and capacity C.
func (s *Sharded) Validate(l Layout, capacity int) error {
	if len(l.Restored) != s.N {
		return fmt.Errorf("fsep: layout for %d devices, store has %d", len(l.Restored), s.N)
	}
	counts := make([]int, s.E)
	for d, ids := range l.Restored {
		if len(ids) > capacity {
			return fmt.Errorf("fsep: device %d restores %d experts, capacity %d", d, len(ids), capacity)
		}
		for _, j := range ids {
			if j < 0 || j >= s.E {
				return fmt.Errorf("fsep: device %d restores unknown expert %d", d, j)
			}
			counts[j]++
		}
	}
	for j, c := range counts {
		if c == 0 {
			return fmt.Errorf("fsep: expert %d has no replica in layout", j)
		}
	}
	return nil
}

// UnshardVolumes returns the All-to-All byte volumes of restoring the given
// layout: device d receives one chunk of expert j from every other device
// for each expert it restores. The per-device send volume under a balanced
// layout is V_fsep = C * (N-1)/N * Ψ_expert (Sec. 3.1).
func (s *Sharded) UnshardVolumes(l Layout, bytesPerElement float64) *comm.VolumeMatrix {
	vol := comm.NewVolumeMatrix(s.N)
	chunkBytes := float64(s.ChunkLen) * bytesPerElement
	for d, ids := range l.Restored {
		for range ids {
			for src := 0; src < s.N; src++ {
				if src != d {
					vol.Add(src, d, chunkBytes)
				}
			}
		}
	}
	return vol
}

// ReshardVolumes returns the All-to-All byte volumes of the gradient
// reshard (Fig. 4b): each device splits each restored expert's gradient
// into N chunks and sends chunk k to device k for reduction. Volumes are
// the exact inverse of UnshardVolumes.
func (s *Sharded) ReshardVolumes(l Layout, bytesPerElement float64) *comm.VolumeMatrix {
	vol := comm.NewVolumeMatrix(s.N)
	chunkBytes := float64(s.ChunkLen) * bytesPerElement
	for d, ids := range l.Restored {
		for range ids {
			for dst := 0; dst < s.N; dst++ {
				if dst != d {
					vol.Add(d, dst, chunkBytes)
				}
			}
		}
	}
	return vol
}

// GradContribution is one device's gradient for one restored expert
// replica, as a flat buffer of FlatLen elements.
type GradContribution struct {
	Device int
	Expert int
	Grad   []float32
}

// Reshard re-partitions and reduces expert gradients (Fig. 4b): every
// contribution is chunked, chunk d is "sent" to device d, and chunks for
// the same expert are summed into the receive buffer. The result indexes
// as [device][expert][ChunkLen] and aligns with the sharded parameter
// chunks, ready for the optimizer step.
func (s *Sharded) Reshard(contribs []GradContribution) ([][][]float32, error) {
	return s.ReshardInto(nil, contribs)
}

// ReshardInto is Reshard reusing a previously returned receive buffer:
// passing the result of an earlier Reshard/ReshardInto on the same store
// zeroes and refills it instead of reallocating, so the steady-state
// gradient path stops allocating N*E chunks per call. A nil (or
// wrongly shaped) dst allocates fresh.
func (s *Sharded) ReshardInto(dst [][][]float32, contribs []GradContribution) ([][][]float32, error) {
	out := dst
	if !s.reshardShapeOK(out) {
		out = make([][][]float32, s.N)
		for d := 0; d < s.N; d++ {
			slab := make([]float32, s.E*s.ChunkLen)
			out[d] = make([][]float32, s.E)
			for j := 0; j < s.E; j++ {
				out[d][j] = slab[j*s.ChunkLen : (j+1)*s.ChunkLen : (j+1)*s.ChunkLen]
			}
		}
	} else {
		for d := range out {
			for j := range out[d] {
				chunk := out[d][j]
				for k := range chunk {
					chunk[k] = 0
				}
			}
		}
	}
	for _, c := range contribs {
		if c.Expert < 0 || c.Expert >= s.E {
			return nil, fmt.Errorf("fsep: gradient for unknown expert %d", c.Expert)
		}
		if c.Device < 0 || c.Device >= s.N {
			return nil, fmt.Errorf("fsep: gradient from unknown device %d", c.Device)
		}
		if len(c.Grad) != s.Meta.FlatLen {
			return nil, fmt.Errorf("fsep: gradient for expert %d has %d elements, want %d",
				c.Expert, len(c.Grad), s.Meta.FlatLen)
		}
		for d := 0; d < s.N; d++ {
			lo := d * s.ChunkLen
			if lo >= len(c.Grad) {
				break
			}
			hi := lo + s.ChunkLen
			if hi > len(c.Grad) {
				hi = len(c.Grad)
			}
			acc := out[d][c.Expert]
			for k, v := range c.Grad[lo:hi] {
				acc[k] += v
			}
		}
	}
	return out, nil
}

// reshardShapeOK reports whether a candidate reuse buffer matches the
// store's [N][E][ChunkLen] receive shape.
func (s *Sharded) reshardShapeOK(b [][][]float32) bool {
	if len(b) != s.N {
		return false
	}
	for d := range b {
		if len(b[d]) != s.E {
			return false
		}
		for j := range b[d] {
			if len(b[d][j]) != s.ChunkLen {
				return false
			}
		}
	}
	return true
}

// ApplyChunkUpdate performs a plain SGD-style in-place update of the
// sharded parameters from reduced chunk gradients, demonstrating that the
// optimizer can operate purely on the sharded state (as in FSDP).
func (s *Sharded) ApplyChunkUpdate(chunkGrads [][][]float32, lr float32) error {
	if len(chunkGrads) != s.N {
		return fmt.Errorf("fsep: chunk gradients for %d devices, want %d", len(chunkGrads), s.N)
	}
	for d := 0; d < s.N; d++ {
		if len(chunkGrads[d]) != s.E {
			return fmt.Errorf("fsep: device %d has gradients for %d experts, want %d", d, len(chunkGrads[d]), s.E)
		}
		for j := 0; j < s.E; j++ {
			g := chunkGrads[d][j]
			p := s.chunks[d][j]
			if len(g) != len(p) {
				return fmt.Errorf("fsep: chunk length mismatch on device %d expert %d", d, j)
			}
			for k := range p {
				p[k] -= lr * g[k]
			}
		}
	}
	return nil
}
