package fsep

import "testing"

// BenchmarkUnshard measures restoring C=2 experts from a 32-way shard
// (the FSEP hot path), at a reduced tensor size.
func BenchmarkUnshard(b *testing.B) {
	experts := makeBenchExperts(8, 256, 512)
	s, err := Shard(experts, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Unshard([]int{3, 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnshardReuse measures the pooled steady state: the same restore
// through one scratch, which must run at ~0 allocs/op.
func BenchmarkUnshardReuse(b *testing.B) {
	experts := makeBenchExperts(8, 256, 512)
	s, err := Shard(experts, 32)
	if err != nil {
		b.Fatal(err)
	}
	sc := s.GetScratch()
	defer s.PutScratch(sc)
	ids := []int{3, 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.UnshardInto(sc, ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReshard measures the gradient re-partition + reduction path.
func BenchmarkReshard(b *testing.B) {
	experts := makeBenchExperts(4, 256, 512)
	s, err := Shard(experts, 32)
	if err != nil {
		b.Fatal(err)
	}
	grad := make([]float32, s.Meta.FlatLen)
	for i := range grad {
		grad[i] = 1
	}
	contribs := []GradContribution{
		{Device: 0, Expert: 0, Grad: grad},
		{Device: 7, Expert: 0, Grad: grad},
		{Device: 3, Expert: 2, Grad: grad},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Reshard(contribs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReshardReuse measures the reduction path refilling one receive
// buffer in steady state.
func BenchmarkReshardReuse(b *testing.B) {
	experts := makeBenchExperts(4, 256, 512)
	s, err := Shard(experts, 32)
	if err != nil {
		b.Fatal(err)
	}
	grad := make([]float32, s.Meta.FlatLen)
	for i := range grad {
		grad[i] = 1
	}
	contribs := []GradContribution{
		{Device: 0, Expert: 0, Grad: grad},
		{Device: 7, Expert: 0, Grad: grad},
		{Device: 3, Expert: 2, Grad: grad},
	}
	buf, err := s.Reshard(contribs)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf, err = s.ReshardInto(buf, contribs); err != nil {
			b.Fatal(err)
		}
	}
}

func makeBenchExperts(e, rows, cols int) []Expert {
	out := make([]Expert, e)
	for i := range out {
		out[i] = Expert{Tensors: []Tensor{NewTensor(rows, cols), NewTensor(rows, cols), NewTensor(cols, rows)}}
	}
	return out
}
