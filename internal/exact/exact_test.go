package exact

import (
	"testing"

	"laermoe/internal/planner"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

func smallParams() planner.CostParams {
	return planner.CostParams{TokenBytes: 8192, ExpertFLOPsPerToken: 352e6, FLOPS: 140e12}
}

func smallMatrix(seed int64) *trace.RoutingMatrix {
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: 4, Experts: 4, Layers: 1, TokensPerDevice: 512, TopK: 2, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return gen.Step()[0]
}

// TestGreedyNearExact reproduces the paper's justification for the greedy
// planner: on instances small enough for exhaustive search, the greedy
// solution's cost stays within 25% of the best found by enumeration.
func TestGreedyNearExact(t *testing.T) {
	topo := topology.New(2, 2)
	for seed := int64(0); seed < 4; seed++ {
		r := smallMatrix(seed)
		best, err := Search(r, topo, 2, smallParams())
		if err != nil {
			t.Fatal(err)
		}
		greedy := planner.NewSolver(topo, 2, smallParams(), planner.DefaultSolverOptions())
		sol, err := greedy.Solve(r)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Cost < best.Cost-1e-12 {
			t.Errorf("seed %d: greedy (%.6f) beat 'exact' (%.6f); exact search is broken", seed, sol.Cost, best.Cost)
		}
		if sol.Cost > best.Cost*1.25 {
			t.Errorf("seed %d: greedy cost %.6f more than 25%% above exact %.6f", seed, sol.Cost, best.Cost)
		}
	}
}

func TestExactSolutionValid(t *testing.T) {
	topo := topology.New(2, 2)
	r := smallMatrix(7)
	best, err := Search(r, topo, 2, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Layout.Validate(2, true); err != nil {
		t.Errorf("exact layout invalid: %v", err)
	}
	if err := best.Dispatch().Validate(r, best.Layout); err != nil {
		t.Errorf("exact dispatch invalid: %v", err)
	}
	if best.Candidates == 0 {
		t.Error("no layouts enumerated")
	}
}

func TestSearchRejectsLargeInstances(t *testing.T) {
	topo := topology.Default() // 32 devices: way over budget
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices: 32, Experts: 8, Layers: 1, TokensPerDevice: 128, TopK: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Search(gen.Step()[0], topo, 2, smallParams()); err == nil {
		t.Error("oversized instance accepted")
	}
}

// TestRebalanceDispatchImproves: local search must never increase cost and
// must reduce it for an obviously unbalanced dispatch.
func TestRebalanceDispatchImproves(t *testing.T) {
	topo := topology.New(1, 4)
	layout := planner.NewLayout(1, 4)
	for d := 0; d < 4; d++ {
		layout.A[0][d] = 1
	}
	r := trace.NewRoutingMatrix(4, 1)
	r.R[0][0] = 1000
	// All tokens on one replica.
	unbalanced := &planner.Dispatch{N: 4, E: 1, Assignments: []planner.Assignment{
		{Src: 0, Expert: 0, Dst: 0, Tokens: 1000},
	}}
	before := planner.TimeCost(unbalanced, topo, smallParams())
	refined := RebalanceDispatch(unbalanced, layout, topo, smallParams(), 64)
	after := planner.TimeCost(refined, topo, smallParams())
	if after >= before {
		t.Errorf("rebalance did not improve cost: %.6f -> %.6f", before, after)
	}
	if err := refined.Validate(r, layout); err != nil {
		t.Errorf("refined dispatch invalid: %v", err)
	}
	loads := refined.ReceivedLoads()
	maxLoad := 0
	for _, v := range loads {
		if v > maxLoad {
			maxLoad = v
		}
	}
	if maxLoad > 500 {
		t.Errorf("max load after rebalance = %d, want <= 500", maxLoad)
	}
}

func TestCombinations(t *testing.T) {
	got := combinations(4, 2)
	if len(got) != 6 {
		t.Fatalf("C(4,2) produced %d subsets, want 6", len(got))
	}
	seen := map[[2]int]bool{}
	for _, s := range got {
		if len(s) != 2 || s[0] >= s[1] {
			t.Fatalf("bad subset %v", s)
		}
		seen[[2]int{s[0], s[1]}] = true
	}
	if len(seen) != 6 {
		t.Error("duplicate subsets")
	}
}
