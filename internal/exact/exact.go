// Package exact provides a reference solver for the paper's joint
// layout/routing optimization (Sec. 3.2, Eq. 2-4) on tiny instances. The
// paper notes the problem is a nonlinear integer program that generic
// solvers (SCIP) only handle at small scale; this package plays that role
// for tests: it enumerates every feasible expert layout, refines the token
// routing with a local search, and returns the best strategy found, so the
// greedy planner's solution quality can be checked against it.
package exact

import (
	"fmt"

	"laermoe/internal/planner"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
)

// MaxLayouts bounds the enumeration; Search fails rather than running
// unboundedly on instances that are too large.
const MaxLayouts = 2_000_000

// Search enumerates all layouts in which every device hosts exactly c
// experts (without per-device duplicates) and every expert has at least
// one replica, scores each with lite routing refined by RebalanceDispatch,
// and returns the cheapest. Only suitable for small N and E.
func Search(r *trace.RoutingMatrix, topo *topology.Topology, c int, params planner.CostParams) (*planner.Solution, error) {
	n := topo.N()
	if r.N != n {
		return nil, fmt.Errorf("exact: routing matrix for %d devices, topology has %d", r.N, n)
	}
	subsets := combinations(r.E, c)
	total := 1.0
	for i := 0; i < n; i++ {
		total *= float64(len(subsets))
		if total > MaxLayouts {
			return nil, fmt.Errorf("exact: %d devices x %d subsets exceeds enumeration budget", n, len(subsets))
		}
	}

	best := &planner.Solution{Cost: -1}
	choice := make([]int, n)
	var recurse func(dev int)
	recurse = func(dev int) {
		if dev == n {
			layout := planner.NewLayout(r.E, n)
			covered := make([]bool, r.E)
			for d, si := range choice {
				for _, j := range subsets[si] {
					layout.A[j][d] = 1
					covered[j] = true
				}
			}
			for _, ok := range covered {
				if !ok {
					return
				}
			}
			d := planner.LiteRouting(r, layout, topo)
			d = RebalanceDispatch(d, layout, topo, params, 64)
			cost := planner.TimeCost(d, topo, params)
			best.Candidates++
			if best.Cost < 0 || cost < best.Cost {
				best.Layout = layout
				best.AttachDispatch(d)
				best.Cost = cost
			}
			return
		}
		for si := range subsets {
			choice[dev] = si
			recurse(dev + 1)
		}
	}
	recurse(0)
	if best.Cost < 0 {
		return nil, fmt.Errorf("exact: no feasible layout covers all experts")
	}
	return best, nil
}

// RebalanceDispatch locally improves a dispatch under a fixed layout:
// while the Eq. 2 cost decreases, it moves half of some assignment from
// the most-loaded device to another replica of the same expert. The
// result remains a valid dispatch (conservation holds by construction).
func RebalanceDispatch(d *planner.Dispatch, l *planner.Layout, topo *topology.Topology, params planner.CostParams, maxIters int) *planner.Dispatch {
	cur := &planner.Dispatch{N: d.N, E: d.E, Assignments: append([]planner.Assignment(nil), d.Assignments...)}
	curCost := planner.TimeCost(cur, topo, params)
	for iter := 0; iter < maxIters; iter++ {
		loads := cur.ReceivedLoads()
		worst := 0
		for dev, v := range loads {
			if v > loads[worst] {
				worst = dev
			}
		}
		bestCost := curCost
		bestIdx, bestDst, bestMove := -1, -1, 0
		for idx, a := range cur.Assignments {
			if a.Dst != worst || a.Tokens < 2 {
				continue
			}
			move := a.Tokens / 2
			for dst := 0; dst < cur.N; dst++ {
				if dst == a.Dst || l.A[a.Expert][dst] == 0 {
					continue
				}
				trial := applyMove(cur, idx, dst, move)
				cost := planner.TimeCost(trial, topo, params)
				if cost < bestCost {
					bestCost, bestIdx, bestDst, bestMove = cost, idx, dst, move
				}
			}
		}
		if bestIdx < 0 {
			break
		}
		cur = applyMove(cur, bestIdx, bestDst, bestMove)
		curCost = bestCost
	}
	return cur
}

// applyMove returns a copy of d with `move` tokens of assignment idx
// redirected to dst.
func applyMove(d *planner.Dispatch, idx, dst, move int) *planner.Dispatch {
	out := &planner.Dispatch{N: d.N, E: d.E, Assignments: make([]planner.Assignment, 0, len(d.Assignments)+1)}
	for i, a := range d.Assignments {
		if i == idx {
			a.Tokens -= move
		}
		if a.Tokens > 0 {
			out.Assignments = append(out.Assignments, a)
		}
	}
	src := d.Assignments[idx]
	out.Assignments = append(out.Assignments, planner.Assignment{
		Src: src.Src, Expert: src.Expert, Dst: dst, Tokens: move,
	})
	return out
}

// combinations enumerates all c-element subsets of {0..e-1}.
func combinations(e, c int) [][]int {
	var out [][]int
	subset := make([]int, 0, c)
	var recurse func(start int)
	recurse = func(start int) {
		if len(subset) == c {
			out = append(out, append([]int(nil), subset...))
			return
		}
		for v := start; v < e; v++ {
			subset = append(subset, v)
			recurse(v + 1)
			subset = subset[:len(subset)-1]
		}
	}
	recurse(0)
	return out
}
