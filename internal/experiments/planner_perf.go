package experiments

import (
	"fmt"
	"time"

	"laermoe/internal/costmodel"
	"laermoe/internal/model"
	"laermoe/internal/planner"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
	"laermoe/internal/training"
)

// Table3Result reproduces Table 3: the per-iteration wall time of the lite
// routing token dispatcher and its share of end-to-end iteration time. The
// timings are real Go measurements, not simulated.
type Table3Result struct {
	Table *Table
	// RoutingMillis and Share index by model name.
	RoutingMillis map[string]float64
	Share         map[string]float64
}

// Table3 measures lite-routing overhead for the case-study models.
func Table3(opts Options) (*Table3Result, error) {
	opts = opts.withDefaults()
	res := &Table3Result{RoutingMillis: map[string]float64{}, Share: map[string]float64{}}
	t := &Table{
		ID:     "tab3",
		Title:  "Performance of lite routing (measured)",
		Header: []string{"model", "lite routing (ms/iter)", "iter (s)", "share of total"},
	}
	// Phase 1 (parallel): the simulated denominator run and the solved
	// layout per model. Phase 2 (serial): the wall-clock measurement
	// loops, kept off the worker pool so contention cannot pollute them.
	archs := caseStudyModels(opts.Quick)
	type prep struct {
		iterTime float64
		calls    int
		r        *trace.RoutingMatrix
		layout   *planner.Layout
	}
	preps := make([]prep, len(archs))
	err := forEach(opts.Workers(), len(archs), func(i int) error {
		arch := archs[i]
		// Simulated end-to-end iteration time for the denominator.
		run, err := caseStudyRun(opts, training.SystemLAER, arch)
		if err != nil {
			return err
		}
		setup, err := training.Prepare(training.RunConfig{
			System: training.SystemLAER, Arch: arch, Topo: opts.Topo,
		})
		if err != nil {
			return err
		}
		gen, err := trace.NewGenerator(trace.GeneratorConfig{
			Devices: opts.Topo.N(), Experts: arch.Experts, Layers: 1,
			TokensPerDevice: setup.TokensPerDev, TopK: arch.TopK, Seed: opts.Seed + 5,
		})
		if err != nil {
			return err
		}
		r := gen.Step()[0]
		cm := costmodel.New(arch, opts.Topo, 8192)
		solver := planner.NewSolver(opts.Topo, arch.ExpertCapacity, planner.CostParams{
			TokenBytes:          cm.TokenCommBytes(),
			ExpertFLOPsPerToken: cm.TokenExpertFLOPs(),
			FLOPS:               opts.Topo.FLOPS,
		}, planner.DefaultSolverOptions())
		sol, err := solver.Solve(r)
		if err != nil {
			return err
		}
		preps[i] = prep{
			iterTime: run.MeanIterationTime(),
			calls:    arch.Layers * setup.MicroBatches,
			r:        r,
			layout:   sol.Layout,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for i, arch := range archs {
		// Measure: one lite-routing call per layer per micro-batch, as in
		// a real iteration, against the solved layout.
		p := preps[i]
		reps := 3
		start := time.Now()
		for k := 0; k < reps*p.calls; k++ {
			planner.LiteRouting(p.r, p.layout, opts.Topo)
		}
		perIter := time.Since(start).Seconds() / float64(reps)

		res.RoutingMillis[arch.Name] = perIter * 1e3
		res.Share[arch.Name] = perIter / p.iterTime
		t.AddRow(arch.Name, f3(perIter*1e3), f1(p.iterTime), fmt.Sprintf("%.4f%%", 100*perIter/p.iterTime))
	}
	t.Notes = append(t.Notes, "paper: ~25-31 ms per iteration, below 0.1% of total time")
	res.Table = t
	return res, nil
}

// Fig11Result reproduces Fig. 11: expert-layout solver time as the cluster
// scales, against the per-transformer-layer time budget.
type Fig11Result struct {
	Table *Table
	// SolveMillis[(N,C)] is the measured solve time per layer.
	SolveMillis map[[2]int]float64
	// BaselineMillis is the average per-layer iteration time (budget).
	BaselineMillis float64
}

// Fig11 measures solver scaling with |ε| fixed to 2 as in the paper.
func Fig11(opts Options) (*Fig11Result, error) {
	opts = opts.withDefaults()
	ns := []int{8, 16, 32, 64, 128, 256, 512, 1024}
	cs := []int{2, 4, 8}
	if opts.Quick {
		ns = []int{8, 32, 128}
		cs = []int{2, 4}
	}
	arch := model.Mixtral8x7B

	// Budget: average total time per transformer layer of the e8k2 run.
	run, err := caseStudyRun(opts, training.SystemLAER, arch)
	if err != nil {
		return nil, err
	}
	baseline := run.MeanIterationTime() / float64(arch.Layers)

	res := &Fig11Result{SolveMillis: map[[2]int]float64{}, BaselineMillis: baseline * 1e3}
	t := &Table{
		ID:     "fig11",
		Title:  "Expert layout solver time vs cluster size (|ε|=2, measured)",
		Header: []string{"N (GPUs)", "C", "solve (ms)", "budget (ms/layer)", "within budget"},
	}
	// Synthesizing a 16384-tokens/device trace at N=1024 dominates the
	// figure's wall time, so generation fans across the worker pool; the
	// timed solver loops then run serially against the prepared matrices
	// so the measurements stay contention-free.
	type prep struct {
		topo *topology.Topology
		r    *trace.RoutingMatrix
		cm   *costmodel.Model
	}
	preps := make([]prep, len(ns))
	err = forEach(opts.Workers(), len(ns), func(i int) error {
		n := ns[i]
		nodes := n / 8
		if nodes == 0 {
			nodes = 1
		}
		topo := topology.New(nodes, n/nodes)
		gen, err := trace.NewGenerator(trace.GeneratorConfig{
			Devices: n, Experts: arch.Experts, Layers: 1,
			TokensPerDevice: 16384, TopK: arch.TopK, Seed: opts.Seed + int64(n),
		})
		if err != nil {
			return err
		}
		preps[i] = prep{topo: topo, r: gen.Step()[0], cm: costmodel.New(arch, topo, 8192)}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for i, n := range ns {
		p := preps[i]
		for _, c := range cs {
			solver := planner.NewSolver(p.topo, c, planner.CostParams{
				TokenBytes:          p.cm.TokenCommBytes(),
				ExpertFLOPsPerToken: p.cm.TokenExpertFLOPs(),
				FLOPS:               p.topo.FLOPS,
			}, planner.SolverOptions{Epsilon: 2})
			reps := 3
			start := time.Now()
			for k := 0; k < reps; k++ {
				if _, err := solver.Solve(p.r); err != nil {
					return nil, err
				}
			}
			per := time.Since(start).Seconds() / float64(reps)
			res.SolveMillis[[2]int{n, c}] = per * 1e3
			t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", c), f3(per*1e3),
				f1(baseline*1e3), fmt.Sprintf("%v", per < baseline))
		}
	}
	t.Notes = append(t.Notes,
		"solving is layer-independent and can parallelize across CPU processes, so planning never bottlenecks (Sec. 5.4)")
	res.Table = t
	return res, nil
}
