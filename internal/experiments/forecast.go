package experiments

import (
	"fmt"

	"laermoe/internal/forecast"
	"laermoe/internal/model"
	"laermoe/internal/trace"
	"laermoe/internal/training"
)

// ForecastCell is one policy/predictor measurement of the prediction-
// quality experiment.
type ForecastCell struct {
	Drift     trace.DriftModel
	Policy    training.ReplanPolicy
	Predictor forecast.Kind // empty for the warm baseline

	TotalStepTime   float64
	Throughput      float64
	Migrations      int
	PredictedLayers int
	CorrectedLayers int
	ForecastError   float64
	// ObservationLag is training.OnlineReport.ObservationLag — the Fig. 7
	// adaptation-lag penalty the predictive policy removes.
	ObservationLag float64
}

// ForecastResult is the forecast-driven replanning experiment: throughput,
// forecast error and residual observation lag of the predictive policy
// against the warm baseline, across drift models and predictors.
type ForecastResult struct {
	Table *Table
	Cells []ForecastCell
}

// forecastDrifts returns the evaluated drift scenarios. The migration
// rate is lowered to 0.15 so the hot-set rotation stays smooth enough to
// carry epoch-over-epoch structure; stabilizing and bursty run at their
// defaults.
func forecastDrifts(quick bool) []trace.DriftConfig {
	if quick {
		return []trace.DriftConfig{
			{Model: trace.DriftStabilizing},
			{Model: trace.DriftBursty},
		}
	}
	return []trace.DriftConfig{
		{Model: trace.DriftStabilizing},
		{Model: trace.DriftMigration, Rate: 0.15},
		{Model: trace.DriftBursty},
	}
}

// Forecast runs the prediction-quality experiment: for every drift model,
// the warm baseline and the predictive policy under each load predictor,
// on the same trace with relocation charged at the NVLink-domain rate
// (expensive enough that churn costs real time, cheap enough that
// adaptation stays profitable). Quick mode trims to two drifts and the
// trend predictor.
func Forecast(opts Options) (*ForecastResult, error) {
	opts = opts.withDefaults()
	drifts := forecastDrifts(opts.Quick)
	predictors := forecast.Kinds()
	if opts.Quick {
		predictors = []forecast.Kind{forecast.KindTrend}
	}

	arch := model.Mixtral8x7B
	charge := training.RelocationCostPerReplica(arch, opts.Topo) * opts.Topo.InterBW / opts.Topo.IntraBW

	type cellCfg struct {
		drift     trace.DriftConfig
		policy    training.ReplanPolicy
		predictor forecast.Kind
	}
	var cells []cellCfg
	for _, d := range drifts {
		cells = append(cells, cellCfg{drift: d, policy: training.ReplanWarm})
		for _, p := range predictors {
			cells = append(cells, cellCfg{drift: d, policy: training.ReplanPredictive, predictor: p})
		}
	}

	runs := make([]ForecastCell, len(cells))
	err := forEach(opts.Workers(), len(cells), func(i int) error {
		c := cells[i]
		rep, err := training.RunOnline(training.OnlineConfig{
			Policy: c.policy,
			Arch:   arch,
			Topo:   opts.Topo,
			Epochs: 10, IterationsPerEpoch: 8,
			Drift:                   c.drift,
			MigrationCostPerReplica: charge,
			Predictor:               c.predictor,
			GlobalBatchTokens:       1 << 19,
			Parallelism:             1, // the cells themselves fan out
			Seed:                    opts.Seed,
		})
		if err != nil {
			return fmt.Errorf("forecast %s/%s: %w", c.drift.Model, c.policy, err)
		}
		cell := ForecastCell{
			Drift: c.drift.Model, Policy: c.policy, Predictor: c.predictor,
			TotalStepTime: rep.TotalStepTime,
			Throughput:    rep.MeanThroughput(),
			Migrations:    rep.TotalMigrations,
			ForecastError: rep.MeanForecastError(),
		}
		for _, e := range rep.Epochs {
			cell.PredictedLayers += e.PredictedLayers
			cell.CorrectedLayers += e.CorrectedLayers
		}
		cell.ObservationLag = rep.ObservationLag()
		runs[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "forecast",
		Title: "Forecast-driven replanning: throughput and residual observation lag vs policy x drift x predictor",
		Header: []string{"drift", "policy", "total step (s)", "tokens/s",
			"migrations", "predicted", "corrected", "fc err", "obs lag (s)"},
	}
	for _, cell := range runs {
		label := string(cell.Policy)
		if cell.Policy == training.ReplanPredictive {
			label += "/" + string(cell.Predictor)
		}
		t.AddRow(string(cell.Drift), label,
			f1(cell.TotalStepTime), f0(cell.Throughput),
			fmt.Sprintf("%d", cell.Migrations),
			fmt.Sprintf("%d", cell.PredictedLayers),
			fmt.Sprintf("%d", cell.CorrectedLayers),
			f3(cell.ForecastError), f2(cell.ObservationLag))
	}
	t.Notes = append(t.Notes,
		"relocation charged at the NVLink-domain rate; obs lag sums (first iter - boundary charge - steady) over epochs >= 3",
		"trend forecasts recover the adaptation lag on smooth drifts; the confidence fallback pins bursty to warm behaviour")
	return &ForecastResult{Table: t, Cells: runs}, nil
}
