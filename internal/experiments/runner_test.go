package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		var hits [37]int32
		if err := forEach(workers, len(hits), func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	wantErr := func(i int) error { return fmt.Errorf("fail-%d", i) }
	for _, workers := range []int{1, 4} {
		err := forEach(workers, 10, func(i int) error {
			if i == 3 || i == 7 {
				return wantErr(i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("workers=%d: got %v, want fail-3", workers, err)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := forEach(4, 0, func(i int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersKnob(t *testing.T) {
	if w := (Options{Parallelism: 1}).Workers(); w != 1 {
		t.Errorf("Parallelism 1 → %d workers", w)
	}
	if w := (Options{Parallelism: 6}).Workers(); w != 6 {
		t.Errorf("Parallelism 6 → %d workers", w)
	}
	if w := (Options{}).Workers(); w < 1 {
		t.Errorf("default Workers() = %d", w)
	}
}

// render runs one experiment and returns its concatenated table output.
func render(t *testing.T, id string, parallelism int) []byte {
	t.Helper()
	tables, err := Run(id, Options{
		Quick: true, Iterations: 4, Warmup: 1, Seed: 7, Parallelism: parallelism,
	})
	if err != nil {
		t.Fatalf("%s (parallelism %d): %v", id, parallelism, err)
	}
	var buf bytes.Buffer
	for _, tab := range tables {
		tab.Write(&buf)
	}
	return buf.Bytes()
}

// TestParallelMatchesSerial is the determinism guard for the worker-pool
// runner: every deterministic experiment artifact must be byte-identical
// whether produced serially or on eight workers. tab3 and fig11 report
// measured wall-clock times and are checked structurally below instead.
func TestParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	deterministic := []string{"tab2", "fig1a", "fig1b", "fig2", "fig8", "fig9",
		"fig10a", "fig10b", "fig12", "tab4", "eq1", "forecast", "scale", "resilience", "inference"}
	for _, id := range deterministic {
		serial := render(t, id, 1)
		parallel := render(t, id, 8)
		if !bytes.Equal(serial, parallel) {
			t.Errorf("%s: parallel output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}

// TestParallelMeasuredExperimentsShape: the two wall-clock experiments
// cannot be compared byte-for-byte (their timing columns differ run to
// run), but their structure — ids, headers, row sets minus measured
// columns — must match between serial and parallel execution.
func TestParallelMeasuredExperimentsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	for _, tc := range []struct {
		id string
		// keyCols are the deterministic leading columns of each row.
		keyCols int
	}{
		{"tab3", 1},  // model
		{"fig11", 2}, // N, C
	} {
		runOnce := func(par int) [][]string {
			tables, err := Run(tc.id, Options{
				Quick: true, Iterations: 4, Warmup: 1, Seed: 7, Parallelism: par,
			})
			if err != nil {
				t.Fatalf("%s: %v", tc.id, err)
			}
			return tables[0].Rows
		}
		serial, parallel := runOnce(1), runOnce(8)
		if len(serial) != len(parallel) {
			t.Errorf("%s: %d rows serial vs %d parallel", tc.id, len(serial), len(parallel))
			continue
		}
		for i := range serial {
			for c := 0; c < tc.keyCols; c++ {
				if serial[i][c] != parallel[i][c] {
					t.Errorf("%s row %d col %d: %q serial vs %q parallel",
						tc.id, i, c, serial[i][c], parallel[i][c])
				}
			}
		}
	}
}
