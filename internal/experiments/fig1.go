package experiments

import (
	"laermoe/internal/metrics"
	"laermoe/internal/model"
	"laermoe/internal/stats"
	"laermoe/internal/trace"
	"laermoe/internal/training"
	"laermoe/internal/viz"
)

// Fig1aResult reproduces Fig. 1(a): the routing distribution of
// Mixtral-8x7B over training iterations, showing per-expert token shares
// drifting over time with overloaded experts at almost every step.
type Fig1aResult struct {
	Table *Table
	// Shares[iter][expert] is the global token share of each expert at
	// one iteration (layer 0).
	Shares [][]float64
	// Imbalance[iter] is max/mean expert load per iteration.
	Imbalance []float64
}

// Fig1a generates the token-distribution study.
func Fig1a(opts Options) (*Fig1aResult, error) {
	opts = opts.withDefaults()
	iters := 200
	if opts.Quick {
		iters = 50
	}
	arch := model.Mixtral8x7B
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Devices:         opts.Topo.N(),
		Experts:         arch.Experts,
		Layers:          1,
		TokensPerDevice: 4096,
		TopK:            arch.TopK,
		Seed:            opts.Seed + 11,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig1aResult{}
	perExpert := make([][]float64, arch.Experts)
	for it := 0; it < iters; it++ {
		m := gen.Step()[0]
		loads := m.ExpertLoads()
		total := stats.Sum(loads)
		shares := make([]float64, len(loads))
		for j, v := range loads {
			shares[j] = v / total
			perExpert[j] = append(perExpert[j], shares[j])
		}
		res.Shares = append(res.Shares, shares)
		res.Imbalance = append(res.Imbalance, stats.Imbalance(loads))
	}

	t := &Table{
		ID:     "fig1a",
		Title:  "Token distribution while training Mixtral-8x7B (layer 0 shares over iterations)",
		Header: []string{"expert", "mean share", "min share", "max share", "share over time"},
	}
	for j := 0; j < arch.Experts; j++ {
		t.AddRow(
			f2(float64(j)),
			pct(stats.Mean(perExpert[j])),
			pct(stats.Min(perExpert[j])),
			pct(stats.Max(perExpert[j])),
			viz.Sparkline(sample(perExpert[j], 48)),
		)
	}
	t.AddRow("max/mean", f2(stats.Mean(res.Imbalance)), f2(stats.Min(res.Imbalance)),
		f2(stats.Max(res.Imbalance)), viz.Sparkline(sample(res.Imbalance, 48)))
	t.Notes = append(t.Notes,
		"uniform share would be 12.5%; overloaded experts appear at almost every iteration and the hot set drifts")
	res.Table = t
	return res, nil
}

// sample downsamples a series to at most n points.
func sample(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = xs[i*len(xs)/n]
	}
	return out
}

// Fig1bResult reproduces Fig. 1(b): the time breakdown of the FSDP+EP
// baseline under real (imbalanced) routing versus enforced fully balanced
// routing — imbalance inflates the All-to-All share severalfold.
type Fig1bResult struct {
	Table         *Table
	DefaultShare  float64 // A2A share with dynamic routing
	BalancedShare float64 // A2A share with enforced balance
}

// Fig1b generates the breakdown comparison.
func Fig1b(opts Options) (*Fig1bResult, error) {
	opts = opts.withDefaults()
	res := &Fig1bResult{}
	t := &Table{
		ID:     "fig1b",
		Title:  "Time breakdown, FSDP+EP: dynamic routing vs enforced balance (Mixtral-8x7B e8k2)",
		Header: []string{"condition", "iter (s)", "a2a (s)", "expert (s)", "others (s)", "a2a share"},
	}
	conds := []struct {
		label  string
		system training.System
	}{
		{"default", training.SystemFSDPEP},
		{"balanced", training.SystemBalanced},
	}
	runs := make([]*metrics.Run, len(conds))
	err := forEach(opts.Workers(), len(conds), func(i int) error {
		run, err := training.Run(training.RunConfig{
			System:     conds[i].system,
			Arch:       model.Mixtral8x7B,
			Topo:       opts.Topo,
			Iterations: opts.Iterations,
			Warmup:     opts.Warmup,
			TraceSkew:  1.15,
			Seed:       opts.Seed + 21,
		})
		if err != nil {
			return err
		}
		runs[i] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range conds {
		run := runs[i]
		bd := run.MeanBreakdown()
		t.AddRow(c.label, f1(run.MeanIterationTime()), f1(bd.A2A), f1(bd.Expert),
			f1(bd.Others()), pct(bd.A2AShare()))
		if c.label == "default" {
			res.DefaultShare = bd.A2AShare()
		} else {
			res.BalancedShare = bd.A2AShare()
		}
	}
	t.Notes = append(t.Notes,
		"load imbalance turns straggler waiting into measured All-to-All time (Sec. 1)")
	res.Table = t
	return res, nil
}
