package experiments

import (
	"fmt"
	"math"

	"laermoe/internal/model"
	"laermoe/internal/training"
	"laermoe/internal/viz"
)

// Fig2Result reproduces Fig. 2: loss curves under different auxiliary-loss
// weights — larger weights need more steps to reach equal loss.
type Fig2Result struct {
	Table *Table
	// StepsToTarget[weight] for the common target loss.
	StepsToTarget map[float64]int
}

// Fig2 generates the auxiliary-loss convergence comparison.
func Fig2(opts Options) *Fig2Result {
	m := training.DefaultConvergenceModel()
	steps := 3000
	weights := []float64{0, 1e-4, 1e-3, 1e-2}
	target := m.Loss(2500, 0) // loss the unregularized run reaches late in training
	res := &Fig2Result{StepsToTarget: map[float64]int{}}
	t := &Table{
		ID:     "fig2",
		Title:  "Loss vs steps for auxiliary-loss weights (Mixtral-8x7B e8k2 proxy)",
		Header: []string{"aux weight", "loss@1k", "loss@3k", "steps to target", "curve"},
	}
	for _, w := range weights {
		s := m.StepsToLoss(target, w, 100000)
		res.StepsToTarget[w] = s
		_, ys := m.LossCurve(steps, 60, w, 0)
		t.AddRow(fmt.Sprintf("%.0e", w), f3(m.Loss(1000, w)), f3(m.Loss(3000, w)),
			fmt.Sprintf("%d", s), viz.Sparkline(ys))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("target loss %.3f; larger weights need more steps (Fig. 2)", target))
	res.Table = t
	return res
}

// Fig9Result reproduces the Fig. 9 convergence study: LAER-MoE at aux
// weight 1e-4 versus Megatron at 1e-2 and 1e-4, over steps and wall-clock
// time, plus the relative-error track of Fig. 9(b).
type Fig9Result struct {
	Table      *Table
	ErrorTable *Table
	// TimeToTarget maps "system@weight" to seconds of simulated training.
	TimeToTarget map[string]float64
	MaxRelError  float64
}

// Fig9 generates the convergence study.
func Fig9(opts Options) (*Fig9Result, error) {
	opts = opts.withDefaults()
	m := training.DefaultConvergenceModel()
	target := m.Loss(2500, 0)
	maxSteps := 100000

	type entry struct {
		label  string
		system training.System
		weight float64
		seed   int64
	}
	entries := []entry{
		{"LAER-MoE@1e-4", training.SystemLAER, 1e-4, 1},
		{"Megatron@1e-2", training.SystemMegatron, 1e-2, 2},
		{"Megatron@1e-4", training.SystemMegatron, 1e-4, 2},
	}

	res := &Fig9Result{TimeToTarget: map[string]float64{}}
	t := &Table{
		ID:    "fig9",
		Title: "Convergence: loss over steps and wall-clock (Mixtral-8x7B e8k2, 4K ctx)",
		Header: []string{"system", "iter (s)", "steps to target", "time to target (h)",
			"loss vs time"},
	}
	iterTimes := make([]float64, len(entries))
	err := forEach(opts.Workers(), len(entries), func(i int) error {
		run, err := training.Run(training.RunConfig{
			System:        entries[i].system,
			Arch:          model.Mixtral8x7B,
			Topo:          opts.Topo,
			AuxLossWeight: entries[i].weight,
			Iterations:    opts.Iterations,
			Warmup:        opts.Warmup,
			ContextLen:    4096,
			Seed:          opts.Seed + 31,
		})
		if err != nil {
			return err
		}
		iterTimes[i] = run.MeanIterationTime()
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, e := range entries {
		iterTime := iterTimes[i]
		steps := m.StepsToLoss(target, e.weight, maxSteps)
		wall := float64(steps) * iterTime
		res.TimeToTarget[e.label] = wall
		_, ys := m.LossCurve(steps, steps/40+1, e.weight, e.seed)
		t.AddRow(e.label, f1(iterTime), fmt.Sprintf("%d", steps), f1(wall/3600), viz.Sparkline(ys))
	}
	t.Notes = append(t.Notes,
		"LAER trains at low aux weight without paying the imbalance tax, giving the best wall-clock convergence")

	// Fig. 9(b): relative loss error of LAER vs Megatron at equal weight.
	et := &Table{
		ID:     "fig9b",
		Title:  "Relative loss error, LAER-MoE vs Megatron, aux weight 1e-4",
		Header: []string{"step range", "max |rel err|", "within 1e-3"},
	}
	for _, span := range [][2]int{{1, 750}, {751, 1500}, {1501, 2250}, {2251, 3000}} {
		worst := 0.0
		for s := span[0]; s <= span[1]; s++ {
			a := m.LossWithJitter(s, 1e-4, 1)
			b := m.LossWithJitter(s, 1e-4, 2)
			rel := math.Abs(a-b) / b
			if rel > worst {
				worst = rel
			}
		}
		if worst > res.MaxRelError {
			res.MaxRelError = worst
		}
		et.AddRow(fmt.Sprintf("%d-%d", span[0], span[1]), fmt.Sprintf("%.2e", worst),
			fmt.Sprintf("%v", worst < 1e-3))
	}
	et.Notes = append(et.Notes, "FSEP changes only storage/communication patterns, so losses track within numerical noise (Sec. 3.1)")
	res.Table = t
	res.ErrorTable = et
	return res, nil
}
