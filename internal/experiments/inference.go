package experiments

import (
	"fmt"

	"laermoe/internal/model"
	"laermoe/internal/stats"
	"laermoe/internal/trace"
	"laermoe/internal/training"
)

// InferenceCell is one policy's serving run under one arrival shape.
type InferenceCell struct {
	Arrival trace.ArrivalShape
	Policy  training.ReplanPolicy

	Requests      int
	DecodeP50     float64
	DecodeP99     float64
	TotalStepTime float64
	MeanImbalance float64
	Migrations    int
}

// InferenceResult is the inference-serving experiment: decode-request
// traffic under diurnal and bursty arrival, served by the re-layout
// policies against the dispatch-time baselines (LLEP least-loaded routing
// and score-distribution balancing).
type InferenceResult struct {
	Table *Table
	Cells []InferenceCell
}

// inferencePolicies is the serving policy matrix: the static layout, the
// two re-layout policies and the two dispatch-time baselines from the
// serving literature. The full matrix runs even in quick mode — the
// cross-policy latency comparison is the experiment.
func inferencePolicies() []training.ReplanPolicy {
	return []training.ReplanPolicy{
		training.ReplanStatic,
		training.ReplanWarm,
		training.ReplanPredictive,
		training.ReplanLLEP,
		training.ReplanScoreBalance,
	}
}

// inferenceConfig is one cell's engine configuration. Per-request
// sampling costs O(requests x layers), so the cell trims the layer count
// and caps the mean arrivals per device — the policy comparison needs the
// traffic shape, not the full model depth.
func inferenceConfig(policy training.ReplanPolicy, arrival trace.ArrivalShape, opts Options) training.OnlineConfig {
	arch := *model.Mixtral8x7B
	arch.Layers = 8
	return training.OnlineConfig{
		Policy:   policy,
		Workload: training.WorkloadInference,
		Arrival:  arrival,
		Arch:     &arch,
		Topo:     opts.Topo,
		Epochs:   4, IterationsPerEpoch: 6,
		ForceTokensPerDevice: 256,
		Parallelism:          1, // the cells themselves fan out
		Seed:                 opts.Seed,
	}
}

// Inference runs the serving experiment: every policy serves the same
// decode-request stream under each arrival shape, reporting p50/p99
// decode latency alongside the training-style step accounting. The
// re-layout policies adapt the expert placement between epochs; the
// dispatch-time baselines (llep, score-balance) reshape only the routing
// of each iteration.
func Inference(opts Options) (*InferenceResult, error) {
	opts = opts.withDefaults()
	policies := inferencePolicies()
	arrivals := trace.ArrivalShapes()

	type cellCfg struct {
		arrival trace.ArrivalShape
		policy  training.ReplanPolicy
	}
	var cells []cellCfg
	for _, a := range arrivals {
		for _, p := range policies {
			cells = append(cells, cellCfg{arrival: a, policy: p})
		}
	}

	runs := make([]InferenceCell, len(cells))
	err := forEach(opts.Workers(), len(cells), func(i int) error {
		c := cells[i]
		rep, err := training.RunOnline(inferenceConfig(c.policy, c.arrival, opts))
		if err != nil {
			return fmt.Errorf("inference %s/%s: %w", c.arrival, c.policy, err)
		}
		cell := InferenceCell{
			Arrival:       c.arrival,
			Policy:        c.policy,
			DecodeP50:     rep.DecodeP50,
			DecodeP99:     rep.DecodeP99,
			TotalStepTime: rep.TotalStepTime,
			Migrations:    rep.TotalMigrations,
		}
		imbalances := make([]float64, len(rep.Epochs))
		for e, ep := range rep.Epochs {
			cell.Requests += ep.Requests
			imbalances[e] = ep.Imbalance
		}
		cell.MeanImbalance = stats.Mean(imbalances)
		runs[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "inference",
		Title: "Inference serving: decode latency by policy under diurnal and bursty arrival",
		Header: []string{"arrival", "policy", "requests", "p50 (s)", "p99 (s)",
			"total step (s)", "mean imb", "migrations"},
	}
	for _, cell := range runs {
		t.AddRow(string(cell.Arrival), string(cell.Policy),
			fmt.Sprintf("%d", cell.Requests),
			f3(cell.DecodeP50), f3(cell.DecodeP99),
			f1(cell.TotalStepTime), f2(cell.MeanImbalance),
			fmt.Sprintf("%d", cell.Migrations))
	}
	t.Notes = append(t.Notes,
		"a request's decode latency is the worst queueing+service delay over its top-k experts at its device, per layer",
		"llep and score-balance never re-lay out: llep water-fills each token block onto the least-loaded replica at dispatch; score-balance pulls routing distributions toward uniform before apportionment")
	return &InferenceResult{Table: t, Cells: runs}, nil
}
