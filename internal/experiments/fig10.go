package experiments

import (
	"fmt"

	"laermoe/internal/metrics"
	"laermoe/internal/model"
	"laermoe/internal/stats"
	"laermoe/internal/training"
	"laermoe/internal/viz"
)

// caseStudySystems are the systems of the Sec. 5.3 case study.
var caseStudySystems = []training.System{
	training.SystemFSDPEP, training.SystemFlexMoE, training.SystemLAER,
}

// caseStudyModels are the Mixtral-8x7B variants of the case study.
func caseStudyModels(quick bool) []*model.Config {
	if quick {
		return []*model.Config{model.Mixtral8x7B}
	}
	return []*model.Config{model.Mixtral8x7B, model.Mixtral8x7BE16}
}

func caseStudyRun(opts Options, sys training.System, arch *model.Config) (*metrics.Run, error) {
	return training.Run(training.RunConfig{
		System:     sys,
		Arch:       arch,
		Topo:       opts.Topo,
		Iterations: opts.Iterations,
		Warmup:     opts.Warmup,
		TraceSkew:  1.15, // wikitext
		Seed:       opts.Seed + 101,
	})
}

// caseStudyGrid runs the (model x system) case-study grid on the worker
// pool and returns runs indexed [model][system], matching the order of
// caseStudyModels and caseStudySystems.
func caseStudyGrid(opts Options) ([][]*metrics.Run, error) {
	archs := caseStudyModels(opts.Quick)
	runs := make([][]*metrics.Run, len(archs))
	for i := range runs {
		runs[i] = make([]*metrics.Run, len(caseStudySystems))
	}
	err := forEach(opts.Workers(), len(archs)*len(caseStudySystems), func(i int) error {
		mi, si := i/len(caseStudySystems), i%len(caseStudySystems)
		run, err := caseStudyRun(opts, caseStudySystems[si], archs[mi])
		if err != nil {
			return err
		}
		runs[mi][si] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// Fig10aResult reproduces Fig. 10(a): the end-to-end time breakdown of the
// case study, highlighting the All-to-All component.
type Fig10aResult struct {
	Table *Table
	// A2AShare["system/model"] is the All-to-All fraction.
	A2AShare map[string]float64
	// A2ASpeedupVsFSDP["model"] is LAER's All-to-All time reduction.
	A2ASpeedupVsFSDP map[string]float64
}

// Fig10a generates the breakdown case study.
func Fig10a(opts Options) (*Fig10aResult, error) {
	opts = opts.withDefaults()
	res := &Fig10aResult{A2AShare: map[string]float64{}, A2ASpeedupVsFSDP: map[string]float64{}}
	t := &Table{
		ID:     "fig10a",
		Title:  "Case study: end-to-end time breakdown (Wikitext)",
		Header: []string{"model", "system", "iter (s)", "a2a (s)", "expert (s)", "others (s)", "a2a share"},
	}
	runs, err := caseStudyGrid(opts)
	if err != nil {
		return nil, err
	}
	for mi, arch := range caseStudyModels(opts.Quick) {
		fsdpA2A := 0.0
		for si, sys := range caseStudySystems {
			run := runs[mi][si]
			bd := run.MeanBreakdown()
			key := fmt.Sprintf("%s/%s", sys, arch.Name)
			res.A2AShare[key] = bd.A2AShare()
			if sys == training.SystemFSDPEP {
				fsdpA2A = bd.A2A
			}
			if sys == training.SystemLAER && bd.A2A > 0 {
				res.A2ASpeedupVsFSDP[arch.Name] = fsdpA2A / bd.A2A
			}
			t.AddRow(arch.Name, string(sys), f1(run.MeanIterationTime()),
				f1(bd.A2A), f1(bd.Expert), f1(bd.Others()), pct(bd.A2AShare()))
		}
	}
	t.Notes = append(t.Notes,
		"paper: FSDP+EP a2a reaches ~40%, LAER stays below 20% with up to 2.68x a2a speedup; expert compute is similar across systems")
	res.Table = t
	return res, nil
}

// Fig10bResult reproduces Fig. 10(b): the relative maximum token count per
// MoE layer (1.0 = perfect balance).
type Fig10bResult struct {
	Table *Table
	// MeanImbalance["system/model"] averages the per-layer series.
	MeanImbalance map[string]float64
	// Series["system/model"] is the per-layer series itself.
	Series map[string][]float64
}

// Fig10b generates the per-layer balance study.
func Fig10b(opts Options) (*Fig10bResult, error) {
	opts = opts.withDefaults()
	res := &Fig10bResult{MeanImbalance: map[string]float64{}, Series: map[string][]float64{}}
	t := &Table{
		ID:     "fig10b",
		Title:  "Case study: relative max token count per MoE layer (1.0 = perfect balance)",
		Header: []string{"model", "system", "mean", "worst layer", "per-layer"},
	}
	runs, err := caseStudyGrid(opts)
	if err != nil {
		return nil, err
	}
	for mi, arch := range caseStudyModels(opts.Quick) {
		for si, sys := range caseStudySystems {
			run := runs[mi][si]
			series := run.MeanPerLayerImbalance()
			key := fmt.Sprintf("%s/%s", sys, arch.Name)
			res.MeanImbalance[key] = stats.Mean(series)
			res.Series[key] = series
			t.AddRow(arch.Name, string(sys), f2(stats.Mean(series)), f2(stats.Max(series)),
				viz.Sparkline(series))
		}
	}
	t.Notes = append(t.Notes,
		"paper: LAER deviates least from ideal balance; the larger per-device expert count of e16k4 lets it get nearly perfect")
	res.Table = t
	return res, nil
}
