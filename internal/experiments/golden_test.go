package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// The golden tests pin the rendered experiment artifacts byte for byte, so
// a refactor that silently shifts any simulated metric — a cost-model
// tweak, a changed iteration order, a float reassociation — fails loudly
// instead of drifting the reproduction. Regenerate intentionally with
//
//	go test ./internal/experiments -run Golden -update
//
// Wall-clock measurements (Table 3's lite-routing timings) are the one
// thing a golden cannot pin; those cells are scrubbed to a fixed
// placeholder before comparison and the simulated columns around them
// stay byte-exact.

// goldenOpts fixes every knob that influences rendered output. Parallelism
// is deliberately left at the default (all CPUs): the harness guarantees
// byte-identical artifacts at any worker count, so the golden doubles as
// an end-to-end determinism check.
func goldenOpts() Options {
	return Options{Quick: true, Seed: 1}
}

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden.\n--- want ---\n%s\n--- got ---\n%s", name, want, got)
	}
}

func TestGoldenFig1b(t *testing.T) {
	r, err := Fig1b(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Table.Write(&buf)
	compareGolden(t, "fig1b.golden", buf.Bytes())
}

func TestGoldenForecast(t *testing.T) {
	r, err := Forecast(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Every column is simulated (the experiment strips wall-clock planner
	// time), so the artifact pins byte-exact — including the forecast
	// errors and the residual observation lag.
	var buf bytes.Buffer
	r.Table.Write(&buf)
	compareGolden(t, "forecast.golden", buf.Bytes())
}

func TestGoldenScale(t *testing.T) {
	r, err := Scale(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Every table column is simulated (planner wall time lives only in the
	// Cells), so the production-scale artifact pins byte-exact.
	var buf bytes.Buffer
	r.Table.Write(&buf)
	compareGolden(t, "scale.golden", buf.Bytes())
}

func TestGoldenResilience(t *testing.T) {
	r, err := Resilience(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Every column is simulated, so the elasticity artifact pins byte-exact
	// — and the pinned numbers must show re-layout recovery beating the
	// static-EP checkpoint-restore baseline (the PR's acceptance property).
	var warm, static *ResilienceCell
	for i := range r.Cells {
		switch r.Cells[i].Policy {
		case "warm":
			warm = &r.Cells[i]
		case "static":
			static = &r.Cells[i]
		}
	}
	if warm == nil || static == nil {
		t.Fatal("quick resilience run must compare warm against static")
	}
	if warm.RestoreTime >= static.RestoreTime {
		t.Errorf("warm restore charge %.2fs not below static %.2fs", warm.RestoreTime, static.RestoreTime)
	}
	if warm.AddedStepTime >= static.AddedStepTime {
		t.Errorf("warm recovery added %.2fs, static %.2fs — re-layout must recover faster", warm.AddedStepTime, static.AddedStepTime)
	}
	if warm.FaultImbalance >= static.FaultImbalance {
		t.Errorf("post-fault imbalance: warm %.2f not below static %.2f", warm.FaultImbalance, static.FaultImbalance)
	}
	var buf bytes.Buffer
	r.Table.Write(&buf)
	compareGolden(t, "resilience.golden", buf.Bytes())
}

func TestGoldenInference(t *testing.T) {
	r, err := Inference(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Every column is simulated, so the serving artifact pins byte-exact —
	// and the pinned numbers must show adaptive re-layout beating the
	// static layout on tail latency for at least one arrival shape (the
	// PR's acceptance property).
	cell := map[string]*InferenceCell{}
	for i := range r.Cells {
		c := &r.Cells[i]
		cell[string(c.Arrival)+"/"+string(c.Policy)] = c
		if c.Requests <= 0 {
			t.Errorf("%s/%s served no requests", c.Arrival, c.Policy)
		}
		if c.DecodeP50 <= 0 || c.DecodeP99 < c.DecodeP50 {
			t.Errorf("%s/%s implausible latencies p50=%g p99=%g", c.Arrival, c.Policy, c.DecodeP50, c.DecodeP99)
		}
	}
	adaptiveWins := false
	for _, arrival := range []string{"diurnal", "bursty"} {
		static := cell[arrival+"/static"]
		if static == nil {
			t.Fatalf("no static cell for %s arrival", arrival)
		}
		for _, policy := range []string{"warm", "predictive"} {
			if c := cell[arrival+"/"+policy]; c != nil && c.DecodeP99 < static.DecodeP99 {
				adaptiveWins = true
			}
		}
	}
	if !adaptiveWins {
		t.Error("neither warm nor predictive beat static on p99 decode latency on any arrival shape")
	}
	var buf bytes.Buffer
	r.Table.Write(&buf)
	compareGolden(t, "inference.golden", buf.Bytes())
}

func TestGoldenTable3(t *testing.T) {
	r, err := Table3(goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Columns 1 and 3 are real wall-clock measurements ("lite routing
	// (ms/iter)" and "share of total"); scrub them before rendering so the
	// simulated denominator column pins byte-exact.
	for _, row := range r.Table.Rows {
		row[1], row[3] = "(measured)", "(measured)"
	}
	var buf bytes.Buffer
	r.Table.Write(&buf)
	compareGolden(t, "tab3.golden", buf.Bytes())
}
