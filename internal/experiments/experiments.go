// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 5 and appendices) from the simulator. Each experiment
// returns structured results plus a formatted Table so that the command
// line tool (cmd/laer-exp) and the benchmark harness (bench_test.go at the
// repository root) print identical artifacts.
//
// Absolute numbers differ from the paper — the substrate is a simulator,
// not the authors' A100 testbed — but the shapes under test (who wins, by
// roughly what factor, where crossovers fall) are asserted in this
// package's tests and recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"

	"laermoe/internal/topology"
	"laermoe/internal/viz"
)

// Options configures an experiment run.
type Options struct {
	// Topo is the simulated cluster (nil → the paper's 4x8 A100 cluster).
	Topo *topology.Topology
	// Iterations and Warmup control each simulated training run
	// (0 → 10 and 2).
	Iterations int
	Warmup     int
	// Quick trims sweep dimensions for fast smoke runs.
	Quick bool
	Seed  int64
	// Parallelism bounds the worker pool that fans independent sweep
	// cells across CPUs: 0 uses GOMAXPROCS, 1 forces serial execution,
	// n > 1 uses n workers. Output is byte-identical at any setting.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.Topo == nil {
		o.Topo = topology.Default()
	}
	if o.Iterations == 0 {
		o.Iterations = 10
	}
	if o.Warmup == 0 {
		o.Warmup = 2
	}
	return o
}

// Dataset models the evaluation corpora: routing concentration differs
// between them, which is how the paper's per-dataset spread arises.
type Dataset struct {
	Name string
	Skew float64
	Seed int64
}

// Datasets returns the evaluated corpora.
func Datasets() []Dataset {
	return []Dataset{
		{Name: "wikitext", Skew: 1.15, Seed: 101},
		{Name: "c4", Skew: 0.95, Seed: 707},
	}
}

// Table is a formatted experiment artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	rows := append([][]string{t.Header}, t.Rows...)
	viz.Table(w, rows)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// IDs lists every runnable experiment id.
func IDs() []string {
	return []string{"tab2", "fig1a", "fig1b", "fig2", "fig8", "fig9",
		"fig10a", "fig10b", "tab3", "fig11", "fig12", "tab4", "eq1", "forecast", "scale", "resilience", "inference"}
}

// Run dispatches an experiment by id and returns its tables.
func Run(id string, opts Options) ([]*Table, error) {
	switch id {
	case "tab2":
		return []*Table{Table2(opts)}, nil
	case "fig1a":
		r, err := Fig1a(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "fig1b":
		r, err := Fig1b(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "fig2":
		r := Fig2(opts)
		return []*Table{r.Table}, nil
	case "fig8":
		r, err := Fig8(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "fig9":
		r, err := Fig9(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table, r.ErrorTable}, nil
	case "fig10a":
		r, err := Fig10a(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "fig10b":
		r, err := Fig10b(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "tab3":
		r, err := Table3(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "fig11":
		r, err := Fig11(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "fig12":
		r, err := Fig12(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "tab4":
		r, err := Table4(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "eq1":
		r := Eq1(opts)
		return []*Table{r.Table}, nil
	case "forecast":
		r, err := Forecast(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "scale":
		r, err := Scale(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "resilience":
		r, err := Resilience(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	case "inference":
		r, err := Inference(opts)
		if err != nil {
			return nil, err
		}
		return []*Table{r.Table}, nil
	}
	return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
}
