package experiments

import (
	"fmt"

	"laermoe/internal/model"
	"laermoe/internal/training"
)

// Fig8Cell is one end-to-end measurement of Fig. 8.
type Fig8Cell struct {
	Model      string
	Dataset    string
	AuxWeight  float64
	System     training.System
	Throughput float64 // tokens/s
	IterTime   float64
}

// Fig8Result reproduces Fig. 8: end-to-end throughput of LAER-MoE,
// Megatron, FSDP+EP and FlexMoE across the six model configurations.
type Fig8Result struct {
	Table *Table
	Cells []Fig8Cell
	// SpeedupVsMegatron / SpeedupVsFSDP / SpeedupVsFlex index by
	// "model/dataset/weight".
	SpeedupVsMegatron map[string]float64
	SpeedupVsFSDP     map[string]float64
	SpeedupVsFlex     map[string]float64
}

// Fig8Systems are the compared systems, in presentation order.
var Fig8Systems = []training.System{
	training.SystemMegatron, training.SystemFSDPEP,
	training.SystemFlexMoE, training.SystemLAER,
}

// Fig8 runs the end-to-end comparison. Quick mode runs one dataset and
// weight; the full mode covers both datasets and both evaluated aux-loss
// weights (0 and 1e-4).
func Fig8(opts Options) (*Fig8Result, error) {
	opts = opts.withDefaults()
	models := model.All()
	datasets := Datasets()
	weights := []float64{0, 1e-4}
	if opts.Quick {
		models = []*model.Config{model.Mixtral8x7B, model.Mixtral8x7BE16}
		datasets = datasets[:1]
		weights = weights[:1]
	}

	res := &Fig8Result{
		SpeedupVsMegatron: map[string]float64{},
		SpeedupVsFSDP:     map[string]float64{},
		SpeedupVsFlex:     map[string]float64{},
	}
	t := &Table{
		ID:    "fig8",
		Title: "End-to-end throughput (tokens/s) and LAER speedups",
		Header: []string{"model", "dataset", "aux", "megatron", "fsdp+ep", "flexmoe", "laer",
			"vs meg", "vs fsdp", "vs flex"},
	}

	// The grid cells are independent runs: fan them across the worker
	// pool and assemble rows in index order afterwards.
	type cellCfg struct {
		arch *model.Config
		ds   Dataset
		w    float64
		sys  training.System
	}
	var cells []cellCfg
	for _, arch := range models {
		for _, ds := range datasets {
			for _, w := range weights {
				for _, sys := range Fig8Systems {
					cells = append(cells, cellCfg{arch: arch, ds: ds, w: w, sys: sys})
				}
			}
		}
	}
	runs := make([]Fig8Cell, len(cells))
	err := forEach(opts.Workers(), len(cells), func(i int) error {
		c := cells[i]
		run, err := training.Run(training.RunConfig{
			System:        c.sys,
			Arch:          c.arch,
			Topo:          opts.Topo,
			AuxLossWeight: c.w,
			Iterations:    opts.Iterations,
			Warmup:        opts.Warmup,
			TraceSkew:     c.ds.Skew,
			Seed:          c.ds.Seed + opts.Seed,
		})
		if err != nil {
			return fmt.Errorf("fig8 %s/%s/%s: %w", c.arch.Name, c.ds.Name, c.sys, err)
		}
		runs[i] = Fig8Cell{
			Model: c.arch.Name, Dataset: c.ds.Name, AuxWeight: c.w, System: c.sys,
			Throughput: run.Throughput(), IterTime: run.MeanIterationTime(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for i := 0; i < len(cells); i += len(Fig8Systems) {
		c := cells[i]
		tput := map[training.System]float64{}
		for k, sys := range Fig8Systems {
			tput[sys] = runs[i+k].Throughput
			res.Cells = append(res.Cells, runs[i+k])
		}
		key := fmt.Sprintf("%s/%s/%g", c.arch.Name, c.ds.Name, c.w)
		laer := tput[training.SystemLAER]
		res.SpeedupVsMegatron[key] = laer / tput[training.SystemMegatron]
		res.SpeedupVsFSDP[key] = laer / tput[training.SystemFSDPEP]
		res.SpeedupVsFlex[key] = laer / tput[training.SystemFlexMoE]
		t.AddRow(c.arch.Name, c.ds.Name, fmt.Sprintf("%g", c.w),
			f0(tput[training.SystemMegatron]), f0(tput[training.SystemFSDPEP]),
			f0(tput[training.SystemFlexMoE]), f0(laer),
			f2(res.SpeedupVsMegatron[key])+"x",
			f2(res.SpeedupVsFSDP[key])+"x",
			f2(res.SpeedupVsFlex[key])+"x")
	}
	t.Notes = append(t.Notes,
		"paper: up to 1.69x vs Megatron, 1.50x vs FSDP+EP, avg ~1.20x vs FlexMoE; "+
			"FSDP+EP beats Megatron on e8k2 (memory forces Megatron to larger TP), Megatron wins on e16k4")
	res.Table = t
	return res, nil
}

func f0(v float64) string { return fmt.Sprintf("%.0f", v) }

// MaxSpeedup returns the largest value in a speedup map.
func MaxSpeedup(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// MeanSpeedup returns the average value in a speedup map.
func MeanSpeedup(m map[string]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range m {
		s += v
	}
	return s / float64(len(m))
}
