package experiments

import (
	"fmt"

	"laermoe/internal/model"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
	"laermoe/internal/training"
)

// ScaleCell is one shape/policy measurement of the production-scale online
// re-layout experiment.
type ScaleCell struct {
	Devices int
	Experts int
	Layers  int
	Policy  training.ReplanPolicy

	TotalStepTime float64
	Throughput    float64
	Migrations    int
	Imbalance     float64 // mean over epochs
	// PlannerTime is the measured wall-clock CPU time of every boundary
	// solve (informational; excluded from the golden-pinned table).
	PlannerTime float64
}

// ScaleResult is the `scale` experiment: online re-layout at production
// cluster shapes — 512 and 1024 devices, 64 MoE layers, expert pools up to
// 4096 — comparing the never-replanned static baseline against warm-start
// replanning over a migrating hot set. These shapes are only tractable
// because trace synthesis and the warm solver run allocation-free on
// reused buffers (Generator.StepInto, the solver scratch arena) with
// per-layer generation fanned across the worker pool.
type ScaleResult struct {
	Table *Table
	Cells []ScaleCell
}

// scaleShape is one simulated deployment shape.
type scaleShape struct {
	arch   *model.Config
	layers int
	nodes  int
	gpus   int
	tokens int
}

func scaleShapes(quick bool) []scaleShape {
	if quick {
		// One modest shape keeps the golden/determinism suites fast while
		// still exercising the large-E code paths (E >> slots per device).
		return []scaleShape{
			{arch: model.SyntheticE512, layers: 4, nodes: 16, gpus: 8, tokens: 2048},
		}
	}
	return []scaleShape{
		{arch: model.SyntheticE2048, layers: 64, nodes: 64, gpus: 8, tokens: 2048},
		{arch: model.SyntheticE4096, layers: 64, nodes: 128, gpus: 8, tokens: 1024},
		// The frontier cell: 4096 GPUs x 16384 experts. Two layers — the
		// dense routing matrix alone is 4096x16384 per layer — which is
		// enough to measure what the drift-delta planner amortizes at a
		// shape where a full per-layer re-score costs O(E*N).
		{arch: model.SyntheticE16384, layers: 2, nodes: 512, gpus: 8, tokens: 512},
	}
}

// Scale runs the production-scale online re-layout sweep: policy x shape
// on a migrating-hot-set trace, with FSEP's free re-layout (the regime the
// paper argues for at scale). Every cell replays the same trace, so the
// static-vs-warm gap isolates what load-adaptive re-layout buys when both
// the cluster and the expert pool are one to two orders of magnitude past
// the paper's 32-GPU evaluation.
func Scale(opts Options) (*ScaleResult, error) {
	opts = opts.withDefaults()
	shapes := scaleShapes(opts.Quick)
	policies := []training.ReplanPolicy{training.ReplanStatic, training.ReplanWarm}

	type cellCfg struct {
		shape  scaleShape
		policy training.ReplanPolicy
	}
	var cells []cellCfg
	for _, sh := range shapes {
		for _, pol := range policies {
			cells = append(cells, cellCfg{shape: sh, policy: pol})
		}
	}

	runs := make([]ScaleCell, len(cells))
	err := forEach(opts.Workers(), len(cells), func(i int) error {
		c := cells[i]
		arch := *c.shape.arch
		arch.Layers = c.shape.layers
		n := c.shape.nodes * c.shape.gpus
		rep, err := training.RunOnline(training.OnlineConfig{
			Policy: c.policy,
			Arch:   &arch,
			Topo:   topology.New(c.shape.nodes, c.shape.gpus),
			Epochs: 2, IterationsPerEpoch: 3,
			Drift:                trace.DriftConfig{Model: trace.DriftMigration, Rate: 0.3},
			ForceTokensPerDevice: c.shape.tokens,
			GlobalBatchTokens:    n * c.shape.tokens,
			Parallelism:          1, // the cells themselves fan out
			Seed:                 opts.Seed,
		})
		if err != nil {
			return fmt.Errorf("scale N=%d E=%d %s: %w", n, arch.Experts, c.policy, err)
		}
		cell := ScaleCell{
			Devices: n, Experts: arch.Experts, Layers: arch.Layers,
			Policy:        c.policy,
			TotalStepTime: rep.TotalStepTime,
			Throughput:    rep.MeanThroughput(),
			Migrations:    rep.TotalMigrations,
		}
		for _, e := range rep.Epochs {
			cell.Imbalance += e.Imbalance
			cell.PlannerTime += e.PlannerTime
		}
		cell.Imbalance /= float64(len(rep.Epochs))
		runs[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "scale",
		Title: "Online re-layout at production scale: policy x shape on a migrating hot set (free FSEP re-layout)",
		Header: []string{"N (GPUs)", "E", "layers", "policy", "total step (s)",
			"tokens/s", "migrations", "imbalance"},
	}
	for _, cell := range runs {
		t.AddRow(
			fmt.Sprintf("%d", cell.Devices),
			fmt.Sprintf("%d", cell.Experts),
			fmt.Sprintf("%d", cell.Layers),
			string(cell.Policy),
			f1(cell.TotalStepTime), f0(cell.Throughput),
			fmt.Sprintf("%d", cell.Migrations), f2(cell.Imbalance))
	}
	t.Notes = append(t.Notes,
		"shapes one to two orders of magnitude past the paper's 32-GPU testbed; trace synthesis and warm solves run allocation-free on reused buffers",
		"warm-start replanning halves the load imbalance everywhere; it turns into throughput where expert compute sits on the critical path,",
		"while at the bandwidth-bound 1024-GPU shape All-to-All serialization absorbs the balance win (the Eq. 1 overlap boundary)")
	return &ScaleResult{Table: t, Cells: runs}, nil
}
