package experiments

import (
	"laermoe/internal/executor"
	"laermoe/internal/metrics"
	"laermoe/internal/model"
	"laermoe/internal/planner"
	"laermoe/internal/training"
)

// Fig12Result reproduces Fig. 12: the ablation of the layout solver's
// candidate schemes and of the communication-scheduling optimizations.
type Fig12Result struct {
	Table *Table
	// Throughput by variant name.
	Throughput map[string]float64
}

// Fig12Variants are the ablation arms, matching the artifact's
// ablation.sh: full LAER, single-scheme solvers, no communication
// optimizations, and the FSDP+EP floor.
var Fig12Variants = []string{"laer", "no_even", "no_pq", "no_comm_opt", "fsdp+ep"}

// Fig12 runs the ablation study on Mixtral-8x7B e8k2.
func Fig12(opts Options) (*Fig12Result, error) {
	opts = opts.withDefaults()
	res := &Fig12Result{Throughput: map[string]float64{}}
	t := &Table{
		ID:     "fig12",
		Title:  "Ablation study (Mixtral-8x7B e8k2, Wikitext)",
		Header: []string{"variant", "iter (s)", "throughput (tok/s)", "vs full LAER"},
	}
	runs := make([]*metrics.Run, len(Fig12Variants))
	err := forEach(opts.Workers(), len(Fig12Variants), func(i int) error {
		cfg := training.RunConfig{
			System:     training.SystemLAER,
			Arch:       model.Mixtral8x7B,
			Topo:       opts.Topo,
			Iterations: opts.Iterations,
			Warmup:     opts.Warmup,
			TraceSkew:  1.15,
			Seed:       opts.Seed + 201,
		}
		switch Fig12Variants[i] {
		case "laer":
		case "no_even":
			cfg.SolverOpts = planner.SolverOptions{Epsilon: 1, DisableEven: true}
		case "no_pq":
			cfg.SolverOpts = planner.SolverOptions{Epsilon: 1, DisablePQ: true}
		case "no_comm_opt":
			cfg.Comm = executor.CommOpts{}
			cfg.CommSet = true
		case "fsdp+ep":
			cfg.System = training.SystemFSDPEP
		}
		run, err := training.Run(cfg)
		if err != nil {
			return err
		}
		runs[i] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	var full float64
	for i, variant := range Fig12Variants {
		run := runs[i]
		tput := run.Throughput()
		res.Throughput[variant] = tput
		if variant == "laer" {
			full = tput
		}
		rel := "1.00x"
		if variant != "laer" && full > 0 {
			rel = f2(tput/full) + "x"
		}
		t.AddRow(variant, f1(run.MeanIterationTime()), f0(tput), rel)
	}
	t.Notes = append(t.Notes,
		"single replica schemes cannot handle all routing patterns; dropping the Fig. 5 scheduling exposes prefetch and gradient traffic")
	res.Table = t
	return res, nil
}
