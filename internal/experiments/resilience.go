package experiments

import (
	"fmt"
	"strings"

	"laermoe/internal/faults"
	"laermoe/internal/model"
	"laermoe/internal/trace"
	"laermoe/internal/training"
)

// ResilienceCell is one policy's run under one fault schedule.
type ResilienceCell struct {
	Schedule string
	Policy   training.ReplanPolicy

	TotalStepTime float64
	Throughput    float64
	Migrations    int

	// Restored/RestoreTime sum the checkpoint re-read volume and charge
	// over every fault event of the run.
	Restored    int
	RestoreTime float64
	// AddedStepTime, FaultImbalance and EpochsToRecover describe the first
	// failure epoch: the step-time it added over the previous epoch, the
	// imbalance the policy ran at while absorbing it, and how many epochs
	// the policy needed to return to within 10% of the pre-fault imbalance
	// (-1 = not within the run).
	AddedStepTime   float64
	FaultImbalance  float64
	EpochsToRecover int
}

// ResilienceResult is the elasticity experiment: fault-injected node
// loss/join absorbed by re-layout (the adaptive policies) versus the
// static-EP baseline, which must checkpoint-restore the whole layer.
type ResilienceResult struct {
	Table *Table
	Cells []ResilienceCell
}

// resilienceSchedules returns the evaluated fault scenarios. Quick mode
// keeps the loss+rejoin cycle only — the schedule the acceptance golden
// pins.
func resilienceSchedules(quick bool) []string {
	if quick {
		return []string{"2:fail:1,4:join:1"}
	}
	return []string{
		"2:fail:1",            // permanent node loss
		"2:fail:1,4:join:1",   // preemption/repair cycle
		"2.3:fail:2,4:join:2", // mid-epoch loss, the planner reacts inside the window
	}
}

// resiliencePolicies returns the compared recovery mechanisms. Static EP
// is always included — it is the baseline the re-layout policies must
// beat; quick mode drops the predictive arm.
func resiliencePolicies(quick bool) []training.ReplanPolicy {
	if quick {
		return []training.ReplanPolicy{training.ReplanWarm, training.ReplanStatic}
	}
	return []training.ReplanPolicy{training.ReplanPredictive, training.ReplanWarm, training.ReplanStatic}
}

// Resilience runs the elastic-cluster experiment: every policy absorbs the
// same deterministic fault schedules on the same drifting trace, paying
// the modeled checkpoint-restore charge for expert state no surviving
// device holds. The adaptive policies repair by re-layout (re-placing only
// the lost replicas); the static baseline re-reads every slot of the layer
// — the recovery-cost gap is the experiment's headline.
func Resilience(opts Options) (*ResilienceResult, error) {
	opts = opts.withDefaults()
	schedules := resilienceSchedules(opts.Quick)
	policies := resiliencePolicies(opts.Quick)

	type cellCfg struct {
		schedule string
		policy   training.ReplanPolicy
	}
	var cells []cellCfg
	for _, s := range schedules {
		for _, p := range policies {
			cells = append(cells, cellCfg{schedule: s, policy: p})
		}
	}

	runs := make([]ResilienceCell, len(cells))
	err := forEach(opts.Workers(), len(cells), func(i int) error {
		c := cells[i]
		sched, err := faults.Parse(c.schedule)
		if err != nil {
			return fmt.Errorf("resilience %q: %w", c.schedule, err)
		}
		rep, err := training.RunOnline(training.OnlineConfig{
			Policy: c.policy,
			Arch:   model.Mixtral8x7B,
			Topo:   opts.Topo,
			Epochs: 6, IterationsPerEpoch: 6,
			Drift:             trace.DriftConfig{Model: trace.DriftStabilizing},
			Faults:            sched,
			GlobalBatchTokens: 1 << 19,
			Parallelism:       1, // the cells themselves fan out
			Seed:              opts.Seed,
		})
		if err != nil {
			return fmt.Errorf("resilience %q/%s: %w", c.schedule, c.policy, err)
		}
		cell := ResilienceCell{
			Schedule:        c.schedule,
			Policy:          c.policy,
			TotalStepTime:   rep.TotalStepTime,
			Throughput:      rep.MeanThroughput(),
			Migrations:      rep.TotalMigrations,
			EpochsToRecover: -1,
		}
		for _, r := range rep.Recoveries {
			cell.Restored += r.Restored
			cell.RestoreTime += r.RestoreTime
		}
		// The first failure epoch carries the recovery story; join epochs
		// only widen the cluster again.
		for _, r := range rep.Recoveries {
			if strings.Contains(strings.Join(r.Events, ","), ":fail:") {
				cell.AddedStepTime = r.AddedStepTime
				cell.FaultImbalance = rep.Epochs[r.Epoch].Imbalance
				cell.EpochsToRecover = r.EpochsToRecover
				break
			}
		}
		runs[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "resilience",
		Title: "Elastic clusters: fault-injected node loss/join, re-layout recovery vs static-EP checkpoint restore",
		Header: []string{"fault schedule", "policy", "total step (s)", "tokens/s",
			"restored", "restore (s)", "added step (s)", "fault imb", "recovered (epochs)", "migrations"},
	}
	for _, cell := range runs {
		recovered := fmt.Sprintf("%d", cell.EpochsToRecover)
		if cell.EpochsToRecover < 0 {
			recovered = "never"
		}
		t.AddRow(cell.Schedule, string(cell.Policy),
			f1(cell.TotalStepTime), f0(cell.Throughput),
			fmt.Sprintf("%d", cell.Restored), f2(cell.RestoreTime),
			f2(cell.AddedStepTime), f2(cell.FaultImbalance),
			recovered, fmt.Sprintf("%d", cell.Migrations))
	}
	t.Notes = append(t.Notes,
		"restore charged per replica re-read from the sharded checkpoint (storage fabric, not the training interconnect)",
		"adaptive policies repair by re-layout and re-read only orphaned experts; static EP re-reads every slot of the layer")
	return &ResilienceResult{Table: t, Cells: runs}, nil
}
