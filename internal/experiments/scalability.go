package experiments

import (
	"fmt"

	"laermoe/internal/model"
	"laermoe/internal/topology"
	"laermoe/internal/training"
)

// Table4Result reproduces Appendix D (Table 4): the MLP-module speedup of
// LAER-MoE over FSDP+EP as the simulated cluster scales from 8 to 128
// GPUs, driven by Mixtral-8x7B e8k2 routing.
type Table4Result struct {
	Table *Table
	// Speedup[n] is the MLP (token All-to-All + expert compute) speedup
	// at cluster size n.
	Speedup map[int]float64
}

// Table4 runs the scalability simulation.
func Table4(opts Options) (*Table4Result, error) {
	opts = opts.withDefaults()
	sizes := []int{8, 16, 32, 64, 128}
	if opts.Quick {
		sizes = []int{8, 32}
	}
	arch := model.Mixtral8x7B
	res := &Table4Result{Speedup: map[int]float64{}}
	t := &Table{
		ID:     "tab4",
		Title:  "Simulated MLP speedup of LAER-MoE vs FSDP+EP on varying cluster sizes (Mixtral-8x7B e8k2 routing)",
		Header: []string{"GPUs", "fsdp+ep MLP (s)", "laer MLP (s)", "MLP speedup"},
	}
	systems := []training.System{training.SystemFSDPEP, training.SystemLAER}
	mlps := make([]float64, len(sizes)*len(systems))
	err := forEach(opts.Workers(), len(mlps), func(i int) error {
		n := sizes[i/len(systems)]
		sys := systems[i%len(systems)]
		nodes := n / 8
		if nodes == 0 {
			nodes = 1
		}
		topo := topology.New(nodes, n/nodes)
		run, err := training.Run(training.RunConfig{
			System:     sys,
			Arch:       arch,
			Topo:       topo,
			Iterations: opts.Iterations,
			Warmup:     opts.Warmup,
			TraceSkew:  1.15,
			Seed:       opts.Seed + 301,
			// Appendix D models the MLP module at fixed per-device
			// load; memory feasibility is out of scope at N=8.
			ForceTokensPerDevice: 16384,
			GlobalBatchTokens:    n * 16384 * 4,
		})
		if err != nil {
			return err
		}
		bd := run.MeanBreakdown()
		mlps[i] = bd.A2A + bd.Expert
		return nil
	})
	if err != nil {
		return nil, err
	}
	for k, n := range sizes {
		fsdp, laer := mlps[k*len(systems)], mlps[k*len(systems)+1]
		speedup := fsdp / laer
		res.Speedup[n] = speedup
		t.AddRow(fmt.Sprintf("%d", n), f1(fsdp), f1(laer), f3(speedup)+"x")
	}
	t.Notes = append(t.Notes, "paper: speedup stays ~1.48-1.49x from 8 to 128 GPUs")
	res.Table = t
	return res, nil
}
