package experiments

import (
	"fmt"

	"laermoe/internal/costmodel"
	"laermoe/internal/model"
)

// Table2 reproduces Table 2: the evaluated model configurations.
func Table2(opts Options) *Table {
	t := &Table{
		ID:     "tab2",
		Title:  "Configurations of the evaluated models",
		Header: []string{"model", "layers", "params (B)", "activs (B)", "E&K", "C"},
	}
	for _, c := range model.All() {
		t.AddRow(c.Name,
			fmt.Sprintf("%d", c.Layers),
			f2(float64(c.TotalParams())/1e9),
			f2(float64(c.ActivatedParams())/1e9),
			fmt.Sprintf("%d&%d", c.Experts, c.TopK),
			fmt.Sprintf("%d", c.ExpertCapacity))
	}
	return t
}

// Eq1Result reproduces the Eq. 1 overlap analysis: per-device token counts
// versus the prefetch-hiding threshold.
type Eq1Result struct {
	Table *Table
	// ThresholdTokens is the analytic Eq. 1 threshold for e8k2.
	ThresholdTokens float64
	// Crossover is the first swept S at which compute hides prefetch.
	Crossover int
}

// Eq1 sweeps the micro-batch size and reports where balanced expert
// computation starts to hide the FSEP parameter prefetch.
func Eq1(opts Options) *Eq1Result {
	opts = opts.withDefaults()
	arch := model.Mixtral8x7B
	cm := costmodel.New(arch, opts.Topo, 8192)
	res := &Eq1Result{ThresholdTokens: cm.OverlapThresholdTokens()}
	t := &Table{
		ID:    "eq1",
		Title: "Computation/communication overlap condition (Eq. 1, Mixtral-8x7B e8k2)",
		Header: []string{"S (tokens/device)", "expert compute (ms)", "prefetch (ms)",
			"compute hides prefetch"},
	}
	prefetch := cm.PrefetchBytesPerDevice() / opts.Topo.InterBW
	for s := 2048; s <= 32768; s *= 2 {
		compute := float64(s*arch.TopK) * cm.TokenExpertFLOPs() / opts.Topo.FLOPS
		hides := cm.OverlapSatisfied(s)
		if hides && res.Crossover == 0 {
			res.Crossover = s
		}
		t.AddRow(fmt.Sprintf("%d", s), f2(compute*1e3), f2(prefetch*1e3), fmt.Sprintf("%v", hides))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("analytic threshold S > %.0f tokens; the paper reports ~17K theoretical, 16K sufficient in practice", res.ThresholdTokens))
	res.Table = t
	return res
}
