package experiments

import (
	"testing"

	"laermoe/internal/model"
	"laermoe/internal/topology"
	"laermoe/internal/trace"
	"laermoe/internal/training"
)

// BenchmarkScaleSmoke is the quick variant of the scale experiment's
// N=4096/E=16384 frontier cell: one layer of the synthetic-e16384 model
// at reduced tokens, driven through the online planner's observe→solve
// path. It exists so CI touches the largest shape on every bench run — a
// single dense routing matrix here is 4096x16384 cells, which is the
// regime the drift-delta planner amortizes — without the multi-minute
// full sweep. Each op is one drifting epoch on a warmed planner, i.e.
// the steady state the incremental path carries; the solve-path counters
// are reported so a regression that silently drops the fast path shows
// up in the bench log.
func BenchmarkScaleSmoke(b *testing.B) {
	arch := *model.SyntheticE16384
	arch.Layers = 1
	p, err := training.NewOnlinePlanner(training.OnlineConfig{
		Policy: training.ReplanWarm,
		Arch:   &arch,
		Topo:   topology.New(512, 8),
		Epochs: 2, IterationsPerEpoch: 3,
		Drift:                trace.DriftConfig{Model: trace.DriftMigration, Rate: 0.3},
		ForceTokensPerDevice: 256,
		GlobalBatchTokens:    512 * 8 * 256,
		Seed:                 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := training.ObservationGenerator(trace.GeneratorConfig{
		Devices: p.Devices(), Experts: p.Experts(), Layers: p.Layers(),
		TokensPerDevice: p.Setup().TokensPerDev, TopK: arch.TopK, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	var routing []*trace.RoutingMatrix
	routing = gen.StepInto(routing)
	if _, _, err := p.PlanEpoch(routing); err != nil {
		b.Fatal(err) // cold start: full solve, off the clock
	}
	inc, full := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := gen.ApplyDrift(trace.DriftConfig{Model: trace.DriftMigration, Rate: 0.05}); err != nil {
			b.Fatal(err)
		}
		routing = gen.StepInto(routing)
		b.StartTimer()
		if _, _, err := p.PlanEpoch(routing); err != nil {
			b.Fatal(err)
		}
		sum := p.Summarize()
		inc += sum.IncrementalSolves
		full += sum.FullSolves
	}
	b.ReportMetric(float64(inc), "incremental_solves")
	b.ReportMetric(float64(full), "full_solves")
	if inc == 0 {
		b.Fatal("frontier cell never took the incremental path")
	}
}
