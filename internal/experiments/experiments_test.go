package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, Iterations: 6, Warmup: 2, Seed: 1}
}

func TestTable2MatchesCatalog(t *testing.T) {
	tab := Table2(quickOpts())
	if len(tab.Rows) != 6 {
		t.Fatalf("Table 2 has %d rows, want 6", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Write(&buf)
	for _, want := range []string{"mixtral-8x7b-e8k2", "46.7", "12.8", "8&2", "16&4"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
}

func TestFig1aShowsDynamicImbalance(t *testing.T) {
	r, err := Fig1a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	over := 0
	for _, imb := range r.Imbalance {
		if imb > 1.5 {
			over++
		}
	}
	if over < len(r.Imbalance)/2 {
		t.Errorf("overloaded experts in only %d/%d iterations", over, len(r.Imbalance))
	}
	// The hot expert must change over the run (dynamic distribution).
	hotOf := func(shares []float64) int {
		hot := 0
		for j, v := range shares {
			if v > shares[hot] {
				hot = j
			}
		}
		return hot
	}
	first := hotOf(r.Shares[0])
	changed := false
	for _, s := range r.Shares {
		if hotOf(s) != first {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("hot expert never changed across the trace")
	}
}

func TestFig1bBalanceShrinksA2A(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	r, err := Fig1b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.BalancedShare >= r.DefaultShare {
		t.Errorf("balanced a2a share %.3f not below default %.3f", r.BalancedShare, r.DefaultShare)
	}
	if r.DefaultShare < 0.25 {
		t.Errorf("default a2a share %.3f; paper reports it rising beyond 40%%, expect > 25%%", r.DefaultShare)
	}
	if r.BalancedShare > 0.12 {
		t.Errorf("balanced a2a share %.3f; paper reports under 10%%", r.BalancedShare)
	}
}

func TestFig2OrderingByWeight(t *testing.T) {
	r := Fig2(quickOpts())
	if !(r.StepsToTarget[0] <= r.StepsToTarget[1e-4] &&
		r.StepsToTarget[1e-4] < r.StepsToTarget[1e-3] &&
		r.StepsToTarget[1e-3] < r.StepsToTarget[1e-2]) {
		t.Errorf("steps-to-target not increasing with aux weight: %v", r.StepsToTarget)
	}
}

func TestFig8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	r, err := Fig8(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// LAER wins every cell.
	for key, v := range r.SpeedupVsMegatron {
		if v <= 1 {
			t.Errorf("%s: LAER not faster than Megatron (%.2fx)", key, v)
		}
	}
	for key, v := range r.SpeedupVsFSDP {
		if v <= 1 {
			t.Errorf("%s: LAER not faster than FSDP+EP (%.2fx)", key, v)
		}
	}
	for key, v := range r.SpeedupVsFlex {
		if v <= 1 {
			t.Errorf("%s: LAER not faster than FlexMoE (%.2fx)", key, v)
		}
	}
	// The e8k2/e16k4 crossover between Megatron and FSDP+EP.
	tput := map[string]map[string]float64{}
	for _, c := range r.Cells {
		if tput[c.Model] == nil {
			tput[c.Model] = map[string]float64{}
		}
		tput[c.Model][string(c.System)] = c.Throughput
	}
	if tput["mixtral-8x7b-e8k2"]["fsdp+ep"] <= tput["mixtral-8x7b-e8k2"]["megatron"] {
		t.Error("e8k2: FSDP+EP should beat Megatron (memory forces larger TP)")
	}
	if tput["mixtral-8x7b-e16k4"]["megatron"] <= tput["mixtral-8x7b-e16k4"]["fsdp+ep"] {
		t.Error("e16k4: Megatron should beat FSDP+EP (smaller TP allowed)")
	}
}

func TestFig9LAERConvergesFastest(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	r, err := Fig9(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	laer := r.TimeToTarget["LAER-MoE@1e-4"]
	meg2 := r.TimeToTarget["Megatron@1e-2"]
	meg4 := r.TimeToTarget["Megatron@1e-4"]
	if !(laer < meg2 && laer < meg4) {
		t.Errorf("LAER wall-clock %.0fs not fastest (meg@1e-2 %.0fs, meg@1e-4 %.0fs)", laer, meg2, meg4)
	}
	// Paper: Megatron at 1e-2 converges faster in wall-clock than at 1e-4
	// (balanced routing makes iterations faster despite more steps).
	if meg2 >= meg4 {
		t.Errorf("Megatron@1e-2 (%.0fs) should beat Megatron@1e-4 (%.0fs) in wall-clock", meg2, meg4)
	}
	if r.MaxRelError >= 1e-3 {
		t.Errorf("relative error %.2e, want < 1e-3 (Fig. 9b)", r.MaxRelError)
	}
}

func TestFig10Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	a, err := Fig10a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	laerShare := a.A2AShare["laer/mixtral-8x7b-e8k2"]
	fsdpShare := a.A2AShare["fsdp+ep/mixtral-8x7b-e8k2"]
	if laerShare >= 0.25 {
		t.Errorf("LAER a2a share %.3f, paper keeps it below ~20%%", laerShare)
	}
	if fsdpShare <= laerShare {
		t.Errorf("FSDP+EP a2a share %.3f not above LAER's %.3f", fsdpShare, laerShare)
	}
	if sp := a.A2ASpeedupVsFSDP["mixtral-8x7b-e8k2"]; sp < 1.5 {
		t.Errorf("LAER a2a speedup %.2fx vs FSDP+EP; paper reports up to 2.68x, expect > 1.5x", sp)
	}

	b, err := Fig10b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	laerImb := b.MeanImbalance["laer/mixtral-8x7b-e8k2"]
	fsdpImb := b.MeanImbalance["fsdp+ep/mixtral-8x7b-e8k2"]
	flexImb := b.MeanImbalance["flexmoe/mixtral-8x7b-e8k2"]
	if !(laerImb < flexImb && flexImb < fsdpImb) {
		t.Errorf("imbalance ordering violated: laer %.2f, flexmoe %.2f, fsdp %.2f", laerImb, flexImb, fsdpImb)
	}
}

func TestTable3LiteRoutingIsCheap(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	r, err := Table3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for name, share := range r.Share {
		if share > 0.001 {
			t.Errorf("%s: lite routing is %.4f%% of iteration time; paper keeps it below 0.1%%", name, 100*share)
		}
	}
}

func TestFig11SolverWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	r, err := Fig11(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for key, ms := range r.SolveMillis {
		if ms >= r.BaselineMillis {
			t.Errorf("N=%d C=%d: solve %.1fms exceeds per-layer budget %.1fms", key[0], key[1], ms, r.BaselineMillis)
		}
	}
}

func TestFig12Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	r, err := Fig12(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	full := r.Throughput["laer"]
	for _, variant := range []string{"no_even", "no_pq", "no_comm_opt", "fsdp+ep"} {
		if r.Throughput[variant] > full*1.005 {
			t.Errorf("%s throughput %.0f exceeds full LAER %.0f", variant, r.Throughput[variant], full)
		}
	}
	if r.Throughput["fsdp+ep"] >= r.Throughput["no_comm_opt"] {
		t.Error("even without comm optimizations, LAER's balancing should beat FSDP+EP")
	}
}

func TestTable4StableSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-cluster simulation")
	}
	r, err := Table4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for n, sp := range r.Speedup {
		if sp < 1.2 {
			t.Errorf("N=%d: MLP speedup %.3fx; paper reports ~1.48-1.49x, expect > 1.2x", n, sp)
		}
	}
	// Stability: spread across sizes stays small.
	minS, maxS := 1e9, 0.0
	for _, sp := range r.Speedup {
		if sp < minS {
			minS = sp
		}
		if sp > maxS {
			maxS = sp
		}
	}
	if maxS/minS > 1.25 {
		t.Errorf("MLP speedup varies %.3f-%.3f across cluster sizes; paper shows stability", minS, maxS)
	}
}

func TestEq1Crossover(t *testing.T) {
	r := Eq1(quickOpts())
	if r.Crossover == 0 {
		t.Fatal("no crossover found in sweep")
	}
	if r.Crossover > 16384 {
		t.Errorf("crossover at %d tokens; paper reports 16K suffices", r.Crossover)
	}
	if r.ThresholdTokens < 4096 || r.ThresholdTokens > 24576 {
		t.Errorf("threshold %.0f outside the paper's regime", r.ThresholdTokens)
	}
}

// TestForecastShapes asserts the experiment's two headline shapes: the
// trend-driven predictive policy beats the warm baseline on the smooth
// stabilizing drift (lower total step time, most of the observation lag
// gone), and the confidence fallback pins it to warm behaviour on the
// unforecastable bursty drift.
func TestForecastShapes(t *testing.T) {
	r, err := Forecast(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ForecastCell{}
	for _, c := range r.Cells {
		byKey[string(c.Drift)+"/"+string(c.Policy)+"/"+string(c.Predictor)] = c
	}
	warmStab := byKey["stabilizing/warm/"]
	predStab := byKey["stabilizing/predictive/trend"]
	if predStab.TotalStepTime >= warmStab.TotalStepTime {
		t.Errorf("stabilizing: predictive %.1fs not below warm %.1fs",
			predStab.TotalStepTime, warmStab.TotalStepTime)
	}
	if predStab.ObservationLag > 0.5*warmStab.ObservationLag {
		t.Errorf("stabilizing: residual lag %.2fs recovers less than half of warm's %.2fs",
			predStab.ObservationLag, warmStab.ObservationLag)
	}
	if predStab.PredictedLayers == 0 {
		t.Error("stabilizing: predictive never acted on a forecast")
	}
	warmBurst := byKey["bursty/warm/"]
	predBurst := byKey["bursty/predictive/trend"]
	if predBurst.TotalStepTime > warmBurst.TotalStepTime*(1+1e-9) {
		t.Errorf("bursty: predictive %.2fs worse than warm %.2fs",
			predBurst.TotalStepTime, warmBurst.TotalStepTime)
	}
	if predBurst.ForecastError <= warmBurst.ForecastError {
		t.Error("bursty: no forecast error measured")
	}
}

func TestRunDispatcher(t *testing.T) {
	for _, id := range []string{"tab2", "eq1", "fig2"} {
		tables, err := Run(id, quickOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || tables[0] == nil {
			t.Fatalf("%s: no tables", id)
		}
		var buf bytes.Buffer
		tables[0].Write(&buf)
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", id)
		}
	}
	if _, err := Run("nope", quickOpts()); err == nil {
		t.Error("unknown experiment accepted")
	}
}
