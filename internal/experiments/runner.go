package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment harness fans independent simulation configs across a
// bounded worker pool. Each sweep cell is an isolated training.Run (its
// own trace generator, scheduler and engine over a read-only topology and
// model catalog), so cells can execute in any order; results are written
// into index-addressed slots and the artifact tables are assembled
// serially afterwards, keeping the rendered output byte-identical to a
// serial run regardless of worker count.

// Workers resolves the Options.Parallelism knob to a concrete worker
// count: 0 uses every available CPU (GOMAXPROCS), 1 forces serial
// execution, and any larger value bounds the pool at that many workers.
func (o Options) Workers() int {
	switch {
	case o.Parallelism == 0:
		return runtime.GOMAXPROCS(0)
	case o.Parallelism < 1:
		return 1
	default:
		return o.Parallelism
	}
}

// forEach runs fn(0..n-1) on up to workers goroutines and blocks until
// every call returns. When several calls fail, the error of the lowest
// index wins, so error reporting is deterministic too. workers <= 1 runs
// inline with no goroutines at all.
func forEach(workers, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next int
	var failed atomic.Bool
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				// Like the serial loop, stop launching work once any
				// cell has failed; in-flight cells drain naturally.
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
