package experiments

import (
	"laermoe/internal/par"
)

// The experiment harness fans independent simulation configs across the
// shared bounded worker pool (internal/par). Each sweep cell is an
// isolated training.Run (its own trace generator, scheduler and engine
// over a read-only topology and model catalog), so cells can execute in
// any order; results are written into index-addressed slots and the
// artifact tables are assembled serially afterwards, keeping the rendered
// output byte-identical to a serial run regardless of worker count.

// Workers resolves the Options.Parallelism knob to a concrete worker
// count: 0 uses every available CPU (GOMAXPROCS), 1 forces serial
// execution, and any larger value bounds the pool at that many workers.
func (o Options) Workers() int { return par.Workers(o.Parallelism) }

// forEach runs fn(0..n-1) on up to workers goroutines and blocks until
// every call returns, with deterministic lowest-index error reporting.
func forEach(workers, n int, fn func(i int) error) error {
	return par.ForEach(workers, n, fn)
}
