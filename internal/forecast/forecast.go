// Package forecast provides the per-expert load predictors behind the
// online engine's predictive re-layout policy. A predictor consumes one
// load vector per drift window (the per-expert token totals the planner
// would otherwise observe) and extrapolates the next window's loads, so
// the epoch-boundary replan can run *before* the observation iteration
// executes and the Fig. 7 adaptation lag disappears.
//
// Three predictors cover the drift regimes the trace generator produces:
//
//   - LastValue assumes persistence: next window ≈ current window. The
//     cheapest model and the implicit model of warm-start replanning.
//   - EMA smooths the history with an exponential moving average (on top
//     of stats.VectorEMA), trading responsiveness for noise robustness.
//   - LinearTrend fits a per-expert least-squares line over a sliding
//     window and extrapolates one step ahead — the only one of the three
//     that anticipates sustained drift instead of chasing it
//     ("Prediction Is All MoE Needs", Cong et al.).
//
// All predictors are allocation-free in steady state: Observe and
// ForecastInto reuse preallocated buffers, matching the simulator's
// hot-path discipline.
package forecast

import (
	"fmt"
	"math"

	"laermoe/internal/stats"
)

// Kind names a predictor family.
type Kind string

const (
	KindLast  Kind = "last"
	KindEMA   Kind = "ema"
	KindTrend Kind = "trend"
)

// Kinds lists every predictor accepted by New.
func Kinds() []Kind { return []Kind{KindLast, KindEMA, KindTrend} }

// Default parameters used by New.
const (
	// DefaultEMAAlpha weights the newest window at 60%: responsive enough
	// to track epoch-scale drift while still damping sampling noise.
	DefaultEMAAlpha = 0.6
	// DefaultTrendWindow is the sliding-window length of LinearTrend —
	// long enough to average out within-window noise, short enough that a
	// regime change ages out of the fit in a few windows.
	DefaultTrendWindow = 4
)

// Predictor forecasts the next drift window's per-expert loads from the
// realized loads of past windows. Implementations are not safe for
// concurrent use; the online engine keeps one per layer.
type Predictor interface {
	// Name returns the predictor's Kind string.
	Name() string
	// Experts returns the configured vector length.
	Experts() int
	// Observe folds one window's realized loads in. It panics if
	// len(loads) differs from Experts(). Allocation-free.
	Observe(loads []float64)
	// Ready reports whether enough history exists to forecast (one
	// observation for every implementation in this package).
	Ready() bool
	// ForecastInto writes the next window's predicted loads into dst,
	// clamped to be non-negative. It panics if the predictor is not Ready
	// or len(dst) differs from Experts(). Allocation-free.
	ForecastInto(dst []float64)
}

// New builds a predictor of the given kind with the package defaults.
func New(kind Kind, experts int) (Predictor, error) {
	switch kind {
	case KindLast:
		return NewLastValue(experts)
	case KindEMA:
		return NewEMA(DefaultEMAAlpha, experts)
	case KindTrend:
		return NewLinearTrend(DefaultTrendWindow, experts)
	}
	return nil, fmt.Errorf("forecast: unknown predictor %q (have %v)", kind, Kinds())
}

// Forecast is a convenience wrapper allocating the destination slice.
func Forecast(p Predictor) []float64 {
	dst := make([]float64, p.Experts())
	p.ForecastInto(dst)
	return dst
}

// RelativeError returns the L1 distance between predicted and realized
// loads relative to the realized total: sum|pred-real| / sum(real). It is
// the confidence signal the online engine gates predictions on. Both
// vectors must have equal length (panics otherwise); a zero realized total
// yields 0 when the prediction is also all-zero and +Inf otherwise.
func RelativeError(pred, real []float64) float64 {
	if len(pred) != len(real) {
		panic("forecast: prediction/realization length mismatch")
	}
	var diff, total float64
	for i := range real {
		d := pred[i] - real[i]
		if d < 0 {
			d = -d
		}
		diff += d
		r := real[i]
		if r < 0 {
			r = -r
		}
		total += r
	}
	if total == 0 {
		if diff == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return diff / total
}

func checkExperts(experts int) error {
	if experts <= 0 {
		return fmt.Errorf("forecast: expert count %d must be positive", experts)
	}
	return nil
}

// LastValue predicts that the next window repeats the current one.
type LastValue struct {
	last []float64
	seen int
}

// NewLastValue builds a last-value predictor for the given expert count.
func NewLastValue(experts int) (*LastValue, error) {
	if err := checkExperts(experts); err != nil {
		return nil, err
	}
	return &LastValue{last: make([]float64, experts)}, nil
}

// Name implements Predictor.
func (p *LastValue) Name() string { return string(KindLast) }

// Experts implements Predictor.
func (p *LastValue) Experts() int { return len(p.last) }

// Observe implements Predictor.
func (p *LastValue) Observe(loads []float64) {
	if len(loads) != len(p.last) {
		panic("forecast: LastValue length mismatch")
	}
	copy(p.last, loads)
	p.seen++
}

// Ready implements Predictor.
func (p *LastValue) Ready() bool { return p.seen > 0 }

// ForecastInto implements Predictor.
func (p *LastValue) ForecastInto(dst []float64) {
	if !p.Ready() {
		panic("forecast: LastValue has no observations")
	}
	if len(dst) != len(p.last) {
		panic("forecast: LastValue length mismatch")
	}
	copy(dst, p.last)
}

// EMA predicts the next window as the exponential moving average of the
// history — a noise-robust variant of LastValue that deliberately lags
// sustained drift.
type EMA struct {
	ema *stats.VectorEMA
}

// NewEMA builds an EMA predictor; alpha must lie in (0,1].
func NewEMA(alpha float64, experts int) (*EMA, error) {
	if err := checkExperts(experts); err != nil {
		return nil, err
	}
	ema, err := stats.NewVectorEMA(alpha, experts)
	if err != nil {
		return nil, err
	}
	return &EMA{ema: ema}, nil
}

// Name implements Predictor.
func (p *EMA) Name() string { return string(KindEMA) }

// Experts implements Predictor.
func (p *EMA) Experts() int { return p.ema.Len() }

// Observe implements Predictor.
func (p *EMA) Observe(loads []float64) { p.ema.Observe(loads) }

// Ready implements Predictor.
func (p *EMA) Ready() bool { return p.ema.Initialized() }

// ForecastInto implements Predictor.
func (p *EMA) ForecastInto(dst []float64) {
	if !p.Ready() {
		panic("forecast: EMA has no observations")
	}
	p.ema.ValuesInto(dst)
}

// LinearTrend fits an independent least-squares line to every expert's
// last `window` observations and extrapolates one step ahead, clamping
// negative extrapolations to 0. With a single observation it degrades to
// LastValue; with two it extrapolates the difference.
type LinearTrend struct {
	window  int
	experts int
	// ring holds the most recent observations, oldest first once full:
	// ring[(head+k) % stored] for k = 0..stored-1 walks old → new.
	ring [][]float64
	head int
	// stored is min(total observations, window).
	stored int
	seen   int
}

// NewLinearTrend builds a trend predictor with the given sliding-window
// length (>= 2) and expert count.
func NewLinearTrend(window, experts int) (*LinearTrend, error) {
	if err := checkExperts(experts); err != nil {
		return nil, err
	}
	if window < 2 {
		return nil, fmt.Errorf("forecast: trend window %d must be at least 2", window)
	}
	ring := make([][]float64, window)
	for i := range ring {
		ring[i] = make([]float64, experts)
	}
	return &LinearTrend{window: window, experts: experts, ring: ring}, nil
}

// Name implements Predictor.
func (p *LinearTrend) Name() string { return string(KindTrend) }

// Experts implements Predictor.
func (p *LinearTrend) Experts() int { return p.experts }

// Window returns the configured sliding-window length.
func (p *LinearTrend) Window() int { return p.window }

// Observe implements Predictor.
func (p *LinearTrend) Observe(loads []float64) {
	if len(loads) != p.experts {
		panic("forecast: LinearTrend length mismatch")
	}
	if p.stored < p.window {
		copy(p.ring[p.stored], loads)
		p.stored++
	} else {
		copy(p.ring[p.head], loads)
		p.head = (p.head + 1) % p.window
	}
	p.seen++
}

// Ready implements Predictor.
func (p *LinearTrend) Ready() bool { return p.seen > 0 }

// ForecastInto implements Predictor.
func (p *LinearTrend) ForecastInto(dst []float64) {
	if !p.Ready() {
		panic("forecast: LinearTrend has no observations")
	}
	if len(dst) != p.experts {
		panic("forecast: LinearTrend length mismatch")
	}
	m := p.stored
	if m == 1 {
		copy(dst, p.ring[0])
		return
	}
	// Closed-form simple linear regression over x = 0..m-1, predicting at
	// x = m. xbar and the x variance depend only on m, so they hoist out
	// of the per-expert loop.
	xbar := float64(m-1) / 2
	var sxx float64
	for k := 0; k < m; k++ {
		d := float64(k) - xbar
		sxx += d * d
	}
	for j := 0; j < p.experts; j++ {
		var ybar float64
		for k := 0; k < m; k++ {
			ybar += p.at(k)[j]
		}
		ybar /= float64(m)
		var sxy float64
		for k := 0; k < m; k++ {
			sxy += (float64(k) - xbar) * (p.at(k)[j] - ybar)
		}
		slope := sxy / sxx
		pred := ybar + slope*(float64(m)-xbar)
		if pred < 0 {
			pred = 0
		}
		dst[j] = pred
	}
}

// at returns the k-th oldest stored observation (k = 0 is the oldest).
func (p *LinearTrend) at(k int) []float64 {
	if p.stored < p.window {
		return p.ring[k]
	}
	return p.ring[(p.head+k)%p.window]
}
