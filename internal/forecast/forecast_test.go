package forecast

import (
	"math"
	"testing"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func observeAll(p Predictor, seq [][]float64) {
	for _, v := range seq {
		p.Observe(v)
	}
}

func everyPredictor(t *testing.T, experts int) []Predictor {
	t.Helper()
	var out []Predictor
	for _, k := range Kinds() {
		p, err := New(k, experts)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != string(k) {
			t.Fatalf("predictor %q reports name %q", k, p.Name())
		}
		if p.Experts() != experts {
			t.Fatalf("predictor %q reports %d experts, want %d", k, p.Experts(), experts)
		}
		if p.Ready() {
			t.Fatalf("fresh predictor %q claims to be ready", k)
		}
		out = append(out, p)
	}
	return out
}

// A constant sequence is the one closed form every predictor must nail
// exactly: last value, any EMA and any line fit all reproduce it.
func TestConstantSequenceExact(t *testing.T) {
	seq := [][]float64{{5, 3, 8}, {5, 3, 8}, {5, 3, 8}, {5, 3, 8}}
	for _, p := range everyPredictor(t, 3) {
		observeAll(p, seq)
		got := Forecast(p)
		for j, want := range []float64{5, 3, 8} {
			if !almost(got[j], want, 1e-9) {
				t.Errorf("%s: constant forecast[%d] = %g, want %g", p.Name(), j, got[j], want)
			}
		}
	}
}

// On a linear ramp the trend predictor extrapolates exactly, last-value
// lags by one slope step, and the EMA lags even further — the closed-form
// ordering the confidence gate relies on.
func TestLinearRamp(t *testing.T) {
	// loads[j] at window k: 10 + 2k for expert 0, 40 - 3k for expert 1.
	var seq [][]float64
	for k := 0; k < 4; k++ {
		seq = append(seq, []float64{10 + 2*float64(k), 40 - 3*float64(k)})
	}
	next := []float64{10 + 2*4, 40 - 3*4} // window 4

	trend, err := New(KindTrend, 2)
	if err != nil {
		t.Fatal(err)
	}
	observeAll(trend, seq)
	got := Forecast(trend)
	for j := range next {
		if !almost(got[j], next[j], 1e-9) {
			t.Errorf("trend ramp forecast[%d] = %g, want %g", j, got[j], next[j])
		}
	}

	last, err := New(KindLast, 2)
	if err != nil {
		t.Fatal(err)
	}
	observeAll(last, seq)
	lv := Forecast(last)
	if !almost(lv[0], 16, 1e-9) || !almost(lv[1], 31, 1e-9) {
		t.Errorf("last-value ramp forecast = %v, want [16 31]", lv)
	}

	ema, err := New(KindEMA, 2)
	if err != nil {
		t.Fatal(err)
	}
	observeAll(ema, seq)
	ev := Forecast(ema)
	// On a rising ramp the EMA must sit strictly below last-value, which
	// sits strictly below the true next value.
	if !(ev[0] < lv[0] && lv[0] < next[0]) {
		t.Errorf("rising ramp ordering violated: ema %g, last %g, next %g", ev[0], lv[0], next[0])
	}
	if !(ev[1] > lv[1] && lv[1] > next[1]) {
		t.Errorf("falling ramp ordering violated: ema %g, last %g, next %g", ev[1], lv[1], next[1])
	}
}

// The trend window slides: after enough post-step observations the
// pre-step history ages out and a step change is forecast exactly again.
func TestStepChange(t *testing.T) {
	trend, err := NewLinearTrend(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		trend.Observe([]float64{10})
	}
	for i := 0; i < 3; i++ {
		trend.Observe([]float64{50})
	}
	got := Forecast(trend)
	if !almost(got[0], 50, 1e-9) {
		t.Errorf("trend after step window filled = %g, want 50", got[0])
	}

	last, err := NewLastValue(1)
	if err != nil {
		t.Fatal(err)
	}
	last.Observe([]float64{10})
	last.Observe([]float64{50})
	if got := Forecast(last); !almost(got[0], 50, 1e-9) {
		t.Errorf("last-value after step = %g, want 50", got[0])
	}
}

// A single observation must already forecast (= last value) for every
// predictor, so the online engine can shadow-forecast from epoch 1.
func TestSingleObservationDegradesToLastValue(t *testing.T) {
	for _, p := range everyPredictor(t, 2) {
		p.Observe([]float64{7, 11})
		if !p.Ready() {
			t.Fatalf("%s not ready after one observation", p.Name())
		}
		got := Forecast(p)
		if !almost(got[0], 7, 1e-9) || !almost(got[1], 11, 1e-9) {
			t.Errorf("%s single-observation forecast = %v, want [7 11]", p.Name(), got)
		}
	}
}

// Extrapolating a falling ramp below zero must clamp: loads are counts.
func TestTrendClampsNegative(t *testing.T) {
	trend, err := NewLinearTrend(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		trend.Observe([]float64{30 - 10*float64(k)})
	}
	if got := Forecast(trend); got[0] != 0 {
		t.Errorf("negative extrapolation = %g, want clamp to 0", got[0])
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New("oracle", 4); err == nil {
		t.Error("unknown predictor kind accepted")
	}
	for _, k := range Kinds() {
		if _, err := New(k, 0); err == nil {
			t.Errorf("%s accepted zero experts", k)
		}
	}
	if _, err := NewLinearTrend(1, 4); err == nil {
		t.Error("trend window below 2 accepted")
	}
	if _, err := NewEMA(1.5, 4); err == nil {
		t.Error("EMA alpha above 1 accepted")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	for _, p := range everyPredictor(t, 3) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: forecast before any observation should panic", p.Name())
				}
			}()
			p.ForecastInto(make([]float64, 3))
		}()
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: length-mismatched Observe should panic", p.Name())
				}
			}()
			p.Observe(make([]float64, 2))
		}()
		p.Observe([]float64{1, 2, 3})
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: length-mismatched ForecastInto should panic", p.Name())
				}
			}()
			p.ForecastInto(make([]float64, 2))
		}()
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("exact prediction error = %g, want 0", got)
	}
	if got := RelativeError([]float64{2, 2}, []float64{1, 3}); !almost(got, 0.5, 1e-12) {
		t.Errorf("error = %g, want 0.5", got)
	}
	if got := RelativeError([]float64{0, 0}, []float64{0, 0}); got != 0 {
		t.Errorf("all-zero error = %g, want 0", got)
	}
	if got := RelativeError([]float64{1, 0}, []float64{0, 0}); !math.IsInf(got, 1) {
		t.Errorf("nonzero prediction of zero realization = %g, want +Inf", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	RelativeError([]float64{1}, []float64{1, 2})
}

func TestSynthRouting(t *testing.T) {
	m, err := SynthRouting([]float64{30, 10, 0, -5}, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 3 || m.E != 4 {
		t.Fatalf("shape %dx%d, want 3x4", m.N, m.E)
	}
	for i, row := range m.R {
		sum := 0
		for _, v := range row {
			sum += v
		}
		if sum != 8 {
			t.Errorf("row %d sums to %d, want 8", i, sum)
		}
	}
	// 30:10 of a 40 total over 8 assignments → 6 and 2; negatives clamp.
	if m.R[0][0] != 6 || m.R[0][1] != 2 || m.R[0][2] != 0 || m.R[0][3] != 0 {
		t.Errorf("row = %v, want [6 2 0 0]", m.R[0])
	}
	if err := m.Validate(); err != nil {
		t.Errorf("synthesized matrix invalid: %v", err)
	}

	// All-zero forecast degrades to uniform.
	u, err := SynthRouting([]float64{0, 0}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if u.R[0][0] != 2 || u.R[0][1] != 2 {
		t.Errorf("uniform fallback row = %v, want [2 2]", u.R[0])
	}

	if _, err := SynthRouting(nil, 2, 4); err == nil {
		t.Error("empty forecast accepted")
	}
	if _, err := SynthRouting([]float64{1}, 0, 4); err == nil {
		t.Error("zero devices accepted")
	}
	if _, err := SynthRouting([]float64{1}, 2, 0); err == nil {
		t.Error("zero per-device assignments accepted")
	}
}

// Observe and ForecastInto must be allocation-free in steady state — they
// run per layer per epoch boundary inside the online engine's hot path.
func TestZeroAllocSteadyState(t *testing.T) {
	loads := []float64{4, 8, 15, 16, 23, 42, 4, 8}
	dst := make([]float64, len(loads))
	for _, k := range Kinds() {
		p, err := New(k, len(loads))
		if err != nil {
			t.Fatal(err)
		}
		// Warm up past ring-fill and EMA initialization.
		for i := 0; i < 8; i++ {
			p.Observe(loads)
		}
		if avg := testing.AllocsPerRun(100, func() {
			p.Observe(loads)
			p.ForecastInto(dst)
		}); avg != 0 {
			t.Errorf("%s: %g allocs per Observe+ForecastInto, want 0", k, avg)
		}
	}
}
